#!/bin/sh
# Benchmark ledger: runs a benchmark suite and appends a dated entry to
# the newest BENCH_<date>.json in the repo root (creating a dated file if
# none exists) — the ledger is appended by machine, not hand-edited.
#
# Usage (from the repo root, or `make bench-ledger`):
#   ./scripts/bench.sh [kernel|fork|arrivals|all]     default: all
#
# kernel    sim/comm micro-benchmarks (event churn, timer cancel storm,
#           event throughput, 16-node all-to-all); window BENCHTIME (1s).
# fork      BenchmarkSweepForked: warm-state forking vs the cold reference
#           on the shared-prefix 32-point sweep; fixed iteration count
#           FORK_BENCHTIME (5x) so cold and warm see identical plans.
# arrivals  BenchmarkArrivalThroughput: open-system streaming jobs/sec on
#           the flat-memory gate configuration; fixed iteration count
#           ARRIVAL_BENCHTIME (3x).
set -eu

MODE="${1:-all}"
BENCHTIME="${BENCHTIME:-1s}"
FORK_BENCHTIME="${FORK_BENCHTIME:-5x}"
ARRIVAL_BENCHTIME="${ARRIVAL_BENCHTIME:-3x}"
DATE=$(date +%Y-%m-%d)

# Append to the newest existing ledger file so one file accumulates the
# before/after history; start a dated file only on first use.
OUT=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
[ -n "$OUT" ] || OUT="BENCH_${DATE}.json"

# append_entry ENTRY: append one JSON object to the OUT array.
append_entry() {
	if [ ! -f "$OUT" ]; then
		printf '[\n%s\n]\n' "$1" > "$OUT"
	else
		# Drop the closing ']', put a comma after the (now) last entry,
		# add the new entry, close the array.
		TMP=$(mktemp)
		sed '$d' "$OUT" > "$TMP"
		last=$(tail -1 "$TMP")
		sed '$d' "$TMP" > "$OUT"
		printf '%s,\n%s\n]\n' "$last" "$1" >> "$OUT"
		rm -f "$TMP"
	fi
}

GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
CORES=$(nproc 2>/dev/null || echo 1)

run_kernel() {
	RAW=$(go test -run '^$' -bench 'BenchmarkKernel|BenchmarkNetworkAllToAll' \
		-benchmem -benchtime "$BENCHTIME" .)
	printf '%s\n' "$RAW"
	CPU=$(printf '%s\n' "$RAW" | sed -n 's/^cpu: //p')

	# One "name": {ns_per_op, b_per_op, allocs_per_op} line per benchmark,
	# comma-separated. The -N CPU suffix is stripped from names.
	RESULTS=$(printf '%s\n' "$RAW" | awk '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			printf "%s      \"%s\": {\"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $3, $5, $7
			sep = ",\n"
		}')

	ENTRY=$(cat <<EOF
  {
    "date": "${DATE}",
    "benchmark": "kernel-hot-path",
    "description": "sim event pool / no-handle timers / 4-ary heap / router next-hop table micro-benchmarks (bench_test.go), benchtime ${BENCHTIME}",
    "host": {"goos": "${GOOS}", "goarch": "${GOARCH}", "cpu": "${CPU}", "cores": ${CORES}},
    "results": {
${RESULTS}
    }
  }
EOF
)
	append_entry "$ENTRY"
	echo "appended kernel-hot-path entry to $OUT"
}

run_fork() {
	RAW=$(go test -run '^$' -bench 'BenchmarkSweepForked' -benchtime "$FORK_BENCHTIME" .)
	printf '%s\n' "$RAW"
	CPU=$(printf '%s\n' "$RAW" | sed -n 's/^cpu: //p')

	COLD=$(printf '%s\n' "$RAW" | awk '/^BenchmarkSweepForked\/cold/ {print $3}')
	WARM=$(printf '%s\n' "$RAW" | awk '/^BenchmarkSweepForked\/warm/ {print $3}')
	if [ -z "$COLD" ] || [ -z "$WARM" ]; then
		echo "bench.sh: BenchmarkSweepForked produced no cold/warm lines" >&2
		exit 1
	fi
	SPEEDUP=$(awk "BEGIN {printf \"%.2f\", $COLD / $WARM}")
	echo "sweep-forked speedup: ${SPEEDUP}x (cold ${COLD} ns/op, warm ${WARM} ns/op)"

	ENTRY=$(cat <<EOF
  {
    "date": "${DATE}",
    "benchmark": "sweep-forked",
    "description": "BenchmarkSweepForked: shared-prefix 32-point sweep (quanta x seeds over a 32-job warm-up wave), cold = core.RunForked per point (full prefix every time), warm = engine.NewForkSweep (prefix once, snapshot resume per point); benchtime ${FORK_BENCHTIME}",
    "host": {"goos": "${GOOS}", "goarch": "${GOARCH}", "cpu": "${CPU}", "cores": ${CORES}},
    "results": {
      "cold_ns_per_op": ${COLD},
      "warm_ns_per_op": ${WARM},
      "speedup": ${SPEEDUP}
    },
    "note": "Byte-identity of warm vs cold output is asserted by make fork-gate (TestForkSweepWarmEqualsCold at -j 1 and -j 8, TestClusterForkResume for the serialized wire path); acceptance floor for speedup is 5x."
  }
EOF
)
	append_entry "$ENTRY"
	echo "appended sweep-forked entry to $OUT"
}

run_arrivals() {
	RAW=$(go test -run '^$' -bench 'BenchmarkArrivalThroughput' -benchmem -benchtime "$ARRIVAL_BENCHTIME" .)
	printf '%s\n' "$RAW"
	CPU=$(printf '%s\n' "$RAW" | sed -n 's/^cpu: //p')

	# The benchmark line carries ns/op plus the custom jobs/sec metric and
	# -benchmem's B/op and allocs/op; pick each value by its unit.
	LINE=$(printf '%s\n' "$RAW" | awk '/^BenchmarkArrivalThroughput/ {print; exit}')
	NSOP=$(printf '%s\n' "$LINE" | awk '{for (i=1;i<NF;i++) if ($(i+1)=="ns/op") print $i}')
	JPS=$(printf '%s\n' "$LINE" | awk '{for (i=1;i<NF;i++) if ($(i+1)=="jobs/sec") print $i}')
	BOP=$(printf '%s\n' "$LINE" | awk '{for (i=1;i<NF;i++) if ($(i+1)=="B/op") print $i}')
	AOP=$(printf '%s\n' "$LINE" | awk '{for (i=1;i<NF;i++) if ($(i+1)=="allocs/op") print $i}')
	if [ -z "$JPS" ]; then
		echo "bench.sh: BenchmarkArrivalThroughput produced no jobs/sec metric" >&2
		exit 1
	fi
	echo "arrival throughput: ${JPS} jobs/sec"

	ENTRY=$(cat <<EOF
  {
    "date": "${DATE}",
    "benchmark": "arrival-throughput",
    "description": "BenchmarkArrivalThroughput: open-system Poisson stream of 20k jobs on the flat-memory gate configuration (static policy, single-node partitions, rho=0.5); jobs/sec is simulated jobs per wall-clock second; benchtime ${ARRIVAL_BENCHTIME}",
    "host": {"goos": "${GOOS}", "goarch": "${GOARCH}", "cpu": "${CPU}", "cores": ${CORES}},
    "results": {
      "ns_per_op": ${NSOP},
      "jobs_per_sec": ${JPS},
      "b_per_op": ${BOP},
      "allocs_per_op": ${AOP}
    },
    "note": "Flat memory at 1M jobs is asserted by make open-gate (TestOpenGateFlatMemory under -race); the sketch's quantile error bound by TestOpenGateSketchAccuracy."
  }
EOF
)
	append_entry "$ENTRY"
	echo "appended arrival-throughput entry to $OUT"
}

case "$MODE" in
kernel) run_kernel ;;
fork) run_fork ;;
arrivals) run_arrivals ;;
all)
	run_kernel
	run_fork
	run_arrivals
	;;
*)
	echo "usage: scripts/bench.sh [kernel|fork|arrivals|all]" >&2
	exit 2
	;;
esac
