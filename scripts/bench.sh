#!/bin/sh
# Kernel hot-path benchmark ledger: runs the sim/comm micro-benchmarks
# (event churn, timer cancel storm, event throughput, 16-node all-to-all)
# and appends a dated entry to BENCH_<date>.json in the repo root, creating
# the file if needed. Run from the repo root: `make bench-ledger` or
# `./scripts/bench.sh`. Override the measurement window with
# BENCHTIME=200ms ./scripts/bench.sh (default 1s).
set -eu

BENCHTIME="${BENCHTIME:-1s}"
DATE=$(date +%Y-%m-%d)
OUT="BENCH_${DATE}.json"

RAW=$(go test -run '^$' -bench 'BenchmarkKernel|BenchmarkNetworkAllToAll' \
	-benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$RAW"

CPU=$(printf '%s\n' "$RAW" | sed -n 's/^cpu: //p')
GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
CORES=$(nproc 2>/dev/null || echo 1)

# One "name": {ns_per_op, b_per_op, allocs_per_op} line per benchmark,
# comma-separated. The -N CPU suffix is stripped from names.
RESULTS=$(printf '%s\n' "$RAW" | awk '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		printf "%s      \"%s\": {\"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $3, $5, $7
		sep = ",\n"
	}')

ENTRY=$(cat <<EOF
  {
    "date": "${DATE}",
    "benchmark": "kernel-hot-path",
    "description": "sim event pool / no-handle timers / 4-ary heap / router next-hop table micro-benchmarks (bench_test.go), benchtime ${BENCHTIME}",
    "host": {"goos": "${GOOS}", "goarch": "${GOARCH}", "cpu": "${CPU}", "cores": ${CORES}},
    "results": {
${RESULTS}
    }
  }
EOF
)

if [ ! -f "$OUT" ]; then
	printf '[\n%s\n]\n' "$ENTRY" > "$OUT"
else
	# Append to the existing JSON array: drop the closing ']', put a comma
	# after the (now) last entry, add the new entry, close the array.
	TMP=$(mktemp)
	sed '$d' "$OUT" > "$TMP"
	last=$(tail -1 "$TMP")
	sed '$d' "$TMP" > "$OUT"
	printf '%s,\n%s\n]\n' "$last" "$ENTRY" >> "$OUT"
	rm -f "$TMP"
fi
echo "appended kernel-hot-path entry to $OUT"
