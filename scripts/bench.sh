#!/bin/sh
# Benchmark ledger: thin wrapper over the perfgate harness. Each mode runs
# the matching group of declarative cases under perf/cases/ (warmup +
# repeated trials, medians, goal checks, baseline comparison) and appends
# structured entries to BENCH_<today>.json in the repo root — the ledger is
# appended by machine, not hand-edited, and `go run ./cmd/perfgate` is the
# single implementation of the append.
#
# Usage (from the repo root, or `make bench-ledger`):
#   ./scripts/bench.sh [kernel|fork|arrivals|sweep|serve|all]   default: all
#
# kernel    sim/comm micro-benchmarks (event churn, timer cancel storm,
#           event throughput, 16-node all-to-all)
# fork      warm-state forking vs the cold reference on the shared-prefix
#           32-point sweep (speedup floor 5x)
# arrivals  open-system streaming jobs/sec plus the 1M-job peak-heap case
# sweep     engine.Execute parallel scaling at 1 vs NumCPU workers
# serve     schedd hit/miss round-trips and p95 under concurrent load
#
# Extra perfgate flags pass through, e.g.:
#   ./scripts/bench.sh kernel -no-append
set -eu

MODE="${1:-all}"
[ $# -gt 0 ] && shift

case "$MODE" in
kernel | fork | arrivals | sweep | serve)
	exec go run ./cmd/perfgate -group "$MODE" "$@"
	;;
all)
	exec go run ./cmd/perfgate "$@"
	;;
*)
	echo "usage: scripts/bench.sh [kernel|fork|arrivals|sweep|serve|all] [perfgate flags]" >&2
	exit 2
	;;
esac
