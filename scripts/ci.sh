#!/bin/sh
# CI pipeline: build, vet, race-enabled tests, benchmark smoke.
# Run locally with `make ci` or `./scripts/ci.sh`.
set -eux

go build ./...
go vet ./...
gofmt -l . | tee /tmp/gofmt.out
test ! -s /tmp/gofmt.out

go test -race ./...

# Benchmark smoke: one iteration of the cheapest figure, just to prove the
# harness still runs. Full benchmarks are a manual `make bench`.
go test -run '^$' -bench BenchmarkFigure3 -benchtime 1x .
