#!/bin/sh
# CI pipeline: build, vet, race-enabled tests, benchmark smoke.
# Run locally with `make ci` or `./scripts/ci.sh`.
set -eux

go build ./...
go vet ./...
gofmt -l . | tee /tmp/gofmt.out
test ! -s /tmp/gofmt.out

go test -race ./...

# Engine determinism gate: the worker pool must produce byte-identical
# results at every worker count, data-race free. Redundant with the full
# race run above, but kept explicit so a refactor that renames or skips
# these tests fails loudly here.
go test -race -run 'Determinism' -count=1 ./internal/engine ./internal/experiments

# Policy gate: the policy framework's bit-identical-default contract under
# the race detector — spelled-out default components reproduce the legacy
# disciplines deep-equal (TestPolicyGate*), the pinned golden means hold
# (TestGoldenValues), and every pre-framework Config.Hash is byte-stable
# (TestHashCompat*). Redundant with the full race run above, but kept
# explicit so a refactor that renames or skips these tests fails loudly.
go test -race -run 'PolicyGate|GoldenValues|HashCompat' -count=1 ./internal/core ./internal/integration

# Serving gate: the schedd invariants must hold under the race detector —
# repeated POST of one config is a byte-identical cache hit, a full queue
# sheds with 429, SIGTERM drains, cancelled requests free their slots, and
# /metrics agrees with the request sequence. All serve tests are named
# TestSchedd* so this line fails loudly if they are renamed or skipped.
go test -race -run 'Schedd' -count=1 ./internal/serve ./cmd/schedd

# Cluster gate: the distributed sweep fabric's acceptance properties under
# the race detector — a 2-worker sweep is byte-identical to one worker, a
# worker dying mid-sweep strands nothing (every point completes, rerouted,
# with rebalance metrics observed), a repeat sweep scores >= 0.9 remote
# cache hit ratio, and a -worker schedd registers/deregisters around
# SIGTERM. All cluster tests are named TestCluster* so this line fails
# loudly if they are renamed or skipped.
go test -race -run 'Cluster|ScheddWorkerLifecycle' -count=1 ./internal/cluster ./cmd/schedd

# Chaos gate: crash safety at the process level, wall clock bounded by
# -timeout. Real coordinator and worker processes are SIGKILLed and
# restarted mid-sweep and the network path takes resets and latency;
# the sweep must finish byte-identical to a clean single-worker run,
# the durable journal must account for every point exactly once, and a
# worker restarted over its tier-2 store must answer the repeat sweep
# >= 0.9 from warm cache. Skipped under the plain `go test` above (the
# tests fork processes and need SCHEDD_CHAOS=1); on failure the fault
# seed is in the log — replay with CHAOS_SEED=<seed>.
SCHEDD_CHAOS=1 go test -race -run 'Chaos' -count=1 -timeout 300s ./internal/chaosharness

# Fork gate: the warm-state forking determinism contract under the race
# detector — snapshots round-trip byte-identical mid-run for all five
# paper disciplines (with fault injection active), a warm fork is
# byte-identical to the cold run at -j 1 and -j 8, a t=0 fork equals the
# plain run, the Grid's fork-adjacency invariant holds, and a serialized
# snapshot resumed over /v1/fork on a 2-worker cluster matches the local
# warm run. Wall clock bounded by -timeout; fails loudly if the tests
# are renamed or skipped.
go test -race -run 'Fork|SnapshotRoundTrip' -count=1 -timeout 300s ./internal/core ./internal/engine ./internal/serve ./internal/cluster

# Open gate: the open-system streaming contract under the race detector —
# a 1M-job Poisson run must hold peak live heap flat relative to a 100k
# reference (no per-job retention), repeat runs must be bit-identical, and
# the quantile sketch must sit within its documented ε of exact sorted
# quantiles on a 100k reference stream. The integration tests fork the
# heavy runs only when OPEN_GATE=1; wall clock is bounded by -timeout
# (the 1M run takes ~2 minutes under -race).
OPEN_GATE=1 go test -race -run 'OpenGate' -count=1 -timeout 600s ./internal/integration ./internal/stats

# Benchmark smoke: one iteration of the cheapest figure plus the parallel
# sweep benchmark, just to prove the harness still runs. Full benchmarks
# are a manual `make bench` / `make sweep-bench`.
go test -run '^$' -bench BenchmarkFigure3 -benchtime 1x .
go test -run '^$' -bench BenchmarkSweepParallel -benchtime 1x .

# Kernel hot-path smoke (make bench-smoke): the event-pool / timer / router
# micro-benchmarks must keep compiling and running; full-precision numbers
# go to the BENCH_*.json ledger via scripts/bench.sh.
go test -run '^$' -bench 'BenchmarkKernel|BenchmarkNetworkAllToAll' -benchmem -benchtime 1x .

# Perf gate (make perf-gate): the declarative workload cases under
# perf/cases/ measured with warmup + trials, checked against per-class
# goals and the newest BENCH_*.json baseline, appended to BENCH_<today>.json.
# Heavyweight (minutes of repeated benchmark trials on a loaded CI host),
# so it fires only when PERF_GATE=1; the ledger validator always runs so a
# hand-edit that corrupts BENCH_*.json fails every CI run, cheap or not.
go run ./cmd/perfgate -validate
if [ "${PERF_GATE:-0}" = "1" ]; then
	make perf-gate
fi
