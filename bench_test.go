// Package repro's root benchmark harness: one benchmark per reproduced
// table/figure. Each iteration regenerates the full experiment; custom
// metrics report the headline simulated numbers so `go test -bench` output
// doubles as a compact reproduction record:
//
//	sim-static-s   mean response under static space-sharing (seconds)
//	sim-ts-s       mean response under time-sharing / hybrid (seconds)
//	(benchmarks of sweeps report the experiment's own key numbers)
//
// Wall-clock ns/op measures the simulator itself — useful when optimizing
// the event kernel.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/perfgate/workloads"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

// benchFigure regenerates one of Figures 3-6 per iteration and reports the
// pure-time-sharing (16L) and 4-partition cells.
func benchFigure(b *testing.B, f func(core.Config, ...engine.Options) (*experiments.Figure, error)) {
	b.Helper()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = f(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if c := fig.Find("4M"); c != nil {
		b.ReportMetric(c.Static.Seconds(), "sim-static-4M-s")
		b.ReportMetric(c.TS.Seconds(), "sim-ts-4M-s")
	}
	if c := fig.Find("16L"); c != nil {
		b.ReportMetric(c.Static.Seconds(), "sim-static-16L-s")
		b.ReportMetric(c.TS.Seconds(), "sim-ts-16L-s")
	}
}

// BenchmarkFigure3 regenerates Figure 3 (matmul, fixed architecture).
func BenchmarkFigure3(b *testing.B) { benchFigure(b, experiments.Figure3) }

// BenchmarkFigure4 regenerates Figure 4 (matmul, adaptive architecture).
func BenchmarkFigure4(b *testing.B) { benchFigure(b, experiments.Figure4) }

// BenchmarkFigure5 regenerates Figure 5 (sort, fixed architecture).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, experiments.Figure5) }

// BenchmarkFigure6 regenerates Figure 6 (sort, adaptive architecture).
func BenchmarkFigure6(b *testing.B) { benchFigure(b, experiments.Figure6) }

// BenchmarkVarianceSweep regenerates E1 and reports the endpoints of the
// TS/static ratio curve (crossover evidence).
func BenchmarkVarianceSweep(b *testing.B) {
	var points []experiments.VariancePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.VarianceSweep(experiments.DefaultCVs, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := points[0], points[len(points)-1]
	b.ReportMetric(float64(first.TS)/float64(first.Static), "ratio-lowCV")
	b.ReportMetric(float64(last.TS)/float64(last.Static), "ratio-highCV")
}

// BenchmarkWormholeAblation regenerates E2 and reports the wormhole speedup
// on the linear topology.
func BenchmarkWormholeAblation(b *testing.B) {
	var cells []experiments.AblationCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.WormholeAblation(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cells[0].SAF.Seconds(), "sim-saf-16L-s")
	b.ReportMetric(cells[0].WH.Seconds(), "sim-wh-16L-s")
}

// BenchmarkQuantumSweep regenerates E3 and reports the best quantum's
// response.
func BenchmarkQuantumSweep(b *testing.B) {
	var points []experiments.QuantumPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.QuantumSweep(experiments.DefaultQuanta, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.TS < best.TS {
			best = p
		}
	}
	b.ReportMetric(best.TS.Seconds(), "sim-best-s")
	b.ReportMetric(best.Q.Seconds()*1000, "best-q-ms")
}

// BenchmarkRRProcessVsRRJob regenerates E4 and reports the wide job's
// unfair advantage under each rule.
func BenchmarkRRProcessVsRRJob(b *testing.B) {
	var r *experiments.RRComparisonResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunRRComparison(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.RRProcBig)/float64(r.RRProcSmall), "rrproc-wide-advantage")
	b.ReportMetric(float64(r.RRJobBig)/float64(r.RRJobSmall), "rrjob-wide-advantage")
}

// BenchmarkMPLSweep regenerates E5 and reports the best set size.
func BenchmarkMPLSweep(b *testing.B) {
	var points []experiments.MPLPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.MPLSweep(experiments.DefaultMPLs, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Mean < best.Mean {
			best = p
		}
	}
	b.ReportMetric(best.Mean.Seconds(), "sim-best-s")
	b.ReportMetric(float64(best.MaxResident), "best-mpl")
}

// BenchmarkSingleRunPureTS measures the simulator's throughput on the most
// event-dense configuration (pure time-sharing, fixed matmul, linear).
func BenchmarkSingleRunPureTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.Config{
			PartitionSize: 16,
			Topology:      topology.Linear,
			Policy:        sched.TimeShared,
			App:           core.MatMul,
			Arch:          workload.Fixed,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel measures engine.Execute over the fixed 32-point
// plan (workloads.SweepBenchPlan) at 1, 2 and NumCPU workers; the ns/op
// ratio between the sub-benches is the sweep-level parallel speedup. The
// summed mean response is reported as a custom metric so a determinism
// regression shows up as a metric change between worker counts. The
// perfgate sweep-scaling case measures the same plan and enforces the
// speedup goal per machine class.
func BenchmarkSweepParallel(b *testing.B) {
	for _, w := range []int{1, 2, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				results, err := engine.Execute(workloads.SweepBenchPlan(), engine.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				sum = 0
				for _, r := range results {
					sum += r
				}
			}
			b.ReportMetric(sum, "sim-sum-mean-s")
		})
	}
}

// BenchmarkSweepForked measures warm-state forking against the cold
// reference on the shared-prefix 32-point plan (workloads.ForkedSweepGrid).
// The cold sub-bench runs every point as core.RunForked (full prefix +
// continuation per point); the warm sub-bench prepares the donor once per
// sweep and resumes the snapshot per point. The ns/op ratio cold/warm is
// the sweep-level speedup the perfgate sweep-forked case enforces (floor
// 5x). Both paths are byte-identical by the fork-gate contract (make
// fork-gate).
func BenchmarkSweepForked(b *testing.B) {
	g, fp := workloads.ForkedSweepGrid()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fs := engine.NewForkSweep(g, fp)
			for j := 0; j < fs.Len(); j++ {
				if _, err := core.RunForked(fs.Group(j).Base(), fp, fs.Divergence(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fs := engine.NewForkSweep(g, fp)
			for j := 0; j < fs.Len(); j++ {
				if _, err := fs.Run(j); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// The kernel hot-path benchmarks delegate to internal/perfgate/workloads so
// `go test -bench` and the perfgate cases under perf/cases/ measure the
// exact same bodies — a number printed here is the number the gate
// enforces.

// BenchmarkKernelEventThroughput isolates the event-queue engine.
func BenchmarkKernelEventThroughput(b *testing.B) { workloads.KernelEventThroughput(workloads.TB(b)) }

// BenchmarkKernelEventChurn drives 64 interleaved self-rescheduling event
// chains — the schedule/fire pattern that dominates simulation runs — and
// reports allocs/op, the event pool's headline number.
func BenchmarkKernelEventChurn(b *testing.B) { workloads.KernelEventChurn(workloads.TB(b)) }

// BenchmarkKernelTimerCancelStorm schedules batches of timers and cancels
// three quarters of them before they fire — the slice-expiry/retry-timer
// pattern where most armed timers never run.
func BenchmarkKernelTimerCancelStorm(b *testing.B) { workloads.TimerCancelStorm(workloads.TB(b)) }

// BenchmarkNetworkAllToAll16 runs a 16-node mesh all-to-all exchange — the
// message pattern that stresses the store-and-forward router hot path
// (enqueue routing, link hand-off, per-hop timers).
func BenchmarkNetworkAllToAll16(b *testing.B) { workloads.AllToAll16(workloads.TB(b)) }

// BenchmarkOpenLoadSweep regenerates E6 and reports the heavy-load cell.
func BenchmarkOpenLoadSweep(b *testing.B) {
	var points []experiments.LoadPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.OpenLoadSweep(experiments.DefaultLoads, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	heavy := points[len(points)-1]
	b.ReportMetric(heavy.Static4.Seconds(), "sim-static4-s")
	b.ReportMetric(heavy.Dynamic.Seconds(), "sim-dynamic-s")
}

// BenchmarkArrivalThroughput measures the open-system streaming path on the
// cheapest representative configuration (static space-sharing, single-node
// partitions, Poisson arrivals at ρ=0.5 — the make open-gate shape) and
// reports simulated jobs per wall-clock second ("jobs_per_sec"), the
// headline number for the millions-of-jobs goal. Memory stays flat by
// design; allocs/op is the tripwire for per-job retention creeping back
// in. The body lives in internal/perfgate/workloads so the perfgate
// arrival-throughput case enforces the same measurement.
func BenchmarkArrivalThroughput(b *testing.B) { workloads.ArrivalThroughput(workloads.TB(b)) }

// BenchmarkGangVsRRJob regenerates E7 and reports the stencil advantage.
func BenchmarkGangVsRRJob(b *testing.B) {
	var cells []experiments.GangCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.GangVsRRJob(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.App == "stencil" {
			b.ReportMetric(float64(c.Gang)/float64(c.RRJob), "stencil-gang-vs-rrjob")
		}
	}
}

// BenchmarkStencilTopology regenerates E8 and reports the TS/static ratio
// on the linear topology.
func BenchmarkStencilTopology(b *testing.B) {
	var cells []experiments.StencilCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.StencilTopology(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cells[0].TS)/float64(cells[0].Static), "ts-over-static-8L")
}

// BenchmarkScalability regenerates E9 and reports the largest machine's
// policy ratio.
func BenchmarkScalability(b *testing.B) {
	var cells []experiments.ScaleCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.Scalability(experiments.DefaultScales, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := cells[len(cells)-1]
	b.ReportMetric(float64(last.Machine), "nodes")
	b.ReportMetric(float64(last.TS)/float64(last.Static), "ts-over-static")
}

// BenchmarkBroadcastAblation regenerates E10 and reports the tree speedup
// on the linear one-partition configuration.
func BenchmarkBroadcastAblation(b *testing.B) {
	var cells []experiments.BroadcastCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.BroadcastAblation(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cells[0].Tree)/float64(cells[0].Seq), "tree-over-seq-16L")
}

// BenchmarkSortAlgorithmAblation regenerates E11 and reports the fixed-arch
// speedup under both algorithms at 2-processor partitions.
func BenchmarkSortAlgorithmAblation(b *testing.B) {
	var cells []experiments.SortAlgCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.SortAlgorithmAblation(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.PartitionSize == 2 {
			b.ReportMetric(c.Speedup(), c.Algorithm+"-fixed-speedup")
		}
	}
}

// BenchmarkCollectiveTopology regenerates E12 and reports the
// hypercube-over-linear advantage for the lone all-reduce job.
func BenchmarkCollectiveTopology(b *testing.B) {
	var cells []experiments.CollectiveCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.CollectiveTopology(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	byLabel := map[string]experiments.CollectiveCell{}
	for _, c := range cells {
		byLabel[c.Label] = c
	}
	b.ReportMetric(float64(byLabel["8L"].Single)/float64(byLabel["8H"].Single), "linear-over-hypercube")
}
