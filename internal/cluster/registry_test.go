package cluster

import (
	"reflect"
	"testing"
	"time"
)

// TestClusterRegistryLeases: register/renew/deregister drive the fleet
// view, and a lapsed lease needs a full re-register (which re-notifies).
func TestClusterRegistryLeases(t *testing.T) {
	var fleets [][]string
	r := newRegistry(10*time.Second, func(ws []string) {
		fleets = append(fleets, append([]string{}, ws...))
	})
	clock := time.Unix(1000, 0)
	r.now = func() time.Time { return clock }

	if ttl := r.register("http://w1:8080"); ttl != 10*time.Second {
		t.Errorf("register ttl = %v, want 10s", ttl)
	}
	r.register("http://w2:8080")
	if got, want := r.workers(), []string{"http://w1:8080", "http://w2:8080"}; !reflect.DeepEqual(got, want) {
		t.Errorf("workers = %v, want %v", got, want)
	}

	// Renew inside the TTL succeeds and extends the lease.
	clock = clock.Add(8 * time.Second)
	if !r.renew("http://w1:8080") {
		t.Error("renew inside TTL failed")
	}

	// w2 never renewed: one sweep past its expiry prunes it and notifies.
	clock = clock.Add(3 * time.Second)
	r.sweep()
	if got, want := r.workers(), []string{"http://w1:8080"}; !reflect.DeepEqual(got, want) {
		t.Errorf("after sweep: workers = %v, want %v", got, want)
	}

	// A lapsed lease cannot renew — the worker must re-register so the
	// fleet-change notification fires and routing picks it back up.
	clock = clock.Add(20 * time.Second)
	if r.renew("http://w1:8080") {
		t.Error("renew succeeded on a lapsed lease")
	}
	if r.renew("http://never-registered:1") {
		t.Error("renew succeeded for an unknown worker")
	}

	r.register("http://w1:8080")
	r.deregister("http://w1:8080")
	if got := r.workers(); len(got) != 0 {
		t.Errorf("after deregister: workers = %v, want none", got)
	}

	// Every membership change notified; steady-state operations did not.
	want := [][]string{
		{"http://w1:8080"},                   // w1 registers
		{"http://w1:8080", "http://w2:8080"}, // w2 registers
		{"http://w1:8080"},                   // sweep prunes w2
		{"http://w1:8080"},                   // w1 re-registers after lapsing
		{},                                   // w1 deregisters
	}
	if !reflect.DeepEqual(fleets, want) {
		t.Errorf("fleet notifications:\n got %v\nwant %v", fleets, want)
	}
}

// TestClusterAdvertiseURL: wildcard listen hosts advertise loopback (the
// local-cluster quick start); concrete hosts pass through, IPv6 bracketed.
func TestClusterAdvertiseURL(t *testing.T) {
	cases := map[string]string{
		":8080":            "http://127.0.0.1:8080",
		"0.0.0.0:8080":     "http://127.0.0.1:8080",
		"[::]:8080":        "http://127.0.0.1:8080",
		"127.0.0.1:9999":   "http://127.0.0.1:9999",
		"10.1.2.3:8080":    "http://10.1.2.3:8080",
		"[2001:db8::1]:80": "http://[2001:db8::1]:80",
	}
	for in, want := range cases {
		if got := AdvertiseURL(in); got != want {
			t.Errorf("AdvertiseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
