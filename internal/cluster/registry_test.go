package cluster

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestClusterRegistryLeases: register/renew/deregister drive the fleet
// view, and a lapsed lease needs a full re-register (which re-notifies).
func TestClusterRegistryLeases(t *testing.T) {
	var fleets [][]string
	r := newRegistry(10*time.Second, func(ws []string) {
		fleets = append(fleets, append([]string{}, ws...))
	})
	clock := time.Unix(1000, 0)
	r.now = func() time.Time { return clock }

	if ttl := r.register("http://w1:8080"); ttl != 10*time.Second {
		t.Errorf("register ttl = %v, want 10s", ttl)
	}
	r.register("http://w2:8080")
	if got, want := r.workers(), []string{"http://w1:8080", "http://w2:8080"}; !reflect.DeepEqual(got, want) {
		t.Errorf("workers = %v, want %v", got, want)
	}

	// Renew inside the TTL succeeds and extends the lease.
	clock = clock.Add(8 * time.Second)
	if !r.renew("http://w1:8080") {
		t.Error("renew inside TTL failed")
	}

	// w2 never renewed: one sweep past its expiry prunes it and notifies.
	clock = clock.Add(3 * time.Second)
	r.sweep()
	if got, want := r.workers(), []string{"http://w1:8080"}; !reflect.DeepEqual(got, want) {
		t.Errorf("after sweep: workers = %v, want %v", got, want)
	}

	// A lapsed lease cannot renew — the worker must re-register so the
	// fleet-change notification fires and routing picks it back up.
	clock = clock.Add(20 * time.Second)
	if r.renew("http://w1:8080") {
		t.Error("renew succeeded on a lapsed lease")
	}
	if r.renew("http://never-registered:1") {
		t.Error("renew succeeded for an unknown worker")
	}

	r.register("http://w1:8080")
	r.deregister("http://w1:8080")
	if got := r.workers(); len(got) != 0 {
		t.Errorf("after deregister: workers = %v, want none", got)
	}

	// Every membership change notified; steady-state operations did not.
	want := [][]string{
		{"http://w1:8080"},                   // w1 registers
		{"http://w1:8080", "http://w2:8080"}, // w2 registers
		{"http://w1:8080"},                   // sweep prunes w2
		{"http://w1:8080"},                   // w1 re-registers after lapsing
		{},                                   // w1 deregisters
	}
	if !reflect.DeepEqual(fleets, want) {
		t.Errorf("fleet notifications:\n got %v\nwant %v", fleets, want)
	}
}

// TestClusterAdvertiseURL: wildcard listen hosts advertise loopback (the
// local-cluster quick start); concrete hosts pass through, IPv6 bracketed.
func TestClusterAdvertiseURL(t *testing.T) {
	cases := map[string]string{
		":8080":            "http://127.0.0.1:8080",
		"0.0.0.0:8080":     "http://127.0.0.1:8080",
		"[::]:8080":        "http://127.0.0.1:8080",
		"127.0.0.1:9999":   "http://127.0.0.1:9999",
		"10.1.2.3:8080":    "http://10.1.2.3:8080",
		"[2001:db8::1]:80": "http://[2001:db8::1]:80",
	}
	for in, want := range cases {
		if got := AdvertiseURL(in); got != want {
			t.Errorf("AdvertiseURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestClusterRegistryExpiryBoundary pins the lease-expiry comparison: a
// renew arriving at exactly the TTL boundary is still alive (expiry is
// inclusive — now.After(exp) is false at now == exp), one nanosecond later
// it is not. Off-by-one here is the difference between a healthy worker
// flapping out of the fleet every TTL and a dead one lingering.
func TestClusterRegistryExpiryBoundary(t *testing.T) {
	r := newRegistry(10*time.Second, nil)
	clock := time.Unix(5000, 0)
	r.now = func() time.Time { return clock }

	r.register("http://w:1")
	clock = clock.Add(10 * time.Second) // exactly at expiry
	if !r.renew("http://w:1") {
		t.Error("renew at the exact TTL boundary failed")
	}
	clock = clock.Add(10*time.Second + time.Nanosecond) // one ns past
	if r.renew("http://w:1") {
		t.Error("renew one nanosecond past expiry succeeded")
	}
	if got := r.workers(); len(got) != 0 {
		t.Errorf("lapsed worker still listed: %v", got)
	}
}

// TestClusterRegistryDeregisterAfterExpire: a graceful deregister landing
// after the lease already lapsed (worker hung through its TTL, then shut
// down) must be a quiet no-op — no double notification, no resurrection.
func TestClusterRegistryDeregisterAfterExpire(t *testing.T) {
	var notifications int
	r := newRegistry(time.Second, func([]string) { notifications++ })
	clock := time.Unix(6000, 0)
	r.now = func() time.Time { return clock }

	r.register("http://w:1") // notify 1
	clock = clock.Add(2 * time.Second)
	r.sweep() // notify 2: pruned
	before := notifications
	r.deregister("http://w:1") // already gone: must not notify
	if notifications != before {
		t.Errorf("deregister after expiry notified (%d -> %d)", before, notifications)
	}
	if got := r.workers(); len(got) != 0 {
		t.Errorf("workers = %v, want none", got)
	}
}

// TestClusterRegistryConcurrentChurn hammers register/renew/deregister/
// sweep from many goroutines under -race: the registry must stay
// internally consistent (no panics, no torn fleet views) while leases come
// and go. Every fleet view handed to onChange must be sorted — the
// deterministic order SetWorkers and the metrics rely on.
func TestClusterRegistryConcurrentChurn(t *testing.T) {
	var mu sync.Mutex
	var bad []string
	r := newRegistry(50*time.Millisecond, func(ws []string) {
		if !sort.StringsAreSorted(ws) {
			mu.Lock()
			bad = append(bad, fmt.Sprintf("%v", ws))
			mu.Unlock()
		}
	})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			url := fmt.Sprintf("http://w%d:1", g)
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0, 1:
					r.register(url)
				case 2:
					r.renew(url)
				case 3:
					r.deregister(url)
				case 4:
					r.sweep()
				}
				r.workers()
			}
		}()
	}
	wg.Wait()
	if len(bad) > 0 {
		t.Errorf("unsorted fleet views: %v", bad)
	}
}
