package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/serve"
)

// These TestCluster* tests are the cluster CI gate (scripts/ci.sh): real
// serve workers behind httptest, a real coordinator, and the acceptance
// properties of the distributed sweep fabric — byte-identical output at any
// fleet size, survival of a worker dying mid-sweep, and cache-affine
// routing paying off on repeat runs.

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newWorker boots one real simulation worker.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Options{Workers: 1, MaxInflight: 4, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// grid is a small sweep: enough points to spread over a fleet, cheap enough
// to simulate many times in one test binary.
func grid(t *testing.T) []core.Config {
	t.Helper()
	var cfgs []core.Config
	for _, part := range []int{2, 4} {
		for _, pol := range []string{"static", "ts", "rrp"} {
			cfg, err := serve.ConfigSpec{Partition: part, Topology: "mesh", Policy: pol}.ToConfig()
			if err != nil {
				t.Fatal(err)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// sweepBodies runs the configs through the coordinator as one remote plan
// and returns the response bodies in plan order, failing on any error.
func sweepBodies(t *testing.T, c *Coordinator, cfgs []core.Config, parallelism int) [][]byte {
	t.Helper()
	plan := engine.NewRemotePlan("cluster-test")
	for _, cfg := range cfgs {
		pt, err := ConfigPoint(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plan.Add(pt)
	}
	bodies, errs := engine.ExecuteRemoteAll(context.Background(), c, plan, engine.Options{Workers: parallelism})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("point %d (%s): %v", i, cfgs[i].Label(), err)
		}
	}
	return bodies
}

// TestClusterByteIdenticalAnyFleetSize is the merge invariant: the same
// sweep produces byte-identical responses whether it runs on one, two or
// three workers, at any client parallelism, and the wire values equal a
// local core.Run exactly.
func TestClusterByteIdenticalAnyFleetSize(t *testing.T) {
	w1, w2, w3 := newWorker(t), newWorker(t), newWorker(t)
	cfgs := grid(t)

	base := New(Options{Workers: []string{w1.URL}, DisableHedging: true})
	want := sweepBodies(t, base, cfgs, 1)

	// The wire summary is lossless: decoding the first body gives exactly
	// what running the config locally gives.
	got, err := serve.DecodePointSummary(want[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if local := serve.PointSummaryFrom(res); got != local {
		t.Errorf("wire summary != local run:\n got: %+v\nwant: %+v", got, local)
	}

	for _, tc := range []struct {
		name        string
		fleet       []string
		parallelism int
	}{
		{"2 workers seq", []string{w1.URL, w2.URL}, 1},
		{"2 workers par", []string{w1.URL, w2.URL}, 6},
		{"3 workers par", []string{w1.URL, w2.URL, w3.URL}, 6},
	} {
		c := New(Options{Workers: tc.fleet, DisableHedging: true})
		bodies := sweepBodies(t, c, cfgs, tc.parallelism)
		for i := range bodies {
			if !bytes.Equal(bodies[i], want[i]) {
				t.Errorf("%s: point %d differs:\n got: %s\nwant: %s",
					tc.name, i, bodies[i], want[i])
			}
		}
	}
}

// TestClusterRepeatSweepHitRatio: a repeated sweep routed by the same
// rendezvous ranking lands every point on the worker already caching it —
// the coordinator observes (almost) pure hits the second time around.
func TestClusterRepeatSweepHitRatio(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	fleet := []string{w1.URL, w2.URL}
	cfgs := grid(t)

	first := New(Options{Workers: fleet, DisableHedging: true})
	sweepBodies(t, first, cfgs, 4)

	// A fresh coordinator (fresh counters, even a fresh client — think "the
	// next morning's sweep") against the same fleet.
	second := New(Options{Workers: fleet, DisableHedging: true})
	sweepBodies(t, second, cfgs, 4)
	snap := second.Snapshot()
	if snap.Points != int64(len(cfgs)) {
		t.Errorf("second sweep points = %d, want %d", snap.Points, len(cfgs))
	}
	if ratio := snap.HitRatio(); ratio < 0.9 {
		t.Errorf("repeat sweep hit ratio = %.2f, want >= 0.9 (%d hits / %d misses)",
			ratio, snap.RemoteHits, snap.RemoteMisses)
	}
}

// TestClusterWorkerDeathMidSweep: a worker that starts failing mid-sweep
// costs nothing but time — every point still completes, rerouted to the
// survivor, with the exact bytes a healthy fleet produces.
func TestClusterWorkerDeathMidSweep(t *testing.T) {
	healthy := newWorker(t)
	inner := serve.New(serve.Options{Workers: 1, Logger: discardLogger()}).Handler()
	var served atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 2 {
			http.Error(w, "worker crashed", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)
	fleet := []string{healthy.URL, flaky.URL}

	// Extend the grid until the flaky worker is home to at least three
	// points, so its death (after serving two) is guaranteed to strand
	// routed work. httptest ports vary per run; the precondition keeps the
	// test deterministic anyway.
	cfgs := grid(t)
	homedToFlaky := func() int {
		n := 0
		for _, cfg := range cfgs {
			h, err := cfg.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if rankWorkers(fleet, h)[0] == flaky.URL {
				n++
			}
		}
		return n
	}
	for seed := int64(100); homedToFlaky() < 3; seed++ {
		cfg, err := serve.ConfigSpec{Partition: 4, Policy: "ts", Topology: "mesh", Seed: seed}.ToConfig()
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}

	// Baseline from a coordinator that never saw the flaky worker.
	want := sweepBodies(t, New(Options{Workers: []string{healthy.URL}, DisableHedging: true}), cfgs, 1)

	c := New(Options{
		Workers:        fleet,
		DisableHedging: true,
		Cooldown:       time.Minute, // stay down for the rest of the test
	})
	bodies := sweepBodies(t, c, cfgs, 1)
	for i := range bodies {
		if !bytes.Equal(bodies[i], want[i]) {
			t.Errorf("point %d differs after worker death:\n got: %s\nwant: %s", i, bodies[i], want[i])
		}
	}
	snap := c.Snapshot()
	if snap.Rebalances == 0 {
		t.Errorf("worker death produced no rebalances: %+v", snap)
	}
	if snap.Failures == 0 || snap.Cooldowns == 0 {
		t.Errorf("worker death not observed: failures=%d cooldowns=%d", snap.Failures, snap.Cooldowns)
	}
	if snap.Points != int64(len(cfgs)) {
		t.Errorf("points = %d, want %d", snap.Points, len(cfgs))
	}
}

// TestClusterBackpressureHonored: a 429 with Retry-After is waited out in
// place (bounded), keeping the point on its cache-affine home.
func TestClusterBackpressureHonored(t *testing.T) {
	var calls atomic.Int64
	respBody := []byte(`{"answer":42}`)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("X-Cache", "miss")
		w.Write(respBody)
	}))
	t.Cleanup(ts.Close)

	c := New(Options{Workers: []string{ts.URL}, MaxBackoff: 50 * time.Millisecond, DisableHedging: true})
	body, err := c.Do(context.Background(), engine.RemotePoint{Label: "p", Key: "k", Path: "/v1/point", Body: []byte("{}")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, respBody) {
		t.Errorf("body = %s, want %s", body, respBody)
	}
	snap := c.Snapshot()
	if snap.Backpressure != 1 {
		t.Errorf("backpressure waits = %d, want 1", snap.Backpressure)
	}
	if snap.Rebalances != 0 {
		t.Errorf("backpressure caused %d rebalances, want 0 (point stays home)", snap.Rebalances)
	}
}

// TestClusterBackpressureSaturation: a worker that never stops saying 429
// exhausts the bounded retries and the point fails over (here: fails, the
// fleet being one worker) instead of waiting forever.
func TestClusterBackpressureSaturation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)

	c := New(Options{Workers: []string{ts.URL}, MaxBackoff: 20 * time.Millisecond, DisableHedging: true})
	_, err := c.Do(context.Background(), engine.RemotePoint{Label: "p", Key: "k", Path: "/v1/point", Body: []byte("{}")})
	if err == nil {
		t.Fatal("Do succeeded against a saturated worker")
	}
	if snap := c.Snapshot(); snap.Backpressure != 2 {
		t.Errorf("backpressure waits = %d, want 2 (BackpressureRetries default)", snap.Backpressure)
	}
}

// TestClusterPermanentErrorNotSpread: a request the home worker rejects as
// malformed (4xx) is wrong on every worker; the coordinator must not
// shotgun it across the fleet.
func TestClusterPermanentErrorNotSpread(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	c := New(Options{Workers: []string{w1.URL, w2.URL}, DisableHedging: true})

	_, err := c.Do(context.Background(), engine.RemotePoint{
		Label: "bad", Key: "bad-key", Path: "/v1/point",
		Body: []byte(`{"config":{"policy":"no-such-policy"}}`),
	})
	if err == nil {
		t.Fatal("Do accepted a malformed point")
	}
	var perm *permanentError
	if !errors.As(err, &perm) {
		t.Fatalf("error %v is not permanent", err)
	}
	var total int64
	for _, w := range c.Snapshot().Workers {
		total += w.Requests
	}
	if total != 1 {
		t.Errorf("malformed request hit %d workers, want 1", total)
	}
}

// TestClusterHedgeRacesStraggler: a point stuck on a straggling home past
// the latency quantile is raced on the next-ranked worker, and the hedge's
// answer wins.
func TestClusterHedgeRacesStraggler(t *testing.T) {
	fastBody := []byte(`{"who":"fast"}`)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the HTTP server only watches for client
		// disconnect once the request body is consumed, and real workers
		// always parse it.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done(): // hedge won; primary cancelled
			return
		case <-time.After(10 * time.Second):
		}
		w.Write([]byte(`{"who":"slow"}`))
	}))
	t.Cleanup(slow.Close)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(fastBody)
	}))
	t.Cleanup(fast.Close)
	fleet := []string{slow.URL, fast.URL}

	// A key whose rendezvous home is the slow worker, so the hedge (which
	// starts at the second-ranked worker) is what saves the point.
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if rankWorkers(fleet, k)[0] == slow.URL {
			key = k
			break
		}
	}

	c := New(Options{
		Workers:         fleet,
		HedgeMinSamples: 1,
		HedgeMinDelay:   5 * time.Millisecond,
	})
	c.lat.record(time.Millisecond) // arm hedging: one observed completion

	body, err := c.Do(context.Background(), engine.RemotePoint{Label: "straggler", Key: key, Path: "/x", Body: []byte("{}")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, fastBody) {
		t.Errorf("body = %s, want the hedge's %s", body, fastBody)
	}
	snap := c.Snapshot()
	if snap.Hedges != 1 || snap.HedgeWins != 1 {
		t.Errorf("hedges = %d wins = %d, want 1/1", snap.Hedges, snap.HedgeWins)
	}
}

// TestClusterNoWorkers: an empty fleet is an immediate, typed error.
func TestClusterNoWorkers(t *testing.T) {
	c := New(Options{})
	_, err := c.Do(context.Background(), engine.RemotePoint{Label: "p", Key: "k", Path: "/x", Body: nil})
	if err != errNoWorkers {
		t.Errorf("err = %v, want errNoWorkers", err)
	}
}
