// Package cluster is the distributed sweep fabric: a coordinator that
// shards engine plans across a fleet of schedd workers over HTTP, plus the
// worker registration/lease protocol that keeps the fleet view current.
//
// The coordinator routes every point by rendezvous hashing on its content
// address (core.Config.Hash or the serve request key), so repeated and
// overlapping sweeps land on the worker that already holds the cached
// result — cache-affine routing, the same trick inference routers play
// with KV caches. Around that affinity it layers the machinery a real
// fleet needs: per-worker in-flight bounds, bounded 429 backoff honoring
// the worker's Retry-After, a per-worker circuit breaker
// (closed/open/half-open) that demotes flapping workers with
// exponentially growing open periods, failover to the next-ranked worker
// when the home worker dies or drains (failure-aware rebalancing),
// quantile-based hedging of straggler points bounded by a per-sweep retry
// budget, and an optional durable journal (Options.Memo) that makes a
// crashed sweep resumable. None of it changes results: workers compute
// deterministic, content-addressed bytes, so routing only ever decides
// where a byte slice is produced, never what it contains — the engine's
// byte-identical, index-keyed merge survives any fleet size.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Options tunes a Coordinator. Zero values take the listed defaults.
type Options struct {
	// Workers is the initial fleet: worker base URLs. The set can change
	// later via SetWorkers (the registry feeds it in coordinator-server
	// mode).
	Workers []string
	// PerWorkerInflight bounds concurrent requests per worker (default 4).
	// Workers bound admission themselves; this keeps the client from
	// queueing deeply behind a slow worker when a rehash would serve the
	// point sooner.
	PerWorkerInflight int
	// BackpressureRetries is how many 429 + Retry-After waits to spend on
	// the ranked worker before rehashing to the next one (default 2).
	BackpressureRetries int
	// MaxBackoff caps a single honored Retry-After wait (default 5s).
	MaxBackoff time.Duration
	// FailureThreshold is how many consecutive transport/5xx failures trip
	// a worker's circuit breaker open (default 1 — one failed simulation
	// is wasted seconds, so rebalance eagerly and probe later).
	FailureThreshold int
	// Cooldown is the breaker's initial open period after it trips; each
	// re-open doubles it up to MaxCooldown (defaults 2s, 30s). After the
	// open period the breaker goes half-open: one probe request decides
	// between closing it and re-opening with the doubled period.
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// HedgeQuantile sets the straggler threshold: a point in flight longer
	// than this quantile of recent completions is raced on the next-ranked
	// worker (default 0.95). DisableHedging turns racing off.
	HedgeQuantile  float64
	DisableHedging bool
	// HedgeMinDelay floors the hedge delay so a burst of cache hits cannot
	// talk the coordinator into racing every point (default 50ms).
	// HedgeMinSamples is how many completions must be observed before
	// hedging arms (default 8).
	HedgeMinDelay   time.Duration
	HedgeMinSamples int
	// SweepRetryBudget bounds the total extra attempts — failover rehashes,
	// backpressure waits and hedge launches — this coordinator may spend
	// over its lifetime (one sweep, for the CLI tools). It is the fuse
	// that keeps a flapping fleet from consuming unbounded hedges and
	// retries. Default 1024; negative means unlimited.
	SweepRetryBudget int
	// Memo, when set, makes execution resumable: Do answers journaled
	// points without touching a worker and durably records each newly
	// completed point before reporting success. The production Memo is
	// *Journal (schedd -coordinate -journal <dir>).
	Memo engine.Memo
	// Client is the HTTP client (default: dedicated client, no global
	// timeout — deadlines come from request contexts).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.PerWorkerInflight <= 0 {
		o.PerWorkerInflight = 4
	}
	if o.BackpressureRetries <= 0 {
		o.BackpressureRetries = 2
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 1
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * time.Second
	}
	if o.MaxCooldown <= 0 {
		o.MaxCooldown = 30 * time.Second
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile > 1 {
		o.HedgeQuantile = 0.95
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = 50 * time.Millisecond
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 8
	}
	if o.SweepRetryBudget == 0 {
		o.SweepRetryBudget = 1024
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// worker is the coordinator's view of one fleet member.
type worker struct {
	url   string
	slots chan struct{} // per-worker in-flight bound
	br    breaker       // failure state machine (closed/open/half-open)

	requests atomic.Int64 // points sent (attempts, including hedges)
	failures atomic.Int64 // transport errors + 5xx
	hits     atomic.Int64 // X-Cache: hit responses
	misses   atomic.Int64 // X-Cache: miss responses
	inflight atomic.Int64
}

// Coordinator shards points across the fleet. It implements engine.Remote.
type Coordinator struct {
	opts Options

	mu      sync.RWMutex
	workers map[string]*worker

	lat         *latencyWindow
	retryBudget atomic.Int64 // remaining extra attempts (when bounded)
	m           coordinatorMetrics

	now func() time.Time // test hook
}

// New builds a Coordinator over the given worker fleet.
func New(opts Options) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:    opts,
		workers: make(map[string]*worker),
		lat:     newLatencyWindow(256),
		now:     time.Now,
	}
	c.retryBudget.Store(int64(opts.SweepRetryBudget))
	c.SetWorkers(opts.Workers)
	return c
}

// SetWorkers replaces the fleet with the given worker URLs. Workers present
// in both sets keep their in-flight bounds and counters; removed workers
// drop out of routing immediately (requests already in flight to them
// finish or fail on their own). The registry calls this as leases come and
// go.
func (c *Coordinator) SetWorkers(urls []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := make(map[string]*worker, len(urls))
	for _, u := range urls {
		if w, ok := c.workers[u]; ok {
			next[u] = w
			continue
		}
		next[u] = &worker{url: u, slots: make(chan struct{}, c.opts.PerWorkerInflight)}
	}
	c.workers = next
}

// WorkerURLs reports the current fleet, unordered.
func (c *Coordinator) WorkerURLs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.workers))
	for u := range c.workers {
		out = append(out, u)
	}
	return out
}

// SuggestedParallelism is the client-side in-flight bound that saturates
// the fleet: every worker's slot allowance, plus one to keep a request
// queued behind each.
func (c *Coordinator) SuggestedParallelism() int {
	c.mu.RLock()
	n := len(c.workers)
	c.mu.RUnlock()
	if n == 0 {
		return 1
	}
	return n * (c.opts.PerWorkerInflight + 1)
}

// spendRetry consumes one unit of the per-sweep retry budget, reporting
// false when it is exhausted. Every extra attempt beyond a point's first —
// failover rehashes, backpressure waits, hedge launches — passes through
// here, so a flapping fleet degrades into bounded, accounted retrying
// instead of an unbounded storm.
func (c *Coordinator) spendRetry() bool {
	if c.opts.SweepRetryBudget < 0 {
		return true
	}
	for {
		cur := c.retryBudget.Load()
		if cur <= 0 {
			return false
		}
		if c.retryBudget.CompareAndSwap(cur, cur-1) {
			c.m.retrySpent.Add(1)
			return true
		}
	}
}

// retryBudgetLeft reports the remaining budget (-1 when unlimited).
func (c *Coordinator) retryBudgetLeft() int64 {
	if c.opts.SweepRetryBudget < 0 {
		return -1
	}
	return c.retryBudget.Load()
}

// errNoWorkers is returned when the fleet is empty.
var errNoWorkers = errors.New("cluster: no workers")

// errRetryBudgetExhausted marks failures caused by the per-sweep retry
// budget running dry rather than by any single worker.
var errRetryBudgetExhausted = errors.New("cluster: per-sweep retry budget exhausted")

// errPermanent marks responses that retrying elsewhere cannot fix (4xx:
// the request itself is malformed or names an unknown experiment).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Do routes one point: journal replay, rendezvous-ranked affinity, bounded
// backpressure retry, failover rehash, and straggler hedging. It
// implements engine.Remote, so ExecuteRemoteAll gives remote plans the
// engine's ordering and error contract.
//
// With a Memo configured, a point already journaled is answered from the
// journal byte-identically — no worker sees it — and a newly completed
// point is durably recorded before Do reports success, so an acknowledged
// point survives a coordinator crash.
func (c *Coordinator) Do(ctx context.Context, pt engine.RemotePoint) ([]byte, error) {
	if c.opts.Memo != nil {
		if body, ok := c.opts.Memo.Get(pt.Key); ok {
			c.m.journalHits.Add(1)
			c.m.points.Add(1)
			return body, nil
		}
	}
	start := c.now()
	body, err := c.do(ctx, pt)
	if err != nil {
		return nil, err
	}
	if c.opts.Memo != nil {
		if err := c.opts.Memo.Put(pt.Key, body); err != nil {
			return nil, fmt.Errorf("cluster: journaling point %s: %w", pt.Label, err)
		}
		c.m.journalAppends.Add(1)
	}
	c.m.points.Add(1)
	c.lat.record(c.now().Sub(start))
	return body, nil
}

func (c *Coordinator) do(ctx context.Context, pt engine.RemotePoint) ([]byte, error) {
	ranked, home := c.rank(pt.Key)
	if len(ranked) == 0 {
		return nil, errNoWorkers
	}
	// Every leg of this point — primary, hedge, backoff sleeps — derives
	// from one per-point context, cancelled the moment Do has an answer
	// (or gives up). A lost hedge race therefore tears down promptly
	// instead of leaking a goroutine that holds a worker slot until its
	// HTTP request times out on its own.
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	delay, hedge := c.hedgeDelay()
	if !hedge || len(ranked) < 2 {
		return c.failover(pctx, pt, ranked, home)
	}

	// Race a straggling primary against the rest of the ranking. The
	// secondary starts from the second-ranked worker, so a healthy home
	// keeps its cache affinity and the hedge lands on the deterministic
	// fallback — the worker a rehash would pick anyway.
	type outcome struct {
		body  []byte
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2)
	go func() {
		b, err := c.failover(pctx, pt, ranked, home)
		ch <- outcome{b, err, false}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	outstanding := 1
	launched := false
	var firstErr error
	for {
		select {
		case <-timer.C:
			if launched {
				continue
			}
			launched = true
			if !c.spendRetry() {
				continue // budget dry: no hedge, ride the primary
			}
			outstanding++
			c.m.hedges.Add(1)
			hedged := append(append([]*worker{}, ranked[1:]...), ranked[0])
			go func() {
				b, err := c.failover(pctx, pt, hedged, home)
				ch <- outcome{b, err, true}
			}()
		case out := <-ch:
			outstanding--
			if out.err == nil {
				if out.hedge {
					c.m.hedgeWins.Add(1)
				}
				cancel()
				return out.body, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
			// The other leg is still running; its success can still save
			// the point. Stop arming new hedges either way.
			timer.Stop()
		}
	}
}

// rank returns the available workers in rendezvous order for the key, with
// workers whose breaker is open demoted to the tail (last resort rather
// than excluded: if the whole fleet is tripped, trying is still better
// than failing). home is the top of the pure ranking, breakers ignored —
// the worker whose cache should own this key.
func (c *Coordinator) rank(key string) (ranked []*worker, home string) {
	c.mu.RLock()
	ids := make([]string, 0, len(c.workers))
	for u := range c.workers {
		ids = append(ids, u)
	}
	byID := c.workers
	c.mu.RUnlock()
	if len(ids) == 0 {
		return nil, ""
	}
	order := rankWorkers(ids, key)
	home = order[0]
	now := c.now()
	var up, down []*worker
	for _, id := range order {
		w := byID[id]
		if w.br.demoted(now) {
			down = append(down, w)
		} else {
			up = append(up, w)
		}
	}
	return append(up, down...), home
}

// hedgeDelay reports the current straggler threshold and whether hedging
// is armed. Hedging disarms when the per-sweep retry budget is dry.
func (c *Coordinator) hedgeDelay() (time.Duration, bool) {
	if c.opts.DisableHedging {
		return 0, false
	}
	if c.opts.SweepRetryBudget >= 0 && c.retryBudget.Load() <= 0 {
		return 0, false
	}
	if c.lat.count() < c.opts.HedgeMinSamples {
		return 0, false
	}
	d := c.lat.quantile(c.opts.HedgeQuantile)
	if d < c.opts.HedgeMinDelay {
		d = c.opts.HedgeMinDelay
	}
	return d, true
}

// failover walks the ranked workers until one answers. Backpressure (429)
// is retried in place with the worker's own Retry-After hint before moving
// on; transport errors and 5xx move on immediately and feed the worker's
// circuit breaker. Serving a point anywhere but its home worker counts as
// one rebalance. Every worker after the first spends one unit of the
// per-sweep retry budget; a dry budget ends the walk.
func (c *Coordinator) failover(ctx context.Context, pt engine.RemotePoint, ranked []*worker, home string) ([]byte, error) {
	var errs []error
	for i, w := range ranked {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if i > 0 && !c.spendRetry() {
			errs = append(errs, errRetryBudgetExhausted)
			break
		}
		body, err := c.attempt(ctx, pt, w)
		if err == nil {
			if w.url != home {
				c.m.rebalances.Add(1)
			}
			return body, nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		errs = append(errs, fmt.Errorf("%s: %w", w.url, err))
	}
	return nil, fmt.Errorf("cluster: point %s failed on every worker: %w", pt.Label, errors.Join(errs...))
}

// attempt sends the point to one worker, absorbing bounded backpressure.
// The worker's circuit breaker observes the outcome: 200 closes it, a
// transport error or 5xx (re)opens it past the threshold, 503 trips it
// immediately (the worker said it is draining), and 429 saturation is
// neutral — backpressure is the worker protecting itself, not failing.
func (c *Coordinator) attempt(ctx context.Context, pt engine.RemotePoint, w *worker) ([]byte, error) {
	select {
	case w.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	w.inflight.Add(1)
	defer func() {
		w.inflight.Add(-1)
		<-w.slots
	}()

	probe := w.br.beginAttempt(c.now())
	backoffs := 0
	for {
		w.requests.Add(1)
		body, status, retryAfter, err := c.post(ctx, w.url+pt.Path, pt.Body)
		now := c.now()
		switch {
		case err != nil && ctx.Err() != nil:
			// The point's context ended — a lost hedge race being cancelled,
			// or the sweep shutting down. That judges nobody: the worker may
			// be mid-simulation and healthy, so the breaker stays put.
			w.br.neutral(probe)
			return nil, ctx.Err()
		case err != nil:
			w.failures.Add(1)
			c.m.failures.Add(1)
			if w.br.failure(probe, c.opts.FailureThreshold, c.opts.Cooldown, c.opts.MaxCooldown, now) {
				c.m.cooldowns.Add(1)
			}
			return nil, err
		case status == http.StatusOK:
			w.br.success(probe)
			return body, nil
		case status == http.StatusTooManyRequests && backoffs < c.opts.BackpressureRetries:
			if !c.spendRetry() {
				w.br.neutral(probe)
				return nil, fmt.Errorf("saturated (429), %w", errRetryBudgetExhausted)
			}
			backoffs++
			c.m.backpressure.Add(1)
			if !sleepCtx(ctx, backoffWait(retryAfter, backoffs, c.opts.MaxBackoff)) {
				w.br.neutral(probe)
				return nil, ctx.Err()
			}
		case status == http.StatusTooManyRequests:
			w.br.neutral(probe)
			return nil, fmt.Errorf("saturated after %d backoffs (429)", backoffs)
		case status == http.StatusServiceUnavailable:
			// Draining: the worker is leaving; don't count it as broken,
			// but stop routing to it for a moment and rehash now.
			w.br.trip(c.opts.Cooldown, c.opts.MaxCooldown, now)
			c.m.cooldowns.Add(1)
			return nil, fmt.Errorf("worker draining (503)")
		case status >= 500:
			w.failures.Add(1)
			c.m.failures.Add(1)
			if w.br.failure(probe, c.opts.FailureThreshold, c.opts.Cooldown, c.opts.MaxCooldown, now) {
				c.m.cooldowns.Add(1)
			}
			return nil, fmt.Errorf("status %d: %s", status, truncate(body, 200))
		default:
			// 4xx: the request is wrong everywhere; do not spread it.
			w.br.neutral(probe)
			return nil, &permanentError{fmt.Errorf("status %d: %s", status, truncate(body, 200))}
		}
	}
}

// post issues one HTTP request and classifies the response. A hit/miss
// X-Cache header from the worker feeds the affinity metrics.
func (c *Coordinator) post(ctx context.Context, url string, body []byte) (respBody []byte, status int, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	if resp.StatusCode == http.StatusOK {
		switch resp.Header.Get("X-Cache") {
		case "hit":
			c.m.remoteHits.Add(1)
			c.workerFor(url).hits.Add(1)
		case "miss":
			c.m.remoteMisses.Add(1)
			c.workerFor(url).misses.Add(1)
		}
	}
	retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.now())
	return b, resp.StatusCode, retryAfter, nil
}

// parseRetryAfter interprets a Retry-After header per RFC 9110: either
// delay-seconds or an HTTP-date. Missing, malformed or negative values
// return 0, which backoffWait maps onto the doubling fallback schedule —
// a garbage header must never stall or zero out the backoff.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// backoffWait picks the n-th backpressure wait (n counts from 1): the
// worker's Retry-After hint when it gave a usable one, otherwise a
// doubling schedule seeded at a tenth of the cap. Either way the wait is
// clamped to the cap.
func backoffWait(hint time.Duration, n int, max time.Duration) time.Duration {
	d := hint
	if d <= 0 {
		d = max / 10
		for i := 1; i < n; i++ {
			d *= 2
		}
	}
	if d > max {
		d = max
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// workerFor finds the worker owning a full endpoint URL (url is
// worker.url + path). Counters for workers that left the fleet mid-flight
// land on a throwaway.
func (c *Coordinator) workerFor(url string) *worker {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for u, w := range c.workers {
		if len(url) >= len(u) && url[:len(u)] == u {
			return w
		}
	}
	return &worker{}
}

// sleepCtx waits d or until the context ends; it reports false on
// cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
