package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Rendezvous (highest-random-weight) hashing: every (worker, key) pair gets
// a pseudo-random score and the key routes to the highest-scoring worker.
// Two properties make it the right router for a content-addressed fleet:
//
//   - Affinity. The score depends only on the pair, so a repeated or
//     overlapping sweep sends each point back to the worker that already
//     holds its cached result — no shared routing table, no coordination.
//
//   - Minimal disruption. When a worker joins or leaves, only the keys
//     whose top choice changed move; everything else keeps its home and
//     its cache. A mod-N table would reshuffle almost every key.
//
// The ranking (not just the winner) is the failover order: when the home
// worker is down or saturated, the point rehashes to the next-highest
// score, deterministically, so retries from different clients converge on
// the same secondary and its cache.

// score is the HRW weight of (worker, key): the first 8 bytes of
// sha256(worker, 0x00, key). SHA-256 keeps scores uniform and stable across
// processes, architectures and Go versions — the same determinism argument
// as core.Config.Hash.
func score(worker, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(worker))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// rankWorkers orders worker ids by descending HRW score for the key, with
// the id as a total-order tiebreak so the ranking is deterministic even in
// the (vanishing) event of a score collision.
func rankWorkers(ids []string, key string) []string {
	type ranked struct {
		id string
		s  uint64
	}
	rs := make([]ranked, len(ids))
	for i, id := range ids {
		rs[i] = ranked{id, score(id, key)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].s != rs[j].s {
			return rs[i].s > rs[j].s
		}
		return rs[i].id < rs[j].id
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.id
	}
	return out
}
