package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Worker-side half of the lease protocol: a schedd started with -worker
// registers its advertised URL with the coordinator, renews at a third of
// the granted TTL, and deregisters on graceful shutdown so the fleet
// change is immediate instead of waiting out the lease.

// RegisterWorker registers addr with the coordinator and returns the lease
// TTL the renew loop must beat.
func RegisterWorker(ctx context.Context, client *http.Client, coordinator, addr string) (time.Duration, error) {
	return postLease(ctx, client, coordinator+"/v1/workers/register", addr)
}

// MaintainWorker renews the lease at TTL/3 until ctx ends. A 404 (lease
// lapsed while we were descheduled) re-registers; other failures retry at
// the same cadence — the lease protocol tolerates missed beats by design.
func MaintainWorker(ctx context.Context, client *http.Client, coordinator, addr string, ttl time.Duration) {
	interval := ttl / 3
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			newTTL, err := postLease(ctx, client, coordinator+"/v1/workers/renew", addr)
			if err != nil {
				newTTL, err = postLease(ctx, client, coordinator+"/v1/workers/register", addr)
			}
			if err == nil && newTTL != ttl && newTTL > 0 {
				ttl = newTTL
				t.Reset(maxDuration(ttl/3, 100*time.Millisecond))
			}
		}
	}
}

// DeregisterWorker removes the lease, best-effort with a short deadline:
// shutdown must not block on a coordinator that is itself gone.
func DeregisterWorker(client *http.Client, coordinator, addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	body, _ := json.Marshal(workerRef{Addr: addr})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinator+"/v1/workers/deregister", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func postLease(ctx context.Context, client *http.Client, url, addr string) (time.Duration, error) {
	body, err := json.Marshal(workerRef{Addr: addr})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, truncate(b, 200))
	}
	var lease struct {
		TTLMS int64 `json:"ttl_ms"`
	}
	if err := json.Unmarshal(b, &lease); err != nil {
		return 0, fmt.Errorf("%s: %w", url, err)
	}
	return time.Duration(lease.TTLMS) * time.Millisecond, nil
}

// AdvertiseURL derives the base URL a worker registers under from its
// listen address. Wildcard hosts ("[::]:8080", "0.0.0.0:8080", ":8080")
// advertise the loopback address — right for the local-cluster quick start;
// multi-host fleets pass an explicit -advertise.
func AdvertiseURL(listenAddr string) string {
	host, port, err := net.SplitHostPort(listenAddr)
	if err != nil {
		return "http://" + listenAddr
	}
	switch host {
	case "", "::", "0.0.0.0", "[::]":
		host = "127.0.0.1"
	}
	if strings.Contains(host, ":") && !strings.HasPrefix(host, "[") {
		host = "[" + host + "]"
	}
	return "http://" + host + ":" + port
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
