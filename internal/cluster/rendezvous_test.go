package cluster

import (
	"fmt"
	"testing"
	"time"
)

// TestClusterRendezvousRanking: the ranking is a deterministic permutation
// of the fleet for every key.
func TestClusterRendezvousRanking(t *testing.T) {
	ids := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		r1 := rankWorkers(ids, key)
		r2 := rankWorkers(ids, key)
		if len(r1) != len(ids) {
			t.Fatalf("ranking lost workers: %v", r1)
		}
		seen := map[string]bool{}
		for j := range r1 {
			if r1[j] != r2[j] {
				t.Fatalf("ranking for %q not deterministic: %v vs %v", key, r1, r2)
			}
			seen[r1[j]] = true
		}
		if len(seen) != len(ids) {
			t.Fatalf("ranking for %q is not a permutation: %v", key, r1)
		}
	}
}

// TestClusterRendezvousMinimalDisruption: removing one worker moves only
// the keys it owned; every other key keeps its home (and its cache).
func TestClusterRendezvousMinimalDisruption(t *testing.T) {
	ids := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	const removed = "http://c:1"
	rest := []string{"http://a:1", "http://b:1", "http://d:1"}

	moved, kept := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := rankWorkers(ids, key)[0]
		after := rankWorkers(rest, key)[0]
		if before == removed {
			// Owned by the removed worker: must land on its old runner-up,
			// which is exactly where failover was already sending it.
			if want := rankWorkers(ids, key)[1]; after != want {
				t.Errorf("key %q moved to %s, want old second choice %s", key, after, want)
			}
			moved++
			continue
		}
		if after != before {
			t.Errorf("key %q moved from %s to %s though its home survived", key, before, after)
		}
		kept++
	}
	// Sanity: the removed worker owned a reasonable share, so the test
	// actually exercised both branches.
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate key distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestClusterLatencyWindow: the quantile tracks the window, including after
// the ring wraps.
func TestClusterLatencyWindow(t *testing.T) {
	l := newLatencyWindow(8)
	if got := l.quantile(0.95); got != 0 {
		t.Errorf("empty window quantile = %v, want 0", got)
	}
	for i := 1; i <= 8; i++ {
		l.record(time.Duration(i) * time.Millisecond)
	}
	if got := l.count(); got != 8 {
		t.Errorf("count = %d, want 8", got)
	}
	if got := l.quantile(1.0); got != 8*time.Millisecond {
		t.Errorf("max quantile = %v, want 8ms", got)
	}
	if got := l.quantile(0.5); got != 4*time.Millisecond {
		t.Errorf("median = %v, want 4ms", got)
	}
	// Wrap: 8 new large samples displace the old ones entirely.
	for i := 0; i < 8; i++ {
		l.record(time.Second)
	}
	if got := l.quantile(0.5); got != time.Second {
		t.Errorf("median after wrap = %v, want 1s", got)
	}
}
