package cluster

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/sim"
)

// TestClusterForkResume is the cluster half of the warm-fork gate: the
// shared prefix runs once locally, its serialized snapshot ships to a
// 2-worker fleet, and every divergent continuation resumed remotely is
// value-identical to the local warm run — and byte-identical across fleet
// sizes and client parallelism.
func TestClusterForkResume(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)

	cfg, err := serve.ConfigSpec{Partition: 4, Topology: "mesh", Policy: "ts"}.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := core.Prepare(cfg, core.ForkPoint{WarmJobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := warm.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}

	divs := []core.Divergence{
		{},
		{SeedSet: true, Seed: 1},
		{SeedSet: true, Seed: 2},
		{BasicQuantum: 20 * sim.Millisecond},
		{BasicQuantum: 40 * sim.Millisecond},
		{SeedSet: true, Seed: 3, BasicQuantum: 30 * sim.Millisecond},
	}

	forkPlan := func() *engine.RemotePlan {
		plan := engine.NewRemotePlan("fork-resume")
		for _, div := range divs {
			pt, err := ForkConfigPoint(cfg, snapshot, div)
			if err != nil {
				t.Fatal(err)
			}
			plan.Add(pt)
		}
		return plan
	}

	two := New(Options{Workers: []string{w1.URL, w2.URL}, DisableHedging: true})
	bodies, errs := engine.ExecuteRemoteAll(context.Background(), two, forkPlan(), engine.Options{Workers: 4})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("remote fork point %d: %v", i, err)
		}
	}

	// Remote continuations equal the local warm runs value-for-value.
	for i, div := range divs {
		res, err := warm.Run(div)
		if err != nil {
			t.Fatalf("local warm run %d: %v", i, err)
		}
		local := serve.PointSummaryFrom(res)
		got, err := serve.DecodePointSummary(bodies[i])
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if got != local {
			t.Errorf("point %d: remote resume != local warm run\n got: %+v\nwant: %+v", i, got, local)
		}
	}

	// Fleet-size invariance: a 1-worker fleet produces the same bytes.
	one := New(Options{Workers: []string{w1.URL}, DisableHedging: true})
	again, errs := engine.ExecuteRemoteAll(context.Background(), one, forkPlan(), engine.Options{Workers: 1})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("1-worker fork point %d: %v", i, err)
		}
	}
	for i := range bodies {
		if !bytes.Equal(bodies[i], again[i]) {
			t.Errorf("point %d differs between 2-worker and 1-worker fleets:\n got: %s\nwant: %s",
				i, bodies[i], again[i])
		}
	}

	// A t=0 snapshot resumed remotely equals a cold /v1/point of the same
	// config: the forked and unforked wire paths agree on the zero fork.
	zero, err := core.Prepare(cfg, core.ForkPoint{})
	if err != nil {
		t.Fatal(err)
	}
	zeroSnap, err := zero.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	forked, err := two.RunForked(context.Background(), cfg, zeroSnap, core.Divergence{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := two.RunConfig(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if forked != cold {
		t.Errorf("t=0 remote fork != cold remote point\n got: %+v\nwant: %+v", forked, cold)
	}
}
