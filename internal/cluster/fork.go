package cluster

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/serve"
)

// Warm-resume adapters: ship a fork group's serialized snapshot to the
// fleet so workers resume the shared prefix instead of cold-starting it.
// The client prepares the donor once (engine.ForkGroup does this lazily),
// encodes the snapshot once, and every divergent continuation reuses the
// same bytes — the per-point cost on the wire is one snapshot body, and on
// the worker it is only the post-fork suffix of the simulation.

// ForkConfigPoint converts (base config, encoded snapshot, divergence)
// into the remote point the coordinator routes: body is the /v1/fork
// request, key is the content address binding all three — so distinct
// divergences of one group spread over the fleet, while a repeated sweep
// finds every continuation already cached. The base must be
// wire-representable, like any /v1/point config.
func ForkConfigPoint(base core.Config, snapshot []byte, div core.Divergence) (engine.RemotePoint, error) {
	spec, err := serve.SpecFromConfig(base)
	if err != nil {
		return engine.RemotePoint{}, err
	}
	hash, err := base.Hash()
	if err != nil {
		return engine.RemotePoint{}, err
	}
	divSpec := serve.DivergenceSpecFrom(div)
	body, err := serve.EncodeForkRequest(serve.ForkRequest{
		Config:     spec,
		Snapshot:   snapshot,
		Divergence: divSpec,
	})
	if err != nil {
		return engine.RemotePoint{}, err
	}
	return engine.RemotePoint{
		Label: base.Label() + "+fork",
		Key:   serve.ForkKey(hash, snapshot, divSpec),
		Path:  "/v1/fork",
		Body:  body,
	}, nil
}

// RunForked executes one divergent continuation of a snapshotted prefix on
// the cluster and decodes the summary — the remote analogue of
// core.ResumeFromSnapshot for wire-representable configs.
func (c *Coordinator) RunForked(ctx context.Context, base core.Config, snapshot []byte, div core.Divergence) (serve.PointSummary, error) {
	pt, err := ForkConfigPoint(base, snapshot, div)
	if err != nil {
		return serve.PointSummary{}, err
	}
	body, err := c.Do(ctx, pt)
	if err != nil {
		return serve.PointSummary{}, err
	}
	ps, err := serve.DecodePointSummary(body)
	if err != nil {
		return serve.PointSummary{}, fmt.Errorf("fork point %s: %w", pt.Label, err)
	}
	return ps, nil
}
