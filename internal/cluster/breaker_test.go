package cluster

import (
	"testing"
	"time"
)

// The breaker state machine in isolation: closed → open on threshold
// failures, half-open after the cooldown with a single elected probe, and
// closed again (or re-open with a doubled cooldown) on the probe's outcome.

func TestClusterBreakerTripAndRecover(t *testing.T) {
	var b breaker
	t0 := time.Unix(1000, 0)
	base, max := 2*time.Second, 30*time.Second

	if b.state(t0) != breakerClosed || b.demoted(t0) {
		t.Fatal("fresh breaker not closed")
	}

	// Two failures at threshold 2: first keeps it closed, second opens.
	if probe := b.beginAttempt(t0); probe {
		t.Error("closed breaker elected a probe")
	}
	if opened := b.failure(false, 2, base, max, t0); opened {
		t.Error("breaker opened below threshold")
	}
	if opened := b.failure(false, 2, base, max, t0); !opened {
		t.Error("breaker did not open at threshold")
	}
	if b.state(t0) != breakerOpen || !b.demoted(t0) {
		t.Error("tripped breaker not open/demoted")
	}

	// Before the cooldown elapses it stays open; after, it is half-open and
	// exactly one attempt wins the probe election.
	t1 := t0.Add(base - time.Millisecond)
	if b.state(t1) != breakerOpen {
		t.Error("breaker closed early")
	}
	t2 := t0.Add(base + time.Millisecond)
	if b.state(t2) != breakerHalfOpen {
		t.Error("breaker not half-open after cooldown")
	}
	if !b.beginAttempt(t2) {
		t.Error("first half-open attempt was not the probe")
	}
	if b.beginAttempt(t2) {
		t.Error("second concurrent attempt also elected probe")
	}
	if !b.demoted(t2) {
		t.Error("half-open with probe in flight should stay demoted")
	}

	// Probe succeeds: fully closed, failure count reset.
	b.success(true)
	if b.state(t2) != breakerClosed || b.demoted(t2) {
		t.Error("breaker not closed after successful probe")
	}
	if opened := b.failure(false, 2, base, max, t2); opened {
		t.Error("failure count not reset by probe success")
	}
}

func TestClusterBreakerDoublingCooldown(t *testing.T) {
	var b breaker
	now := time.Unix(2000, 0)
	base, max := 2*time.Second, 30*time.Second

	// Trip, wait out the cooldown, fail the probe — repeatedly. Each failed
	// probe must re-open with a doubled period, capped at max.
	b.trip(base, max, now)
	want := base
	for i := 0; i < 6; i++ {
		now = now.Add(want + time.Millisecond)
		if b.state(now) != breakerHalfOpen {
			t.Fatalf("round %d: not half-open after %v", i, want)
		}
		probe := b.beginAttempt(now)
		if !probe {
			t.Fatalf("round %d: no probe elected", i)
		}
		if opened := b.failure(true, 1, base, max, now); !opened {
			t.Fatalf("round %d: failed probe did not re-open", i)
		}
		want *= 2
		if want > max {
			want = max
		}
		if b.state(now.Add(want-time.Millisecond)) != breakerOpen {
			t.Errorf("round %d: cooldown shorter than %v", i, want)
		}
	}
	if want != max {
		t.Fatalf("test never reached the cap: %v", want)
	}
}

func TestClusterBreakerNeutralReleasesProbe(t *testing.T) {
	var b breaker
	now := time.Unix(3000, 0)
	base, max := time.Second, 10*time.Second

	b.trip(base, max, now)
	now = now.Add(base + time.Millisecond)
	if !b.beginAttempt(now) {
		t.Fatal("no probe elected")
	}
	// 429 saturation is neutral: the probe slot is released without judging
	// the worker, so the next attempt can probe again.
	b.neutral(true)
	if !b.beginAttempt(now) {
		t.Error("probe slot not released by neutral outcome")
	}
	if b.state(now) != breakerHalfOpen {
		t.Error("neutral outcome changed breaker state")
	}
}

func TestClusterBreakerImmediateTrip(t *testing.T) {
	var b breaker
	now := time.Unix(4000, 0)
	// trip (the 503-draining path) opens regardless of failure counts; a
	// second trip re-opens with the doubled period, same as a failed probe —
	// a worker that keeps saying 503 absorbs geometrically less traffic.
	b.trip(time.Second, 10*time.Second, now)
	if b.state(now) != breakerOpen {
		t.Fatal("trip did not open breaker")
	}
	b.trip(time.Second, 10*time.Second, now.Add(500*time.Millisecond))
	if b.state(now.Add(2400*time.Millisecond)) != breakerOpen {
		t.Error("re-trip did not double the open period")
	}
	if b.state(now.Add(2600*time.Millisecond)) != breakerHalfOpen {
		t.Error("doubled open period longer than expected")
	}
}
