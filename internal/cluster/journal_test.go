package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestClusterJournalRoundTrip: appended records survive a close/reopen with
// the same keys and bytes — the basic durability contract.
func TestClusterJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%02d", i)
		body := []byte(fmt.Sprintf(`{"point":%d,"payload":"%d"}`, i, i*i))
		want[key] = body
		if err := j.Put(key, body); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Appends(); got != 20 {
		t.Errorf("Appends = %d, want 20", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(want) {
		t.Fatalf("replayed %d entries, want %d", j2.Len(), len(want))
	}
	if j2.Appends() != 0 {
		t.Errorf("replayed records counted as appends: %d", j2.Appends())
	}
	for key, body := range want {
		got, ok := j2.Get(key)
		if !ok {
			t.Fatalf("key %s lost across reopen", key)
		}
		if !bytes.Equal(got, body) {
			t.Errorf("key %s: body %s, want %s", key, got, body)
		}
	}
}

// TestClusterJournalDedupe: re-putting a journaled key is a no-op — the log
// stays exactly-once per point, which is what the chaos harness audits.
func TestClusterJournalDedupe(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 5; i++ {
		if err := j.Put("dup", []byte("body")); err != nil {
			t.Fatal(err)
		}
	}
	if j.Appends() != 1 {
		t.Errorf("Appends = %d after 5 duplicate Puts, want 1", j.Appends())
	}
	entries, err := ScanJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("ScanJournal found %d raw records, want 1", len(entries))
	}
}

// TestClusterJournalTornTail simulates a crash mid-append: garbage after
// the last valid record must not poison replay, and the reopened journal
// must truncate it so future appends produce a clean log.
func TestClusterJournalTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail []byte
	}{
		{"partial line", []byte(`{"key":"torn","bo`)},
		{"not json", []byte("garbage bytes not a record\n")},
		{"bad checksum", []byte(`{"key":"torn","body":"aGk=","crc":1}` + "\n")},
		{"valid json wrong shape", []byte(`{"other":"thing"}` + "\n")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, err := OpenJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Put("good-1", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := j.Put("good-2", []byte("two")); err != nil {
				t.Fatal(err)
			}
			j.Close()
			if err := appendRawJournalLine(dir, tc.tail); err != nil {
				t.Fatal(err)
			}

			j2, err := OpenJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if j2.Len() != 2 {
				t.Fatalf("replayed %d entries past a torn tail, want 2", j2.Len())
			}
			if _, ok := j2.Get("torn"); ok {
				t.Error("torn record resurrected")
			}
			// Appends after the truncation must produce a log every replayer
			// reads in full: the torn bytes are gone, not interleaved.
			if err := j2.Put("good-3", []byte("three")); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			entries, err := ScanJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 3 {
				t.Fatalf("post-truncation log has %d records, want 3", len(entries))
			}
			if entries[2].Key != "good-3" || !bytes.Equal(entries[2].Body, []byte("three")) {
				t.Errorf("final record = %s/%s, want good-3/three", entries[2].Key, entries[2].Body)
			}
		})
	}
}

// TestClusterJournalEmptyAndMissing: opening a fresh directory works, and
// scanning a directory with no journal reports a missing-file error rather
// than an empty success.
func TestClusterJournalEmptyAndMissing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "journal")
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Errorf("fresh journal has %d entries", j.Len())
	}
	j.Close()

	if _, err := ScanJournal(t.TempDir()); !os.IsNotExist(err) {
		t.Errorf("ScanJournal on a journal-less dir: err = %v, want not-exist", err)
	}
}

// TestClusterJournalKeysSorted: Keys is the deterministic audit order.
func TestClusterJournalKeysSorted(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, k := range []string{"c", "a", "b"} {
		if err := j.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := j.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Errorf("Keys = %v, want [a b c]", keys)
	}
}
