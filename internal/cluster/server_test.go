package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestClusterServerLifecycle drives the whole coordinator HTTP face: lease
// protocol in, affinity proxy out, byte-identical to asking the worker
// directly.
func TestClusterServerLifecycle(t *testing.T) {
	workerTS := newWorker(t)

	coord := New(Options{DisableHedging: true})
	cs := NewServer(ServerOptions{Coordinator: coord, LeaseTTL: time.Minute, Logger: discardLogger()})
	t.Cleanup(cs.Close)
	front := httptest.NewServer(cs.Handler())
	t.Cleanup(front.Close)
	client := &http.Client{Timeout: 30 * time.Second}

	const runBody = `{"config":{"partition":4,"topology":"mesh","policy":"ts"}}`
	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Post(front.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	// Empty fleet: the proxy refuses rather than hangs.
	if resp, _ := post("/v1/run", runBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("proxy with no workers: status %d, want 503", resp.StatusCode)
	}

	// The worker-side registration client against the real endpoints.
	ttl, err := RegisterWorker(context.Background(), client, front.URL, workerTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	if ttl != time.Minute {
		t.Errorf("lease ttl = %v, want 1m", ttl)
	}
	listWorkers := func() []string {
		t.Helper()
		resp, err := client.Get(front.URL + "/v1/workers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Workers []string `json:"workers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Workers
	}
	if ws := listWorkers(); len(ws) != 1 || ws[0] != workerTS.URL {
		t.Fatalf("workers = %v, want [%s]", ws, workerTS.URL)
	}

	// Proxied and direct answers are byte-identical — the proxy computes the
	// same content address the worker caches under.
	resp, proxied := post("/v1/run", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied run: status %d body %s", resp.StatusCode, proxied)
	}
	direct, err := client.Post(workerTS.URL+"/v1/run", "application/json", strings.NewReader(runBody))
	if err != nil {
		t.Fatal(err)
	}
	directBody, _ := io.ReadAll(direct.Body)
	direct.Body.Close()
	if direct.Header.Get("X-Cache") != "hit" {
		t.Errorf("direct request after proxy was %q, want hit (same cache key)", direct.Header.Get("X-Cache"))
	}
	if !bytes.Equal(proxied, directBody) {
		t.Errorf("proxied body differs from direct body:\nproxy:  %s\ndirect: %s", proxied, directBody)
	}

	// Malformed requests are rejected at the proxy with 400, not shipped.
	if resp, _ := post("/v1/point", `{"config":{"policy":"bogus"}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed point: status %d, want 400", resp.StatusCode)
	}

	// Renewing an unknown lease is a 404 telling the worker to re-register.
	if resp, _ := post("/v1/workers/renew", `{"addr":"http://ghost:1"}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("renew unknown: status %d, want 404", resp.StatusCode)
	}
	// A non-URL addr is rejected.
	if resp, _ := post("/v1/workers/register", `{"addr":"not-a-url"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("register bad addr: status %d, want 400", resp.StatusCode)
	}

	// The metrics surface shows the fleet and the routed point.
	mresp, err := client.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"cluster_workers 1",
		"cluster_points_total 1",
		"cluster_worker_requests_total{worker=\"" + workerTS.URL + "\"} 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, mb)
		}
	}

	// Graceful goodbye: deregistration empties the routing table at once.
	DeregisterWorker(client, front.URL, workerTS.URL)
	if ws := listWorkers(); len(ws) != 0 {
		t.Errorf("workers after deregister = %v, want none", ws)
	}
	if resp, _ := post("/v1/run", runBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("proxy after deregister: status %d, want 503", resp.StatusCode)
	}
}
