package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// coordinatorMetrics counts the routing machinery: how many points moved,
// how well affinity paid off, and how often the fleet misbehaved enough to
// need hedges, backoff or rebalancing.
type coordinatorMetrics struct {
	points         atomic.Int64 // points completed successfully
	remoteHits     atomic.Int64 // worker answered from its cache
	remoteMisses   atomic.Int64 // worker had to simulate
	hedges         atomic.Int64 // hedge requests fired
	hedgeWins      atomic.Int64 // hedges that beat the primary
	rebalances     atomic.Int64 // points served by a non-home worker
	backpressure   atomic.Int64 // 429 waits honored
	failures       atomic.Int64 // transport errors + 5xx responses
	cooldowns      atomic.Int64 // breaker open transitions
	journalHits    atomic.Int64 // points answered from the durable journal
	journalAppends atomic.Int64 // points durably journaled after completing
	retrySpent     atomic.Int64 // per-sweep retry budget units consumed
}

// WorkerSnapshot is one worker's counters at a point in time.
type WorkerSnapshot struct {
	URL      string `json:"url"`
	Requests int64  `json:"requests"`
	Failures int64  `json:"failures"`
	Hits     int64  `json:"hits"`
	Misses   int64  `json:"misses"`
	Inflight int64  `json:"inflight"`
	// Breaker is the circuit-breaker state at snapshot time:
	// 0 closed, 1 half-open, 2 open.
	Breaker int `json:"breaker"`
}

// Snapshot is the coordinator's counters at a point in time.
type Snapshot struct {
	Points         int64            `json:"points"`
	RemoteHits     int64            `json:"remote_hits"`
	RemoteMisses   int64            `json:"remote_misses"`
	Hedges         int64            `json:"hedges"`
	HedgeWins      int64            `json:"hedge_wins"`
	Rebalances     int64            `json:"rebalances"`
	Backpressure   int64            `json:"backpressure_waits"`
	Failures       int64            `json:"failures"`
	Cooldowns      int64            `json:"cooldowns"`
	JournalHits    int64            `json:"journal_hits"`
	JournalAppends int64            `json:"journal_appends"`
	JournalEntries int64            `json:"journal_entries"`
	RetrySpent     int64            `json:"retry_spent"`
	RetryLeft      int64            `json:"retry_left"` // -1 when unlimited
	Workers        []WorkerSnapshot `json:"workers"`
}

// HitRatio is the fraction of attributed responses answered from worker
// caches (0 when nothing has been attributed yet).
func (s Snapshot) HitRatio() float64 {
	total := s.RemoteHits + s.RemoteMisses
	if total == 0 {
		return 0
	}
	return float64(s.RemoteHits) / float64(total)
}

// Snapshot captures the coordinator's counters, workers sorted by URL.
func (c *Coordinator) Snapshot() Snapshot {
	s := Snapshot{
		Points:         c.m.points.Load(),
		RemoteHits:     c.m.remoteHits.Load(),
		RemoteMisses:   c.m.remoteMisses.Load(),
		Hedges:         c.m.hedges.Load(),
		HedgeWins:      c.m.hedgeWins.Load(),
		Rebalances:     c.m.rebalances.Load(),
		Backpressure:   c.m.backpressure.Load(),
		Failures:       c.m.failures.Load(),
		Cooldowns:      c.m.cooldowns.Load(),
		JournalHits:    c.m.journalHits.Load(),
		JournalAppends: c.m.journalAppends.Load(),
		RetrySpent:     c.m.retrySpent.Load(),
		RetryLeft:      c.retryBudgetLeft(),
	}
	if sized, ok := c.opts.Memo.(interface{ Len() int }); ok {
		s.JournalEntries = int64(sized.Len())
	}
	now := c.now()
	c.mu.RLock()
	for _, w := range c.workers {
		s.Workers = append(s.Workers, WorkerSnapshot{
			URL:      w.url,
			Requests: w.requests.Load(),
			Failures: w.failures.Load(),
			Hits:     w.hits.Load(),
			Misses:   w.misses.Load(),
			Inflight: w.inflight.Load(),
			Breaker:  w.br.state(now),
		})
	}
	c.mu.RUnlock()
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].URL < s.Workers[j].URL })
	return s
}

// WriteMetrics renders the coordinator's counters in Prometheus text
// exposition format (the coordinator server mounts this on /metrics).
func (c *Coordinator) WriteMetrics(b *strings.Builder) {
	s := c.Snapshot()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("cluster_points_total", "Points routed to completion.", s.Points)
	counter("cluster_remote_hits_total", "Points answered from a worker's result cache.", s.RemoteHits)
	counter("cluster_remote_misses_total", "Points a worker had to simulate.", s.RemoteMisses)
	counter("cluster_hedges_total", "Hedge requests fired against straggling points.", s.Hedges)
	counter("cluster_hedge_wins_total", "Hedges that finished before the primary.", s.HedgeWins)
	counter("cluster_rebalances_total", "Points served by a worker other than their rendezvous home.", s.Rebalances)
	counter("cluster_backpressure_waits_total", "429 responses absorbed by waiting out the worker's Retry-After.", s.Backpressure)
	counter("cluster_worker_failures_total", "Transport errors and 5xx responses from workers.", s.Failures)
	counter("cluster_worker_cooldowns_total", "Times a worker's circuit breaker opened.", s.Cooldowns)
	counter("cluster_journal_hits_total", "Points answered from the durable sweep journal.", s.JournalHits)
	counter("cluster_journal_appends_total", "Points durably appended to the sweep journal.", s.JournalAppends)
	counter("cluster_retry_spent_total", "Per-sweep retry budget units consumed (failovers, backpressure waits, hedges).", s.RetrySpent)
	fmt.Fprintf(b, "# HELP cluster_journal_entries Distinct points in the sweep journal.\n# TYPE cluster_journal_entries gauge\ncluster_journal_entries %d\n", s.JournalEntries)
	fmt.Fprintf(b, "# HELP cluster_retry_budget_remaining Remaining per-sweep retry budget (-1 = unlimited).\n# TYPE cluster_retry_budget_remaining gauge\ncluster_retry_budget_remaining %d\n", s.RetryLeft)

	perWorker := func(name, help string, pick func(WorkerSnapshot) int64, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, w := range s.Workers {
			fmt.Fprintf(b, "%s{worker=%q} %d\n", name, w.URL, pick(w))
		}
	}
	perWorker("cluster_worker_inflight", "Requests currently in flight to the worker.",
		func(w WorkerSnapshot) int64 { return w.Inflight }, "gauge")
	perWorker("cluster_worker_requests_total", "Requests sent to the worker, hedges included.",
		func(w WorkerSnapshot) int64 { return w.Requests }, "counter")
	perWorker("cluster_worker_hits_total", "Responses the worker answered from cache.",
		func(w WorkerSnapshot) int64 { return w.Hits }, "counter")
	perWorker("cluster_worker_breaker_state", "Circuit-breaker state per worker: 0 closed, 1 half-open, 2 open.",
		func(w WorkerSnapshot) int64 { return int64(w.Breaker) }, "gauge")
}

// Report is a one-line human summary for tool -cluster-report output.
func (s Snapshot) Report() string {
	line := fmt.Sprintf(
		"cluster: %d points, hit ratio %.2f (%d hit / %d miss), %d rebalances, %d hedges (%d won), %d backpressure waits, %d worker failures",
		s.Points, s.HitRatio(), s.RemoteHits, s.RemoteMisses,
		s.Rebalances, s.Hedges, s.HedgeWins, s.Backpressure, s.Failures)
	if s.JournalHits > 0 || s.JournalAppends > 0 || s.JournalEntries > 0 {
		line += fmt.Sprintf(", journal %d replayed / %d appended", s.JournalHits, s.JournalAppends)
	}
	return line
}
