package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/serve"
)

// ServerOptions tunes a coordinator Server.
type ServerOptions struct {
	// Coordinator routes proxied requests; required.
	Coordinator *Coordinator
	// LeaseTTL bounds how long a worker stays routable without renewing
	// (default 10s; renew interval is TTL/3 on the worker side).
	LeaseTTL time.Duration
	// SweepEvery is the lapsed-lease sweep period (default LeaseTTL/2).
	SweepEvery time.Duration
	// Logger receives registration and proxy events; nil uses slog.Default().
	Logger *slog.Logger
}

// Server is the coordinator's HTTP face: the worker registration/lease
// protocol plus an affinity proxy for the two simulation endpoints, so a
// client that only knows the coordinator still gets cache-affine routing,
// failover and hedging. Tools that want per-point progress use the
// Coordinator client directly; the proxy is for everything else (curl, a
// dashboard, a CI probe).
type Server struct {
	coord *Coordinator
	reg   *registry
	log   *slog.Logger

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewServer builds a coordinator Server. The registry feeds fleet changes
// straight into the coordinator's routing table.
func NewServer(opts ServerOptions) *Server {
	if opts.Coordinator == nil {
		panic("cluster: ServerOptions.Coordinator is required")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.LeaseTTL / 2
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	s := &Server{
		coord: opts.Coordinator,
		log:   opts.Logger,
		stop:  make(chan struct{}),
	}
	s.reg = newRegistry(opts.LeaseTTL, func(workers []string) {
		s.coord.SetWorkers(workers)
		s.log.Info("cluster fleet changed", slog.Int("workers", len(workers)))
	})
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		t := time.NewTicker(opts.SweepEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.reg.sweep()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Close stops the lease sweeper.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.done.Wait()
}

// Handler returns the coordinator's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/workers/register", s.handleRegister)
	mux.HandleFunc("/v1/workers/renew", s.handleRenew)
	mux.HandleFunc("/v1/workers/deregister", s.handleDeregister)
	mux.HandleFunc("/v1/workers", s.handleWorkers)
	mux.HandleFunc("/v1/run", s.handleProxy)
	mux.HandleFunc("/v1/point", s.handleProxy)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// workerRef is the body of the three lease endpoints: the worker's
// advertised base URL.
type workerRef struct {
	Addr string `json:"addr"`
}

func decodeWorkerRef(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return "", false
	}
	var ref workerRef
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<10)).Decode(&ref); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return "", false
	}
	ref.Addr = strings.TrimRight(ref.Addr, "/")
	if !strings.HasPrefix(ref.Addr, "http://") && !strings.HasPrefix(ref.Addr, "https://") {
		httpError(w, http.StatusBadRequest, "addr must be an http(s) base URL, got %q", ref.Addr)
		return "", false
	}
	return ref.Addr, true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	addr, ok := decodeWorkerRef(w, r)
	if !ok {
		return
	}
	ttl := s.reg.register(addr)
	s.log.Info("worker registered", slog.String("addr", addr))
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"addr\":%q,\"ttl_ms\":%d}\n", addr, ttl.Milliseconds())
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	addr, ok := decodeWorkerRef(w, r)
	if !ok {
		return
	}
	if !s.reg.renew(addr) {
		// Lease lapsed (a long GC pause, a partition): tell the worker to
		// re-register rather than silently re-granting, so the fleet-change
		// notification fires and routing picks the worker back up.
		httpError(w, http.StatusNotFound, "no live lease for %q, re-register", addr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"addr\":%q,\"ttl_ms\":%d}\n", addr, s.reg.ttl.Milliseconds())
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	addr, ok := decodeWorkerRef(w, r)
	if !ok {
		return
	}
	s.reg.deregister(addr)
	s.log.Info("worker deregistered", slog.String("addr", addr))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	workers := s.reg.workers()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Workers []string `json:"workers"`
	}{workers})
}

// handleProxy routes a simulation request through the coordinator: the
// request body is parsed just enough to compute the same content address
// the worker will use, then shipped to the rendezvous-ranked worker with
// the full retry/hedge machinery. The response bytes come back verbatim,
// so proxied and direct answers are byte-identical.
func (s *Server) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	key, contentType, err := requestKey(r.URL.Path, body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.coord.Do(r.Context(), engine.RemotePoint{
		Label: r.URL.Path, Key: key, Path: r.URL.Path, Body: body,
	})
	if err != nil {
		var perm *permanentError
		switch {
		case errors.As(err, &perm):
			httpError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, errNoWorkers):
			httpError(w, http.StatusServiceUnavailable, "no workers registered")
		default:
			httpError(w, http.StatusBadGateway, "%v", err)
		}
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(resp)
}

// requestKey computes the routing key for a proxied request — the same
// content address the worker caches under, so the proxy inherits affinity —
// plus the response media type the worker would have sent.
func requestKey(path string, body []byte) (key, contentType string, err error) {
	switch path {
	case "/v1/point":
		req, err := serve.ParsePointRequestBytes(body)
		if err != nil {
			return "", "", err
		}
		cfg, err := req.Config.ToConfig()
		if err != nil {
			return "", "", err
		}
		h, err := cfg.Hash()
		if err != nil {
			return "", "", err
		}
		return serve.PointKey(h), "application/json", nil
	default:
		req, err := serve.ParseRunRequestBytes(body)
		if err != nil {
			return "", "", err
		}
		_, _, format, key, err := req.Resolve()
		if err != nil {
			return "", "", err
		}
		return key, format.ContentType(), nil
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"workers\":%d}\n", len(s.reg.workers()))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.coord.WriteMetrics(&b)
	fmt.Fprintf(&b, "# HELP cluster_workers Live worker leases.\n# TYPE cluster_workers gauge\ncluster_workers %d\n",
		len(s.reg.workers()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// httpError mirrors serve's uniform JSON error body.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", fmt.Sprintf(format, args...))
}
