package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Journal is the durable sweep journal: an fsync'd, append-only JSONL log
// mapping each completed point's content address (core.Config.Hash / the
// serve request key) to the exact response bytes served for it. A
// coordinator restarted with the same journal directory replays the log,
// answers already-completed points byte-identically without touching a
// worker, and routes only the remainder — which is what makes a
// multi-hour sweep survive a coordinator crash instead of restarting
// from t=0.
//
// Durability contract: Append returns only after the record has been
// written and fsync'd, so a point acknowledged to a client is never lost
// by a crash. Each record carries a CRC32 of its key+body; replay stops
// at the first record that fails to parse or checksum — a torn final
// write from a crash mid-append — and truncates the file back to the
// last valid record so future appends never interleave with garbage.
//
// Journal implements engine.Memo, so it slots directly into the
// coordinator's memoized Do path (Options.Memo) and into
// engine.WithMemo for any other Remote.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string][]byte

	appends atomic.Int64 // records durably appended by this process
}

// journalRecord is one JSONL line. CRC is crc32(IEEE) over key ‖ 0x00 ‖
// body, so a record torn anywhere — key, body, or the checksum digits
// themselves — fails verification.
type journalRecord struct {
	Key  string `json:"key"`
	Body []byte `json:"body"` // encoding/json base64s []byte
	CRC  uint32 `json:"crc"`
}

func (r journalRecord) checksum() uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(r.Key))
	h.Write([]byte{0})
	h.Write(r.Body)
	return h.Sum32()
}

// journalFile is the log's name inside the journal directory.
const journalFile = "journal.jsonl"

// OpenJournal opens (creating if needed) the journal in dir, replays every
// valid record, and truncates a torn tail left by a crash mid-append.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open journal: %w", err)
	}
	j := &Journal{f: f, entries: make(map[string][]byte)}

	valid, err := replayJournal(f, func(rec journalRecord) {
		j.entries[rec.Key] = rec.Body
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate past the last valid record (no-op when the tail is clean)
	// and position appends there.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: truncate torn journal tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: seek journal: %w", err)
	}
	return j, nil
}

// replayJournal scans records from the start of f, calling fn for each
// valid one, and returns the byte offset just past the last valid record.
// A record that fails to parse or checksum ends the replay: everything
// after it is treated as a torn write.
func replayJournal(f *os.File, fn func(journalRecord)) (valid int64, err error) {
	if _, err := f.Seek(0, 0); err != nil {
		return 0, fmt.Errorf("cluster: seek journal: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// EOF with a partial (unterminated) line is a torn write; any
			// other error is a real read failure.
			if len(line) == 0 || errors.Is(err, io.EOF) {
				return valid, nil
			}
			return 0, fmt.Errorf("cluster: read journal: %w", err)
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || rec.checksum() != rec.CRC {
			return valid, nil
		}
		fn(rec)
		valid += int64(len(line))
	}
}

// Get returns the journaled response bytes for a key. It implements the
// read half of engine.Memo.
func (j *Journal) Get(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	b, ok := j.entries[key]
	return b, ok
}

// Put durably appends one completed point. The record is fsync'd before
// Put returns; a key already journaled is a no-op (the bytes are
// byte-identical by determinism, and exactly-once in the log is what the
// chaos harness audits). It implements the write half of engine.Memo.
func (j *Journal) Put(key string, body []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[key]; ok {
		return nil
	}
	rec := journalRecord{Key: key, Body: body}
	rec.CRC = rec.checksum()
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: encode journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("cluster: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("cluster: fsync journal: %w", err)
	}
	// Copy: the caller may reuse/mutate its slice after Put returns.
	j.entries[key] = append([]byte(nil), body...)
	j.appends.Add(1)
	return nil
}

// Len reports the number of distinct journaled points.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Appends reports how many records this process durably appended (replayed
// records are not counted).
func (j *Journal) Appends() int64 { return j.appends.Load() }

// Keys returns the journaled content addresses, sorted.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.entries))
	for k := range j.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Close closes the underlying file. Appends are fsync'd individually, so
// Close adds no durability — it only releases the descriptor.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ScanJournal reads the raw record stream from a journal directory without
// deduplication — the audit view. The chaos harness uses it to assert
// that a crashed-and-resumed sweep journaled every point exactly once.
func ScanJournal(dir string) ([]JournalEntry, error) {
	f, err := os.Open(filepath.Join(dir, journalFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []JournalEntry
	if _, err := replayJournal(f, func(rec journalRecord) {
		out = append(out, JournalEntry{Key: rec.Key, Body: rec.Body})
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// JournalEntry is one audited journal record.
type JournalEntry struct {
	Key  string
	Body []byte
}

// appendRawJournalLine is a test hook: writes arbitrary bytes to the
// journal file to simulate torn/corrupt tails.
func appendRawJournalLine(dir string, raw []byte) error {
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(raw)
	return err
}
