package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// Robustness tests for the crash-safe fabric: per-sweep retry budgets,
// RFC 9110 Retry-After handling, journal-backed resume through the
// coordinator, and the hedging path not leaking goroutines or slots.

// TestClusterRetryAfterParsing: delay-seconds, HTTP-dates and garbage, per
// RFC 9110 — garbage falls back to 0 so backoffWait takes the doubling
// schedule instead of stalling or spinning.
func TestClusterRetryAfterParsing(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-5", 0},
		{now.Add(90 * time.Second).UTC().Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0}, // date in the past
		{"soon", 0},
		{"12.5", 0}, // fractional seconds are not delay-seconds
		{"\x00\xff garbage", 0},
	} {
		if got := parseRetryAfter(tc.header, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestClusterBackoffFallbackDoubles: with no usable hint the waits double
// from a tenth of the cap; with a hint the hint wins, clamped to the cap.
func TestClusterBackoffFallbackDoubles(t *testing.T) {
	max := 800 * time.Millisecond
	for n, want := range map[int]time.Duration{
		1: 80 * time.Millisecond,
		2: 160 * time.Millisecond,
		3: 320 * time.Millisecond,
		4: 640 * time.Millisecond,
		5: 800 * time.Millisecond, // clamped
	} {
		if got := backoffWait(0, n, max); got != want {
			t.Errorf("backoffWait(0, %d) = %v, want %v", n, got, want)
		}
	}
	if got := backoffWait(50*time.Millisecond, 3, max); got != 50*time.Millisecond {
		t.Errorf("hint ignored: %v", got)
	}
	if got := backoffWait(time.Hour, 1, max); got != max {
		t.Errorf("hint not clamped: %v", got)
	}
	if got := backoffWait(0, 1, 0); got <= 0 {
		t.Errorf("degenerate cap produced non-positive wait %v", got)
	}
}

// TestClusterRetryBudgetExhaustion: a fleet that fails everything burns the
// budget and then fails fast with the typed error instead of retrying
// forever; a later healthy-path point is unaffected on its first attempt.
func TestClusterRetryBudgetExhaustion(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fine"))
	}))
	t.Cleanup(ok.Close)

	c := New(Options{
		Workers:          []string{dead.URL, ok.URL},
		DisableHedging:   true,
		SweepRetryBudget: 1,
		// Keep the breaker out of the picture: with a low threshold it
		// would demote the dead worker and hand the healthy one the
		// budget-free first attempt — correct, but not what this test pins.
		FailureThreshold: 1000,
	})
	// Force the dead worker first in the ranking for a chosen key.
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("budget-%d", i)
		if rankWorkers([]string{dead.URL, ok.URL}, k)[0] == dead.URL {
			key = k
			break
		}
	}

	// First point: primary fails, the single budget unit buys the failover
	// to the healthy worker.
	body, err := c.Do(context.Background(), engine.RemotePoint{Label: "p1", Key: key, Path: "/x", Body: nil})
	if err != nil {
		t.Fatalf("first point should survive on budget: %v", err)
	}
	if !bytes.Equal(body, []byte("fine")) {
		t.Errorf("body = %q", body)
	}
	if left := c.Snapshot().RetryLeft; left != 0 {
		t.Fatalf("RetryLeft = %d, want 0", left)
	}

	// Second point homed to the dead worker: budget is dry, so the walk
	// ends after the primary with the typed exhaustion error.
	_, err = c.Do(context.Background(), engine.RemotePoint{Label: "p2", Key: key, Path: "/x", Body: nil})
	if err == nil {
		t.Fatal("Do succeeded with a dry budget and a dead home")
	}
	if !errors.Is(err, errRetryBudgetExhausted) {
		t.Errorf("error %v does not wrap errRetryBudgetExhausted", err)
	}

	// A point homed to the healthy worker still completes: the budget gates
	// extra attempts, never the first.
	okKey := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("ok-%d", i)
		if rankWorkers([]string{dead.URL, ok.URL}, k)[0] == ok.URL {
			okKey = k
			break
		}
	}
	if _, err := c.Do(context.Background(), engine.RemotePoint{Label: "p3", Key: okKey, Path: "/x", Body: nil}); err != nil {
		t.Errorf("healthy-homed point failed on dry budget: %v", err)
	}
	if snap := c.Snapshot(); snap.RetrySpent != 1 {
		t.Errorf("RetrySpent = %d, want 1", snap.RetrySpent)
	}
}

// TestClusterUnlimitedRetryBudget: negative budget never exhausts.
func TestClusterUnlimitedRetryBudget(t *testing.T) {
	c := New(Options{Workers: []string{"http://invalid"}, SweepRetryBudget: -1})
	for i := 0; i < 2000; i++ {
		if !c.spendRetry() {
			t.Fatal("unlimited budget ran dry")
		}
	}
	if left := c.Snapshot().RetryLeft; left != -1 {
		t.Errorf("RetryLeft = %d, want -1", left)
	}
}

// TestClusterJournalResume is coordinator crash-resume in miniature: sweep
// once against a real fleet with a journal, then rebuild the coordinator
// (same journal directory, zero workers — "everything is down") and sweep
// again. Every point must come back byte-identical from the journal alone.
func TestClusterJournalResume(t *testing.T) {
	w := newWorker(t)
	cfgs := grid(t)
	dir := t.TempDir()

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := New(Options{Workers: []string{w.URL}, DisableHedging: true, Memo: j})
	want := sweepBodies(t, first, cfgs, 4)
	snap := first.Snapshot()
	if snap.JournalAppends != int64(len(cfgs)) || snap.JournalHits != 0 {
		t.Errorf("first sweep journal: appends=%d hits=%d, want %d/0",
			snap.JournalAppends, snap.JournalHits, len(cfgs))
	}
	j.Close()

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	second := New(Options{Memo: j2, DisableHedging: true}) // no workers at all
	got := sweepBodies(t, second, cfgs, 4)
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("point %d differs on resume:\n got: %s\nwant: %s", i, got[i], want[i])
		}
	}
	snap = second.Snapshot()
	if snap.JournalHits != int64(len(cfgs)) || snap.JournalAppends != 0 {
		t.Errorf("resume journal: hits=%d appends=%d, want %d/0",
			snap.JournalHits, snap.JournalAppends, len(cfgs))
	}
	if snap.Points != int64(len(cfgs)) {
		t.Errorf("resume points = %d, want %d", snap.Points, len(cfgs))
	}
	if snap.JournalEntries != int64(len(cfgs)) {
		t.Errorf("journal entries = %d, want %d", snap.JournalEntries, len(cfgs))
	}
}

// TestClusterJournalPartialResume: a journal holding only some points
// replays those and routes the remainder — the exact resume split, with no
// duplicate appends for replayed points.
func TestClusterJournalPartialResume(t *testing.T) {
	w := newWorker(t)
	cfgs := grid(t)
	dir := t.TempDir()

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	half := New(Options{Workers: []string{w.URL}, DisableHedging: true, Memo: j})
	want := sweepBodies(t, half, cfgs[:3], 1)
	j.Close()

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed := New(Options{Workers: []string{w.URL}, DisableHedging: true, Memo: j2})
	all := sweepBodies(t, resumed, cfgs, 1)
	for i := range want {
		if !bytes.Equal(all[i], want[i]) {
			t.Errorf("replayed point %d differs", i)
		}
	}
	snap := resumed.Snapshot()
	if snap.JournalHits != 3 {
		t.Errorf("JournalHits = %d, want 3", snap.JournalHits)
	}
	if snap.JournalAppends != int64(len(cfgs)-3) {
		t.Errorf("JournalAppends = %d, want %d", snap.JournalAppends, len(cfgs)-3)
	}
	// The raw log must hold every point exactly once across both runs.
	entries, err := ScanJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(cfgs) {
		t.Errorf("raw journal has %d records, want %d", len(entries), len(cfgs))
	}
}

// TestClusterHedgeNoLeak is the leak detector around the hedged Do path
// (runner.go RunConfig funnels into it): after hedge races resolve — wins
// and losses both — every worker slot drains and the goroutine count
// returns to baseline, because the per-point context cancels the losing
// leg instead of letting it run out its HTTP timeout.
func TestClusterHedgeNoLeak(t *testing.T) {
	var slowHits atomic.Int64
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slowHits.Add(1)
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-release:
		}
		w.Write([]byte(`{"who":"slow"}`))
	}))
	t.Cleanup(slow.Close)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(`{"who":"fast"}`))
	}))
	t.Cleanup(fast.Close)
	fleet := []string{slow.URL, fast.URL}

	c := New(Options{Workers: fleet, HedgeMinSamples: 1, HedgeMinDelay: time.Millisecond})
	c.lat.record(time.Millisecond)

	before := runtime.NumGoroutine()
	// Many hedged points homed on the straggler: each primary parks on the
	// slow worker until its hedge wins and the per-point cancel fires. A
	// lost race must not trip the slow worker's breaker (cancellation says
	// nothing about its health), so every one of these points hedges.
	wins := int64(0)
	for i := 0; wins < 8; i++ {
		if i >= 2000 {
			t.Fatalf("hedges stopped winning after %d: %+v", wins, c.Snapshot())
		}
		key := fmt.Sprintf("leak-%d", i)
		if rankWorkers(fleet, key)[0] != slow.URL {
			continue
		}
		if _, err := c.Do(context.Background(), engine.RemotePoint{Label: key, Key: key, Path: "/x", Body: []byte("{}")}); err != nil {
			t.Fatal(err)
		}
		wins = c.Snapshot().HedgeWins
	}
	close(release)

	// Losing legs tear down via context cancellation; give them a moment.
	// Idle keep-alive connections are closed so their transport goroutines
	// don't masquerade as leaks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.opts.Client.CloseIdleConnections()
		var inflight int64
		for _, w := range c.Snapshot().Workers {
			inflight += w.Inflight
		}
		leaked := runtime.NumGoroutine() - before
		if inflight == 0 && leaked <= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hedge legs leaked: inflight=%d goroutines=+%d", inflight, leaked)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if slowHits.Load() == 0 {
		t.Fatal("test never exercised the slow primary")
	}
}
