package cluster

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Adapters from core.Config to the cluster wire format. Tools build remote
// plans out of ConfigPoint and get back PointSummary values that feed the
// exact row formatters the local path uses — the byte-identical merge
// invariant lives here.

// ConfigPoint converts a config into the remote point the coordinator
// routes: body is the /v1/point request, key is the canonical config hash
// (the same address the worker caches under). Configs that are not
// wire-representable (custom cost models, tracers, batches) fail here,
// before anything touches the network.
func ConfigPoint(cfg core.Config) (engine.RemotePoint, error) {
	spec, err := serve.SpecFromConfig(cfg)
	if err != nil {
		return engine.RemotePoint{}, err
	}
	hash, err := cfg.Hash()
	if err != nil {
		return engine.RemotePoint{}, err
	}
	body, err := serve.EncodePointRequest(serve.PointRequest{Config: spec})
	if err != nil {
		return engine.RemotePoint{}, err
	}
	return engine.RemotePoint{
		Label: cfg.Label(),
		Key:   hash,
		Path:  "/v1/point",
		Body:  body,
	}, nil
}

// RunConfig executes one config on the cluster and decodes the summary —
// the remote analogue of core.Run for wire-representable configs.
func (c *Coordinator) RunConfig(ctx context.Context, cfg core.Config) (serve.PointSummary, error) {
	pt, err := ConfigPoint(cfg)
	if err != nil {
		return serve.PointSummary{}, err
	}
	body, err := c.Do(ctx, pt)
	if err != nil {
		return serve.PointSummary{}, err
	}
	ps, err := serve.DecodePointSummary(body)
	if err != nil {
		return serve.PointSummary{}, fmt.Errorf("point %s: %w", pt.Label, err)
	}
	return ps, nil
}

// FaultRunner adapts the coordinator to the experiments fault-study runner
// signature, so -cluster fault studies shard their points over the fleet
// while the study logic — the zero-rate-equals-baseline determinism check
// included — stays local. The wire summary carries times as exact integer
// microseconds, so the equality check compares the same sim.Time values it
// would locally.
func (c *Coordinator) FaultRunner(ctx context.Context) experiments.FaultRunner {
	return func(cfg core.Config) (experiments.FaultRunSummary, error) {
		ps, err := c.RunConfig(ctx, cfg)
		if err != nil {
			return experiments.FaultRunSummary{}, err
		}
		return experiments.FaultRunSummary{
			Mean:     sim.Time(ps.MeanUS),
			Makespan: sim.Time(ps.MakespanUS),
			Retries:  ps.Retries,
			Faults:   ps.Fault.FaultStats(),
		}, nil
	}
}
