package cluster

import (
	"sort"
	"sync"
	"time"
)

// registry tracks worker leases. A worker registers its advertised base
// URL and must renew within the TTL; leases that lapse are pruned and the
// fleet change is pushed to the coordinator via onChange. Leases (rather
// than permanent registration) mean a worker killed with SIGKILL — no
// deregister, no goodbye — leaves the routing table after one missed
// heartbeat instead of absorbing points forever.
type registry struct {
	ttl      time.Duration
	onChange func([]string)
	now      func() time.Time

	mu     sync.Mutex
	leases map[string]time.Time // worker URL -> lease expiry
}

func newRegistry(ttl time.Duration, onChange func([]string)) *registry {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	return &registry{
		ttl:      ttl,
		onChange: onChange,
		now:      time.Now,
		leases:   make(map[string]time.Time),
	}
}

// register grants (or refreshes) a lease and returns its TTL.
func (r *registry) register(url string) time.Duration {
	r.mu.Lock()
	_, existed := r.leases[url]
	r.leases[url] = r.now().Add(r.ttl)
	workers := r.liveLocked()
	r.mu.Unlock()
	if !existed {
		r.notify(workers)
	}
	return r.ttl
}

// renew extends a live lease; it reports false for unknown or lapsed
// leases, telling the worker to re-register.
func (r *registry) renew(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	exp, ok := r.leases[url]
	if !ok || r.now().After(exp) {
		delete(r.leases, url)
		return false
	}
	r.leases[url] = r.now().Add(r.ttl)
	return true
}

// deregister drops a lease immediately (graceful worker shutdown).
func (r *registry) deregister(url string) {
	r.mu.Lock()
	_, existed := r.leases[url]
	delete(r.leases, url)
	workers := r.liveLocked()
	r.mu.Unlock()
	if existed {
		r.notify(workers)
	}
}

// workers returns the live fleet, sorted, pruning lapsed leases.
func (r *registry) workers() []string {
	r.mu.Lock()
	changed := r.pruneLocked()
	out := r.liveLocked()
	r.mu.Unlock()
	if changed {
		r.notify(out)
	}
	return out
}

// sweep prunes lapsed leases, notifying on change; the server calls it on
// a ticker so a dead worker leaves routing even when nobody is asking.
func (r *registry) sweep() {
	r.mu.Lock()
	changed := r.pruneLocked()
	var out []string
	if changed {
		out = r.liveLocked()
	}
	r.mu.Unlock()
	if changed {
		r.notify(out)
	}
}

func (r *registry) pruneLocked() bool {
	now := r.now()
	changed := false
	for url, exp := range r.leases {
		if now.After(exp) {
			delete(r.leases, url)
			changed = true
		}
	}
	return changed
}

func (r *registry) liveLocked() []string {
	out := make([]string, 0, len(r.leases))
	for url := range r.leases {
		out = append(out, url)
	}
	sort.Strings(out)
	return out
}

func (r *registry) notify(workers []string) {
	if r.onChange != nil {
		r.onChange(workers)
	}
}
