package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is a bounded sliding window of completed-point durations.
// Its quantile sets the hedging delay: a point still in flight after the
// p95 of recent points is a straggler worth racing, not a normal run worth
// waiting for. A window (rather than a decaying digest) keeps the estimate
// simple, bounded and responsive to phase changes between sweeps.
type latencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	next    int
	full    bool
}

func newLatencyWindow(capacity int) *latencyWindow {
	if capacity < 8 {
		capacity = 8
	}
	return &latencyWindow{samples: make([]time.Duration, capacity)}
}

// record adds one completed-point duration.
func (l *latencyWindow) record(d time.Duration) {
	l.mu.Lock()
	l.samples[l.next] = d
	l.next++
	if l.next == len(l.samples) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// count reports how many samples the window holds.
func (l *latencyWindow) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.samples)
	}
	return l.next
}

// quantile returns the q-quantile (0 < q <= 1) of the window, or 0 when
// the window is empty.
func (l *latencyWindow) quantile(q float64) time.Duration {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.samples)
	}
	if n == 0 {
		l.mu.Unlock()
		return 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, l.samples[:n])
	l.mu.Unlock()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
