package cluster

import (
	"sync"
	"time"
)

// breaker is the per-worker circuit breaker: the failure-handling state
// machine that replaces PR 5's bare cooldown timer. Three states:
//
//	closed    — healthy; requests flow, consecutive failures are counted.
//	open      — tripped; the worker is demoted to the tail of every
//	            rendezvous ranking until openUntil passes. Demoted, not
//	            excluded: if every healthier worker fails, trying a
//	            tripped one is still better than failing the point.
//	half-open — openUntil has passed; exactly one in-flight request is
//	            elected the probe. While the probe is out, other points
//	            still see the worker demoted, so a recovering worker gets
//	            one request, not a thundering herd. Probe success closes
//	            the breaker (full reset); probe failure re-opens it with
//	            a doubled cooldown, up to the cap.
//
// The open duration starts at the base cooldown and doubles per re-open,
// so a flapping worker absorbs geometrically less traffic instead of a
// retry every fixed interval.
type breaker struct {
	mu          sync.Mutex
	consecFails int
	tripped     bool          // open or half-open (reset only by a success)
	cooldown    time.Duration // current open duration (0 until first trip)
	openUntil   time.Time
	probing     bool // a half-open probe is in flight
}

// breaker states as reported by state() and the per-worker metrics gauge.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// state reports the breaker's state at time now.
func (b *breaker) state(now time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked(now)
}

func (b *breaker) stateLocked(now time.Time) int {
	switch {
	case !b.tripped:
		return breakerClosed
	case now.Before(b.openUntil):
		return breakerOpen
	default:
		return breakerHalfOpen
	}
}

// demoted reports whether rendezvous ranking should push the worker to
// the tail: open, or half-open with the probe slot already taken.
func (b *breaker) demoted(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked(now) {
	case breakerOpen:
		return true
	case breakerHalfOpen:
		return b.probing
	default:
		return false
	}
}

// beginAttempt marks one request headed for the worker and reports whether
// it is the half-open probe (the first attempt after the open period).
func (b *breaker) beginAttempt(now time.Time) (probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stateLocked(now) == breakerHalfOpen && !b.probing {
		b.probing = true
		return true
	}
	return false
}

// success records a 200: whatever the state, the worker is provably alive,
// so the breaker closes and all failure memory resets.
func (b *breaker) success(probe bool) {
	b.mu.Lock()
	b.consecFails = 0
	b.tripped = false
	b.cooldown = 0
	b.openUntil = time.Time{}
	if probe {
		b.probing = false
	}
	b.mu.Unlock()
}

// failure records a transport error or 5xx. Past the threshold (or in any
// tripped state, where one more failure is proof enough) the breaker
// (re)opens with an exponentially grown cooldown; it reports true when
// this call performed an open transition.
func (b *breaker) failure(probe bool, threshold int, base, max time.Duration, now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	b.consecFails++
	if !b.tripped && b.consecFails < threshold {
		return false
	}
	b.openLocked(base, max, now)
	return true
}

// trip opens the breaker regardless of the failure count — used for 503
// (the worker announced it is draining; stop routing to it immediately).
func (b *breaker) trip(base, max time.Duration, now time.Time) {
	b.mu.Lock()
	b.openLocked(base, max, now)
	b.mu.Unlock()
}

// neutral ends an attempt that proved nothing (bounded 429 saturation):
// the probe slot is released without moving the state machine.
func (b *breaker) neutral(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

func (b *breaker) openLocked(base, max time.Duration, now time.Time) {
	b.tripped = true
	if b.cooldown == 0 {
		b.cooldown = base
	} else {
		b.cooldown *= 2
		if b.cooldown > max {
			b.cooldown = max
		}
	}
	b.openUntil = now.Add(b.cooldown)
}
