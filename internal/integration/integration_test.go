// Package integration holds whole-stack invariant tests: every scheduling
// policy run against every application through the public façade, checking
// the properties that must hold regardless of configuration — determinism,
// memory restitution, work conservation, result correctness, and response
// lower bounds.
package integration

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// allPolicies enumerates every scheduling discipline.
var allPolicies = []sched.Policy{
	sched.Static, sched.TimeShared, sched.RRProcess, sched.Gang, sched.DynamicSpace,
}

// miniBatch builds a small verified batch of the given app for fast
// whole-stack runs.
func miniBatch(app core.AppKind, arch workload.Arch) workload.Batch {
	cost := workload.DefaultAppCost()
	return workload.BatchSpec{
		Small: 3, Large: 1, Arch: arch,
		NewApp: func(class string) workload.App {
			switch app {
			case core.Sort:
				n := 50
				if class == "large" {
					n = 130
				}
				return workload.NewSort(n, cost, true)
			case core.Stencil:
				// Fixed architecture means 16 processes, so every stencil
				// needs at least 16 rows.
				n := 18
				if class == "large" {
					n = 26
				}
				return workload.NewStencil(n, 4, cost, true)
			default:
				n := 10
				if class == "large" {
					n = 18
				}
				return workload.NewMatMul(n, cost, true)
			}
		},
	}.Build()
}

func checked(job *workload.Job) bool {
	switch a := job.App.(type) {
	case *workload.MatMul:
		return a.Checked
	case *workload.Sort:
		return a.Checked
	case *workload.Stencil:
		return a.Checked
	}
	return false
}

// TestEveryPolicyEveryAppVerified is the cross-product smoke matrix: 5
// policies x 3 applications x 2 architectures, all with real-data
// verification, all through core.Run.
func TestEveryPolicyEveryAppVerified(t *testing.T) {
	for _, policy := range allPolicies {
		for _, app := range []core.AppKind{core.MatMul, core.Sort, core.Stencil} {
			for _, arch := range []workload.Arch{workload.Fixed, workload.Adaptive} {
				name := fmt.Sprintf("%v-%v-%v", policy, app, arch)
				t.Run(name, func(t *testing.T) {
					batch := miniBatch(app, arch)
					cfg := core.Config{
						Processors:    8,
						PartitionSize: 4,
						Topology:      topology.Mesh,
						Policy:        policy,
						Batch:         batch,
					}
					if policy == sched.DynamicSpace {
						cfg.PartitionSize = 0
					}
					res, err := core.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Jobs) != len(batch) {
						t.Fatalf("completed %d of %d jobs", len(res.Jobs), len(batch))
					}
					for _, job := range batch {
						if !checked(job) {
							t.Errorf("job %d result not verified", job.ID)
						}
					}
				})
			}
		}
	}
}

// TestDeterminismAcrossTheStack: the paper-default configuration run twice
// yields byte-identical job records under every policy.
func TestDeterminismAcrossTheStack(t *testing.T) {
	for _, policy := range allPolicies {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			fingerprint := func() string {
				cfg := core.Config{
					PartitionSize: 4,
					Topology:      topology.Ring,
					Policy:        policy,
					App:           core.MatMul,
					Arch:          workload.Adaptive,
				}
				if policy == sched.DynamicSpace {
					cfg.PartitionSize = 0
				}
				res, err := core.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				out := ""
				for _, j := range res.Jobs {
					out += fmt.Sprintf("%d:%d:%d;", j.JobID, j.Started, j.Completed)
				}
				return out
			}
			if a, b := fingerprint(), fingerprint(); a != b {
				t.Errorf("nondeterministic:\n%s\n%s", a, b)
			}
		})
	}
}

// TestWorkConservationAcrossPolicies: low-priority (application) busy time
// is a function of the workload alone for a given architecture and
// partition size, whatever the policy does with ordering. Matmul's costs
// are arrival-order independent, so equality is exact. (The sort's merge
// costs legitimately vary a fraction of a percent with chunk arrival
// order, and dynamic space sharing changes process counts, so neither is
// compared here.)
func TestWorkConservationAcrossPolicies(t *testing.T) {
	busy := func(policy sched.Policy) sim.Time {
		cfg := core.Config{
			PartitionSize: 4,
			Topology:      topology.Mesh,
			Policy:        policy,
			App:           core.MatMul,
			Arch:          workload.Fixed,
		}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum sim.Time
		for _, n := range res.Nodes {
			sum += n.BusyLow
		}
		return sum
	}
	ref := busy(sched.Static)
	for _, policy := range []sched.Policy{sched.TimeShared, sched.RRProcess, sched.Gang} {
		if got := busy(policy); got != ref {
			t.Errorf("%v busy-low %v != static %v", policy, got, ref)
		}
	}
}

// TestResponseLowerBound: no job can beat its load time plus its share of
// the computation. A violated bound means the simulator lost work.
func TestResponseLowerBound(t *testing.T) {
	cost := machine.DefaultCostModel()
	for _, policy := range allPolicies {
		cfg := core.Config{
			PartitionSize: 8,
			Topology:      topology.Hypercube,
			Policy:        policy,
			App:           core.MatMul,
			Arch:          workload.Fixed,
		}
		if policy == sched.DynamicSpace {
			cfg.PartitionSize = 0
		}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch := workload.MatMulBatch(workload.Fixed, workload.DefaultAppCost(), false)
		for _, j := range res.Jobs {
			app := batch[j.JobID].App
			bound := cost.LoadTime(app.LoadBytes()) +
				(app.SequentialWork()-workload.DefaultAppCost().Setup)/sim.Time(j.Processes)
			if j.Response() < bound {
				t.Errorf("%v job %d response %v below lower bound %v", policy, j.JobID, j.Response(), bound)
			}
		}
	}
}

// TestMemoryRestitutionFullScale: the paper-default (4 MB nodes) batches
// leave every node's memory at zero under every policy.
func TestMemoryRestitutionFullScale(t *testing.T) {
	for _, policy := range allPolicies {
		for _, app := range []core.AppKind{core.MatMul, core.Sort} {
			cfg := core.Config{
				PartitionSize: 4,
				Topology:      topology.Mesh,
				Policy:        policy,
				App:           app,
				Arch:          workload.Adaptive,
			}
			if policy == sched.DynamicSpace {
				cfg.PartitionSize = 0
			}
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("%v %v: %v", policy, app, err)
			}
			// PeakMemory is observed during the run; afterwards core.Run has
			// already shut the kernel down, so assert via the result instead:
			// every byte blocked was eventually served (jobs completed).
			if len(res.Jobs) != 16 {
				t.Errorf("%v %v: %d jobs", policy, app, len(res.Jobs))
			}
			if res.PeakMemory() > 4<<20 {
				t.Errorf("%v %v: peak %d exceeds node memory", policy, app, res.PeakMemory())
			}
		}
	}
}

// TestAllTopologiesAllPolicies runs the full grid of topologies under each
// policy at paper scale for the sort workload (fast) and checks completion.
func TestAllTopologiesAllPolicies(t *testing.T) {
	for _, kind := range topology.Kinds() {
		for _, policy := range allPolicies {
			cfg := core.Config{
				PartitionSize: 8,
				Topology:      kind,
				Policy:        policy,
				App:           core.Sort,
				Arch:          workload.Adaptive,
			}
			if policy == sched.DynamicSpace {
				cfg.PartitionSize = 0
			}
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("%v %v: %v", kind, policy, err)
			}
			if len(res.Jobs) != 16 || res.MeanResponse() <= 0 {
				t.Errorf("%v %v: degenerate result", kind, policy)
			}
		}
	}
}
