package integration

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// The open gate is the arrival subsystem's memory contract, checked end to
// end through core.Run: a 1M-job open-system stream must hold resident
// memory flat — bounded independent of job count — because every per-job
// quantity folds into O(1) streaming state (a Welford accumulator, an
// ε-quantile sketch, fixed-budget windows) instead of per-job records.
// `make open-gate` runs this under the race detector together with the
// sketch-vs-exact accuracy bound in internal/stats (TestOpenGateSketchAccuracy).
//
// The test is gated behind OPEN_GATE=1: the 1M-job run takes ~25s plain and
// ~2min under -race, too heavy for the default `go test ./...` tier.

// openGateConfig is the cheapest configuration that still streams through
// the full scheduler: static 1-node partitions (one loader process and one
// compute process per job, no quantum rotation), Poisson arrivals at a
// stable ρ=0.5.
func openGateConfig(jobs int64) core.Config {
	ac := workload.DefaultAppCost()
	return core.Config{
		PartitionSize: 1,
		Topology:      topology.Mesh,
		Policy:        sched.Static,
		Arch:          workload.Adaptive,
		AppCost:       &ac,
		Arrival:       arrival.Spec{Kind: arrival.Poisson, Jobs: jobs, Load: 0.5},
	}
}

// peakHeapDuring runs f while sampling the live heap, returning the peak
// observed live-set size in bytes. Each sample forces a GC so HeapAlloc
// measures retained memory, not collection cadence.
func peakHeapDuring(f func()) uint64 {
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
	}()
	f()
	close(stop)
	<-done
	return peak.Load()
}

func TestOpenGateFlatMemory(t *testing.T) {
	if os.Getenv("OPEN_GATE") == "" {
		t.Skip("set OPEN_GATE=1 to run the 1M-job flat-memory gate")
	}
	run := func(jobs int64) (peak uint64, mean sim.Time) {
		var res *metrics.Result
		var err error
		peak = peakHeapDuring(func() {
			res, err = core.Run(openGateConfig(jobs))
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Open == nil || res.Open.Jobs != jobs {
			t.Fatalf("open run of %d jobs returned %+v", jobs, res.Open)
		}
		if len(res.Jobs) != 0 {
			t.Fatalf("open run retained %d per-job records", len(res.Jobs))
		}
		return peak, res.MeanResponse()
	}

	refPeak, refMean := run(100_000)
	bigPeak, bigMean := run(1_000_000)
	t.Logf("peak live heap: 100k=%dMB 1M=%dMB; mean response: 100k=%v 1M=%v",
		refPeak>>20, bigPeak>>20, refMean, bigMean)

	// Flat memory: 10x the jobs may not cost more than a constant-factor
	// headroom over the reference. The 64MB floor absorbs allocator and GC
	// noise when both runs are small.
	ceiling := 2 * refPeak
	if floor := refPeak + 64<<20; ceiling < floor {
		ceiling = floor
	}
	if bigPeak > ceiling {
		t.Fatalf("1M-job peak heap %dMB exceeds flat-memory ceiling %dMB (100k ref %dMB)",
			bigPeak>>20, ceiling>>20, refPeak>>20)
	}

	// ρ=0.5 is a stable operating point: mean response must not drift with
	// the horizon (an unstable queue would grow it roughly linearly).
	if bigMean > 3*refMean {
		t.Fatalf("mean response grew from %v (100k) to %v (1M): system not stable at ρ=0.5", refMean, bigMean)
	}
}

// TestOpenGateDeterminism pins the streaming path's reproducibility at a
// scale the plain unit tests never reach: two 200k-job runs must agree
// bit-for-bit on every streamed aggregate.
func TestOpenGateDeterminism(t *testing.T) {
	if os.Getenv("OPEN_GATE") == "" {
		t.Skip("set OPEN_GATE=1 to run the open-system determinism gate")
	}
	a, err := core.Run(openGateConfig(200_000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(openGateConfig(200_000))
	if err != nil {
		t.Fatal(err)
	}
	if a.Open.MeanResponse != b.Open.MeanResponse || a.Open.P99 != b.Open.P99 ||
		a.Makespan != b.Makespan || a.Open.PeakQueue != b.Open.PeakQueue {
		t.Fatalf("200k-job open runs diverged:\n%v\n%v", a.Open, b.Open)
	}
}
