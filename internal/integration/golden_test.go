package integration

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestGoldenValues pins exact mean response times for a handful of
// configurations. The simulator is deterministic, so any drift here means
// the model changed. That is sometimes intentional — recalibration,
// bug fixes — in which case update these values AND regenerate
// EXPERIMENTS.md (cmd/ippsbench) in the same change; what this test
// prevents is silent, unnoticed drift.
func TestGoldenValues(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.Config
		want sim.Time
	}{
		{
			name: "pure-ts-matmul-fixed-16L",
			cfg: core.Config{PartitionSize: 16, Topology: topology.Linear,
				Policy: sched.TimeShared, App: core.MatMul, Arch: workload.Fixed},
			want: 7258375,
		},
		{
			name: "hybrid-matmul-adaptive-4M",
			cfg: core.Config{PartitionSize: 4, Topology: topology.Mesh,
				Policy: sched.TimeShared, App: core.MatMul, Arch: workload.Adaptive},
			want: 1004694,
		},
		{
			name: "static-sort-fixed-2L-submission",
			cfg: core.Config{PartitionSize: 2, Topology: topology.Linear,
				Policy: sched.Static, App: core.Sort, Arch: workload.Fixed},
			want: 1087837,
		},
		{
			name: "gang-stencil-fixed-8M",
			cfg: core.Config{PartitionSize: 8, Topology: topology.Mesh,
				Policy: sched.Gang, App: core.Stencil, Arch: workload.Fixed},
			want: 3207756,
		},
		{
			name: "dynamic-matmul-adaptive-mesh",
			cfg: core.Config{Policy: sched.DynamicSpace, Topology: topology.Mesh,
				App: core.MatMul, Arch: workload.Adaptive},
			want: 1526734,
		},
		{
			name: "rrprocess-sort-adaptive-8H",
			cfg: core.Config{PartitionSize: 8, Topology: topology.Hypercube,
				Policy: sched.RRProcess, App: core.Sort, Arch: workload.Adaptive},
			want: 2698712,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := core.Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.MeanResponse(); got != c.want {
				t.Errorf("mean response = %d µs, pinned %d µs — model drift; "+
					"if intentional, update this pin and regenerate EXPERIMENTS.md",
					got, c.want)
			}
		})
	}
}

// TestTorusThroughTheStack: the extension topology works end to end.
func TestTorusThroughTheStack(t *testing.T) {
	res, err := core.Run(core.Config{
		PartitionSize: 8,
		Topology:      topology.Torus,
		Policy:        sched.TimeShared,
		App:           core.MatMul,
		Arch:          workload.Adaptive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 16 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	// The torus's wraparound should beat the mesh's corner-rooted layout.
	mesh, err := core.Run(core.Config{
		PartitionSize: 8,
		Topology:      topology.Mesh,
		Policy:        sched.TimeShared,
		App:           core.MatMul,
		Arch:          workload.Adaptive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.AvgHops() > mesh.Net.AvgHops() {
		t.Errorf("torus avg hops %.2f above mesh %.2f", res.Net.AvgHops(), mesh.Net.AvgHops())
	}
}

// TestRandomOpenStreamsNeverStall: random Poisson streams at random loads
// complete under every policy (no deadlock, no lost jobs).
func TestRandomOpenStreamsNeverStall(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, policy := range allPolicies {
			batch := workload.MatMulBatch(workload.Adaptive, workload.DefaultAppCost(), false)
			batch = batch.WithPoissonArrivals(sim.Time(50+seed*40)*sim.Millisecond, seed)
			cfg := core.Config{
				PartitionSize: 4,
				Topology:      topology.Ring,
				Policy:        policy,
				Batch:         batch,
				Seed:          seed,
			}
			if policy == sched.DynamicSpace {
				cfg.PartitionSize = 0
			}
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, policy, err)
			}
			if len(res.Jobs) != 16 {
				t.Fatalf("seed %d %v: %d jobs", seed, policy, len(res.Jobs))
			}
		}
	}
}
