package integration

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

// The policy gate is the framework's bit-identical-default contract, checked
// end to end through core.Run: composing the default policy components must
// reproduce the legacy disciplines exactly — not statistically close, the
// same simulation — and the modern compositions must be deterministic.
// `make policy-gate` runs these plus TestGoldenValues and TestHashCompat*
// under the race detector.

// gateConfigs is one config per legacy discipline, spanning both
// architectures and all three apps.
func gateConfigs() []core.Config {
	return []core.Config{
		{PartitionSize: 16, Topology: topology.Linear, Policy: sched.TimeShared, App: core.MatMul, Arch: workload.Fixed},
		{PartitionSize: 2, Topology: topology.Linear, Policy: sched.Static, App: core.Sort, Arch: workload.Fixed},
		{PartitionSize: 8, Topology: topology.Hypercube, Policy: sched.RRProcess, App: core.Sort, Arch: workload.Adaptive},
		{PartitionSize: 8, Topology: topology.Mesh, Policy: sched.Gang, App: core.Stencil, Arch: workload.Fixed},
		{Policy: sched.DynamicSpace, Topology: topology.Mesh, App: core.MatMul, Arch: workload.Adaptive},
	}
}

// TestPolicyGateSpelledEqualsLegacy: spelling each legacy discipline out as
// its explicit component triple produces a deep-equal result — every job
// record, node counter and network statistic — and the same row label, since
// composite specs canonicalize onto the legacy name.
func TestPolicyGateSpelledEqualsLegacy(t *testing.T) {
	for _, cfg := range gateConfigs() {
		cfg := cfg
		t.Run(cfg.PolicyLabel(), func(t *testing.T) {
			legacy, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			spelled := cfg
			spec := cfg.Policy.Spec()
			spelled.PartitionPolicy = spec.Partition
			spelled.QuantumPolicy = spec.Quantum
			spelled.QueueOrder = spec.Order
			if spelled.PolicyLabel() != cfg.PolicyLabel() {
				t.Errorf("spelled label %q, legacy label %q", spelled.PolicyLabel(), cfg.PolicyLabel())
			}
			got, err := core.Run(spelled)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, legacy) {
				t.Errorf("spelled-out %s diverged from the legacy discipline:\nlegacy: %v\n  spec: %v",
					cfg.PolicyLabel(), legacy, got)
			}
		})
	}
}

// TestPolicyGateZooDeterminism: the zoo compositions — the disciplines with
// no legacy equivalent — run to completion and are bit-deterministic across
// repeated runs.
func TestPolicyGateZooDeterminism(t *testing.T) {
	zoo := []core.Config{
		{PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared,
			QuantumPolicy: sched.QuantumDynamic, App: core.MatMul, Arch: workload.Adaptive},
		{PartitionSize: 4, Topology: topology.Mesh, Policy: sched.Static,
			QueueOrder: sched.OrderSRPT, App: core.Sort, Arch: workload.Adaptive},
		{Topology: topology.Mesh, Policy: sched.DynamicSpace,
			PartitionPolicy: sched.PartEqui, App: core.MatMul, Arch: workload.Adaptive},
	}
	for _, cfg := range zoo {
		cfg := cfg
		t.Run(cfg.PolicyLabel(), func(t *testing.T) {
			first, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(first.Jobs) != 16 {
				t.Fatalf("jobs = %d, want the paper's batch of 16", len(first.Jobs))
			}
			again, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Errorf("%s not deterministic across runs", cfg.PolicyLabel())
			}
		})
	}
}
