package perfgate

import (
	"fmt"
	"math"
	"sort"
)

// Verdict is the outcome of comparing a measured run against its ledger
// baseline.
type Verdict string

const (
	// VerdictRegression: at least one metric moved against its direction
	// by more than the tolerance band — the gate fails.
	VerdictRegression Verdict = "regression"
	// VerdictImprovement: no regression, and at least one metric moved
	// in its favored direction beyond the band.
	VerdictImprovement Verdict = "improvement"
	// VerdictWithinNoise: every shared metric stayed inside the band.
	VerdictWithinNoise Verdict = "within-noise"
	// VerdictNoBaseline: the ledger holds no perfgate entry for this
	// case and machine class yet; the run seeds one.
	VerdictNoBaseline Verdict = "no-baseline"
)

// MetricDelta is one metric's movement against the baseline.
type MetricDelta struct {
	Metric   string
	Base     float64
	Current  float64
	DeltaPct float64 // signed; +Inf when the baseline was zero
	Verdict  Verdict
}

func (d MetricDelta) String() string {
	return fmt.Sprintf("%s: %g -> %g (%+.1f%%, %s)", d.Metric, d.Base, d.Current, d.DeltaPct, d.Verdict)
}

// RunComparison is a full run-vs-baseline comparison.
type RunComparison struct {
	Baseline *Entry // nil when none exists
	// ThresholdPct is the band actually applied: the case tolerance
	// widened by the measured noise of both runs.
	ThresholdPct float64
	Deltas       []MetricDelta
	Verdict      Verdict
}

// lowerBetter reports a metric's direction. Unknown metrics default to
// lower-is-better — the conservative choice for cost-like numbers.
func lowerBetter(metric string) bool {
	switch metric {
	case "speedup", "jobs_per_sec", "req_per_sec":
		return false
	}
	return true
}

// contextMetrics are recorded for reproducibility but never compared.
var contextMetrics = map[string]bool{"workers": true}

// zeroBaselineFloor: when the baseline is exactly zero (0 allocs/op), any
// relative delta is undefined; growth only counts as a regression past
// this absolute floor, so sub-unit measurement jitter around zero cannot
// flip the gate.
const zeroBaselineFloor = 1.0

// Compare checks a measured run against the newest same-case,
// same-machine-class ledger entry. The band is max(case tolerance, this
// run's noise, the baseline's recorded noise): a delta smaller than what
// repeated trials disagree by means nothing.
func Compare(run *CaseRun, baseline *Entry) *RunComparison {
	cmp := &RunComparison{Baseline: baseline, Verdict: VerdictNoBaseline}
	if baseline == nil {
		return cmp
	}
	cmp.ThresholdPct = math.Max(run.Case.TolerancePct, math.Max(run.NoisePct, baseline.NoisePct))
	base := baseline.Metrics()
	keys := make([]string, 0, len(run.Median))
	for k := range run.Median {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cmp.Verdict = VerdictWithinNoise
	for _, k := range keys {
		if contextMetrics[k] {
			continue
		}
		bv, ok := base[k]
		if !ok {
			continue
		}
		d := compareMetric(k, bv, run.Median[k], cmp.ThresholdPct)
		cmp.Deltas = append(cmp.Deltas, d)
		switch d.Verdict {
		case VerdictRegression:
			cmp.Verdict = VerdictRegression
		case VerdictImprovement:
			if cmp.Verdict != VerdictRegression {
				cmp.Verdict = VerdictImprovement
			}
		}
	}
	return cmp
}

func compareMetric(metric string, base, cur, thresholdPct float64) MetricDelta {
	d := MetricDelta{Metric: metric, Base: base, Current: cur, Verdict: VerdictWithinNoise}
	lower := lowerBetter(metric)
	if base == 0 {
		switch {
		case cur == 0:
			// flat at zero
		case math.Abs(cur) <= zeroBaselineFloor:
			// sub-unit jitter around a zero baseline
		case lower:
			d.DeltaPct = math.Inf(1)
			d.Verdict = VerdictRegression
		default:
			d.DeltaPct = math.Inf(1)
			d.Verdict = VerdictImprovement
		}
		return d
	}
	d.DeltaPct = 100 * (cur - base) / math.Abs(base)
	worse := d.DeltaPct > thresholdPct
	better := d.DeltaPct < -thresholdPct
	if !lower {
		worse, better = better, worse
	}
	switch {
	case worse:
		d.Verdict = VerdictRegression
	case better:
		d.Verdict = VerdictImprovement
	}
	return d
}
