package perfgate

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/perfgate/workloads"
)

// Measurement is one trial's flat metric map. Keys are ledger field
// names: ns_per_op, b_per_op and allocs_per_op always; workload-reported
// extras (speedup, p95_ms, jobs_per_sec, req_per_sec, peak_bytes,
// workers) when the body emits them.
type Measurement map[string]float64

// CaseRun is the measured outcome of one case on this host.
type CaseRun struct {
	Case   *Case
	Class  Class
	Host   Host
	Iters  int           // iterations per trial
	Trials []Measurement // one per measured trial
	// Median holds the per-metric median across trials — the numbers
	// goals and baselines are checked against.
	Median Measurement
	// NoisePct is the robust relative spread of ns_per_op across trials
	// (scaled MAD / median, in percent): the band inside which a delta
	// against the baseline means nothing.
	NoisePct float64
}

// benchB is the perfgate trial harness's implementation of workloads.B:
// a fixed iteration count, wall-clock and allocation baselines restartable
// via ResetTimer, and ReportMetric captured into the trial's metric map.
type benchB struct {
	n       int
	start   time.Time
	mem     runtime.MemStats
	metrics Measurement
}

// benchFatal carries a workload Fatalf out of the body via panic; the
// harness converts it back into an error.
type benchFatal struct{ err error }

func newBenchB(n int) *benchB {
	b := &benchB{n: n, metrics: Measurement{}}
	b.ResetTimer()
	return b
}

func (b *benchB) N() int { return b.n }

func (b *benchB) ResetTimer() {
	runtime.GC()
	runtime.ReadMemStats(&b.mem)
	b.start = time.Now()
}

func (b *benchB) ReportAllocs() {} // the harness always measures allocations

func (b *benchB) ReportMetric(n float64, unit string) { b.metrics[unit] = n }

func (b *benchB) Fatalf(format string, args ...any) {
	panic(benchFatal{fmt.Errorf(format, args...)})
}

// measureOnce runs one fixed-iteration trial and returns its metrics.
func measureOnce(fn workloads.Func, n int) (m Measurement, err error) {
	defer func() {
		if r := recover(); r != nil {
			if bf, ok := r.(benchFatal); ok {
				err = bf.err
				return
			}
			panic(r)
		}
	}()
	b := newBenchB(n)
	fn(b)
	elapsed := time.Since(b.start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	m = b.metrics
	m["ns_per_op"] = float64(elapsed.Nanoseconds()) / float64(n)
	m["b_per_op"] = float64(after.TotalAlloc-b.mem.TotalAlloc) / float64(n)
	m["allocs_per_op"] = float64(after.Mallocs-b.mem.Mallocs) / float64(n)
	return m, nil
}

// calibrate finds the iteration count for a duration-based benchtime by
// growing N geometrically until one run takes at least the target — the
// same shape testing.B uses, without its rounding niceties. The probe
// runs double as warmup.
func calibrate(fn workloads.Func, target time.Duration) (int, error) {
	n := 1
	for {
		m, err := measureOnce(fn, n)
		if err != nil {
			return 0, err
		}
		elapsed := time.Duration(m["ns_per_op"] * float64(n))
		if elapsed >= target || n >= 1e9 {
			return n, nil
		}
		// Predict the target N from the observed rate, with headroom and
		// a growth cap so one mispredicted step can't run for minutes.
		next := n * 100
		if elapsed > 0 {
			next = int(1.2 * float64(target) / (m["ns_per_op"]))
		}
		if next <= n {
			next = n + 1
		}
		if next > n*100 {
			next = n * 100
		}
		n = next
	}
}

// RunCase measures one case: warmup trials discarded, Trials measured at a
// fixed iteration count, per-metric medians and the ns_per_op noise band
// computed.
func RunCase(c *Case) (*CaseRun, error) {
	fn, ok := workloads.Lookup(c.Workload)
	if !ok {
		return nil, fmt.Errorf("case %s: unknown workload %q (have %v)", c.Name, c.Workload, workloads.Names())
	}
	iters, target, err := ParseBenchtime(c.Benchtime)
	if err != nil {
		return nil, fmt.Errorf("case %s: %w", c.Name, err)
	}
	if iters == 0 {
		if iters, err = calibrate(fn, target); err != nil {
			return nil, fmt.Errorf("case %s: %w", c.Name, err)
		}
	}
	for i := 0; i < *c.Warmup; i++ {
		if _, err := measureOnce(fn, iters); err != nil {
			return nil, fmt.Errorf("case %s (warmup): %w", c.Name, err)
		}
	}
	run := &CaseRun{Case: c, Class: Detect(), Host: DetectHost(), Iters: iters}
	for i := 0; i < c.Trials; i++ {
		m, err := measureOnce(fn, iters)
		if err != nil {
			return nil, fmt.Errorf("case %s (trial %d): %w", c.Name, i, err)
		}
		run.Trials = append(run.Trials, m)
	}
	run.Median = medianMetrics(run.Trials)
	run.NoisePct = noisePct(metricSamples(run.Trials, "ns_per_op"))
	return run, nil
}

// medianMetrics takes the per-metric median across trials. A metric
// missing from some trials is medianed over the trials that have it.
func medianMetrics(trials []Measurement) Measurement {
	keys := map[string]bool{}
	for _, t := range trials {
		for k := range t {
			keys[k] = true
		}
	}
	med := Measurement{}
	for k := range keys {
		if s := metricSamples(trials, k); len(s) > 0 {
			med[k] = median(s)
		}
	}
	return med
}

func metricSamples(trials []Measurement, key string) []float64 {
	var s []float64
	for _, t := range trials {
		if v, ok := t[key]; ok {
			s = append(s, v)
		}
	}
	return s
}

func median(s []float64) float64 {
	c := append([]float64(nil), s...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// noisePct is the robust relative spread of a sample set: the median
// absolute deviation scaled to be comparable to a standard deviation
// (×1.4826 under normality), as a percentage of the median. One wild
// trial on a noisy shared host widens the band instead of poisoning the
// center.
func noisePct(s []float64) float64 {
	if len(s) < 2 {
		return 0
	}
	med := median(s)
	if med == 0 {
		return 0
	}
	dev := make([]float64, len(s))
	for i, v := range s {
		dev[i] = math.Abs(v - med)
	}
	return 100 * 1.4826 * median(dev) / math.Abs(med)
}
