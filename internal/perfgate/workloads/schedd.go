package workloads

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// quietLogger drops the per-request log lines: the workload measures the
// serving path, and a benchmark run printing thousands of slog lines
// would both distort the numbers and bury the report.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// scheddBody is the POST /v1/run body the serve workloads use: the
// cheapest closed-batch run that still crosses the whole serving stack
// (parse, canonical hash, cache, engine, summary rendering). Seed varies
// the content address, so seed 0 repeated is the cached path and a fresh
// seed per request is the cold path.
func scheddBody(seed int64) []byte {
	return []byte(fmt.Sprintf(
		`{"config":{"partition":4,"policy":"static","app":"matmul","arch":"fixed","seed":%d}}`, seed))
}

// scheddClient returns a client that keeps enough idle connections for the
// load workload's concurrency; the default transport caps idle conns per
// host at 2 and would measure connection churn instead of the server.
func scheddClient(ts *httptest.Server) *http.Client {
	tr := ts.Client().Transport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 32
	return &http.Client{Transport: tr}
}

// scheddPost issues one run request and returns the X-Cache header.
func scheddPost(c *http.Client, url string, body []byte) (string, error) {
	resp, err := c.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Cache"), nil
}

// ScheddRunCached measures the serving tier's hit path: a full HTTP
// round-trip through the content-addressed LRU for a result computed once
// in setup. ns/op here is pure serving overhead — parse, hash, cache get,
// response write — with zero simulation.
func ScheddRunCached(b B) {
	srv := serve.New(serve.Options{Workers: 1, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := scheddClient(ts)
	body := scheddBody(0)
	if _, err := scheddPost(client, ts.URL, body); err != nil {
		b.Fatalf("warm request: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N(); i++ {
		cache, err := scheddPost(client, ts.URL, body)
		if err != nil {
			b.Fatalf("request %d: %v", i, err)
		}
		if cache != "hit" {
			b.Fatalf("request %d: X-Cache %q, want hit", i, cache)
		}
	}
}

// ScheddRunCold measures the serving tier's miss path: every request
// carries a fresh seed, so each round-trip parses, hashes, misses the LRU
// and the tier-2 disk store, simulates on the engine pool, renders the
// summary and write-behinds the result to disk — the full cost of a
// never-seen config.
func ScheddRunCold(b B) {
	dir, err := os.MkdirTemp("", "perfgate-store-")
	if err != nil {
		b.Fatalf("store dir: %v", err)
	}
	defer os.RemoveAll(dir)
	srv, err := serve.Open(serve.Options{Workers: 1, StoreDir: dir, Logger: quietLogger()})
	if err != nil {
		b.Fatalf("open server: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := scheddClient(ts)
	b.ResetTimer()
	for i := 0; i < b.N(); i++ {
		cache, err := scheddPost(client, ts.URL, scheddBody(int64(i)+1))
		if err != nil {
			b.Fatalf("request %d: %v", i, err)
		}
		if cache != "miss" {
			b.Fatalf("request %d: X-Cache %q, want miss", i, cache)
		}
	}
}

// ScheddServeLoad hammers the server with 8 concurrent clients cycling
// over 16 pre-warmed configs and reports the p95 request latency
// ("p95_ms") and sustained throughput ("req_per_sec") — the serving-tier
// tail-latency number under contention, dominated by cache hits exactly
// like a production fleet at steady state.
func ScheddServeLoad(b B) {
	const clients = 8
	const configs = 16
	srv := serve.New(serve.Options{Workers: 1, MaxInflight: 2, QueueDepth: 32, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := scheddClient(ts)
	bodies := make([][]byte, configs)
	for i := range bodies {
		bodies[i] = scheddBody(int64(i) + 1)
		if _, err := scheddPost(client, ts.URL, bodies[i]); err != nil {
			b.Fatalf("warm config %d: %v", i, err)
		}
	}
	total := b.N()
	var next atomic.Int64
	latencies := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	var failed atomic.Value
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				reqStart := time.Now()
				if _, err := scheddPost(client, ts.URL, bodies[i%configs]); err != nil {
					failed.Store(fmt.Errorf("request %d: %w", i, err))
					return
				}
				latencies[c] = append(latencies[c], time.Since(reqStart))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err := failed.Load(); err != nil {
		b.Fatalf("%v", err)
	}
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p95 := all[(len(all)*95)/100%len(all)]
	b.ReportMetric(float64(p95.Nanoseconds())/1e6, "p95_ms")
	if s := wall.Seconds(); s > 0 {
		b.ReportMetric(float64(len(all))/s, "req_per_sec")
	}
}
