package workloads

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// SweepBenchPlan builds the fixed 32-point plan behind the sweep-scaling
// workload and BenchmarkSweepParallel: partitions {2,4,8,16} × topologies
// {linear,mesh} × seeds 0..3, hybrid matmul adaptive — a representative
// mid-size sweep.
func SweepBenchPlan() *engine.Plan[float64] {
	g := engine.Grid{
		Base:       core.Config{Policy: sched.TimeShared, App: core.MatMul, Arch: workload.Adaptive},
		Partitions: []int{2, 4, 8, 16},
		Topologies: []topology.Kind{topology.Linear, topology.Mesh},
		Seeds:      []int64{0, 1, 2, 3},
	}
	plan := engine.NewPlan[float64]("bench-sweep")
	g.Enumerate(func(d engine.Dims, cfg core.Config) {
		plan.Add(fmt.Sprintf("%d%s/s%d", d.Partition, d.Topology.Letter(), d.Seed), func() (float64, error) {
			res, err := core.Run(cfg)
			if err != nil {
				return 0, err
			}
			return res.MeanResponse().Seconds(), nil
		})
	})
	return plan
}

// SweepScaling measures engine.Execute over the 32-point plan at 1 worker
// and at NumCPU workers inside the same timed region and reports the ratio
// as "speedup" — the sweep-level parallel speedup the BENCH ledger's ≥2x
// claim is about. On a 1-core host the ratio is the pool's overhead
// instead (≈1.0), which is why the typical-class speedup goal is advisory
// on ci-1core: a single core cannot attest it either way.
func SweepScaling(b B) {
	workers := runtime.NumCPU()
	var serial, parallel time.Duration
	var serialSum, parallelSum float64
	b.ResetTimer()
	for i := 0; i < b.N(); i++ {
		start := time.Now()
		r1, err := engine.Execute(SweepBenchPlan(), engine.Options{Workers: 1})
		serial += time.Since(start)
		if err != nil {
			b.Fatalf("workers=1: %v", err)
		}
		start = time.Now()
		rn, err := engine.Execute(SweepBenchPlan(), engine.Options{Workers: workers})
		parallel += time.Since(start)
		if err != nil {
			b.Fatalf("workers=%d: %v", workers, err)
		}
		serialSum, parallelSum = 0, 0
		for i := range r1 {
			serialSum += r1[i]
			parallelSum += rn[i]
		}
		if serialSum != parallelSum {
			b.Fatalf("determinism: sim-sum %v at workers=1 vs %v at workers=%d", serialSum, parallelSum, workers)
		}
	}
	if parallel > 0 {
		b.ReportMetric(float64(serial)/float64(parallel), "speedup")
	}
	b.ReportMetric(float64(workers), "workers")
}

// ForkedSweepGrid builds the fixed 32-point shared-prefix grid behind the
// sweep-forked workload and BenchmarkSweepForked: one fork group — a heavy
// 32-job warm-up wave every point shares, plus 4 light late arrivals —
// diverging innermost over quanta {hw,10..70ms} × seeds 0..3. The fork
// point is the quiescent instant after the wave drains, so the warm path
// simulates the expensive prefix once instead of 32 times.
func ForkedSweepGrid() (engine.Grid, core.ForkPoint) {
	cost := workload.DefaultAppCost()
	batch := make(workload.Batch, 0, 16)
	for i := 0; i < 32; i++ {
		batch = append(batch, &workload.Job{
			ID: i, Class: "big", Arch: workload.Adaptive,
			App: workload.NewSynthetic(400*sim.Millisecond, 512, 2048, cost),
		})
	}
	for i := 0; i < 4; i++ {
		batch = append(batch, &workload.Job{
			ID: 32 + i, Class: "small", Arch: workload.Adaptive, Arrival: 20 * sim.Second,
			App: workload.NewSynthetic(5*sim.Millisecond, 256, 1024, cost),
		})
	}
	g := engine.Grid{
		Base:       core.Config{Topology: topology.Mesh, Policy: sched.TimeShared, Batch: batch},
		Partitions: []int{4},
		Quanta: []sim.Time{0, 10 * sim.Millisecond, 20 * sim.Millisecond, 30 * sim.Millisecond,
			40 * sim.Millisecond, 50 * sim.Millisecond, 60 * sim.Millisecond, 70 * sim.Millisecond},
		Seeds: []int64{0, 1, 2, 3},
	}
	return g, core.ForkPoint{WarmJobs: 32}
}

// SweepForked runs the shared-prefix 32-point sweep cold (core.RunForked
// per point, full prefix every time) and warm (engine.NewForkSweep: prefix
// once, snapshot resume per point) inside the same timed region, and
// reports cold/warm as "speedup" — the warm-state forking headline whose
// acceptance floor is 5x. Byte-identity of the two paths is asserted by
// make fork-gate, not here.
func SweepForked(b B) {
	g, fp := ForkedSweepGrid()
	var cold, warm time.Duration
	b.ResetTimer()
	for i := 0; i < b.N(); i++ {
		start := time.Now()
		fs := engine.NewForkSweep(g, fp)
		for j := 0; j < fs.Len(); j++ {
			if _, err := core.RunForked(fs.Group(j).Base(), fp, fs.Divergence(j)); err != nil {
				b.Fatalf("cold point %d: %v", j, err)
			}
		}
		cold += time.Since(start)
		start = time.Now()
		fs = engine.NewForkSweep(g, fp)
		for j := 0; j < fs.Len(); j++ {
			if _, err := fs.Run(j); err != nil {
				b.Fatalf("warm point %d: %v", j, err)
			}
		}
		warm += time.Since(start)
	}
	if warm > 0 {
		b.ReportMetric(float64(cold)/float64(warm), "speedup")
	}
}
