package workloads

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// KernelEventThroughput isolates the event-queue engine: one
// self-rescheduling chain, the cheapest possible schedule/fire cycle.
func KernelEventThroughput(b B) {
	k := sim.NewKernel(1)
	count := 0
	n := b.N()
	var reschedule func()
	reschedule = func() {
		count++
		if count < n {
			k.After(sim.Time(count%97+1), reschedule)
		}
	}
	b.ResetTimer()
	k.After(1, reschedule)
	k.Run()
}

// KernelEventChurn drives 64 interleaved self-rescheduling event chains —
// the schedule/fire pattern that dominates simulation runs — and its
// allocs/op is the event pool's headline number.
func KernelEventChurn(b B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	remaining := b.N()
	var fire func()
	fire = func() {
		if remaining > 0 {
			remaining--
			k.After(sim.Time(remaining%127+1), fire)
		}
	}
	b.ResetTimer()
	for i := 0; i < 64 && i < b.N(); i++ {
		k.After(sim.Time(i+1), fire)
	}
	k.Run()
}

// TimerCancelStorm schedules batches of timers and cancels three quarters
// of them before they fire — the slice-expiry/retry-timer pattern where
// most armed timers never run.
func TimerCancelStorm(b B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	const batch = 256
	fired := 0
	b.ResetTimer()
	for i := 0; i < b.N(); i++ {
		want := fired + batch/4
		for j := 0; j < batch; j++ {
			tm := k.After(sim.Time(j%61+1), func() { fired++ })
			if j%4 != 0 {
				tm.Stop()
			}
		}
		k.Run()
		if fired != want {
			b.Fatalf("fired %d of batch, want %d", fired, want)
		}
	}
}

// AllToAll16 runs a 16-node mesh all-to-all exchange — the message pattern
// that stresses the store-and-forward router hot path (enqueue routing,
// link hand-off, per-hop timers).
func AllToAll16(b B) {
	b.ReportAllocs()
	const n = 16
	b.ResetTimer()
	for i := 0; i < b.N(); i++ {
		k := sim.NewKernel(1)
		mach := machine.NewMachine(k, n, 4<<20, machine.DefaultCostModel())
		ids := make([]int, n)
		for j := range ids {
			ids[j] = j
		}
		net := comm.MustNewNetwork(mach, ids, topology.MustBuild(topology.Mesh, n), comm.StoreForward)
		boxes := make([]*comm.Mailbox, n)
		for j := 0; j < n; j++ {
			boxes[j] = net.NewMailbox(j)
		}
		for j := 0; j < n; j++ {
			j := j
			k.Spawn(fmt.Sprintf("rank%d", j), func(p *sim.Proc) {
				task := net.NodeOf(j).CPU.NewTask(fmt.Sprintf("rank%d", j), machine.PriLow)
				for d := 0; d < n; d++ {
					if d == j {
						continue
					}
					net.Send(p, task, &comm.Message{
						Src: comm.Addr{Node: j}, Dst: comm.Addr{Node: d},
						Bytes: 256, Tag: "a2a",
					})
				}
				for r := 0; r < n-1; r++ {
					m := net.Recv(p, task, boxes[j])
					net.Release(m)
				}
			})
		}
		k.Run()
		stats := net.Stats()
		if stats.MessagesDelivered != n*(n-1) {
			b.Fatalf("delivered %d messages, want %d", stats.MessagesDelivered, n*(n-1))
		}
		k.Shutdown()
	}
}
