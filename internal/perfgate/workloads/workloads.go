// Package workloads holds the benchmark bodies behind the perfgate
// harness. Each workload is a plain function over the B interface — the
// subset of *testing.B a benchmark body actually needs — so the exact same
// code runs in two harnesses:
//
//   - `go test -bench` via the thin Benchmark* wrappers (bench_test.go at
//     the repo root, internal/serve/bench_test.go), which pass TB(b);
//   - cmd/perfgate, whose fixed-iteration trial harness implements B
//     itself (see internal/perfgate/runner.go) so it can run warmup +
//     repeated trials and take robust medians.
//
// Workloads report derived numbers (speedups, quantiles, throughput) via
// ReportMetric with ledger-stable unit names: "speedup", "p95_ms",
// "jobs_per_sec", "req_per_sec", "peak_bytes", "workers". These unit
// strings are the keys perfgate cases declare goals against and the field
// names written to the BENCH_*.json ledger — renaming one breaks baseline
// comparison, so don't.
package workloads

import (
	"sort"
	"testing"
)

// B is the benchmark context a workload runs under: the subset of
// *testing.B the bodies need. N is a method (testing.B spells it as a
// field, so wrappers go through TB).
type B interface {
	// N returns the iteration count for this run.
	N() int
	// ResetTimer restarts the wall-clock and allocation baselines,
	// excluding setup cost from the measurement.
	ResetTimer()
	// ReportAllocs marks the run as allocation-reporting (a no-op under
	// the perfgate harness, which always measures allocations).
	ReportAllocs()
	// ReportMetric records a derived metric under a unit name.
	ReportMetric(n float64, unit string)
	// Fatalf aborts the run: the workload's invariant broke, so its
	// timing numbers are meaningless.
	Fatalf(format string, args ...any)
}

// tb adapts *testing.B to B for the Benchmark* wrappers.
type tb struct{ b *testing.B }

func (t tb) N() int                              { return t.b.N }
func (t tb) ResetTimer()                         { t.b.ResetTimer() }
func (t tb) ReportAllocs()                       { t.b.ReportAllocs() }
func (t tb) ReportMetric(n float64, unit string) { t.b.ReportMetric(n, unit) }
func (t tb) Fatalf(format string, args ...any)   { t.b.Fatalf(format, args...) }

// TB wraps a *testing.B as a workload context.
func TB(b *testing.B) B { return tb{b} }

// Func is a runnable workload body.
type Func func(b B)

// registry maps the workload names perf/cases/*.json files reference to
// their bodies.
var registry = map[string]Func{
	"kernel-throughput":  KernelEventThroughput,
	"kernel-churn":       KernelEventChurn,
	"timer-cancel-storm": TimerCancelStorm,
	"all-to-all-16":      AllToAll16,
	"sweep-scaling":      SweepScaling,
	"sweep-forked":       SweepForked,
	"arrival-throughput": ArrivalThroughput,
	"open-peak-rss":      OpenPeakRSS,
	"schedd-run-cached":  ScheddRunCached,
	"schedd-run-cold":    ScheddRunCold,
	"schedd-serve-load":  ScheddServeLoad,
}

// Lookup resolves a workload by its case-file name.
func Lookup(name string) (Func, bool) {
	f, ok := registry[name]
	return f, ok
}

// Names lists every registered workload, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
