package workloads

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

// openConfig is the flat-memory open-system gate shape: static 1-node
// partitions (one loader and one compute process per job, no quantum
// rotation), Poisson arrivals at a stable ρ=0.5.
func openConfig(jobs int64) core.Config {
	ac := workload.DefaultAppCost()
	return core.Config{
		PartitionSize: 1,
		Topology:      topology.Mesh,
		Policy:        sched.Static,
		Arch:          workload.Adaptive,
		AppCost:       &ac,
		Arrival:       arrival.Spec{Kind: arrival.Poisson, Jobs: jobs, Load: 0.5},
	}
}

// ArrivalThroughput measures the open-system streaming path on the
// cheapest representative configuration and reports simulated jobs per
// wall-clock second — the headline number for the millions-of-jobs goal.
// Memory stays flat by design; allocs/op is the tripwire for per-job
// retention creeping back in.
func ArrivalThroughput(b B) {
	b.ReportAllocs()
	const jobs = 20000
	cfg := openConfig(jobs)
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N(); i++ {
		start := time.Now()
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatalf("open run: %v", err)
		}
		elapsed += time.Since(start)
		if res.Open == nil || res.Open.Jobs != jobs {
			b.Fatalf("open summary missing or short: %+v", res.Open)
		}
	}
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(jobs)*float64(b.N())/s, "jobs_per_sec")
	}
}

// OpenPeakRSS streams one million Poisson jobs through the scheduler while
// sampling the live heap, and reports the peak retained set as
// "peak_bytes" — the machine-checked form of the open-system subsystem's
// bounded-memory claim. A per-job leak of even one pointer-sized cell
// moves this number by megabytes, so the case goal has a wide margin for
// GC timing but a tight one for retention growth.
func OpenPeakRSS(b B) {
	const jobs = 1_000_000
	cfg := openConfig(jobs)
	var peak uint64
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N(); i++ {
		var res *metrics.Result
		var err error
		start := time.Now()
		p := peakHeapDuring(func() {
			res, err = core.Run(cfg)
		})
		elapsed += time.Since(start)
		if err != nil {
			b.Fatalf("open run: %v", err)
		}
		if res.Open == nil || res.Open.Jobs != jobs {
			b.Fatalf("open summary missing or short: %+v", res.Open)
		}
		if p > peak {
			peak = p
		}
	}
	b.ReportMetric(float64(peak), "peak_bytes")
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(jobs)*float64(b.N())/s, "jobs_per_sec")
	}
}

// peakHeapDuring runs f while sampling the live heap, returning the peak
// observed live-set size in bytes. Each sample forces a GC so HeapAlloc
// measures retained memory, not collection cadence. (The open-gate
// integration test keeps its own copy: tests cannot import non-test
// helpers from here without dragging serve into the integration package.)
func peakHeapDuring(f func()) uint64 {
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
	}()
	f()
	close(stop)
	<-done
	return peak.Load()
}
