package perfgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeLedger(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

const legacyEntry = `[
  {
    "date": "2026-01-01",
    "benchmark": "kernel-hot-path",
    "host": {"goos": "linux", "goarch": "amd64", "cpu": "test", "cores": 1},
    "results": {"BenchmarkKernelEventChurn": {"ns_per_op": 44.3, "b_per_op": 0, "allocs_per_op": 0}}
  }
]
`

// LedgerFiles orders by filename, which for BENCH_YYYY-MM-DD.json is date
// order regardless of file mtimes (a git checkout scrambles mtimes).
func TestLedgerFilesLexicographic(t *testing.T) {
	dir := t.TempDir()
	writeLedger(t, dir, "BENCH_2026-02-01.json", "[]")
	writeLedger(t, dir, "BENCH_2025-12-31.json", "[]")
	writeLedger(t, dir, "BENCH_2026-01-15.json", "[]")
	// Touch the oldest-dated file last so mtime order disagrees with
	// date order.
	now := time.Now()
	if err := os.Chtimes(filepath.Join(dir, "BENCH_2025-12-31.json"), now, now); err != nil {
		t.Fatal(err)
	}
	paths, err := LedgerFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range paths {
		names = append(names, filepath.Base(p))
	}
	want := []string{"BENCH_2025-12-31.json", "BENCH_2026-01-15.json", "BENCH_2026-02-01.json"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("order %v, want %v", names, want)
	}
}

// AppendEntries targets BENCH_<date>.json: a run dated after the newest
// ledger starts a new file and leaves the old one byte-identical.
func TestAppendEntriesStartsDatedFile(t *testing.T) {
	dir := t.TempDir()
	writeLedger(t, dir, "BENCH_2026-01-01.json", legacyEntry)
	before, err := os.ReadFile(filepath.Join(dir, "BENCH_2026-01-01.json"))
	if err != nil {
		t.Fatal(err)
	}

	entry := sampleEntry("2026-01-02", "kernel-churn", 40)
	path, err := AppendEntries(dir, "2026-01-02", []Entry{entry})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_2026-01-02.json" {
		t.Fatalf("appended to %s, want BENCH_2026-01-02.json", path)
	}
	after, err := os.ReadFile(filepath.Join(dir, "BENCH_2026-01-01.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("append to a new dated file modified the prior ledger")
	}
	if err := ValidateLedgerDir(dir); err != nil {
		t.Fatalf("appended ledger does not validate: %v", err)
	}
}

// Appending to an existing dated file preserves the records already in it.
func TestAppendEntriesPreservesExisting(t *testing.T) {
	dir := t.TempDir()
	writeLedger(t, dir, "BENCH_2026-01-02.json", legacyEntry)
	if _, err := AppendEntries(dir, "2026-01-02", []Entry{sampleEntry("2026-01-02", "kernel-churn", 40)}); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries after append, want 2 (legacy preserved + new)", len(entries))
	}
	if entries[0].Benchmark != "kernel-hot-path" || entries[1].Benchmark != "perfgate" {
		t.Fatalf("entry order %q, %q; want legacy first", entries[0].Benchmark, entries[1].Benchmark)
	}
	if err := ValidateLedgerDir(dir); err != nil {
		t.Fatalf("appended ledger does not validate: %v", err)
	}
}

// FindBaseline returns the newest perfgate entry for the same case and
// class, skipping other cases, other classes, and legacy entries.
func TestFindBaseline(t *testing.T) {
	entries := []Entry{
		{Benchmark: "kernel-hot-path", Date: "2026-01-01"}, // legacy: never a baseline
		sampleEntry("2026-01-02", "kernel-churn", 50),
		sampleEntry("2026-01-03", "timer-cancel-storm", 100), // other case
		sampleEntry("2026-01-04", "kernel-churn", 45),
	}
	other := sampleEntry("2026-01-05", "kernel-churn", 30)
	other.MachineClass = string(ClassTypical)
	entries = append(entries, other)

	got := FindBaseline(entries, "kernel-churn", ClassCI1Core)
	if got == nil {
		t.Fatal("no baseline found")
	}
	if got.Date != "2026-01-04" {
		t.Fatalf("baseline dated %s, want 2026-01-04 (newest same-case same-class)", got.Date)
	}
	if FindBaseline(entries, "kernel-churn", ClassTypical).Date != "2026-01-05" {
		t.Fatal("typical-class baseline not found")
	}
	if FindBaseline(entries, "all-to-all-16", ClassCI1Core) != nil {
		t.Fatal("found a baseline for a case with no entries")
	}
}

// EntryFor: status is fail exactly when the comparison regressed or an
// enforced goal missed; advisory goal misses stay pass.
func TestEntryForStatus(t *testing.T) {
	run := testRun(20, 0, Measurement{"ns_per_op": 100})
	run.Class = ClassCI1Core
	pass := GoalCheck{Goal: "max_ns_per_op", Metric: "ns_per_op", Limit: 150, Value: 100, OK: true}
	miss := GoalCheck{Goal: "max_ns_per_op", Metric: "ns_per_op", Limit: 50, Value: 100, OK: false}

	cases := []struct {
		name     string
		cmp      *RunComparison
		checks   []GoalCheck
		enforced bool
		want     string
	}{
		{"clean", &RunComparison{Verdict: VerdictNoBaseline}, []GoalCheck{pass}, true, "pass"},
		{"enforced miss", &RunComparison{Verdict: VerdictNoBaseline}, []GoalCheck{miss}, true, "fail"},
		{"advisory miss", &RunComparison{Verdict: VerdictNoBaseline}, []GoalCheck{miss}, false, "pass"},
		{"regression", &RunComparison{Verdict: VerdictRegression}, nil, false, "fail"},
		{"improvement", &RunComparison{Verdict: VerdictImprovement}, nil, true, "pass"},
	}
	for _, tc := range cases {
		e := EntryFor("2026-01-02", run, tc.cmp, tc.checks, tc.enforced)
		if e.Status != tc.want {
			t.Errorf("%s: status %q, want %q", tc.name, e.Status, tc.want)
		}
	}
}

// The baseline block carries the compared entry's date and flat metrics so
// a ledger reader can reproduce the comparison.
func TestEntryForBaselineBlock(t *testing.T) {
	run := testRun(20, 0, Measurement{"ns_per_op": 90})
	run.Class = ClassCI1Core
	base := sampleEntry("2026-01-01", "synthetic", 100)
	cmp := Compare(run, &base)
	e := EntryFor("2026-01-02", run, cmp, nil, true)
	if e.Baseline["date"] != "2026-01-01" {
		t.Fatalf("baseline date %v, want 2026-01-01", e.Baseline["date"])
	}
	if e.Baseline["ns_per_op"] != int64(100) {
		t.Fatalf("baseline ns_per_op %v (%T), want 100", e.Baseline["ns_per_op"], e.Baseline["ns_per_op"])
	}
}

func sampleEntry(date, caseName string, nsPerOp float64) Entry {
	return Entry{
		Date: date, Benchmark: "perfgate", Case: caseName,
		MachineClass: string(ClassCI1Core),
		Host:         Host{Goos: "linux", Goarch: "amd64", CPU: "test", Cores: 1},
		Iters:        100, Trials: 3, Status: "pass", Verdict: string(VerdictNoBaseline),
		Results: map[string]any{"ns_per_op": nsPerOp},
	}
}
