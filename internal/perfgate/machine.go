// Package perfgate makes the BENCH_*.json ledger enforceable: declarative
// performance cases under perf/cases/ declare per-machine-class goals
// (max ns/op, max allocs/op, max peak bytes, min speedup, max p95), a
// fixed-trial harness measures them with robust medians and noise bands,
// a comparator checks the run against the newest ledger baseline for the
// same case and machine class, and the run is appended to the ledger as a
// structured entry — so a kernel or fabric regression fails CI instead of
// landing silently behind a hand-written number.
//
// The shape follows DataDog's workload-checks: goals are relative to a
// machine class, because a 1-core CI host genuinely cannot attest a ≥2x
// parallel-speedup claim — those goals run advisory there and enforce on
// hosts of the declaring class.
package perfgate

import (
	"bufio"
	"os"
	"runtime"
	"strings"
)

// Class names a machine class: the hardware tier a case's goals are
// declared against.
type Class string

const (
	// ClassCI1Core is the single-core tier: shared CI runners and the
	// build host behind the existing ledger entries. Latency and
	// allocation goals hold here; parallel-speedup goals cannot.
	ClassCI1Core Class = "ci-1core"
	// ClassTypical is the multi-core tier a developer workstation or a
	// schedd worker runs on; parallel-speedup goals enforce here.
	ClassTypical Class = "typical"
)

// KnownClasses lists every class a case file may declare goals for.
func KnownClasses() []Class { return []Class{ClassCI1Core, ClassTypical} }

// ValidClass reports whether c is a declared machine class.
func ValidClass(c Class) bool {
	for _, k := range KnownClasses() {
		if c == k {
			return true
		}
	}
	return false
}

// EffectiveCores is the parallelism actually available to the process:
// NumCPU capped by GOMAXPROCS, so a containerized runner pinned to one
// core classifies as ci-1core even on a big host.
func EffectiveCores() int {
	cores := runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p < cores {
		cores = p
	}
	if cores < 1 {
		cores = 1
	}
	return cores
}

// Classify maps a core count onto a machine class.
func Classify(cores int) Class {
	if cores <= 1 {
		return ClassCI1Core
	}
	return ClassTypical
}

// Detect returns the machine class of the current host.
func Detect() Class { return Classify(EffectiveCores()) }

// Host identifies the measuring machine in a ledger entry, in the same
// shape the hand-written entries already use.
type Host struct {
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`
	CPU    string `json:"cpu"`
	Cores  int    `json:"cores"`
}

// DetectHost describes the current host: GOOS/GOARCH, the CPU model from
// /proc/cpuinfo when readable (matching `go test -bench`'s cpu: line), and
// the effective core count.
func DetectHost() Host {
	return Host{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		CPU:    cpuModel(),
		Cores:  EffectiveCores(),
	}
}

// cpuModel reads the first "model name" from /proc/cpuinfo; "unknown" on
// platforms without one.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, value, ok := strings.Cut(sc.Text(), ":")
		if ok && strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(value)
		}
	}
	return "unknown"
}
