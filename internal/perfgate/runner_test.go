package perfgate

import (
	"math"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := map[int]Class{0: ClassCI1Core, 1: ClassCI1Core, 2: ClassTypical, 64: ClassTypical}
	for cores, want := range cases {
		if got := Classify(cores); got != want {
			t.Errorf("Classify(%d) = %s, want %s", cores, got, want)
		}
	}
	if c := Detect(); !ValidClass(c) {
		t.Errorf("Detect() = %q, not a known class", c)
	}
	h := DetectHost()
	if h.Goos == "" || h.Goarch == "" || h.CPU == "" || h.Cores < 1 {
		t.Errorf("DetectHost() = %+v, want every field populated", h)
	}
}

func TestMedianAndNoise(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %g, want 2", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %g, want 2.5", m)
	}
	if n := noisePct([]float64{100}); n != 0 {
		t.Errorf("single-sample noise = %g, want 0", n)
	}
	if n := noisePct([]float64{100, 100, 100}); n != 0 {
		t.Errorf("flat noise = %g, want 0", n)
	}
	// {90, 100, 110}: MAD = 10, so noise = 1.4826 * 10 / 100 = 14.8%.
	if n := noisePct([]float64{90, 100, 110}); math.Abs(n-14.826) > 1e-9 {
		t.Errorf("noise = %g, want 14.826", n)
	}
	// One wild outlier widens but does not dominate the band: the MAD of
	// {100, 100, 100, 1000} is 0.
	if n := noisePct([]float64{100, 100, 100, 1000}); n != 0 {
		t.Errorf("outlier noise = %g, want 0 (robust to one wild trial)", n)
	}
}

// medianMetrics handles metrics that only some trials report (a workload
// may skip a ReportMetric when a denominator is zero).
func TestMedianMetricsPartial(t *testing.T) {
	med := medianMetrics([]Measurement{
		{"ns_per_op": 100, "speedup": 2},
		{"ns_per_op": 110},
		{"ns_per_op": 90, "speedup": 4},
	})
	if med["ns_per_op"] != 100 {
		t.Errorf("ns_per_op median %g, want 100", med["ns_per_op"])
	}
	if med["speedup"] != 3 {
		t.Errorf("speedup median %g, want 3 (over the two reporting trials)", med["speedup"])
	}
}

// RunCase end-to-end on the cheapest registered workload: fixed iteration
// count, trials measured, the always-on metrics present, and an unknown
// workload surfacing as an error.
func TestRunCaseEndToEnd(t *testing.T) {
	one := 1
	c := &Case{
		Name: "e2e", Workload: "kernel-churn", Benchtime: "200x",
		Warmup: &one, Trials: 3, TolerancePct: 20,
		Goals: map[Class]Goals{ClassCI1Core: {}},
	}
	run, err := RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if run.Iters != 200 {
		t.Errorf("iters %d, want the fixed 200", run.Iters)
	}
	if len(run.Trials) != 3 {
		t.Errorf("%d trials, want 3", len(run.Trials))
	}
	for _, k := range []string{"ns_per_op", "b_per_op", "allocs_per_op"} {
		if _, ok := run.Median[k]; !ok {
			t.Errorf("median missing always-measured metric %s", k)
		}
	}
	if run.Median["ns_per_op"] <= 0 {
		t.Errorf("ns_per_op %g, want > 0", run.Median["ns_per_op"])
	}

	c.Workload = "no-such-workload"
	if _, err := RunCase(c); err == nil {
		t.Fatal("unknown workload ran")
	}
}

// A duration benchtime calibrates to enough iterations that one trial
// meets the target.
func TestRunCaseCalibrates(t *testing.T) {
	zero := 0
	c := &Case{
		Name: "calibrated", Workload: "kernel-churn", Benchtime: "20ms",
		Warmup: &zero, Trials: 2, TolerancePct: 20,
		Goals: map[Class]Goals{ClassCI1Core: {}},
	}
	run, err := RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if run.Iters < 2 {
		t.Fatalf("calibrated to %d iters; a ~30ns/op workload needs far more to fill 20ms", run.Iters)
	}
	if got := time.Duration(run.Median["ns_per_op"] * float64(run.Iters)); got < 10*time.Millisecond {
		t.Errorf("calibrated trial ran %v, want >= ~20ms target", got)
	}
}
