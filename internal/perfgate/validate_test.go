package perfgate

import (
	"strings"
	"testing"
)

// The repo's real ledgers must validate: this is the executable version of
// the schema at perf/ledger.schema.json, run against every BENCH_*.json in
// the repo root.
func TestValidateRepoLedgers(t *testing.T) {
	paths, err := LedgerFiles("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_*.json in the repo root; the ledger should exist")
	}
	for _, p := range paths {
		if err := ValidateLedgerFile(p); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestValidateLedgerFindings(t *testing.T) {
	valid := `[
	  {
	    "date": "2026-08-05",
	    "benchmark": "kernel-hot-path",
	    "host": {"goos": "linux", "goarch": "amd64", "cpu": "test", "cores": 1},
	    "results": {"BenchmarkKernelEventChurn": {"before": {"ns_per_op": 113.8}, "after": {"ns_per_op": 45.3}}},
	    "note": "legacy before/after nesting is allowed"
	  }
	]`
	if err := ValidateLedger([]byte(valid)); err != nil {
		t.Fatalf("valid legacy ledger rejected: %v", err)
	}

	cases := []struct {
		name, ledger, want string
	}{
		{
			"not an array",
			`{"date": "2026-08-05"}`,
			"not a JSON array",
		},
		{
			"top-level metric",
			`[{"date": "2026-08-05", "benchmark": "x", "speedup": 1.5,
			  "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}, "results": {"n": 1}}]`,
			`unknown field "speedup"`,
		},
		{
			"bad date",
			`[{"date": "Aug 5", "benchmark": "x",
			  "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}, "results": {"n": 1}}]`,
			"not YYYY-MM-DD",
		},
		{
			"missing results",
			`[{"date": "2026-08-05", "benchmark": "x",
			  "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}}]`,
			`missing required field "results"`,
		},
		{
			"host missing cores",
			`[{"date": "2026-08-05", "benchmark": "x",
			  "host": {"goos": "l", "goarch": "a", "cpu": "c"}, "results": {"n": 1}}]`,
			`host: missing "cores"`,
		},
		{
			"non-numeric result",
			`[{"date": "2026-08-05", "benchmark": "x",
			  "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}, "results": {"n": "fast"}}]`,
			"must be a number or an object of numbers",
		},
		{
			"results nested too deep",
			`[{"date": "2026-08-05", "benchmark": "x",
			  "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1},
			  "results": {"a": {"b": {"c": {"d": 1}}}}}]`,
			"nest deeper",
		},
		{
			"bad status",
			`[{"date": "2026-08-05", "benchmark": "x", "status": "ok",
			  "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}, "results": {"n": 1}}]`,
			"not pass|fail",
		},
		{
			"bad machine class",
			`[{"date": "2026-08-05", "benchmark": "x", "machine_class": "mainframe",
			  "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}, "results": {"n": 1}}]`,
			"machine_class",
		},
		{
			"perfgate entry missing structured fields",
			`[{"date": "2026-08-05", "benchmark": "perfgate",
			  "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}, "results": {"n": 1}}]`,
			`perfgate entry missing "case"`,
		},
		{
			"fractional trials",
			`[{"date": "2026-08-05", "benchmark": "x", "trials": 2.5,
			  "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}, "results": {"n": 1}}]`,
			"trials must be a positive integer",
		},
	}
	for _, tc := range cases {
		err := ValidateLedger([]byte(tc.ledger))
		if err == nil {
			t.Errorf("%s: validated, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// Every finding is reported, not just the first.
func TestValidateLedgerJoinsFindings(t *testing.T) {
	ledger := `[
	  {"date": "bad", "benchmark": "x", "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}, "results": {"n": 1}},
	  {"date": "2026-08-05", "benchmark": "", "host": {"goos": "l", "goarch": "a", "cpu": "c", "cores": 1}, "results": {"n": 1}}
	]`
	err := ValidateLedger([]byte(ledger))
	if err == nil {
		t.Fatal("two bad entries validated")
	}
	for _, want := range []string{"entry 0", "entry 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}
