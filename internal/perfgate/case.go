package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Goals are the explicit targets a case declares for one machine class.
// Every field is a pointer: nil means "not declared", so a zero limit
// (max_allocs_per_op: 0) is expressible. Max* goals bound lower-is-better
// metrics, Min* goals floor higher-is-better ones; each names the
// measurement metric it checks (see Evaluate).
type Goals struct {
	MaxNsPerOp     *float64 `json:"max_ns_per_op,omitempty"`
	MaxAllocsPerOp *float64 `json:"max_allocs_per_op,omitempty"`
	MaxBPerOp      *float64 `json:"max_b_per_op,omitempty"`
	MaxPeakBytes   *float64 `json:"max_peak_bytes,omitempty"`
	MinSpeedup     *float64 `json:"min_speedup,omitempty"`
	MaxP95Ms       *float64 `json:"max_p95_ms,omitempty"`
	MinJobsPerSec  *float64 `json:"min_jobs_per_sec,omitempty"`
}

// goalSpec binds one Goals field to the metric it checks and its
// direction.
type goalSpec struct {
	name   string // the JSON field name, used in reports
	metric string // the Measurement metric it checks
	min    bool   // true: value must be >= limit; false: <= limit
	limit  func(g Goals) *float64
}

var goalSpecs = []goalSpec{
	{"max_ns_per_op", "ns_per_op", false, func(g Goals) *float64 { return g.MaxNsPerOp }},
	{"max_allocs_per_op", "allocs_per_op", false, func(g Goals) *float64 { return g.MaxAllocsPerOp }},
	{"max_b_per_op", "b_per_op", false, func(g Goals) *float64 { return g.MaxBPerOp }},
	{"max_peak_bytes", "peak_bytes", false, func(g Goals) *float64 { return g.MaxPeakBytes }},
	{"min_speedup", "speedup", true, func(g Goals) *float64 { return g.MinSpeedup }},
	{"max_p95_ms", "p95_ms", false, func(g Goals) *float64 { return g.MaxP95Ms }},
	{"min_jobs_per_sec", "jobs_per_sec", true, func(g Goals) *float64 { return g.MinJobsPerSec }},
}

// GoalCheck is the outcome of one declared goal against one measurement.
type GoalCheck struct {
	Goal   string  // JSON field name, e.g. "max_allocs_per_op"
	Metric string  // measured metric it checked
	Limit  float64 // declared bound
	Value  float64 // measured median
	OK     bool
	// Missing is set when the workload did not report the metric the
	// goal checks — a case-file bug, never a pass.
	Missing bool
}

func (c GoalCheck) String() string {
	op := "<="
	for _, s := range goalSpecs {
		if s.name == c.Goal && s.min {
			op = ">="
		}
	}
	if c.Missing {
		return fmt.Sprintf("%s=%g: metric %s not reported by workload", c.Goal, c.Limit, c.Metric)
	}
	return fmt.Sprintf("%s: %s=%g want %s %g", c.Goal, c.Metric, c.Value, op, c.Limit)
}

// Evaluate checks every declared goal against a flat metric map and
// returns one GoalCheck per declared goal.
func (g Goals) Evaluate(metrics map[string]float64) []GoalCheck {
	var checks []GoalCheck
	for _, s := range goalSpecs {
		limit := s.limit(g)
		if limit == nil {
			continue
		}
		v, ok := metrics[s.metric]
		check := GoalCheck{Goal: s.name, Metric: s.metric, Limit: *limit, Value: v, Missing: !ok}
		if ok {
			if s.min {
				check.OK = v >= *limit
			} else {
				check.OK = v <= *limit
			}
		}
		checks = append(checks, check)
	}
	return checks
}

// declared reports whether any goal field is set.
func (g Goals) declared() bool {
	for _, s := range goalSpecs {
		if s.limit(g) != nil {
			return true
		}
	}
	return false
}

// Case is one declarative performance check, loaded from a
// perf/cases/*.json file.
type Case struct {
	// Name is the case's ledger identity; baselines match on it, so it
	// must be stable across commits. Defaults to the filename stem.
	Name string `json:"name"`
	// Group batches cases for scripts/bench.sh delegation ("kernel",
	// "fork", "arrivals", "serve", "sweep").
	Group string `json:"group"`
	// Description is carried verbatim into ledger entries.
	Description string `json:"description"`
	// Workload names the registered body in perfgate/workloads.
	Workload string `json:"workload"`
	// Benchtime is either a duration ("100ms") — the harness grows the
	// iteration count until one trial runs at least that long — or a
	// fixed iteration count ("3x") for workloads whose cost is large and
	// known. Default "100ms".
	Benchtime string `json:"benchtime,omitempty"`
	// Warmup is the number of discarded leading trials (default 1);
	// Trials the number of measured ones (default 3, median taken).
	Warmup *int `json:"warmup,omitempty"`
	Trials int  `json:"trials,omitempty"`
	// TolerancePct is the regression tolerance against the ledger
	// baseline: the run fails only when a metric moves against its
	// direction by more than max(TolerancePct, measured noise). Default
	// 20 — shared CI hosts are loud.
	TolerancePct float64 `json:"tolerance_pct,omitempty"`
	// Goals declares targets per machine class. Goals for the detected
	// class enforce (a miss fails the gate); goals for other classes are
	// advisory — reported as unattested, never failed — because this
	// host cannot measure them honestly.
	Goals map[Class]Goals `json:"goals"`
}

func (c *Case) withDefaults() {
	if c.Benchtime == "" {
		c.Benchtime = "100ms"
	}
	if c.Warmup == nil {
		one := 1
		c.Warmup = &one
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.TolerancePct == 0 {
		c.TolerancePct = 20
	}
}

func (c *Case) validate() error {
	if c.Name == "" {
		return fmt.Errorf("case has no name")
	}
	if c.Workload == "" {
		return fmt.Errorf("case %s: no workload", c.Name)
	}
	if _, _, err := ParseBenchtime(c.Benchtime); err != nil {
		return fmt.Errorf("case %s: %w", c.Name, err)
	}
	if *c.Warmup < 0 {
		return fmt.Errorf("case %s: negative warmup %d", c.Name, *c.Warmup)
	}
	if c.Trials < 1 {
		return fmt.Errorf("case %s: trials %d < 1", c.Name, c.Trials)
	}
	if c.TolerancePct < 0 {
		return fmt.Errorf("case %s: negative tolerance_pct %g", c.Name, c.TolerancePct)
	}
	if len(c.Goals) == 0 {
		return fmt.Errorf("case %s: no goals for any machine class", c.Name)
	}
	for class, g := range c.Goals {
		if !ValidClass(class) {
			return fmt.Errorf("case %s: unknown machine class %q (known: %v)", c.Name, class, KnownClasses())
		}
		if !g.declared() {
			return fmt.Errorf("case %s: class %s declares no goals", c.Name, class)
		}
	}
	return nil
}

// ParseBenchtime parses a case benchtime: "Nx" fixes the iteration count,
// anything else must be a positive Go duration the harness scales trials
// to.
func ParseBenchtime(s string) (iters int, d time.Duration, err error) {
	if n, ok := strings.CutSuffix(s, "x"); ok {
		if _, err := fmt.Sscanf(n, "%d", &iters); err != nil || iters < 1 {
			return 0, 0, fmt.Errorf("invalid benchtime %q", s)
		}
		return iters, 0, nil
	}
	d, err = time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("invalid benchtime %q", s)
	}
	return 0, d, nil
}

// LoadCases reads every *.json case under dir, sorted by filename, with
// unknown fields rejected — a typoed "tolernace_pct" must not silently
// mean the default.
func LoadCases(dir string) ([]*Case, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("perfgate: no case files under %s", dir)
	}
	sort.Strings(paths)
	seen := map[string]string{}
	var cases []*Case
	for _, p := range paths {
		c, err := LoadCase(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[c.Name]; dup {
			return nil, fmt.Errorf("%s: case %q already defined in %s", p, c.Name, prev)
		}
		seen[c.Name] = p
		cases = append(cases, c)
	}
	return cases, nil
}

// LoadCase reads and validates one case file. A missing name defaults to
// the filename stem.
func LoadCase(path string) (*Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var c Case
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%s: trailing data after case object", path)
	}
	if c.Name == "" {
		c.Name = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &c, nil
}
