package perfgate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Entry is one BENCH_*.json ledger record. The hand-written entries use
// the date/benchmark/description/host/results/note subset; perfgate
// appends the structured superset (case, machine_class, trials, noise
// band, baseline comparison, goal outcomes). Results stays a loose map
// because legacy entries nest before/after objects under it.
type Entry struct {
	Date         string         `json:"date"`
	Benchmark    string         `json:"benchmark"`
	Case         string         `json:"case,omitempty"`
	MachineClass string         `json:"machine_class,omitempty"`
	Description  string         `json:"description,omitempty"`
	Host         Host           `json:"host"`
	Iters        int            `json:"iters,omitempty"`
	Trials       int            `json:"trials,omitempty"`
	NoisePct     float64        `json:"noise_pct,omitempty"`
	Results      map[string]any `json:"results"`
	Baseline     map[string]any `json:"baseline,omitempty"`
	Goals        []string       `json:"goals,omitempty"`
	Status       string         `json:"status,omitempty"`
	Verdict      string         `json:"verdict,omitempty"`
	Note         string         `json:"note,omitempty"`
}

// Metrics extracts the flat numeric results of an entry (nested legacy
// before/after objects are skipped — they are history, not baselines).
func (e *Entry) Metrics() map[string]float64 {
	m := map[string]float64{}
	for k, v := range e.Results {
		if f, ok := v.(float64); ok {
			m[k] = f
		}
	}
	return m
}

// LedgerFiles lists the BENCH_*.json files under dir in lexicographic
// order — which, with BENCH_YYYY-MM-DD.json names, is date order. File
// mtime is deliberately not consulted: a git checkout resets mtimes and
// must not change which ledger a run appends to or reads baselines from.
func LedgerFiles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// LedgerFileFor names the ledger file a run dated date appends to:
// BENCH_<date>.json, created when the newest existing ledger is from a
// prior date. Earlier files are never appended to again, so a past
// ledger's bytes are immutable once its date has passed.
func LedgerFileFor(dir, date string) string {
	return filepath.Join(dir, "BENCH_"+date+".json")
}

// ReadLedger reads every ledger entry under dir, oldest file first,
// preserving in-file order; later entries are newer, so a baseline search
// scans backwards.
func ReadLedger(dir string) ([]Entry, error) {
	paths, err := LedgerFiles(dir)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var es []Entry
		if err := json.Unmarshal(data, &es); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		entries = append(entries, es...)
	}
	return entries, nil
}

// FindBaseline returns the newest perfgate entry for the same case and
// machine class, or nil: numbers measured on a different machine class
// are not baselines, they are a different experiment.
func FindBaseline(entries []Entry, caseName string, class Class) *Entry {
	for i := len(entries) - 1; i >= 0; i-- {
		e := &entries[i]
		if e.Benchmark == "perfgate" && e.Case == caseName && e.MachineClass == string(class) {
			return e
		}
	}
	return nil
}

// AppendEntries appends entries to BENCH_<date>.json under dir, creating
// the file when the newest ledger predates it. Existing records are
// preserved byte-for-byte up to re-indentation; the write is atomic
// (temp file + rename) so a crash mid-append cannot tear the ledger.
func AppendEntries(dir, date string, entries []Entry) (string, error) {
	path := LedgerFileFor(dir, date)
	var raws []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &raws); err != nil {
			return "", fmt.Errorf("%s: existing ledger unreadable: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return "", err
	}
	for _, e := range entries {
		raw, err := json.Marshal(e)
		if err != nil {
			return "", err
		}
		raws = append(raws, raw)
	}
	var buf bytes.Buffer
	buf.WriteString("[\n")
	for i, raw := range raws {
		buf.WriteString("  ")
		var one bytes.Buffer
		if err := json.Indent(&one, raw, "  ", "  "); err != nil {
			return "", err
		}
		buf.Write(one.Bytes())
		if i < len(raws)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("]\n")
	tmp, err := os.CreateTemp(dir, ".bench-*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// EntryFor assembles the structured ledger record for a measured run and
// its comparison against the baseline.
func EntryFor(date string, run *CaseRun, cmp *RunComparison, checks []GoalCheck, enforced bool) Entry {
	results := map[string]any{}
	for k, v := range run.Median {
		results[k] = jsonNumber(v)
	}
	e := Entry{
		Date:         date,
		Benchmark:    "perfgate",
		Case:         run.Case.Name,
		MachineClass: string(run.Class),
		Description:  run.Case.Description,
		Host:         run.Host,
		Iters:        run.Iters,
		Trials:       len(run.Trials),
		NoisePct:     roundTo(run.NoisePct, 2),
		Results:      results,
		Status:       "pass",
		Verdict:      string(cmp.Verdict),
	}
	if cmp.Baseline != nil {
		base := map[string]any{"date": cmp.Baseline.Date}
		for k, v := range cmp.Baseline.Metrics() {
			base[k] = jsonNumber(v)
		}
		e.Baseline = base
	}
	for _, c := range checks {
		tag := "ok"
		switch {
		case c.Missing || !c.OK:
			tag = "fail"
		}
		if !enforced {
			tag += " advisory"
		}
		e.Goals = append(e.Goals, fmt.Sprintf("%s [%s]", c, tag))
	}
	if cmp.Verdict == VerdictRegression || (enforced && failedChecks(checks) != nil) {
		e.Status = "fail"
	}
	return e
}

// failedChecks filters the goal checks that missed.
func failedChecks(checks []GoalCheck) []GoalCheck {
	var out []GoalCheck
	for _, c := range checks {
		if c.Missing || !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// jsonNumber rounds a metric for the ledger: integers stay integral,
// fractions keep two decimals — matching the hand-written entries' style.
func jsonNumber(v float64) any {
	if v == float64(int64(v)) {
		return int64(v)
	}
	return roundTo(v, 2)
}

func roundTo(v float64, places int) float64 {
	scale := 1.0
	for i := 0; i < places; i++ {
		scale *= 10
	}
	r := v * scale
	if r >= 0 {
		r += 0.5
	} else {
		r -= 0.5
	}
	return float64(int64(r)) / scale
}

// FormatEntryLine renders one human line for the runner's report.
func FormatEntryLine(e Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s [%s]", strings.ToUpper(e.Status), e.Case, e.MachineClass)
	keys := make([]string, 0, len(e.Results))
	for k := range e.Results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, e.Results[k])
	}
	fmt.Fprintf(&b, " (%d trials x %d iters, noise %.1f%%) vs baseline: %s", e.Trials, e.Iters, e.NoisePct, e.Verdict)
	return b.String()
}
