package perfgate

import (
	"math"
	"testing"
)

// testRun builds a minimal CaseRun for comparator tests.
func testRun(tolerancePct, noisePct float64, median Measurement) *CaseRun {
	c := &Case{Name: "synthetic", Workload: "synthetic", TolerancePct: tolerancePct}
	return &CaseRun{Case: c, Class: ClassCI1Core, Median: median, NoisePct: noisePct}
}

// testBaseline builds a perfgate ledger entry usable as a baseline.
func testBaseline(noisePct float64, results map[string]float64) *Entry {
	res := map[string]any{}
	for k, v := range results {
		res[k] = v
	}
	return &Entry{
		Date: "2026-08-01", Benchmark: "perfgate", Case: "synthetic",
		MachineClass: string(ClassCI1Core), NoisePct: noisePct, Results: res,
	}
}

func TestCompareNoBaseline(t *testing.T) {
	cmp := Compare(testRun(20, 0, Measurement{"ns_per_op": 100}), nil)
	if cmp.Verdict != VerdictNoBaseline {
		t.Fatalf("verdict %q, want %q", cmp.Verdict, VerdictNoBaseline)
	}
	if len(cmp.Deltas) != 0 {
		t.Fatalf("no-baseline comparison produced deltas: %v", cmp.Deltas)
	}
}

func TestCompareWithinNoise(t *testing.T) {
	run := testRun(20, 0, Measurement{"ns_per_op": 110})
	cmp := Compare(run, testBaseline(0, map[string]float64{"ns_per_op": 100}))
	if cmp.Verdict != VerdictWithinNoise {
		t.Fatalf("verdict %q, want %q (+10%% inside a 20%% band)", cmp.Verdict, VerdictWithinNoise)
	}
}

func TestCompareRegression(t *testing.T) {
	run := testRun(20, 0, Measurement{"ns_per_op": 130})
	cmp := Compare(run, testBaseline(0, map[string]float64{"ns_per_op": 100}))
	if cmp.Verdict != VerdictRegression {
		t.Fatalf("verdict %q, want %q (+30%% past a 20%% band)", cmp.Verdict, VerdictRegression)
	}
	if len(cmp.Deltas) != 1 || cmp.Deltas[0].Verdict != VerdictRegression {
		t.Fatalf("deltas %v, want one regression", cmp.Deltas)
	}
	if got := cmp.Deltas[0].DeltaPct; math.Abs(got-30) > 1e-9 {
		t.Fatalf("delta %.2f%%, want +30%%", got)
	}
}

func TestCompareImprovement(t *testing.T) {
	run := testRun(20, 0, Measurement{"ns_per_op": 60})
	cmp := Compare(run, testBaseline(0, map[string]float64{"ns_per_op": 100}))
	if cmp.Verdict != VerdictImprovement {
		t.Fatalf("verdict %q, want %q (-40%% past a 20%% band)", cmp.Verdict, VerdictImprovement)
	}
}

// A regression on one metric outweighs an improvement on another.
func TestCompareRegressionDominates(t *testing.T) {
	run := testRun(20, 0, Measurement{"ns_per_op": 130, "allocs_per_op": 10})
	cmp := Compare(run, testBaseline(0, map[string]float64{"ns_per_op": 100, "allocs_per_op": 100}))
	if cmp.Verdict != VerdictRegression {
		t.Fatalf("verdict %q, want %q", cmp.Verdict, VerdictRegression)
	}
}

// Higher-is-better metrics regress downward: a speedup drop past the band
// is a regression even though the number got smaller.
func TestCompareDirectionHigherBetter(t *testing.T) {
	run := testRun(20, 0, Measurement{"speedup": 4.0})
	cmp := Compare(run, testBaseline(0, map[string]float64{"speedup": 6.0}))
	if cmp.Verdict != VerdictRegression {
		t.Fatalf("verdict %q, want %q (speedup 6 -> 4)", cmp.Verdict, VerdictRegression)
	}

	run = testRun(20, 0, Measurement{"jobs_per_sec": 80000})
	cmp = Compare(run, testBaseline(0, map[string]float64{"jobs_per_sec": 50000}))
	if cmp.Verdict != VerdictImprovement {
		t.Fatalf("verdict %q, want %q (jobs_per_sec 50k -> 80k)", cmp.Verdict, VerdictImprovement)
	}
}

// The band widens to the noisier of the two runs: a +30% delta is noise
// when either side measured 35% trial spread.
func TestCompareNoiseWidensBand(t *testing.T) {
	base := testBaseline(0, map[string]float64{"ns_per_op": 100})
	run := testRun(20, 35, Measurement{"ns_per_op": 130})
	if cmp := Compare(run, base); cmp.Verdict != VerdictWithinNoise {
		t.Fatalf("run noise 35%%: verdict %q, want %q", cmp.Verdict, VerdictWithinNoise)
	}

	noisyBase := testBaseline(35, map[string]float64{"ns_per_op": 100})
	run = testRun(20, 0, Measurement{"ns_per_op": 130})
	cmp := Compare(run, noisyBase)
	if cmp.Verdict != VerdictWithinNoise {
		t.Fatalf("baseline noise 35%%: verdict %q, want %q", cmp.Verdict, VerdictWithinNoise)
	}
	if cmp.ThresholdPct != 35 {
		t.Fatalf("threshold %.1f%%, want 35%% (max of tolerance and noise)", cmp.ThresholdPct)
	}
}

// A delta exactly at the threshold is not a regression; just past it is.
func TestCompareToleranceEdge(t *testing.T) {
	base := testBaseline(0, map[string]float64{"ns_per_op": 100})
	if cmp := Compare(testRun(20, 0, Measurement{"ns_per_op": 120}), base); cmp.Verdict != VerdictWithinNoise {
		t.Fatalf("exactly +20%%: verdict %q, want %q", cmp.Verdict, VerdictWithinNoise)
	}
	if cmp := Compare(testRun(20, 0, Measurement{"ns_per_op": 120.5}), base); cmp.Verdict != VerdictRegression {
		t.Fatalf("+20.5%%: verdict %q, want %q", cmp.Verdict, VerdictRegression)
	}
}

// A zero baseline (0 allocs/op) has no relative delta: staying at zero or
// jittering under the absolute floor is noise, clearly leaving zero is an
// infinite regression.
func TestCompareZeroBaseline(t *testing.T) {
	base := testBaseline(0, map[string]float64{"allocs_per_op": 0})
	if cmp := Compare(testRun(20, 0, Measurement{"allocs_per_op": 0}), base); cmp.Verdict != VerdictWithinNoise {
		t.Fatalf("0 -> 0: verdict %q, want %q", cmp.Verdict, VerdictWithinNoise)
	}
	if cmp := Compare(testRun(20, 0, Measurement{"allocs_per_op": 0.4}), base); cmp.Verdict != VerdictWithinNoise {
		t.Fatalf("0 -> 0.4 (under the floor): verdict %q, want %q", cmp.Verdict, VerdictWithinNoise)
	}
	cmp := Compare(testRun(20, 0, Measurement{"allocs_per_op": 2}), base)
	if cmp.Verdict != VerdictRegression {
		t.Fatalf("0 -> 2: verdict %q, want %q", cmp.Verdict, VerdictRegression)
	}
	if !math.IsInf(cmp.Deltas[0].DeltaPct, 1) {
		t.Fatalf("zero-baseline regression delta %v, want +Inf", cmp.Deltas[0].DeltaPct)
	}
}

// Context metrics (workers) and metrics absent from the baseline are
// recorded but never compared.
func TestCompareSkipsContextAndUnsharedMetrics(t *testing.T) {
	run := testRun(20, 0, Measurement{"ns_per_op": 100, "workers": 8, "p95_ms": 3})
	cmp := Compare(run, testBaseline(0, map[string]float64{"ns_per_op": 100, "workers": 1}))
	if len(cmp.Deltas) != 1 || cmp.Deltas[0].Metric != "ns_per_op" {
		t.Fatalf("deltas %v, want ns_per_op only (workers is context, p95_ms unshared)", cmp.Deltas)
	}
}
