package perfgate

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"regexp"
)

// ValidateLedgerFile validates one BENCH_*.json file against the ledger
// schema (the normative JSON Schema lives at perf/ledger.schema.json;
// this validator mirrors it in Go so the gate needs no external tooling).
func ValidateLedgerFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := ValidateLedger(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// ValidateLedgerDir validates every BENCH_*.json under dir.
func ValidateLedgerDir(dir string) error {
	paths, err := LedgerFiles(dir)
	if err != nil {
		return err
	}
	var errs []error
	for _, p := range paths {
		errs = append(errs, ValidateLedgerFile(p))
	}
	return errors.Join(errs...)
}

var datePattern = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)

// entryKeys is the closed set of ledger entry fields. An unknown key is
// an error: the ledger is machine-appended, and a field the tooling does
// not know is either a typo or a metric that belongs under "results".
var entryKeys = map[string]bool{
	"date": true, "benchmark": true, "case": true, "machine_class": true,
	"description": true, "host": true, "iters": true, "trials": true,
	"noise_pct": true, "results": true, "baseline": true, "goals": true,
	"status": true, "verdict": true, "note": true,
}

var statusValues = map[string]bool{"pass": true, "fail": true}

var verdictValues = map[string]bool{
	string(VerdictRegression): true, string(VerdictImprovement): true,
	string(VerdictWithinNoise): true, string(VerdictNoBaseline): true,
}

// ValidateLedger validates raw ledger bytes: a JSON array of entry
// objects, each with a dated, host-attributed, numeric results block, and
// the perfgate structured fields when present. All findings are returned
// joined, not just the first.
func ValidateLedger(data []byte) error {
	var raw []map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("ledger is not a JSON array of objects: %w", err)
	}
	var errs []error
	for i, obj := range raw {
		for _, err := range validateEntry(obj) {
			errs = append(errs, fmt.Errorf("entry %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

func validateEntry(obj map[string]json.RawMessage) []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	for k := range obj {
		if !entryKeys[k] {
			fail("unknown field %q (metrics belong under \"results\")", k)
		}
	}
	for _, req := range []string{"date", "benchmark", "host", "results"} {
		if _, ok := obj[req]; !ok {
			fail("missing required field %q", req)
		}
	}
	if s, ok := decodeString(obj, "date", fail); ok && !datePattern.MatchString(s) {
		fail("date %q is not YYYY-MM-DD", s)
	}
	benchmark, benchOK := decodeString(obj, "benchmark", fail)
	if benchOK && benchmark == "" {
		fail("benchmark must be non-empty")
	}
	for _, k := range []string{"description", "note", "case"} {
		decodeString(obj, k, fail)
	}
	if s, ok := decodeString(obj, "machine_class", fail); ok && !ValidClass(Class(s)) {
		fail("machine_class %q is not a known class %v", s, KnownClasses())
	}
	if s, ok := decodeString(obj, "status", fail); ok && !statusValues[s] {
		fail("status %q is not pass|fail", s)
	}
	if s, ok := decodeString(obj, "verdict", fail); ok && !verdictValues[s] {
		fail("verdict %q is not a comparison verdict", s)
	}
	for _, k := range []string{"iters", "trials"} {
		if raw, ok := obj[k]; ok {
			var n float64
			if err := json.Unmarshal(raw, &n); err != nil || n != math.Trunc(n) || n < 1 {
				fail("%s must be a positive integer, got %s", k, raw)
			}
		}
	}
	if raw, ok := obj["noise_pct"]; ok {
		var n float64
		if err := json.Unmarshal(raw, &n); err != nil || n < 0 {
			fail("noise_pct must be a non-negative number, got %s", raw)
		}
	}
	if raw, ok := obj["host"]; ok {
		validateHost(raw, fail)
	}
	if raw, ok := obj["results"]; ok {
		var res map[string]json.RawMessage
		if err := json.Unmarshal(raw, &res); err != nil {
			fail("results is not an object: %v", err)
		} else if len(res) == 0 {
			fail("results is empty")
		} else {
			for k, v := range res {
				validateResultValue("results."+k, v, 0, fail)
			}
		}
	}
	if raw, ok := obj["baseline"]; ok {
		validateBaseline(raw, fail)
	}
	if raw, ok := obj["goals"]; ok {
		var goals []string
		if err := json.Unmarshal(raw, &goals); err != nil {
			fail("goals is not an array of strings: %v", err)
		}
	}
	if benchmark == "perfgate" {
		for _, req := range []string{"case", "machine_class", "trials", "status", "verdict"} {
			if _, ok := obj[req]; !ok {
				fail("perfgate entry missing %q", req)
			}
		}
	}
	return errs
}

func decodeString(obj map[string]json.RawMessage, key string, fail func(string, ...any)) (string, bool) {
	raw, ok := obj[key]
	if !ok {
		return "", false
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		fail("%s is not a string: %v", key, err)
		return "", false
	}
	return s, true
}

func validateHost(raw json.RawMessage, fail func(string, ...any)) {
	var host map[string]json.RawMessage
	if err := json.Unmarshal(raw, &host); err != nil {
		fail("host is not an object: %v", err)
		return
	}
	hostKeys := map[string]bool{"goos": true, "goarch": true, "cpu": true, "cores": true}
	for k := range host {
		if !hostKeys[k] {
			fail("host: unknown field %q", k)
		}
	}
	for _, k := range []string{"goos", "goarch", "cpu"} {
		raw, ok := host[k]
		if !ok {
			fail("host: missing %q", k)
			continue
		}
		var s string
		if err := json.Unmarshal(raw, &s); err != nil || s == "" {
			fail("host.%s must be a non-empty string, got %s", k, raw)
		}
	}
	if raw, ok := host["cores"]; !ok {
		fail("host: missing \"cores\"")
	} else {
		var n float64
		if err := json.Unmarshal(raw, &n); err != nil || n != math.Trunc(n) || n < 1 {
			fail("host.cores must be a positive integer, got %s", raw)
		}
	}
}

// validateResultValue accepts a finite number or an object of such values
// (one level of nesting covers the legacy before/after records; deeper
// nesting is almost certainly a paste error).
func validateResultValue(path string, raw json.RawMessage, depth int, fail func(string, ...any)) {
	var n float64
	if err := json.Unmarshal(raw, &n); err == nil {
		if math.IsInf(n, 0) || math.IsNaN(n) {
			fail("%s is not finite", path)
		}
		return
	}
	if depth >= 2 {
		fail("%s: results nest deeper than before/after objects", path)
		return
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		fail("%s must be a number or an object of numbers, got %s", path, raw)
		return
	}
	for k, v := range obj {
		validateResultValue(path+"."+k, v, depth+1, fail)
	}
}

func validateBaseline(raw json.RawMessage, fail func(string, ...any)) {
	var base map[string]json.RawMessage
	if err := json.Unmarshal(raw, &base); err != nil {
		fail("baseline is not an object: %v", err)
		return
	}
	for k, v := range base {
		if k == "date" {
			var s string
			if err := json.Unmarshal(v, &s); err != nil || !datePattern.MatchString(s) {
				fail("baseline.date must be YYYY-MM-DD, got %s", v)
			}
			continue
		}
		var n float64
		if err := json.Unmarshal(v, &n); err != nil {
			fail("baseline.%s must be a number, got %s", k, v)
		}
	}
}
