package perfgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/perfgate/workloads"
)

func writeCase(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Every shipped case must load, name a registered workload, and use a
// known group — the go-test-time guarantee that `make perf-gate` cannot
// discover a broken case file first.
func TestRepoCasesLoadAndResolve(t *testing.T) {
	cases, err := LoadCases("../../perf/cases")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("no cases under perf/cases")
	}
	groups := map[string]bool{"kernel": true, "sweep": true, "fork": true, "arrivals": true, "serve": true}
	for _, c := range cases {
		if _, ok := workloads.Lookup(c.Workload); !ok {
			t.Errorf("case %s: workload %q not registered (have %v)", c.Name, c.Workload, workloads.Names())
		}
		if !groups[c.Group] {
			t.Errorf("case %s: group %q is not one scripts/bench.sh dispatches", c.Name, c.Group)
		}
	}
}

func TestLoadCaseDefaults(t *testing.T) {
	dir := t.TempDir()
	path := writeCase(t, dir, "churn.json", `{
	  "workload": "kernel-churn", "group": "kernel",
	  "goals": {"ci-1core": {"max_ns_per_op": 100}}
	}`)
	c, err := LoadCase(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "churn" {
		t.Errorf("name %q, want filename stem \"churn\"", c.Name)
	}
	if c.Benchtime != "100ms" || *c.Warmup != 1 || c.Trials != 3 || c.TolerancePct != 20 {
		t.Errorf("defaults benchtime=%s warmup=%d trials=%d tol=%g, want 100ms/1/3/20",
			c.Benchtime, *c.Warmup, c.Trials, c.TolerancePct)
	}
}

func TestLoadCaseRejections(t *testing.T) {
	goals := `"goals": {"ci-1core": {"max_ns_per_op": 100}}`
	cases := []struct {
		name, content, want string
	}{
		{"unknown field", `{"workload": "w", "tolernace_pct": 5, ` + goals + `}`, "unknown field"},
		{"no workload", `{` + goals + `}`, "no workload"},
		{"no goals", `{"workload": "w"}`, "no goals"},
		{"empty class goals", `{"workload": "w", "goals": {"ci-1core": {}}}`, "declares no goals"},
		{"unknown class", `{"workload": "w", "goals": {"cray": {"max_ns_per_op": 1}}}`, "unknown machine class"},
		{"bad benchtime", `{"workload": "w", "benchtime": "fast", ` + goals + `}`, "invalid benchtime"},
		{"negative tolerance", `{"workload": "w", "tolerance_pct": -5, ` + goals + `}`, "negative tolerance_pct"},
	}
	for _, tc := range cases {
		path := writeCase(t, t.TempDir(), "case.json", tc.content)
		_, err := LoadCase(path)
		if err == nil {
			t.Errorf("%s: loaded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// Two case files claiming one name would make ledger baselines ambiguous.
func TestLoadCasesRejectsDuplicateNames(t *testing.T) {
	dir := t.TempDir()
	body := `{"name": "dup", "workload": "w", "goals": {"ci-1core": {"max_ns_per_op": 1}}}`
	writeCase(t, dir, "a.json", body)
	writeCase(t, dir, "b.json", body)
	if _, err := LoadCases(dir); err == nil || !strings.Contains(err.Error(), "already defined") {
		t.Fatalf("duplicate case names loaded: %v", err)
	}
}

func TestParseBenchtime(t *testing.T) {
	if iters, d, err := ParseBenchtime("5x"); err != nil || iters != 5 || d != 0 {
		t.Errorf("5x -> (%d, %v, %v), want (5, 0, nil)", iters, d, err)
	}
	if iters, d, err := ParseBenchtime("250ms"); err != nil || iters != 0 || d != 250*time.Millisecond {
		t.Errorf("250ms -> (%d, %v, %v), want (0, 250ms, nil)", iters, d, err)
	}
	for _, bad := range []string{"", "0x", "-1x", "x", "-3s", "fast"} {
		if _, _, err := ParseBenchtime(bad); err == nil {
			t.Errorf("ParseBenchtime(%q) accepted", bad)
		}
	}
}

func TestGoalsEvaluate(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	g := Goals{
		MaxNsPerOp:     f(100),
		MaxAllocsPerOp: f(0), // a zero limit must be expressible and enforced
		MinSpeedup:     f(2),
		MaxP95Ms:       f(10), // not reported by the workload below
	}
	checks := g.Evaluate(map[string]float64{
		"ns_per_op":     80,
		"allocs_per_op": 0.5,
		"speedup":       2.0,
	})
	byGoal := map[string]GoalCheck{}
	for _, c := range checks {
		byGoal[c.Goal] = c
	}
	if len(checks) != 4 {
		t.Fatalf("%d checks, want 4 (one per declared goal)", len(checks))
	}
	if c := byGoal["max_ns_per_op"]; !c.OK || c.Missing {
		t.Errorf("max_ns_per_op: %+v, want ok (80 <= 100)", c)
	}
	if c := byGoal["max_allocs_per_op"]; c.OK {
		t.Errorf("max_allocs_per_op: %+v, want miss (0.5 > 0)", c)
	}
	if c := byGoal["min_speedup"]; !c.OK {
		t.Errorf("min_speedup: %+v, want ok (2.0 >= 2, floors are inclusive)", c)
	}
	if c := byGoal["max_p95_ms"]; !c.Missing || c.OK {
		t.Errorf("max_p95_ms: %+v, want Missing (metric never reported, never a pass)", c)
	}
}
