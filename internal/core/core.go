// Package core is the public façade of the reproduction: one-call
// construction and execution of the paper's experiments. A Config names a
// machine shape, a scheduling policy, a workload and a software
// architecture; Run builds the full simulated system (kernel, 16-node
// machine, partition networks, scheduler hierarchy, batch) and returns the
// measured metrics.Result.
//
// Quickstart:
//
//	res, err := core.Run(core.Config{
//	    PartitionSize: 4,
//	    Topology:      topology.Mesh,
//	    Policy:        sched.TimeShared,
//	    App:           core.MatMul,
//	    Arch:          workload.Fixed,
//	})
//	fmt.Println(res.MeanResponse())
package core

import (
	"fmt"

	"repro/internal/arrival"
	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// AppKind selects the paper workload.
type AppKind int

const (
	// MatMul is the fork-and-join matrix multiplication (§4.1).
	MatMul AppKind = iota
	// Sort is the divide-and-conquer selection sort (§4.2).
	Sort
	// Stencil is the extension workload: iterative Jacobi relaxation with
	// per-sweep halo exchange — the communication-intensive counterpart.
	Stencil
)

func (a AppKind) String() string {
	switch a {
	case Sort:
		return "sort"
	case Stencil:
		return "stencil"
	default:
		return "matmul"
	}
}

// ParseApp parses "matmul", "sort" or "stencil".
func ParseApp(s string) (AppKind, error) {
	switch s {
	case "matmul", "mm":
		return MatMul, nil
	case "sort":
		return Sort, nil
	case "stencil", "jacobi":
		return Stencil, nil
	}
	return 0, fmt.Errorf("core: unknown app %q", s)
}

// Order is the submission order of the batch, which matters only to the
// static policy (run-to-completion).
type Order int

const (
	// Submission keeps the batch's interleaved order.
	Submission Order = iota
	// SmallestFirst is the static policy's best case.
	SmallestFirst
	// LargestFirst is the static policy's worst case.
	LargestFirst
)

func (o Order) String() string {
	switch o {
	case SmallestFirst:
		return "smallest-first"
	case LargestFirst:
		return "largest-first"
	default:
		return "submission"
	}
}

// Config selects one experimental configuration. Zero values default to the
// paper's system: 16 processors, 4 MB nodes, store-and-forward switching,
// the default cost models, and the hardware basic quantum.
type Config struct {
	// Processors is the machine size (paper: 16).
	Processors int
	// MemoryBytes is per-node memory (paper: 4 MB).
	MemoryBytes int64
	// PartitionSize p gives Processors/p equal partitions.
	PartitionSize int
	// Topology is the per-partition interconnect.
	Topology topology.Kind
	// Policy is the scheduling discipline: one of the five built-in
	// composites of the three policy components.
	Policy sched.Policy
	// PartitionPolicy, QuantumPolicy and QueueOrder override individual
	// policy components (see package sched); zero values inherit the
	// component from Policy, so a config that sets none of them behaves —
	// and hashes — exactly as before these fields existed.
	PartitionPolicy sched.PartitionKind
	QuantumPolicy   sched.QuantumKind
	QueueOrder      sched.OrderKind
	// App and Arch pick the workload.
	App  AppKind
	Arch workload.Arch
	// Mode is the switching discipline.
	Mode comm.Mode
	// BasicQuantum is q in the RR-job rule Q = (P/T)q; zero uses the
	// hardware quantum.
	BasicQuantum sim.Time
	// Cost and AppCost calibrate the hardware and the applications; zero
	// values take the defaults.
	Cost    *machine.CostModel
	AppCost *workload.AppCost
	// Order permutes the batch before submission.
	Order Order
	// Verify makes applications carry real data (slow; for tests).
	Verify bool
	// Seed drives the deterministic kernel.
	Seed int64
	// Batch overrides the generated paper batch when non-nil.
	Batch workload.Batch
	// MaxResident bounds jobs per partition for the time-sharing policies
	// (0 = all admitted, the paper's setting). Used by the MPL-tuning
	// extension experiment.
	MaxResident int
	// Fault, when non-nil, enables fault injection and the recovery
	// machinery (message retry, checkpoint/restart, scheduler repair). A
	// zero-valued config is inert and reproduces fault-free results exactly.
	Fault *fault.Config
	// Tracer, when non-nil, records job and message events for inspection.
	Tracer trace.Tracer
	// SampleEvery enables periodic utilization sampling at this interval;
	// the samples land in Result.Timeline. Zero disables sampling.
	SampleEvery sim.Time
	// Arrival switches the run from the paper's closed batch to an
	// open-system arrival stream (see package arrival). The zero value is
	// the closed batch, behaving — and hashing — exactly as before this
	// field existed; a non-zero spec replaces the batch with streamed jobs
	// and Result.Open with bounded-memory response statistics.
	Arrival arrival.Spec
}

// withDefaults fills in the paper's standard values.
func (c Config) withDefaults() Config {
	if c.Processors == 0 {
		c.Processors = 16
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = mem.NodeMemory
	}
	if c.PartitionSize == 0 {
		c.PartitionSize = c.Processors
	}
	if c.Cost == nil {
		cm := machine.DefaultCostModel()
		c.Cost = &cm
	}
	if c.AppCost == nil {
		ac := workload.DefaultAppCost()
		c.AppCost = &ac
	}
	c.Arrival = c.Arrival.WithDefaults()
	// Open-system streams need admission control: with an unbounded
	// multiprogramming level a deep enough queue loads more resident job
	// images than node memory holds and the run deadlocks on allocation
	// waiters. The paper's "all admitted" setting is safe only for its
	// 16-job closed batches, so open runs default to a finite MPL.
	if !c.Arrival.IsZero() && c.MaxResident == 0 {
		c.MaxResident = openMaxResident
	}
	return c
}

// openMaxResident is the default per-partition multiprogramming level for
// open-system runs: 16 resident jobs × ~90KB of per-node image footprint
// stays an order of magnitude under the 4MB node memory.
const openMaxResident = 16

// Label renders the figure label of this configuration ("8L static" etc.).
// The policy renders as its resolved spec: the legacy name for the built-in
// composites, the partition/quantum/order triple for zoo compositions.
func (c Config) Label() string {
	c = c.withDefaults()
	g := topology.MustBuild(c.Topology, c.PartitionSize)
	return fmt.Sprintf("%s %s %s %s", g.Label(), c.PolicyLabel(), c.App, c.Arch)
}

// PolicyLabel renders the effective scheduling discipline canonically. An
// unresolvable spec falls back to the legacy policy name (Run will reject
// it with a proper error).
func (c Config) PolicyLabel() string {
	spec, err := sched.ResolveSpec(c.Policy, c.PartitionPolicy, c.QuantumPolicy, c.QueueOrder)
	if err != nil {
		return c.Policy.String()
	}
	return spec.String()
}

// buildBatch constructs the batch for the configuration. Order applies to
// custom batches too, so StaticAveraged works with them.
func (c Config) buildBatch() workload.Batch {
	batch := c.Batch
	if batch == nil {
		switch c.App {
		case Sort:
			batch = workload.SortBatch(c.Arch, *c.AppCost, c.Verify)
		case Stencil:
			batch = workload.StencilBatch(c.Arch, *c.AppCost, c.Verify)
		default:
			batch = workload.MatMulBatch(c.Arch, *c.AppCost, c.Verify)
		}
	}
	switch c.Order {
	case SmallestFirst:
		batch = batch.SmallestFirst()
	case LargestFirst:
		batch = batch.LargestFirst()
	}
	return batch
}

// Run executes one batch under the configuration and returns the result.
// The simulation is fully deterministic for a given Config.
func Run(cfg Config) (*metrics.Result, error) {
	cfg = cfg.withDefaults()
	if !cfg.Arrival.IsZero() {
		return runOpen(cfg)
	}
	r, err := newRun(cfg, 0)
	if err != nil {
		return nil, err
	}
	defer r.k.Shutdown()
	r.armFirstSample()
	if err := r.sys.Submit(r.batch); err != nil {
		return nil, err
	}
	return r.finish()
}

// run is one simulation in flight: the kernel, machine, scheduling system
// and optional utilization sampler, bundled so the plain, cold-fork,
// warm-donor and warm-resume paths (see fork.go) share one construction
// sequence — byte-identical results depend on identical construction order.
type run struct {
	cfg      Config // defaults applied
	k        *sim.Kernel
	mach     *machine.Machine
	sys      *sched.System
	smp      *sampler
	batch    workload.Batch
	timeline metrics.Timeline
}

// newRun builds the simulated system. resumeFrom is zero except on a
// warm-start restore, where it tells the scheduler which fault-plan events
// the donor run already consumed. Construction-time events (router daemons
// parking) are settled so the clock can later be positioned past them; a
// cold run would fire them first anyway.
func newRun(cfg Config, resumeFrom sim.Time) (*run, error) {
	if cfg.Processors < 1 {
		return nil, &ConfigError{Field: "processors", Err: fmt.Errorf("core: machine needs at least one processor, got %d", cfg.Processors)}
	}
	if cfg.MemoryBytes < 1 {
		return nil, &ConfigError{Field: "memory_bytes", Err: fmt.Errorf("core: per-node memory must be positive, got %d bytes", cfg.MemoryBytes)}
	}
	k := sim.NewKernel(cfg.Seed)
	mach := machine.NewMachine(k, cfg.Processors, cfg.MemoryBytes, *cfg.Cost)
	sys, err := sched.New(sched.Config{
		Machine:         mach,
		PartitionSize:   cfg.PartitionSize,
		Topology:        cfg.Topology,
		Mode:            cfg.Mode,
		Policy:          cfg.Policy,
		PartitionPolicy: cfg.PartitionPolicy,
		QuantumPolicy:   cfg.QuantumPolicy,
		QueueOrder:      cfg.QueueOrder,
		BasicQuantum:    cfg.BasicQuantum,
		MaxResident:     cfg.MaxResident,
		Fault:           cfg.Fault,
		Tracer:          cfg.Tracer,
		ResumeFrom:      resumeFrom,
	})
	if err != nil {
		k.Shutdown()
		return nil, wrapConfigErr(err)
	}
	r := &run{cfg: cfg, k: k, mach: mach, sys: sys}
	if cfg.Arrival.IsZero() {
		r.batch = cfg.buildBatch()
	}
	if cfg.SampleEvery > 0 {
		r.smp = newSampler(k, mach, sys, cfg, &r.timeline)
	}
	k.RunUntil(0)
	return r, nil
}

// armFirstSample schedules the sampler's first tick; it must run before
// submission, exactly where installSampler sat historically, so event
// sequence numbers — and with them every same-instant tie — are unchanged.
func (r *run) armFirstSample() {
	if r.smp != nil {
		r.smp.armAt(r.cfg.SampleEvery)
	}
}

// finish runs the submitted simulation to completion and labels the result.
func (r *run) finish() (*metrics.Result, error) {
	res, err := r.sys.Finish()
	if err != nil {
		return nil, err
	}
	res.Label = r.cfg.Label()
	res.Timeline = r.timeline
	return res, nil
}

// sampler is the periodic utilization probe: a kernel event that snapshots
// machine-wide busy-time deltas and memory footprint until the batch
// completes. It is a struct (not a closure) so warm-state forking can
// capture and restore its accumulator state.
type sampler struct {
	k     *sim.Kernel
	mach  *machine.Machine
	sys   *sched.System
	every sim.Time
	denom float64
	out   *metrics.Timeline
	// open bounds the timeline on open-system runs: past openTimelineCap
	// samples the series pair-merges and the interval doubles, keeping
	// memory flat over any stream length (closed batches never decimate,
	// preserving historical timelines byte-for-byte).
	open bool

	prevLow, prevHigh, prevSwitch sim.Time
	// nextAt is the pending tick's activation time; zero once the sampler
	// has stopped re-arming (batch complete).
	nextAt sim.Time
}

func newSampler(k *sim.Kernel, mach *machine.Machine, sys *sched.System, cfg Config, out *metrics.Timeline) *sampler {
	return &sampler{
		k:     k,
		mach:  mach,
		sys:   sys,
		every: cfg.SampleEvery,
		denom: float64(cfg.SampleEvery) * float64(cfg.Processors),
		out:   out,
		open:  !cfg.Arrival.IsZero(),
	}
}

// armAt schedules the next tick at an absolute time.
func (sp *sampler) armAt(at sim.Time) {
	sp.nextAt = at
	sp.k.AtFunc(at, sp.fire)
}

func (sp *sampler) fire() {
	var low, high, sw sim.Time
	var mem int64
	for _, n := range sp.mach.Nodes {
		cs := n.CPU.Stats()
		low += cs.BusyLow
		high += cs.BusyHigh
		sw += cs.BusySwitch
		mem += n.Mem.Used()
	}
	*sp.out = append(*sp.out, metrics.Sample{
		At:          sp.k.Now(),
		BusyLow:     float64(low-sp.prevLow) / sp.denom,
		BusyHigh:    float64(high-sp.prevHigh) / sp.denom,
		BusySwitch:  float64(sw-sp.prevSwitch) / sp.denom,
		MemUsed:     mem,
		JobsRunning: sp.sys.Running(),
	})
	sp.prevLow, sp.prevHigh, sp.prevSwitch = low, high, sw
	if sp.open && len(*sp.out) >= openTimelineCap {
		sp.decimate()
	}
	if sp.sys.Remaining() > 0 || sp.sys.StreamPending() {
		sp.armAt(sp.k.Now() + sp.every)
	} else {
		sp.nextAt = 0
	}
}

// openTimelineCap bounds an open run's utilization timeline.
const openTimelineCap = 4096

// decimate pair-merges the timeline and doubles the sampling interval:
// adjacent samples average their rates (each covered one old interval) and
// the later sample's instantaneous fields win.
func (sp *sampler) decimate() {
	tl := *sp.out
	n := len(tl) / 2
	for i := 0; i < n; i++ {
		a, b := tl[2*i], tl[2*i+1]
		tl[i] = metrics.Sample{
			At:          b.At,
			BusyLow:     (a.BusyLow + b.BusyLow) / 2,
			BusyHigh:    (a.BusyHigh + b.BusyHigh) / 2,
			BusySwitch:  (a.BusySwitch + b.BusySwitch) / 2,
			MemUsed:     b.MemUsed,
			JobsRunning: b.JobsRunning,
		}
	}
	if 2*n < len(tl) {
		tl[n] = tl[len(tl)-1]
		n++
	}
	*sp.out = tl[:n]
	sp.every *= 2
	sp.denom *= 2
}

// StaticAveraged runs the static policy in its best (smallest-first) and
// worst (largest-first) orders and returns both results plus the averaged
// mean response time — exactly the fairness convention of §5.1.
func StaticAveraged(cfg Config) (mean sim.Time, best, worst *metrics.Result, err error) {
	cfg.Policy = sched.Static
	cfg.Order = SmallestFirst
	best, err = Run(cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	cfg.Order = LargestFirst
	worst, err = Run(cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	return metrics.MeanOf(best, worst), best, worst, nil
}
