package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sched"
)

// This file defines the content address of a configuration: the cache key
// behind serve's result store. Two requirements shape it.
//
// Canonical: the hash is computed over the config after withDefaults, so a
// zero field and its explicitly-spelled default address the same content
// ("partition 0" and "partition 16" on a 16-node machine are the same
// simulation). Fields are written in a fixed source order with explicit
// tags — never via map iteration or struct reflection — so the bytes fed
// to the hash are identical across processes, architectures and Go
// versions.
//
// Complete: every field that can change a simulation's output contributes.
// The two runtime-only fields that cannot be content-addressed — Batch (an
// arbitrary caller-built job list) and Tracer (an observer) — make the
// config unhashable and Hash returns an error; the HTTP surface can never
// set them, so every wire config has an address.
//
// Execution knobs that provably do not change output (the engine worker
// count) live outside Config and therefore outside the hash.

// hashVersion namespaces the hash; bump it whenever the byte layout below
// changes so stale cache entries can never alias new ones.
const hashVersion = "repro-config-v1"

// Hash returns the canonical content address of the configuration as a hex
// SHA-256 string. Configs that run the same simulation hash equal; any
// semantically distinct config hashes different. Configs carrying a custom
// Batch or a Tracer are not content-addressable and return an error.
func (c Config) Hash() (string, error) {
	if c.Batch != nil {
		return "", fmt.Errorf("core: config with a custom Batch is not content-addressable")
	}
	if c.Tracer != nil {
		return "", fmt.Errorf("core: config with a Tracer is not content-addressable")
	}
	if c.Arrival.TracePath != "" {
		return "", fmt.Errorf("core: config with an arrival trace file is not content-addressable")
	}
	c = c.withDefaults()
	// The policy components hash canonically: a config whose overrides
	// resolve to a built-in composite hashes exactly as that composite with
	// zero overrides (same simulation, same address). Only a genuinely new
	// composition emits the Spec section — legacy configs produce the exact
	// pre-framework bytes, so every warm cache and journal stays valid.
	polHash := int64(c.Policy)
	specSection := false
	var spec sched.PolicySpec
	if c.PartitionPolicy != sched.PartDefault || c.QuantumPolicy != sched.QuantumDefault || c.QueueOrder != sched.OrderDefault {
		var err error
		spec, err = sched.ResolveSpec(c.Policy, c.PartitionPolicy, c.QuantumPolicy, c.QueueOrder)
		if err != nil {
			return "", err
		}
		if canon, ok := spec.Legacy(); ok {
			polHash = int64(canon)
		} else {
			// No legacy policy hashes as -1, so the sentinel (plus the Spec
			// section below) can never alias a pre-framework address.
			polHash = -1
			specSection = true
		}
	}
	h := sha256.New()
	io.WriteString(h, hashVersion)
	hashInt(h, "Processors", int64(c.Processors))
	hashInt(h, "MemoryBytes", c.MemoryBytes)
	hashInt(h, "PartitionSize", int64(c.PartitionSize))
	hashInt(h, "Topology", int64(c.Topology))
	hashInt(h, "Policy", polHash)
	hashInt(h, "App", int64(c.App))
	hashInt(h, "Arch", int64(c.Arch))
	hashInt(h, "Mode", int64(c.Mode))
	hashInt(h, "BasicQuantum", int64(c.BasicQuantum))
	hashInt(h, "Order", int64(c.Order))
	hashBool(h, "Verify", c.Verify)
	hashInt(h, "Seed", c.Seed)
	hashInt(h, "MaxResident", int64(c.MaxResident))
	hashInt(h, "SampleEvery", int64(c.SampleEvery))

	// withDefaults guarantees Cost and AppCost are non-nil.
	hashInt(h, "Cost.Quantum", int64(c.Cost.Quantum))
	hashInt(h, "Cost.LinkPerByteNS", c.Cost.LinkPerByteNS)
	hashInt(h, "Cost.LinkLatency", int64(c.Cost.LinkLatency))
	hashInt(h, "Cost.RouterHopOverhead", int64(c.Cost.RouterHopOverhead))
	hashInt(h, "Cost.SendOverhead", int64(c.Cost.SendOverhead))
	hashInt(h, "Cost.RecvOverhead", int64(c.Cost.RecvOverhead))
	hashInt(h, "Cost.JobSwitch", int64(c.Cost.JobSwitch))
	hashInt(h, "Cost.SpawnOverhead", int64(c.Cost.SpawnOverhead))
	hashInt(h, "Cost.FlitBytes", c.Cost.FlitBytes)
	hashInt(h, "Cost.MsgHeaderBytes", c.Cost.MsgHeaderBytes)
	hashInt(h, "Cost.HostPerByteNS", c.Cost.HostPerByteNS)
	hashInt(h, "Cost.HostJobFixed", int64(c.Cost.HostJobFixed))

	hashInt(h, "AppCost.MulAddNS", c.AppCost.MulAddNS)
	hashInt(h, "AppCost.CmpNS", c.AppCost.CmpNS)
	hashInt(h, "AppCost.MergeNS", c.AppCost.MergeNS)
	hashInt(h, "AppCost.Setup", int64(c.AppCost.Setup))

	if c.Fault == nil {
		io.WriteString(h, "Fault=nil;")
	} else {
		io.WriteString(h, "Fault={")
		hashInt(h, "Seed", c.Fault.Seed)
		hashInt(h, "NodeMTBF", int64(c.Fault.NodeMTBF))
		hashInt(h, "NodeMTTR", int64(c.Fault.NodeMTTR))
		hashInt(h, "LinkMTBF", int64(c.Fault.LinkMTBF))
		hashInt(h, "LinkMTTR", int64(c.Fault.LinkMTTR))
		hashFloat(h, "DropProb", c.Fault.DropProb)
		hashInt(h, "Horizon", int64(c.Fault.Horizon))
		hashInt(h, "RetryTimeout", int64(c.Fault.RetryTimeout))
		hashInt(h, "RetryBudget", int64(c.Fault.RetryBudget))
		hashInt(h, "CheckpointInterval", int64(c.Fault.CheckpointInterval))
		hashInt(h, "CheckpointCost", int64(c.Fault.CheckpointCost))
		hashInt(h, "RestartBudget", int64(c.Fault.RestartBudget))
		io.WriteString(h, "};")
	}
	if specSection {
		io.WriteString(h, "Spec={")
		hashInt(h, "Partition", int64(spec.Partition))
		hashInt(h, "Quantum", int64(spec.Quantum))
		hashInt(h, "Order", int64(spec.Order))
		io.WriteString(h, "};")
	}
	// The open-system arrival section appends only when configured, so
	// every closed-batch config — which is all of them before this section
	// existed — feeds the hash its exact historical bytes. withDefaults has
	// canonicalized the spec: a blank field and its spelled-out default
	// address the same stream.
	if !c.Arrival.IsZero() {
		io.WriteString(h, "Arrival={")
		hashInt(h, "Kind", int64(c.Arrival.Kind))
		hashInt(h, "Jobs", c.Arrival.Jobs)
		hashFloat(h, "Load", c.Arrival.Load)
		hashInt(h, "MeanInterarrival", int64(c.Arrival.MeanInterarrival))
		hashFloat(h, "ParetoAlpha", c.Arrival.ParetoAlpha)
		hashInt(h, "ParetoCap", int64(c.Arrival.ParetoCap))
		hashInt(h, "SmallWork", int64(c.Arrival.SmallWork))
		hashInt(h, "LargeWork", int64(c.Arrival.LargeWork))
		hashInt(h, "LargeEvery", c.Arrival.LargeEvery)
		hashInt(h, "WidthSmall", int64(c.Arrival.WidthSmall))
		hashInt(h, "WidthLarge", int64(c.Arrival.WidthLarge))
		io.WriteString(h, "};")
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// MustHash is Hash for configs known to be content-addressable (no Batch,
// no Tracer); it panics otherwise. Intended for tests and internal callers
// that construct the config themselves.
func (c Config) MustHash() string {
	s, err := c.Hash()
	if err != nil {
		panic(err)
	}
	return s
}

func hashInt(w io.Writer, tag string, v int64) {
	io.WriteString(w, tag)
	io.WriteString(w, "=")
	io.WriteString(w, strconv.FormatInt(v, 10))
	io.WriteString(w, ";")
}

func hashFloat(w io.Writer, tag string, v float64) {
	io.WriteString(w, tag)
	io.WriteString(w, "=")
	// 'x' (hex) round-trips every float64 bit pattern exactly.
	io.WriteString(w, strconv.FormatFloat(v, 'x', -1, 64))
	io.WriteString(w, ";")
}

func hashBool(w io.Writer, tag string, v bool) {
	io.WriteString(w, tag)
	if v {
		io.WriteString(w, "=1;")
	} else {
		io.WriteString(w, "=0;")
	}
}
