package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Example runs the paper's standard matrix-multiplication batch under the
// hybrid policy on four 4-processor mesh partitions. The simulation is
// deterministic, so the output is exact.
func Example() {
	res, err := core.Run(core.Config{
		PartitionSize: 4,
		Topology:      topology.Mesh,
		Policy:        sched.TimeShared,
		App:           core.MatMul,
		Arch:          workload.Adaptive,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d jobs, mean response %s\n", len(res.Jobs), res.MeanResponse())
	// Output:
	// 16 jobs, mean response 1.004694s
}

// ExampleStaticAveraged shows the paper's §5.1 convention for the
// order-sensitive static policy: the reported number is the mean of the
// best (smallest-first) and worst (largest-first) submission orders.
func ExampleStaticAveraged() {
	mean, best, worst, err := core.StaticAveraged(core.Config{
		PartitionSize: 4,
		Topology:      topology.Mesh,
		App:           core.MatMul,
		Arch:          workload.Adaptive,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("best %s worst %s avg %s\n", best.MeanResponse(), worst.MeanResponse(), mean)
	// Output:
	// best 792.540ms worst 1.591594s avg 1.192067s
}
