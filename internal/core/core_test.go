package core

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// smallCfg shrinks the workload so core tests run in milliseconds.
func smallCfg() Config {
	ac := workload.DefaultAppCost()
	return Config{
		PartitionSize: 4,
		Topology:      topology.Mesh,
		Policy:        sched.TimeShared,
		App:           MatMul,
		Arch:          workload.Adaptive,
		AppCost:       &ac,
		Batch: workload.BatchSpec{
			Small: 3, Large: 1, Arch: workload.Adaptive,
			NewApp: func(class string) workload.App {
				n := 16
				if class == "large" {
					n = 32
				}
				return workload.NewMatMul(n, workload.DefaultAppCost(), false)
			},
		}.Build(),
	}
}

func TestAppKindParsing(t *testing.T) {
	for s, want := range map[string]AppKind{"matmul": MatMul, "mm": MatMul, "sort": Sort} {
		got, err := ParseApp(s)
		if err != nil || got != want {
			t.Errorf("ParseApp(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseApp("raytrace"); err == nil {
		t.Error("bad app should fail")
	}
	if MatMul.String() != "matmul" || Sort.String() != "sort" {
		t.Error("app strings")
	}
}

func TestOrderString(t *testing.T) {
	if Submission.String() != "submission" || SmallestFirst.String() != "smallest-first" || LargestFirst.String() != "largest-first" {
		t.Error("order strings")
	}
}

func TestRunSmoke(t *testing.T) {
	res, err := Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	if res.MeanResponse() <= 0 || res.Makespan <= 0 {
		t.Errorf("degenerate result: %v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse() != b.MeanResponse() || a.Makespan != b.Makespan {
		t.Errorf("runs differ: %v vs %v", a, b)
	}
}

func TestDefaultsAreThePaperSystem(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Processors != 16 {
		t.Errorf("processors = %d", c.Processors)
	}
	if c.MemoryBytes != 4<<20 {
		t.Errorf("memory = %d", c.MemoryBytes)
	}
	if c.PartitionSize != 16 {
		t.Errorf("partition = %d", c.PartitionSize)
	}
	if c.Cost == nil || c.AppCost == nil {
		t.Error("cost models not defaulted")
	}
	if c.Mode != comm.StoreForward {
		t.Error("default mode should be store-and-forward")
	}
}

func TestLabel(t *testing.T) {
	cfg := smallCfg()
	label := cfg.Label()
	for _, want := range []string{"4M", "time-shared", "matmul", "adaptive"} {
		if !strings.Contains(label, want) {
			t.Errorf("label %q missing %q", label, want)
		}
	}
}

func TestStaticAveraged(t *testing.T) {
	cfg := smallCfg()
	mean, best, worst, err := StaticAveraged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best.MeanResponse() > worst.MeanResponse() {
		t.Errorf("best %v > worst %v", best.MeanResponse(), worst.MeanResponse())
	}
	want := (best.MeanResponse() + worst.MeanResponse()) / 2
	if mean != want {
		t.Errorf("mean = %v, want %v", mean, want)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	cfg := smallCfg()
	cfg.PartitionSize = 3 // does not divide 16
	if _, err := Run(cfg); err == nil {
		t.Error("expected error")
	}
	cfg = smallCfg()
	cfg.PartitionSize = 6
	cfg.Topology = topology.Hypercube
	if _, err := Run(cfg); err == nil {
		t.Error("non-power-of-two hypercube partition should fail")
	}
}

func TestGeneratedBatches(t *testing.T) {
	for _, app := range []AppKind{MatMul, Sort} {
		cfg := Config{App: app}.withDefaults()
		batch := cfg.buildBatch()
		if len(batch) != 16 {
			t.Errorf("%v batch = %d jobs", app, len(batch))
		}
		name := batch[0].App.Name()
		if (app == MatMul && name != "matmul") || (app == Sort && name != "sort") {
			t.Errorf("%v batch built %q", app, name)
		}
	}
}

func TestOrderAppliesToCustomBatch(t *testing.T) {
	cfg := smallCfg()
	cfg.Order = LargestFirst
	batch := cfg.buildBatch()
	if batch[0].Class != "large" {
		t.Errorf("largest-first custom batch starts with %s", batch[0].Class)
	}
	// The original slice must be untouched.
	if cfg.Batch[0].Class != "small" {
		t.Error("ordering mutated the caller's batch")
	}
}

func TestMaxResidentThreadsThrough(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxResident = 1
	res1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxResident = 0
	resAll, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// MaxResident=1 serializes jobs per partition, so the makespan can only
	// grow or stay equal.
	if res1.Makespan < resAll.Makespan {
		t.Errorf("MPL=1 makespan %v < unlimited %v", res1.Makespan, resAll.Makespan)
	}
}

// TestVerifiedPaperWorkloadSmall runs real-data verification through the
// whole stack (core -> sched -> comm -> machine) at miniature sizes.
func TestVerifiedPaperWorkloadSmall(t *testing.T) {
	batch := workload.BatchSpec{
		Small: 3, Large: 1, Arch: workload.Fixed,
		NewApp: func(class string) workload.App {
			n := 40
			if class == "large" {
				n = 120
			}
			return workload.NewSort(n, workload.DefaultAppCost(), true)
		},
	}.Build()
	cfg := Config{
		PartitionSize: 8,
		Topology:      topology.Hypercube,
		Policy:        sched.TimeShared,
		Batch:         batch,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, j := range batch {
		if !j.App.(*workload.Sort).Checked {
			t.Errorf("job %d not verified", j.ID)
		}
	}
}

func TestWormholeModeThreadsThrough(t *testing.T) {
	cfg := smallCfg()
	saf, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = comm.Wormhole
	wh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if saf.Net.Messages != wh.Net.Messages {
		t.Errorf("message counts differ: %d vs %d", saf.Net.Messages, wh.Net.Messages)
	}
	if wh.MeanResponse() >= saf.MeanResponse() {
		t.Errorf("wormhole %v not faster than SAF %v", wh.MeanResponse(), saf.MeanResponse())
	}
}

func TestBasicQuantumThreadsThrough(t *testing.T) {
	cfg := smallCfg()
	// One partition so the four jobs actually share processors and the
	// job-switch rate depends on the quantum.
	cfg.PartitionSize = 16
	cfg.BasicQuantum = 500 * sim.Microsecond
	fine, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BasicQuantum = 50 * sim.Millisecond
	coarse, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Finer quanta mean more job switches.
	fineSwitch := fine.SystemOverheadFraction()
	coarseSwitch := coarse.SystemOverheadFraction()
	if fineSwitch <= coarseSwitch {
		t.Errorf("fine-quantum overhead %.3f not above coarse %.3f", fineSwitch, coarseSwitch)
	}
}

func TestSampleEveryProducesTimeline(t *testing.T) {
	cfg := smallCfg()
	cfg.SampleEvery = 5 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no samples collected")
	}
	// Samples are spaced by the interval and cover the run.
	for i, s := range res.Timeline {
		if want := sim.Time(i+1) * cfg.SampleEvery; s.At != want {
			t.Fatalf("sample %d at %v, want %v", i, s.At, want)
		}
		if s.Busy() < 0 || s.Busy() > 1.001 {
			t.Errorf("sample %d busy = %v out of range", i, s.Busy())
		}
		if s.MemUsed < 0 {
			t.Errorf("sample %d mem = %d", i, s.MemUsed)
		}
	}
	last := res.Timeline[len(res.Timeline)-1].At
	if last < res.Makespan {
		t.Errorf("last sample %v before makespan %v", last, res.Makespan)
	}
	// Mid-run samples see jobs running.
	sawRunning := false
	for _, s := range res.Timeline {
		if s.JobsRunning > 0 {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Error("no sample observed running jobs")
	}
	// Disabled sampling leaves Timeline nil.
	cfg.SampleEvery = 0
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timeline != nil {
		t.Error("sampling should be off by default")
	}
}
