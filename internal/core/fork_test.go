package core

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// resultJSON canonicalizes a result for byte-identity comparison.
func resultJSON(t *testing.T, res *metrics.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// gateConfigs are the fork-gate configurations: the five built-in
// disciplines, three zoo compositions, a fault-injected run (injector RNG
// and pending repairs in play) and a sampled run (timeline accumulation).
func gateConfigs() map[string]Config {
	return map[string]Config{
		"static":      {PartitionSize: 4, Topology: topology.Mesh, Policy: sched.Static},
		"time-shared": {PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared},
		"rr-process":  {PartitionSize: 4, Topology: topology.Mesh, Policy: sched.RRProcess},
		"gang":        {PartitionSize: 4, Topology: topology.Mesh, Policy: sched.Gang},
		"dynamic":     {PartitionSize: 8, Topology: topology.Mesh, Policy: sched.DynamicSpace},
		"zoo-static-srpt": {PartitionSize: 4, Topology: topology.Mesh, Policy: sched.Static,
			QueueOrder: sched.OrderSRPT},
		"zoo-ts-dynquantum": {PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared,
			QuantumPolicy: sched.QuantumDynamic},
		"zoo-equi": {PartitionSize: 8, Topology: topology.Mesh, Policy: sched.DynamicSpace,
			PartitionPolicy: sched.PartEqui},
		"faults": {PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared,
			Fault: &fault.Config{
				Seed: 11, NodeMTBF: 400 * sim.Millisecond, NodeMTTR: 30 * sim.Millisecond,
				Horizon: 5 * sim.Second, RetryTimeout: 20 * sim.Millisecond, RetryBudget: 8,
				DropProb: 0.02, CheckpointInterval: 50 * sim.Millisecond, CheckpointCost: 200,
				RestartBudget: 64,
			}},
		"sampled": {PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared,
			SampleEvery: 10 * sim.Millisecond},
	}
}

// TestForkGateT0 is half the determinism contract: a fork at t=0 with an
// empty divergence is byte-identical to a plain run, for every discipline,
// with fault injection and with sampling.
func TestForkGateT0(t *testing.T) {
	for name, cfg := range gateConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cold, err := Run(cfg)
			if err != nil {
				t.Fatalf("cold run: %v", err)
			}
			w, err := Prepare(cfg, ForkPoint{})
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			warm, err := w.Run(Divergence{})
			if err != nil {
				t.Fatalf("warm run: %v", err)
			}
			if c, g := resultJSON(t, cold), resultJSON(t, warm); c != g {
				t.Errorf("t=0 fork diverged from cold run\ncold: %.400s\nwarm: %.400s", c, g)
			}
		})
	}
}

// twoWaveBatch builds a batch with a guaranteed quiescent gap: wave jobs of
// equal work at t=0, then late jobs arriving at gapAt, long after the first
// wave drains.
func twoWaveBatch(wave, late int, gapAt sim.Time) workload.Batch {
	batch := make(workload.Batch, 0, wave+late)
	cost := workload.DefaultAppCost()
	for i := 0; i < wave; i++ {
		batch = append(batch, &workload.Job{
			ID: i, Class: "small", Arch: workload.Adaptive,
			App: workload.NewSynthetic(20*sim.Millisecond, 256, 1024, cost),
		})
	}
	for i := 0; i < late; i++ {
		batch = append(batch, &workload.Job{
			ID: wave + i, Class: "small", Arch: workload.Adaptive, Arrival: gapAt,
			App: workload.NewSynthetic(10*sim.Millisecond, 256, 1024, cost),
		})
	}
	return batch
}

// TestForkWarmEqualsCold is the other half of the contract: for every
// discipline and every divergence kind, restoring the snapshot and running
// the continuation is byte-identical to the single-process cold reference
// that diverges in place at the same instant.
func TestForkWarmEqualsCold(t *testing.T) {
	const gapAt = 5 * sim.Second
	fp := ForkPoint{WarmTime: sim.Second, WarmJobs: 6}
	divs := map[string]Divergence{
		"empty":    {},
		"seed":     {SeedSet: true, Seed: 99},
		"quantum":  {BasicQuantum: 40 * sim.Millisecond},
		"qpolicy":  {QuantumPolicy: sched.QuantumFixed},
		"order":    {QueueOrder: sched.OrderSRPT},
		"combined": {SeedSet: true, Seed: 7, BasicQuantum: 25 * sim.Millisecond, QueueOrder: sched.OrderPriority},
	}
	for name, cfg := range gateConfigs() {
		cfg := cfg
		cfg.Batch = twoWaveBatch(6, 4, gapAt)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := Prepare(cfg, fp)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			if got := w.Snapshot().T; got < sim.Second || got >= gapAt {
				t.Fatalf("fork instant %v outside the quiescent gap [%v, %v)", got, sim.Second, gapAt)
			}
			for dname, div := range divs {
				div := div
				t.Run(dname, func(t *testing.T) {
					cold, err := RunForked(cfg, fp, div)
					if err != nil {
						t.Fatalf("cold forked run: %v", err)
					}
					warm, err := w.Run(div)
					if err != nil {
						t.Fatalf("warm run: %v", err)
					}
					if c, g := resultJSON(t, cold), resultJSON(t, warm); c != g {
						t.Errorf("warm fork diverged from cold reference\ncold: %.400s\nwarm: %.400s", c, g)
					}
				})
			}
		})
	}
}

// TestForkParallel runs the same divergent continuations sequentially and
// concurrently (8 at a time) and requires identical bytes — the snapshot
// must be read-only under concurrent resumes (run with -race).
func TestForkParallel(t *testing.T) {
	cfg := Config{PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared,
		Batch: twoWaveBatch(6, 4, 5*sim.Second)}
	w, err := Prepare(cfg, ForkPoint{WarmJobs: 6})
	if err != nil {
		t.Fatal(err)
	}
	divs := make([]Divergence, 8)
	for i := range divs {
		divs[i] = Divergence{BasicQuantum: sim.Time(i+1) * 10 * sim.Millisecond}
	}
	sequential := make([]string, len(divs))
	for i, div := range divs {
		res, err := w.Run(div)
		if err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		sequential[i] = resultJSON(t, res)
	}
	parallel := make([]string, len(divs))
	errs := make([]error, len(divs))
	var wg sync.WaitGroup
	for i, div := range divs {
		wg.Add(1)
		go func(i int, div Divergence) {
			defer wg.Done()
			res, err := w.Run(div)
			if err != nil {
				errs[i] = err
				return
			}
			b, _ := json.Marshal(res)
			parallel[i] = string(b)
		}(i, div)
	}
	wg.Wait()
	for i := range divs {
		if errs[i] != nil {
			t.Fatalf("parallel run %d: %v", i, errs[i])
		}
		if sequential[i] != parallel[i] {
			t.Errorf("run %d: parallel result differs from sequential", i)
		}
	}
}

// TestSnapshotRoundTrip serializes the snapshot (the cluster wire path) and
// resumes from the decoded bytes; the result must match the in-memory warm
// run byte for byte, and the config hash must be enforced.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := Config{PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared,
		Fault: &fault.Config{
			Seed: 11, NodeMTBF: 400 * sim.Millisecond, NodeMTTR: 30 * sim.Millisecond,
			Horizon: 5 * sim.Second, RetryTimeout: 20 * sim.Millisecond, RetryBudget: 8,
			DropProb: 0.02, CheckpointInterval: 50 * sim.Millisecond, CheckpointCost: 200,
			RestartBudget: 64,
		}}
	w, err := Prepare(cfg, ForkPoint{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	div := Divergence{SeedSet: true, Seed: 42}
	want, err := w.Run(div)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResumeFromSnapshot(cfg, snap, div)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := resultJSON(t, want), resultJSON(t, got); a != b {
		t.Errorf("serialized resume differs from in-memory warm run")
	}

	other := cfg
	other.Topology = topology.Ring
	if _, err := ResumeFromSnapshot(other, snap, div); err == nil {
		t.Errorf("resume against a different config did not fail the hash check")
	}
}

// TestDivergenceBetween checks derivation of divergences and rejection of
// non-divergible differences.
func TestDivergenceBetween(t *testing.T) {
	base := Config{PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared}

	point := base
	point.Seed = 3
	point.BasicQuantum = 50 * sim.Millisecond
	point.QueueOrder = sched.OrderSRPT
	div, err := DivergenceBetween(base, point)
	if err != nil {
		t.Fatal(err)
	}
	want := Divergence{SeedSet: true, Seed: 3, BasicQuantum: 50 * sim.Millisecond, QueueOrder: sched.OrderSRPT}
	if div != want {
		t.Errorf("divergence = %+v, want %+v", div, want)
	}
	if got := div.apply(base); got.Seed != 3 || got.BasicQuantum != 50*sim.Millisecond || got.QueueOrder != sched.OrderSRPT {
		t.Errorf("apply did not reproduce the point config: %+v", got)
	}

	// Spelled-out defaults are not a divergence.
	explicit := base
	explicit.Processors = 16
	explicit.QuantumPolicy = sched.QuantumRRJob // TimeShared's own component
	div, err = DivergenceBetween(base, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !div.Empty() {
		t.Errorf("resolved-identical configs produced divergence %+v", div)
	}

	for name, mutate := range map[string]func(*Config){
		"topology":  func(c *Config) { c.Topology = topology.Ring },
		"partition": func(c *Config) { c.PartitionSize = 8 },
		"app":       func(c *Config) { c.App = Sort },
		"partpol":   func(c *Config) { c.PartitionPolicy = sched.PartFixed },
		"fault":     func(c *Config) { c.Fault = &fault.Config{NodeMTBF: sim.Second, Horizon: sim.Second} },
	} {
		point := base
		mutate(&point)
		if _, err := DivergenceBetween(base, point); err == nil {
			t.Errorf("%s difference was accepted as divergible", name)
		}
	}
}

// TestForkPointNotReached: a fork point past the end of the run must be a
// clean error, not a hang or a bogus snapshot.
func TestForkPointNotReached(t *testing.T) {
	cfg := Config{PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared,
		Batch: twoWaveBatch(4, 0, 0)}
	if _, err := Prepare(cfg, ForkPoint{WarmJobs: 99}); err == nil {
		t.Errorf("unreachable fork point did not error")
	}
}
