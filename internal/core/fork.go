package core

// Warm-state forking: run a shared simulation prefix once, snapshot it at a
// deterministic quiescent instant, and fork N divergent continuations —
// locally by restoring the snapshot into fresh systems, or remotely by
// shipping the serialized snapshot so a worker resumes instead of
// cold-starting.
//
// The semantics are defined by the cold reference, RunForked: one process
// runs the base configuration to the fork point, applies the divergence in
// place, and continues. The warm path (Prepare once, then Warm.Run per
// divergence) must produce byte-identical results — a contract the fork
// gate enforces — and a fork at t=0 is byte-identical to a plain Run of the
// merged configuration.
//
// A fork point is a *quiescent instant*: no job resident anywhere, no
// message in flight, every CPU idle (see sched.Quiescent). Quiescence is
// what makes whole-simulation snapshots tractable in Go — all transient
// state lives in goroutine stacks that cannot be serialized, and at a
// quiescent instant it is gone by definition. What remains is plain data
// plus pending kernel events that are declaratively reconstructible: future
// job arrivals from the batch, future fault-plan events from the
// regenerated plan, and the sampler's next tick.
//
// Only knobs that shape future dispatch decisions without invalidating
// already-accumulated state may diverge: the RNG seed, the basic quantum,
// the quantum policy and the queue order — exactly the innermost dimensions
// of an engine.Grid. Machine shape, topology, workload, partition policy
// and fault plan are prefix-defining and must match.

import (
	"encoding/json"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ForkPoint names the earliest eligible fork instant: the first quiescent
// instant at or after WarmTime with at least WarmJobs jobs completed. The
// zero ForkPoint forks at t=0, before any job is submitted.
type ForkPoint struct {
	WarmTime sim.Time `json:"warm_time,omitempty"`
	WarmJobs int      `json:"warm_jobs,omitempty"`
}

// Zero reports a t=0 fork (snapshot taken before submission).
func (fp ForkPoint) Zero() bool { return fp.WarmTime == 0 && fp.WarmJobs == 0 }

func (fp ForkPoint) String() string {
	if fp.Zero() {
		return "t=0"
	}
	return fmt.Sprintf("t>=%v,jobs>=%d", fp.WarmTime, fp.WarmJobs)
}

// Divergence is the per-point delta applied at the fork instant. Zero
// values keep the base setting (SeedSet disambiguates seed 0 from "keep").
type Divergence struct {
	SeedSet       bool              `json:"seed_set,omitempty"`
	Seed          int64             `json:"seed,omitempty"`
	BasicQuantum  sim.Time          `json:"basic_quantum,omitempty"`
	QuantumPolicy sched.QuantumKind `json:"quantum_policy,omitempty"`
	QueueOrder    sched.OrderKind   `json:"queue_order,omitempty"`
}

// Empty reports a no-op divergence (the point continues the base config).
func (d Divergence) Empty() bool { return d == Divergence{} }

// apply merges the divergence onto a base configuration, producing the
// config of the forked point.
func (d Divergence) apply(base Config) Config {
	if d.SeedSet {
		base.Seed = d.Seed
	}
	if d.BasicQuantum > 0 {
		base.BasicQuantum = d.BasicQuantum
	}
	if d.QuantumPolicy != sched.QuantumDefault {
		base.QuantumPolicy = d.QuantumPolicy
	}
	if d.QueueOrder != sched.OrderDefault {
		base.QueueOrder = d.QueueOrder
	}
	return base
}

// effectiveQuantum resolves the basic quantum a config will run with (the
// hardware quantum when unset); cfg must carry defaults.
func effectiveQuantum(cfg Config) sim.Time {
	if cfg.BasicQuantum > 0 {
		return cfg.BasicQuantum
	}
	return cfg.Cost.Quantum
}

// DivergenceBetween computes the divergence that turns base into point, or
// an error when point differs from base in a dimension that cannot diverge
// at a fork (machine shape, topology, workload, partition policy, fault
// plan, ...). Both configs are compared after defaulting and policy
// resolution, so spelled-out defaults and inherited components compare
// equal. Divergences carry resolved component kinds, never Default.
func DivergenceBetween(base, point Config) (Divergence, error) {
	b, p := base.withDefaults(), point.withDefaults()
	var div Divergence
	if b.Seed != p.Seed {
		div.SeedSet = true
		div.Seed = p.Seed
	}
	if bq, pq := effectiveQuantum(b), effectiveQuantum(p); bq != pq {
		div.BasicQuantum = pq
	}
	bs, err := sched.ResolveSpec(b.Policy, b.PartitionPolicy, b.QuantumPolicy, b.QueueOrder)
	if err != nil {
		return div, err
	}
	ps, err := sched.ResolveSpec(p.Policy, p.PartitionPolicy, p.QuantumPolicy, p.QueueOrder)
	if err != nil {
		return div, err
	}
	if bs.Partition != ps.Partition {
		return div, fmt.Errorf("core: partition policy differs (%v vs %v): not fork-divergible", bs.Partition, ps.Partition)
	}
	if bs.Quantum != ps.Quantum {
		div.QuantumPolicy = ps.Quantum
	}
	if bs.Order != ps.Order {
		div.QueueOrder = ps.Order
	}
	if err := sameForkBase(b, p); err != nil {
		return div, err
	}
	return div, nil
}

// sameForkBase verifies that every prefix-defining dimension matches.
func sameForkBase(b, p Config) error {
	type check struct {
		name string
		same bool
	}
	checks := []check{
		{"Processors", b.Processors == p.Processors},
		{"MemoryBytes", b.MemoryBytes == p.MemoryBytes},
		{"PartitionSize", b.PartitionSize == p.PartitionSize},
		{"Topology", b.Topology == p.Topology},
		{"App", b.App == p.App},
		{"Arch", b.Arch == p.Arch},
		{"Mode", b.Mode == p.Mode},
		{"Order", b.Order == p.Order},
		{"Verify", b.Verify == p.Verify},
		{"MaxResident", b.MaxResident == p.MaxResident},
		{"SampleEvery", b.SampleEvery == p.SampleEvery},
		{"Cost", *b.Cost == *p.Cost},
		{"AppCost", *b.AppCost == *p.AppCost},
		{"Fault", (b.Fault == nil) == (p.Fault == nil) &&
			(b.Fault == nil || *b.Fault == *p.Fault)},
		{"Tracer", b.Tracer == nil && p.Tracer == nil},
		{"Batch", sameBatch(b, p)},
		// Open-system streams have no snapshot representation, so arrival
		// configs are never fork-eligible.
		{"Arrival", b.Arrival.IsZero() && p.Arrival.IsZero()},
	}
	for _, c := range checks {
		if !c.same {
			return fmt.Errorf("core: config field %s differs (or is not fork-eligible): not fork-divergible", c.name)
		}
	}
	return nil
}

// sameBatch accepts nil batches (the generated paper batch, identical by
// construction) or the same job objects in the same order. Jobs are
// immutable during runs, so forked points may share them.
func sameBatch(b, p Config) bool {
	if len(b.Batch) != len(p.Batch) {
		return false
	}
	for i := range b.Batch {
		if b.Batch[i] != p.Batch[i] {
			return false
		}
	}
	return true
}

// SnapshotVersion guards the snapshot wire format.
const SnapshotVersion = 1

// SamplerState is the utilization sampler's accumulator state at the fork.
type SamplerState struct {
	PrevLow    sim.Time `json:"prev_low"`
	PrevHigh   sim.Time `json:"prev_high"`
	PrevSwitch sim.Time `json:"prev_switch"`
	// NextAt is the pending tick's activation time (zero: sampler stopped).
	NextAt   sim.Time         `json:"next_at"`
	Timeline metrics.Timeline `json:"timeline,omitempty"`
}

// Snapshot is the serialized whole-simulation state at a quiescent fork
// instant. It is self-describing enough for a cluster worker that holds the
// base configuration to resume from it; ConfigHash lets the worker verify
// the snapshot matches the config it reconstructed.
type Snapshot struct {
	Version int `json:"version"`
	// ConfigHash is the base config's content address; empty when the base
	// is not content-addressable (custom batch).
	ConfigHash string        `json:"config_hash,omitempty"`
	T          sim.Time      `json:"t"`
	EventsRun  int64         `json:"events_run"`
	Sched      *sched.State  `json:"sched"`
	Sampler    *SamplerState `json:"sampler,omitempty"`
}

// Encode serializes the snapshot for shipping to a cluster worker.
func (s *Snapshot) Encode() ([]byte, error) { return json.Marshal(s) }

// DecodeSnapshot parses an encoded snapshot and checks its version.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	if s.Sched == nil {
		return nil, fmt.Errorf("core: snapshot without scheduler state")
	}
	return &s, nil
}

// stepToFork advances a submitted run event by event until the fork point's
// conditions hold, and returns the fork instant. Both the cold reference
// and the warm donor step the same event sequence, so they stop at the same
// instant.
//
// The fork instant is max(now, WarmTime) at the first event boundary where
// the system is quiescent, enough jobs completed, and the next pending
// event lies strictly beyond that instant — the simulated clock only exists
// at event boundaries, so a quiescent gap spanning WarmTime forks at
// WarmTime itself even though no event fires there. Requiring the next
// event to lie strictly beyond also forces every same-instant event to fire
// before the snapshot, so a restore never has to reconstruct a
// same-instant tie.
func (r *run) stepToFork(fp ForkPoint) (sim.Time, error) {
	total := len(r.batch)
	for {
		if r.sys.Quiescent() && total-r.sys.Remaining() >= fp.WarmJobs {
			t := r.k.Now()
			if fp.WarmTime > t {
				t = fp.WarmTime
			}
			if next, ok := r.k.NextEventAt(); !ok || next > t {
				return t, nil
			}
		}
		if !r.k.Step() {
			return 0, fmt.Errorf("core: fork point (%s) not reached: run ended at t=%v with %d/%d jobs done",
				fp, r.k.Now(), total-r.sys.Remaining(), total)
		}
	}
}

// diverge applies a divergence to a run standing at its fork instant.
func (r *run) diverge(div Divergence) error {
	if div.SeedSet {
		// Both the cold path (mid-run) and a warm restore (at construction)
		// hold a freshly seeded generator at the fork instant, so the two
		// continuations draw identically.
		r.k.Reseed(div.Seed)
	}
	if err := r.sys.Diverge(div.BasicQuantum, div.QuantumPolicy, div.QueueOrder); err != nil {
		return err
	}
	r.cfg = div.apply(r.cfg)
	return nil
}

// RunForked is the cold reference for warm-state forking: run base to the
// fork point, apply the divergence in place, continue to completion. Every
// warm fork is byte-identical to this. A zero fork point reduces to a plain
// Run of the merged configuration.
func RunForked(base Config, fp ForkPoint, div Divergence) (*metrics.Result, error) {
	if fp.Zero() {
		return Run(div.apply(base))
	}
	if err := rejectOpenFork(base); err != nil {
		return nil, err
	}
	r, err := newRun(base.withDefaults(), 0)
	if err != nil {
		return nil, err
	}
	defer r.k.Shutdown()
	r.armFirstSample()
	if err := r.sys.Submit(r.batch); err != nil {
		return nil, err
	}
	if _, err := r.stepToFork(fp); err != nil {
		return nil, err
	}
	if err := r.diverge(div); err != nil {
		return nil, err
	}
	return r.finish()
}

// rejectOpenFork refuses warm-state forking for open-system arrival
// configurations: a mid-stream arrival source has no snapshot
// representation, so forking would silently drop the stream. Callers get a
// clean field-addressed error instead.
func rejectOpenFork(base Config) error {
	if !base.Arrival.IsZero() {
		return &ConfigError{Field: "arrival",
			Err: fmt.Errorf("core: open-system arrival configs are not fork-eligible")}
	}
	return nil
}

// snapshot captures the run's whole-simulation state at fork instant t; the
// run must stand at a quiescent instant with no pending event at or before t.
func (r *run) snapshot(t sim.Time) (*Snapshot, error) {
	st, err := r.sys.SnapshotState()
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Version:   SnapshotVersion,
		T:         t,
		EventsRun: r.k.EventsRun(),
		Sched:     st,
	}
	if h, err := r.cfg.Hash(); err == nil {
		snap.ConfigHash = h
	}
	if r.smp != nil {
		ss := SamplerState{
			PrevLow:    r.smp.prevLow,
			PrevHigh:   r.smp.prevHigh,
			PrevSwitch: r.smp.prevSwitch,
			NextAt:     r.smp.nextAt,
			Timeline:   append(metrics.Timeline(nil), r.timeline...),
		}
		snap.Sampler = &ss
	}
	return snap, nil
}

// Warm is a prepared fork donor: the base configuration plus the snapshot
// taken at the fork point. Run may be called many times — including
// concurrently — each call restoring the snapshot into a fresh system.
type Warm struct {
	base Config // defaults applied
	fp   ForkPoint
	snap *Snapshot
}

// Prepare runs the shared prefix of base once, to the fork point, and
// captures the snapshot every subsequent Run forks from. The donor
// simulation is torn down before returning; only plain data survives.
func Prepare(base Config, fp ForkPoint) (*Warm, error) {
	if err := rejectOpenFork(base); err != nil {
		return nil, err
	}
	cfg := base.withDefaults()
	r, err := newRun(cfg, 0)
	if err != nil {
		return nil, err
	}
	defer r.k.Shutdown()
	r.armFirstSample()
	forkT := sim.Time(0)
	if !fp.Zero() {
		if err := r.sys.Submit(r.batch); err != nil {
			return nil, err
		}
		forkT, err = r.stepToFork(fp)
		if err != nil {
			return nil, err
		}
	}
	snap, err := r.snapshot(forkT)
	if err != nil {
		return nil, err
	}
	return &Warm{base: cfg, fp: fp, snap: snap}, nil
}

// Snapshot exposes the captured state, e.g. for shipping to a worker.
func (w *Warm) Snapshot() *Snapshot { return w.snap }

// ForkPoint reports the fork point the snapshot was taken at.
func (w *Warm) ForkPoint() ForkPoint { return w.fp }

// Run forks one divergent continuation from the snapshot. It reads the
// snapshot without mutating it, so concurrent calls are safe.
func (w *Warm) Run(div Divergence) (*metrics.Result, error) {
	return resume(w.base, w.snap, div)
}

// ResumeFromSnapshot restores a (possibly remote) snapshot against the base
// configuration it was taken from and runs one divergent continuation. When
// both sides are content-addressable the config hash is verified first.
func ResumeFromSnapshot(base Config, snap *Snapshot, div Divergence) (*metrics.Result, error) {
	if snap.Sched == nil {
		return nil, fmt.Errorf("core: snapshot without scheduler state")
	}
	if snap.ConfigHash != "" {
		if h, err := base.Hash(); err == nil && h != snap.ConfigHash {
			return nil, fmt.Errorf("core: snapshot config hash %.12s does not match base %.12s", snap.ConfigHash, h)
		}
	}
	return resume(base.withDefaults(), snap, div)
}

// resume constructs a fresh system under the merged configuration, installs
// the snapshot, re-enters the remaining jobs and runs to completion.
//
// Event re-arm order reproduces the donor's sequence-number order for
// same-instant ties: fault-plan events are armed at construction (as the
// donor armed them), then the sampler's tick when it is the never-fired
// first tick (the donor armed it before submission), then job arrivals,
// then the sampler's tick when the donor re-armed it mid-run.
func resume(base Config, snap *Snapshot, div Divergence) (*metrics.Result, error) {
	if err := rejectOpenFork(base); err != nil {
		return nil, err
	}
	cfg := div.apply(base)
	r, err := newRun(cfg, snap.T)
	if err != nil {
		return nil, err
	}
	defer r.k.Shutdown()
	if err := r.sys.RestoreState(snap.Sched); err != nil {
		return nil, err
	}
	if (r.smp != nil) != (snap.Sampler != nil) {
		return nil, fmt.Errorf("core: sampler state mismatch (snapshot %v, config %v)",
			snap.Sampler != nil, r.smp != nil)
	}
	firstTick := false
	if r.smp != nil {
		ss := snap.Sampler
		r.smp.prevLow, r.smp.prevHigh, r.smp.prevSwitch = ss.PrevLow, ss.PrevHigh, ss.PrevSwitch
		r.timeline = append(metrics.Timeline(nil), ss.Timeline...)
		firstTick = ss.NextAt == r.cfg.SampleEvery
		if firstTick {
			r.smp.armAt(ss.NextAt)
		}
	}
	if err := r.sys.SubmitResume(r.batch, snap.T); err != nil {
		return nil, err
	}
	if r.smp != nil && !firstTick && snap.Sampler.NextAt > 0 {
		r.smp.armAt(snap.Sampler.NextAt)
	}
	r.k.RestoreClock(snap.T, snap.EventsRun)
	return r.finish()
}
