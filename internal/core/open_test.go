package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arrival"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// openCfg is a small open-system run: 200 Poisson arrivals at ρ=0.8 on the
// paper's 16-node machine, time-shared 4-node partitions.
func openCfg() Config {
	ac := workload.DefaultAppCost()
	return Config{
		PartitionSize: 4,
		Topology:      topology.Mesh,
		Policy:        sched.TimeShared,
		Arch:          workload.Adaptive,
		AppCost:       &ac,
		Arrival: arrival.Spec{
			Kind: arrival.Poisson,
			Jobs: 200,
			Load: 0.8,
		},
	}
}

func TestOpenRunSmoke(t *testing.T) {
	res, err := Run(openCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Open == nil {
		t.Fatal("open run produced no OpenSummary")
	}
	if res.Open.Jobs != 200 {
		t.Fatalf("jobs = %d, want 200", res.Open.Jobs)
	}
	// Open runs keep per-job records empty: memory must stay flat in the
	// job count.
	if len(res.Jobs) != 0 {
		t.Fatalf("open run retained %d job records", len(res.Jobs))
	}
	if res.MeanResponse() <= 0 || res.Makespan <= 0 {
		t.Errorf("degenerate result: %v", res)
	}
	if p50, p99 := res.ResponsePercentile(50), res.ResponsePercentile(99); p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	if res.MaxResponse() < res.Open.P99 {
		t.Errorf("max %v < p99 %v", res.MaxResponse(), res.Open.P99)
	}
	if res.Open.ThroughputPerSec <= 0 {
		t.Errorf("throughput = %v", res.Open.ThroughputPerSec)
	}
	if len(res.Open.Queue) == 0 {
		t.Error("no queue series")
	}
}

func TestOpenRunDeterministic(t *testing.T) {
	a, err := Run(openCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(openCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse() != b.MeanResponse() || a.Makespan != b.Makespan ||
		a.Open.P99 != b.Open.P99 {
		t.Errorf("same-seed runs differ: %v vs %v", a.Open, b.Open)
	}
	cfg := openCfg()
	cfg.Seed = 7
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanResponse() == a.MeanResponse() && c.Makespan == a.Makespan {
		t.Error("different seeds produced identical open runs")
	}
}

func TestOpenPolicies(t *testing.T) {
	// Every zoo-relevant policy family must accept streamed arrivals.
	for _, pol := range []sched.Policy{sched.Static, sched.TimeShared, sched.RRProcess, sched.Gang, sched.DynamicSpace} {
		cfg := openCfg()
		cfg.Policy = pol
		cfg.Arrival.Jobs = 60
		if pol == sched.DynamicSpace {
			cfg.PartitionSize = 16
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Open.Jobs != 60 {
			t.Fatalf("%v: jobs = %d", pol, res.Open.Jobs)
		}
	}
}

func TestOpenRejectsBatchAndFault(t *testing.T) {
	cfg := openCfg()
	cfg.Batch = smallCfg().Batch
	_, err := Run(cfg)
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "arrival" {
		t.Fatalf("batch+arrival: err = %v, want ConfigError{arrival}", err)
	}

	cfg = openCfg()
	cfg.Fault = &fault.Config{NodeMTBF: sim.Second}
	_, err = Run(cfg)
	if !errors.As(err, &ce) || ce.Field != "fault" {
		t.Fatalf("fault+arrival: err = %v, want ConfigError{fault}", err)
	}
}

func TestOpenInvalidSpecFieldAddressed(t *testing.T) {
	cfg := openCfg()
	cfg.Arrival.Load = 0 // defaults won't fire: MeanInterarrival set below
	cfg.Arrival.MeanInterarrival = -1
	_, err := Run(cfg)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want ConfigError", err)
	}
	if ce.Field != "arrival.mean_interarrival_us" {
		t.Errorf("field = %q", ce.Field)
	}
	var se *arrival.SpecError
	if !errors.As(err, &se) {
		t.Error("SpecError not preserved in chain")
	}
}

func TestOpenForkRejected(t *testing.T) {
	cfg := openCfg()
	fp := ForkPoint{WarmJobs: 10}
	wantRejected := func(what string, err error) {
		t.Helper()
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "arrival" {
			t.Errorf("%s: err = %v, want ConfigError{arrival}", what, err)
		}
	}
	_, err := Prepare(cfg, fp)
	wantRejected("Prepare", err)
	_, err = RunForked(cfg, fp, Divergence{})
	wantRejected("RunForked", err)
	_, err = ResumeFromSnapshot(cfg, &Snapshot{Sched: &sched.State{}}, Divergence{})
	wantRejected("ResumeFromSnapshot", err)
	// Two configs differing in (or sharing a non-zero) Arrival are never
	// fork-divergible.
	if _, err := DivergenceBetween(cfg, cfg); err == nil {
		t.Error("DivergenceBetween accepted an open-arrival pair")
	}
	// A zero fork point is a plain run and stays allowed.
	if _, err := RunForked(cfg, ForkPoint{}, Divergence{}); err != nil {
		t.Errorf("zero fork point should run plainly: %v", err)
	}
}

func TestOpenTraceRunAndCleanFailure(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.jsonl")
	if err := os.WriteFile(good, []byte(
		`{"at_us": 0, "work_us": 200000}
{"at_us": 10000, "work_us": 200000, "width": 2}
{"at_us": 20000, "work_us": 800000, "class": "large"}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := openCfg()
	cfg.Arrival = arrival.Spec{Kind: arrival.Trace, TracePath: good}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Open.Jobs != 3 {
		t.Fatalf("trace replay jobs = %d, want 3", res.Open.Jobs)
	}

	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(
		`{"at_us": 0, "work_us": 200000}
{"at_us": -5, "work_us": 200000}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Arrival.TracePath = bad
	_, err = Run(cfg)
	var te *arrival.TraceError
	if !errors.As(err, &te) || te.Line != 2 {
		t.Fatalf("malformed trace: err = %v, want TraceError line 2", err)
	}

	cfg.Arrival.TracePath = filepath.Join(dir, "missing.jsonl")
	if _, err := Run(cfg); err == nil {
		t.Error("missing trace file should fail")
	}
}

func TestOpenTimelineBounded(t *testing.T) {
	cfg := openCfg()
	cfg.SampleEvery = 200 * sim.Microsecond // thousands of raw samples
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	if len(res.Timeline) > openTimelineCap {
		t.Fatalf("open timeline grew to %d samples (cap %d)", len(res.Timeline), openTimelineCap)
	}
	// Decimation must preserve time ordering.
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].At < res.Timeline[i-1].At {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
}

func TestOpenHashDistinctAndStable(t *testing.T) {
	closed := Config{}.MustHash()
	open := openCfg()
	open.Batch = nil
	h1, err := open.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == closed {
		t.Error("open config hashes as the closed default")
	}
	// Spelling out the defaults must not move the address.
	canon := open
	canon.Arrival = canon.Arrival.WithDefaults()
	if h2 := canon.MustHash(); h2 != h1 {
		t.Errorf("defaults not canonical: %s vs %s", h1, h2)
	}
	// Any arrival knob moves it.
	moved := open
	moved.Arrival.Load = 0.9
	if moved.MustHash() == h1 {
		t.Error("load change did not move the hash")
	}
	// Trace configs are not content-addressable.
	tr := open
	tr.Arrival = arrival.Spec{Kind: arrival.Trace, TracePath: "x.jsonl"}
	if _, err := tr.Hash(); err == nil {
		t.Error("trace config should not hash")
	}
}
