package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/arrival"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats/stream"
)

// ConfigError marks a failure as a configuration problem — the request was
// wrong, not the system — and names the Config field at fault, so API
// layers can answer 400 with a field-addressed body instead of 500. The
// message passes through unchanged (Error returns the wrapped error's
// text verbatim), keeping every historical error string intact.
type ConfigError struct {
	// Field names the offending field in wire spelling ("policy",
	// "arrival.load", "quantum_us").
	Field string
	Err   error
}

func (e *ConfigError) Error() string { return e.Err.Error() }
func (e *ConfigError) Unwrap() error { return e.Err }

// wrapConfigErr classifies a construction-time error as a ConfigError,
// inferring the field from typed errors where possible and from the
// message otherwise. Already-classified errors pass through.
func wrapConfigErr(err error) error {
	if err == nil {
		return nil
	}
	var ce *ConfigError
	if errors.As(err, &ce) {
		return err
	}
	var se *arrival.SpecError
	if errors.As(err, &se) {
		return &ConfigError{Field: "arrival." + se.Field, Err: err}
	}
	var upe *sched.UnknownPolicyError
	if errors.As(err, &upe) {
		return &ConfigError{Field: "policy", Err: err}
	}
	field := "config"
	msg := err.Error()
	switch {
	case strings.Contains(msg, "fault"), strings.Contains(msg, "checkpoint"),
		strings.Contains(msg, "link faults"), strings.Contains(msg, "drops"):
		field = "fault"
	case strings.Contains(msg, "quantum"):
		field = "quantum_us"
	case strings.Contains(msg, "partition"):
		field = "partition"
	case strings.Contains(msg, "arrival"), strings.Contains(msg, "trace"):
		field = "arrival"
	}
	return &ConfigError{Field: field, Err: err}
}

// runOpen executes an open-system arrival run: jobs stream in from the
// configured source at simulation time, every completion folds into
// bounded-memory statistics, and the result carries an OpenSummary instead
// of per-job records. Memory is flat in the job count — one pending
// arrival, one in-flight digest, a fixed-budget queue series.
func runOpen(cfg Config) (*metrics.Result, error) {
	if err := cfg.Arrival.Validate(); err != nil {
		return nil, wrapConfigErr(err)
	}
	if cfg.Batch != nil {
		return nil, &ConfigError{Field: "arrival",
			Err: fmt.Errorf("core: open-system arrivals and an explicit batch are mutually exclusive")}
	}
	if cfg.Fault != nil {
		return nil, &ConfigError{Field: "fault",
			Err: fmt.Errorf("core: fault injection is not supported with open-system arrivals")}
	}
	r, err := newRun(cfg, 0)
	if err != nil {
		return nil, err
	}
	defer r.k.Shutdown()
	r.armFirstSample()
	src, err := arrival.NewSource(cfg.Arrival, cfg.Seed, cfg.Processors, *cfg.AppCost)
	if err != nil {
		return nil, wrapConfigErr(err)
	}
	defer src.Close()
	col := newOpenCollector(r.k, r.sys, cfg.Arrival, cfg.Processors)
	if err := r.sys.SubmitStream(src, col.complete); err != nil {
		return nil, err
	}
	res, err := r.finish()
	if err != nil {
		return nil, err
	}
	// A trace replay that hit a malformed record stopped injecting early;
	// the jobs already in flight completed, but the run is not the trace.
	if serr := src.Err(); serr != nil {
		return nil, serr
	}
	res.Makespan = col.lastDone
	res.Open = col.summary()
	return res, nil
}

// openCollector streams completion records into the run's digests: exact
// response-time moments plus an ε-quantile sketch, a time-weighted queue
// integral, and a fixed-budget windowed queue series.
type openCollector struct {
	k        *sim.Kernel
	sys      *sched.System
	digest   *stream.Digest
	win      *stream.Windowed
	jobs     int64
	lastDone sim.Time
	prevT    sim.Time
	area     float64 // ∫ queue(t) dt, sampled at completion boundaries
	peak     int
}

func newOpenCollector(k *sim.Kernel, sys *sched.System, spec arrival.Spec, procs int) *openCollector {
	// Seed the queue series' window width from the expected run length so
	// most runs never need to double: mean interarrival × jobs / budget.
	width := int64(sim.Second)
	if inter := spec.Interarrival(procs); inter > 0 && spec.Jobs > 0 {
		if w := int64(inter) * spec.Jobs / stream.DefaultMaxWindows; w > 0 {
			width = w
		}
	}
	return &openCollector{
		k:      k,
		sys:    sys,
		digest: stream.NewDigest(0),
		win:    stream.NewWindowed(width, 0),
	}
}

// complete folds one finished job in. Completions arrive in simulation
// time order, so lastDone tracks the makespan.
func (c *openCollector) complete(rec metrics.JobRecord) {
	now := rec.Completed
	q := c.sys.Queued()
	c.area += float64(q) * float64(now-c.prevT)
	c.prevT = now
	if q > c.peak {
		c.peak = q
	}
	c.win.Add(int64(now), float64(q))
	c.digest.Add(float64(rec.Completed - rec.Arrival))
	c.jobs++
	c.lastDone = now
}

func (c *openCollector) summary() *metrics.OpenSummary {
	o := &metrics.OpenSummary{
		Jobs:         c.jobs,
		MeanResponse: sim.Time(c.digest.Mean()),
		P50:          sim.Time(c.digest.Quantile(0.50)),
		P95:          sim.Time(c.digest.Quantile(0.95)),
		P99:          sim.Time(c.digest.Quantile(0.99)),
		MaxResponse:  sim.Time(c.digest.Max()),
		PeakQueue:    c.peak,
		Digest:       c.digest,
	}
	if c.lastDone > 0 {
		o.ThroughputPerSec = float64(c.jobs) / c.lastDone.Seconds()
		o.MeanQueue = c.area / float64(c.lastDone)
	}
	for i := 0; i < c.win.Len(); i++ {
		end, _, mean := c.win.Window(i)
		o.Queue = append(o.Queue, metrics.QueueWindow{End: sim.Time(end), Mean: mean})
	}
	return o
}
