package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// goldenZeroHash pins the hash of the zero Config. A fixed constant is the
// cross-process-run guarantee: if the hash ever depended on process state
// (map order, addresses, defaults drift) or the byte layout changed without
// a hashVersion bump, this fails.
const goldenZeroHash = "86ca14d5c71693f08cfb62cdb05b02a96e5e46cdeef15a2ad4e062ec9bac87b9"

func TestHashGoldenZeroConfig(t *testing.T) {
	got := Config{}.MustHash()
	if got != goldenZeroHash {
		t.Fatalf("zero Config hash changed:\n got %s\nwant %s\n(bump hashVersion if the layout changed intentionally)", got, goldenZeroHash)
	}
}

// TestHashCanonicalization: a zero field and its spelled-out default are the
// same content.
func TestHashCanonicalization(t *testing.T) {
	cm := machine.DefaultCostModel()
	ac := workload.DefaultAppCost()
	explicit := Config{
		Processors:    16,
		MemoryBytes:   Config{}.withDefaults().MemoryBytes,
		PartitionSize: 16,
		Cost:          &cm,
		AppCost:       &ac,
	}
	if explicit.MustHash() != (Config{}).MustHash() {
		t.Error("explicit defaults hash differently from the zero config")
	}
	// Equal configs hash equal on repeated computation.
	cfg := Config{PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared, Seed: 7}
	if cfg.MustHash() != cfg.MustHash() {
		t.Error("hash is not deterministic for the same config")
	}
}

// TestHashFieldSensitivity: flipping any single hashable field — including
// every cost-model, app-cost and fault field — changes the hash, and all
// the flipped hashes are mutually distinct.
func TestHashFieldSensitivity(t *testing.T) {
	base := Config{
		Fault: &fault.Config{NodeMTBF: sim.Second, Horizon: 10 * sim.Second},
	}
	flips := map[string]func(*Config){
		"Processors":    func(c *Config) { c.Processors = 32 },
		"MemoryBytes":   func(c *Config) { c.MemoryBytes = 1 << 20 },
		"PartitionSize": func(c *Config) { c.PartitionSize = 4 },
		"Topology":      func(c *Config) { c.Topology = topology.Mesh },
		"Policy":        func(c *Config) { c.Policy = sched.Gang },
		"App":           func(c *Config) { c.App = Sort },
		"Arch":          func(c *Config) { c.Arch = workload.Adaptive },
		"Mode":          func(c *Config) { c.Mode = 1 },
		"BasicQuantum":  func(c *Config) { c.BasicQuantum = 5 * sim.Millisecond },
		"Order":         func(c *Config) { c.Order = LargestFirst },
		"Verify":        func(c *Config) { c.Verify = true },
		"Seed":          func(c *Config) { c.Seed = 42 },
		"MaxResident":   func(c *Config) { c.MaxResident = 3 },
		"SampleEvery":   func(c *Config) { c.SampleEvery = sim.Millisecond },

		"Cost.Quantum":           func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.Quantum++ }) },
		"Cost.LinkPerByteNS":     func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.LinkPerByteNS++ }) },
		"Cost.LinkLatency":       func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.LinkLatency++ }) },
		"Cost.RouterHopOverhead": func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.RouterHopOverhead++ }) },
		"Cost.SendOverhead":      func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.SendOverhead++ }) },
		"Cost.RecvOverhead":      func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.RecvOverhead++ }) },
		"Cost.JobSwitch":         func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.JobSwitch++ }) },
		"Cost.SpawnOverhead":     func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.SpawnOverhead++ }) },
		"Cost.FlitBytes":         func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.FlitBytes++ }) },
		"Cost.MsgHeaderBytes":    func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.MsgHeaderBytes++ }) },
		"Cost.HostPerByteNS":     func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.HostPerByteNS++ }) },
		"Cost.HostJobFixed":      func(c *Config) { c.Cost = costFlip(func(m *machine.CostModel) { m.HostJobFixed++ }) },

		"AppCost.MulAddNS": func(c *Config) { c.AppCost = appCostFlip(func(a *workload.AppCost) { a.MulAddNS++ }) },
		"AppCost.CmpNS":    func(c *Config) { c.AppCost = appCostFlip(func(a *workload.AppCost) { a.CmpNS++ }) },
		"AppCost.MergeNS":  func(c *Config) { c.AppCost = appCostFlip(func(a *workload.AppCost) { a.MergeNS++ }) },
		"AppCost.Setup":    func(c *Config) { c.AppCost = appCostFlip(func(a *workload.AppCost) { a.Setup++ }) },

		"Fault=nil":                func(c *Config) { c.Fault = nil },
		"Fault.Seed":               func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.Seed++ }) },
		"Fault.NodeMTBF":           func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.NodeMTBF++ }) },
		"Fault.NodeMTTR":           func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.NodeMTTR++ }) },
		"Fault.LinkMTBF":           func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.LinkMTBF++ }) },
		"Fault.LinkMTTR":           func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.LinkMTTR++ }) },
		"Fault.DropProb":           func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.DropProb = 0.01 }) },
		"Fault.Horizon":            func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.Horizon++ }) },
		"Fault.RetryTimeout":       func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.RetryTimeout++ }) },
		"Fault.RetryBudget":        func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.RetryBudget++ }) },
		"Fault.CheckpointInterval": func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.CheckpointInterval++ }) },
		"Fault.CheckpointCost":     func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.CheckpointCost++ }) },
		"Fault.RestartBudget":      func(c *Config) { c.Fault = faultFlip(*c.Fault, func(f *fault.Config) { f.RestartBudget++ }) },
	}

	baseHash := base.MustHash()
	seen := map[string]string{baseHash: "base"}
	for name, flip := range flips {
		cfg := base
		flip(&cfg)
		h := cfg.MustHash()
		if h == baseHash {
			t.Errorf("flipping %s did not change the hash", name)
			continue
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("flips %s and %s collide", name, prev)
		}
		seen[h] = name
	}
}

func costFlip(mut func(*machine.CostModel)) *machine.CostModel {
	cm := machine.DefaultCostModel()
	mut(&cm)
	return &cm
}

func appCostFlip(mut func(*workload.AppCost)) *workload.AppCost {
	ac := workload.DefaultAppCost()
	mut(&ac)
	return &ac
}

func faultFlip(f fault.Config, mut func(*fault.Config)) *fault.Config {
	mut(&f)
	return &f
}

// TestHashRejectsRuntimeFields: Batch and Tracer make a config
// non-addressable.
func TestHashRejectsRuntimeFields(t *testing.T) {
	if _, err := (Config{Batch: workload.Batch{}}).Hash(); err == nil {
		t.Error("config with Batch hashed without error")
	}
	if _, err := (Config{Tracer: &trace.Log{}}).Hash(); err == nil {
		t.Error("config with Tracer hashed without error")
	}
}

// TestHashMatchesRunEquivalence: two configs that hash equal produce
// byte-identical results; a config that hashes different may legitimately
// differ. This ties the cache key to what it protects.
func TestHashMatchesRunEquivalence(t *testing.T) {
	a := Config{PartitionSize: 4, Topology: topology.Mesh, Policy: sched.TimeShared}
	b := a
	b.Processors = 16 // the default, spelled out
	if a.MustHash() != b.MustHash() {
		t.Fatal("equivalent configs hash differently")
	}
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.MeanResponse() != rb.MeanResponse() || ra.Makespan != rb.Makespan {
		t.Error("configs with equal hashes produced different results")
	}
}
