// Package fault implements a deterministic fault injector for the simulated
// multicomputer: transient and permanent node failures, link failures, and
// message drops, plus the configuration knobs for the recovery machinery
// (message retry, checkpoint/restart) built on top of it.
//
// Determinism is the design constraint. The injector draws every random
// number from its own generator, seeded from the configuration, in a fixed
// order: the whole fault schedule (the "plan") is generated up front at
// construction, before the simulation runs, so the same seed and
// configuration always produce the same failures at the same times no
// matter what the workload does. Per-message drop decisions use a second
// independent stream, drawn in kernel event order (also deterministic).
// A zero-valued Config injects nothing and draws nothing, so attaching an
// idle injector reproduces fault-free results exactly.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config describes the fault environment and the recovery knobs of one run.
// The zero value disables everything.
type Config struct {
	// Seed drives the injector's private random streams. Runs differing only
	// in Seed see different fault schedules.
	Seed int64

	// NodeMTBF is the mean up-time between failures of each node (exponential
	// time-to-failure, drawn independently per node). Zero disables node
	// faults. NodeMTTR is the mean repair time; zero with NodeMTBF set makes
	// every node failure permanent.
	NodeMTBF, NodeMTTR sim.Time

	// LinkMTBF / LinkMTTR are the same distributions for physical links.
	LinkMTBF, LinkMTTR sim.Time

	// DropProb is the probability that a message hop silently loses the
	// message (a transient link error). Zero disables drops.
	DropProb float64

	// Horizon bounds the fault plan: no failures are scheduled after it.
	// Required (>0) when NodeMTBF or LinkMTBF is set.
	Horizon sim.Time

	// RetryTimeout enables reliable messaging when positive: a message not
	// delivered within the timeout is retransmitted with exponential backoff
	// (timeout, 2x, 4x, ...). RetryBudget bounds the retransmissions per
	// message (0 defaults to 4); when exhausted, a delivery failure is
	// signalled to the scheduler.
	RetryTimeout sim.Time
	RetryBudget  int

	// CheckpointInterval enables job-level coordinated checkpoints when
	// positive; every interval, each running job snapshots its per-rank
	// compute progress and CheckpointCost is charged to every node CPU of
	// its partition at high priority. A restarted job replays work up to
	// its last checkpoint instantly and loses only the remainder.
	CheckpointInterval sim.Time
	CheckpointCost     sim.Time

	// RestartBudget caps how many times one job may be killed and restarted
	// before the run is abandoned with an error (a permanently broken
	// configuration would otherwise retry forever). Zero defaults to 32.
	RestartBudget int
}

// Active reports whether the configuration injects any faults at all.
func (c Config) Active() bool {
	return c.NodeMTBF > 0 || c.LinkMTBF > 0 || c.DropProb > 0
}

// Reliable reports whether message timeout-and-retry is enabled.
func (c Config) Reliable() bool { return c.RetryTimeout > 0 }

// Checkpointing reports whether periodic checkpoints are enabled.
func (c Config) Checkpointing() bool { return c.CheckpointInterval > 0 }

// RetryCap returns the per-message retransmission budget with its default.
func (c Config) RetryCap() int {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 4
}

// RestartCap returns the per-job restart budget with its default.
func (c Config) RestartCap() int {
	if c.RestartBudget > 0 {
		return c.RestartBudget
	}
	return 32
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	for _, t := range []struct {
		name string
		v    sim.Time
	}{
		{"NodeMTBF", c.NodeMTBF}, {"NodeMTTR", c.NodeMTTR},
		{"LinkMTBF", c.LinkMTBF}, {"LinkMTTR", c.LinkMTTR},
		{"Horizon", c.Horizon}, {"RetryTimeout", c.RetryTimeout},
		{"CheckpointInterval", c.CheckpointInterval}, {"CheckpointCost", c.CheckpointCost},
	} {
		if t.v < 0 {
			return fmt.Errorf("fault: negative %s %v", t.name, t.v)
		}
	}
	if c.DropProb < 0 || c.DropProb > 1 {
		return fmt.Errorf("fault: drop probability %v outside [0,1]", c.DropProb)
	}
	if (c.NodeMTBF > 0 || c.LinkMTBF > 0) && c.Horizon <= 0 {
		return fmt.Errorf("fault: MTBF faults need a positive Horizon")
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("fault: negative retry budget %d", c.RetryBudget)
	}
	if c.RestartBudget < 0 {
		return fmt.Errorf("fault: negative restart budget %d", c.RestartBudget)
	}
	if c.CheckpointCost > 0 && c.CheckpointInterval <= 0 {
		return fmt.Errorf("fault: checkpoint cost without an interval")
	}
	return nil
}

// EventKind labels one planned fault event.
type EventKind int

const (
	// NodeDown takes a node out of service.
	NodeDown EventKind = iota
	// NodeUp returns a node to service.
	NodeUp
	// LinkDown takes a physical link (both directions) out of service.
	LinkDown
	// LinkUp returns a link to service.
	LinkUp
)

func (k EventKind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one planned fault. Node events carry Node; link events carry the
// global endpoint pair A < B. Permanent marks a down event with no matching
// up event in the plan.
type Event struct {
	At        sim.Time
	Kind      EventKind
	Node      int
	A, B      int
	Permanent bool
}

func (e Event) String() string {
	switch e.Kind {
	case NodeDown, NodeUp:
		return fmt.Sprintf("%s %s node %d", e.At, e.Kind, e.Node)
	default:
		return fmt.Sprintf("%s %s link %d-%d", e.At, e.Kind, e.A, e.B)
	}
}

// Handlers receive applied fault events. The scheduler installs these to
// run its repair logic; nil handlers are skipped.
type Handlers struct {
	NodeDown func(node int, permanent bool)
	NodeUp   func(node int)
	LinkDown func(a, b int, permanent bool)
	LinkUp   func(a, b int)
}

// Injector owns a pre-generated fault plan plus the per-message drop stream.
type Injector struct {
	cfg       Config
	plan      []Event
	dropRNG   *rand.Rand
	dropDraws int64
	stats     metrics.FaultStats
}

// NewInjector generates the fault plan for a machine of the given node count
// and physical link set (global endpoint pairs; order must be deterministic,
// e.g. sorted). The plan depends only on cfg, nodes, and links.
func NewInjector(cfg Config, nodes int, links [][2]int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("fault: machine with %d nodes", nodes)
	}
	inj := &Injector{
		cfg:     cfg,
		dropRNG: rand.New(rand.NewSource(mix(cfg.Seed, 0x6a09e667f3bcc909))),
	}
	planRNG := rand.New(rand.NewSource(mix(cfg.Seed, 0xbb67ae8584caa73b)))
	if cfg.NodeMTBF > 0 {
		for n := 0; n < nodes; n++ {
			n := n
			inj.planElement(planRNG, cfg.NodeMTBF, cfg.NodeMTTR, func(at sim.Time, isDown, perm bool) {
				k := NodeUp
				if isDown {
					k = NodeDown
				}
				inj.plan = append(inj.plan, Event{At: at, Kind: k, Node: n, Permanent: perm})
			})
		}
	}
	if cfg.LinkMTBF > 0 {
		for _, l := range links {
			a, b := l[0], l[1]
			if a > b {
				a, b = b, a
			}
			inj.planElement(planRNG, cfg.LinkMTBF, cfg.LinkMTTR, func(at sim.Time, isDown, perm bool) {
				k := LinkUp
				if isDown {
					k = LinkDown
				}
				inj.plan = append(inj.plan, Event{At: at, Kind: k, A: a, B: b, Permanent: perm})
			})
		}
	}
	return inj, nil
}

// planElement draws one element's alternating fail/repair sequence up to the
// horizon.
func (inj *Injector) planElement(rng *rand.Rand, mtbf, mttr sim.Time, emit func(at sim.Time, isDown, perm bool)) {
	t := sim.Time(0)
	for {
		t += exponential(rng, mtbf)
		if t > inj.cfg.Horizon {
			return
		}
		if mttr <= 0 {
			emit(t, true, true)
			return
		}
		emit(t, true, false)
		t += exponential(rng, mttr) // >= 1 tick, so down and up never tie
		emit(t, false, false)
	}
}

// exponential draws an exponential variate with the given mean, >= 1 tick.
func exponential(rng *rand.Rand, mean sim.Time) sim.Time {
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := sim.Time(-float64(mean) * math.Log(u))
	if d < 1 {
		d = 1
	}
	return d
}

// Plan returns the generated fault schedule in planning order (per-element
// chronological; use for inspection and tests).
func (inj *Injector) Plan() []Event { return inj.plan }

// Schedule arms every planned event on the kernel. Call once, before Run.
// Counter updates happen when events fire, so Stats reflects applied faults.
func (inj *Injector) Schedule(k *sim.Kernel, h Handlers) {
	inj.ScheduleFrom(k, h, 0)
}

// ScheduleFrom arms only the planned events strictly after the given time,
// in plan order. It is the warm-start resume path: a restored simulation
// whose clock will be moved to `after` must not re-arm events the donor run
// already fired (their times are in the past and would drag the clock
// backwards). Plan times are always >= 1, so ScheduleFrom(k, h, 0) arms the
// whole plan and is exactly Schedule.
func (inj *Injector) ScheduleFrom(k *sim.Kernel, h Handlers, after sim.Time) {
	for _, ev := range inj.plan {
		ev := ev
		if ev.At <= after {
			continue
		}
		k.AtFunc(ev.At, func() {
			switch ev.Kind {
			case NodeDown:
				inj.stats.NodesFailed++
				if h.NodeDown != nil {
					h.NodeDown(ev.Node, ev.Permanent)
				}
			case NodeUp:
				inj.stats.NodesRepaired++
				if h.NodeUp != nil {
					h.NodeUp(ev.Node)
				}
			case LinkDown:
				inj.stats.LinksFailed++
				if h.LinkDown != nil {
					h.LinkDown(ev.A, ev.B, ev.Permanent)
				}
			case LinkUp:
				inj.stats.LinksRepaired++
				if h.LinkUp != nil {
					h.LinkUp(ev.A, ev.B)
				}
			}
		})
	}
}

// DropMessage decides whether one message hop loses its message. It draws
// from the drop stream only when drops are configured, so a zero DropProb
// injector is inert.
func (inj *Injector) DropMessage() bool {
	if inj.cfg.DropProb <= 0 {
		return false
	}
	inj.dropDraws++
	return inj.dropRNG.Float64() < inj.cfg.DropProb
}

// State is the injector's serializable mid-run state: the applied-fault
// counters and the position of the per-message drop stream. The plan itself
// is not part of the state — it is regenerated bit-identically from the
// configuration at construction.
type State struct {
	Stats     metrics.FaultStats `json:"stats"`
	DropDraws int64              `json:"drop_draws"`
}

// SnapshotState captures the injector's state at a quiescent instant.
func (inj *Injector) SnapshotState() State {
	return State{Stats: inj.stats, DropDraws: inj.dropDraws}
}

// RestoreState positions a freshly constructed injector where the donor
// stood: counters are installed directly and the drop stream is replayed by
// burning the donor's draw count, so the next drop decision is the same
// number the donor would have drawn next.
func (inj *Injector) RestoreState(st State) {
	inj.stats = st.Stats
	for i := int64(0); i < st.DropDraws; i++ {
		inj.dropRNG.Float64()
	}
	inj.dropDraws = st.DropDraws
}

// Config returns the injector's configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Stats returns the applied-fault counters so far.
func (inj *Injector) Stats() metrics.FaultStats { return inj.stats }

// mix derives a sub-stream seed from the user seed (splitmix64 finalizer).
func mix(seed int64, salt uint64) int64 {
	z := uint64(seed) + salt + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
