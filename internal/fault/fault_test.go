package fault

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"node faults with horizon", Config{NodeMTBF: 1000, NodeMTTR: 100, Horizon: 10000}, true},
		{"node faults without horizon", Config{NodeMTBF: 1000}, false},
		{"link faults without horizon", Config{LinkMTBF: 1000}, false},
		{"negative mtbf", Config{NodeMTBF: -1, Horizon: 100}, false},
		{"drop prob too big", Config{DropProb: 1.5}, false},
		{"drop prob negative", Config{DropProb: -0.1}, false},
		{"ckpt cost without interval", Config{CheckpointCost: 5}, false},
		{"ckpt ok", Config{CheckpointInterval: 1000, CheckpointCost: 5}, true},
		{"negative retry budget", Config{RetryBudget: -1}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, NodeMTBF: 5000, NodeMTTR: 500, LinkMTBF: 8000, LinkMTTR: 300, Horizon: 100000}
	links := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	a, err := NewInjector(cfg, 4, links)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(cfg, 4, links)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Plan()) == 0 {
		t.Fatal("plan is empty; expected failures within horizon")
	}
	if !reflect.DeepEqual(a.Plan(), b.Plan()) {
		t.Error("same seed and config produced different plans")
	}
	c, err := NewInjector(Config{Seed: 43, NodeMTBF: 5000, NodeMTTR: 500, LinkMTBF: 8000, LinkMTTR: 300, Horizon: 100000}, 4, links)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Plan(), c.Plan()) {
		t.Error("different seeds produced identical plans")
	}
}

func TestPlanShape(t *testing.T) {
	cfg := Config{Seed: 7, NodeMTBF: 2000, NodeMTTR: 100, Horizon: 50000}
	inj, err := NewInjector(cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Per node: alternating down/up, strictly increasing times, within horizon.
	last := map[int]sim.Time{}
	wantDown := map[int]bool{0: true, 1: true}
	for _, ev := range inj.Plan() {
		if ev.Kind != NodeDown && ev.Kind != NodeUp {
			t.Fatalf("unexpected link event %v with no links", ev)
		}
		if ev.Kind == NodeDown && ev.At > cfg.Horizon {
			t.Errorf("failure %v beyond horizon", ev)
		}
		if (ev.Kind == NodeDown) != wantDown[ev.Node] {
			t.Errorf("event %v out of down/up alternation", ev)
		}
		wantDown[ev.Node] = ev.Kind != NodeDown
		if ev.At <= last[ev.Node] {
			t.Errorf("event %v not after previous %v", ev, last[ev.Node])
		}
		last[ev.Node] = ev.At
	}
}

func TestPermanentFailures(t *testing.T) {
	cfg := Config{Seed: 3, NodeMTBF: 1000, NodeMTTR: 0, Horizon: 1000000}
	inj, err := NewInjector(cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	downs := 0
	for _, ev := range inj.Plan() {
		if ev.Kind != NodeDown || !ev.Permanent {
			t.Errorf("expected only permanent node-down events, got %v", ev)
		}
		downs++
	}
	if downs != 3 {
		t.Errorf("got %d permanent failures for 3 nodes, want 3", downs)
	}
}

func TestScheduleFiresHandlers(t *testing.T) {
	cfg := Config{Seed: 11, NodeMTBF: 3000, NodeMTTR: 200, Horizon: 30000}
	inj, err := NewInjector(cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	defer k.Shutdown()
	var downs, ups int
	inj.Schedule(k, Handlers{
		NodeDown: func(n int, perm bool) { downs++ },
		NodeUp:   func(n int) { ups++ },
	})
	k.Run()
	if downs == 0 || downs != ups {
		t.Errorf("downs=%d ups=%d, want equal and nonzero", downs, ups)
	}
	st := inj.Stats()
	if st.NodesFailed != int64(downs) || st.NodesRepaired != int64(ups) {
		t.Errorf("stats %+v disagree with handler counts %d/%d", st, downs, ups)
	}
}

func TestDropStream(t *testing.T) {
	inj, err := NewInjector(Config{Seed: 5}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if inj.DropMessage() {
			t.Fatal("zero drop probability dropped a message")
		}
	}
	a, _ := NewInjector(Config{Seed: 5, DropProb: 0.5}, 1, nil)
	b, _ := NewInjector(Config{Seed: 5, DropProb: 0.5}, 1, nil)
	var dropped int
	for i := 0; i < 1000; i++ {
		da, db := a.DropMessage(), b.DropMessage()
		if da != db {
			t.Fatal("drop stream is not deterministic")
		}
		if da {
			dropped++
		}
	}
	if dropped < 400 || dropped > 600 {
		t.Errorf("dropped %d of 1000 at p=0.5; stream looks biased", dropped)
	}
}
