// Package mem models the per-node memory management unit of the simulated
// multicomputer.
//
// Every T805 node in the paper's system has 4 MB of local memory managed by a
// software MMU. The MMU serves two demand streams: application data (matrix
// slices, sub-arrays) and mailbox buffers for the store-and-forward message
// system. When memory is tight an allocation blocks until enough is freed —
// the paper points out that "a message can suffer a delay if an intermediate
// processor delays allocation of memory for the mailbox", and that delay is
// one of the main reasons time-sharing loses to space-sharing at high
// multiprogramming levels. This package reproduces that mechanism and keeps
// the statistics needed to show it.
package mem

import (
	"fmt"

	"repro/internal/sim"
)

// NodeMemory is the local memory of one T805 node (4 MB), the paper's
// hardware configuration.
const NodeMemory int64 = 4 << 20

// Class labels an allocation for accounting purposes.
type Class int

const (
	// ClassData is long-lived application data (program arrays).
	ClassData Class = iota
	// ClassBuffer is a transient store-and-forward message buffer.
	ClassBuffer
)

func (c Class) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassBuffer:
		return "buffer"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Stats aggregates what the MMU observed during a run.
type Stats struct {
	// Peak is the maximum number of bytes simultaneously allocated.
	Peak int64
	// Allocs and Frees count operations.
	Allocs, Frees int64
	// BlockedAllocs counts allocations that had to wait for memory.
	BlockedAllocs int64
	// BlockedTime accumulates simulated time spent waiting, over all waiters.
	BlockedTime sim.Time
	// BytesData / BytesBuffer classify total bytes allocated.
	BytesData, BytesBuffer int64
}

// waiter is a parked allocation request. Its grant happens inside the MMU
// (admit) so FIFO order cannot be subverted while the wake event is in
// flight; the waiting process only records its blocked time on resume.
type waiter struct {
	proc    *sim.Proc
	bytes   int64
	class   Class
	since   sim.Time
	granted bool
}

// MMU is a node's memory allocator. Allocation is first-come-first-served:
// a large request at the head of the queue blocks later small ones, which is
// how a FIFO buffer-pool allocator behaves and is the conservative choice
// for congestion effects.
type MMU struct {
	k        *sim.Kernel
	node     int
	capacity int64
	used     int64
	waiters  []*waiter
	stats    Stats
}

// New creates an MMU with the given capacity in bytes (use NodeMemory for
// the paper's configuration).
func New(k *sim.Kernel, node int, capacity int64) *MMU {
	if capacity <= 0 {
		panic(fmt.Sprintf("mem: node %d capacity %d", node, capacity))
	}
	return &MMU{k: k, node: node, capacity: capacity}
}

// Capacity returns the total memory in bytes.
func (m *MMU) Capacity() int64 { return m.capacity }

// Used returns the bytes currently allocated (including reservations made
// for woken-but-not-yet-resumed waiters).
func (m *MMU) Used() int64 { return m.used }

// Free returns the bytes currently available.
func (m *MMU) Free() int64 { return m.capacity - m.used }

// Waiting reports the number of allocation requests currently blocked.
func (m *MMU) Waiting() int { return len(m.waiters) }

// PendingBytes reports the total bytes requested by blocked allocations.
func (m *MMU) PendingBytes() int64 {
	var sum int64
	for _, w := range m.waiters {
		sum += w.bytes
	}
	return sum
}

// OldestWaiter describes the queue-head request for diagnostics; empty when
// nothing waits.
func (m *MMU) OldestWaiter() string {
	if len(m.waiters) == 0 {
		return ""
	}
	w := m.waiters[0]
	return fmt.Sprintf("%s wants %dB (waiting since %s)", w.proc.Name(), w.bytes, w.since)
}

// Stats returns a copy of the accumulated statistics.
func (m *MMU) Stats() Stats { return m.stats }

// RestoreStats installs a donor MMU's accumulated statistics. Warm restores
// call it at quiescent instants only: nothing may be allocated or waiting,
// because used bytes and queued requests are transient state a snapshot
// deliberately excludes.
func (m *MMU) RestoreStats(st Stats) {
	if m.used != 0 || len(m.waiters) != 0 {
		panic(fmt.Sprintf("mem: restore into busy MMU on node %d", m.node))
	}
	m.stats = st
}

// NodeID returns the node this MMU belongs to.
func (m *MMU) NodeID() int { return m.node }

// TryAlloc attempts a non-blocking allocation; it reports success. A request
// larger than the whole memory always fails. To preserve FIFO fairness a
// TryAlloc fails whenever an earlier blocked request is still waiting.
func (m *MMU) TryAlloc(bytes int64, class Class) bool {
	if bytes < 0 {
		panic("mem: negative allocation")
	}
	if bytes == 0 {
		return true
	}
	if bytes > m.capacity || len(m.waiters) > 0 || m.used+bytes > m.capacity {
		return false
	}
	m.grant(bytes, class)
	return true
}

// Alloc obtains bytes of memory for the calling process, blocking in FIFO
// order until enough is free. An allocation larger than total capacity can
// never succeed and panics (a configuration error, not a runtime condition).
func (m *MMU) Alloc(p *sim.Proc, bytes int64, class Class) {
	if bytes < 0 {
		panic("mem: negative allocation")
	}
	if bytes == 0 {
		return
	}
	if bytes > m.capacity {
		panic(fmt.Sprintf("mem: node %d request %d exceeds capacity %d", m.node, bytes, m.capacity))
	}
	if m.TryAlloc(bytes, class) {
		return
	}
	w := &waiter{proc: p, bytes: bytes, class: class, since: m.k.Now()}
	m.waiters = append(m.waiters, w)
	m.stats.BlockedAllocs++
	// If the process is aborted while blocked here, unwind cleanly: drop the
	// queued request, or — when the grant raced the abort — return the bytes.
	defer func() {
		if r := recover(); r != nil {
			if w.granted {
				m.FreeBytes(bytes)
			} else {
				m.removeWaiter(w)
			}
			panic(r)
		}
	}()
	for !w.granted {
		p.Park(fmt.Sprintf("mem alloc %dB on node %d", bytes, m.node))
	}
	m.stats.BlockedTime += m.k.Now() - w.since
}

// removeWaiter deletes a pending request from the queue (abort path).
func (m *MMU) removeWaiter(w *waiter) {
	for i, x := range m.waiters {
		if x == w {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			// The head may have changed; later requests may now fit.
			m.admit()
			return
		}
	}
}

func (m *MMU) grant(bytes int64, class Class) {
	m.used += bytes
	if m.used > m.stats.Peak {
		m.stats.Peak = m.used
	}
	m.stats.Allocs++
	switch class {
	case ClassBuffer:
		m.stats.BytesBuffer += bytes
	default:
		m.stats.BytesData += bytes
	}
}

// FreeBytes returns memory to the pool and unblocks eligible waiters in FIFO
// order. Freeing more than is allocated panics: that is always an accounting
// bug in the caller.
func (m *MMU) FreeBytes(bytes int64) {
	if bytes < 0 {
		panic("mem: negative free")
	}
	if bytes == 0 {
		return
	}
	if bytes > m.used {
		panic(fmt.Sprintf("mem: node %d freeing %d with only %d allocated", m.node, bytes, m.used))
	}
	m.used -= bytes
	m.stats.Frees++
	m.admit()
}

// admit grants queue-head waiters whose requests now fit and wakes them.
func (m *MMU) admit() {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		if m.used+w.bytes > m.capacity {
			return
		}
		m.waiters = m.waiters[1:]
		m.grant(w.bytes, w.class)
		w.granted = true
		w.proc.Wake()
	}
}
