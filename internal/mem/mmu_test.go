package mem

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestClassString(t *testing.T) {
	if ClassData.String() != "data" || ClassBuffer.String() != "buffer" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class rendering")
	}
}

func TestTryAllocBasics(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 1000)
	if !m.TryAlloc(600, ClassData) {
		t.Fatal("first alloc should fit")
	}
	if m.Used() != 600 || m.Free() != 400 {
		t.Fatalf("used=%d free=%d", m.Used(), m.Free())
	}
	if m.TryAlloc(500, ClassBuffer) {
		t.Fatal("oversized alloc should fail")
	}
	if !m.TryAlloc(0, ClassData) {
		t.Fatal("zero alloc should trivially succeed")
	}
	m.FreeBytes(600)
	if m.Used() != 0 {
		t.Fatalf("used=%d after free", m.Used())
	}
	st := m.Stats()
	if st.Peak != 600 || st.Allocs != 1 || st.Frees != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesData != 600 || st.BytesBuffer != 0 {
		t.Errorf("byte classes = %+v", st)
	}
}

func TestAllocBlocksUntilFree(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 3, 1000)
	if !m.TryAlloc(900, ClassData) {
		t.Fatal("setup alloc failed")
	}
	var gotAt sim.Time = -1
	k.Spawn("blocked", func(p *sim.Proc) {
		m.Alloc(p, 500, ClassBuffer)
		gotAt = p.Now()
	})
	k.After(100, func() { m.FreeBytes(900) })
	k.Run()
	if gotAt != 100 {
		t.Errorf("blocked alloc completed at %v, want 100", gotAt)
	}
	st := m.Stats()
	if st.BlockedAllocs != 1 {
		t.Errorf("BlockedAllocs = %d", st.BlockedAllocs)
	}
	if st.BlockedTime != 100 {
		t.Errorf("BlockedTime = %v", st.BlockedTime)
	}
	if m.Used() != 500 {
		t.Errorf("used = %d, want 500", m.Used())
	}
}

func TestFIFOOrderAmongWaiters(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 1000)
	m.TryAlloc(1000, ClassData)
	var order []string
	spawnAlloc := func(name string, bytes int64) {
		k.Spawn(name, func(p *sim.Proc) {
			m.Alloc(p, bytes, ClassData)
			order = append(order, name)
		})
	}
	spawnAlloc("big", 800)   // queued first
	spawnAlloc("small", 100) // must wait behind big even though it would fit sooner
	k.After(10, func() { m.FreeBytes(1000) })
	k.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func TestTryAllocYieldsToWaiters(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 1000)
	m.TryAlloc(1000, ClassData)
	k.Spawn("waiter", func(p *sim.Proc) {
		m.Alloc(p, 200, ClassData)
	})
	k.After(5, func() {
		// 300 bytes free but waiter is queued: TryAlloc must refuse so the
		// waiter is served first.
		m.FreeBytes(100)
		if m.Waiting() != 1 {
			t.Error("waiter should still be queued (100 < 200 free)")
		}
		if m.TryAlloc(50, ClassData) {
			t.Error("TryAlloc must fail while a waiter is queued")
		}
	})
	k.After(10, func() { m.FreeBytes(200) })
	k.Run()
	if m.Waiting() != 0 {
		t.Errorf("Waiting = %d at end", m.Waiting())
	}
}

func TestPartialFreeAdmitsWhenEnough(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 1000)
	m.TryAlloc(1000, ClassData)
	done := false
	k.Spawn("w", func(p *sim.Proc) {
		m.Alloc(p, 600, ClassBuffer)
		done = true
	})
	k.After(10, func() { m.FreeBytes(300) }) // not enough
	k.After(20, func() { m.FreeBytes(300) }) // now 600 free
	k.Run()
	if !done {
		t.Fatal("waiter never admitted")
	}
	if k.Now() != 20 {
		t.Errorf("admitted at %v, want 20", k.Now())
	}
}

func TestMultipleWaitersAdmittedTogether(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 1000)
	m.TryAlloc(1000, ClassData)
	count := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *sim.Proc) {
			m.Alloc(p, 100, ClassData)
			count++
		})
	}
	k.After(10, func() { m.FreeBytes(1000) })
	k.Run()
	if count != 4 {
		t.Fatalf("admitted %d of 4", count)
	}
	if m.Used() != 400 {
		t.Errorf("used = %d, want 400", m.Used())
	}
}

func TestOverFreePanics(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.FreeBytes(1)
}

func TestOversizeAllocPanics(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Run")
		}
	}()
	k.Spawn("huge", func(p *sim.Proc) {
		m.Alloc(p, 200, ClassData)
	})
	k.Run()
}

func TestNegativeOperationsPanic(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 100)
	for name, fn := range map[string]func(){
		"TryAlloc": func() { m.TryAlloc(-1, ClassData) },
		"Free":     func() { m.FreeBytes(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(-1) should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewKernel(1), 0, 0)
}

// TestAccountingInvariant: for arbitrary interleavings of allocations and
// frees, used never exceeds capacity, never goes negative, and ends at the
// net outstanding amount.
func TestAccountingInvariant(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 60 {
			sizes = sizes[:60]
		}
		k := sim.NewKernel(seed)
		m := New(k, 0, 64<<10)
		rng := rand.New(rand.NewSource(seed))
		var outstanding int64
		ok := true
		for i, s := range sizes {
			bytes := int64(s%8192) + 1
			hold := sim.Time(rng.Intn(200) + 1)
			start := sim.Time(rng.Intn(100))
			class := ClassData
			if i%2 == 0 {
				class = ClassBuffer
			}
			outstanding += 0 // every alloc is eventually freed below
			k.Spawn("p", func(p *sim.Proc) {
				p.Sleep(start)
				m.Alloc(p, bytes, class)
				if m.Used() > m.Capacity() || m.Used() < 0 {
					ok = false
				}
				p.Sleep(hold)
				m.FreeBytes(bytes)
			})
		}
		k.Run()
		k.Shutdown()
		if m.Used() != outstanding {
			return false
		}
		st := m.Stats()
		if st.Allocs != st.Frees {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

// TestNoStarvationUnderChurn: with continuous small alloc/free churn, a large
// request eventually gets through thanks to FIFO ordering.
func TestNoStarvationUnderChurn(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 1000)
	bigDone := false
	// Churners: repeatedly grab and release 300 bytes.
	for i := 0; i < 3; i++ {
		k.Spawn("churn", func(p *sim.Proc) {
			for j := 0; j < 50; j++ {
				m.Alloc(p, 300, ClassBuffer)
				p.Sleep(7)
				m.FreeBytes(300)
				p.Sleep(1)
			}
		})
	}
	k.Spawn("big", func(p *sim.Proc) {
		p.Sleep(20) // arrive mid-churn
		m.Alloc(p, 900, ClassData)
		bigDone = true
		m.FreeBytes(900)
	})
	k.Run()
	k.Shutdown()
	if !bigDone {
		t.Fatal("large request starved")
	}
}

func TestPendingBytesAndOldestWaiter(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 0, 1000)
	m.TryAlloc(1000, ClassData)
	if m.PendingBytes() != 0 || m.OldestWaiter() != "" {
		t.Fatal("fresh queue should be empty")
	}
	k.Spawn("first-waiter", func(p *sim.Proc) { m.Alloc(p, 400, ClassData) })
	k.Spawn("second-waiter", func(p *sim.Proc) { m.Alloc(p, 300, ClassBuffer) })
	k.After(10, func() {
		if m.PendingBytes() != 700 {
			t.Errorf("pending = %d, want 700", m.PendingBytes())
		}
		head := m.OldestWaiter()
		if !strings.Contains(head, "first-waiter") || !strings.Contains(head, "400B") {
			t.Errorf("head = %q", head)
		}
	})
	k.After(20, func() { m.FreeBytes(1000) })
	k.Run()
	if m.PendingBytes() != 0 {
		t.Errorf("pending after drain = %d", m.PendingBytes())
	}
}
