package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

const q = 2 * sim.Millisecond // test quantum

func TestPriorityString(t *testing.T) {
	if PriHigh.String() != "high" || PriLow.String() != "low" {
		t.Error("priority names")
	}
}

func TestSingleLowBurstRunsToCompletion(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var done sim.Time
	task := c.NewTask("a", PriLow)
	k.Spawn("a", func(p *sim.Proc) {
		task.Compute(p, 5*q) // longer than a quantum, but alone
		done = p.Now()
	})
	k.Run()
	if done != 5*q {
		t.Errorf("done at %v, want %v", done, 5*q)
	}
	st := c.Stats()
	if st.BusyLow != 5*q || st.BusyHigh != 0 {
		t.Errorf("stats %+v", st)
	}
	if st.QuantumExpiries != 0 {
		t.Errorf("expiries = %d, want 0 (extended slice)", st.QuantumExpiries)
	}
}

func TestTwoLowBurstsRoundRobin(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var doneA, doneB sim.Time
	ta := c.NewTask("a", PriLow)
	tb := c.NewTask("b", PriLow)
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, 2*q); doneA = p.Now() })
	k.Spawn("b", func(p *sim.Proc) { tb.Compute(p, 2*q); doneB = p.Now() })
	k.Run()
	// Round robin: a q, b q, a q (done at 3q), b q (done at 4q).
	if doneA != 3*q {
		t.Errorf("a done at %v, want %v", doneA, 3*q)
	}
	if doneB != 4*q {
		t.Errorf("b done at %v, want %v", doneB, 4*q)
	}
	st := c.Stats()
	if st.BusyLow != 4*q {
		t.Errorf("busy low = %v", st.BusyLow)
	}
	if st.QuantumExpiries < 2 {
		t.Errorf("expiries = %d, want >= 2", st.QuantumExpiries)
	}
}

func TestHighRunsToCompletionAheadOfLow(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var order []string
	th := c.NewTask("h", PriHigh)
	tl := c.NewTask("l", PriLow)
	// Both submitted at t=0; low spawned first but high must win.
	k.Spawn("l", func(p *sim.Proc) { tl.Compute(p, q); order = append(order, "l") })
	k.Spawn("h", func(p *sim.Proc) { th.Compute(p, 5*q); order = append(order, "h") })
	k.Run()
	if len(order) != 2 || order[0] != "h" || order[1] != "l" {
		t.Fatalf("order = %v, want [h l]", order)
	}
}

func TestHighPreemptsRunningLow(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var doneH, doneL sim.Time
	tl := c.NewTask("l", PriLow)
	th := c.NewTask("h", PriHigh)
	k.Spawn("l", func(p *sim.Proc) { tl.Compute(p, 4*q); doneL = p.Now() })
	k.Spawn("h", func(p *sim.Proc) {
		p.Sleep(q / 2) // arrive mid-quantum
		th.Compute(p, q)
		doneH = p.Now()
	})
	k.Run()
	if doneH != q/2+q {
		t.Errorf("high done at %v, want %v", doneH, q/2+q)
	}
	// Low loses no work, only position: total = 4q work + q preemption.
	if doneL != 5*q {
		t.Errorf("low done at %v, want %v", doneL, 5*q)
	}
	st := c.Stats()
	if st.Preemptions != 1 {
		t.Errorf("preemptions = %d", st.Preemptions)
	}
	if st.BusyHigh != q || st.BusyLow != 4*q {
		t.Errorf("busy = %+v", st)
	}
}

func TestPreemptedLowGoesToBackOfQueue(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var order []string
	ta := c.NewTask("a", PriLow)
	tb := c.NewTask("b", PriLow)
	th := c.NewTask("h", PriHigh)
	// a starts alone; b arrives at q/4; h arrives at q/2 preempting a
	// mid-burst. After h, the low queue should be [b, a] — a lost its
	// quantum slot and finishes last.
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, q); order = append(order, "a") })
	k.Spawn("b", func(p *sim.Proc) {
		p.Sleep(q / 4)
		tb.Compute(p, q/4)
		order = append(order, "b")
	})
	k.Spawn("h", func(p *sim.Proc) {
		p.Sleep(q / 2)
		th.Compute(p, q/4)
		order = append(order, "h")
	})
	k.Run()
	want := []string{"h", "b", "a"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLowArrivalTrimsExtendedSlice(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var doneA, doneB sim.Time
	ta := c.NewTask("a", PriLow)
	tb := c.NewTask("b", PriLow)
	// a runs alone with an extended slice (3q of work). b arrives at q/2.
	// The hardware rotates at the next quantum boundary: t=q. So b runs
	// [q, 2q), a runs [2q, 4q) — with only a left it extends again.
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, 3*q); doneA = p.Now() })
	k.Spawn("b", func(p *sim.Proc) {
		p.Sleep(q / 2)
		tb.Compute(p, q)
		doneB = p.Now()
	})
	k.Run()
	if doneB != 2*q {
		t.Errorf("b done at %v, want %v", doneB, 2*q)
	}
	if doneA != 4*q {
		t.Errorf("a done at %v, want %v", doneA, 4*q)
	}
}

func TestArrivalPastQuantumBoundaryRotatesAtNextBoundary(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var doneB sim.Time
	ta := c.NewTask("a", PriLow)
	tb := c.NewTask("b", PriLow)
	// a alone for 10q; b arrives at 2.5q -> rotation at 3q.
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, 10*q) })
	k.Spawn("b", func(p *sim.Proc) {
		p.Sleep(2*q + q/2)
		tb.Compute(p, q/2)
		doneB = p.Now()
	})
	k.Run()
	if doneB != 3*q+q/2 {
		t.Errorf("b done at %v, want %v", doneB, 3*q+q/2)
	}
}

func TestChargeAsync(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var at sim.Time = -1
	c.ChargeAsync(PriHigh, 100, func() { at = k.Now() })
	k.Run()
	if at != 100 {
		t.Errorf("async charge done at %v", at)
	}
	// Zero-length charge still invokes the callback.
	at = -1
	c.ChargeAsync(PriLow, 0, func() { at = k.Now() })
	k.Run()
	if at != 100 {
		t.Errorf("zero charge callback at %v", at)
	}
}

func TestSuspendResumeQueuedTask(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var done sim.Time
	tl := c.NewTask("l", PriLow)
	blocker := c.NewTask("blocker", PriLow)
	k.Spawn("blocker", func(p *sim.Proc) { blocker.Compute(p, 10*q) })
	k.Spawn("l", func(p *sim.Proc) {
		p.Sleep(1) // make sure blocker is running
		tl.Compute(p, q)
		done = p.Now()
	})
	k.After(2, func() { tl.Suspend() })
	k.After(5*q, func() { tl.Resume() })
	k.Run()
	// l was suspended while queued; once resumed it round-robins with
	// blocker. Without suspension it would have finished much earlier.
	if done < 5*q {
		t.Errorf("suspended task finished at %v, before resume at %v", done, 5*q)
	}
	if done == 0 {
		t.Error("task never completed")
	}
}

func TestSuspendRunningTaskPreservesWork(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var done sim.Time
	tl := c.NewTask("l", PriLow)
	k.Spawn("l", func(p *sim.Proc) {
		tl.Compute(p, 2*q)
		done = p.Now()
	})
	k.After(q/2, func() { tl.Suspend() })
	k.After(10*q, func() { tl.Resume() })
	k.Run()
	// Ran q/2, suspended for the gap, needs 1.5q more after resume.
	want := 10*q + 2*q - q/2
	if done != want {
		t.Errorf("done at %v, want %v", done, want)
	}
	if c.Stats().BusyLow != 2*q {
		t.Errorf("busy low = %v, want %v", c.Stats().BusyLow, 2*q)
	}
}

func TestComputeWhileSuspendedWaitsForResume(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	tl := c.NewTask("l", PriLow)
	tl.Suspend()
	var done sim.Time
	k.Spawn("l", func(p *sim.Proc) {
		tl.Compute(p, q)
		done = p.Now()
	})
	k.After(3*q, func() { tl.Resume() })
	k.Run()
	if done != 4*q {
		t.Errorf("done at %v, want %v", done, 4*q)
	}
	if !tl.Suspended() == true && done == 0 {
		t.Error("unreachable")
	}
}

func TestSuspendIdempotent(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	tl := c.NewTask("l", PriLow)
	tl.Suspend()
	tl.Suspend()
	tl.Resume()
	tl.Resume()
	if tl.Suspended() {
		t.Error("should be resumed")
	}
	_ = c
}

func TestZeroComputeReturnsImmediately(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	tl := c.NewTask("l", PriLow)
	ran := false
	k.Spawn("l", func(p *sim.Proc) {
		tl.Compute(p, 0)
		tl.Compute(p, -5)
		ran = true
	})
	k.Run()
	if !ran || k.Now() != 0 {
		t.Errorf("ran=%v now=%v", ran, k.Now())
	}
}

func TestOverlappingBurstsPanic(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	tl := c.NewTask("l", PriLow)
	tl.Suspend()
	k.Spawn("a", func(p *sim.Proc) { tl.Compute(p, q) })
	k.Spawn("b", func(p *sim.Proc) { tl.Compute(p, q) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Run()
}

func TestHighDoesNotPreemptHigh(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var order []string
	ta := c.NewTask("a", PriHigh)
	tb := c.NewTask("b", PriHigh)
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, 10*q); order = append(order, "a") })
	k.Spawn("b", func(p *sim.Proc) {
		p.Sleep(1)
		tb.Compute(p, q)
		order = append(order, "b")
	})
	k.Run()
	if len(order) != 2 || order[0] != "a" {
		t.Fatalf("order = %v, want a first (no high-high preemption)", order)
	}
}

func TestBadQuantumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCPU(sim.NewKernel(1), 0, 0)
}

// TestWorkConservation: the CPU is never idle while work is queued — total
// busy time equals total demand, and the last completion time is at least
// total demand (exactly, when all bursts arrive at t=0).
func TestWorkConservation(t *testing.T) {
	f := func(demands []uint16, hi []bool, seed int64) bool {
		if len(demands) == 0 {
			return true
		}
		if len(demands) > 40 {
			demands = demands[:40]
		}
		k := sim.NewKernel(seed)
		c := NewCPU(k, 0, q)
		var total sim.Time
		for i, d := range demands {
			dd := sim.Time(d%5000) + 1
			total += dd
			prio := PriLow
			if i < len(hi) && hi[i] {
				prio = PriHigh
			}
			task := c.NewTask("t", prio)
			k.Spawn("t", func(p *sim.Proc) { task.Compute(p, dd) })
		}
		k.Run()
		k.Shutdown()
		st := c.Stats()
		return st.Busy() == total && k.Now() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Error(err)
	}
}

// TestRoundRobinFairness: n equal low-priority bursts submitted together
// finish within one quantum-ish spread of each other near n*burst.
func TestRoundRobinFairness(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	const n = 8
	burst := 10 * q
	var finish [n]sim.Time
	for i := 0; i < n; i++ {
		i := i
		task := c.NewTask("t", PriLow)
		k.Spawn("t", func(p *sim.Proc) {
			task.Compute(p, burst)
			finish[i] = p.Now()
		})
	}
	k.Run()
	min, max := finish[0], finish[0]
	for _, f := range finish[1:] {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if max-min > sim.Time(n)*q {
		t.Errorf("finish spread %v too wide for RR (min=%v max=%v)", max-min, min, max)
	}
	if max != sim.Time(n)*burst {
		t.Errorf("last finish %v, want %v", max, sim.Time(n)*burst)
	}
}

// TestDeterminismUnderMixedLoad: identical runs produce identical traces.
func TestDeterminismUnderMixedLoad(t *testing.T) {
	run := func() []sim.Time {
		k := sim.NewKernel(99)
		c := NewCPU(k, 0, q)
		var finishes []sim.Time
		for i := 0; i < 12; i++ {
			prio := PriLow
			if i%4 == 0 {
				prio = PriHigh
			}
			d := sim.Time((i*337)%4000 + 10)
			start := sim.Time((i * 211) % 1500)
			task := c.NewTask("t", prio)
			k.Spawn("t", func(p *sim.Proc) {
				p.Sleep(start)
				task.Compute(p, d)
				finishes = append(finishes, p.Now())
			})
		}
		k.Run()
		k.Shutdown()
		return finishes
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 12 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestQueueLensAndRunning(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	if c.Running() {
		t.Error("idle CPU reported running")
	}
	for i := 0; i < 3; i++ {
		task := c.NewTask("t", PriLow)
		k.Spawn("t", func(p *sim.Proc) { task.Compute(p, q) })
	}
	k.After(1, func() {
		if !c.Running() {
			t.Error("CPU should be running")
		}
		h, l := c.QueueLens()
		if h != 0 || l != 2 {
			t.Errorf("queues = %d,%d want 0,2", h, l)
		}
	})
	k.Run()
}
