package machine

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Node is one processor of the multicomputer: a T805 CPU plus its local
// memory. Links are attached by the communication layer according to the
// partition topology.
type Node struct {
	ID  int
	CPU *CPU
	Mem *mem.MMU
}

// Machine is the whole multicomputer: a fixed array of nodes sharing one
// simulation kernel and one cost model. The paper's system is Size == 16.
// Host is the single link to the front-end workstation through which every
// job's code and data are loaded; loads serialize on it.
type Machine struct {
	K     *sim.Kernel
	Cost  CostModel
	Nodes []*Node
	Host  *HalfLink
}

// NewMachine builds size nodes, each with memBytes of local memory and the
// cost model's low-priority quantum.
func NewMachine(k *sim.Kernel, size int, memBytes int64, cost CostModel) *Machine {
	if size < 1 {
		panic(fmt.Sprintf("machine: size %d", size))
	}
	m := &Machine{K: k, Cost: cost, Nodes: make([]*Node, size), Host: NewHalfLink(k, "host link")}
	for i := range m.Nodes {
		m.Nodes[i] = &Node{
			ID:  i,
			CPU: NewCPU(k, i, cost.Quantum),
			Mem: mem.New(k, i, memBytes),
		}
	}
	return m
}

// Size returns the number of nodes.
func (m *Machine) Size() int { return len(m.Nodes) }

// Node returns node i.
func (m *Machine) Node(i int) *Node { return m.Nodes[i] }
