package machine

import (
	"fmt"

	"repro/internal/sim"
)

// LinkStats aggregates one direction's accounting.
type LinkStats struct {
	// BusyTime is the simulated time the direction was occupied.
	BusyTime sim.Time
	// Transfers counts completed occupancies; Bytes the payload moved.
	Transfers, Bytes int64
	// WaitTime accumulates time spent queued for the direction.
	WaitTime sim.Time
}

// HalfLink is one direction of a physical link: a serially-reusable resource
// with a FIFO acquire queue. Under store-and-forward each direction has a
// single sending router, so the queue is usually empty; under wormhole
// routing several worms can contend for the same channel and queue here.
type HalfLink struct {
	k        *sim.Kernel
	name     string
	busy     bool
	busyFrom sim.Time
	waiters  []*linkWaiter
	stats    LinkStats
}

type linkWaiter struct {
	proc    *sim.Proc
	since   sim.Time
	granted bool
}

// NewHalfLink creates one link direction with a diagnostic name.
func NewHalfLink(k *sim.Kernel, name string) *HalfLink {
	return &HalfLink{k: k, name: name}
}

// Name returns the diagnostic name ("link 3->7").
func (h *HalfLink) Name() string { return h.name }

// Stats returns a copy of the direction's statistics.
func (h *HalfLink) Stats() LinkStats { return h.stats }

// RestoreStats installs a donor direction's accumulated statistics. Warm
// restores call it per direction — per-direction, not aggregated, because
// downstream metrics take a max over directions, which an aggregate would
// corrupt. The direction must be idle (not held, nobody queued).
func (h *HalfLink) RestoreStats(st LinkStats) {
	if h.busy || len(h.waiters) != 0 {
		panic(fmt.Sprintf("machine: restore into busy link %s", h.name))
	}
	h.stats = st
}

// Busy reports whether the direction is currently held.
func (h *HalfLink) Busy() bool { return h.busy }

// Acquire takes exclusive hold of the direction, blocking the calling
// process FIFO until it is free.
func (h *HalfLink) Acquire(p *sim.Proc) {
	if !h.busy && len(h.waiters) == 0 {
		h.busy = true
		h.busyFrom = h.k.Now()
		return
	}
	w := &linkWaiter{proc: p, since: h.k.Now()}
	h.waiters = append(h.waiters, w)
	// Unwind cleanly if the waiting process is aborted: drop the queued
	// request, or release the hold when the grant raced the abort.
	defer func() {
		if r := recover(); r != nil {
			if w.granted {
				h.Release()
			} else {
				h.removeWaiter(w)
			}
			panic(r)
		}
	}()
	for !w.granted {
		p.Park(fmt.Sprintf("acquire %s", h.name))
	}
	h.stats.WaitTime += h.k.Now() - w.since
}

// removeWaiter deletes a pending acquire from the queue (abort path).
func (h *HalfLink) removeWaiter(w *linkWaiter) {
	for i, x := range h.waiters {
		if x == w {
			h.waiters = append(h.waiters[:i], h.waiters[i+1:]...)
			return
		}
	}
}

// Release frees the direction and hands it to the next waiter, if any.
func (h *HalfLink) Release() {
	if !h.busy {
		panic(fmt.Sprintf("machine: release of idle %s", h.name))
	}
	h.stats.BusyTime += h.k.Now() - h.busyFrom
	if len(h.waiters) > 0 {
		w := h.waiters[0]
		h.waiters = h.waiters[1:]
		w.granted = true
		h.busyFrom = h.k.Now()
		w.proc.Wake()
		return
	}
	h.busy = false
}

// CountTransfer records a completed payload movement for utilization
// reporting. Call while holding the direction.
func (h *HalfLink) CountTransfer(bytes int64) {
	h.stats.Transfers++
	h.stats.Bytes += bytes
}

// Link is a full-duplex physical wire between two nodes, as configured by
// the INMOS C004 switch fabric for a partition topology.
type Link struct {
	A, B int // node ids
	AtoB *HalfLink
	BtoA *HalfLink
}

// NewLink wires nodes a and b.
func NewLink(k *sim.Kernel, a, b int) *Link {
	return &Link{
		A:    a,
		B:    b,
		AtoB: NewHalfLink(k, fmt.Sprintf("link %d->%d", a, b)),
		BtoA: NewHalfLink(k, fmt.Sprintf("link %d->%d", b, a)),
	}
}

// Dir returns the half-link carrying traffic from node `from` across this
// link; it panics if from is not an endpoint.
func (l *Link) Dir(from int) *HalfLink {
	switch from {
	case l.A:
		return l.AtoB
	case l.B:
		return l.BtoA
	default:
		panic(fmt.Sprintf("machine: node %d is not on link %d-%d", from, l.A, l.B))
	}
}
