package machine

import (
	"fmt"

	"repro/internal/sim"
)

// Priority is a T805 hardware priority level.
type Priority int

const (
	// PriLow processes are time-shared round-robin with a fixed quantum.
	PriLow Priority = iota
	// PriHigh processes run until their burst completes (or they block) and
	// preempt any running low-priority process.
	PriHigh
)

func (p Priority) String() string {
	if p == PriHigh {
		return "high"
	}
	return "low"
}

// CPUStats aggregates processor accounting for a run.
type CPUStats struct {
	// BusyHigh / BusyLow are the simulated time spent executing at each
	// priority.
	BusyHigh, BusyLow sim.Time
	// BusySwitch is time spent in the local scheduler's job-switch overhead
	// (charged when a dispatched low-priority task belongs to a different
	// group than the previous one).
	BusySwitch sim.Time
	// Dispatches counts slice starts; Preemptions counts high-over-low
	// preemptions; QuantumExpiries counts round-robin rotations;
	// GroupSwitches counts charged job switches.
	Dispatches, Preemptions, QuantumExpiries, GroupSwitches int64
}

// Busy is the total non-idle time.
func (s CPUStats) Busy() sim.Time { return s.BusyHigh + s.BusyLow + s.BusySwitch }

// Task is the CPU-scheduling identity of one simulated process on one node.
// A task carries at most one outstanding compute burst at a time. Tasks can
// be suspended and resumed by the local scheduler (used by the time-sharing
// policies' job-level preemption control); a suspended task keeps its
// remaining burst but is not eligible to run.
type Task struct {
	cpu  *CPU
	name string
	prio Priority

	// group identifies the job the task belongs to; switching the CPU
	// between low-priority tasks of different groups costs the configured
	// switch overhead. The default group NoGroup never matches another
	// NoGroup task (system tasks switch freely).
	group int
	// quantum overrides the hardware timeslice for this task when positive
	// (the local scheduler's own preemption control, used by the RR-job
	// policy's Q = (P/T)q rule).
	quantum sim.Time

	suspended bool
	burst     *burst
}

// NoGroup is the group of tasks that do not belong to a scheduled job.
const NoGroup = -1

// SetGroup assigns the task to a job group for switch-overhead accounting.
func (t *Task) SetGroup(g int) { t.group = g }

// SetQuantum overrides the task's low-priority timeslice; zero restores the
// hardware quantum.
func (t *Task) SetQuantum(q sim.Time) {
	if q < 0 {
		panic("machine: negative quantum")
	}
	t.quantum = q
}

// burst is one compute demand, either owned by a Task (process work) or
// anonymous (scheduler overhead charged with ChargeAsync).
type burst struct {
	task      *Task // nil for anonymous bursts
	owner     *sim.Proc
	remaining sim.Time
	prio      Priority
	onDone    func()
	queued    bool
}

// CPU is one T805 processor: two ready queues and the transputer dispatch
// rules.
type CPU struct {
	k       *sim.Kernel
	node    int
	quantum sim.Time

	highQ []*burst
	lowQ  []*burst

	current     *burst
	sliceStart  sim.Time
	sliceTimer  sim.Timer
	curOverhead sim.Time // group-switch overhead at the head of this slice

	switchCost   sim.Time
	lastLowGroup int

	stats CPUStats
}

// NewCPU creates a processor for the given node with the given low-priority
// quantum.
func NewCPU(k *sim.Kernel, node int, quantum sim.Time) *CPU {
	if quantum <= 0 {
		panic(fmt.Sprintf("machine: node %d quantum %v", node, quantum))
	}
	return &CPU{k: k, node: node, quantum: quantum, lastLowGroup: noGroupSentinel}
}

// noGroupSentinel never compares equal to any task group, so the first
// low-priority dispatch after boot counts as a switch when overhead is
// configured.
const noGroupSentinel = -1 << 62

// SetSwitchCost configures the per-job-switch overhead the local scheduler
// charges when the CPU moves between low-priority tasks of different groups.
func (c *CPU) SetSwitchCost(d sim.Time) {
	if d < 0 {
		panic("machine: negative switch cost")
	}
	c.switchCost = d
}

// NodeID returns the node this CPU belongs to.
func (c *CPU) NodeID() int { return c.node }

// Quantum returns the configured low-priority timeslice.
func (c *CPU) Quantum() sim.Time { return c.quantum }

// Stats returns a copy of the accumulated statistics. Call after the
// simulation has drained; time inside an open slice is not yet accounted.
func (c *CPU) Stats() CPUStats { return c.stats }

// NewTask registers a schedulable task at the given priority.
func (c *CPU) NewTask(name string, prio Priority) *Task {
	return &Task{cpu: c, name: name, prio: prio, group: NoGroup}
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// Suspended reports whether the task is currently suspended.
func (t *Task) Suspended() bool { return t.suspended }

// BurstRemaining reports the unexecuted demand of the task's in-flight
// burst (zero when idle). Accurate after a Suspend, which closes out the
// running slice; mid-slice it can lag by up to the current slice.
func (t *Task) BurstRemaining() sim.Time {
	if t.burst == nil {
		return 0
	}
	return t.burst.remaining
}

// Compute blocks the calling process for d microseconds of CPU time on this
// task's node, subject to the node's scheduling discipline: the wall-clock
// time until return can be much larger than d when the processor is shared.
// A non-positive demand returns immediately.
func (t *Task) Compute(p *sim.Proc, d sim.Time) {
	if d <= 0 {
		return
	}
	if t.burst != nil {
		panic(fmt.Sprintf("machine: task %q issued overlapping bursts", t.name))
	}
	done := false
	b := &burst{task: t, owner: p, remaining: d, prio: t.prio, onDone: func() { done = true }}
	t.burst = b
	if !t.suspended {
		t.cpu.submit(b)
	}
	for !done {
		p.Park(fmt.Sprintf("cpu burst on node %d", t.cpu.node))
	}
}

// Suspend makes the task ineligible to run. If its burst is queued it is
// removed; if it is running it is preempted immediately with its remaining
// work preserved. Suspending an already-suspended task is a no-op.
// Must be called from kernel context.
func (t *Task) Suspend() {
	if t.suspended {
		return
	}
	t.suspended = true
	b := t.burst
	if b == nil {
		return
	}
	c := t.cpu
	switch {
	case c.current == b:
		c.stopSlice()
		c.current = nil
		if b.remaining <= 0 {
			// The suspend landed exactly at burst completion.
			c.complete(b)
		}
		c.dispatch()
	case b.queued:
		c.removeQueued(b)
	}
}

// Resume makes the task eligible again, re-queueing any unfinished burst at
// the tail of its priority queue. Resuming a non-suspended task is a no-op.
// Must be called from kernel context.
func (t *Task) Resume() {
	if !t.suspended {
		return
	}
	t.suspended = false
	if t.burst != nil {
		t.cpu.submit(t.burst)
	}
}

// ChargeAsync queues an anonymous burst (scheduler or router overhead that
// is not tied to a simulated process goroutine). onDone, which may be nil,
// runs in kernel context when the burst completes.
func (c *CPU) ChargeAsync(prio Priority, d sim.Time, onDone func()) {
	if d <= 0 {
		if onDone != nil {
			c.k.AfterFunc(0, onDone)
		}
		return
	}
	c.submit(&burst{remaining: d, prio: prio, onDone: onDone})
}

// submit enqueues a burst and re-evaluates dispatch.
func (c *CPU) submit(b *burst) {
	if b.remaining <= 0 {
		panic("machine: submitting empty burst")
	}
	b.queued = true
	if b.prio == PriHigh {
		c.highQ = append(c.highQ, b)
	} else {
		c.lowQ = append(c.lowQ, b)
	}
	c.reschedule()
}

// reschedule reacts to a queue change while possibly running something.
func (c *CPU) reschedule() {
	cur := c.current
	if cur == nil {
		c.dispatch()
		return
	}
	if cur.prio == PriHigh {
		// High runs to burst completion; arrivals wait.
		return
	}
	// Current is low priority.
	if len(c.highQ) > 0 {
		// Immediate preemption; the preempted process loses the rest of its
		// quantum and goes to the back of the low queue (T805 rule).
		c.stopSlice()
		c.stats.Preemptions++
		c.current = nil
		if cur.remaining > 0 {
			cur.queued = true
			c.lowQ = append(c.lowQ, cur)
		} else {
			// Preemption landed exactly at burst completion.
			c.complete(cur)
		}
		c.dispatch()
		return
	}
	// Another low-priority burst arrived. If the current slice was extended
	// because the processor was otherwise idle, cut it back to the next
	// quantum boundary (the hardware rotates on timer ticks).
	c.trimSliceToQuantum()
}

// quantumFor picks the burst's timeslice: the owning task's override when
// set, else the hardware quantum.
func (c *CPU) quantumFor(b *burst) sim.Time {
	if b.task != nil && b.task.quantum > 0 {
		return b.task.quantum
	}
	return c.quantum
}

// groupOf is the job group of a burst (NoGroup for anonymous bursts).
func groupOf(b *burst) int {
	if b.task == nil {
		return NoGroup
	}
	return b.task.group
}

// trimSliceToQuantum reschedules the running low-priority slice to end at
// the next quantum boundary (measured from the end of any switch overhead),
// never later than the burst's own completion and never before now.
func (c *CPU) trimSliceToQuantum() {
	cur := c.current
	if cur == nil || cur.prio != PriLow {
		return
	}
	q := c.quantumFor(cur)
	effStart := c.sliceStart + c.curOverhead
	elapsed := c.k.Now() - effStart
	if elapsed < 0 {
		elapsed = 0
	}
	// Next quantum boundary at or after now.
	boundaries := elapsed / q
	if elapsed%q != 0 {
		boundaries++
	}
	if boundaries == 0 {
		boundaries = 1
	}
	end := effStart + boundaries*q
	if full := effStart + cur.remaining; full < end {
		end = full
	}
	if c.sliceTimer.Pending() && c.sliceTimer.At() == end {
		return
	}
	c.sliceTimer.Stop()
	c.sliceTimer = c.k.At(end, c.onSliceEnd)
}

// dispatch starts the next burst if the CPU is idle.
func (c *CPU) dispatch() {
	if c.current != nil {
		return
	}
	var b *burst
	switch {
	case len(c.highQ) > 0:
		b = c.highQ[0]
		c.highQ = c.highQ[1:]
	case len(c.lowQ) > 0:
		b = c.lowQ[0]
		c.lowQ = c.lowQ[1:]
	default:
		return
	}
	b.queued = false
	c.current = b
	c.sliceStart = c.k.Now()
	c.stats.Dispatches++
	run := b.remaining
	ov := sim.Time(0)
	if b.prio == PriLow {
		if q := c.quantumFor(b); len(c.lowQ) > 0 && run > q {
			run = q
		}
		if c.switchCost > 0 && groupOf(b) != c.lastLowGroup {
			ov = c.switchCost
			c.stats.GroupSwitches++
		}
		c.lastLowGroup = groupOf(b)
	}
	c.curOverhead = ov
	c.sliceTimer = c.k.After(ov+run, c.onSliceEnd)
}

// stopSlice cancels the running slice and charges the elapsed time: first to
// switch overhead, the rest to the current burst. The caller decides what to
// do with c.current afterwards.
func (c *CPU) stopSlice() {
	cur := c.current
	if cur == nil {
		return
	}
	c.sliceTimer.Stop()
	c.sliceTimer = sim.Timer{}
	c.accountSlice(cur)
}

// accountSlice splits the elapsed slice time between switch overhead and
// burst work.
func (c *CPU) accountSlice(cur *burst) {
	elapsed := c.k.Now() - c.sliceStart
	ovUsed := c.curOverhead
	if ovUsed > elapsed {
		ovUsed = elapsed
	}
	work := elapsed - ovUsed
	if work > cur.remaining {
		work = cur.remaining
	}
	cur.remaining -= work
	c.stats.BusySwitch += ovUsed
	c.curOverhead -= ovUsed
	c.charge(cur.prio, work)
}

func (c *CPU) charge(prio Priority, d sim.Time) {
	if prio == PriHigh {
		c.stats.BusyHigh += d
	} else {
		c.stats.BusyLow += d
	}
}

// onSliceEnd fires when the running slice's timer expires: either the burst
// finished or its quantum ran out.
func (c *CPU) onSliceEnd() {
	cur := c.current
	if cur == nil {
		return
	}
	c.sliceTimer = sim.Timer{}
	c.accountSlice(cur)
	c.current = nil
	if cur.remaining <= 0 {
		c.complete(cur)
	} else {
		// Quantum expiry: back of the low queue.
		c.stats.QuantumExpiries++
		cur.queued = true
		c.lowQ = append(c.lowQ, cur)
	}
	c.dispatch()
}

func (c *CPU) complete(b *burst) {
	if b.task != nil {
		b.task.burst = nil
	}
	if b.onDone != nil {
		b.onDone()
	}
	if b.owner != nil {
		b.owner.Wake()
	}
}

// removeQueued deletes a burst from its ready queue.
func (c *CPU) removeQueued(b *burst) {
	q := &c.lowQ
	if b.prio == PriHigh {
		q = &c.highQ
	}
	for i, x := range *q {
		if x == b {
			*q = append((*q)[:i], (*q)[i+1:]...)
			b.queued = false
			return
		}
	}
	panic(fmt.Sprintf("machine: node %d burst not found in %v queue", c.node, b.prio))
}

// QueueLens reports the current ready-queue lengths (high, low), excluding
// the running burst. Useful in tests and tracing.
func (c *CPU) QueueLens() (int, int) { return len(c.highQ), len(c.lowQ) }

// CPUState is the CPU's persistent cross-job state: the accumulated
// statistics plus the identity of the last low-priority group dispatched
// (which decides whether the next dispatch pays the group-switch overhead).
// It is everything a CPU carries across jobs — run queues and the current
// burst are transient and empty at any quiescent instant.
type CPUState struct {
	Stats        CPUStats `json:"stats"`
	LastLowGroup int      `json:"last_low_group"`
}

// SnapshotState captures the cross-job state. Call only when the CPU is
// idle (no current burst, empty queues); it panics otherwise, because an
// open slice holds unaccounted busy time that a snapshot would lose.
func (c *CPU) SnapshotState() CPUState {
	if c.current != nil || len(c.highQ) != 0 || len(c.lowQ) != 0 {
		panic(fmt.Sprintf("machine: snapshot of busy CPU on node %d", c.node))
	}
	return CPUState{Stats: c.stats, LastLowGroup: c.lastLowGroup}
}

// RestoreState installs a donor CPU's cross-job state into this (idle) CPU.
func (c *CPU) RestoreState(st CPUState) {
	c.stats = st.Stats
	c.lastLowGroup = st.LastLowGroup
}

// Running reports whether a burst is currently executing.
func (c *CPU) Running() bool { return c.current != nil }
