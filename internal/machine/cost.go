// Package machine models the hardware of the simulated multicomputer: T805
// processors with the transputer's two-priority hardware scheduler, the
// point-to-point links between them, and the calibration constants that tie
// simulated time to the 1997 hardware.
//
// A node couples a CPU with a memory manager (package mem). The CPU schedules
// abstract "tasks" — the compute demands of simulated processes — exactly the
// way the T805 microcode does: high-priority tasks run until their burst
// completes, low-priority tasks share the processor round-robin with a fixed
// quantum, and a newly-runnable high-priority task immediately preempts a
// low-priority one, which loses the rest of its quantum (but not its work).
package machine

import "repro/internal/sim"

// CostModel collects the hardware calibration constants. The defaults are
// drawn from published T805/INMOS figures; none of the paper's qualitative
// results depend on their exact values, only on their rough ratios.
type CostModel struct {
	// Quantum is the low-priority timeslice. The T805 rotates low-priority
	// processes roughly every 2 ms (two 1024-µs timer periods); the paper
	// quotes 2 ms.
	Quantum sim.Time

	// LinkPerByteNS is the per-byte occupancy of a link in nanoseconds.
	// INMOS links run at 20 Mbit/s (~575 ns/byte of raw DMA), but the
	// store-and-forward mailbox software also copies every byte through a
	// reserved buffer at each hop, so the effective figure is higher.
	LinkPerByteNS int64

	// LinkLatency is the fixed per-hop wire/DMA setup time.
	LinkLatency sim.Time

	// RouterHopOverhead is the CPU time the store-and-forward mailbox router
	// charges (at high priority) to process one message at one hop: header
	// decode, routing-table lookup, buffer bookkeeping.
	RouterHopOverhead sim.Time

	// SendOverhead is the CPU time a sender spends initiating a send
	// (marshalling the descriptor into the mailbox system).
	SendOverhead sim.Time

	// RecvOverhead is the CPU time a receiver spends accepting a delivered
	// message.
	RecvOverhead sim.Time

	// JobSwitch is the overhead of a job-level context switch under the
	// time-sharing policies: the local scheduler's preemption control is
	// driven by partition-scheduler messages, so moving the CPU between
	// processes of different jobs costs far more than the T805's ~1 µs
	// hardware process switch.
	JobSwitch sim.Time

	// SpawnOverhead is the per-process cost of creating a process when a job
	// is loaded into a partition.
	SpawnOverhead sim.Time

	// FlitBytes is the wormhole flit size used by the wormhole ablation;
	// irrelevant to store-and-forward runs.
	FlitBytes int64

	// MsgHeaderBytes is the mailbox header prepended to every message; it
	// makes even empty messages occupy buffers and link time.
	MsgHeaderBytes int64

	// HostPerByteNS is the per-byte cost of loading a job's code and data
	// from the front-end workstation through the single host-link
	// transputer (§3.1: "one transputer is required to provide a link to
	// the frontend host workstation"). All job loads serialize on it. The
	// host interface streams with buffered DMA, so this is cheaper than a
	// store-and-forward hop.
	HostPerByteNS int64
	// HostJobFixed is the fixed per-job setup cost of a load (booting the
	// process network).
	HostJobFixed sim.Time
}

// DefaultCostModel returns the calibration used for all paper-reproduction
// experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		Quantum:           2 * sim.Millisecond,
		LinkPerByteNS:     575,
		LinkLatency:       5 * sim.Microsecond,
		RouterHopOverhead: 400 * sim.Microsecond,
		SendOverhead:      250 * sim.Microsecond,
		RecvOverhead:      150 * sim.Microsecond,
		JobSwitch:         800 * sim.Microsecond,
		SpawnOverhead:     1 * sim.Millisecond,
		FlitBytes:         32,
		MsgHeaderBytes:    32,
		HostPerByteNS:     100,
		HostJobFixed:      5 * sim.Millisecond,
	}
}

// TransferTime returns the time to move n bytes across one link, excluding
// queueing: per-hop latency plus serialization.
func (c CostModel) TransferTime(n int64) sim.Time {
	return c.LinkLatency + sim.Time(n*c.LinkPerByteNS/1000)
}

// LoadTime returns the host-link occupancy to load a job image of n bytes.
func (c CostModel) LoadTime(n int64) sim.Time {
	return c.HostJobFixed + sim.Time(n*c.HostPerByteNS/1000)
}
