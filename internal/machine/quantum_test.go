package machine

import (
	"testing"

	"repro/internal/sim"
)

func TestPerTaskQuantumOverride(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	// Task a has a long custom quantum 4q; task b uses the hardware q.
	ta := c.NewTask("a", PriLow)
	ta.SetQuantum(4 * q)
	tb := c.NewTask("b", PriLow)
	var doneA, doneB sim.Time
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, 4*q); doneA = p.Now() })
	k.Spawn("b", func(p *sim.Proc) { tb.Compute(p, q); doneB = p.Now() })
	k.Run()
	// a runs a full 4q slice (its custom quantum), finishing its burst at
	// 4q; b waits behind it and finishes at 5q.
	if doneA != 4*q {
		t.Errorf("a done at %v, want %v", doneA, 4*q)
	}
	if doneB != 5*q {
		t.Errorf("b done at %v, want %v", doneB, 5*q)
	}
}

func TestShortQuantumInterleavesFiner(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	ta := c.NewTask("a", PriLow)
	ta.SetQuantum(q / 4)
	tb := c.NewTask("b", PriLow)
	tb.SetQuantum(q / 4)
	var doneA sim.Time
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, q/2); doneA = p.Now() })
	k.Spawn("b", func(p *sim.Proc) { tb.Compute(p, 10*q) })
	k.Run()
	k.Shutdown()
	// With q/4 slices: a q/4, b q/4, a q/4 done at 3q/4. With hardware q it
	// would have been done at... a would finish within its first quantum
	// anyway; key point: rotation happened at q/4 bounds.
	if doneA != 3*q/4 {
		t.Errorf("a done at %v, want %v", doneA, 3*q/4)
	}
}

func TestSetQuantumNegativePanics(t *testing.T) {
	c := NewCPU(sim.NewKernel(1), 0, q)
	task := c.NewTask("x", PriLow)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	task.SetQuantum(-1)
}

func TestGroupSwitchOverheadCharged(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	const sw = 100 * sim.Microsecond
	c.SetSwitchCost(sw)
	ta := c.NewTask("a", PriLow)
	ta.SetGroup(1)
	tb := c.NewTask("b", PriLow)
	tb.SetGroup(2)
	var doneA, doneB sim.Time
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, q); doneA = p.Now() })
	k.Spawn("b", func(p *sim.Proc) { tb.Compute(p, q); doneB = p.Now() })
	k.Run()
	// Dispatch a: switch (boot) + q work. Dispatch b: switch + q.
	if doneA != sw+q {
		t.Errorf("a done at %v, want %v", doneA, sw+q)
	}
	if doneB != 2*(sw+q) {
		t.Errorf("b done at %v, want %v", doneB, 2*(sw+q))
	}
	st := c.Stats()
	if st.GroupSwitches != 2 {
		t.Errorf("switches = %d, want 2", st.GroupSwitches)
	}
	if st.BusySwitch != 2*sw {
		t.Errorf("busy switch = %v, want %v", st.BusySwitch, 2*sw)
	}
	if st.BusyLow != 2*q {
		t.Errorf("busy low = %v, want %v", st.BusyLow, 2*q)
	}
}

func TestSameGroupSwitchIsFree(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	c.SetSwitchCost(100)
	// Two tasks of the same job: rotating between them is a hardware
	// process switch, no local-scheduler overhead.
	ta := c.NewTask("a", PriLow)
	ta.SetGroup(7)
	tb := c.NewTask("b", PriLow)
	tb.SetGroup(7)
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, 2*q) })
	k.Spawn("b", func(p *sim.Proc) { tb.Compute(p, 2*q) })
	k.Run()
	st := c.Stats()
	if st.GroupSwitches != 1 { // only the boot-time switch
		t.Errorf("switches = %d, want 1", st.GroupSwitches)
	}
	if st.BusySwitch != 100 {
		t.Errorf("busy switch = %v", st.BusySwitch)
	}
}

func TestSwitchOverheadLostOnPreemption(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	const sw = 100 * sim.Microsecond
	c.SetSwitchCost(sw)
	tl := c.NewTask("l", PriLow)
	tl.SetGroup(1)
	th := c.NewTask("h", PriHigh)
	var doneL sim.Time
	k.Spawn("l", func(p *sim.Proc) { tl.Compute(p, q); doneL = p.Now() })
	k.Spawn("h", func(p *sim.Proc) {
		p.Sleep(sw / 2) // preempt l mid-switch-overhead
		th.Compute(p, q)
	})
	k.Run()
	// l's first slice spent sw/2 of overhead and no work; after h's q, l
	// redispatches paying full overhead again (group unchanged but the
	// sentinel... actually same group, so no new switch charge) — l pays
	// only the half-overhead it lost plus its work? No: redispatch of same
	// group is free, so l completes at sw/2 + q (h) + q (work).
	want := sw/2 + q + q
	if doneL != want {
		t.Errorf("l done at %v, want %v", doneL, want)
	}
	st := c.Stats()
	if st.BusySwitch != sw/2 {
		t.Errorf("busy switch = %v, want %v", st.BusySwitch, sw/2)
	}
}

func TestNegativeSwitchCostPanics(t *testing.T) {
	c := NewCPU(sim.NewKernel(1), 0, q)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.SetSwitchCost(-1)
}

// TestJobFairQuanta verifies the RR-job fairness property the paper takes
// from Leutenegger & Vernon: with Q = P*q/T per process, a job's processes
// on one node get ~q of CPU per rotation round regardless of T, so two jobs
// with very different process counts finish a balanced workload at nearly
// the same time.
func TestJobFairQuanta(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	// Job A: 4 processes on this node, total work 8q. With P=1 notionally,
	// Q_A = q/4 each. Job B: 1 process, work 8q, Q_B = q.
	var lastA, lastB sim.Time
	remA := 4
	for i := 0; i < 4; i++ {
		task := c.NewTask("a", PriLow)
		task.SetGroup(1)
		task.SetQuantum(q / 4)
		k.Spawn("a", func(p *sim.Proc) {
			task.Compute(p, 2*q)
			remA--
			if remA == 0 {
				lastA = p.Now()
			}
		})
	}
	tb := c.NewTask("b", PriLow)
	tb.SetGroup(2)
	tb.SetQuantum(q)
	k.Spawn("b", func(p *sim.Proc) { tb.Compute(p, 8*q); lastB = p.Now() })
	k.Run()
	// Both jobs have 8q of work and equal per-round shares; they should
	// finish within one round (~2q) of each other.
	diff := lastA - lastB
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*q {
		t.Errorf("job finish skew = %v (A=%v B=%v), want <= %v", diff, lastA, lastB, 2*q)
	}
	if k.Now() != 16*q {
		t.Errorf("makespan = %v, want %v (work conservation)", k.Now(), 16*q)
	}
}
