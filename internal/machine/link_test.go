package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestHalfLinkFIFO(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHalfLink(k, "test")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("p", func(p *sim.Proc) {
			p.Sleep(sim.Time(i)) // deterministic arrival order 0,1,2
			h.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			h.CountTransfer(50)
			h.Release()
		})
	}
	k.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	st := h.Stats()
	if st.Transfers != 3 || st.Bytes != 150 {
		t.Errorf("stats = %+v", st)
	}
	if st.BusyTime != 300 {
		t.Errorf("busy = %v, want 300", st.BusyTime)
	}
	// Waiters 1 and 2 waited (100-1) and (200-2).
	if st.WaitTime != 99+198 {
		t.Errorf("wait = %v, want %v", st.WaitTime, sim.Time(99+198))
	}
}

func TestHalfLinkImmediateWhenIdle(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHalfLink(k, "idle")
	acquired := false
	k.Spawn("p", func(p *sim.Proc) {
		h.Acquire(p)
		acquired = true
		if !h.Busy() {
			t.Error("link should be busy while held")
		}
		h.Release()
	})
	k.Run()
	if !acquired || h.Busy() {
		t.Errorf("acquired=%v busy=%v", acquired, h.Busy())
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	h := NewHalfLink(sim.NewKernel(1), "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Release()
}

func TestLinkDirections(t *testing.T) {
	k := sim.NewKernel(1)
	l := NewLink(k, 3, 7)
	if l.Dir(3) != l.AtoB || l.Dir(7) != l.BtoA {
		t.Error("Dir mapping wrong")
	}
	if l.Dir(3).Name() != "link 3->7" {
		t.Errorf("name = %q", l.Dir(3).Name())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dir on non-endpoint should panic")
		}
	}()
	l.Dir(5)
}

func TestMachineConstruction(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMachine(k, 16, mem.NodeMemory, DefaultCostModel())
	if m.Size() != 16 {
		t.Fatalf("size = %d", m.Size())
	}
	for i := 0; i < 16; i++ {
		n := m.Node(i)
		if n.ID != i || n.CPU.NodeID() != i || n.Mem.NodeID() != i {
			t.Errorf("node %d ids inconsistent", i)
		}
		if n.Mem.Capacity() != mem.NodeMemory {
			t.Errorf("node %d memory = %d", i, n.Mem.Capacity())
		}
		if n.CPU.Quantum() != 2*sim.Millisecond {
			t.Errorf("node %d quantum = %v", i, n.CPU.Quantum())
		}
	}
}

func TestMachineBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(sim.NewKernel(1), 0, 1024, DefaultCostModel())
}

func TestTransferTime(t *testing.T) {
	c := DefaultCostModel()
	// 1000 bytes at 575 ns/byte = 575 µs + 5 µs latency.
	if got := c.TransferTime(1000); got != 580*sim.Microsecond {
		t.Errorf("TransferTime(1000) = %v, want 580µs", got)
	}
	if got := c.TransferTime(0); got != c.LinkLatency {
		t.Errorf("TransferTime(0) = %v, want latency only", got)
	}
}
