package machine

import (
	"testing"

	"repro/internal/sim"
)

func TestChargeAsyncLowPriorityQueues(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var order []string
	tl := c.NewTask("app", PriLow)
	k.Spawn("app", func(p *sim.Proc) { tl.Compute(p, q); order = append(order, "app") })
	c.ChargeAsync(PriLow, q/2, func() { order = append(order, "async") })
	k.Run()
	// Both at low priority, app submitted first in spawn order? The async
	// charge is submitted synchronously before the spawned proc's first
	// compute, so it runs first.
	if len(order) != 2 || order[0] != "async" {
		t.Fatalf("order = %v", order)
	}
	st := c.Stats()
	if st.BusyLow != q+q/2 {
		t.Errorf("busy low = %v", st.BusyLow)
	}
}

func TestSuspendTaskWithoutBurst(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	task := c.NewTask("t", PriLow)
	task.Suspend() // no burst: must not panic
	task.Resume()
	var done sim.Time
	k.Spawn("t", func(p *sim.Proc) {
		task.Compute(p, q)
		done = p.Now()
	})
	k.Run()
	if done != q {
		t.Errorf("done = %v", done)
	}
}

func TestSuspendResumePreservesQueuePositionSemantics(t *testing.T) {
	// A task resumed after suspension goes to the back of its queue.
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	var order []string
	ta := c.NewTask("a", PriLow)
	tb := c.NewTask("b", PriLow)
	tc := c.NewTask("c", PriLow)
	k.Spawn("a", func(p *sim.Proc) { ta.Compute(p, 4*q); order = append(order, "a") })
	k.Spawn("b", func(p *sim.Proc) { tb.Compute(p, q/2); order = append(order, "b") })
	k.Spawn("c", func(p *sim.Proc) { p.Sleep(1); tc.Compute(p, q/2); order = append(order, "c") })
	// Suspend b while queued; resume after c joined: b lands behind c.
	k.After(2, func() { tb.Suspend() })
	k.After(3, func() { tb.Resume() })
	k.Run()
	if len(order) != 3 || order[0] != "c" || order[1] != "b" {
		t.Fatalf("order = %v, want c before b (requeue at tail)", order)
	}
}

func TestHighPriorityTaskUnaffectedByQuantum(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	th := c.NewTask("h", PriHigh)
	th.SetQuantum(q / 8) // must be ignored at high priority
	var done sim.Time
	k.Spawn("h", func(p *sim.Proc) { th.Compute(p, 3*q); done = p.Now() })
	other := c.NewTask("h2", PriHigh)
	k.Spawn("h2", func(p *sim.Proc) { other.Compute(p, q) })
	k.Run()
	if done != 3*q {
		t.Errorf("high task with tiny quantum preempted: done = %v", done)
	}
}

func TestCPUStatsBusyIncludesSwitch(t *testing.T) {
	st := CPUStats{BusyLow: 100, BusyHigh: 50, BusySwitch: 25}
	if st.Busy() != 175 {
		t.Errorf("Busy = %v", st.Busy())
	}
}

func TestHostLinkOnMachine(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMachine(k, 2, 1<<20, DefaultCostModel())
	if m.Host == nil {
		t.Fatal("machine has no host link")
	}
	done := false
	k.Spawn("loader", func(p *sim.Proc) {
		m.Host.Acquire(p)
		p.Sleep(m.Cost.LoadTime(1000))
		m.Host.CountTransfer(1000)
		m.Host.Release()
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("load did not complete")
	}
	st := m.Host.Stats()
	if st.Transfers != 1 || st.Bytes != 1000 {
		t.Errorf("host stats = %+v", st)
	}
	// 5ms fixed + 1000 x 100ns = 5.1ms.
	if want := 5*sim.Millisecond + 100*sim.Microsecond; st.BusyTime != want {
		t.Errorf("host busy = %v, want %v", st.BusyTime, want)
	}
}

// TestPreemptionStormAccounting: many alternating high bursts against one
// long low burst keep the accounting exact.
func TestPreemptionStormAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCPU(k, 0, q)
	low := c.NewTask("low", PriLow)
	var lowDone sim.Time
	k.Spawn("low", func(p *sim.Proc) {
		low.Compute(p, 10*q)
		lowDone = p.Now()
	})
	const storms = 7
	for i := 0; i < storms; i++ {
		i := i
		h := c.NewTask("h", PriHigh)
		k.Spawn("h", func(p *sim.Proc) {
			p.Sleep(sim.Time(i)*q + q/3)
			h.Compute(p, q/4)
		})
	}
	k.Run()
	k.Shutdown()
	want := 10*q + storms*(q/4)
	if lowDone != want {
		t.Errorf("low done at %v, want %v", lowDone, want)
	}
	st := c.Stats()
	if st.BusyLow != 10*q || st.BusyHigh != storms*(q/4) {
		t.Errorf("stats = %+v", st)
	}
	if st.Preemptions != storms {
		t.Errorf("preemptions = %d, want %d", st.Preemptions, storms)
	}
}
