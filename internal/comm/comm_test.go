package comm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// testCost gives round numbers for exact latency arithmetic in tests.
func testCost() machine.CostModel {
	return machine.CostModel{
		Quantum:           2000,
		LinkPerByteNS:     1000, // 1 µs/byte
		LinkLatency:       2,
		RouterHopOverhead: 20,
		SendOverhead:      10,
		RecvOverhead:      5,
		JobSwitch:         100,
		SpawnOverhead:     50,
		FlitBytes:         8,
		MsgHeaderBytes:    0,
	}
}

// rig builds a machine + network over n nodes with the given topology.
func rig(t *testing.T, kind topology.Kind, n int, mode Mode, memBytes int64) (*sim.Kernel, *machine.Machine, *Network) {
	t.Helper()
	k := sim.NewKernel(1)
	mach := machine.NewMachine(k, n, memBytes, testCost())
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	net := MustNewNetwork(mach, ids, topology.MustBuild(kind, n), mode)
	t.Cleanup(func() { k.Shutdown() })
	return k, mach, net
}

func TestModeParsing(t *testing.T) {
	for s, want := range map[string]Mode{"saf": StoreForward, "sf": StoreForward, "store-and-forward": StoreForward, "wormhole": Wormhole, "wh": Wormhole} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("telepathy"); err == nil {
		t.Error("bad mode should fail")
	}
	if StoreForward.String() != "store-and-forward" || Wormhole.String() != "wormhole" {
		t.Error("mode strings")
	}
}

func TestAddrString(t *testing.T) {
	if s := (Addr{Node: 3, Box: 1}).String(); s != "n3.b1" {
		t.Errorf("addr = %q", s)
	}
}

func TestAdjacentSendLatency(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	sender := net.NewMailbox(0)
	receiver := net.NewMailbox(1)
	var delivered, recvDone sim.Time
	var gotHops int
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(1).CPU.NewTask("recv", machine.PriLow)
		m := net.Recv(p, task, receiver)
		delivered = m.DeliveredAt
		recvDone = p.Now()
		gotHops = m.HopsTaken
		net.Release(m)
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		net.Send(p, task, &Message{Src: sender.Addr(), Dst: receiver.Addr(), Bytes: 100, Tag: "t"})
	})
	k.Run()
	// send overhead 10 + hop cpu 20 + transfer (2+100) + delivery cpu 20.
	if delivered != 152 {
		t.Errorf("delivered at %v, want 152", delivered)
	}
	if recvDone != 157 { // + recv overhead 5
		t.Errorf("recv done at %v, want 157", recvDone)
	}
	if gotHops != 1 {
		t.Errorf("hops = %d, want 1", gotHops)
	}
	st := net.Stats()
	if st.MessagesSent != 1 || st.MessagesDelivered != 1 || st.Hops != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalLatency != 142 { // 152 - sentAt(10)
		t.Errorf("latency = %v, want 142", st.TotalLatency)
	}
}

func TestSelfSendGoesThroughRouter(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 1, StoreForward, 1<<20)
	me := net.NewMailbox(0)
	var done sim.Time
	k.Spawn("self", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("self", machine.PriLow)
		net.Send(p, task, &Message{Src: me.Addr(), Dst: me.Addr(), Bytes: 50})
		m := net.Recv(p, task, me)
		done = p.Now()
		if m.HopsTaken != 0 {
			t.Errorf("self-send hops = %d", m.HopsTaken)
		}
		net.Release(m)
	})
	k.Run()
	// send 10 + delivery hop cpu 20 + recv 5 = 35. (Self-sends pay the
	// mailbox machinery, as the paper notes for the fixed architecture.)
	if done != 35 {
		t.Errorf("self send round trip = %v, want 35", done)
	}
}

func TestMultiHopAndOrderPreserved(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 4, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(3)
	var tags []string
	var hops []int
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(3).CPU.NewTask("recv", machine.PriLow)
		for i := 0; i < 3; i++ {
			m := net.Recv(p, task, dst)
			tags = append(tags, m.Tag)
			hops = append(hops, m.HopsTaken)
			net.Release(m)
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		for _, tag := range []string{"one", "two", "three"} {
			net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: 10, Tag: tag})
		}
	})
	k.Run()
	if len(tags) != 3 || tags[0] != "one" || tags[1] != "two" || tags[2] != "three" {
		t.Fatalf("tags = %v", tags)
	}
	for _, h := range hops {
		if h != 3 {
			t.Errorf("hops = %v, want all 3", hops)
		}
	}
}

func TestStoreForwardBufferBlockingDelaysMessage(t *testing.T) {
	k, mach, net := rig(t, topology.Linear, 2, StoreForward, 200)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	// Node 1 has 200 bytes; hog 150 so the 100-byte message must wait.
	if !mach.Node(1).Mem.TryAlloc(150, mem.ClassData) {
		t.Fatal("setup alloc failed")
	}
	var delivered sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(1).CPU.NewTask("recv", machine.PriLow)
		m := net.Recv(p, task, dst)
		delivered = m.DeliveredAt
		net.Release(m)
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: 100})
	})
	k.After(5000, func() { mach.Node(1).Mem.FreeBytes(150) })
	k.Run()
	// Without blocking it would deliver at 152; the buffer only frees at
	// 5000, then transfer 102 + delivery 20.
	if delivered != 5122 {
		t.Errorf("delivered at %v, want 5122", delivered)
	}
	if mach.Node(1).Mem.Stats().BlockedAllocs == 0 {
		t.Error("expected a blocked allocation at node 1")
	}
}

func TestRouterStealsCyclesFromLowPriorityApp(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 3, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(2)
	var appDone sim.Time
	// Application crunching on the intermediate node 1.
	appTask := net.NodeOf(1).CPU.NewTask("app", machine.PriLow)
	k.Spawn("app", func(p *sim.Proc) {
		appTask.Compute(p, 1000)
		appDone = p.Now()
	})
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(2).CPU.NewTask("recv", machine.PriLow)
		m := net.Recv(p, task, dst)
		net.Release(m)
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: 100})
	})
	k.Run()
	// The forwarding hop at node 1 preempts the app for 20 µs.
	if appDone != 1020 {
		t.Errorf("app done at %v, want 1020 (1000 work + 20 router theft)", appDone)
	}
	if got := net.NodeOf(1).CPU.Stats().Preemptions; got != 1 {
		t.Errorf("preemptions at node 1 = %d, want 1", got)
	}
}

func TestLinkSerialization(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	a := net.NewMailbox(0)
	b := net.NewMailbox(1)
	var deliveries []sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(1).CPU.NewTask("recv", machine.PriLow)
		for i := 0; i < 2; i++ {
			m := net.Recv(p, task, b)
			deliveries = append(deliveries, m.DeliveredAt)
			net.Release(m)
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		for i := 0; i < 2; i++ {
			net.Send(p, task, &Message{Src: a.Addr(), Dst: b.Addr(), Bytes: 100})
		}
	})
	k.Run()
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %v", deliveries)
	}
	// Transfers serialize on the one link: second delivery at least a full
	// transfer time (102) after the first.
	if gap := deliveries[1] - deliveries[0]; gap < 102 {
		t.Errorf("delivery gap = %v, want >= 102 (serialized link)", gap)
	}
}

func TestWormholeBypassesIntermediateMemory(t *testing.T) {
	run := func(mode Mode) (int64, sim.Time) {
		k := sim.NewKernel(1)
		mach := machine.NewMachine(k, 3, 1<<20, testCost())
		net := MustNewNetwork(mach, []int{0, 1, 2}, topology.MustBuild(topology.Linear, 3), mode)
		src := net.NewMailbox(0)
		dst := net.NewMailbox(2)
		var delivered sim.Time
		k.Spawn("recv", func(p *sim.Proc) {
			task := net.NodeOf(2).CPU.NewTask("recv", machine.PriLow)
			m := net.Recv(p, task, dst)
			delivered = m.DeliveredAt
			net.Release(m)
		})
		k.Spawn("send", func(p *sim.Proc) {
			task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
			net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: 1000})
		})
		k.Run()
		peak := mach.Node(1).Mem.Stats().Peak
		k.Shutdown()
		return peak, delivered
	}
	safPeak, safTime := run(StoreForward)
	whPeak, whTime := run(Wormhole)
	if safPeak < 1000 {
		t.Errorf("SAF intermediate peak = %d, want >= 1000", safPeak)
	}
	if whPeak != 0 {
		t.Errorf("wormhole intermediate peak = %d, want 0", whPeak)
	}
	if whTime >= safTime {
		t.Errorf("wormhole delivery %v not faster than SAF %v", whTime, safTime)
	}
}

func TestWormholeSelfSend(t *testing.T) {
	k, _, net := rig(t, topology.Ring, 4, Wormhole, 1<<20)
	me := net.NewMailbox(2)
	got := false
	k.Spawn("self", func(p *sim.Proc) {
		task := net.NodeOf(2).CPU.NewTask("self", machine.PriLow)
		net.Send(p, task, &Message{Src: me.Addr(), Dst: me.Addr(), Bytes: 64})
		m := net.Recv(p, task, me)
		got = m.HopsTaken == 0
		net.Release(m)
	})
	k.Run()
	if !got {
		t.Error("wormhole self-send failed")
	}
}

func TestReleaseTwicePanics(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	var msg *Message
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(1).CPU.NewTask("recv", machine.PriLow)
		msg = net.Recv(p, task, dst)
		net.Release(msg)
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: 10})
	})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Release(msg)
}

func TestSendToUnknownMailboxPanics(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		net.Send(p, task, &Message{Src: src.Addr(), Dst: Addr{Node: 1, Box: 99}, Bytes: 10})
	})
	k.Run()
}

func TestTryRecv(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	var first, second *Message
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(1).CPU.NewTask("recv", machine.PriLow)
		first = net.TryRecv(p, task, dst) // nothing yet
		p.Sleep(1000)
		second = net.TryRecv(p, task, dst)
		if second != nil {
			net.Release(second)
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: 10})
	})
	k.Run()
	if first != nil {
		t.Error("TryRecv before delivery should return nil")
	}
	if second == nil {
		t.Error("TryRecv after delivery should return the message")
	}
}

// TestAllMessagesDeliveredProperty sprays random messages across random
// topologies and checks full delivery and exact memory restitution.
func TestAllMessagesDeliveredProperty(t *testing.T) {
	f := func(seed int64, kindSel, sizeSel uint8, msgCount uint8) bool {
		kind := topology.Kind(int(kindSel) % 4)
		n := []int{2, 4, 8}[int(sizeSel)%3]
		count := int(msgCount)%24 + 1

		k := sim.NewKernel(seed)
		mach := machine.NewMachine(k, n, 1<<20, testCost())
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		net := MustNewNetwork(mach, ids, topology.MustBuild(kind, n), StoreForward)
		rng := rand.New(rand.NewSource(seed))

		boxes := make([]*Mailbox, n)
		for i := range boxes {
			boxes[i] = net.NewMailbox(i)
		}
		received := 0
		// One receiver per node draining everything sent to it.
		perNode := make([]int, n)
		type plan struct{ src, dst, bytes, delay int }
		var plans []plan
		for i := 0; i < count; i++ {
			pl := plan{src: rng.Intn(n), dst: rng.Intn(n), bytes: rng.Intn(2000), delay: rng.Intn(500)}
			perNode[pl.dst]++
			plans = append(plans, pl)
		}
		for i := 0; i < n; i++ {
			i := i
			k.Spawn("recv", func(p *sim.Proc) {
				task := net.NodeOf(i).CPU.NewTask("recv", machine.PriLow)
				for j := 0; j < perNode[i]; j++ {
					m := net.Recv(p, task, boxes[i])
					received++
					net.Release(m)
				}
			})
		}
		for _, pl := range plans {
			pl := pl
			k.Spawn("send", func(p *sim.Proc) {
				task := net.NodeOf(pl.src).CPU.NewTask("send", machine.PriLow)
				p.Sleep(sim.Time(pl.delay))
				net.Send(p, task, &Message{Src: boxes[pl.src].Addr(), Dst: boxes[pl.dst].Addr(), Bytes: int64(pl.bytes)})
			})
		}
		k.Run()
		ok := received == count
		st := net.Stats()
		ok = ok && st.MessagesSent == int64(count) && st.MessagesDelivered == int64(count)
		for i := 0; i < n; i++ {
			if mach.Node(i).Mem.Used() != 0 {
				ok = false
			}
		}
		k.Shutdown()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Error(err)
	}
}

// TestNetworkDeterminism runs the same message storm twice and compares
// delivery timestamps.
func TestNetworkDeterminism(t *testing.T) {
	run := func() []sim.Time {
		k := sim.NewKernel(5)
		mach := machine.NewMachine(k, 8, 1<<20, testCost())
		ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
		net := MustNewNetwork(mach, ids, topology.MustBuild(topology.Mesh, 8), StoreForward)
		boxes := make([]*Mailbox, 8)
		for i := range boxes {
			boxes[i] = net.NewMailbox(i)
		}
		var times []sim.Time
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn("recv", func(p *sim.Proc) {
				task := net.NodeOf(i).CPU.NewTask("recv", machine.PriLow)
				for j := 0; j < 7; j++ {
					m := net.Recv(p, task, boxes[i])
					times = append(times, m.DeliveredAt)
					net.Release(m)
				}
			})
		}
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn("send", func(p *sim.Proc) {
				task := net.NodeOf(i).CPU.NewTask("send", machine.PriLow)
				for j := 0; j < 8; j++ {
					if j == i {
						continue
					}
					net.Send(p, task, &Message{Src: boxes[i].Addr(), Dst: boxes[j].Addr(), Bytes: int64(100 * (j + 1))})
				}
			})
		}
		k.Run()
		k.Shutdown()
		return times
	}
	a, b := run(), run()
	if len(a) != 56 || len(b) != 56 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism violated at %d", i)
		}
	}
}

func TestNetworkAccessors(t *testing.T) {
	_, mach, net := rig(t, topology.Ring, 4, StoreForward, 1<<20)
	if net.Mode() != StoreForward || net.Size() != 4 {
		t.Error("accessors")
	}
	if net.Graph().Kind != topology.Ring {
		t.Error("graph kind")
	}
	if net.GlobalNode(2) != 2 || net.NodeOf(2) != mach.Node(2) {
		t.Error("node mapping")
	}
}

func TestNetworkGraphSizeMismatchErrors(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	mach := machine.NewMachine(k, 4, 1<<20, testCost())
	if _, err := NewNetwork(mach, []int{0, 1}, topology.MustBuild(topology.Linear, 3), StoreForward); err == nil {
		t.Fatal("expected an error for a graph/node-count mismatch")
	}
	if _, err := NewNetwork(mach, []int{0, 0}, topology.MustBuild(topology.Linear, 2), StoreForward); err == nil {
		t.Fatal("expected an error for a duplicated node")
	}
}
