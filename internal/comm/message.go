// Package comm implements the mailbox-based asynchronous communication
// system of the simulated multicomputer.
//
// The paper's Transputer software provides communication only between
// adjacent processors; the authors built a mailbox system on top that routes
// messages between any pair of processors using store-and-forward switching:
// every intermediate node must reserve a buffer (from its MMU) for the whole
// message, receive it over a link, and forward it. This package reproduces
// that system: per-node router daemons run at high priority (stealing cycles
// from application processes), per-hop buffers come from the node MMUs
// (blocking when memory is tight), and links are held for the full
// serialization time of the message.
//
// A wormhole mode implements the alternative the paper's discussion points
// to ("wormhole routing, by eliminating the need for store-and-forward, can
// significantly reduce the performance sensitivity of these policies to the
// network topology"): only flit-sized buffers per hop, pipelined
// transmission, and router work only at the endpoints.
package comm

import (
	"fmt"

	"repro/internal/sim"
)

// Mode selects the switching discipline.
type Mode int

const (
	// StoreForward is the paper's switching: full-message buffer per hop.
	StoreForward Mode = iota
	// Wormhole pipelines flits through held channels; the ablation mode.
	Wormhole
)

func (m Mode) String() string {
	if m == Wormhole {
		return "wormhole"
	}
	return "store-and-forward"
}

// ParseMode parses "store-and-forward"/"saf" or "wormhole"/"wh".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "store-and-forward", "saf", "sf":
		return StoreForward, nil
	case "wormhole", "wh":
		return Wormhole, nil
	}
	return 0, fmt.Errorf("comm: unknown mode %q", s)
}

// Addr names a mailbox: a partition-local node index plus a box id unique on
// that node.
type Addr struct {
	Node int // partition-local node index
	Box  int
}

func (a Addr) String() string { return fmt.Sprintf("n%d.b%d", a.Node, a.Box) }

// Message is one mailbox message in flight or delivered.
type Message struct {
	Src, Dst Addr
	// Bytes is the payload size; the wire and buffer size additionally
	// include the mailbox header.
	Bytes int64
	// Tag is a small label for assertions and tracing ("B-matrix",
	// "sorted-half", ...).
	Tag string
	// Payload carries optional semantic content for workloads that verify
	// real results in tests. The simulator never inspects it.
	Payload any

	// SentAt / DeliveredAt are stamped by the network.
	SentAt, DeliveredAt sim.Time
	// HopsTaken counts link traversals experienced.
	HopsTaken int

	released bool
	// uid is nonzero for messages sent under reliable delivery; all copies
	// (original and retransmissions) share it so duplicates are suppressed.
	uid int64
}
