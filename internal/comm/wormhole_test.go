package comm

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// whRig builds a wormhole network over a linear array.
func whRig(t *testing.T, n int) (*sim.Kernel, *machine.Machine, *Network) {
	t.Helper()
	k := sim.NewKernel(1)
	mach := machine.NewMachine(k, n, 1<<20, testCost())
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	net := MustNewNetwork(mach, ids, topology.MustBuild(topology.Linear, n), Wormhole)
	t.Cleanup(func() { k.Shutdown() })
	return k, mach, net
}

func TestWormholePipelinedLatency(t *testing.T) {
	k, _, net := whRig(t, 4)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(3)
	var delivered sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(3).CPU.NewTask("recv", machine.PriLow)
		m := net.Recv(p, task, dst)
		delivered = m.DeliveredAt
		if m.HopsTaken != 3 {
			t.Errorf("hops = %d", m.HopsTaken)
		}
		net.Release(m)
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: 1000})
	})
	k.Run()
	// send 10 + src hop cpu 20 + pipelined transfer (3 hops x latency 2 +
	// 1000 bytes x 1µs) + dst hop cpu 20 = 10+20+1006+20 = 1056.
	if delivered != 1056 {
		t.Errorf("delivered at %v, want 1056", delivered)
	}
}

// TestWormholeChannelContention: two worms crossing the same link
// serialize; the second's delivery is delayed by roughly a transfer time.
func TestWormholeChannelContention(t *testing.T) {
	k, _, net := whRig(t, 3)
	a := net.NewMailbox(0)
	b := net.NewMailbox(1)
	dst := net.NewMailbox(2)
	var deliveries []sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(2).CPU.NewTask("recv", machine.PriLow)
		for i := 0; i < 2; i++ {
			m := net.Recv(p, task, dst)
			deliveries = append(deliveries, m.DeliveredAt)
			net.Release(m)
		}
	})
	// Both senders inject at t=0; their worms contend for link 1->2.
	k.Spawn("sendA", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("sendA", machine.PriLow)
		net.Send(p, task, &Message{Src: a.Addr(), Dst: dst.Addr(), Bytes: 2000})
	})
	k.Spawn("sendB", func(p *sim.Proc) {
		task := net.NodeOf(1).CPU.NewTask("sendB", machine.PriLow)
		net.Send(p, task, &Message{Src: b.Addr(), Dst: dst.Addr(), Bytes: 2000})
	})
	k.Run()
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %v", deliveries)
	}
	gap := deliveries[1] - deliveries[0]
	if gap < 1500 { // ~a 2000-byte serialization apart
		t.Errorf("worms did not serialize on the shared channel: gap %v", gap)
	}
}

// TestWormholeHoldsWholePath: while a long worm crosses links 0-1-2, a
// short worm on link 0-1 must wait even though its own hop is "free" half
// the time — head-of-line blocking, the mechanism behind the E2
// topology-sensitivity finding.
func TestWormholeHoldsWholePath(t *testing.T) {
	k, _, net := whRig(t, 3)
	a := net.NewMailbox(0)
	mid := net.NewMailbox(1)
	far := net.NewMailbox(2)
	var shortDelivered sim.Time
	k.Spawn("recvFar", func(p *sim.Proc) {
		task := net.NodeOf(2).CPU.NewTask("recvFar", machine.PriLow)
		m := net.Recv(p, task, far)
		net.Release(m)
	})
	k.Spawn("recvMid", func(p *sim.Proc) {
		task := net.NodeOf(1).CPU.NewTask("recvMid", machine.PriLow)
		m := net.Recv(p, task, mid)
		shortDelivered = m.DeliveredAt
		net.Release(m)
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		// Long worm first: occupies 0->1 and 1->2 for ~10ms.
		net.Send(p, task, &Message{Src: a.Addr(), Dst: far.Addr(), Bytes: 10000})
		// Short message queued behind it on 0->1.
		net.Send(p, task, &Message{Src: a.Addr(), Dst: mid.Addr(), Bytes: 10})
	})
	k.Run()
	if shortDelivered < 10_000 {
		t.Errorf("short worm delivered at %v, should wait for the long worm's path", shortDelivered)
	}
}

func TestWormholeLinkStatsCounted(t *testing.T) {
	k, _, net := whRig(t, 4)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(3)
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(3).CPU.NewTask("recv", machine.PriLow)
		m := net.Recv(p, task, dst)
		net.Release(m)
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: 500})
	})
	k.Run()
	total, max := net.LinkStats()
	if total.Transfers != 3 { // one per held link direction
		t.Errorf("transfers = %d, want 3", total.Transfers)
	}
	if total.Bytes != 3*500 { // wire bytes counted per link crossed
		t.Errorf("bytes = %d", total.Bytes)
	}
	if max.BusyTime <= 0 || max.BusyTime > total.BusyTime {
		t.Errorf("max %v total %v", max.BusyTime, total.BusyTime)
	}
}

func TestNetworkLinkStatsStoreForward(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 3, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(2)
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(2).CPU.NewTask("recv", machine.PriLow)
		m := net.Recv(p, task, dst)
		net.Release(m)
	})
	k.Spawn("send", func(p *sim.Proc) {
		task := net.NodeOf(0).CPU.NewTask("send", machine.PriLow)
		net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: 100})
	})
	k.Run()
	total, _ := net.LinkStats()
	if total.Transfers != 2 {
		t.Errorf("transfers = %d, want 2 (two hops)", total.Transfers)
	}
	// Each hop occupies its link for latency (2) + 100 bytes = 102.
	if total.BusyTime != 204 {
		t.Errorf("busy = %v, want 204", total.BusyTime)
	}
}
