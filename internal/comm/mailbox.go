package comm

import (
	"fmt"

	"repro/internal/sim"
)

// Mailbox is a FIFO message queue owned by one simulated process. Any number
// of senders may target it; receives are in delivery order.
type Mailbox struct {
	addr    Addr
	queue   []*Message
	waiters []*sim.Proc
	// retired marks a mailbox of a killed job: deliveries dead-letter
	// (see Network.RetireMailbox).
	retired bool
}

// Addr returns the mailbox address.
func (b *Mailbox) Addr() Addr { return b.addr }

// Len reports the number of undelivered messages queued.
func (b *Mailbox) Len() int { return len(b.queue) }

// deliver appends a message and wakes one waiter.
func (b *Mailbox) deliver(m *Message) {
	b.queue = append(b.queue, m)
	if len(b.waiters) > 0 {
		w := b.waiters[0]
		b.waiters = b.waiters[1:]
		w.Wake()
	}
}

// take blocks the calling process until a message is available and removes
// it from the queue.
func (b *Mailbox) take(p *sim.Proc) *Message {
	// Scrub the waiter entry even when the process unwinds out of Park
	// (abort path); redundant removal on the normal path is harmless.
	defer b.removeWaiter(p)
	for len(b.queue) == 0 {
		b.waiters = append(b.waiters, p)
		p.Park(fmt.Sprintf("recv on %v", b.addr))
		// A spurious wake leaves us queued as a waiter twice; scrub.
		b.removeWaiter(p)
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	return m
}

func (b *Mailbox) removeWaiter(p *sim.Proc) {
	for i, w := range b.waiters {
		if w == p {
			b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
			return
		}
	}
}
