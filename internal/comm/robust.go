package comm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// This file holds the network's fault-robustness machinery: link up/down
// state with deterministic BFS detour routing, injected message drops, and
// sender-side timeout-and-retry with duplicate suppression. All of it is
// inert — zero branches taken, zero random draws — until a fault injector or
// the scheduler switches it on, so fault-free runs are bit-identical to the
// pre-fault simulator.
//
// The robustness features model the store-and-forward mailbox system only;
// the scheduler rejects configurations combining them with wormhole mode.

// SetDropFn installs the injected-drop decision function consulted once per
// completed link traversal (nil disables). The injector's function draws
// from its private stream, so kernel determinism is preserved.
func (n *Network) SetDropFn(fn func() bool) { n.dropFn = fn }

// SetFailureHandler installs the delivery-failure callback invoked in kernel
// context when a reliable message exhausts its retry budget. The scheduler
// uses it to kill and requeue the affected job.
func (n *Network) SetFailureHandler(fn func(*Message)) { n.onFailure = fn }

// EnableReliability switches on per-message delivery timeouts: a message not
// delivered within timeout is retransmitted with exponential backoff
// (timeout, 2x, 4x, ...), at most budget times, after which the failure
// handler is told. Must be configured before any traffic.
func (n *Network) EnableReliability(timeout sim.Time, budget int) {
	if timeout <= 0 || budget < 1 {
		panic(fmt.Sprintf("comm: reliability timeout %v budget %d", timeout, budget))
	}
	n.retryTimeout = timeout
	n.retryCap = budget
	n.pending = make(map[int64]*retryState)
}

// SetLinkState applies a link fault or repair, addressed by global node ids.
// Pairs that are not a physical link of this partition are ignored, so the
// scheduler can broadcast machine-wide fault events to every partition
// network. Taking a link down drains its port queues back through routing,
// so queued messages detour immediately (or are dropped when the
// destination became unreachable).
func (n *Network) SetLinkState(globalA, globalB int, up bool) {
	a, okA := n.localOf[globalA]
	b, okB := n.localOf[globalB]
	if !okA || !okB {
		return
	}
	if b < a {
		a, b = b, a
	}
	key := [2]int{a, b}
	if _, isLink := n.links[key]; !isLink {
		return
	}
	if up {
		if !n.downLinks[key] {
			return
		}
		delete(n.downLinks, key)
	} else {
		if n.downLinks[key] {
			return
		}
		if n.downLinks == nil {
			n.downLinks = make(map[[2]int]bool)
		}
		n.downLinks[key] = true
	}
	n.recomputeRoutes()
	if !up {
		n.drainPort(a, b)
		n.drainPort(b, a)
	}
}

// linkDown reports whether the link between adjacent local nodes is down.
func (n *Network) linkDown(a, b int) bool {
	if len(n.downLinks) == 0 {
		return false
	}
	if b < a {
		a, b = b, a
	}
	return n.downLinks[[2]int{a, b}]
}

// recomputeRoutes rebuilds the detour table after a link state change: a BFS
// from every destination over the up links, with next hops chosen in
// ascending-neighbor order so routing stays deterministic. Unreachable pairs
// get next hop -1. With no links down the table is dropped and the static
// graph routes (the fault-free fast path) apply.
func (n *Network) recomputeRoutes() {
	if len(n.downLinks) == 0 {
		n.reroute = nil
		return
	}
	size := len(n.nodes)
	n.reroute = make([][]int, size)
	for d := 0; d < size; d++ {
		dist := make([]int, size)
		for i := range dist {
			dist[i] = -1
		}
		dist[d] = 0
		queue := []int{d}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, nb := range n.graph.Neighbors(v) {
				if dist[nb] >= 0 || n.linkDown(v, nb) {
					continue
				}
				dist[nb] = dist[v] + 1
				queue = append(queue, nb)
			}
		}
		next := make([]int, size)
		for s := 0; s < size; s++ {
			next[s] = -1
			if s == d {
				next[s] = s
				continue
			}
			if dist[s] < 0 {
				continue
			}
			for _, nb := range n.graph.Neighbors(s) {
				if !n.linkDown(s, nb) && dist[nb] == dist[s]-1 {
					next[s] = nb
					break
				}
			}
		}
		n.reroute[d] = next
	}
}

// nextHopLocal picks the next hop from s toward d under the current link
// state; -1 means d is unreachable from s.
func (n *Network) nextHopLocal(s, d int) int {
	if n.reroute == nil {
		return n.graph.NextHop(s, d)
	}
	return n.reroute[d][s]
}

// drainPort re-routes every message queued on local's port toward nb. Called
// when the link goes down; enqueue consults the fresh detour table, so each
// message either takes another port or is dropped as unroutable.
func (n *Network) drainPort(local, nb int) {
	port := n.graph.Port(local, nb)
	if port < 0 {
		return
	}
	q := n.routers[local].portQ[port]
	msgs := q.queue
	q.queue = nil
	for _, m := range msgs {
		n.routers[local].enqueue(m)
	}
}

// dropAt loses a message that currently holds a buffer on the given local
// node (downed link, injected drop, or no surviving route).
func (n *Network) dropAt(local int, m *Message) {
	n.stats.Drops++
	n.NodeOf(local).Mem.FreeBytes(n.wireBytes(m))
}

// retryState tracks one reliable message awaiting delivery. attempt counts
// transmissions so far; timers carry the attempt they were armed for, so a
// stale timer (the message was since delivered or retransmitted) is ignored.
type retryState struct {
	m       *Message
	attempt int
}

// registerReliable assigns the message its uid and arms the first delivery
// timeout. Called from Send before the message enters the mailbox system.
func (n *Network) registerReliable(m *Message) {
	n.nextUID++
	m.uid = n.nextUID
	n.pending[m.uid] = &retryState{m: m, attempt: 1}
	n.armRetry(m.uid, 1)
}

// armRetry schedules the delivery timeout for the given transmission
// attempt, with exponential backoff over attempts.
func (n *Network) armRetry(uid int64, attempt int) {
	backoff := n.retryTimeout
	for i := 1; i < attempt && backoff < sim.Time(1)<<40; i++ {
		backoff *= 2
	}
	n.k.AfterFunc(backoff, func() { n.retryFire(uid, attempt) })
}

// retryFire handles a delivery timeout: retransmit if budget remains, else
// declare delivery failure.
func (n *Network) retryFire(uid int64, attempt int) {
	st, outstanding := n.pending[uid]
	if !outstanding || st.attempt != attempt {
		return // delivered, failed, or superseded in the meantime
	}
	if st.attempt > n.retryCap {
		delete(n.pending, uid)
		n.stats.DeliveryFailures++
		if n.onFailure != nil {
			n.onFailure(st.m)
		}
		return
	}
	st.attempt++
	n.stats.Retries++
	n.retransmit(st.m)
	n.armRetry(uid, st.attempt)
}

// retransmit injects a fresh copy of the message at its source node. The
// copy keeps the original SentAt (end-to-end latency includes recovery) and
// uid (so whichever copy arrives first wins and the rest are suppressed).
// The resend charges the source CPU at high priority, like router work.
func (n *Network) retransmit(orig *Message) {
	clone := &Message{
		Src:     orig.Src,
		Dst:     orig.Dst,
		Bytes:   orig.Bytes,
		Tag:     orig.Tag,
		Payload: orig.Payload,
		SentAt:  orig.SentAt,
		uid:     orig.uid,
	}
	src := clone.Src.Node
	n.k.Spawn(fmt.Sprintf("retx u%d", clone.uid), func(p *sim.Proc) {
		task := n.NodeOf(src).CPU.NewTask(fmt.Sprintf("retx n%d", src), machine.PriHigh)
		task.Compute(p, n.cost.SendOverhead)
		n.NodeOf(src).Mem.Alloc(p, n.wireBytes(clone), mem.ClassBuffer)
		n.routers[src].enqueue(clone)
	})
}
