package comm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// router is the store-and-forward mailbox software of one node. It mirrors
// the structure of the paper's system: the T805's four link DMA engines can
// move data in parallel, so there is one forwarding daemon per output port
// (plus one local-delivery daemon), but all of them charge their per-message
// processing to the node CPU at high priority, where they contend with each
// other and preempt application work.
type router struct {
	net   *Network
	local int

	deliveryQ *msgQueue
	portQ     []*msgQueue // indexed by port (ascending-neighbor order)
}

// msgQueue is a FIFO with a single daemon consumer.
type msgQueue struct {
	queue  []*Message
	daemon *sim.Proc
}

func (q *msgQueue) push(m *Message) {
	q.queue = append(q.queue, m)
	q.daemon.Wake()
}

func (q *msgQueue) pop(p *sim.Proc, what string) *Message {
	for len(q.queue) == 0 {
		p.Park(what)
	}
	m := q.queue[0]
	q.queue = q.queue[1:]
	return m
}

func newRouter(n *Network, local int) *router {
	r := &router{net: n, local: local}
	node := n.NodeOf(local)

	r.deliveryQ = &msgQueue{}
	dTask := node.CPU.NewTask(fmt.Sprintf("router%d.deliver", local), machine.PriHigh)
	r.deliveryQ.daemon = n.k.Spawn(fmt.Sprintf("router%d.deliver", local), func(p *sim.Proc) {
		for {
			m := r.deliveryQ.pop(p, "router delivery idle")
			dTask.Compute(p, n.cost.RouterHopOverhead)
			n.deliver(m)
		}
	})

	neighbors := n.graph.Neighbors(local)
	r.portQ = make([]*msgQueue, len(neighbors))
	for port, nb := range neighbors {
		port, nb := port, nb
		q := &msgQueue{}
		r.portQ[port] = q
		task := node.CPU.NewTask(fmt.Sprintf("router%d.port%d", local, port), machine.PriHigh)
		q.daemon = n.k.Spawn(fmt.Sprintf("router%d.port%d", local, port), func(p *sim.Proc) {
			r.forwardLoop(p, task, q, nb)
		})
	}
	return r
}

// enqueue routes a message (which holds a buffer on this node) to the
// delivery queue or the port queue for its next hop under the current link
// state. A message whose destination is unreachable (link failures cut the
// partition) is dropped here; reliable senders recover via retry, and the
// retry budget converts a persistent cut into a delivery-failure signal.
func (r *router) enqueue(m *Message) {
	if m.Dst.Node == r.local {
		r.deliveryQ.push(m)
		return
	}
	if r.net.reroute == nil {
		// Fault-free fast path: the static route's output port is one
		// precomputed table load, no next-hop or port scan.
		r.portQ[r.net.portTo[r.local][m.Dst.Node]].push(m)
		return
	}
	next := r.net.nextHopLocal(r.local, m.Dst.Node)
	if next < 0 {
		r.net.dropAt(r.local, m)
		return
	}
	port := r.net.graph.Port(r.local, next)
	if port < 0 {
		panic(fmt.Sprintf("comm: node %d has no port toward %d", r.local, next))
	}
	r.portQ[port].push(m)
}

// forwardLoop is one output port's store-and-forward pipeline: header
// processing on the CPU, buffer reservation at the next node (this is where
// memory contention delays messages), link serialization, then hand-off.
func (r *router) forwardLoop(p *sim.Proc, task *machine.Task, q *msgQueue, nb int) {
	n := r.net
	// The physical link set is fixed for the network's lifetime (only the
	// up/down state changes), so resolve this port's half-link once instead
	// of a map lookup per message.
	half := n.link(r.local, nb)
	nbMem := n.NodeOf(nb).Mem
	for {
		m := q.pop(p, "router port idle")
		task.Compute(p, n.cost.RouterHopOverhead)
		// The link may have failed while the message was queued (or while
		// this daemon was busy); hand it back to routing for a detour.
		if n.linkDown(r.local, nb) {
			r.enqueue(m)
			continue
		}
		wire := n.wireBytes(m)
		// Store-and-forward: the next node must hold the whole message.
		nbMem.Alloc(p, wire, mem.ClassBuffer)
		half.Acquire(p)
		if n.linkDown(r.local, nb) {
			// Failed while we waited for the channel: give everything back
			// and re-route.
			half.Release()
			nbMem.FreeBytes(wire)
			r.enqueue(m)
			continue
		}
		p.Sleep(n.cost.TransferTime(wire)) // DMA: link busy, CPU free
		half.CountTransfer(wire)
		half.Release()
		n.NodeOf(r.local).Mem.FreeBytes(wire)
		// A link failure during the transfer, or an injected drop, loses the
		// message on the wire.
		if n.linkDown(r.local, nb) || (n.dropFn != nil && n.dropFn()) {
			n.stats.Drops++
			nbMem.FreeBytes(wire)
			continue
		}
		m.HopsTaken++
		n.stats.Hops++
		n.routers[nb].enqueue(m)
	}
}

// sendWormhole implements the ablation switching mode: the message becomes a
// "worm" that reserves the whole channel path, keeps only flit-sized state
// per hop, and pipelines its bytes end to end. Router CPU is charged only at
// the endpoints (hardware routing in between).
func (n *Network) sendWormhole(p *sim.Proc, m *Message) {
	src, dst := m.Src.Node, m.Dst.Node
	wire := n.wireBytes(m)
	// Flit-sized channel state at the source while the worm exists.
	flit := n.cost.FlitBytes
	n.NodeOf(src).Mem.Alloc(p, flit, mem.ClassBuffer)
	n.k.Spawn(fmt.Sprintf("worm %s->%s", m.Src, m.Dst), func(wp *sim.Proc) {
		srcTask := n.NodeOf(src).CPU.NewTask("worm.src", machine.PriHigh)
		srcTask.Compute(wp, n.cost.RouterHopOverhead)
		// The destination stores the full message; reserve it before taking
		// any channel so a memory wait never stalls the network.
		n.NodeOf(dst).Mem.Alloc(wp, wire, mem.ClassBuffer)
		path := n.graph.Path(src, dst)
		// Reserve the channel path in order (deterministic; dimension-ordered
		// routes keep this deadlock-free on mesh and hypercube).
		var held []*machine.HalfLink
		for i := 0; i+1 < len(path); i++ {
			h := n.link(path[i], path[i+1])
			h.Acquire(wp)
			held = append(held, h)
		}
		hops := len(path) - 1
		if hops > 0 {
			// Pipelined: one serialization plus per-hop latency.
			wp.Sleep(sim.Time(hops)*n.cost.LinkLatency + n.cost.TransferTime(wire) - n.cost.LinkLatency)
		}
		for i := len(held) - 1; i >= 0; i-- {
			held[i].CountTransfer(wire)
			held[i].Release()
		}
		m.HopsTaken += hops
		n.stats.Hops += int64(hops)
		n.NodeOf(src).Mem.FreeBytes(flit)
		dstTask := n.NodeOf(dst).CPU.NewTask("worm.dst", machine.PriHigh)
		dstTask.Compute(wp, n.cost.RouterHopOverhead)
		n.deliver(m)
	})
}
