package comm

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// sendAt arms a send of bytes from src to dst mailboxes at time at.
func sendAt(k *sim.Kernel, net *Network, at sim.Time, src, dst *Mailbox, bytes int64, tag string) {
	k.At(at, func() {
		k.Spawn("send "+tag, func(p *sim.Proc) {
			task := net.NodeOf(src.Addr().Node).CPU.NewTask("send", machine.PriLow)
			net.Send(p, task, &Message{Src: src.Addr(), Dst: dst.Addr(), Bytes: bytes, Tag: tag})
		})
	})
}

// recvInto spawns a receiver that collects every arriving message.
func recvInto(k *sim.Kernel, net *Network, box *Mailbox, out *[]*Message) {
	k.Spawn("recv", func(p *sim.Proc) {
		task := net.NodeOf(box.Addr().Node).CPU.NewTask("recv", machine.PriLow)
		for {
			m := net.Recv(p, task, box)
			*out = append(*out, m)
			net.Release(m)
		}
	})
}

// TestLinkDownDetour: on a 4-ring, cutting the direct link makes the message
// take the long way around.
func TestLinkDownDetour(t *testing.T) {
	k, _, net := rig(t, topology.Ring, 4, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	var got []*Message
	recvInto(k, net, dst, &got)
	k.At(1, func() { net.SetLinkState(0, 1, false) })
	sendAt(k, net, 10, src, dst, 64, "detour")
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if got[0].HopsTaken != 3 {
		t.Errorf("hops = %d, want 3 (detour 0-3-2-1)", got[0].HopsTaken)
	}
	if st := net.Stats(); st.Drops != 0 || st.MessagesDelivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLinkRepairRestoresRoute: after repair the direct route is used again.
func TestLinkRepairRestoresRoute(t *testing.T) {
	k, _, net := rig(t, topology.Ring, 4, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	var got []*Message
	recvInto(k, net, dst, &got)
	k.At(1, func() { net.SetLinkState(0, 1, false) })
	k.At(2, func() { net.SetLinkState(0, 1, true) })
	sendAt(k, net, 10, src, dst, 64, "direct")
	k.Run()
	if len(got) != 1 || got[0].HopsTaken != 1 {
		t.Fatalf("got %d messages, hops %v; want 1 message with 1 hop", len(got), hopsOf(got))
	}
}

// TestCutPartitionDeliveryFailure: with the destination unreachable, retries
// exhaust and the failure handler fires exactly once.
func TestCutPartitionDeliveryFailure(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	net.EnableReliability(1000, 3)
	var failed []*Message
	net.SetFailureHandler(func(m *Message) { failed = append(failed, m) })
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	var got []*Message
	recvInto(k, net, dst, &got)
	k.At(1, func() { net.SetLinkState(0, 1, false) })
	sendAt(k, net, 10, src, dst, 64, "doomed")
	k.Run()
	if len(got) != 0 {
		t.Fatalf("delivered %d messages over a cut link", len(got))
	}
	if len(failed) != 1 || failed[0].Tag != "doomed" {
		t.Fatalf("failure handler got %d calls, want 1", len(failed))
	}
	st := net.Stats()
	if st.Retries != 3 || st.DeliveryFailures != 1 {
		t.Errorf("retries=%d failures=%d, want 3 and 1", st.Retries, st.DeliveryFailures)
	}
	if st.Drops != 4 { // original + 3 retries, all unroutable at the source
		t.Errorf("drops = %d, want 4", st.Drops)
	}
}

// TestRetryRecoversAfterRepair: the link comes back before the budget runs
// out, so a retransmission gets through.
func TestRetryRecoversAfterRepair(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	net.EnableReliability(1000, 4)
	failures := 0
	net.SetFailureHandler(func(m *Message) { failures++ })
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	var got []*Message
	recvInto(k, net, dst, &got)
	k.At(1, func() { net.SetLinkState(0, 1, false) })
	k.At(2500, func() { net.SetLinkState(0, 1, true) })
	sendAt(k, net, 10, src, dst, 64, "retried")
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1 after repair", len(got))
	}
	if failures != 0 {
		t.Errorf("%d delivery failures on a recoverable fault", failures)
	}
	st := net.Stats()
	if st.Retries == 0 || st.DeliveryFailures != 0 {
		t.Errorf("retries=%d failures=%d, want >0 and 0", st.Retries, st.DeliveryFailures)
	}
	// Exactly one copy got through; the budget stopped afterwards.
	if st.MessagesDelivered != 1 {
		t.Errorf("delivered = %d, want 1", st.MessagesDelivered)
	}
}

// TestInjectedDropRecovered: a drop function that loses the first traversal
// forces exactly one retransmission.
func TestInjectedDropRecovered(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	net.EnableReliability(1000, 4)
	first := true
	net.SetDropFn(func() bool {
		drop := first
		first = false
		return drop
	})
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	var got []*Message
	recvInto(k, net, dst, &got)
	sendAt(k, net, 0, src, dst, 64, "dropped-once")
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	st := net.Stats()
	if st.Drops != 1 || st.Retries != 1 || st.Duplicates != 0 {
		t.Errorf("drops=%d retries=%d dups=%d, want 1/1/0", st.Drops, st.Retries, st.Duplicates)
	}
}

// TestDuplicateSuppressed: a timeout shorter than the transfer time makes the
// retransmission race the (healthy) original; only one copy is delivered.
func TestDuplicateSuppressed(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	// 4000-byte transfer takes ~4ms at 1 µs/byte; time out after 500 µs.
	net.EnableReliability(500, 4)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	var got []*Message
	recvInto(k, net, dst, &got)
	sendAt(k, net, 0, src, dst, 4000, "slow")
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want exactly 1", len(got))
	}
	st := net.Stats()
	if st.Retries == 0 || st.Duplicates == 0 {
		t.Errorf("retries=%d dups=%d, want both > 0", st.Retries, st.Duplicates)
	}
	if st.MessagesDelivered != 1 {
		t.Errorf("delivered = %d, want 1", st.MessagesDelivered)
	}
}

// TestRetireMailboxDeadLetters: messages to a retired mailbox are discarded
// and their buffers freed.
func TestRetireMailboxDeadLetters(t *testing.T) {
	k, mach, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	k.At(1, func() { net.RetireMailbox(dst) })
	sendAt(k, net, 10, src, dst, 64, "late")
	k.Run()
	st := net.Stats()
	if st.DeadLetters != 1 || st.MessagesDelivered != 0 {
		t.Errorf("deadLetters=%d delivered=%d, want 1 and 0", st.DeadLetters, st.MessagesDelivered)
	}
	for i := 0; i < 2; i++ {
		if used := mach.Node(i).Mem.Used(); used != 0 {
			t.Errorf("node %d holds %d bytes after dead-letter", i, used)
		}
	}
}

// TestRetireMailboxDiscardsQueue: messages already delivered but unread are
// freed at retirement.
func TestRetireMailboxDiscardsQueue(t *testing.T) {
	k, mach, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	sendAt(k, net, 0, src, dst, 64, "unread")
	k.At(100000, func() { net.RetireMailbox(dst) })
	k.Run()
	if dst.Len() != 0 {
		t.Errorf("retired mailbox still holds %d messages", dst.Len())
	}
	for i := 0; i < 2; i++ {
		if used := mach.Node(i).Mem.Used(); used != 0 {
			t.Errorf("node %d holds %d bytes after retirement", i, used)
		}
	}
}

// TestLinksSorted: the injector-facing link list is global, lower-first,
// sorted.
func TestLinksSorted(t *testing.T) {
	_, _, net := rig(t, topology.Ring, 4, StoreForward, 1<<20)
	links := net.Links()
	want := [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	if len(links) != len(want) {
		t.Fatalf("links = %v, want %v", links, want)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("links = %v, want %v", links, want)
		}
	}
}

// TestStatsAddSaturates: the overflow-safe merge pins at the int64 extremes.
func TestStatsAddSaturates(t *testing.T) {
	a := Stats{MessagesSent: 1<<63 - 10, Drops: 1<<63 - 1}
	a.Add(Stats{MessagesSent: 100, Drops: 100, Retries: 7})
	if a.MessagesSent != 1<<63-1 || a.Drops != 1<<63-1 {
		t.Errorf("saturation failed: %+v", a)
	}
	if a.Retries != 7 {
		t.Errorf("plain add broken: %+v", a)
	}
}

// TestSetLinkStateIgnoresForeignPairs: events for links outside the
// partition (or non-adjacent pairs) are ignored.
func TestSetLinkStateIgnoresForeignPairs(t *testing.T) {
	k, _, net := rig(t, topology.Linear, 2, StoreForward, 1<<20)
	net.SetLinkState(5, 6, false) // not in partition
	net.SetLinkState(0, 0, false) // not a link
	src := net.NewMailbox(0)
	dst := net.NewMailbox(1)
	var got []*Message
	recvInto(k, net, dst, &got)
	sendAt(k, net, 0, src, dst, 64, "fine")
	k.Run()
	if len(got) != 1 || got[0].HopsTaken != 1 {
		t.Fatalf("foreign link events disturbed routing: %d messages", len(got))
	}
}

func hopsOf(ms []*Message) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.HopsTaken
	}
	return out
}
