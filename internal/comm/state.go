package comm

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// Warm-state forking support: a Network's cross-job state captured at a
// quiescent instant (no message in flight anywhere) and re-installed into a
// freshly constructed, structurally identical Network.
//
// The state is deliberately small. Everything transient — router queues,
// mailbox contents, retry timers, reserved buffers — is empty at quiescence
// by definition, so what remains is counters (which future output folds in),
// the mailbox address allocator (which decides future Addr values), the
// reliable-delivery uid allocator, and which physical links are down.

// State is the serializable cross-job state of one partition network.
type State struct {
	Stats Stats `json:"stats"`
	// NextBox is the per-local-node mailbox address allocator; restoring it
	// keeps future mailbox Addrs identical to the donor's.
	NextBox []int `json:"next_box"`
	// NextUID is the reliable-delivery uid allocator.
	NextUID int64 `json:"next_uid"`
	// DownLinks lists currently failed physical links as global endpoint
	// pairs (lower id first), sorted.
	DownLinks [][2]int `json:"down_links,omitempty"`
	// Links holds per-direction half-link statistics in the network's
	// deterministic link order (sorted local pairs, lower-endpoint direction
	// first). Per direction, not aggregated: MaxLinkBusy downstream is a max
	// over directions.
	Links []machine.LinkStats `json:"links"`
}

// Quiet reports whether the network holds no transient state: no outstanding
// reliable deliveries, no queued router work, and no undelivered mailbox
// messages. Warm-state snapshots require Quiet.
func (n *Network) Quiet() bool {
	if len(n.pending) != 0 {
		return false
	}
	for _, r := range n.routers {
		if len(r.deliveryQ.queue) != 0 {
			return false
		}
		for _, q := range r.portQ {
			if len(q.queue) != 0 {
				return false
			}
		}
	}
	for _, b := range n.boxes {
		if len(b.queue) != 0 || len(b.waiters) != 0 {
			return false
		}
	}
	return true
}

// halfLinksInOrder returns every half-link in deterministic order: local
// endpoint pairs sorted ascending, lower-endpoint-origin direction first.
func (n *Network) halfLinksInOrder() []*machine.HalfLink {
	keys := make([][2]int, 0, len(n.links))
	for key := range n.links {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]*machine.HalfLink, 0, 2*len(keys))
	for _, key := range keys {
		l := n.links[key]
		out = append(out, l.AtoB, l.BtoA)
	}
	return out
}

// SnapshotState captures the cross-job state. It panics when the network is
// not Quiet — a snapshot with messages in flight would silently lose them.
func (n *Network) SnapshotState() State {
	if !n.Quiet() {
		panic("comm: snapshot of a network with messages in flight")
	}
	st := State{
		Stats:   n.stats,
		NextBox: append([]int(nil), n.nextBox...),
		NextUID: n.nextUID,
	}
	for key := range n.downLinks {
		ga, gb := n.nodes[key[0]], n.nodes[key[1]]
		if ga > gb {
			ga, gb = gb, ga
		}
		st.DownLinks = append(st.DownLinks, [2]int{ga, gb})
	}
	sort.Slice(st.DownLinks, func(i, j int) bool {
		if st.DownLinks[i][0] != st.DownLinks[j][0] {
			return st.DownLinks[i][0] < st.DownLinks[j][0]
		}
		return st.DownLinks[i][1] < st.DownLinks[j][1]
	})
	for _, h := range n.halfLinksInOrder() {
		st.Links = append(st.Links, h.Stats())
	}
	return st
}

// RestoreState installs a donor network's cross-job state into this freshly
// constructed network. The receiver must be structurally identical to the
// donor (same node set and topology) and Quiet.
func (n *Network) RestoreState(st State) error {
	if !n.Quiet() {
		return fmt.Errorf("comm: restore into a network with messages in flight")
	}
	if len(st.NextBox) != len(n.nextBox) {
		return fmt.Errorf("comm: restore next_box len %d into %d-node network", len(st.NextBox), len(n.nextBox))
	}
	half := n.halfLinksInOrder()
	if len(st.Links) != len(half) {
		return fmt.Errorf("comm: restore %d half-link stats into network with %d", len(st.Links), len(half))
	}
	n.stats = st.Stats
	copy(n.nextBox, st.NextBox)
	n.nextUID = st.NextUID
	for i, h := range half {
		h.RestoreStats(st.Links[i])
	}
	// Re-applying link failures through SetLinkState rebuilds the detour
	// table exactly as the donor's fault history left it.
	for _, l := range st.DownLinks {
		if _, ok := n.localOf[l[0]]; !ok {
			return fmt.Errorf("comm: restore of down link %d-%d outside partition", l[0], l[1])
		}
		n.SetLinkState(l[0], l[1], false)
	}
	return nil
}
