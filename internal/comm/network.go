package comm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Stats aggregates network-level counters for one partition network.
type Stats struct {
	// MessagesSent / MessagesDelivered count end-to-end messages.
	MessagesSent, MessagesDelivered int64
	// PayloadBytes is the total payload injected (headers excluded).
	PayloadBytes int64
	// Hops counts link traversals (0 for self-sends).
	Hops int64
	// TotalLatency accumulates send-to-delivery times for delivered
	// messages.
	TotalLatency sim.Time
}

// Network is the mailbox communication system over one partition: the subset
// of machine nodes assigned to the partition, wired in a topology, with
// store-and-forward router daemons (or wormhole worms) moving messages.
type Network struct {
	mach  *machine.Machine
	k     *sim.Kernel
	cost  machine.CostModel
	mode  Mode
	nodes []int // global node id per local index
	graph *topology.Graph

	links   map[[2]int]*machine.Link // key: local ids, lower first
	routers []*router                // per local node
	boxes   map[Addr]*Mailbox
	nextBox []int

	tracer trace.Tracer
	stats  Stats
}

// NewNetwork wires the given global machine nodes (in partition-local order)
// with the topology graph (which must have len(nodeIDs) nodes) and starts
// the router daemons. Each network is independent: partitions do not share
// links, matching the paper's per-partition switch configuration.
func NewNetwork(mach *machine.Machine, nodeIDs []int, g *topology.Graph, mode Mode) *Network {
	if g.N != len(nodeIDs) {
		panic(fmt.Sprintf("comm: graph size %d != node count %d", g.N, len(nodeIDs)))
	}
	n := &Network{
		mach:    mach,
		k:       mach.K,
		cost:    mach.Cost,
		mode:    mode,
		nodes:   append([]int(nil), nodeIDs...),
		graph:   g,
		links:   make(map[[2]int]*machine.Link),
		boxes:   make(map[Addr]*Mailbox),
		nextBox: make([]int, len(nodeIDs)),
	}
	for a := 0; a < g.N; a++ {
		for _, b := range g.Neighbors(a) {
			if b > a {
				n.links[[2]int{a, b}] = machine.NewLink(n.k, nodeIDs[a], nodeIDs[b])
			}
		}
	}
	n.routers = make([]*router, g.N)
	for i := range n.routers {
		n.routers[i] = newRouter(n, i)
	}
	return n
}

// SetTracer installs an optional event tracer (nil disables tracing).
func (n *Network) SetTracer(tr trace.Tracer) { n.tracer = tr }

// Mode returns the switching mode.
func (n *Network) Mode() Mode { return n.mode }

// Graph returns the partition topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// Size returns the number of nodes in the partition.
func (n *Network) Size() int { return len(n.nodes) }

// GlobalNode maps a partition-local index to the machine node id.
func (n *Network) GlobalNode(local int) int { return n.nodes[local] }

// NodeOf returns the machine node backing a local index.
func (n *Network) NodeOf(local int) *machine.Node { return n.mach.Node(n.nodes[local]) }

// Stats returns a copy of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// LinkStats aggregates the physical-link counters over the partition:
// total and maximum per-direction busy time, queue wait, transfers and
// bytes carried.
func (n *Network) LinkStats() (total, max machine.LinkStats) {
	for _, l := range n.links {
		for _, h := range []*machine.HalfLink{l.AtoB, l.BtoA} {
			st := h.Stats()
			total.BusyTime += st.BusyTime
			total.WaitTime += st.WaitTime
			total.Transfers += st.Transfers
			total.Bytes += st.Bytes
			if st.BusyTime > max.BusyTime {
				max = st
			}
		}
	}
	return total, max
}

// link returns the half-link carrying traffic from local node a to adjacent
// local node b.
func (n *Network) link(a, b int) *machine.HalfLink {
	key := [2]int{a, b}
	if b < a {
		key = [2]int{b, a}
	}
	l, ok := n.links[key]
	if !ok {
		panic(fmt.Sprintf("comm: no link between local nodes %d and %d", a, b))
	}
	return l.Dir(n.nodes[a])
}

// NewMailbox registers a mailbox on the given local node and returns it.
func (n *Network) NewMailbox(local int) *Mailbox {
	if local < 0 || local >= len(n.nodes) {
		panic(fmt.Sprintf("comm: mailbox on node %d of %d", local, len(n.nodes)))
	}
	addr := Addr{Node: local, Box: n.nextBox[local]}
	n.nextBox[local]++
	b := &Mailbox{addr: addr}
	n.boxes[addr] = b
	return b
}

func (n *Network) mailbox(a Addr) *Mailbox {
	b, ok := n.boxes[a]
	if !ok {
		panic(fmt.Sprintf("comm: send to unknown mailbox %v", a))
	}
	return b
}

// wireBytes is the buffer/wire footprint of a message.
func (n *Network) wireBytes(m *Message) int64 {
	return m.Bytes + n.cost.MsgHeaderBytes
}

// Send injects a message asynchronously. The calling process pays the send
// overhead on its CPU task, then blocks only as long as the source node's
// MMU makes it wait for the first buffer; the message then travels on its
// own. Self-sends (src node == dst node) still traverse the mailbox router,
// as on the real system.
func (n *Network) Send(p *sim.Proc, task *machine.Task, m *Message) {
	if _, ok := n.boxes[m.Dst]; !ok {
		panic(fmt.Sprintf("comm: send to unknown mailbox %v", m.Dst))
	}
	if m.Bytes < 0 {
		panic("comm: negative message size")
	}
	task.Compute(p, n.cost.SendOverhead)
	m.SentAt = n.k.Now()
	n.stats.MessagesSent++
	n.stats.PayloadBytes += m.Bytes
	trace.Emit(n.tracer, n.k.Now(), "msg", fmt.Sprintf("%s->%s", m.Src, m.Dst),
		fmt.Sprintf("send %q %dB", m.Tag, m.Bytes))
	switch n.mode {
	case StoreForward:
		// Reserve the source-node buffer, then hand off to the router.
		n.NodeOf(m.Src.Node).Mem.Alloc(p, n.wireBytes(m), mem.ClassBuffer)
		n.routers[m.Src.Node].enqueue(m)
	case Wormhole:
		n.sendWormhole(p, m)
	default:
		panic("comm: unknown mode")
	}
}

// Recv blocks until a message arrives in box, charges the receive overhead,
// and returns the message. The message's buffer remains allocated on the
// receiving node until Release is called — received data the application
// keeps is exactly memory it occupies.
func (n *Network) Recv(p *sim.Proc, task *machine.Task, box *Mailbox) *Message {
	m := box.take(p)
	task.Compute(p, n.cost.RecvOverhead)
	return m
}

// TryRecv returns the next queued message without blocking, or nil. The
// receive overhead is charged only when a message is returned.
func (n *Network) TryRecv(p *sim.Proc, task *machine.Task, box *Mailbox) *Message {
	if box.Len() == 0 {
		return nil
	}
	m := box.take(p)
	task.Compute(p, n.cost.RecvOverhead)
	return m
}

// Release frees the node memory held by a delivered message. Releasing twice
// panics: that is a double-free in the workload.
func (n *Network) Release(m *Message) {
	if m.released {
		panic(fmt.Sprintf("comm: double release of message %s->%s %q", m.Src, m.Dst, m.Tag))
	}
	m.released = true
	n.NodeOf(m.Dst.Node).Mem.FreeBytes(n.wireBytes(m))
}

// deliver hands a message to its destination mailbox. The buffer stays
// charged to the destination node until Release.
func (n *Network) deliver(m *Message) {
	m.DeliveredAt = n.k.Now()
	n.stats.MessagesDelivered++
	n.stats.TotalLatency += m.DeliveredAt - m.SentAt
	trace.Emit(n.tracer, n.k.Now(), "msg", fmt.Sprintf("%s->%s", m.Src, m.Dst),
		fmt.Sprintf("deliver %q after %d hops, %s", m.Tag, m.HopsTaken, m.DeliveredAt-m.SentAt))
	n.mailbox(m.Dst).deliver(m)
}
