package comm

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Stats aggregates network-level counters for one partition network.
type Stats struct {
	// MessagesSent / MessagesDelivered count end-to-end messages.
	MessagesSent, MessagesDelivered int64
	// PayloadBytes is the total payload injected (headers excluded).
	PayloadBytes int64
	// Hops counts link traversals (0 for self-sends).
	Hops int64
	// TotalLatency accumulates send-to-delivery times for delivered
	// messages.
	TotalLatency sim.Time
	// Robustness counters, all zero on a fault-free run. Drops counts
	// messages lost to downed links, injected drops, or unroutable
	// destinations; Retries counts retransmissions; Duplicates counts
	// suppressed second deliveries of retried messages; DeadLetters counts
	// deliveries to retired mailboxes; DeliveryFailures counts messages
	// abandoned after the retry budget was exhausted.
	Drops, Retries, Duplicates, DeadLetters, DeliveryFailures int64
}

// Add merges o into s with saturating arithmetic, so aggregating counters
// across many partitions and long fault runs can never silently wrap.
func (s *Stats) Add(o Stats) {
	s.MessagesSent = metrics.SatAdd64(s.MessagesSent, o.MessagesSent)
	s.MessagesDelivered = metrics.SatAdd64(s.MessagesDelivered, o.MessagesDelivered)
	s.PayloadBytes = metrics.SatAdd64(s.PayloadBytes, o.PayloadBytes)
	s.Hops = metrics.SatAdd64(s.Hops, o.Hops)
	s.TotalLatency = metrics.SatAddTime(s.TotalLatency, o.TotalLatency)
	s.Drops = metrics.SatAdd64(s.Drops, o.Drops)
	s.Retries = metrics.SatAdd64(s.Retries, o.Retries)
	s.Duplicates = metrics.SatAdd64(s.Duplicates, o.Duplicates)
	s.DeadLetters = metrics.SatAdd64(s.DeadLetters, o.DeadLetters)
	s.DeliveryFailures = metrics.SatAdd64(s.DeliveryFailures, o.DeliveryFailures)
}

// Network is the mailbox communication system over one partition: the subset
// of machine nodes assigned to the partition, wired in a topology, with
// store-and-forward router daemons (or wormhole worms) moving messages.
type Network struct {
	mach  *machine.Machine
	k     *sim.Kernel
	cost  machine.CostModel
	mode  Mode
	nodes []int // global node id per local index
	graph *topology.Graph

	links   map[[2]int]*machine.Link // key: local ids, lower first
	routers []*router                // per local node
	boxes   map[Addr]*Mailbox
	nextBox []int
	localOf map[int]int // global node id -> local index

	// portTo is the precomputed fault-free forwarding table:
	// portTo[src][dst] is the output port of the deterministic static route
	// (-1 on the diagonal). Built once at NewNetwork, it makes the hot
	// routing decision a single indexed load; the BFS detour table below is
	// consulted only while links are down.
	portTo [][]int8

	// Robustness state (see robust.go). downLinks keys are local pairs,
	// lower first; reroute is the BFS detour table, nil while all links are
	// up (the fault-free fast path uses the static graph routes).
	downLinks map[[2]int]bool
	reroute   [][]int
	dropFn    func() bool
	onFailure func(*Message)

	// Reliable-delivery state: per-message retry timers keyed by uid.
	retryTimeout sim.Time
	retryCap     int
	nextUID      int64
	pending      map[int64]*retryState

	tracer trace.Tracer
	stats  Stats
}

// NewNetwork wires the given global machine nodes (in partition-local order)
// with the topology graph (which must have len(nodeIDs) nodes) and starts
// the router daemons. Each network is independent: partitions do not share
// links, matching the paper's per-partition switch configuration.
func NewNetwork(mach *machine.Machine, nodeIDs []int, g *topology.Graph, mode Mode) (*Network, error) {
	if g.N != len(nodeIDs) {
		return nil, fmt.Errorf("comm: graph size %d != node count %d", g.N, len(nodeIDs))
	}
	n := &Network{
		mach:    mach,
		k:       mach.K,
		cost:    mach.Cost,
		mode:    mode,
		nodes:   append([]int(nil), nodeIDs...),
		graph:   g,
		links:   make(map[[2]int]*machine.Link),
		boxes:   make(map[Addr]*Mailbox),
		nextBox: make([]int, len(nodeIDs)),
		localOf: make(map[int]int, len(nodeIDs)),
	}
	for i, id := range nodeIDs {
		if _, dup := n.localOf[id]; dup {
			return nil, fmt.Errorf("comm: node %d appears twice in the partition", id)
		}
		n.localOf[id] = i
	}
	for a := 0; a < g.N; a++ {
		for _, b := range g.Neighbors(a) {
			if b > a {
				n.links[[2]int{a, b}] = machine.NewLink(n.k, nodeIDs[a], nodeIDs[b])
			}
		}
	}
	n.portTo = make([][]int8, g.N)
	for s := 0; s < g.N; s++ {
		row := make([]int8, g.N)
		for d := 0; d < g.N; d++ {
			if d == s {
				row[d] = -1
				continue
			}
			row[d] = int8(g.Port(s, g.NextHop(s, d)))
		}
		n.portTo[s] = row
	}
	n.routers = make([]*router, g.N)
	for i := range n.routers {
		n.routers[i] = newRouter(n, i)
	}
	return n, nil
}

// MustNewNetwork is NewNetwork but panics on error, for call sites whose
// inputs were already validated (an error there is an internal invariant
// violation, not bad configuration).
func MustNewNetwork(mach *machine.Machine, nodeIDs []int, g *topology.Graph, mode Mode) *Network {
	n, err := NewNetwork(mach, nodeIDs, g, mode)
	if err != nil {
		panic(err)
	}
	return n
}

// SetTracer installs an optional event tracer (nil disables tracing).
func (n *Network) SetTracer(tr trace.Tracer) { n.tracer = tr }

// Mode returns the switching mode.
func (n *Network) Mode() Mode { return n.mode }

// Graph returns the partition topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// Size returns the number of nodes in the partition.
func (n *Network) Size() int { return len(n.nodes) }

// GlobalNode maps a partition-local index to the machine node id.
func (n *Network) GlobalNode(local int) int { return n.nodes[local] }

// NodeOf returns the machine node backing a local index.
func (n *Network) NodeOf(local int) *machine.Node { return n.mach.Node(n.nodes[local]) }

// Stats returns a copy of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// LinkStats aggregates the physical-link counters over the partition:
// total and maximum per-direction busy time, queue wait, transfers and
// bytes carried.
func (n *Network) LinkStats() (total, max machine.LinkStats) {
	for _, l := range n.links {
		for _, h := range []*machine.HalfLink{l.AtoB, l.BtoA} {
			st := h.Stats()
			total.BusyTime += st.BusyTime
			total.WaitTime += st.WaitTime
			total.Transfers += st.Transfers
			total.Bytes += st.Bytes
			if st.BusyTime > max.BusyTime {
				max = st
			}
		}
	}
	return total, max
}

// link returns the half-link carrying traffic from local node a to adjacent
// local node b.
func (n *Network) link(a, b int) *machine.HalfLink {
	key := [2]int{a, b}
	if b < a {
		key = [2]int{b, a}
	}
	l, ok := n.links[key]
	if !ok {
		panic(fmt.Sprintf("comm: no link between local nodes %d and %d", a, b))
	}
	return l.Dir(n.nodes[a])
}

// NewMailbox registers a mailbox on the given local node and returns it.
func (n *Network) NewMailbox(local int) *Mailbox {
	if local < 0 || local >= len(n.nodes) {
		panic(fmt.Sprintf("comm: mailbox on node %d of %d", local, len(n.nodes)))
	}
	addr := Addr{Node: local, Box: n.nextBox[local]}
	n.nextBox[local]++
	b := &Mailbox{addr: addr}
	n.boxes[addr] = b
	return b
}

func (n *Network) mailbox(a Addr) *Mailbox {
	b, ok := n.boxes[a]
	if !ok {
		panic(fmt.Sprintf("comm: send to unknown mailbox %v", a))
	}
	return b
}

// wireBytes is the buffer/wire footprint of a message.
func (n *Network) wireBytes(m *Message) int64 {
	return m.Bytes + n.cost.MsgHeaderBytes
}

// Send injects a message asynchronously. The calling process pays the send
// overhead on its CPU task, then blocks only as long as the source node's
// MMU makes it wait for the first buffer; the message then travels on its
// own. Self-sends (src node == dst node) still traverse the mailbox router,
// as on the real system.
func (n *Network) Send(p *sim.Proc, task *machine.Task, m *Message) {
	if _, ok := n.boxes[m.Dst]; !ok {
		panic(fmt.Sprintf("comm: send to unknown mailbox %v", m.Dst))
	}
	if m.Bytes < 0 {
		panic("comm: negative message size")
	}
	task.Compute(p, n.cost.SendOverhead)
	m.SentAt = n.k.Now()
	n.stats.MessagesSent++
	n.stats.PayloadBytes += m.Bytes
	trace.Emit(n.tracer, n.k.Now(), "msg", fmt.Sprintf("%s->%s", m.Src, m.Dst),
		fmt.Sprintf("send %q %dB", m.Tag, m.Bytes))
	switch n.mode {
	case StoreForward:
		if n.retryTimeout > 0 {
			n.registerReliable(m)
		}
		// Reserve the source-node buffer, then hand off to the router.
		n.NodeOf(m.Src.Node).Mem.Alloc(p, n.wireBytes(m), mem.ClassBuffer)
		n.routers[m.Src.Node].enqueue(m)
	case Wormhole:
		n.sendWormhole(p, m)
	default:
		panic("comm: unknown mode")
	}
}

// Recv blocks until a message arrives in box, charges the receive overhead,
// and returns the message. The message's buffer remains allocated on the
// receiving node until Release is called — received data the application
// keeps is exactly memory it occupies.
func (n *Network) Recv(p *sim.Proc, task *machine.Task, box *Mailbox) *Message {
	m := box.take(p)
	task.Compute(p, n.cost.RecvOverhead)
	return m
}

// TryRecv returns the next queued message without blocking, or nil. The
// receive overhead is charged only when a message is returned.
func (n *Network) TryRecv(p *sim.Proc, task *machine.Task, box *Mailbox) *Message {
	if box.Len() == 0 {
		return nil
	}
	m := box.take(p)
	task.Compute(p, n.cost.RecvOverhead)
	return m
}

// Release frees the node memory held by a delivered message. Releasing twice
// panics: that is a double-free in the workload.
func (n *Network) Release(m *Message) {
	if m.released {
		panic(fmt.Sprintf("comm: double release of message %s->%s %q", m.Src, m.Dst, m.Tag))
	}
	m.released = true
	n.NodeOf(m.Dst.Node).Mem.FreeBytes(n.wireBytes(m))
}

// deliver hands a message to its destination mailbox. The buffer stays
// charged to the destination node until Release. Under reliable delivery a
// copy arriving after its uid was already delivered (a retransmission racing
// the original) or after its retry budget was declared exhausted is
// suppressed; a copy for a retired mailbox is dead-lettered. Both free the
// buffer and settle the retry state.
func (n *Network) deliver(m *Message) {
	if m.uid != 0 {
		if _, outstanding := n.pending[m.uid]; !outstanding {
			n.stats.Duplicates++
			n.discard(m)
			return
		}
	}
	box := n.mailbox(m.Dst)
	if box.retired {
		if m.uid != 0 {
			delete(n.pending, m.uid)
		}
		n.stats.DeadLetters++
		n.discard(m)
		return
	}
	if m.uid != 0 {
		delete(n.pending, m.uid)
	}
	m.DeliveredAt = n.k.Now()
	n.stats.MessagesDelivered++
	n.stats.TotalLatency += m.DeliveredAt - m.SentAt
	trace.Emit(n.tracer, n.k.Now(), "msg", fmt.Sprintf("%s->%s", m.Src, m.Dst),
		fmt.Sprintf("deliver %q after %d hops, %s", m.Tag, m.HopsTaken, m.DeliveredAt-m.SentAt))
	box.deliver(m)
}

// discard frees the node buffer of a message that reached its destination
// node but will not be handed to an application mailbox.
func (n *Network) discard(m *Message) {
	m.released = true
	n.NodeOf(m.Dst.Node).Mem.FreeBytes(n.wireBytes(m))
}

// RetireMailbox takes a mailbox permanently out of service: queued messages
// are discarded and their buffers freed, and future deliveries dead-letter.
// The scheduler retires a killed job's mailboxes so in-flight traffic of a
// dead job cannot leak buffer memory or wake anyone.
func (n *Network) RetireMailbox(b *Mailbox) {
	if b.retired {
		return
	}
	b.retired = true
	for _, m := range b.queue {
		if !m.released {
			n.discard(m)
		}
	}
	b.queue = nil
}

// FreeMailbox retires a mailbox and removes it from the network entirely,
// so a long-running partition's mailbox table stays bounded by the jobs in
// flight rather than growing with every job ever run. Only for cleanly
// completed jobs — a killed job's mailboxes must stay registered (retired)
// so its in-flight traffic dead-letters instead of faulting the router.
func (n *Network) FreeMailbox(b *Mailbox) {
	n.RetireMailbox(b)
	delete(n.boxes, b.addr)
}

// Links returns the partition's physical links as global endpoint pairs
// (lower id first), sorted — the deterministic link list a fault injector
// plans over.
func (n *Network) Links() [][2]int {
	out := make([][2]int, 0, len(n.links))
	for key := range n.links {
		ga, gb := n.nodes[key[0]], n.nodes[key[1]]
		if ga > gb {
			ga, gb = gb, ga
		}
		out = append(out, [2]int{ga, gb})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
