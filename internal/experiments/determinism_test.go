package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestDriverDeterminismAcrossWorkers is the engine contract asserted at the
// driver level: each experiment returns identical result structures and
// identical CSV bytes at Workers=1 (the historical sequential loops) and
// Workers=8. Byte equality of the rendered CSV is the property the tools'
// golden outputs rely on.
func TestDriverDeterminismAcrossWorkers(t *testing.T) {
	cases := []struct {
		name string
		run  func(opts engine.Options) (any, string, error)
	}{
		{"figure3", func(opts engine.Options) (any, string, error) {
			fig, err := Figure3(core.Config{}, opts)
			if err != nil {
				return nil, "", err
			}
			return fig, fig.CSV(), nil
		}},
		{"figure6", func(opts engine.Options) (any, string, error) {
			fig, err := Figure6(core.Config{}, opts)
			if err != nil {
				return nil, "", err
			}
			return fig, fig.CSV(), nil
		}},
		{"quantum", func(opts engine.Options) (any, string, error) {
			points, err := QuantumSweep(DefaultQuanta, core.Config{}, opts)
			if err != nil {
				return nil, "", err
			}
			return points, QuantumCSV(points), nil
		}},
		{"faultstudy", func(opts engine.Options) (any, string, error) {
			works := make([]sim.Time, 6)
			for i := range works {
				works[i] = 60 * sim.Millisecond
			}
			batch := workload.SyntheticBatch(works, workload.Adaptive, 256, 1024, workload.DefaultAppCost())
			study, err := RunFaultStudy(FaultStudyConfig{
				Base:     core.Config{Processors: 8, PartitionSize: 4, Seed: 5, Batch: batch},
				Topology: topology.Mesh,
				Policies: []sched.Policy{sched.Static, sched.TimeShared},
				MTBFs:    []sim.Time{150 * sim.Millisecond},
				Horizon:  400 * sim.Millisecond,
			}, opts)
			if err != nil {
				return nil, "", err
			}
			return study, study.CSV(), nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqRes, seqCSV, err := tc.run(engine.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parRes, parCSV, err := tc.run(engine.Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Error("result structures diverge between Workers=1 and Workers=8")
			}
			if seqCSV != parCSV {
				t.Errorf("CSV bytes diverge between Workers=1 and Workers=8:\n-- w1 --\n%s\n-- w8 --\n%s", seqCSV, parCSV)
			}
		})
	}
}
