package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E12 — collective communication vs topology (butterfly all-reduce)

// CollectiveCell is one topology's outcome for the all-reduce workload.
type CollectiveCell struct {
	Label string
	// Single is a lone job's response (pure communication structure);
	// TS is the time-shared 16-job batch mean (structure under load).
	Single, TS sim.Time
	AvgHops    float64
}

// reduceApp builds the E12 application instance.
func reduceApp(class string) workload.App {
	vec := 2048
	if class == "large" {
		vec = 6144
	}
	return workload.NewReduce(vec, 30, workload.DefaultAppCost(), false)
}

// CollectiveTopology is extension experiment E12: iterative solvers
// synchronize with butterfly all-reduces whose partners are rank XOR 2^k —
// one hop on a hypercube, up to T/2 hops on a linear array. It measures the
// strongest topology contrast available on the machine, including the
// extension torus, for a lone job and for a time-shared batch.
func CollectiveTopology(base core.Config) ([]CollectiveCell, error) {
	base.PartitionSize = 8
	base.Arch = workload.Adaptive
	var out []CollectiveCell
	for _, kind := range topology.AllKinds() {
		cell := CollectiveCell{Label: fmt.Sprintf("8%s", kind.Letter())}

		single := base
		single.Topology = kind
		single.Policy = sched.Static
		single.Batch = workload.Batch{{ID: 0, Class: "large", Arch: workload.Adaptive, App: reduceApp("large")}}
		res, err := core.Run(single)
		if err != nil {
			return nil, fmt.Errorf("single %v: %w", kind, err)
		}
		cell.Single = res.MeanResponse()
		cell.AvgHops = res.Net.AvgHops()

		ts := base
		ts.Topology = kind
		ts.Policy = sched.TimeShared
		ts.Batch = workload.BatchSpec{
			Small: workload.PaperBatchSmall, Large: workload.PaperBatchLarge,
			Arch: workload.Adaptive, NewApp: reduceApp,
		}.Build()
		tres, err := core.Run(ts)
		if err != nil {
			return nil, fmt.Errorf("ts %v: %w", kind, err)
		}
		cell.TS = tres.MeanResponse()
		out = append(out, cell)
	}
	return out, nil
}

// CollectiveTable renders E12.
func CollectiveTable(cells []CollectiveCell) string {
	var b strings.Builder
	b.WriteString("E12 — Butterfly all-reduce vs topology (iterative-solver workload, 8-node partitions)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %10s\n", "topo", "single job", "TS batch", "avg hops")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-6s %12s %12s %10.2f\n", c.Label, fmtSec(c.Single), fmtSec(c.TS), c.AvgHops)
	}
	return b.String()
}

// CollectiveCSV renders E12 as CSV.
func CollectiveCSV(cells []CollectiveCell) string {
	var b strings.Builder
	b.WriteString("label,single_s,ts_s,avg_hops\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%s,%.6f,%.6f,%.2f\n", c.Label, c.Single.Seconds(), c.TS.Seconds(), c.AvgHops)
	}
	return b.String()
}
