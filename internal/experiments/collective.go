package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E12 — collective communication vs topology (butterfly all-reduce)

// CollectiveCell is one topology's outcome for the all-reduce workload.
type CollectiveCell struct {
	Label string
	// Single is a lone job's response (pure communication structure);
	// TS is the time-shared 16-job batch mean (structure under load).
	Single, TS sim.Time
	AvgHops    float64
}

// reduceApp builds the E12 application instance.
func reduceApp(class string) workload.App {
	vec := 2048
	if class == "large" {
		vec = 6144
	}
	return workload.NewReduce(vec, 30, workload.DefaultAppCost(), false)
}

// CollectiveTopology is extension experiment E12: iterative solvers
// synchronize with butterfly all-reduces whose partners are rank XOR 2^k —
// one hop on a hypercube, up to T/2 hops on a linear array. It measures the
// strongest topology contrast available on the machine, including the
// extension torus, for a lone job and for a time-shared batch.
func CollectiveTopology(base core.Config, opts ...engine.Options) ([]CollectiveCell, error) {
	base.PartitionSize = 8
	base.Arch = workload.Adaptive
	plan := engine.NewPlan[CollectiveCell]("E12 collective")
	for _, kind := range topology.AllKinds() {
		kind := kind
		plan.Add(kind.String(), func() (CollectiveCell, error) {
			cell := CollectiveCell{Label: fmt.Sprintf("8%s", kind.Letter())}

			single := base
			single.Topology = kind
			single.Policy = sched.Static
			single.Batch = workload.Batch{{ID: 0, Class: "large", Arch: workload.Adaptive, App: reduceApp("large")}}
			res, err := core.Run(single)
			if err != nil {
				return CollectiveCell{}, fmt.Errorf("single %v: %w", kind, err)
			}
			cell.Single = res.MeanResponse()
			cell.AvgHops = res.Net.AvgHops()

			ts := base
			ts.Topology = kind
			ts.Policy = sched.TimeShared
			ts.Batch = workload.BatchSpec{
				Small: workload.PaperBatchSmall, Large: workload.PaperBatchLarge,
				Arch: workload.Adaptive, NewApp: reduceApp,
			}.Build()
			tres, err := core.Run(ts)
			if err != nil {
				return CollectiveCell{}, fmt.Errorf("ts %v: %w", kind, err)
			}
			cell.TS = tres.MeanResponse()
			return cell, nil
		})
	}
	return engine.Execute(plan, opts...)
}

// CollectiveTable renders E12.
func CollectiveTable(cells []CollectiveCell) string {
	t := newText("E12 — Butterfly all-reduce vs topology (iterative-solver workload, 8-node partitions)")
	t.linef("%-6s %12s %12s %10s\n", "topo", "single job", "TS batch", "avg hops")
	for _, c := range cells {
		t.linef("%-6s %12s %12s %10.2f\n", c.Label, fmtSec(c.Single), fmtSec(c.TS), c.AvgHops)
	}
	return t.String()
}
