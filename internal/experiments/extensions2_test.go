package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestOpenLoadSweep(t *testing.T) {
	points, err := OpenLoadSweep([]float64{0.3, 0.85}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	light, heavy := points[0], points[1]
	// Responses grow with load for the fixed-partition policies.
	if heavy.Static4 <= light.Static4 {
		t.Errorf("static response did not grow with load: %v -> %v", light.Static4, heavy.Static4)
	}
	// At heavy load the adaptive partitioning is competitive with the best
	// fixed policy (the point of dynamic space sharing).
	best := heavy.Static4
	if heavy.Hybrid4 < best {
		best = heavy.Hybrid4
	}
	if float64(heavy.Dynamic) > 1.1*float64(best) {
		t.Errorf("dynamic %v not competitive at high load (best fixed %v)", heavy.Dynamic, best)
	}
	if !strings.Contains(LoadTable(points), "E6") {
		t.Error("table header")
	}
}

func TestGangVsRRJobClaims(t *testing.T) {
	cells, err := GangVsRRJob(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	var matmul, stencil GangCell
	for _, c := range cells {
		switch c.App {
		case "matmul":
			matmul = c
		case "stencil":
			stencil = c
		}
	}
	// Loosely-coupled matmul: the disciplines are within 10% of each other.
	mr := float64(matmul.Gang) / float64(matmul.RRJob)
	if mr < 0.9 || mr > 1.1 {
		t.Errorf("matmul gang/rrjob = %.2f, want ~1", mr)
	}
	// Tightly-synchronized stencil: coscheduling wins decisively.
	sr := float64(stencil.Gang) / float64(stencil.RRJob)
	if sr > 0.8 {
		t.Errorf("stencil gang/rrjob = %.2f, want << 1 (coscheduling advantage)", sr)
	}
	if !strings.Contains(GangTable(cells), "E7") {
		t.Error("table header")
	}
}

func TestStencilTopologyClaims(t *testing.T) {
	cells, err := StencilTopology(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // 8-node partitions: all four topologies
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		// Synchronized communication makes time-sharing interference much
		// worse than for the paper's workloads: TS at least 2x static.
		if float64(c.TS) < 2*float64(c.Static) {
			t.Errorf("%s: TS %v not >> static %v for the stencil", c.Label, c.TS, c.Static)
		}
	}
	if !strings.Contains(StencilTable(cells), "E8") {
		t.Error("table header")
	}
}

func TestScalabilityClaims(t *testing.T) {
	cells, err := Scalability([]int{16, 32}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	// With load per processor held constant, responses stay within 25% as
	// the machine doubles — no scalability cliff in either policy.
	for _, pair := range [][2]float64{
		{float64(cells[0].Static), float64(cells[1].Static)},
		{float64(cells[0].TS), float64(cells[1].TS)},
	} {
		ratio := pair[1] / pair[0]
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("scaling 16->32 changed response by %.2fx", ratio)
		}
	}
	if !strings.Contains(ScaleTable(cells), "E9") {
		t.Error("table header")
	}
	if !strings.Contains(ScaleCSV(cells), "nodes,static_s") {
		t.Error("csv header")
	}
}

func TestScalabilityRejectsBadSize(t *testing.T) {
	if _, err := Scalability([]int{20}, core.Config{}); err == nil {
		t.Error("20 nodes with 8-node partitions should fail")
	}
}

// TestValidateAllMatchesDocumentation: the reproduction certificate is
// green — every claim (including documented divergences) matches what
// EXPERIMENTS.md records.
func TestValidateAllMatchesDocumentation(t *testing.T) {
	claims, err := ValidateAll(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 12 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.OK() {
			t.Errorf("[%s] %s: got %v, documented %v (%s)", c.ID, c.Description, c.Got, c.Expected, c.Detail)
		}
	}
	table := CertificateTable(claims)
	if !strings.Contains(table, "12/12") && !strings.Contains(table, "checks match") {
		t.Errorf("certificate table malformed:\n%s", table)
	}
}

func TestBroadcastAblationClaims(t *testing.T) {
	cells, err := BroadcastAblation(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		// The binomial tree must clearly beat 15 serial sends from the root.
		if float64(c.Tree) > 0.85*float64(c.Seq) {
			t.Errorf("%s: tree %v not clearly faster than sequential %v", c.Label, c.Tree, c.Seq)
		}
	}
	if !strings.Contains(BroadcastTable(cells), "E10") {
		t.Error("table header")
	}
	if !strings.Contains(BroadcastCSV(cells), "config,sequential_s") {
		t.Error("csv header")
	}
}

func TestSortAlgorithmAblationClaims(t *testing.T) {
	cells, err := SortAlgorithmAblation(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		switch c.Algorithm {
		case "selection":
			// The paper's O(n²) effect: fixed clearly faster.
			if c.PartitionSize == 2 && c.Speedup() < 3 {
				t.Errorf("selection p=2: fixed speedup %.1f, want >= 3", c.Speedup())
			}
		case "mergesort":
			// With O(n log n) work the advantage collapses to ~1x.
			if s := c.Speedup(); s < 0.6 || s > 1.6 {
				t.Errorf("mergesort p=%d: fixed speedup %.1f, want ~1", c.PartitionSize, s)
			}
		}
	}
	if !strings.Contains(SortAlgTable(cells), "E11") {
		t.Error("table header")
	}
	if !strings.Contains(SortAlgCSV(cells), "algorithm,partition") {
		t.Error("csv header")
	}
}

func TestCollectiveTopologyClaims(t *testing.T) {
	cells, err := CollectiveTopology(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 { // L, R, M, H, T
		t.Fatalf("cells = %d", len(cells))
	}
	byLabel := map[string]CollectiveCell{}
	for _, c := range cells {
		byLabel[c.Label] = c
	}
	// Butterfly partners are single hops on the hypercube.
	if h := byLabel["8H"]; h.AvgHops != 1.0 {
		t.Errorf("hypercube avg hops = %.2f, want 1.0", h.AvgHops)
	}
	// Hypercube clearly beats the linear array for the lone job.
	if float64(byLabel["8L"].Single) < 1.2*float64(byLabel["8H"].Single) {
		t.Errorf("linear %v not clearly slower than hypercube %v",
			byLabel["8L"].Single, byLabel["8H"].Single)
	}
	// XOR offsets never exceed N/2, so the ring's wraparound cannot help:
	// linear and ring coincide for this traffic.
	if byLabel["8L"].Single != byLabel["8R"].Single {
		t.Errorf("linear %v and ring %v should coincide for butterfly traffic",
			byLabel["8L"].Single, byLabel["8R"].Single)
	}
	if !strings.Contains(CollectiveTable(cells), "E12") {
		t.Error("table header")
	}
	if !strings.Contains(CollectiveCSV(cells), "label,single_s") {
		t.Error("csv header")
	}
}
