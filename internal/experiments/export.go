package experiments

import (
	"fmt"
	"strings"
)

// CSV renders the figure as comma-separated values (one row per cell) for
// plotting outside the harness. Times are in seconds.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("label,partition,topology,static_avg_s,static_best_s,static_worst_s,ts_s,ts_over_static,ts_mem_blocked_s,ts_overhead_frac\n")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%s,%d,%s,%.6f,%.6f,%.6f,%.6f,%.4f,%.6f,%.4f\n",
			c.Label, c.PartitionSize, c.Topology,
			c.Static.Seconds(), c.StaticBest.Seconds(), c.StaticWorst.Seconds(),
			c.TS.Seconds(), c.Ratio(), c.TSMemBlocked.Seconds(), c.TSOverheadFrac)
	}
	return b.String()
}

// VarianceCSV renders E1.
func VarianceCSV(points []VariancePoint) string {
	var b strings.Builder
	b.WriteString("cv,static_s,ts_s\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.2f,%.6f,%.6f\n", p.CV, p.Static.Seconds(), p.TS.Seconds())
	}
	return b.String()
}

// AblationCSV renders E2.
func AblationCSV(cells []AblationCell) string {
	var b strings.Builder
	b.WriteString("label,saf_s,wormhole_s,saf_mem_blocked_s,wh_mem_blocked_s\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%s,%.6f,%.6f,%.6f,%.6f\n",
			c.Label, c.SAF.Seconds(), c.WH.Seconds(), c.SAFBlock.Seconds(), c.WHBlock.Seconds())
	}
	return b.String()
}

// QuantumCSV renders E3.
func QuantumCSV(points []QuantumPoint) string {
	var b strings.Builder
	b.WriteString("quantum_us,ts_s,overhead_frac\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%.6f,%.4f\n", int64(p.Q), p.TS.Seconds(), p.OverheadFrac)
	}
	return b.String()
}

// RRCSV renders E4.
func RRCSV(r *RRComparisonResult) string {
	var b strings.Builder
	b.WriteString("policy,narrow_s,wide_s\n")
	fmt.Fprintf(&b, "rr-job,%.6f,%.6f\n", r.RRJobSmall.Seconds(), r.RRJobBig.Seconds())
	fmt.Fprintf(&b, "rr-process,%.6f,%.6f\n", r.RRProcSmall.Seconds(), r.RRProcBig.Seconds())
	return b.String()
}

// MPLCSV renders E5.
func MPLCSV(points []MPLPoint) string {
	var b strings.Builder
	b.WriteString("mpl,ts_s,mem_blocked_s\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%.6f,%.6f\n", p.MaxResident, p.Mean.Seconds(), p.MemBlocked.Seconds())
	}
	return b.String()
}

// LoadCSV renders E6.
func LoadCSV(points []LoadPoint) string {
	var b strings.Builder
	b.WriteString("rho,static4_s,hybrid4_s,dynamic_s\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.2f,%.6f,%.6f,%.6f\n",
			p.Rho, p.Static4.Seconds(), p.Hybrid4.Seconds(), p.Dynamic.Seconds())
	}
	return b.String()
}

// GangCSV renders E7.
func GangCSV(cells []GangCell) string {
	var b strings.Builder
	b.WriteString("app,rrjob_s,gang_s,rrjob_overhead,gang_overhead\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%s,%.6f,%.6f,%.4f,%.4f\n",
			c.App, c.RRJob.Seconds(), c.Gang.Seconds(), c.RRJobOvh, c.GangOverhead)
	}
	return b.String()
}

// StencilCSV renders E8.
func StencilCSV(cells []StencilCell) string {
	var b strings.Builder
	b.WriteString("label,static_s,ts_s,ts_avg_msg_latency_us\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%s,%.6f,%.6f,%d\n",
			c.Label, c.Static.Seconds(), c.TS.Seconds(), int64(c.TSAvgLat))
	}
	return b.String()
}
