package experiments

// CSV exporters for every figure and extension sweep. Each declares its
// header columns and typed cells; formatting and escaping live in the
// shared row-writer (render.go). Times are in seconds.

// CSV renders the figure as comma-separated values (one row per cell) for
// plotting outside the harness.
func (f *Figure) CSV() string {
	w := newCSV("label", "partition", "topology", "static_avg_s", "static_best_s",
		"static_worst_s", "ts_s", "ts_over_static", "ts_mem_blocked_s", "ts_overhead_frac")
	for _, c := range f.Cells {
		w.row(c.Label, c.PartitionSize, c.Topology,
			secs(c.Static), secs(c.StaticBest), secs(c.StaticWorst),
			secs(c.TS), fix4(c.Ratio()), secs(c.TSMemBlocked), fix4(c.TSOverheadFrac))
	}
	return w.String()
}

// VarianceCSV renders E1.
func VarianceCSV(points []VariancePoint) string {
	w := newCSV("cv", "static_s", "ts_s")
	for _, p := range points {
		w.row(fix2(p.CV), secs(p.Static), secs(p.TS))
	}
	return w.String()
}

// AblationCSV renders E2.
func AblationCSV(cells []AblationCell) string {
	w := newCSV("label", "saf_s", "wormhole_s", "saf_mem_blocked_s", "wh_mem_blocked_s")
	for _, c := range cells {
		w.row(c.Label, secs(c.SAF), secs(c.WH), secs(c.SAFBlock), secs(c.WHBlock))
	}
	return w.String()
}

// QuantumCSV renders E3.
func QuantumCSV(points []QuantumPoint) string {
	w := newCSV("quantum_us", "ts_s", "overhead_frac")
	for _, p := range points {
		w.row(int64(p.Q), secs(p.TS), fix4(p.OverheadFrac))
	}
	return w.String()
}

// RRCSV renders E4.
func RRCSV(r *RRComparisonResult) string {
	w := newCSV("policy", "narrow_s", "wide_s")
	w.row("rr-job", secs(r.RRJobSmall), secs(r.RRJobBig))
	w.row("rr-process", secs(r.RRProcSmall), secs(r.RRProcBig))
	return w.String()
}

// MPLCSV renders E5.
func MPLCSV(points []MPLPoint) string {
	w := newCSV("mpl", "ts_s", "mem_blocked_s")
	for _, p := range points {
		w.row(p.MaxResident, secs(p.Mean), secs(p.MemBlocked))
	}
	return w.String()
}

// LoadCSV renders E6.
func LoadCSV(points []LoadPoint) string {
	w := newCSV("rho", "static4_s", "hybrid4_s", "dynamic_s")
	for _, p := range points {
		w.row(fix2(p.Rho), secs(p.Static4), secs(p.Hybrid4), secs(p.Dynamic))
	}
	return w.String()
}

// GangCSV renders E7.
func GangCSV(cells []GangCell) string {
	w := newCSV("app", "rrjob_s", "gang_s", "rrjob_overhead", "gang_overhead")
	for _, c := range cells {
		w.row(c.App, secs(c.RRJob), secs(c.Gang), fix4(c.RRJobOvh), fix4(c.GangOverhead))
	}
	return w.String()
}

// StencilCSV renders E8.
func StencilCSV(cells []StencilCell) string {
	w := newCSV("label", "static_s", "ts_s", "ts_avg_msg_latency_us")
	for _, c := range cells {
		w.row(c.Label, secs(c.Static), secs(c.TS), int64(c.TSAvgLat))
	}
	return w.String()
}

// ScaleCSV renders E9.
func ScaleCSV(cells []ScaleCell) string {
	w := newCSV("nodes", "static_s", "ts_s", "ts_mem_blocked_s", "ts_overhead_frac")
	for _, c := range cells {
		w.row(c.Machine, secs(c.Static), secs(c.TS), secs(c.TSMemBlock), fix4(c.TSOverhead))
	}
	return w.String()
}

// BroadcastCSV renders E10.
func BroadcastCSV(cells []BroadcastCell) string {
	w := newCSV("config", "sequential_s", "tree_s")
	for _, c := range cells {
		w.row(c.Label, secs(c.Seq), secs(c.Tree))
	}
	return w.String()
}

// SortAlgCSV renders E11.
func SortAlgCSV(cells []SortAlgCell) string {
	w := newCSV("algorithm", "partition", "fixed_s", "adaptive_s")
	for _, c := range cells {
		w.row(c.Algorithm, c.PartitionSize, secs(c.Fixed), secs(c.Adaptive))
	}
	return w.String()
}

// CollectiveCSV renders E12.
func CollectiveCSV(cells []CollectiveCell) string {
	w := newCSV("label", "single_s", "ts_s", "avg_hops")
	for _, c := range cells {
		w.row(c.Label, secs(c.Single), secs(c.TS), fix2(c.AvgHops))
	}
	return w.String()
}

// CSV renders the fault study as rows for plotting.
func (s *FaultStudy) CSV() string {
	w := newCSV("topology", "partition", "policy", "rate_per_node_s", "mtbf_us",
		"mean_s", "makespan_s", "nodes_failed", "job_kills", "requeues", "restarts",
		"checkpoints", "work_lost_s", "retries")
	for _, c := range s.Curves {
		for _, p := range c.Points {
			w.row(s.Topology, s.PartitionSize, c.Policy, p.Rate, int64(p.NodeMTBF),
				secs(p.Mean), secs(p.Makespan),
				p.Faults.NodesFailed, p.Faults.JobKills, p.Faults.Requeues,
				p.Faults.Restarts, p.Faults.Checkpoints, secs(p.Faults.WorkLost), p.Retries)
		}
	}
	return w.String()
}
