package experiments

import "repro/internal/metrics"

// CSV and JSON exporters for every figure and extension sweep. Each
// experiment declares its header columns and typed row cells exactly once;
// the two renderings share the row feed, so a column added to the CSV is in
// the JSON by construction. Formatting and escaping live in the shared
// row-writers (render.go). Times are in seconds.

// rowWriter is what the two document writers (csvWriter, jsonWriter) have
// in common: a typed-cell row sink.
type rowWriter interface {
	row(cells ...any)
}

// renderRows materializes one experiment export: the same column list and
// row feed through whichever writer the caller picked.
func renderCSV(cols []string, feed func(rowWriter)) string {
	w := newCSV(cols...)
	feed(w)
	return w.String()
}

func renderJSON(cols []string, feed func(rowWriter)) string {
	w := newJSON(cols...)
	feed(w)
	return w.String()
}

var figureCols = []string{"label", "partition", "topology", "static_avg_s", "static_best_s",
	"static_worst_s", "ts_s", "ts_over_static", "ts_mem_blocked_s", "ts_overhead_frac"}

func (f *Figure) rows(w rowWriter) {
	for _, c := range f.Cells {
		w.row(c.Label, c.PartitionSize, c.Topology,
			secs(c.Static), secs(c.StaticBest), secs(c.StaticWorst),
			secs(c.TS), fix4(c.Ratio()), secs(c.TSMemBlocked), fix4(c.TSOverheadFrac))
	}
}

// CSV renders the figure as comma-separated values (one row per cell) for
// plotting outside the harness.
func (f *Figure) CSV() string { return renderCSV(figureCols, f.rows) }

// JSON renders the figure as an array of row objects — the encoding schedd
// serves over HTTP.
func (f *Figure) JSON() string { return renderJSON(figureCols, f.rows) }

var varianceCols = []string{"cv", "static_s", "ts_s"}

func varianceRows(points []VariancePoint) func(rowWriter) {
	return func(w rowWriter) {
		for _, p := range points {
			w.row(fix2(p.CV), secs(p.Static), secs(p.TS))
		}
	}
}

// VarianceCSV renders E1.
func VarianceCSV(points []VariancePoint) string { return renderCSV(varianceCols, varianceRows(points)) }

// VarianceJSON renders E1 as JSON rows.
func VarianceJSON(points []VariancePoint) string {
	return renderJSON(varianceCols, varianceRows(points))
}

var ablationCols = []string{"label", "saf_s", "wormhole_s", "saf_mem_blocked_s", "wh_mem_blocked_s"}

func ablationRows(cells []AblationCell) func(rowWriter) {
	return func(w rowWriter) {
		for _, c := range cells {
			w.row(c.Label, secs(c.SAF), secs(c.WH), secs(c.SAFBlock), secs(c.WHBlock))
		}
	}
}

// AblationCSV renders E2.
func AblationCSV(cells []AblationCell) string { return renderCSV(ablationCols, ablationRows(cells)) }

// AblationJSON renders E2 as JSON rows.
func AblationJSON(cells []AblationCell) string { return renderJSON(ablationCols, ablationRows(cells)) }

var quantumCols = []string{"quantum_us", "ts_s", "overhead_frac"}

func quantumRows(points []QuantumPoint) func(rowWriter) {
	return func(w rowWriter) {
		for _, p := range points {
			w.row(int64(p.Q), secs(p.TS), fix4(p.OverheadFrac))
		}
	}
}

// QuantumCSV renders E3.
func QuantumCSV(points []QuantumPoint) string { return renderCSV(quantumCols, quantumRows(points)) }

// QuantumJSON renders E3 as JSON rows.
func QuantumJSON(points []QuantumPoint) string { return renderJSON(quantumCols, quantumRows(points)) }

var rrCols = []string{"policy", "narrow_s", "wide_s"}

func rrRows(r *RRComparisonResult) func(rowWriter) {
	return func(w rowWriter) {
		w.row("rr-job", secs(r.RRJobSmall), secs(r.RRJobBig))
		w.row("rr-process", secs(r.RRProcSmall), secs(r.RRProcBig))
	}
}

// RRCSV renders E4.
func RRCSV(r *RRComparisonResult) string { return renderCSV(rrCols, rrRows(r)) }

// RRJSON renders E4 as JSON rows.
func RRJSON(r *RRComparisonResult) string { return renderJSON(rrCols, rrRows(r)) }

var mplCols = []string{"mpl", "ts_s", "mem_blocked_s"}

func mplRows(points []MPLPoint) func(rowWriter) {
	return func(w rowWriter) {
		for _, p := range points {
			w.row(p.MaxResident, secs(p.Mean), secs(p.MemBlocked))
		}
	}
}

// MPLCSV renders E5.
func MPLCSV(points []MPLPoint) string { return renderCSV(mplCols, mplRows(points)) }

// MPLJSON renders E5 as JSON rows.
func MPLJSON(points []MPLPoint) string { return renderJSON(mplCols, mplRows(points)) }

var loadCols = []string{"rho", "static4_s", "hybrid4_s", "dynamic_s"}

func loadRows(points []LoadPoint) func(rowWriter) {
	return func(w rowWriter) {
		for _, p := range points {
			w.row(fix2(p.Rho), secs(p.Static4), secs(p.Hybrid4), secs(p.Dynamic))
		}
	}
}

// LoadCSV renders E6.
func LoadCSV(points []LoadPoint) string { return renderCSV(loadCols, loadRows(points)) }

// LoadJSON renders E6 as JSON rows.
func LoadJSON(points []LoadPoint) string { return renderJSON(loadCols, loadRows(points)) }

var gangCols = []string{"app", "rrjob_s", "gang_s", "rrjob_overhead", "gang_overhead"}

func gangRows(cells []GangCell) func(rowWriter) {
	return func(w rowWriter) {
		for _, c := range cells {
			w.row(c.App, secs(c.RRJob), secs(c.Gang), fix4(c.RRJobOvh), fix4(c.GangOverhead))
		}
	}
}

// GangCSV renders E7.
func GangCSV(cells []GangCell) string { return renderCSV(gangCols, gangRows(cells)) }

// GangJSON renders E7 as JSON rows.
func GangJSON(cells []GangCell) string { return renderJSON(gangCols, gangRows(cells)) }

var stencilCols = []string{"label", "static_s", "ts_s", "ts_avg_msg_latency_us"}

func stencilRows(cells []StencilCell) func(rowWriter) {
	return func(w rowWriter) {
		for _, c := range cells {
			w.row(c.Label, secs(c.Static), secs(c.TS), int64(c.TSAvgLat))
		}
	}
}

// StencilCSV renders E8.
func StencilCSV(cells []StencilCell) string { return renderCSV(stencilCols, stencilRows(cells)) }

// StencilJSON renders E8 as JSON rows.
func StencilJSON(cells []StencilCell) string { return renderJSON(stencilCols, stencilRows(cells)) }

var scaleCols = []string{"nodes", "static_s", "ts_s", "ts_mem_blocked_s", "ts_overhead_frac"}

func scaleRows(cells []ScaleCell) func(rowWriter) {
	return func(w rowWriter) {
		for _, c := range cells {
			w.row(c.Machine, secs(c.Static), secs(c.TS), secs(c.TSMemBlock), fix4(c.TSOverhead))
		}
	}
}

// ScaleCSV renders E9.
func ScaleCSV(cells []ScaleCell) string { return renderCSV(scaleCols, scaleRows(cells)) }

// ScaleJSON renders E9 as JSON rows.
func ScaleJSON(cells []ScaleCell) string { return renderJSON(scaleCols, scaleRows(cells)) }

var broadcastCols = []string{"config", "sequential_s", "tree_s"}

func broadcastRows(cells []BroadcastCell) func(rowWriter) {
	return func(w rowWriter) {
		for _, c := range cells {
			w.row(c.Label, secs(c.Seq), secs(c.Tree))
		}
	}
}

// BroadcastCSV renders E10.
func BroadcastCSV(cells []BroadcastCell) string {
	return renderCSV(broadcastCols, broadcastRows(cells))
}

// BroadcastJSON renders E10 as JSON rows.
func BroadcastJSON(cells []BroadcastCell) string {
	return renderJSON(broadcastCols, broadcastRows(cells))
}

var sortAlgCols = []string{"algorithm", "partition", "fixed_s", "adaptive_s"}

func sortAlgRows(cells []SortAlgCell) func(rowWriter) {
	return func(w rowWriter) {
		for _, c := range cells {
			w.row(c.Algorithm, c.PartitionSize, secs(c.Fixed), secs(c.Adaptive))
		}
	}
}

// SortAlgCSV renders E11.
func SortAlgCSV(cells []SortAlgCell) string { return renderCSV(sortAlgCols, sortAlgRows(cells)) }

// SortAlgJSON renders E11 as JSON rows.
func SortAlgJSON(cells []SortAlgCell) string { return renderJSON(sortAlgCols, sortAlgRows(cells)) }

var collectiveCols = []string{"label", "single_s", "ts_s", "avg_hops"}

func collectiveRows(cells []CollectiveCell) func(rowWriter) {
	return func(w rowWriter) {
		for _, c := range cells {
			w.row(c.Label, secs(c.Single), secs(c.TS), fix2(c.AvgHops))
		}
	}
}

// CollectiveCSV renders E12.
func CollectiveCSV(cells []CollectiveCell) string {
	return renderCSV(collectiveCols, collectiveRows(cells))
}

// CollectiveJSON renders E12 as JSON rows.
func CollectiveJSON(cells []CollectiveCell) string {
	return renderJSON(collectiveCols, collectiveRows(cells))
}

var faultCols = []string{"topology", "partition", "policy", "rate_per_node_s", "mtbf_us",
	"mean_s", "makespan_s", "nodes_failed", "job_kills", "requeues", "restarts",
	"checkpoints", "work_lost_s", "retries"}

func (s *FaultStudy) rows(w rowWriter) {
	for _, c := range s.Curves {
		for _, p := range c.Points {
			w.row(s.Topology, s.PartitionSize, c.Policy, p.Rate, int64(p.NodeMTBF),
				secs(p.Mean), secs(p.Makespan),
				p.Faults.NodesFailed, p.Faults.JobKills, p.Faults.Requeues,
				p.Faults.Restarts, p.Faults.Checkpoints, secs(p.Faults.WorkLost), p.Retries)
		}
	}
}

// CSV renders the fault study as rows for plotting.
func (s *FaultStudy) CSV() string { return renderCSV(faultCols, s.rows) }

// JSON renders the fault study as JSON rows.
func (s *FaultStudy) JSON() string { return renderJSON(faultCols, s.rows) }

// FaultStudiesCSV renders several studies as one CSV document (single
// header) — byte-identical to the historical concatenate-and-strip-headers
// output of cmd/faultstudy -csv.
func FaultStudiesCSV(studies []*FaultStudy) string {
	return renderCSV(faultCols, func(w rowWriter) {
		for _, s := range studies {
			s.rows(w)
		}
	})
}

// FaultStudiesJSON renders several studies as one JSON row array.
func FaultStudiesJSON(studies []*FaultStudy) string {
	return renderJSON(faultCols, func(w rowWriter) {
		for _, s := range studies {
			s.rows(w)
		}
	})
}

// Single-run summary: the headline metrics of one core.Run, the body
// schedd serves for config-shaped (non-experiment) requests. Field set and
// rendering mirror cmd/sweep's CSV columns, with percentiles and network
// detail added; all three renderings share one column/cell feed.

var summaryCols = []string{"label", "jobs", "mean_s", "p50_s", "p95_s", "max_s",
	"makespan_s", "util", "overhead", "mem_blocked_s", "peak_mem_bytes",
	"messages", "avg_hops", "avg_latency_us", "retries"}

func summaryCells(res *metrics.Result) []any {
	return []any{
		res.Label,
		len(res.Jobs),
		secs(res.MeanResponse()),
		secs(res.ResponsePercentile(50)),
		secs(res.ResponsePercentile(95)),
		secs(res.MaxResponse()),
		secs(res.Makespan),
		fix4(res.CPUUtilization()),
		fix4(res.SystemOverheadFraction()),
		secs(res.TotalMemBlockedTime()),
		res.PeakMemory(),
		res.Net.Messages,
		fix2(res.Net.AvgHops()),
		int64(res.Net.AvgLatency()),
		res.Net.Retries,
	}
}

// SummaryJSON renders the summary as one flat JSON object.
func SummaryJSON(res *metrics.Result) string {
	o := newJSONObject()
	cells := summaryCells(res)
	for i, col := range summaryCols {
		o.field(col, cells[i])
	}
	return o.String()
}

// SummaryCSV renders the summary as a one-row CSV document.
func SummaryCSV(res *metrics.Result) string {
	w := newCSV(summaryCols...)
	w.row(summaryCells(res)...)
	return w.String()
}

// SummaryTable renders the summary as an aligned name/value text table.
func SummaryTable(res *metrics.Result) string {
	t := newText(res.Label)
	cells := summaryCells(res)
	for i, col := range summaryCols {
		if col == "label" {
			continue
		}
		t.linef("%-16s %s\n", col, csvCell(cells[i]))
	}
	return t.String()
}
