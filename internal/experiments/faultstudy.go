package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Fault-degradation study (robustness extension): how does each scheduling
// policy's mean response time degrade as the node failure rate rises? The
// paper's machine assumed reliable hardware; this study attaches the fault
// injector (package fault) with message retry and scheduler repair enabled
// and sweeps the per-node failure rate from zero upward. The zero-rate
// point runs with the injector attached but nothing to inject, so it must
// reproduce the fault-free result exactly — the study's built-in
// determinism check (RunFaultStudy verifies it and fails loudly otherwise).

// FaultPoint is one measurement of a degradation curve.
type FaultPoint struct {
	// NodeMTBF is the per-node mean time between failures (0 = the
	// zero-rate point); Rate is its reciprocal in failures per node-second.
	NodeMTBF sim.Time
	Rate     float64
	// Mean and Makespan are the batch response statistics.
	Mean, Makespan sim.Time
	// Faults are the run's fault and repair counters.
	Faults metrics.FaultStats
	// Retries counts message retransmissions (link/drop studies).
	Retries int64
}

// FaultCurve is one policy's mean-response-vs-failure-rate curve.
type FaultCurve struct {
	Policy sched.Policy
	Points []FaultPoint
}

// FaultStudy is the full sweep on one topology.
type FaultStudy struct {
	Topology      topology.Kind
	PartitionSize int
	Horizon       sim.Time
	Curves        []FaultCurve
}

// FaultRunSummary is what a fault-study point needs from one run: the
// batch statistics the curves plot plus the fault counters. It is the
// minimal surface that both core.Run and a cluster worker can supply
// losslessly, which is what lets -cluster fault studies keep the exact
// zero-rate-equals-baseline determinism check.
type FaultRunSummary struct {
	Mean, Makespan sim.Time
	Retries        int64
	Faults         *metrics.FaultStats
}

// FaultRunner executes one configuration somewhere — in process, or on a
// cluster — and returns its summary.
type FaultRunner func(core.Config) (FaultRunSummary, error)

// LocalFaultRunner runs the config in process via core.Run.
func LocalFaultRunner(cfg core.Config) (FaultRunSummary, error) {
	res, err := core.Run(cfg)
	if err != nil {
		return FaultRunSummary{}, err
	}
	return FaultRunSummary{
		Mean:     res.MeanResponse(),
		Makespan: res.Makespan,
		Retries:  res.Net.Retries,
		Faults:   res.Faults,
	}, nil
}

// FaultStudyConfig parameterizes RunFaultStudy.
type FaultStudyConfig struct {
	// Runner executes each point; nil runs in process (LocalFaultRunner).
	Runner FaultRunner
	// Base selects machine, workload and seed; Policy, Topology and Fault
	// are overridden per run. PartitionSize 0 defaults to 4.
	Base core.Config
	// Topology is the per-partition interconnect under test.
	Topology topology.Kind
	// Policies to compare; empty defaults to Static, TimeShared, RRProcess.
	Policies []sched.Policy
	// MTBFs is the ladder of per-node mean times between failures; a
	// zero-rate point is always prepended. Empty defaults to
	// 2s, 1s, 500ms, 250ms.
	MTBFs []sim.Time
	// Horizon bounds fault injection; zero defaults to 2s (about one
	// fault-free makespan, so faults span most of the run but a harsh
	// ladder still terminates).
	Horizon sim.Time
	// Checkpoint enables checkpoint/restart with this interval (0 = off);
	// CheckpointCost is the per-node CPU charge of one checkpoint.
	Checkpoint, CheckpointCost sim.Time
	// DropProb adds message drops at every non-zero ladder point; RetryTimeout
	// is the reliable-delivery timeout used with them. The timeout must exceed
	// the worst-case congested delivery latency, or healthy messages time out
	// and their jobs are spuriously killed; zero with drops defaults to 100ms.
	DropProb     float64
	RetryTimeout sim.Time
}

func (c FaultStudyConfig) withDefaults() FaultStudyConfig {
	if c.Base.PartitionSize == 0 {
		c.Base.PartitionSize = 4
	}
	if len(c.Policies) == 0 {
		c.Policies = []sched.Policy{sched.Static, sched.TimeShared, sched.RRProcess}
	}
	if len(c.MTBFs) == 0 {
		c.MTBFs = []sim.Time{2 * sim.Second, sim.Second, 500 * sim.Millisecond, 250 * sim.Millisecond}
	}
	if c.Horizon == 0 {
		c.Horizon = 2 * sim.Second
	}
	if c.Runner == nil {
		c.Runner = LocalFaultRunner
	}
	return c
}

// faultConfigAt builds the injector configuration for one ladder point.
// MTBF 0 yields the inert zero-rate config: injector attached, nothing
// armed, so the run must match the fault-free baseline exactly.
func (c FaultStudyConfig) faultConfigAt(mtbf sim.Time) *fault.Config {
	fc := &fault.Config{
		Seed:               c.Base.Seed,
		CheckpointInterval: c.Checkpoint,
		CheckpointCost:     c.CheckpointCost,
	}
	if mtbf <= 0 {
		return fc
	}
	fc.NodeMTBF = mtbf
	fc.NodeMTTR = mtbf / 10
	if fc.NodeMTTR < 5*sim.Millisecond {
		fc.NodeMTTR = 5 * sim.Millisecond
	}
	fc.Horizon = c.Horizon
	// The ladder's harsh end would exhaust a small budget; the study
	// wants the degradation curve, not an abort.
	fc.RestartBudget = 1 << 20
	fc.DropProb = c.DropProb
	fc.RetryTimeout = c.RetryTimeout
	if fc.DropProb > 0 && fc.RetryTimeout == 0 {
		fc.RetryTimeout = 100 * sim.Millisecond
	}
	return fc
}

// RunFaultStudy sweeps the failure-rate ladder for every policy on one
// topology. The zero-rate point is verified against a fault-free run of the
// same configuration: any difference means the fault machinery perturbed a
// run it should not have, and the study fails.
//
// The whole (policy × ladder) grid, baselines included, is one engine plan;
// the zero-rate check happens after collection, walking curves in the order
// the sequential sweep used so the first reported failure is the same.
func RunFaultStudy(sc FaultStudyConfig, opts ...engine.Options) (*FaultStudy, error) {
	sc = sc.withDefaults()
	study := &FaultStudy{
		Topology:      sc.Topology,
		PartitionSize: sc.Base.PartitionSize,
		Horizon:       sc.Horizon,
	}
	// Run result for one point; baselines only fill mean and makespan.
	type runOut struct {
		point          FaultPoint
		mean, makespan sim.Time
	}
	mtbfs := append([]sim.Time{0}, sc.MTBFs...)
	stride := 1 + len(mtbfs) // baseline + ladder per policy
	plan := engine.NewPlan[runOut](fmt.Sprintf("fault %s", sc.Topology))
	for _, policy := range sc.Policies {
		policy := policy
		cfg := sc.Base
		cfg.Policy = policy
		cfg.Topology = sc.Topology

		// Fault-free reference for the zero-rate check. Checkpointing is
		// excluded from the comparison: its CPU charge is a real (if small)
		// perturbation even without faults.
		plan.Add(fmt.Sprintf("%s/baseline", policy), func() (runOut, error) {
			refCfg := cfg
			refCfg.Fault = nil
			ref, err := sc.Runner(refCfg)
			if err != nil {
				return runOut{}, fmt.Errorf("fault study %s %s baseline: %w", sc.Topology, policy, err)
			}
			return runOut{mean: ref.Mean, makespan: ref.Makespan}, nil
		})
		for _, mtbf := range mtbfs {
			mtbf := mtbf
			plan.Add(fmt.Sprintf("%s/mtbf=%v", policy, mtbf), func() (runOut, error) {
				runCfg := cfg
				runCfg.Fault = sc.faultConfigAt(mtbf)
				res, err := sc.Runner(runCfg)
				if err != nil {
					return runOut{}, fmt.Errorf("fault study %s %s mtbf=%v: %w", sc.Topology, policy, mtbf, err)
				}
				pt := FaultPoint{
					NodeMTBF: mtbf,
					Mean:     res.Mean,
					Makespan: res.Makespan,
					Retries:  res.Retries,
				}
				if mtbf > 0 {
					pt.Rate = float64(sim.Second) / float64(mtbf)
				}
				if res.Faults != nil {
					pt.Faults = *res.Faults
				}
				return runOut{point: pt, mean: res.Mean, makespan: res.Makespan}, nil
			})
		}
	}
	outs, errs := engine.ExecuteAll(plan, opts...)
	for pi, policy := range sc.Policies {
		if err := errs[pi*stride]; err != nil {
			return nil, err
		}
		ref := outs[pi*stride]
		curve := FaultCurve{Policy: policy}
		for mi, mtbf := range mtbfs {
			idx := pi*stride + 1 + mi
			if err := errs[idx]; err != nil {
				return nil, err
			}
			res := outs[idx]
			if mtbf == 0 && sc.Checkpoint == 0 {
				if res.mean != ref.mean || res.makespan != ref.makespan {
					return nil, fmt.Errorf(
						"fault study %s %s: zero-rate run diverged from fault-free baseline (mean %v vs %v, makespan %v vs %v)",
						sc.Topology, policy, res.mean, ref.mean, res.makespan, ref.makespan)
				}
			}
			curve.Points = append(curve.Points, res.point)
		}
		study.Curves = append(study.Curves, curve)
	}
	return study, nil
}

// Table renders the study: one block per policy, one row per failure rate.
func (s *FaultStudy) Table() string {
	t := newText(fmt.Sprintf("Fault degradation — partition %d, %s topology, horizon %s",
		s.PartitionSize, s.Topology, s.Horizon))
	t.linef("%-12s %10s %12s %12s %8s %8s %8s %12s\n",
		"policy", "rate(/n·s)", "mean", "makespan", "fails", "kills", "ckpts", "work lost")
	for _, c := range s.Curves {
		for _, p := range c.Points {
			t.linef("%-12s %10.2f %12s %12s %8d %8d %8d %12s\n",
				c.Policy, p.Rate, fmtSec(p.Mean), fmtSec(p.Makespan),
				p.Faults.NodesFailed, p.Faults.JobKills, p.Faults.Checkpoints,
				fmtSec(p.Faults.WorkLost))
		}
	}
	return t.String()
}
