// Package experiments regenerates every figure of the paper's evaluation
// (Figures 3-6) and the extension studies its discussion calls for
// (variance sensitivity, wormhole routing, quantum and multiprogramming
// tuning, RR-process fairness). Each driver returns a structured result
// with a text table matching the paper's presentation: mean response time
// per partition configuration, static (averaged over best and worst
// submission orders, per §5.1) versus time-sharing/hybrid.
//
// Every driver builds an engine.Plan of independent points and runs it via
// engine.Execute, so sweeps scale with host cores; pass engine.Options to
// tune the worker count. Results are keyed by point index, so any worker
// count — including 1 — produces identical output.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// PartitionSizes is the paper's sweep: powers of two from 1 to 16.
var PartitionSizes = []int{1, 2, 4, 8, 16}

// Cell is one point of a figure: a partition configuration with the two
// policies' mean response times plus the explanatory measurements the
// paper's discussion leans on.
type Cell struct {
	PartitionSize int
	Topology      topology.Kind
	Label         string

	// Static is the average of best- and worst-order runs (§5.1);
	// StaticBest and StaticWorst are the components.
	Static, StaticBest, StaticWorst sim.Time
	// TS is the time-sharing (partition = 16) or hybrid (partition < 16)
	// mean response.
	TS sim.Time

	// Explanatory detail for the TS run.
	TSMemBlocked   sim.Time
	TSOverheadFrac float64
	TSAvgMsgLat    sim.Time
	StaticUtil     float64
	TSUtil         float64
}

// Ratio is TS divided by static mean response (>1 means static wins).
func (c Cell) Ratio() float64 {
	return safeRatio(c.TS, c.Static)
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID    string
	Title string
	App   core.AppKind
	Arch  workload.Arch
	Cells []Cell
}

// sweepConfigs enumerates the paper's partition-size × topology grid:
// size 1 appears once (topology is meaningless), and the 16-node hypercube
// is skipped because one transputer is reserved for the host workstation
// link (§3.1).
func sweepConfigs(machineSize int) []struct {
	P    int
	Kind topology.Kind
} {
	var out []struct {
		P    int
		Kind topology.Kind
	}
	for _, p := range PartitionSizes {
		if p > machineSize {
			continue
		}
		if p == 1 {
			out = append(out, struct {
				P    int
				Kind topology.Kind
			}{1, topology.Linear})
			continue
		}
		for _, k := range topology.Kinds() {
			if k == topology.Hypercube && p == machineSize {
				continue // host-link transputer: no full-size hypercube
			}
			out = append(out, struct {
				P    int
				Kind topology.Kind
			}{p, k})
		}
	}
	return out
}

// RunFigure produces one of Figures 3-6: the given application and software
// architecture across every partition size and topology, static versus
// time-sharing/hybrid. Cells are independent simulations and run on the
// engine's worker pool.
func RunFigure(id, title string, app core.AppKind, arch workload.Arch, base core.Config, opts ...engine.Options) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, App: app, Arch: arch}
	base.App = app
	base.Arch = arch
	plan := engine.NewPlan[Cell](id)
	for _, sc := range sweepConfigs(machineSize(base)) {
		label := fmt.Sprintf("%d%s", sc.P, sc.Kind.Letter())
		if sc.P == 1 {
			label = "1"
		}
		sc := sc
		plan.Add(label, func() (Cell, error) {
			cfg := base
			cfg.PartitionSize = sc.P
			cfg.Topology = sc.Kind

			staticMean, best, worst, err := core.StaticAveraged(cfg)
			if err != nil {
				return Cell{}, fmt.Errorf("%s %d%s static: %w", id, sc.P, sc.Kind.Letter(), err)
			}
			tsCfg := cfg
			tsCfg.Policy = sched.TimeShared
			tsCfg.Order = core.Submission
			ts, err := core.Run(tsCfg)
			if err != nil {
				return Cell{}, fmt.Errorf("%s %d%s ts: %w", id, sc.P, sc.Kind.Letter(), err)
			}
			return Cell{
				PartitionSize:  sc.P,
				Topology:       sc.Kind,
				Label:          label,
				Static:         staticMean,
				StaticBest:     best.MeanResponse(),
				StaticWorst:    worst.MeanResponse(),
				TS:             ts.MeanResponse(),
				TSMemBlocked:   ts.TotalMemBlockedTime(),
				TSOverheadFrac: ts.SystemOverheadFraction(),
				TSAvgMsgLat:    ts.Net.AvgLatency(),
				StaticUtil:     (best.CPUUtilization() + worst.CPUUtilization()) / 2,
				TSUtil:         ts.CPUUtilization(),
			}, nil
		})
	}
	cells, err := engine.Execute(plan, opts...)
	if err != nil {
		return nil, err
	}
	fig.Cells = cells
	return fig, nil
}

func machineSize(c core.Config) int {
	if c.Processors == 0 {
		return 16
	}
	return c.Processors
}

// Figure3 reproduces "Mean response time for the matrix multiplication
// application — Fixed software architecture".
func Figure3(base core.Config, opts ...engine.Options) (*Figure, error) {
	return RunFigure("Figure 3", "Matrix multiplication, fixed software architecture",
		core.MatMul, workload.Fixed, base, opts...)
}

// Figure4 reproduces the adaptive-architecture matmul figure.
func Figure4(base core.Config, opts ...engine.Options) (*Figure, error) {
	return RunFigure("Figure 4", "Matrix multiplication, adaptive software architecture",
		core.MatMul, workload.Adaptive, base, opts...)
}

// Figure5 reproduces the fixed-architecture sort figure.
func Figure5(base core.Config, opts ...engine.Options) (*Figure, error) {
	return RunFigure("Figure 5", "Sort, fixed software architecture",
		core.Sort, workload.Fixed, base, opts...)
}

// Figure6 reproduces the adaptive-architecture sort figure.
func Figure6(base core.Config, opts ...engine.Options) (*Figure, error) {
	return RunFigure("Figure 6", "Sort, adaptive software architecture",
		core.Sort, workload.Adaptive, base, opts...)
}

// Table renders the figure in the paper's orientation: one row per
// partition configuration, static vs time-sharing columns.
func (f *Figure) Table() string {
	t := newText(fmt.Sprintf("%s — %s", f.ID, f.Title))
	t.linef("%-6s %12s %12s %12s %12s %8s %14s %8s\n",
		"part", "static(avg)", "static-best", "static-worst", "TS/hybrid", "TS/stat", "TS memBlock", "TS ovh")
	for _, c := range f.Cells {
		t.linef("%-6s %12s %12s %12s %12s %8.2f %14s %7.1f%%\n",
			c.Label,
			fmtSec(c.Static), fmtSec(c.StaticBest), fmtSec(c.StaticWorst), fmtSec(c.TS),
			c.Ratio(), fmtSec(c.TSMemBlocked), 100*c.TSOverheadFrac)
	}
	return t.String()
}

// Find returns the cell with the given label, or nil.
func (f *Figure) Find(label string) *Cell {
	for i := range f.Cells {
		if f.Cells[i].Label == label {
			return &f.Cells[i]
		}
	}
	return nil
}
