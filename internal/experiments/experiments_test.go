package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
)

// The figure tests run the full paper-scale configurations (a few hundred
// milliseconds each); they are the executable form of EXPERIMENTS.md.

func runFigure(t *testing.T, f func(core.Config, ...engine.Options) (*Figure, error)) *Figure {
	t.Helper()
	fig, err := f(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return fig
}

func TestSweepConfigsShape(t *testing.T) {
	cfgs := sweepConfigs(16)
	// 1 (size one) + 3 sizes x 4 topologies + size 16 x 3 (no 16H).
	if len(cfgs) != 1+3*4+3 {
		t.Fatalf("sweep has %d configs", len(cfgs))
	}
	for _, sc := range cfgs {
		if sc.P == 16 && sc.Kind.Letter() == "H" {
			t.Error("16-node hypercube must be skipped (host-link transputer)")
		}
	}
}

func TestFigure3PaperClaims(t *testing.T) {
	fig := runFigure(t, Figure3)
	if len(fig.Cells) != 16 {
		t.Fatalf("cells = %d", len(fig.Cells))
	}

	// §5.2: at 16 partitions of 1 processor each, both policies behave the
	// same way (no communication, one job per processor).
	one := fig.Find("1")
	if one == nil {
		t.Fatal("no size-1 cell")
	}
	if r := one.Ratio(); r < 0.95 || r > 1.05 {
		t.Errorf("partition-1 ratio = %.3f, want ~1", r)
	}

	// Static space-sharing outperforms time-sharing at small partitions.
	for _, label := range []string{"2L", "2R", "2M", "2H", "4L", "4R", "4M", "4H"} {
		c := fig.Find(label)
		if c == nil {
			t.Fatalf("missing cell %s", label)
		}
		if c.Ratio() <= 1.0 {
			t.Errorf("%s: TS/static = %.2f, want > 1 (static wins)", label, c.Ratio())
		}
	}

	// The hybrid policy performs much better than pure time-sharing.
	hybrid := fig.Find("2L")
	pure := fig.Find("16L")
	if hybrid.TS*2 > pure.TS {
		t.Errorf("hybrid %v not much better than pure TS %v", hybrid.TS, pure.TS)
	}

	// Memory contention grows as partitions get larger (the paper's main
	// explanation): blocked time at 16 processors far exceeds 2.
	if pure.TSMemBlocked < 10*hybrid.TSMemBlocked+sim.Second {
		t.Errorf("memory blocking did not grow: 2L=%v 16L=%v", hybrid.TSMemBlocked, pure.TSMemBlocked)
	}

	// Static best order beats worst order everywhere sizes differ.
	for _, c := range fig.Cells {
		if c.StaticBest > c.StaticWorst {
			t.Errorf("%s: best %v > worst %v", c.Label, c.StaticBest, c.StaticWorst)
		}
	}
}

func TestFigure4AdaptiveBeatsFixedForMatmul(t *testing.T) {
	f3 := runFigure(t, Figure3)
	f4 := runFigure(t, Figure4)
	// §5.2: the adaptive software architecture is better than the fixed
	// architecture for matmul (fewer processes, less B replication, fewer
	// messages). Compare the TS runs cell by cell below 16 processors.
	better := 0
	for _, c4 := range f4.Cells {
		if c4.PartitionSize >= 16 {
			continue // identical configurations at one partition
		}
		c3 := f3.Find(c4.Label)
		if c3 == nil {
			continue
		}
		if c4.TS < c3.TS {
			better++
		}
	}
	if better < 10 {
		t.Errorf("adaptive TS better in only %d cells", better)
	}
	// At a single partition both architectures coincide (16 processes on
	// 16 processors).
	if f3.Find("16L").TS != f4.Find("16L").TS {
		t.Errorf("architectures should coincide at one partition: %v vs %v",
			f3.Find("16L").TS, f4.Find("16L").TS)
	}
}

func TestFigure5FixedBeatsAdaptiveForSort(t *testing.T) {
	f5 := runFigure(t, Figure5)
	f6 := runFigure(t, Figure6)
	// §5.3: the fixed architecture exhibits substantial speedups for sort —
	// smaller sub-arrays cut the O(n²) work superlinearly. Strongest at
	// small partitions.
	for _, label := range []string{"2L", "4L", "4M", "8M"} {
		fixed := f5.Find(label)
		adaptive := f6.Find(label)
		if fixed.Static >= adaptive.Static {
			t.Errorf("%s: fixed static %v not faster than adaptive %v", label, fixed.Static, adaptive.Static)
		}
	}
	// The effect is large: at 2-processor partitions the adaptive jobs sort
	// n/2-element sub-arrays vs n/16, several times slower.
	if f6.Find("2L").Static < 3*f5.Find("2L").Static {
		t.Errorf("superlinear effect too weak: fixed %v adaptive %v",
			f5.Find("2L").Static, f6.Find("2L").Static)
	}
}

func TestFigureTableRendering(t *testing.T) {
	fig := runFigure(t, Figure3)
	table := fig.Table()
	for _, want := range []string{"Figure 3", "16L", "static(avg)", "TS/hybrid"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
	if fig.Find("nope") != nil {
		t.Error("Find of unknown label should be nil")
	}
}

func TestVarianceSweepCrossover(t *testing.T) {
	points, err := VarianceSweep([]float64{0.2, 1.0, 1.7}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	ratio := func(p VariancePoint) float64 { return float64(p.TS) / float64(p.Static) }
	// §5.2's claim via [2,3]: low variance favours static, high variance
	// favours time-sharing; the advantage must decline monotonically and
	// cross over within the sweep.
	if !(ratio(points[0]) > ratio(points[1]) && ratio(points[1]) > ratio(points[2])) {
		t.Errorf("ratios not declining: %.2f %.2f %.2f", ratio(points[0]), ratio(points[1]), ratio(points[2]))
	}
	if ratio(points[0]) < 1.1 {
		t.Errorf("static should win clearly at CV 0.2, ratio = %.2f", ratio(points[0]))
	}
	if ratio(points[2]) > 1.0 {
		t.Errorf("time-sharing should win at CV 1.7, ratio = %.2f", ratio(points[2]))
	}
	table := VarianceTable(points)
	if !strings.Contains(table, "E1") {
		t.Error("table header missing")
	}
}

func TestVarianceSweepRejectsUnreachableCV(t *testing.T) {
	if _, err := VarianceSweep([]float64{5.0}, core.Config{}); err == nil {
		t.Error("CV 5 is unreachable with 12/16 small jobs")
	}
}

func TestWormholeAblationClaims(t *testing.T) {
	cells, err := WormholeAblation(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 { // L, R, M at 16 processors; no 16H
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		// §5.2's prediction: wormhole routing reduces buffer demand...
		if c.WHBlock >= c.SAFBlock && c.SAFBlock > 0 {
			t.Errorf("%s: wormhole blocking %v not below SAF %v", c.Label, c.WHBlock, c.SAFBlock)
		}
		// ...and improves time-sharing response. (The paper's third
		// prediction — reduced topology sensitivity — does NOT reproduce
		// under load: worms holding long channel paths serialize linear
		// routes; see EXPERIMENTS.md E2.)
		if c.WH >= c.SAF {
			t.Errorf("%s: wormhole %v not faster than SAF %v", c.Label, c.WH, c.SAF)
		}
	}
	if !strings.Contains(AblationTable(cells), "E2") {
		t.Error("table header missing")
	}
}

func TestQuantumSweepTradeoff(t *testing.T) {
	points, err := QuantumSweep([]sim.Time{500 * sim.Microsecond, 2 * sim.Millisecond, 20 * sim.Millisecond}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Overhead falls as the quantum grows.
	for i := 1; i < len(points); i++ {
		if points[i].OverheadFrac >= points[i-1].OverheadFrac {
			t.Errorf("overhead not declining: %v", points)
		}
	}
	if !strings.Contains(QuantumTable(points), "E3") {
		t.Error("table header missing")
	}
}

func TestRRComparisonUnfairness(t *testing.T) {
	r, err := RunRRComparison(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Under RR-process the wide job is favoured; RR-job removes (most of)
	// that advantage.
	procAdv := float64(r.RRProcBig) / float64(r.RRProcSmall)
	jobAdv := float64(r.RRJobBig) / float64(r.RRJobSmall)
	if procAdv >= 1.0 {
		t.Errorf("RR-process should favour the wide job: big/small = %.2f", procAdv)
	}
	if jobAdv <= procAdv {
		t.Errorf("RR-job advantage %.2f should exceed RR-process %.2f (fairness)", jobAdv, procAdv)
	}
	if !strings.Contains(RRTable(r), "E4") {
		t.Error("table header missing")
	}
}

func TestMPLSweepRuns(t *testing.T) {
	points, err := MPLSweep([]int{1, 4, 0}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// MPL=1 serializes jobs per partition; the unlimited setting must not
	// be slower than that degenerate case by any large factor, and all
	// points must be positive.
	for _, p := range points {
		if p.Mean <= 0 {
			t.Errorf("mpl %d mean %v", p.MaxResident, p.Mean)
		}
	}
	table := MPLTable(points)
	if !strings.Contains(table, "E5") || !strings.Contains(table, "all") {
		t.Error("table rendering")
	}
}
