package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E11 — sort-algorithm ablation: is the fixed-architecture win an O(n²)
// artifact?

// SortAlgCell is one (algorithm, partition size) comparison of the two
// software architectures under the static policy.
type SortAlgCell struct {
	Algorithm       string
	PartitionSize   int
	Fixed, Adaptive sim.Time
}

// Speedup is adaptive over fixed: > 1 means the fixed architecture wins.
func (c SortAlgCell) Speedup() float64 {
	return safeRatio(c.Adaptive, c.Fixed)
}

// SortAlgorithmAblation is extension experiment E11. §5.3 points out the
// work phase "can be O(n²) for sorting algorithms such as insertion sort,
// selection sort etc. and O(n log n) for merge and heap sort algorithms.
// We have used the selection sort." — and then attributes the fixed
// architecture's substantial speedups to exactly that superlinearity.
// Swapping in an O(n log n) merge sort tests whether the architectural
// conclusion is an artifact of the algorithm choice.
func SortAlgorithmAblation(base core.Config, opts ...engine.Options) ([]SortAlgCell, error) {
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	appCost := workload.DefaultAppCost()
	mkBatch := func(alg workload.SortAlgorithm, arch workload.Arch) workload.Batch {
		return workload.BatchSpec{
			Small: workload.PaperBatchSmall, Large: workload.PaperBatchLarge, Arch: arch,
			NewApp: func(class string) workload.App {
				n := workload.SortSmallN
				if class == "large" {
					n = workload.SortLargeN
				}
				app := workload.NewSort(n, appCost, false)
				app.Algorithm = alg
				return app
			},
		}.Build()
	}
	plan := engine.NewPlan[SortAlgCell]("E11 sortalg")
	for _, alg := range []workload.SortAlgorithm{workload.SelectionSortAlg, workload.MergeSortAlg} {
		for _, psize := range []int{2, 8} {
			alg, psize := alg, psize
			plan.Add(fmt.Sprintf("%v/p=%d", alg, psize), func() (SortAlgCell, error) {
				cell := SortAlgCell{Algorithm: alg.String(), PartitionSize: psize}
				for _, arch := range []workload.Arch{workload.Fixed, workload.Adaptive} {
					cfg := base
					cfg.PartitionSize = psize
					cfg.Batch = mkBatch(alg, arch)
					mean, _, _, err := core.StaticAveraged(cfg)
					if err != nil {
						return SortAlgCell{}, fmt.Errorf("%v p=%d %v: %w", alg, psize, arch, err)
					}
					if arch == workload.Fixed {
						cell.Fixed = mean
					} else {
						cell.Adaptive = mean
					}
				}
				return cell, nil
			})
		}
	}
	return engine.Execute(plan, opts...)
}

// SortAlgTable renders E11.
func SortAlgTable(cells []SortAlgCell) string {
	t := newText("E11 — Sort-algorithm ablation (static policy, mesh partitions)")
	t.linef("%-11s %-10s %12s %12s %16s\n", "algorithm", "partition", "fixed arch", "adaptive", "fixed speedup")
	for _, c := range cells {
		t.linef("%-11s %-10d %12s %12s %15.1fx\n",
			c.Algorithm, c.PartitionSize, fmtSec(c.Fixed), fmtSec(c.Adaptive), c.Speedup())
	}
	return t.String()
}
