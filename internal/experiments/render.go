package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// This file is the single row-writer behind every figure/sweep printer:
// one place that formats titles and headers, renders floats at the
// conventional precisions, and applies CSV escaping. The per-experiment
// printers declare their columns and hand cells to these writers instead of
// hand-rolling fmt strings.

// Cell value wrappers select the canonical rendering for CSV cells:
//
//	secs  simulated time as seconds, 6 decimals (the plotting precision)
//	fix2  fixed 2-decimal float (CVs, loads, ratios shown coarsely)
//	fix4  fixed 4-decimal float (fractions, fine ratios)
//
// Plain string, int, int64, float64 (%g) and fmt.Stringer cells render
// directly; strings pass through csvEscape.
type (
	secs sim.Time
	fix2 float64
	fix4 float64
)

// csvWriter accumulates one CSV document: a header row and typed cells.
type csvWriter struct {
	b strings.Builder
}

// newCSV starts a document with the given header columns.
func newCSV(cols ...string) *csvWriter {
	w := &csvWriter{}
	for i, c := range cols {
		if i > 0 {
			w.b.WriteByte(',')
		}
		w.b.WriteString(csvEscape(c))
	}
	w.b.WriteByte('\n')
	return w
}

// row appends one record; each cell renders per its wrapper type.
func (w *csvWriter) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			w.b.WriteByte(',')
		}
		w.b.WriteString(csvCell(c))
	}
	w.b.WriteByte('\n')
}

func (w *csvWriter) String() string { return w.b.String() }

func csvCell(c any) string {
	switch v := c.(type) {
	case secs:
		return fmt.Sprintf("%.6f", sim.Time(v).Seconds())
	case fix2:
		return fmt.Sprintf("%.2f", float64(v))
	case fix4:
		return fmt.Sprintf("%.4f", float64(v))
	case float64:
		return fmt.Sprintf("%g", v)
	case int:
		return strconv.Itoa(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case string:
		return csvEscape(v)
	case fmt.Stringer:
		return csvEscape(v.String())
	default:
		return csvEscape(fmt.Sprint(v))
	}
}

// csvEscape quotes a field that contains a separator, quote or newline —
// RFC 4180 style. Fields that need no quoting pass through unchanged, so
// historical output bytes are preserved.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// jsonWriter accumulates one JSON document: an array with one object per
// row, sharing the csvWriter's column names and typed cells so the CSV and
// JSON renderings of an experiment can never drift apart. Output is
// byte-stable: fields keep declaration order, one row per line, numbers
// rendered exactly like their CSV cells.
type jsonWriter struct {
	cols []string
	b    strings.Builder
	rows int
}

// newJSON starts a document with the given column names.
func newJSON(cols ...string) *jsonWriter {
	w := &jsonWriter{cols: cols}
	w.b.WriteByte('[')
	return w
}

// row appends one object; cells pair positionally with the columns.
func (w *jsonWriter) row(cells ...any) {
	if len(cells) != len(w.cols) {
		panic(fmt.Sprintf("experiments: json row has %d cells for %d columns", len(cells), len(w.cols)))
	}
	if w.rows > 0 {
		w.b.WriteByte(',')
	}
	w.b.WriteString("\n  {")
	for i, c := range cells {
		if i > 0 {
			w.b.WriteByte(',')
		}
		w.b.WriteString(strconv.Quote(w.cols[i]))
		w.b.WriteByte(':')
		w.b.WriteString(jsonCell(c))
	}
	w.b.WriteByte('}')
	w.rows++
}

// String closes the array. Safe to call once.
func (w *jsonWriter) String() string {
	if w.rows > 0 {
		w.b.WriteByte('\n')
	}
	w.b.WriteString("]\n")
	return w.b.String()
}

// jsonObject renders a single flat object (one row, named fields) — the
// shape single-run summaries use. Same typed cells as the row writers.
type jsonObject struct {
	b strings.Builder
	n int
}

func newJSONObject() *jsonObject {
	o := &jsonObject{}
	o.b.WriteByte('{')
	return o
}

func (o *jsonObject) field(name string, cell any) *jsonObject {
	if o.n > 0 {
		o.b.WriteByte(',')
	}
	o.b.WriteString("\n  ")
	o.b.WriteString(strconv.Quote(name))
	o.b.WriteString(": ")
	o.b.WriteString(jsonCell(cell))
	o.n++
	return o
}

func (o *jsonObject) String() string {
	if o.n > 0 {
		o.b.WriteByte('\n')
	}
	o.b.WriteString("}\n")
	return o.b.String()
}

// jsonCell renders one typed cell as a JSON value. The numeric wrappers
// render exactly as in csvCell — a plotting pipeline switching formats sees
// the same digits.
func jsonCell(c any) string {
	switch v := c.(type) {
	case secs:
		return fmt.Sprintf("%.6f", sim.Time(v).Seconds())
	case fix2:
		return fmt.Sprintf("%.2f", float64(v))
	case fix4:
		return fmt.Sprintf("%.4f", float64(v))
	case float64:
		return fmt.Sprintf("%g", v)
	case int:
		return strconv.Itoa(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case bool:
		return strconv.FormatBool(v)
	case string:
		return strconv.Quote(v)
	case fmt.Stringer:
		return strconv.Quote(v.String())
	default:
		return strconv.Quote(fmt.Sprint(v))
	}
}

// Exported row-document surface for tools outside the package (cmd/sweep,
// cmd/faultstudy): the same typed cells and writers the experiment
// exporters use, so a tool's CSV and JSON renderings of one row feed can
// never drift apart — and a row computed from a cluster worker's wire
// summary formats byte-identically to the locally-computed one.

// Secs renders a simulated time as seconds with 6 decimals.
func Secs(t sim.Time) any { return secs(t) }

// Fix2 renders a float at fixed 2 decimals.
func Fix2(v float64) any { return fix2(v) }

// Fix4 renders a float at fixed 4 decimals.
func Fix4(v float64) any { return fix4(v) }

// Doc accumulates one row document in a chosen format.
type Doc interface {
	// Row appends one record of typed cells (see Secs, Fix2, Fix4).
	Row(cells ...any)
	// String finalizes and returns the document. Call once.
	String() string
}

type csvDoc struct{ w *csvWriter }

func (d csvDoc) Row(cells ...any) { d.w.row(cells...) }
func (d csvDoc) String() string   { return d.w.String() }

type jsonDoc struct{ w *jsonWriter }

func (d jsonDoc) Row(cells ...any) { d.w.row(cells...) }
func (d jsonDoc) String() string   { return d.w.String() }

// NewDoc starts a document with the given header columns. CSV and JSON are
// supported; Table callers keep their historical hand-rolled layouts.
func NewDoc(f Format, cols ...string) (Doc, error) {
	switch f {
	case CSV:
		return csvDoc{newCSV(cols...)}, nil
	case JSON:
		return jsonDoc{newJSON(cols...)}, nil
	default:
		return nil, fmt.Errorf("experiments: no row document for format %q", f)
	}
}

// textTable accumulates one human-readable table: a title line, a header
// line and formatted rows. Header and row layouts are fmt strings so each
// experiment keeps its historical column widths exactly.
type textTable struct {
	b strings.Builder
}

// newText starts a table with its title line.
func newText(title string) *textTable {
	t := &textTable{}
	t.b.WriteString(title)
	t.b.WriteByte('\n')
	return t
}

// linef appends one formatted line (header or row).
func (t *textTable) linef(format string, args ...any) {
	fmt.Fprintf(&t.b, format, args...)
}

func (t *textTable) String() string { return t.b.String() }

// fmtSec renders simulated time as seconds for table cells.
func fmtSec(t sim.Time) string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// safeRatio is num/den with the zero-denominator guard every ratio column
// needs.
func safeRatio(num, den sim.Time) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
