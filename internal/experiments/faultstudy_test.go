package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// runSmallStudy runs a scaled-down fault study: 8 processors, 6 synthetic
// 60ms jobs, one faulty ladder point. Small enough that the study's many
// inner runs stay fast.
func runSmallStudy(t *testing.T, kind topology.Kind) *FaultStudy {
	t.Helper()
	works := make([]sim.Time, 6)
	for i := range works {
		works[i] = 60 * sim.Millisecond
	}
	batch := workload.SyntheticBatch(works, workload.Adaptive, 256, 1024, workload.DefaultAppCost())
	study, err := RunFaultStudy(FaultStudyConfig{
		Base:     core.Config{Processors: 8, PartitionSize: 4, Seed: 5, Batch: batch},
		Topology: kind,
		Policies: []sched.Policy{sched.Static, sched.TimeShared},
		MTBFs:    []sim.Time{150 * sim.Millisecond},
		Horizon:  400 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return study
}

// TestFaultStudyZeroRateMatchesBaseline: RunFaultStudy itself verifies that
// the zero-rate point (injector attached, nothing armed) reproduces the
// fault-free result exactly and errors otherwise, so a successful study on
// two topologies is the guarantee under test. The faulty point must show
// real fault activity so the comparison is not vacuous.
func TestFaultStudyZeroRateMatchesBaseline(t *testing.T) {
	for _, kind := range []topology.Kind{topology.Mesh, topology.Ring} {
		t.Run(kind.String(), func(t *testing.T) {
			study := runSmallStudy(t, kind)
			if len(study.Curves) != 2 {
				t.Fatalf("curves = %d, want 2", len(study.Curves))
			}
			for _, c := range study.Curves {
				if len(c.Points) != 2 {
					t.Fatalf("%s: points = %d, want 2 (zero-rate + one faulty)", c.Policy, len(c.Points))
				}
				z := c.Points[0]
				if z.Rate != 0 || z.NodeMTBF != 0 {
					t.Errorf("%s: first point is not the zero-rate point: %+v", c.Policy, z)
				}
				if z.Faults != (metrics.FaultStats{}) {
					t.Errorf("%s: zero-rate point has fault activity: %+v", c.Policy, z.Faults)
				}
				f := c.Points[1]
				if f.Faults.NodesFailed == 0 {
					t.Errorf("%s: faulty point saw no node failures: %+v", c.Policy, f.Faults)
				}
			}
		})
	}
}

// TestFaultStudyDeterministic: the whole study, twice, byte-identical.
func TestFaultStudyDeterministic(t *testing.T) {
	a := runSmallStudy(t, topology.Mesh)
	b := runSmallStudy(t, topology.Mesh)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical fault studies diverged:\n%+v\n%+v", a, b)
	}
}

func TestFaultStudyRenderers(t *testing.T) {
	s := runSmallStudy(t, topology.Ring)
	tb := s.Table()
	if !strings.Contains(tb, "static") || !strings.Contains(tb, "time-shared") {
		t.Errorf("table missing policy rows:\n%s", tb)
	}
	csv := s.CSV()
	if got, want := strings.Count(csv, "\n"), 1+2*2; got != want {
		t.Errorf("csv has %d lines, want %d (header + 2 policies x 2 points):\n%s", got, want, csv)
	}
}
