package experiments

import (
	"fmt"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ---------------------------------------------------------------------------
// E15 — the policy zoo under open-system load
//
// E14 compares the disciplines on the paper's closed batch; E15 asks the
// question a closed batch cannot: where does each discipline saturate? Jobs
// arrive as an open Poisson stream whose rate is calibrated to a target
// utilization ρ, and the sweep traces mean/p50/p99 response time against ρ
// across the same contender list as E14. Stable points show flat response;
// past a discipline's saturation knee the queue — and with it every
// percentile — grows with the horizon. Statistics stream through
// bounded-memory digests (see internal/stats/stream), so the per-point job
// count can scale to millions without materializing a batch.

// DefaultOpenLoads is the E15 sweep grid: the band the saturation knees of
// the policy zoo fall into.
var DefaultOpenLoads = []float64{0.5, 0.7, 0.85, 0.95}

// openReplications is how many seeds each (policy, ρ) point runs; their
// digests merge into one summary per point.
const openReplications = 2

// OpenCell is one (policy, ρ) point of the open-system load sweep.
type OpenCell struct {
	Label      string
	Load       float64
	Jobs       int64
	Mean       sim.Time
	P50, P99   sim.Time
	Util       float64
	JobsPerSec float64
}

// OpenSweep is extension experiment E15. Every cell streams base.Arrival
// (Poisson, 2000 jobs unless overridden) at one target load through one zoo
// discipline. base.Arrival.Load and MeanInterarrival must be unset — the
// sweep owns the load axis.
func OpenSweep(base core.Config, loads []float64, opts ...engine.Options) ([]OpenCell, error) {
	if len(loads) == 0 {
		loads = DefaultOpenLoads
	}
	if base.PartitionSize == 0 {
		base.PartitionSize = 4
	}
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	spec := base.Arrival
	if spec.Load != 0 || spec.MeanInterarrival != 0 {
		return nil, fmt.Errorf("experiments: E15 sweeps the load axis; leave arrival load and mean_interarrival unset")
	}
	if spec.Kind == arrival.Disabled {
		spec.Kind = arrival.Poisson
	}
	if spec.Kind == arrival.Trace {
		return nil, fmt.Errorf("experiments: E15 needs a generative arrival process, not a trace")
	}
	if spec.Jobs == 0 {
		spec.Jobs = 2000
	}
	type contender struct {
		pol   sched.Policy
		part  sched.PartitionKind
		quant sched.QuantumKind
		order sched.OrderKind
		free  bool
	}
	contenders := []contender{
		{pol: sched.Static},
		{pol: sched.TimeShared},
		{pol: sched.RRProcess},
		{pol: sched.Gang},
		{pol: sched.DynamicSpace, free: true},
		{pol: sched.TimeShared, quant: sched.QuantumDynamic},
		{pol: sched.Static, order: sched.OrderSRPT},
		{pol: sched.DynamicSpace, part: sched.PartEqui, free: true},
	}
	plan := engine.NewPlan[OpenCell]("E15 open load sweep")
	for _, c := range contenders {
		for _, load := range loads {
			c, load := c, load
			cfg := base
			cfg.Policy = c.pol
			cfg.PartitionPolicy = c.part
			cfg.QuantumPolicy = c.quant
			cfg.QueueOrder = c.order
			if c.free {
				cfg.PartitionSize = 0
			}
			cfg.Arrival = spec
			cfg.Arrival.Load = load
			label := fmt.Sprintf("%s @ %.2f", cfg.PolicyLabel(), load)
			plan.Add(label, func() (OpenCell, error) {
				cell := OpenCell{Label: cfg.PolicyLabel(), Load: load}
				var digest *stats.Digest
				for rep := 0; rep < openReplications; rep++ {
					rcfg := cfg
					rcfg.Seed = cfg.Seed + int64(rep)
					res, err := core.Run(rcfg)
					if err != nil {
						return OpenCell{}, fmt.Errorf("%s: %w", label, err)
					}
					o := res.Open
					cell.Jobs += o.Jobs
					cell.Util += res.CPUUtilization() / openReplications
					cell.JobsPerSec += o.ThroughputPerSec / openReplications
					if digest == nil {
						digest = o.Digest
					} else if err := digest.Merge(o.Digest); err != nil {
						return OpenCell{}, fmt.Errorf("%s: %w", label, err)
					}
				}
				cell.Mean = sim.Time(digest.Mean())
				cell.P50 = sim.Time(digest.Quantile(0.50))
				cell.P99 = sim.Time(digest.Quantile(0.99))
				return cell, nil
			})
		}
	}
	return engine.Execute(plan, opts...)
}

// OpenSweepTable renders E15.
func OpenSweepTable(cells []OpenCell) string {
	t := newText("E15 — Policy zoo under open-system load (response time vs ρ)")
	t.linef("%-20s %6s %8s %12s %12s %12s %7s %9s\n",
		"policy", "rho", "jobs", "mean", "p50", "p99", "util", "jobs/s")
	for _, c := range cells {
		t.linef("%-20s %6.2f %8d %12s %12s %12s %6.1f%% %9.2f\n",
			c.Label, c.Load, c.Jobs, fmtSec(c.Mean), fmtSec(c.P50), fmtSec(c.P99),
			100*c.Util, c.JobsPerSec)
	}
	return t.String()
}

var openCols = []string{"policy", "rho", "jobs", "mean_s", "p50_s", "p99_s", "util", "jobs_per_sec"}

func openRows(cells []OpenCell) func(rowWriter) {
	return func(w rowWriter) {
		for _, c := range cells {
			w.row(c.Label, fix2(c.Load), c.Jobs, secs(c.Mean), secs(c.P50), secs(c.P99),
				fix4(c.Util), fix2(c.JobsPerSec))
		}
	}
}

// OpenSweepCSV renders E15.
func OpenSweepCSV(cells []OpenCell) string { return renderCSV(openCols, openRows(cells)) }

// OpenSweepJSON renders E15 as JSON rows.
func OpenSweepJSON(cells []OpenCell) string { return renderJSON(openCols, openRows(cells)) }
