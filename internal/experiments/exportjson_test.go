package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestFigureJSONGolden pins the JSON encoding byte-for-byte. schedd serves
// (and caches) these bytes, so the encoding is wire format: a change here
// is a breaking API change, not a cosmetic one.
func TestFigureJSONGolden(t *testing.T) {
	fig := &Figure{
		ID: "Figure X",
		Cells: []Cell{
			{
				Label: "4M", PartitionSize: 4, Topology: topology.Mesh,
				Static: 2 * sim.Second, StaticBest: sim.Second, StaticWorst: 3 * sim.Second,
				TS: 4 * sim.Second, TSMemBlocked: 500 * sim.Millisecond, TSOverheadFrac: 0.25,
			},
			{
				Label: "8L", PartitionSize: 8, Topology: topology.Linear,
				Static: sim.Second, TS: sim.Second / 2,
			},
		},
	}
	const want = `[
  {"label":"4M","partition":4,"topology":"mesh","static_avg_s":2.000000,"static_best_s":1.000000,"static_worst_s":3.000000,"ts_s":4.000000,"ts_over_static":2.0000,"ts_mem_blocked_s":0.500000,"ts_overhead_frac":0.2500},
  {"label":"8L","partition":8,"topology":"linear","static_avg_s":1.000000,"static_best_s":0.000000,"static_worst_s":0.000000,"ts_s":0.500000,"ts_over_static":0.5000,"ts_mem_blocked_s":0.000000,"ts_overhead_frac":0.0000}
]
`
	if got := fig.JSON(); got != want {
		t.Errorf("Figure.JSON drifted:\n got: %q\nwant: %q", got, want)
	}
}

// TestSummaryJSONGolden pins the single-run summary object.
func TestSummaryJSONGolden(t *testing.T) {
	res := &metrics.Result{
		Label: "4M time-shared matmul fixed",
		Jobs: []metrics.JobRecord{
			{JobID: 0, Class: "small", Completed: 2 * sim.Second},
			{JobID: 1, Class: "large", Completed: 4 * sim.Second},
		},
		Makespan: 4 * sim.Second,
	}
	const want = `{
  "label": "4M time-shared matmul fixed",
  "jobs": 2,
  "mean_s": 3.000000,
  "p50_s": 2.000000,
  "p95_s": 4.000000,
  "max_s": 4.000000,
  "makespan_s": 4.000000,
  "util": 0.0000,
  "overhead": 0.0000,
  "mem_blocked_s": 0.000000,
  "peak_mem_bytes": 0,
  "messages": 0,
  "avg_hops": 0.00,
  "avg_latency_us": 0,
  "retries": 0
}
`
	if got := SummaryJSON(res); got != want {
		t.Errorf("SummaryJSON drifted:\n got: %q\nwant: %q", got, want)
	}
}

// TestJSONExportersAreValidJSONWithCSVColumns: every JSON exporter yields
// parseable JSON whose objects carry exactly the CSV header's columns, and
// empty inputs render an empty array.
func TestJSONExportersAreValidJSONWithCSVColumns(t *testing.T) {
	cases := map[string]struct{ jsonDoc, csvDoc string }{
		"figure": {(&Figure{Cells: []Cell{{Label: "1"}}}).JSON(), (&Figure{Cells: []Cell{{Label: "1"}}}).CSV()},
		"variance": {VarianceJSON([]VariancePoint{{CV: 0.5, Static: sim.Second, TS: 2 * sim.Second}}),
			VarianceCSV([]VariancePoint{{CV: 0.5}})},
		"ablation": {AblationJSON([]AblationCell{{Label: "16L"}}), AblationCSV([]AblationCell{{Label: "16L"}})},
		"quantum":  {QuantumJSON([]QuantumPoint{{Q: 2000}}), QuantumCSV([]QuantumPoint{{Q: 2000}})},
		"rr":       {RRJSON(&RRComparisonResult{}), RRCSV(&RRComparisonResult{})},
		"mpl":      {MPLJSON([]MPLPoint{{MaxResident: 2}}), MPLCSV([]MPLPoint{{MaxResident: 2}})},
		"load":     {LoadJSON([]LoadPoint{{Rho: 0.5}}), LoadCSV([]LoadPoint{{Rho: 0.5}})},
		"gang":     {GangJSON([]GangCell{{App: "stencil"}}), GangCSV([]GangCell{{App: "stencil"}})},
		"stencil":  {StencilJSON([]StencilCell{{Label: "8L"}}), StencilCSV([]StencilCell{{Label: "8L"}})},
		"scale":    {ScaleJSON([]ScaleCell{{Machine: 16}}), ScaleCSV([]ScaleCell{{Machine: 16}})},
		"broadcast": {BroadcastJSON([]BroadcastCell{{Label: "16M"}}),
			BroadcastCSV([]BroadcastCell{{Label: "16M"}})},
		"sortalg": {SortAlgJSON([]SortAlgCell{{Algorithm: "merge"}}), SortAlgCSV([]SortAlgCell{{Algorithm: "merge"}})},
		"collective": {CollectiveJSON([]CollectiveCell{{Label: "16M"}}),
			CollectiveCSV([]CollectiveCell{{Label: "16M"}})},
	}
	for name, c := range cases {
		var rows []map[string]any
		if err := json.Unmarshal([]byte(c.jsonDoc), &rows); err != nil {
			t.Errorf("%s: invalid JSON: %v\n%s", name, err, c.jsonDoc)
			continue
		}
		if len(rows) == 0 {
			t.Errorf("%s: no rows", name)
			continue
		}
		header := strings.Split(strings.SplitN(strings.TrimSpace(c.csvDoc), "\n", 2)[0], ",")
		if len(rows[0]) != len(header) {
			t.Errorf("%s: JSON row has %d fields, CSV header has %d", name, len(rows[0]), len(header))
		}
		for _, col := range header {
			if _, ok := rows[0][col]; !ok {
				t.Errorf("%s: JSON row missing CSV column %q", name, col)
			}
		}
	}
}

// TestJSONEmptyInput: zero rows render a bare empty array, still valid.
func TestJSONEmptyInput(t *testing.T) {
	got := VarianceJSON(nil)
	if got != "[]\n" {
		t.Errorf("empty export = %q, want %q", got, "[]\n")
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(got), &rows); err != nil {
		t.Errorf("empty export invalid: %v", err)
	}
}
