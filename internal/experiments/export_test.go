package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestFigureCSV(t *testing.T) {
	fig := &Figure{
		ID: "Figure X",
		Cells: []Cell{{
			Label: "4M", PartitionSize: 4, Topology: topology.Mesh,
			Static: 2 * sim.Second, StaticBest: sim.Second, StaticWorst: 3 * sim.Second,
			TS: 4 * sim.Second, TSMemBlocked: 500 * sim.Millisecond, TSOverheadFrac: 0.25,
		}},
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "label,partition,topology") {
		t.Errorf("header = %q", lines[0])
	}
	want := "4M,4,mesh,2.000000,1.000000,3.000000,4.000000,2.0000,0.500000,0.2500"
	if lines[1] != want {
		t.Errorf("row = %q, want %q", lines[1], want)
	}
}

func TestScalarCSVs(t *testing.T) {
	cases := map[string]struct {
		got        string
		wantHeader string
		wantRow    string
	}{
		"variance": {
			got:        VarianceCSV([]VariancePoint{{CV: 0.5, Static: sim.Second, TS: 2 * sim.Second}}),
			wantHeader: "cv,static_s,ts_s",
			wantRow:    "0.50,1.000000,2.000000",
		},
		"ablation": {
			got:        AblationCSV([]AblationCell{{Label: "16L", SAF: sim.Second, WH: sim.Second / 2, SAFBlock: sim.Second * 3}}),
			wantHeader: "label,saf_s,wormhole_s",
			wantRow:    "16L,1.000000,0.500000,3.000000,0.000000",
		},
		"quantum": {
			got:        QuantumCSV([]QuantumPoint{{Q: 2000, TS: sim.Second, OverheadFrac: 0.1}}),
			wantHeader: "quantum_us,ts_s,overhead_frac",
			wantRow:    "2000,1.000000,0.1000",
		},
		"rr": {
			got:        RRCSV(&RRComparisonResult{RRJobSmall: sim.Second, RRJobBig: sim.Second, RRProcSmall: 2 * sim.Second, RRProcBig: sim.Second / 2}),
			wantHeader: "policy,narrow_s,wide_s",
			wantRow:    "rr-job,1.000000,1.000000",
		},
		"mpl": {
			got:        MPLCSV([]MPLPoint{{MaxResident: 2, Mean: sim.Second, MemBlocked: 0}}),
			wantHeader: "mpl,ts_s,mem_blocked_s",
			wantRow:    "2,1.000000,0.000000",
		},
		"load": {
			got:        LoadCSV([]LoadPoint{{Rho: 0.5, Static4: sim.Second, Hybrid4: sim.Second, Dynamic: sim.Second}}),
			wantHeader: "rho,static4_s,hybrid4_s,dynamic_s",
			wantRow:    "0.50,1.000000,1.000000,1.000000",
		},
		"gang": {
			got:        GangCSV([]GangCell{{App: "stencil", RRJob: 2 * sim.Second, Gang: sim.Second, RRJobOvh: 0.5, GangOverhead: 0.25}}),
			wantHeader: "app,rrjob_s,gang_s",
			wantRow:    "stencil,2.000000,1.000000,0.5000,0.2500",
		},
		"stencil": {
			got:        StencilCSV([]StencilCell{{Label: "8L", Static: sim.Second, TS: 3 * sim.Second, TSAvgLat: 1500}}),
			wantHeader: "label,static_s,ts_s",
			wantRow:    "8L,1.000000,3.000000,1500",
		},
	}
	for name, c := range cases {
		lines := strings.Split(strings.TrimSpace(c.got), "\n")
		if !strings.HasPrefix(lines[0], c.wantHeader) {
			t.Errorf("%s header = %q", name, lines[0])
		}
		if len(lines) < 2 || lines[1] != c.wantRow {
			t.Errorf("%s row = %q, want %q", name, lines[1], c.wantRow)
		}
	}
}
