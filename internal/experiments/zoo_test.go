package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestPolicyZooClaims encodes the E14 findings: SRPT ordering improves
// static's mean at identical overhead, malleable equipartitioning beats
// run-to-completion dynamic blocks, and dynamic per-group quanta trade
// batch response for interactivity (higher overhead than plain RR-job).
func TestPolicyZooClaims(t *testing.T) {
	cells, err := PolicyZoo(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]ZooCell{}
	for _, c := range cells {
		byLabel[c.Label] = c
	}
	for _, want := range []string{"static", "time-shared", "dynamic", "static/none/srpt", "equi/none/fcfs", "shared/dynamic/fcfs"} {
		if _, ok := byLabel[want]; !ok {
			t.Fatalf("zoo missing row %q: %v", want, cells)
		}
	}
	if srpt, static := byLabel["static/none/srpt"], byLabel["static"]; srpt.Mean >= static.Mean {
		t.Errorf("SRPT mean %v not below static %v", srpt.Mean, static.Mean)
	}
	if equi, dyn := byLabel["equi/none/fcfs"], byLabel["dynamic"]; equi.Mean >= dyn.Mean {
		t.Errorf("equi mean %v not below dynamic %v", equi.Mean, dyn.Mean)
	}
	if dq, ts := byLabel["shared/dynamic/fcfs"], byLabel["time-shared"]; dq.Overhead <= ts.Overhead {
		t.Errorf("dynamic quanta overhead %.3f not above rr-job %.3f", dq.Overhead, ts.Overhead)
	}
	if !strings.Contains(ZooTable(cells), "E14") {
		t.Error("table header missing")
	}
}
