package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
)

// Claim is one checkable statement from the paper (or a documented,
// expected divergence). Got is what the simulator shows; Expected is what
// EXPERIMENTS.md records. A claim is OK when Got == Expected — including
// the divergences we document rather than hide.
type Claim struct {
	ID          string
	Description string
	Expected    bool // true = the paper's claim should hold in our data
	Got         bool
	Detail      string
}

// OK reports whether the measurement matches the documented expectation.
func (c Claim) OK() bool { return c.Got == c.Expected }

// ValidateAll regenerates the evaluation and checks every claim from the
// paper's text against it, returning the reproduction certificate that
// cmd/validate prints and the test suite asserts.
//
// The six regenerated studies are themselves one engine plan, and each
// study fans its own cells over the same worker setting; a failure surfaces
// as the earliest study's error, as in the sequential version.
func ValidateAll(base core.Config, opts ...engine.Options) ([]Claim, error) {
	plan := engine.NewPlan[any]("validate")
	plan.Add("figure3", func() (any, error) { return Figure3(base, opts...) })
	plan.Add("figure4", func() (any, error) { return Figure4(base, opts...) })
	plan.Add("figure5", func() (any, error) { return Figure5(base, opts...) })
	plan.Add("figure6", func() (any, error) { return Figure6(base, opts...) })
	plan.Add("variance", func() (any, error) {
		return VarianceSweep([]float64{0.2, 1.0, 1.7}, base, opts...)
	})
	plan.Add("ablation", func() (any, error) { return WormholeAblation(base, opts...) })
	studies, err := engine.Execute(plan, opts...)
	if err != nil {
		return nil, err
	}
	f3 := studies[0].(*Figure)
	f4 := studies[1].(*Figure)
	f5 := studies[2].(*Figure)
	f6 := studies[3].(*Figure)
	variance := studies[4].([]VariancePoint)
	ablation := studies[5].([]AblationCell)

	var claims []Claim
	add := func(id, desc string, expected, got bool, detail string) {
		claims = append(claims, Claim{ID: id, Description: desc, Expected: expected, Got: got, Detail: detail})
	}

	// §5.2: policies coincide at 16 partitions of 1 processor.
	coincide := true
	for _, fig := range []*Figure{f3, f4, f5, f6} {
		r := fig.Find("1").Ratio()
		if r < 0.95 || r > 1.05 {
			coincide = false
		}
	}
	add("coincide-at-1", "policies behave the same at 1-processor partitions", true, coincide,
		fmt.Sprintf("ratios %.2f/%.2f/%.2f/%.2f", f3.Find("1").Ratio(), f4.Find("1").Ratio(), f5.Find("1").Ratio(), f6.Find("1").Ratio()))

	// §5.2: hybrid much better than pure time-sharing.
	add("hybrid-beats-pure-ts", "hybrid (2L) at least 2x faster than pure TS (16L), matmul fixed",
		true, 2*f3.Find("2L").TS <= f3.Find("16L").TS,
		fmt.Sprintf("2L %s vs 16L %s", f3.Find("2L").TS, f3.Find("16L").TS))

	// §5.2: static wins for matmul (fixed architecture, small partitions).
	staticWins := true
	for _, label := range []string{"2L", "2R", "2M", "2H", "4L", "4R", "4M", "4H"} {
		if f3.Find(label).Ratio() <= 1 {
			staticWins = false
		}
	}
	add("static-wins-matmul-fixed", "static beats TS at 2-4 processor partitions, matmul fixed",
		true, staticWins, fmt.Sprintf("2L %.2f 4L %.2f", f3.Find("2L").Ratio(), f3.Find("4L").Ratio()))

	// Documented divergence: adaptive matmul mid-partitions invert.
	inverted := f4.Find("4M").Ratio() < 1 && f4.Find("8M").Ratio() < 1
	add("adaptive-matmul-divergence", "DOCUMENTED DIVERGENCE: TS wins adaptive matmul at 4-8 partitions",
		true, inverted, fmt.Sprintf("4M %.2f 8M %.2f", f4.Find("4M").Ratio(), f4.Find("8M").Ratio()))

	// §5.2: memory contention grows with partition size.
	add("memory-contention-grows", "TS memory blocking explodes toward one partition",
		true, f3.Find("16L").TSMemBlocked > 10*f3.Find("4L").TSMemBlocked+sim.Second,
		fmt.Sprintf("4L %s vs 16L %s", f3.Find("4L").TSMemBlocked, f3.Find("16L").TSMemBlocked))

	// §5.2: linear topology worst for time-sharing.
	linWorst := f3.Find("16L").TS > f3.Find("16R").TS && f3.Find("16L").TS > f3.Find("16M").TS
	add("linear-worst-for-ts", "linear array is the worst TS topology at one partition",
		true, linWorst, fmt.Sprintf("L %s R %s M %s", f3.Find("16L").TS, f3.Find("16R").TS, f3.Find("16M").TS))

	// §5.2: adaptive beats fixed for matmul.
	better := 0
	for _, c4 := range f4.Cells {
		if c4.PartitionSize >= 16 {
			continue
		}
		if c3 := f3.Find(c4.Label); c3 != nil && c4.TS < c3.TS {
			better++
		}
	}
	add("adaptive-better-matmul", "adaptive architecture faster than fixed for matmul TS (sub-16 cells)",
		true, better >= 12, fmt.Sprintf("%d of 13 cells", better))

	// §5.3: fixed beats adaptive for sort, substantially.
	add("fixed-better-sort", "fixed architecture at least 3x faster than adaptive for sort at 2-processor partitions",
		true, 3*f5.Find("2L").Static <= f6.Find("2L").Static,
		fmt.Sprintf("fixed %s adaptive %s", f5.Find("2L").Static, f6.Find("2L").Static))

	// §5.3: static wins for sort at small/medium partitions.
	sortStatic := true
	for _, fig := range []*Figure{f5, f6} {
		for _, c := range fig.Cells {
			if c.PartitionSize >= 16 || c.PartitionSize == 1 {
				continue
			}
			if c.Ratio() <= 1 {
				sortStatic = false
			}
		}
	}
	add("static-wins-sort", "static beats TS for sort at 2-8 processor partitions, both architectures",
		true, sortStatic, fmt.Sprintf("f5 2L %.2f f6 8M %.2f", f5.Find("2L").Ratio(), f6.Find("8M").Ratio()))

	// Documented divergence: sort at one partition favours TS.
	add("sort-16-divergence", "DOCUMENTED DIVERGENCE: TS wins sort at one 16-node partition",
		true, f5.Find("16L").Ratio() < 1, fmt.Sprintf("16L %.2f", f5.Find("16L").Ratio()))

	// Tech-report claim via §5.2: variance crossover.
	declining := variance[0].TS*variance[1].Static > variance[1].TS*variance[0].Static &&
		variance[1].TS*variance[2].Static > variance[2].TS*variance[1].Static
	crossed := variance[2].TS < variance[2].Static
	add("variance-crossover", "TS/static ratio declines with CV and crosses 1 by CV 1.7",
		true, declining && crossed,
		fmt.Sprintf("ratios %.2f %.2f %.2f", ratioOf(variance[0]), ratioOf(variance[1]), ratioOf(variance[2])))

	// §5.2 prediction: wormhole removes intermediate buffering and helps TS.
	whOK := true
	for _, c := range ablation {
		if c.WHBlock >= c.SAFBlock || c.WH >= c.SAF {
			whOK = false
		}
	}
	add("wormhole-helps", "wormhole eliminates buffer blocking and improves TS response",
		true, whOK, fmt.Sprintf("16L SAF %s WH %s", ablation[0].SAF, ablation[0].WH))

	return claims, nil
}

func ratioOf(p VariancePoint) float64 {
	return safeRatio(p.TS, p.Static)
}

// CertificateTable renders the claims with check marks.
func CertificateTable(claims []Claim) string {
	t := newText("Reproduction certificate (paper claims vs this simulator)")
	t.linef("\n")
	ok := 0
	for _, c := range claims {
		mark := "FAIL"
		if c.OK() {
			mark = "ok"
			ok++
		}
		t.linef("[%-4s] %-28s %s\n        %s\n", mark, c.ID, c.Description, c.Detail)
	}
	t.linef("\n%d/%d checks match the documented expectations.\n", ok, len(claims))
	return t.String()
}
