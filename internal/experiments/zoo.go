package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ---------------------------------------------------------------------------
// E14 — the policy zoo vs the paper's disciplines
//
// The paper compares three disciplines (static space-sharing, the RR-job
// hybrid, dynamic space-sharing) plus the RR-process and gang baselines.
// The pluggable policy framework composes their components freely; this
// experiment lines the interesting compositions up against all five legacy
// disciplines on the same closed batch: the RR-job hybrid with dynamic
// per-group quanta, static partitioning draining its queue shortest-
// remaining-first, and malleable equipartitioning that resizes running
// jobs as the load changes.

// ZooCell is one discipline's outcome on the shared closed batch.
type ZooCell struct {
	Label          string
	Mean           sim.Time
	P95            sim.Time
	Makespan       sim.Time
	Util, Overhead float64
}

// PolicyZoo is extension experiment E14. Every row runs the same batch on
// the same machine; only the scheduling discipline differs. Partition-pool
// disciplines (dynamic, equi) run with uncapped block sizes, as the legacy
// sweep tools always ran them.
func PolicyZoo(base core.Config, opts ...engine.Options) ([]ZooCell, error) {
	if base.PartitionSize == 0 {
		base.PartitionSize = 4
	}
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	type contender struct {
		pol   sched.Policy
		part  sched.PartitionKind
		quant sched.QuantumKind
		order sched.OrderKind
		free  bool // partition pool: uncap the block size
	}
	contenders := []contender{
		{pol: sched.Static},
		{pol: sched.TimeShared},
		{pol: sched.RRProcess},
		{pol: sched.Gang},
		{pol: sched.DynamicSpace, free: true},
		{pol: sched.TimeShared, quant: sched.QuantumDynamic},
		{pol: sched.Static, order: sched.OrderSRPT},
		{pol: sched.DynamicSpace, part: sched.PartEqui, free: true},
	}
	plan := engine.NewPlan[ZooCell]("E14 zoo")
	for _, c := range contenders {
		c := c
		cfg := base
		cfg.Policy = c.pol
		cfg.PartitionPolicy = c.part
		cfg.QuantumPolicy = c.quant
		cfg.QueueOrder = c.order
		if c.free {
			cfg.PartitionSize = 0
		}
		plan.Add(cfg.PolicyLabel(), func() (ZooCell, error) {
			res, err := core.Run(cfg)
			if err != nil {
				return ZooCell{}, fmt.Errorf("%s: %w", cfg.PolicyLabel(), err)
			}
			return ZooCell{
				Label:    cfg.PolicyLabel(),
				Mean:     res.MeanResponse(),
				P95:      res.ResponsePercentile(95),
				Makespan: res.Makespan,
				Util:     res.CPUUtilization(),
				Overhead: res.SystemOverheadFraction(),
			}, nil
		})
	}
	return engine.Execute(plan, opts...)
}

// ZooTable renders E14.
func ZooTable(cells []ZooCell) string {
	t := newText("E14 — Policy zoo vs the paper's disciplines (same closed batch)")
	t.linef("%-20s %12s %12s %12s %8s %8s\n", "policy", "mean", "p95", "makespan", "util", "ovh")
	for _, c := range cells {
		t.linef("%-20s %12s %12s %12s %7.1f%% %7.1f%%\n",
			c.Label, fmtSec(c.Mean), fmtSec(c.P95), fmtSec(c.Makespan), 100*c.Util, 100*c.Overhead)
	}
	return t.String()
}

var zooCols = []string{"policy", "mean_s", "p95_s", "makespan_s", "util", "overhead"}

func zooRows(cells []ZooCell) func(rowWriter) {
	return func(w rowWriter) {
		for _, c := range cells {
			w.row(c.Label, secs(c.Mean), secs(c.P95), secs(c.Makespan), fix4(c.Util), fix4(c.Overhead))
		}
	}
}

// ZooCSV renders E14.
func ZooCSV(cells []ZooCell) string { return renderCSV(zooCols, zooRows(cells)) }

// ZooJSON renders E14 as JSON rows.
func ZooJSON(cells []ZooCell) string { return renderJSON(zooCols, zooRows(cells)) }
