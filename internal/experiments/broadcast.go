package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E10 — binomial-tree broadcast ablation

// BroadcastCell compares sequential and tree B-distribution for one
// configuration.
type BroadcastCell struct {
	Label     string
	Seq, Tree sim.Time
}

// BroadcastAblation is extension experiment E10: the figures show a single
// matmul job's B distribution serializing on the partition root's links
// (the mechanism behind static's weakness at large partitions). Replacing
// the paper's 15 sequential sends with a binomial-tree broadcast is the
// textbook fix; this ablation measures how much of the response time it
// buys under both policies on the one-partition machine.
func BroadcastAblation(base core.Config, opts ...engine.Options) ([]BroadcastCell, error) {
	size := machineSize(base)
	base.PartitionSize = size
	appCost := workload.DefaultAppCost()
	mkBatch := func(tree bool) workload.Batch {
		return workload.BatchSpec{
			Small: workload.PaperBatchSmall, Large: workload.PaperBatchLarge, Arch: workload.Fixed,
			NewApp: func(class string) workload.App {
				n := workload.MatMulSmallN
				if class == "large" {
					n = workload.MatMulLargeN
				}
				app := workload.NewMatMul(n, appCost, false)
				app.Tree = tree
				return app
			},
		}.Build()
	}
	plan := engine.NewPlan[BroadcastCell]("E10 broadcast")
	for _, kind := range []topology.Kind{topology.Linear, topology.Mesh} {
		for _, policy := range []sched.Policy{sched.Static, sched.TimeShared} {
			kind, policy := kind, policy
			label := fmt.Sprintf("%d%s %s", size, kind.Letter(), policy)
			plan.Add(label, func() (BroadcastCell, error) {
				cell := BroadcastCell{Label: label}
				for _, tree := range []bool{false, true} {
					cfg := base
					cfg.Topology = kind
					cfg.Policy = policy
					cfg.Batch = mkBatch(tree)
					res, err := core.Run(cfg)
					if err != nil {
						return BroadcastCell{}, fmt.Errorf("%s tree=%v: %w", cell.Label, tree, err)
					}
					if tree {
						cell.Tree = res.MeanResponse()
					} else {
						cell.Seq = res.MeanResponse()
					}
				}
				return cell, nil
			})
		}
	}
	return engine.Execute(plan, opts...)
}

// BroadcastTable renders E10.
func BroadcastTable(cells []BroadcastCell) string {
	t := newText("E10 — Binomial-tree vs sequential B distribution (matmul fixed, one partition)")
	t.linef("%-18s %12s %12s %10s\n", "config", "sequential", "tree", "tree/seq")
	for _, c := range cells {
		t.linef("%-18s %12s %12s %10.2f\n", c.Label, fmtSec(c.Seq), fmtSec(c.Tree), safeRatio(c.Tree, c.Seq))
	}
	return t.String()
}
