package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Default sweep parameters used by the bench harness and cmd/ippsbench.
var (
	// DefaultCVs spans the feasible CV range of the paper's 12/16-small
	// composition (cap just under sqrt(3)).
	DefaultCVs = []float64{0.1, 0.4, 0.8, 1.2, 1.5, 1.7}
	// DefaultQuanta sweeps the basic quantum around the hardware 2 ms.
	DefaultQuanta = []sim.Time{
		500 * sim.Microsecond, 1 * sim.Millisecond, 2 * sim.Millisecond,
		5 * sim.Millisecond, 10 * sim.Millisecond, 50 * sim.Millisecond,
		200 * sim.Millisecond,
	}
	// DefaultMPLs sweeps the hybrid set size with 2 partitions of 8 (8 jobs
	// queue per partition); 0 means admit everything.
	DefaultMPLs = []int{1, 2, 4, 8, 0}
)

// ---------------------------------------------------------------------------
// E1 — service-time variance sensitivity

// VariancePoint is one CV setting's outcome.
type VariancePoint struct {
	CV         float64
	Static, TS sim.Time
}

// VarianceSweep is extension experiment E1: §5.2 notes that the paper's
// workload variance "is not high enough to show the time-sharing policy in
// a better light" and cites the authors' technical report for the claim
// that at higher variance time-sharing wins. This sweep reproduces that
// claim with the synthetic fork-join workload: as the coefficient of
// variation of job service demand grows, the hybrid policy overtakes static
// space-sharing.
func VarianceSweep(cvs []float64, base core.Config, opts ...engine.Options) ([]VariancePoint, error) {
	if base.PartitionSize == 0 {
		base.PartitionSize = 4
	}
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	appCost := workload.DefaultAppCost()
	plan := engine.NewPlan[VariancePoint]("E1 variance")
	for _, cv := range cvs {
		cv := cv
		plan.Add(fmt.Sprintf("cv=%.2f", cv), func() (VariancePoint, error) {
			// The paper's own 12-small/4-large composition; it reaches CV
			// sqrt(12/4) ≈ 1.73, so sweeps should stay within (0, 1.7].
			nSmall := workload.PaperBatchSmall
			works, err := workload.TwoPointWorks(16, nSmall, 20*sim.Second, cv)
			if err != nil {
				return VariancePoint{}, fmt.Errorf("cv %.2f: %w", cv, err)
			}
			mkBatch := func() workload.Batch {
				return workload.SyntheticBatch(works, workload.Adaptive, 64<<10, 256<<10, appCost)
			}
			cfg := base
			cfg.Batch = mkBatch()
			staticMean, _, _, err := core.StaticAveraged(cfg)
			if err != nil {
				return VariancePoint{}, fmt.Errorf("cv %.2f static: %w", cv, err)
			}
			cfg = base
			cfg.Batch = mkBatch()
			cfg.Policy = sched.TimeShared
			ts, err := core.Run(cfg)
			if err != nil {
				return VariancePoint{}, fmt.Errorf("cv %.2f ts: %w", cv, err)
			}
			return VariancePoint{CV: cv, Static: staticMean, TS: ts.MeanResponse()}, nil
		})
	}
	return engine.Execute(plan, opts...)
}

// VarianceTable renders E1.
func VarianceTable(points []VariancePoint) string {
	t := newText("E1 — Service-time variance sensitivity (synthetic fork-join, hybrid vs static)")
	t.linef("%-6s %12s %12s %10s\n", "CV", "static(avg)", "hybrid", "TS/static")
	for _, p := range points {
		t.linef("%-6.2f %12s %12s %10.2f\n", p.CV, fmtSec(p.Static), fmtSec(p.TS), safeRatio(p.TS, p.Static))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E2 — wormhole routing ablation

// AblationCell compares store-and-forward and wormhole for one topology.
type AblationCell struct {
	Label    string
	SAF, WH  sim.Time
	SAFBlock sim.Time // memory blocked time under store-and-forward
	WHBlock  sim.Time
}

// WormholeAblation is extension experiment E2: §5.2 predicts that wormhole
// routing, "by eliminating the need for store-and-forward, can also
// significantly reduce the performance sensitivity of these policies to the
// network topology". We run the pure time-sharing matmul configuration
// (partition = machine, the most congested point) across topologies under
// both switching modes.
func WormholeAblation(base core.Config, opts ...engine.Options) ([]AblationCell, error) {
	base.App = core.MatMul
	base.Arch = workload.Fixed
	base.Policy = sched.TimeShared
	size := machineSize(base)
	base.PartitionSize = size
	plan := engine.NewPlan[AblationCell]("E2 wormhole")
	for _, kind := range topology.Kinds() {
		if kind == topology.Hypercube && base.PartitionSize == size {
			continue
		}
		kind := kind
		plan.Add(kind.String(), func() (AblationCell, error) {
			cfg := base
			cfg.Topology = kind
			saf, err := core.Run(cfg)
			if err != nil {
				return AblationCell{}, fmt.Errorf("saf %v: %w", kind, err)
			}
			cfg.Mode = comm.Wormhole
			wh, err := core.Run(cfg)
			if err != nil {
				return AblationCell{}, fmt.Errorf("wormhole %v: %w", kind, err)
			}
			return AblationCell{
				Label:    fmt.Sprintf("%d%s", base.PartitionSize, kind.Letter()),
				SAF:      saf.MeanResponse(),
				WH:       wh.MeanResponse(),
				SAFBlock: saf.TotalMemBlockedTime(),
				WHBlock:  wh.TotalMemBlockedTime(),
			}, nil
		})
	}
	return engine.Execute(plan, opts...)
}

// AblationTable renders E2.
func AblationTable(cells []AblationCell) string {
	t := newText("E2 — Wormhole vs store-and-forward (pure time-sharing, matmul fixed)")
	t.linef("%-6s %12s %12s %10s %14s %14s\n", "topo", "SAF", "wormhole", "WH/SAF", "SAF memBlock", "WH memBlock")
	for _, c := range cells {
		t.linef("%-6s %12s %12s %10.2f %14s %14s\n",
			c.Label, fmtSec(c.SAF), fmtSec(c.WH), safeRatio(c.WH, c.SAF), fmtSec(c.SAFBlock), fmtSec(c.WHBlock))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E3 — basic quantum sweep

// QuantumPoint is one basic-quantum setting's outcome.
type QuantumPoint struct {
	Q            sim.Time
	TS           sim.Time
	OverheadFrac float64
}

// QuantumSweep is extension experiment E3: the hybrid policy's basic
// quantum q is a tuning knob (Q = (P/T)q). Small quanta approach processor
// sharing but multiply job-switch overhead; large quanta approach
// run-to-completion.
func QuantumSweep(quanta []sim.Time, base core.Config, opts ...engine.Options) ([]QuantumPoint, error) {
	base.App = core.MatMul
	base.Arch = workload.Adaptive
	base.Policy = sched.TimeShared
	if base.PartitionSize == 0 {
		base.PartitionSize = 4
	}
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	plan := engine.NewPlan[QuantumPoint]("E3 quantum")
	for _, q := range quanta {
		q := q
		plan.Add(q.String(), func() (QuantumPoint, error) {
			cfg := base
			cfg.BasicQuantum = q
			res, err := core.Run(cfg)
			if err != nil {
				return QuantumPoint{}, fmt.Errorf("q=%v: %w", q, err)
			}
			return QuantumPoint{Q: q, TS: res.MeanResponse(), OverheadFrac: res.SystemOverheadFraction()}, nil
		})
	}
	return engine.Execute(plan, opts...)
}

// QuantumTable renders E3.
func QuantumTable(points []QuantumPoint) string {
	t := newText("E3 — Basic quantum sweep (hybrid, matmul adaptive, 4-node mesh partitions)")
	t.linef("%-10s %12s %10s\n", "q", "hybrid", "overhead")
	for _, p := range points {
		t.linef("%-10s %12s %9.1f%%\n", p.Q, fmtSec(p.TS), 100*p.OverheadFrac)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E4 — RR-job vs RR-process fairness

// RRComparison is extension experiment E4: §2.2's argument that a fixed
// per-process quantum favours jobs with many processes. We mix one
// 16-process job with fifteen 4-process jobs on one partition and compare
// the small jobs' mean response under both time-sharing rules.
type RRComparisonResult struct {
	RRJobSmall, RRProcSmall sim.Time
	RRJobBig, RRProcBig     sim.Time
}

// RunRRComparison executes E4. The two policies' runs are independent
// points on the engine pool.
func RunRRComparison(base core.Config, opts ...engine.Options) (*RRComparisonResult, error) {
	if base.PartitionSize == 0 {
		base.PartitionSize = 4
	}
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	appCost := workload.DefaultAppCost()
	mkBatch := func() workload.Batch {
		batch := make(workload.Batch, 16)
		for i := range batch {
			arch := workload.Adaptive
			class := "small"
			if i == 3 { // one many-process job
				arch = workload.Fixed
				class = "large"
			}
			batch[i] = &workload.Job{ID: i, Class: class, Arch: arch,
				App: workload.NewSynthetic(8*sim.Second, 32<<10, 128<<10, appCost)}
		}
		return batch
	}
	type classMeans struct{ small, big sim.Time }
	policies := []sched.Policy{sched.TimeShared, sched.RRProcess}
	plan := engine.NewPlan[classMeans]("E4 rr")
	for _, pol := range policies {
		pol := pol
		plan.Add(pol.String(), func() (classMeans, error) {
			cfg := base
			cfg.Policy = pol
			cfg.Batch = mkBatch()
			res, err := core.Run(cfg)
			if err != nil {
				return classMeans{}, fmt.Errorf("%v: %w", pol, err)
			}
			by := res.MeanResponseByClass()
			return classMeans{small: by["small"], big: by["large"]}, nil
		})
	}
	means, err := engine.Execute(plan, opts...)
	if err != nil {
		return nil, err
	}
	return &RRComparisonResult{
		RRJobSmall: means[0].small, RRJobBig: means[0].big,
		RRProcSmall: means[1].small, RRProcBig: means[1].big,
	}, nil
}

// RRTable renders E4.
func RRTable(r *RRComparisonResult) string {
	t := newText("E4 — RR-job vs RR-process (15 narrow jobs + 1 wide job, equal total demand)")
	t.linef("%-12s %14s %14s\n", "policy", "narrow mean", "wide job")
	t.linef("%-12s %14s %14s\n", "rr-job", fmtSec(r.RRJobSmall), fmtSec(r.RRJobBig))
	t.linef("%-12s %14s %14s\n", "rr-process", fmtSec(r.RRProcSmall), fmtSec(r.RRProcBig))
	return t.String()
}

// ---------------------------------------------------------------------------
// E5 — multiprogramming level (set size) tuning

// MPLPoint is one set-size setting's outcome.
type MPLPoint struct {
	MaxResident int
	Mean        sim.Time
	MemBlocked  sim.Time
}

// MPLSweep is extension experiment E5: the hybrid policy's set size (§2.3,
// "the set size is a tuning parameter"). With 2 partitions of 8 processors
// and 8 jobs queued per partition, we bound how many are resident at once:
// MaxResident=1 degenerates to static, larger values trade sharing against
// memory and message contention.
func MPLSweep(residents []int, base core.Config, opts ...engine.Options) ([]MPLPoint, error) {
	base.App = core.MatMul
	base.Arch = workload.Adaptive
	base.Policy = sched.TimeShared
	if base.PartitionSize == 0 {
		base.PartitionSize = 8
	}
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	plan := engine.NewPlan[MPLPoint]("E5 mpl")
	for _, r := range residents {
		r := r
		plan.Add(fmt.Sprintf("mpl=%d", r), func() (MPLPoint, error) {
			cfg := base
			cfg.MaxResident = r
			res, err := core.Run(cfg)
			if err != nil {
				return MPLPoint{}, fmt.Errorf("mpl=%d: %w", r, err)
			}
			return MPLPoint{MaxResident: r, Mean: res.MeanResponse(), MemBlocked: res.TotalMemBlockedTime()}, nil
		})
	}
	return engine.Execute(plan, opts...)
}

// MPLTable renders E5.
func MPLTable(points []MPLPoint) string {
	t := newText("E5 — Multiprogramming level tuning (hybrid, matmul adaptive, 8-node mesh partitions)")
	t.linef("%-6s %12s %14s\n", "MPL", "hybrid", "memBlock")
	for _, p := range points {
		label := fmt.Sprintf("%d", p.MaxResident)
		if p.MaxResident == 0 {
			label = "all"
		}
		t.linef("%-6s %12s %14s\n", label, fmtSec(p.Mean), fmtSec(p.MemBlocked))
	}
	return t.String()
}
