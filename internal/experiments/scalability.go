package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E9 — machine-size scalability

// ScaleCell is one machine size's outcome.
type ScaleCell struct {
	Machine    int
	Static, TS sim.Time
	TSMemBlock sim.Time
	TSOverhead float64
}

// DefaultScales sweeps the machine size beyond the paper's 16 nodes.
var DefaultScales = []int{16, 32, 64}

// Scalability is extension experiment E9: would the paper's conclusions
// survive on a bigger machine? We scale the machine (16 to 64 nodes) with
// proportionally scaled batches (one job per processor, the paper's 3:1
// small:large mix, adaptive architecture) on fixed 8-processor mesh
// partitions, and compare static space-sharing with the hybrid policy.
// The batch per processor is held constant, so an ideally scalable system
// would show flat response times.
func Scalability(sizes []int, base core.Config) ([]ScaleCell, error) {
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	if base.PartitionSize == 0 {
		base.PartitionSize = 8
	}
	appCost := workload.DefaultAppCost()
	var out []ScaleCell
	for _, size := range sizes {
		if size%base.PartitionSize != 0 {
			return nil, fmt.Errorf("machine %d not divisible by partition %d", size, base.PartitionSize)
		}
		mkBatch := func() workload.Batch {
			return workload.BatchSpec{
				Small: size * 3 / 4, Large: size / 4, Arch: workload.Adaptive,
				NewApp: func(class string) workload.App {
					n := workload.MatMulSmallN
					if class == "large" {
						n = workload.MatMulLargeN
					}
					return workload.NewMatMul(n, appCost, false)
				},
			}.Build()
		}
		cell := ScaleCell{Machine: size}

		cfg := base
		cfg.Processors = size
		cfg.Batch = mkBatch()
		staticMean, _, _, err := core.StaticAveraged(cfg)
		if err != nil {
			return nil, fmt.Errorf("static %d: %w", size, err)
		}
		cell.Static = staticMean

		cfg = base
		cfg.Processors = size
		cfg.Batch = mkBatch()
		cfg.Policy = sched.TimeShared
		ts, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ts %d: %w", size, err)
		}
		cell.TS = ts.MeanResponse()
		cell.TSMemBlock = ts.TotalMemBlockedTime()
		cell.TSOverhead = ts.SystemOverheadFraction()
		out = append(out, cell)
	}
	return out, nil
}

// ScaleTable renders E9.
func ScaleTable(cells []ScaleCell) string {
	var b strings.Builder
	b.WriteString("E9 — Machine-size scalability (matmul adaptive, one job per processor, 8-node mesh partitions)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %10s %14s %8s\n", "nodes", "static(avg)", "hybrid", "TS/stat", "TS memBlock", "TS ovh")
	for _, c := range cells {
		ratio := 0.0
		if c.Static > 0 {
			ratio = float64(c.TS) / float64(c.Static)
		}
		fmt.Fprintf(&b, "%-8d %12s %12s %10.2f %14s %7.1f%%\n",
			c.Machine, fmtSec(c.Static), fmtSec(c.TS), ratio, fmtSec(c.TSMemBlock), 100*c.TSOverhead)
	}
	return b.String()
}

// ScaleCSV renders E9 as CSV.
func ScaleCSV(cells []ScaleCell) string {
	var b strings.Builder
	b.WriteString("nodes,static_s,ts_s,ts_mem_blocked_s,ts_overhead_frac\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%d,%.6f,%.6f,%.6f,%.4f\n",
			c.Machine, c.Static.Seconds(), c.TS.Seconds(), c.TSMemBlock.Seconds(), c.TSOverhead)
	}
	return b.String()
}
