package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E9 — machine-size scalability

// ScaleCell is one machine size's outcome.
type ScaleCell struct {
	Machine    int
	Static, TS sim.Time
	TSMemBlock sim.Time
	TSOverhead float64
}

// DefaultScales sweeps the machine size beyond the paper's 16 nodes.
var DefaultScales = []int{16, 32, 64}

// Scalability is extension experiment E9: would the paper's conclusions
// survive on a bigger machine? We scale the machine (16 to 64 nodes) with
// proportionally scaled batches (one job per processor, the paper's 3:1
// small:large mix, adaptive architecture) on fixed 8-processor mesh
// partitions, and compare static space-sharing with the hybrid policy.
// The batch per processor is held constant, so an ideally scalable system
// would show flat response times.
func Scalability(sizes []int, base core.Config, opts ...engine.Options) ([]ScaleCell, error) {
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	if base.PartitionSize == 0 {
		base.PartitionSize = 8
	}
	appCost := workload.DefaultAppCost()
	plan := engine.NewPlan[ScaleCell]("E9 scalability")
	for _, size := range sizes {
		// Validate while building the plan so a bad size fails before any
		// simulation runs, exactly as the sequential loop did.
		if size%base.PartitionSize != 0 {
			return nil, fmt.Errorf("machine %d not divisible by partition %d", size, base.PartitionSize)
		}
		size := size
		plan.Add(fmt.Sprintf("n=%d", size), func() (ScaleCell, error) {
			mkBatch := func() workload.Batch {
				return workload.BatchSpec{
					Small: size * 3 / 4, Large: size / 4, Arch: workload.Adaptive,
					NewApp: func(class string) workload.App {
						n := workload.MatMulSmallN
						if class == "large" {
							n = workload.MatMulLargeN
						}
						return workload.NewMatMul(n, appCost, false)
					},
				}.Build()
			}
			cell := ScaleCell{Machine: size}

			cfg := base
			cfg.Processors = size
			cfg.Batch = mkBatch()
			staticMean, _, _, err := core.StaticAveraged(cfg)
			if err != nil {
				return ScaleCell{}, fmt.Errorf("static %d: %w", size, err)
			}
			cell.Static = staticMean

			cfg = base
			cfg.Processors = size
			cfg.Batch = mkBatch()
			cfg.Policy = sched.TimeShared
			ts, err := core.Run(cfg)
			if err != nil {
				return ScaleCell{}, fmt.Errorf("ts %d: %w", size, err)
			}
			cell.TS = ts.MeanResponse()
			cell.TSMemBlock = ts.TotalMemBlockedTime()
			cell.TSOverhead = ts.SystemOverheadFraction()
			return cell, nil
		})
	}
	return engine.Execute(plan, opts...)
}

// ScaleTable renders E9.
func ScaleTable(cells []ScaleCell) string {
	t := newText("E9 — Machine-size scalability (matmul adaptive, one job per processor, 8-node mesh partitions)")
	t.linef("%-8s %12s %12s %10s %14s %8s\n", "nodes", "static(avg)", "hybrid", "TS/stat", "TS memBlock", "TS ovh")
	for _, c := range cells {
		t.linef("%-8d %12s %12s %10.2f %14s %7.1f%%\n",
			c.Machine, fmtSec(c.Static), fmtSec(c.TS), safeRatio(c.TS, c.Static), fmtSec(c.TSMemBlock), 100*c.TSOverhead)
	}
	return t.String()
}
