package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E6 — open-system load sweep: static vs dynamic vs hybrid

// LoadPoint is one offered-load setting's outcome. Each policy's value is
// the mean over LoadReplications arrival sequences; the RelCI fields carry
// the widest relative 95% confidence half-width across the three policies,
// a convergence indicator.
type LoadPoint struct {
	// Rho is the offered load: mean service demand x arrival rate / capacity.
	Rho float64
	// Static4 and Hybrid4 use fixed 4-processor partitions; Dynamic uses
	// buddy-allocated blocks sized by the equipartition heuristic.
	Static4, Hybrid4, Dynamic sim.Time
	// MaxRelCI is the largest relative CI half-width among the policies.
	MaxRelCI float64
}

// DefaultLoads spans light to heavy offered load.
var DefaultLoads = []float64{0.3, 0.5, 0.7, 0.85}

// openBatch builds the open-system workload: three paper batches' worth of
// matmul jobs (36 small + 12 large, adaptive architecture) with Poisson
// arrivals at offered load rho.
func openBatch(rho float64, seed int64) workload.Batch {
	cost := workload.DefaultAppCost()
	batch := workload.BatchSpec{
		Small: 36, Large: 12, Arch: workload.Adaptive,
		NewApp: func(class string) workload.App {
			n := workload.MatMulSmallN
			if class == "large" {
				n = workload.MatMulLargeN
			}
			return workload.NewMatMul(n, cost, false)
		},
	}.Build()
	// Mean sequential demand over the batch composition.
	var mean sim.Time
	for _, j := range batch {
		mean += j.App.SequentialWork()
	}
	mean /= sim.Time(len(batch))
	// 16 processors serve 16 node-seconds per second; interarrival for
	// offered load rho is S / (16 rho).
	inter := sim.Time(float64(mean) / (16 * rho))
	return batch.WithPoissonArrivals(inter, seed)
}

// LoadReplications is the number of independent arrival sequences averaged
// per load point (Poisson sampling noise is substantial with 48 jobs).
const LoadReplications = 5

// OpenLoadSweep is extension experiment E6: the paper evaluates closed
// batches only; an open system with Poisson arrivals shows how the policies
// behave across offered load, and lets the dynamic space-sharing policy
// (the §2.1 family the paper cites but does not implement) adapt partition
// sizes to the queue. Each point averages LoadReplications arrival
// sequences.
func OpenLoadSweep(rhos []float64, base core.Config) ([]LoadPoint, error) {
	var out []LoadPoint
	for _, rho := range rhos {
		point := LoadPoint{Rho: rho}
		for _, pc := range []struct {
			policy sched.Policy
			psize  int
			dst    *sim.Time
		}{
			{sched.Static, 4, &point.Static4},
			{sched.TimeShared, 4, &point.Hybrid4},
			{sched.DynamicSpace, 0, &point.Dynamic},
		} {
			summary, err := stats.Replicate(LoadReplications, func(rep int64) (float64, error) {
				cfg := base
				cfg.Policy = pc.policy
				cfg.PartitionSize = pc.psize
				if cfg.Topology == 0 {
					cfg.Topology = topology.Mesh
				}
				cfg.Batch = openBatch(rho, base.Seed+7+rep*131)
				res, err := core.Run(cfg)
				if err != nil {
					return 0, err
				}
				return float64(res.MeanResponse()), nil
			})
			if err != nil {
				return nil, fmt.Errorf("rho %.2f %v: %w", rho, pc.policy, err)
			}
			*pc.dst = sim.Time(summary.Mean)
			if rel := summary.RelativeCI(); rel > point.MaxRelCI {
				point.MaxRelCI = rel
			}
		}
		out = append(out, point)
	}
	return out, nil
}

// LoadTable renders E6.
func LoadTable(points []LoadPoint) string {
	var b strings.Builder
	b.WriteString("E6 — Open-system load sweep (matmul adaptive, Poisson arrivals)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %10s\n", "load", "static-4", "hybrid-4", "dynamic", "max ±CI")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6.2f %12s %12s %12s %9.0f%%\n",
			p.Rho, fmtSec(p.Static4), fmtSec(p.Hybrid4), fmtSec(p.Dynamic), 100*p.MaxRelCI)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E7 — gang scheduling vs RR-job

// GangCell compares the two time-sharing disciplines for one workload.
type GangCell struct {
	App          string
	RRJob, Gang  sim.Time
	RRJobOvh     float64
	GangOverhead float64
}

// GangVsRRJob is extension experiment E7: the paper's RR-job shares each
// node independently; gang scheduling coschedules whole jobs. For the
// loosely-coupled paper workloads the difference is small, but for the
// tightly-synchronized stencil the uncoordinated policy makes every halo
// exchange wait for a descheduled partner.
func GangVsRRJob(base core.Config) ([]GangCell, error) {
	if base.PartitionSize == 0 {
		base.PartitionSize = 8
	}
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	base.Arch = workload.Fixed
	var out []GangCell
	for _, app := range []core.AppKind{core.MatMul, core.Stencil} {
		cell := GangCell{App: app.String()}
		for _, pc := range []struct {
			policy sched.Policy
			dst    *sim.Time
			ovh    *float64
		}{
			{sched.TimeShared, &cell.RRJob, &cell.RRJobOvh},
			{sched.Gang, &cell.Gang, &cell.GangOverhead},
		} {
			cfg := base
			cfg.App = app
			cfg.Policy = pc.policy
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%v %v: %w", app, pc.policy, err)
			}
			*pc.dst = res.MeanResponse()
			*pc.ovh = res.SystemOverheadFraction()
		}
		out = append(out, cell)
	}
	return out, nil
}

// GangTable renders E7.
func GangTable(cells []GangCell) string {
	var b strings.Builder
	b.WriteString("E7 — Gang scheduling vs RR-job (fixed architecture, 8-node mesh partitions)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %10s %10s\n", "app", "rr-job", "gang", "gang/rrjob", "rrj ovh", "gang ovh")
	for _, c := range cells {
		ratio := 0.0
		if c.RRJob > 0 {
			ratio = float64(c.Gang) / float64(c.RRJob)
		}
		fmt.Fprintf(&b, "%-10s %12s %12s %12.2f %9.1f%% %9.1f%%\n",
			c.App, fmtSec(c.RRJob), fmtSec(c.Gang), ratio, 100*c.RRJobOvh, 100*c.GangOverhead)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E8 — topology stress with a communication-intensive workload

// StencilCell is one topology's outcome for the stencil batch.
type StencilCell struct {
	Label      string
	Static, TS sim.Time
	TSAvgLat   sim.Time
}

// StencilTopology is extension experiment E8: the paper's matmul
// communicates once (data distribution) and its sort twice; both are
// relatively insensitive to the interconnect. The halo-exchanging stencil
// synchronizes neighbors every sweep, so topology (and scheduling
// interference with communication) dominates — the workload the paper's
// introduction gestures at when motivating topology experiments.
func StencilTopology(base core.Config) ([]StencilCell, error) {
	base.App = core.Stencil
	base.Arch = workload.Fixed
	size := machineSize(base)
	base.PartitionSize = 8
	var out []StencilCell
	for _, kind := range topology.Kinds() {
		if kind == topology.Hypercube && base.PartitionSize == size {
			continue
		}
		cfg := base
		cfg.Topology = kind
		staticMean, _, _, err := core.StaticAveraged(cfg)
		if err != nil {
			return nil, fmt.Errorf("static %v: %w", kind, err)
		}
		tsCfg := cfg
		tsCfg.Policy = sched.TimeShared
		tsCfg.Order = core.Submission
		ts, err := core.Run(tsCfg)
		if err != nil {
			return nil, fmt.Errorf("ts %v: %w", kind, err)
		}
		out = append(out, StencilCell{
			Label:    fmt.Sprintf("%d%s", base.PartitionSize, kind.Letter()),
			Static:   staticMean,
			TS:       ts.MeanResponse(),
			TSAvgLat: ts.Net.AvgLatency(),
		})
	}
	return out, nil
}

// StencilTable renders E8.
func StencilTable(cells []StencilCell) string {
	var b strings.Builder
	b.WriteString("E8 — Topology stress, halo-exchange stencil (fixed arch, 8-node partitions)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %10s %14s\n", "topo", "static(avg)", "TS/hybrid", "TS/stat", "TS msg latency")
	for _, c := range cells {
		ratio := 0.0
		if c.Static > 0 {
			ratio = float64(c.TS) / float64(c.Static)
		}
		fmt.Fprintf(&b, "%-6s %12s %12s %10.2f %14s\n", c.Label, fmtSec(c.Static), fmtSec(c.TS), ratio, c.TSAvgLat)
	}
	return b.String()
}
