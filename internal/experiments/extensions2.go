package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E6 — open-system load sweep: static vs dynamic vs hybrid

// LoadPoint is one offered-load setting's outcome. Each policy's value is
// the mean over LoadReplications arrival sequences; the RelCI fields carry
// the widest relative 95% confidence half-width across the three policies,
// a convergence indicator.
type LoadPoint struct {
	// Rho is the offered load: mean service demand x arrival rate / capacity.
	Rho float64
	// Static4 and Hybrid4 use fixed 4-processor partitions; Dynamic uses
	// buddy-allocated blocks sized by the equipartition heuristic.
	Static4, Hybrid4, Dynamic sim.Time
	// MaxRelCI is the largest relative CI half-width among the policies.
	MaxRelCI float64
}

// DefaultLoads spans light to heavy offered load.
var DefaultLoads = []float64{0.3, 0.5, 0.7, 0.85}

// openBatch builds the open-system workload: three paper batches' worth of
// matmul jobs (36 small + 12 large, adaptive architecture) with Poisson
// arrivals at offered load rho.
func openBatch(rho float64, seed int64) workload.Batch {
	cost := workload.DefaultAppCost()
	batch := workload.BatchSpec{
		Small: 36, Large: 12, Arch: workload.Adaptive,
		NewApp: func(class string) workload.App {
			n := workload.MatMulSmallN
			if class == "large" {
				n = workload.MatMulLargeN
			}
			return workload.NewMatMul(n, cost, false)
		},
	}.Build()
	// Mean sequential demand over the batch composition.
	var mean sim.Time
	for _, j := range batch {
		mean += j.App.SequentialWork()
	}
	mean /= sim.Time(len(batch))
	// 16 processors serve 16 node-seconds per second; interarrival for
	// offered load rho is S / (16 rho).
	inter := sim.Time(float64(mean) / (16 * rho))
	return batch.WithPoissonArrivals(inter, seed)
}

// LoadReplications is the number of independent arrival sequences averaged
// per load point (Poisson sampling noise is substantial with 48 jobs).
const LoadReplications = 5

// OpenLoadSweep is extension experiment E6: the paper evaluates closed
// batches only; an open system with Poisson arrivals shows how the policies
// behave across offered load, and lets the dynamic space-sharing policy
// (the §2.1 family the paper cites but does not implement) adapt partition
// sizes to the queue. Each point averages LoadReplications arrival
// sequences.
//
// Every rho × policy pair is one engine point; the replications inside a
// point run sequentially (the plan already saturates the pool).
func OpenLoadSweep(rhos []float64, base core.Config, opts ...engine.Options) ([]LoadPoint, error) {
	type policyCell struct {
		mean sim.Time
		rel  float64
	}
	policies := []struct {
		policy sched.Policy
		psize  int
	}{
		{sched.Static, 4},
		{sched.TimeShared, 4},
		{sched.DynamicSpace, 0},
	}
	plan := engine.NewPlan[policyCell]("E6 load")
	for _, rho := range rhos {
		rho := rho
		for _, pc := range policies {
			pc := pc
			plan.Add(fmt.Sprintf("rho=%.2f/%v", rho, pc.policy), func() (policyCell, error) {
				summary, err := stats.Replicate(LoadReplications, func(rep int64) (float64, error) {
					cfg := base
					cfg.Policy = pc.policy
					cfg.PartitionSize = pc.psize
					if cfg.Topology == 0 {
						cfg.Topology = topology.Mesh
					}
					cfg.Batch = openBatch(rho, base.Seed+7+rep*131)
					res, err := core.Run(cfg)
					if err != nil {
						return 0, err
					}
					return float64(res.MeanResponse()), nil
				}, engine.Options{Workers: 1})
				if err != nil {
					return policyCell{}, fmt.Errorf("rho %.2f %v: %w", rho, pc.policy, err)
				}
				return policyCell{mean: sim.Time(summary.Mean), rel: summary.RelativeCI()}, nil
			})
		}
	}
	cells, err := engine.Execute(plan, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]LoadPoint, len(rhos))
	for i, rho := range rhos {
		point := LoadPoint{Rho: rho}
		row := cells[i*len(policies) : (i+1)*len(policies)]
		point.Static4, point.Hybrid4, point.Dynamic = row[0].mean, row[1].mean, row[2].mean
		for _, c := range row {
			if c.rel > point.MaxRelCI {
				point.MaxRelCI = c.rel
			}
		}
		out[i] = point
	}
	return out, nil
}

// LoadTable renders E6.
func LoadTable(points []LoadPoint) string {
	t := newText("E6 — Open-system load sweep (matmul adaptive, Poisson arrivals)")
	t.linef("%-6s %12s %12s %12s %10s\n", "load", "static-4", "hybrid-4", "dynamic", "max ±CI")
	for _, p := range points {
		t.linef("%-6.2f %12s %12s %12s %9.0f%%\n",
			p.Rho, fmtSec(p.Static4), fmtSec(p.Hybrid4), fmtSec(p.Dynamic), 100*p.MaxRelCI)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E7 — gang scheduling vs RR-job

// GangCell compares the two time-sharing disciplines for one workload.
type GangCell struct {
	App          string
	RRJob, Gang  sim.Time
	RRJobOvh     float64
	GangOverhead float64
}

// GangVsRRJob is extension experiment E7: the paper's RR-job shares each
// node independently; gang scheduling coschedules whole jobs. For the
// loosely-coupled paper workloads the difference is small, but for the
// tightly-synchronized stencil the uncoordinated policy makes every halo
// exchange wait for a descheduled partner.
func GangVsRRJob(base core.Config, opts ...engine.Options) ([]GangCell, error) {
	if base.PartitionSize == 0 {
		base.PartitionSize = 8
	}
	if base.Topology == 0 {
		base.Topology = topology.Mesh
	}
	base.Arch = workload.Fixed
	type runCell struct {
		mean sim.Time
		ovh  float64
	}
	apps := []core.AppKind{core.MatMul, core.Stencil}
	policies := []sched.Policy{sched.TimeShared, sched.Gang}
	plan := engine.NewPlan[runCell]("E7 gang")
	for _, app := range apps {
		app := app
		for _, pol := range policies {
			pol := pol
			plan.Add(fmt.Sprintf("%v/%v", app, pol), func() (runCell, error) {
				cfg := base
				cfg.App = app
				cfg.Policy = pol
				res, err := core.Run(cfg)
				if err != nil {
					return runCell{}, fmt.Errorf("%v %v: %w", app, pol, err)
				}
				return runCell{mean: res.MeanResponse(), ovh: res.SystemOverheadFraction()}, nil
			})
		}
	}
	cells, err := engine.Execute(plan, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]GangCell, len(apps))
	for i, app := range apps {
		rrj, gang := cells[i*2], cells[i*2+1]
		out[i] = GangCell{App: app.String(),
			RRJob: rrj.mean, RRJobOvh: rrj.ovh,
			Gang: gang.mean, GangOverhead: gang.ovh}
	}
	return out, nil
}

// GangTable renders E7.
func GangTable(cells []GangCell) string {
	t := newText("E7 — Gang scheduling vs RR-job (fixed architecture, 8-node mesh partitions)")
	t.linef("%-10s %12s %12s %12s %10s %10s\n", "app", "rr-job", "gang", "gang/rrjob", "rrj ovh", "gang ovh")
	for _, c := range cells {
		t.linef("%-10s %12s %12s %12.2f %9.1f%% %9.1f%%\n",
			c.App, fmtSec(c.RRJob), fmtSec(c.Gang), safeRatio(c.Gang, c.RRJob), 100*c.RRJobOvh, 100*c.GangOverhead)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// E8 — topology stress with a communication-intensive workload

// StencilCell is one topology's outcome for the stencil batch.
type StencilCell struct {
	Label      string
	Static, TS sim.Time
	TSAvgLat   sim.Time
}

// StencilTopology is extension experiment E8: the paper's matmul
// communicates once (data distribution) and its sort twice; both are
// relatively insensitive to the interconnect. The halo-exchanging stencil
// synchronizes neighbors every sweep, so topology (and scheduling
// interference with communication) dominates — the workload the paper's
// introduction gestures at when motivating topology experiments.
func StencilTopology(base core.Config, opts ...engine.Options) ([]StencilCell, error) {
	base.App = core.Stencil
	base.Arch = workload.Fixed
	size := machineSize(base)
	base.PartitionSize = 8
	plan := engine.NewPlan[StencilCell]("E8 stencil")
	for _, kind := range topology.Kinds() {
		if kind == topology.Hypercube && base.PartitionSize == size {
			continue
		}
		kind := kind
		plan.Add(kind.String(), func() (StencilCell, error) {
			cfg := base
			cfg.Topology = kind
			staticMean, _, _, err := core.StaticAveraged(cfg)
			if err != nil {
				return StencilCell{}, fmt.Errorf("static %v: %w", kind, err)
			}
			tsCfg := cfg
			tsCfg.Policy = sched.TimeShared
			tsCfg.Order = core.Submission
			ts, err := core.Run(tsCfg)
			if err != nil {
				return StencilCell{}, fmt.Errorf("ts %v: %w", kind, err)
			}
			return StencilCell{
				Label:    fmt.Sprintf("%d%s", base.PartitionSize, kind.Letter()),
				Static:   staticMean,
				TS:       ts.MeanResponse(),
				TSAvgLat: ts.Net.AvgLatency(),
			}, nil
		})
	}
	return engine.Execute(plan, opts...)
}

// StencilTable renders E8.
func StencilTable(cells []StencilCell) string {
	t := newText("E8 — Topology stress, halo-exchange stencil (fixed arch, 8-node partitions)")
	t.linef("%-6s %12s %12s %10s %14s\n", "topo", "static(avg)", "TS/hybrid", "TS/stat", "TS msg latency")
	for _, c := range cells {
		t.linef("%-6s %12s %12s %10.2f %14s\n", c.Label, fmtSec(c.Static), fmtSec(c.TS), safeRatio(c.TS, c.Static), c.TSAvgLat)
	}
	return t.String()
}
