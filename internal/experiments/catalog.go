package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// The catalog is the single registry of named experiments — every figure
// and extension study, addressable by id ("f3".."f6", "e1".."e15") — with
// uniform execution and rendering. cmd/ippsbench iterates it for the CLI
// and internal/serve exposes it over HTTP, so a new experiment registered
// here is immediately reachable from both.

// Format selects an experiment rendering.
type Format int

const (
	// Table is the human-readable text table matching the paper's layout.
	Table Format = iota
	// CSV is one comma-separated row per point.
	CSV
	// JSON is an array of row objects (same columns as the CSV).
	JSON
)

// ParseFormat parses "table", "csv" or "json".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "table", "":
		return Table, nil
	case "csv":
		return CSV, nil
	case "json":
		return JSON, nil
	}
	return 0, fmt.Errorf("experiments: unknown format %q (want table, csv or json)", s)
}

func (f Format) String() string {
	switch f {
	case CSV:
		return "csv"
	case JSON:
		return "json"
	default:
		return "table"
	}
}

// ContentType is the HTTP media type of the rendering.
func (f Format) ContentType() string {
	switch f {
	case CSV:
		return "text/csv; charset=utf-8"
	case JSON:
		return "application/json"
	default:
		return "text/plain; charset=utf-8"
	}
}

// CatalogEntry is one named experiment.
type CatalogEntry struct {
	// ID is the canonical short id ("f3", "e6").
	ID string
	// Title is the one-line description shown by listings.
	Title string
	// Run executes the experiment from the given base config and renders
	// it in the requested format. Cancellation arrives via opts.Ctx.
	Run func(base core.Config, format Format, opts engine.Options) (string, error)
}

// render3 adapts an experiment with table/CSV/JSON renderers to a Run func.
func render3(format Format, table func() string, csv func() string, json func() string) string {
	switch format {
	case CSV:
		return csv()
	case JSON:
		return json()
	default:
		return table()
	}
}

func figureEntry(id, title string, f func(core.Config, ...engine.Options) (*Figure, error)) CatalogEntry {
	return CatalogEntry{ID: id, Title: title, Run: func(base core.Config, format Format, opts engine.Options) (string, error) {
		fig, err := f(base, opts)
		if err != nil {
			return "", err
		}
		return render3(format, fig.Table, fig.CSV, fig.JSON), nil
	}}
}

var catalog = []CatalogEntry{
	figureEntry("f3", "Figure 3: matmul, fixed architecture", Figure3),
	figureEntry("f4", "Figure 4: matmul, adaptive architecture", Figure4),
	figureEntry("f5", "Figure 5: sort, fixed architecture", Figure5),
	figureEntry("f6", "Figure 6: sort, adaptive architecture", Figure6),
	{"e1", "E1: service-time variance sensitivity", func(base core.Config, format Format, opts engine.Options) (string, error) {
		points, err := VarianceSweep(DefaultCVs, base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return VarianceTable(points) },
			func() string { return VarianceCSV(points) },
			func() string { return VarianceJSON(points) }), nil
	}},
	{"e2", "E2: wormhole routing ablation", func(base core.Config, format Format, opts engine.Options) (string, error) {
		cells, err := WormholeAblation(base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return AblationTable(cells) },
			func() string { return AblationCSV(cells) },
			func() string { return AblationJSON(cells) }), nil
	}},
	{"e3", "E3: basic quantum sweep", func(base core.Config, format Format, opts engine.Options) (string, error) {
		points, err := QuantumSweep(DefaultQuanta, base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return QuantumTable(points) },
			func() string { return QuantumCSV(points) },
			func() string { return QuantumJSON(points) }), nil
	}},
	{"e4", "E4: RR-job vs RR-process fairness", func(base core.Config, format Format, opts engine.Options) (string, error) {
		r, err := RunRRComparison(base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return RRTable(r) },
			func() string { return RRCSV(r) },
			func() string { return RRJSON(r) }), nil
	}},
	{"e5", "E5: multiprogramming level tuning", func(base core.Config, format Format, opts engine.Options) (string, error) {
		points, err := MPLSweep(DefaultMPLs, base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return MPLTable(points) },
			func() string { return MPLCSV(points) },
			func() string { return MPLJSON(points) }), nil
	}},
	{"e6", "E6: open-system load sweep (static/hybrid/dynamic)", func(base core.Config, format Format, opts engine.Options) (string, error) {
		points, err := OpenLoadSweep(DefaultLoads, base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return LoadTable(points) },
			func() string { return LoadCSV(points) },
			func() string { return LoadJSON(points) }), nil
	}},
	{"e7", "E7: gang scheduling vs RR-job", func(base core.Config, format Format, opts engine.Options) (string, error) {
		cells, err := GangVsRRJob(base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return GangTable(cells) },
			func() string { return GangCSV(cells) },
			func() string { return GangJSON(cells) }), nil
	}},
	{"e8", "E8: topology stress with the halo-exchange stencil", func(base core.Config, format Format, opts engine.Options) (string, error) {
		cells, err := StencilTopology(base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return StencilTable(cells) },
			func() string { return StencilCSV(cells) },
			func() string { return StencilJSON(cells) }), nil
	}},
	{"e9", "E9: machine-size scalability (16-64 nodes)", func(base core.Config, format Format, opts engine.Options) (string, error) {
		cells, err := Scalability(DefaultScales, base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return ScaleTable(cells) },
			func() string { return ScaleCSV(cells) },
			func() string { return ScaleJSON(cells) }), nil
	}},
	{"e10", "E10: binomial-tree broadcast ablation", func(base core.Config, format Format, opts engine.Options) (string, error) {
		cells, err := BroadcastAblation(base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return BroadcastTable(cells) },
			func() string { return BroadcastCSV(cells) },
			func() string { return BroadcastJSON(cells) }), nil
	}},
	{"e11", "E11: sort-algorithm ablation (selection vs merge)", func(base core.Config, format Format, opts engine.Options) (string, error) {
		cells, err := SortAlgorithmAblation(base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return SortAlgTable(cells) },
			func() string { return SortAlgCSV(cells) },
			func() string { return SortAlgJSON(cells) }), nil
	}},
	{"e12", "E12: butterfly all-reduce vs topology", func(base core.Config, format Format, opts engine.Options) (string, error) {
		cells, err := CollectiveTopology(base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return CollectiveTable(cells) },
			func() string { return CollectiveCSV(cells) },
			func() string { return CollectiveJSON(cells) }), nil
	}},
	{"e14", "E14: policy zoo vs the paper's disciplines", func(base core.Config, format Format, opts engine.Options) (string, error) {
		cells, err := PolicyZoo(base, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return ZooTable(cells) },
			func() string { return ZooCSV(cells) },
			func() string { return ZooJSON(cells) }), nil
	}},
	{"e15", "E15: policy zoo under open-system load", func(base core.Config, format Format, opts engine.Options) (string, error) {
		cells, err := OpenSweep(base, nil, opts)
		if err != nil {
			return "", err
		}
		return render3(format,
			func() string { return OpenSweepTable(cells) },
			func() string { return OpenSweepCSV(cells) },
			func() string { return OpenSweepJSON(cells) }), nil
	}},
}

// Catalog returns every named experiment in presentation order. The slice
// is shared; callers must not mutate it.
func Catalog() []CatalogEntry { return catalog }

// Lookup resolves an experiment id — canonical ("f3", "e6") or the "fig3"
// long form — to its entry, or nil.
func Lookup(id string) *CatalogEntry {
	if len(id) > 3 && id[:3] == "fig" {
		id = "f" + id[3:]
	}
	for i := range catalog {
		if catalog[i].ID == id {
			return &catalog[i]
		}
	}
	return nil
}
