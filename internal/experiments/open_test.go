package experiments

import (
	"strings"
	"testing"

	"repro/internal/arrival"
	"repro/internal/core"
)

// TestOpenSweepClaims encodes the E15 phenomenon at a test-sized grid: every
// zoo contender gets a row per load, response times are positive, and pushing
// the load toward saturation cannot make time-shared's mean response better.
func TestOpenSweepClaims(t *testing.T) {
	loads := []float64{0.5, 0.9}
	base := core.Config{Arrival: arrival.Spec{Jobs: 300}}
	cells, err := OpenSweep(base, loads)
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * len(loads); len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	type key struct {
		label string
		load  float64
	}
	byKey := map[key]OpenCell{}
	for _, c := range cells {
		if c.Mean <= 0 || c.P50 <= 0 || c.P99 < c.P50 {
			t.Errorf("%s @ %.2f: degenerate summary %+v", c.Label, c.Load, c)
		}
		if c.Jobs != 300*openReplications {
			t.Errorf("%s @ %.2f: jobs %d, want %d", c.Label, c.Load, c.Jobs, 300*openReplications)
		}
		if c.JobsPerSec <= 0 {
			t.Errorf("%s @ %.2f: throughput %.2f", c.Label, c.Load, c.JobsPerSec)
		}
		byKey[key{c.Label, c.Load}] = c
	}
	lo, hi := byKey[key{"time-shared", 0.5}], byKey[key{"time-shared", 0.9}]
	if hi.Mean < lo.Mean {
		t.Errorf("time-shared mean improved under heavier load: %v @0.5 vs %v @0.9", lo.Mean, hi.Mean)
	}
	// The headline E15 claims at the heavy end: past time-sharing's
	// saturation knee the malleable equipartition still answers in seconds,
	// and SRPT ordering keeps static's median flat while FCFS's blows up.
	if equi, ts := byKey[key{"equi/none/fcfs", 0.9}], byKey[key{"time-shared", 0.9}]; equi.Mean >= ts.Mean {
		t.Errorf("equi mean %v not below saturated time-shared %v at ρ=0.9", equi.Mean, ts.Mean)
	}
	if srpt, static := byKey[key{"static/none/srpt", 0.9}], byKey[key{"static", 0.9}]; srpt.P50 > static.P50 {
		t.Errorf("srpt p50 %v above static p50 %v at ρ=0.9", srpt.P50, static.P50)
	}
	if !strings.Contains(OpenSweepTable(cells), "E15") {
		t.Error("table header missing")
	}
	if csv := OpenSweepCSV(cells); !strings.HasPrefix(csv, "policy,rho,jobs,") {
		t.Errorf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

// TestOpenSweepRejectsOwnedAxis: the sweep owns the load axis and the
// arrival process must be generative.
func TestOpenSweepRejectsOwnedAxis(t *testing.T) {
	if _, err := OpenSweep(core.Config{Arrival: arrival.Spec{Load: 0.7}}, nil); err == nil {
		t.Error("preset load accepted")
	}
	if _, err := OpenSweep(core.Config{Arrival: arrival.Spec{Kind: arrival.Trace, TracePath: "x.jsonl"}}, nil); err == nil {
		t.Error("trace arrival accepted")
	}
}
