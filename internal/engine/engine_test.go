package engine

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/topology"
)

// slowPoint burns a little scheduling time so workers genuinely interleave.
func slowPoint(i int) func() (int, error) {
	return func() (int, error) {
		x := i
		for j := 0; j < 1000; j++ {
			x = (x*31 + j) % 9973
		}
		return i*i + x%1, nil
	}
}

func buildPlan(n int) *Plan[int] {
	p := NewPlan[int]("test")
	for i := 0; i < n; i++ {
		p.Add(fmt.Sprintf("p%d", i), slowPoint(i))
	}
	return p
}

// TestExecuteDeterminismAcrossWorkers: the engine's core contract — the
// result slice is identical for every worker count.
func TestExecuteDeterminismAcrossWorkers(t *testing.T) {
	want, err := Execute(buildPlan(64), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 64, 200} {
		got, err := Execute(buildPlan(64), Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d diverged from sequential results", w)
		}
	}
}

// TestExecutePanicIsolation: a panicking point becomes that point's error;
// other points still complete, and the panic's stack is preserved.
func TestExecutePanicIsolation(t *testing.T) {
	p := NewPlan[int]("panicky")
	p.Add("ok0", func() (int, error) { return 10, nil })
	p.Add("boom", func() (int, error) { panic("kernel exploded") })
	p.Add("ok2", func() (int, error) { return 30, nil })
	results, errs := ExecuteAll(p, Options{Workers: 4})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy points errored: %v %v", errs[0], errs[2])
	}
	if results[0] != 10 || results[2] != 30 {
		t.Errorf("healthy results = %d, %d", results[0], results[2])
	}
	var pe *PointError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("panic not converted to PointError: %v", errs[1])
	}
	if pe.Index != 1 || pe.Label != "boom" || pe.Plan != "panicky" {
		t.Errorf("PointError metadata = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "kernel exploded") {
		t.Errorf("panic value lost: %v", pe)
	}
}

// TestExecuteFirstErrorDeterministic: with several failures, Execute
// reports the lowest-indexed one — what a sequential loop would hit first —
// regardless of which worker failed first in wall-clock time.
func TestExecuteFirstErrorDeterministic(t *testing.T) {
	mk := func() *Plan[int] {
		p := NewPlan[int]("errs")
		for i := 0; i < 16; i++ {
			i := i
			p.Add(fmt.Sprintf("p%d", i), func() (int, error) {
				if i%3 == 2 { // points 2, 5, 8, 11, 14 fail
					return 0, fmt.Errorf("point %d failed", i)
				}
				return i, nil
			})
		}
		return p
	}
	for _, w := range []int{1, 8} {
		_, err := Execute(mk(), Options{Workers: w})
		if err == nil || err.Error() != "point 2 failed" {
			t.Errorf("workers=%d: first error = %v, want point 2", w, err)
		}
	}
}

// TestExecuteBoundsWorkers: no more than Workers points run concurrently.
func TestExecuteBoundsWorkers(t *testing.T) {
	const limit = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	p := NewPlan[int]("bounded")
	for i := 0; i < 40; i++ {
		p.Add("", func() (int, error) {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			defer cur.Add(-1)
			x := 0
			for j := 0; j < 5000; j++ {
				x += j
			}
			return x, nil
		})
	}
	if _, err := Execute(p, Options{Workers: limit}); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > limit {
		t.Errorf("peak concurrency %d exceeds worker limit %d", got, limit)
	}
}

// TestExecuteEmptyPlan: a no-point plan returns an empty slice, no error.
func TestExecuteEmptyPlan(t *testing.T) {
	results, err := Execute(NewPlan[int]("empty"), Options{Workers: 8})
	if err != nil || len(results) != 0 {
		t.Errorf("empty plan: results=%v err=%v", results, err)
	}
}

func TestPickDefaults(t *testing.T) {
	if got := Pick(); got.Workers != 0 {
		t.Errorf("Pick() = %+v", got)
	}
	if got := Pick(Options{Workers: 5}); got.Workers != 5 {
		t.Errorf("Pick(5) = %+v", got)
	}
	if w := (Options{}).workers(); w < 1 {
		t.Errorf("default workers = %d", w)
	}
}

// TestGridEnumeration: the cartesian product has the right size, order and
// the dynamic-policy partition override.
func TestGridEnumeration(t *testing.T) {
	g := Grid{
		Policies:   []sched.Policy{sched.Static, sched.DynamicSpace},
		Partitions: []int{2, 4},
		Topologies: []topology.Kind{topology.Linear, topology.Mesh},
		Seeds:      []int64{0, 7},
	}
	cfgs := g.Configs()
	if len(cfgs) != 2*2*2*2 {
		t.Fatalf("product size = %d, want 16", len(cfgs))
	}
	// Policies are outermost, seeds innermost.
	if cfgs[0].Policy != sched.Static || cfgs[0].Seed != 0 || cfgs[1].Seed != 7 {
		t.Errorf("nesting order wrong: %+v %+v", cfgs[0], cfgs[1])
	}
	var dims []Dims
	g.Enumerate(func(d Dims, cfg core.Config) {
		dims = append(dims, d)
		if d.Policy == sched.DynamicSpace {
			if cfg.PartitionSize != 0 {
				t.Errorf("dynamic config kept partition %d", cfg.PartitionSize)
			}
			if d.Partition == 0 {
				t.Error("Dims lost the requested partition size")
			}
		} else if cfg.PartitionSize != d.Partition {
			t.Errorf("partition mismatch: cfg %d dims %d", cfg.PartitionSize, d.Partition)
		}
	})
	if len(dims) != len(cfgs) {
		t.Errorf("Enumerate visited %d, Configs %d", len(dims), len(cfgs))
	}
}
