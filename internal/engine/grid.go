package engine

import (
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Grid declares a cartesian product over core.Config dimensions plus
// seeds — the declarative form of the nested loops the sweep tools used to
// hand-roll. A nil dimension contributes the Base value only, so a Grid
// with no dimensions set enumerates exactly one configuration.
type Grid struct {
	Base core.Config

	Policies   []sched.Policy
	Partitions []int
	Topologies []topology.Kind
	Apps       []core.AppKind
	Archs      []workload.Arch
	Modes      []comm.Mode
	Quanta     []sim.Time
	Seeds      []int64

	// Policy-component overrides (zero values inherit from the policy).
	// Grids that do not set them enumerate in the exact historical order.
	//
	// PartitionPolicies is prefix-defining (a partition-policy change
	// invalidates warm state), so it nests with the other prefix dimensions
	// — outside Quanta/Seeds — keeping the fork-divergible dimensions
	// (quanta, seeds, quantum policies, queue orders) innermost; see the
	// adjacency invariant on Enumerate.
	PartitionPolicies []sched.PartitionKind
	QuantumPolicies   []sched.QuantumKind
	Orders            []sched.OrderKind
}

// Dims is one tuple of the product. It preserves the requested dimension
// values even where the derived Config diverges (dynamic space-sharing
// ignores the fixed partition size), so sweep output can be labeled by what
// was asked for.
type Dims struct {
	Policy    sched.Policy
	Partition int
	Topology  topology.Kind
	App       core.AppKind
	Arch      workload.Arch
	Mode      comm.Mode
	Quantum   sim.Time
	Seed      int64

	PartitionPolicy sched.PartitionKind
	QuantumPolicy   sched.QuantumKind
	Order           sched.OrderKind
}

// PolicyLabel renders the point's effective discipline: the legacy name when
// no component override is in play, the partition/quantum/order triple
// otherwise. Unresolvable combinations fall back to the legacy policy name
// (the run itself will surface the proper error).
func (d Dims) PolicyLabel() string {
	spec, err := sched.ResolveSpec(d.Policy, d.PartitionPolicy, d.QuantumPolicy, d.Order)
	if err != nil {
		return d.Policy.String()
	}
	return spec.String()
}

// Enumerate calls f for every combination in a fixed nesting order —
// policies outermost, then partitions, topologies, apps, architectures,
// switching modes, partition policies, then quanta, seeds, quantum policies
// and queue orders innermost. Grids without component overrides enumerate
// in the exact historical sweep-tool order, so migrated output stays
// byte-identical.
//
// The nesting maintains the fork-adjacency invariant: every dimension
// nested inside the outermost fork-divergible dimension (Quanta) is itself
// divergible, so the points of one warm-fork group — points identical in
// every prefix-defining dimension — always form one contiguous run of the
// enumeration (asserted by TestGridForkAdjacency; NewForkSweep relies on
// it to label groups but groups correctly either way).
func (g Grid) Enumerate(f func(Dims, core.Config)) {
	policies := g.Policies
	if len(policies) == 0 {
		policies = []sched.Policy{g.Base.Policy}
	}
	partitions := g.Partitions
	if len(partitions) == 0 {
		partitions = []int{g.Base.PartitionSize}
	}
	topologies := g.Topologies
	if len(topologies) == 0 {
		topologies = []topology.Kind{g.Base.Topology}
	}
	apps := g.Apps
	if len(apps) == 0 {
		apps = []core.AppKind{g.Base.App}
	}
	archs := g.Archs
	if len(archs) == 0 {
		archs = []workload.Arch{g.Base.Arch}
	}
	modes := g.Modes
	if len(modes) == 0 {
		modes = []comm.Mode{g.Base.Mode}
	}
	quanta := g.Quanta
	if len(quanta) == 0 {
		quanta = []sim.Time{g.Base.BasicQuantum}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{g.Base.Seed}
	}
	partpols := g.PartitionPolicies
	if len(partpols) == 0 {
		partpols = []sched.PartitionKind{g.Base.PartitionPolicy}
	}
	quantpols := g.QuantumPolicies
	if len(quantpols) == 0 {
		quantpols = []sched.QuantumKind{g.Base.QuantumPolicy}
	}
	orders := g.Orders
	if len(orders) == 0 {
		orders = []sched.OrderKind{g.Base.QueueOrder}
	}
	for _, pol := range policies {
		for _, psize := range partitions {
			for _, kind := range topologies {
				for _, app := range apps {
					for _, arch := range archs {
						for _, mode := range modes {
							for _, pp := range partpols {
								for _, q := range quanta {
									for _, seed := range seeds {
										for _, qp := range quantpols {
											for _, ord := range orders {
												cfg := g.Base
												cfg.Policy = pol
												cfg.PartitionSize = psize
												cfg.Topology = kind
												cfg.App = app
												cfg.Arch = arch
												cfg.Mode = mode
												cfg.BasicQuantum = q
												cfg.Seed = seed
												cfg.PartitionPolicy = pp
												cfg.QuantumPolicy = qp
												cfg.QueueOrder = ord
												if pol == sched.DynamicSpace {
													cfg.PartitionSize = 0 // dynamic ignores fixed partitioning
												}
												f(Dims{
													Policy:          pol,
													Partition:       psize,
													Topology:        kind,
													App:             app,
													Arch:            arch,
													Mode:            mode,
													Quantum:         q,
													Seed:            seed,
													PartitionPolicy: pp,
													QuantumPolicy:   qp,
													Order:           ord,
												}, cfg)
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// Configs materializes the product in enumeration order.
func (g Grid) Configs() []core.Config {
	var out []core.Config
	g.Enumerate(func(_ Dims, cfg core.Config) { out = append(out, cfg) })
	return out
}
