// Package engine is the parallel, deterministic run engine behind every
// experiment driver. A Plan enumerates independent simulation Points (one
// seeded, deterministic run each — a figure cell, a sweep configuration, a
// fault-study rung); Execute fans the points out over a bounded worker pool
// and collects results keyed by point index.
//
// The contract that makes parallelism free: every point is an independent
// deterministic simulation, so the result slice — and therefore any table
// or CSV rendered from it — is byte-identical for every worker count.
// Workers=1 reproduces the old sequential driver loops exactly; any other
// count produces the same slice in the same order, only faster.
//
// Panics inside a point are isolated: they surface as that point's error
// (with the goroutine's stack) instead of crashing the whole sweep, and
// when several points fail the error of the lowest-indexed point is
// reported — the same one a sequential loop would have hit first.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Point is one independent unit of a sweep: a label for diagnostics and a
// closure that computes the point's result. The closure must not depend on
// other points — the engine may run it on any worker at any time.
type Point[T any] struct {
	Label string
	Run   func() (T, error)
}

// Plan is an ordered list of points. Order is significant: results are
// collected by point index, so the plan's order is the output order
// regardless of execution interleaving.
type Plan[T any] struct {
	Name   string
	Points []Point[T]
}

// NewPlan creates an empty plan. The name appears in panic diagnostics.
func NewPlan[T any](name string) *Plan[T] { return &Plan[T]{Name: name} }

// Add appends a point and returns its index.
func (p *Plan[T]) Add(label string, run func() (T, error)) int {
	p.Points = append(p.Points, Point[T]{Label: label, Run: run})
	return len(p.Points) - 1
}

// Len reports the number of points.
func (p *Plan[T]) Len() int { return len(p.Points) }

// Options tunes plan execution.
type Options struct {
	// Workers bounds how many points run concurrently; <= 0 means
	// runtime.NumCPU(). The worker count never changes results, only
	// wall-clock time.
	Workers int
	// Ctx, when non-nil, cancels the plan: once it is done no further
	// points are dispatched and every undispatched point's error slot is
	// filled with the context's error. Points already running finish
	// normally (a simulation cannot be interrupted mid-run). This is how
	// callers that only hold an Options value — the experiment drivers —
	// inherit cancellation without a signature change; ExecuteAllCtx is
	// the explicit form.
	Ctx context.Context
}

// Pick resolves a variadic options list (the idiom drivers use to stay
// backward compatible): the first element if present, else the defaults.
func Pick(opts ...Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// PointError is the error a panicking point is converted into.
type PointError struct {
	Plan  string
	Index int
	Label string
	Err   error
}

func (e *PointError) Error() string {
	return fmt.Sprintf("engine: plan %q point %d (%s): %v", e.Plan, e.Index, e.Label, e.Err)
}

func (e *PointError) Unwrap() error { return e.Err }

// runPoint executes one point, converting a panic into its error slot.
func runPoint[T any](p *Plan[T], i int, results []T, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			errs[i] = &PointError{
				Plan:  p.Name,
				Index: i,
				Label: p.Points[i].Label,
				Err:   fmt.Errorf("panic: %v\n%s", r, debug.Stack()),
			}
		}
	}()
	results[i], errs[i] = p.Points[i].Run()
}

// ExecuteAll runs every point and returns the results and errors, both
// keyed by point index. Unlike Execute it never discards later results
// because an earlier point failed — callers that want best-effort sweeps
// (cmd/sweep) report per-point errors and keep the good rows.
//
// Cancellation comes from Options.Ctx when set (see ExecuteAllCtx for the
// explicit form); otherwise the plan always runs to completion.
func ExecuteAll[T any](p *Plan[T], opts ...Options) ([]T, []error) {
	o := Pick(opts...)
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return executeAll(ctx, p, o)
}

// ExecuteAllCtx is ExecuteAll with explicit cancellation: once ctx is done,
// no further points are dispatched — their error slots are filled with
// ctx.Err() (context.Canceled or context.DeadlineExceeded) — and the call
// returns as soon as the points already in flight finish. No goroutines
// outlive the call. ctx overrides Options.Ctx.
func ExecuteAllCtx[T any](ctx context.Context, p *Plan[T], opts ...Options) ([]T, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return executeAll(ctx, p, Pick(opts...))
}

// ExecuteCtx is Execute with explicit cancellation; like Execute it returns
// the error of the lowest-indexed failed point, which under cancellation is
// the first undispatched point's ctx.Err().
func ExecuteCtx[T any](ctx context.Context, p *Plan[T], opts ...Options) ([]T, error) {
	results, errs := ExecuteAllCtx(ctx, p, opts...)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func executeAll[T any](ctx context.Context, p *Plan[T], o Options) ([]T, []error) {
	n := len(p.Points)
	results := make([]T, n)
	errs := make([]error, n)
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := range p.Points {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			runPoint(p, i, results, errs)
		}
		return results, errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Claiming before the cancellation check keeps the
				// bookkeeping simple: after cancel the workers race
				// through the remaining indices, stamping each with
				// ctx.Err() without running it.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				runPoint(p, i, results, errs)
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// Execute runs the plan and returns the results keyed by point index. If
// any points failed, the error of the lowest-indexed failure is returned —
// exactly the error a sequential loop over the same points would have
// returned first, so error behaviour is deterministic too.
func Execute[T any](p *Plan[T], opts ...Options) ([]T, error) {
	results, errs := ExecuteAll(p, opts...)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
