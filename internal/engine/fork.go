package engine

// Warm-fork sweep execution: detect shared-prefix structure in a Grid plan
// and run each shared prefix once instead of once per point.
//
// A Grid's innermost dimensions — quanta, seeds, quantum policies, queue
// orders — are exactly the knobs core.Divergence can apply at a fork
// instant. Points that agree on every other (prefix-defining) dimension
// therefore share the whole simulation up to the fork point; NewForkSweep
// groups them, Prepare runs each group's prefix once (lazily, on first
// demand, so unused groups cost nothing and distinct groups warm up in
// parallel on the worker pool), and every point resumes from its group's
// snapshot with its own divergence.
//
// The byte-identity contract is inherited from core: each point's warm
// result equals core.RunForked(base, fp, div) — and, for a zero fork point,
// a plain core.Run of the point's own config — so a fork-sweep result
// slice is interchangeable with a cold one at any worker count.

import (
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
)

// ForkGroup is one shared-prefix equivalence class of a grid: the base
// configuration (the group's first point in enumeration order) plus the
// lazily prepared warm donor every member forks from.
type ForkGroup struct {
	base core.Config
	fp   core.ForkPoint

	once sync.Once
	warm *core.Warm
	err  error

	encOnce sync.Once
	enc     []byte
	encErr  error
}

// Base is the group's donor configuration — the first member in
// enumeration order, which every member's Divergence is relative to.
func (g *ForkGroup) Base() core.Config { return g.base }

// Warm returns the group's prepared donor, running the shared prefix on
// first call. Safe for concurrent use; concurrent callers of the same
// group block until the one Prepare finishes.
func (g *ForkGroup) Warm() (*core.Warm, error) {
	g.once.Do(func() { g.warm, g.err = core.Prepare(g.base, g.fp) })
	return g.warm, g.err
}

// EncodedSnapshot returns the group's serialized snapshot for shipping to
// a cluster worker, preparing the donor first if needed. The bytes are
// encoded once and shared — callers must not mutate them.
func (g *ForkGroup) EncodedSnapshot() ([]byte, error) {
	w, err := g.Warm()
	if err != nil {
		return nil, err
	}
	g.encOnce.Do(func() { g.enc, g.encErr = w.Snapshot().Encode() })
	return g.enc, g.encErr
}

// ForkSweep is a grid analyzed for warm forking: every enumeration point
// bound to its shared-prefix group and the divergence that turns the
// group's base into the point.
type ForkSweep struct {
	fp     core.ForkPoint
	groups []*ForkGroup
	refs   []forkRef
}

type forkRef struct {
	group *ForkGroup
	div   core.Divergence
}

// NewForkSweep analyzes the grid's enumeration under the given fork point.
// Points are grouped by core.DivergenceBetween: a point joins the first
// group whose base it differs from only in divergible dimensions, else it
// starts a new group with itself as base. The Grid nesting invariant
// (divergible dimensions innermost) makes the points of one shared prefix
// a contiguous run of the enumeration; grouping does not depend on that —
// it also merges points that only *resolve* to divergible differences
// (say, two legacy policies forced onto one partition policy by an
// override), wherever they sit in the plan.
func NewForkSweep(g Grid, fp core.ForkPoint) *ForkSweep {
	fs := &ForkSweep{fp: fp}
	g.Enumerate(func(_ Dims, cfg core.Config) {
		for _, grp := range fs.groups {
			if div, err := core.DivergenceBetween(grp.base, cfg); err == nil {
				fs.refs = append(fs.refs, forkRef{grp, div})
				return
			}
		}
		grp := &ForkGroup{base: cfg, fp: fp}
		fs.groups = append(fs.groups, grp)
		fs.refs = append(fs.refs, forkRef{grp, core.Divergence{}})
	})
	return fs
}

// Len reports the number of points (the grid's product size).
func (fs *ForkSweep) Len() int { return len(fs.refs) }

// NumGroups reports the number of shared-prefix groups.
func (fs *ForkSweep) NumGroups() int { return len(fs.groups) }

// ForkPoint reports the fork point every group snapshots at.
func (fs *ForkSweep) ForkPoint() core.ForkPoint { return fs.fp }

// Group returns point i's shared-prefix group.
func (fs *ForkSweep) Group(i int) *ForkGroup { return fs.refs[i].group }

// Divergence returns point i's delta relative to its group's base.
func (fs *ForkSweep) Divergence(i int) core.Divergence { return fs.refs[i].div }

// Run executes point i as a warm fork: prepare the group's donor if this
// is its first member to run, then resume the snapshot under the point's
// divergence. Safe for concurrent use across points.
func (fs *ForkSweep) Run(i int) (*metrics.Result, error) {
	ref := fs.refs[i]
	w, err := ref.group.Warm()
	if err != nil {
		return nil, err
	}
	return w.Run(ref.div)
}

// Plan builds the engine plan that executes the whole sweep warm: one
// point per grid point, labeled by label, runnable at any worker count
// with byte-identical results.
func (fs *ForkSweep) Plan(name string, label func(i int) string) *Plan[*metrics.Result] {
	plan := NewPlan[*metrics.Result](name)
	for i := range fs.refs {
		i := i
		plan.Add(label(i), func() (*metrics.Result, error) { return fs.Run(i) })
	}
	return plan
}
