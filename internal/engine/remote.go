package engine

import (
	"context"
	"sync/atomic"
)

// Remote execution: the same plan/point/merge contract as the local worker
// pool, with the point's work done somewhere else. A RemotePoint carries no
// closure — it is pure data (an affinity key, an endpoint path, an opaque
// request body) that a Remote implementation ships to another machine. The
// cluster coordinator (internal/cluster) is the production Remote: it routes
// each point to a worker by rendezvous hashing on Key so repeated sweeps hit
// the worker that already cached the answer.
//
// The merge guarantee carries over unchanged: results are collected by point
// index, so the output of a remote plan is byte-identical at any client
// concurrency and any fleet size — routing, retries and hedging change which
// machine computes a byte slice, never the bytes or their order.

// RemotePoint is one unit of remote work.
type RemotePoint struct {
	// Label appears in diagnostics, like Point.Label.
	Label string
	// Key is the point's content address (core.Config.Hash or the serve
	// request key). Remotes route on it: equal keys land on the same
	// worker while the fleet is stable, which is what makes worker-side
	// result caches effective across repeated and overlapping sweeps.
	Key string
	// Path is the worker endpoint the request body is for
	// (e.g. "/v1/point" or "/v1/run").
	Path string
	// Body is the opaque request payload.
	Body []byte
}

// Remote runs one keyed request on another machine and returns the response
// body. Implementations own routing, retry and hedging; they must return
// the response bytes unmodified, because callers merge them positionally
// into byte-identical documents.
type Remote interface {
	Do(ctx context.Context, p RemotePoint) ([]byte, error)
}

// RemotePlan is an ordered list of remote points. Like Plan, order is the
// output order regardless of execution interleaving.
type RemotePlan struct {
	Name   string
	Points []RemotePoint
}

// NewRemotePlan creates an empty remote plan.
func NewRemotePlan(name string) *RemotePlan { return &RemotePlan{Name: name} }

// Add appends a point and returns its index.
func (p *RemotePlan) Add(pt RemotePoint) int {
	p.Points = append(p.Points, pt)
	return len(p.Points) - 1
}

// Len reports the number of points.
func (p *RemotePlan) Len() int { return len(p.Points) }

// Memo is a durable (or at least persistent-enough) map from a point's
// content address to the response bytes once served for it. Because
// remote points are content-addressed and workers are deterministic, a
// memoized body is not a stale approximation — it is the byte-identical
// answer, forever. The cluster journal (internal/cluster.Journal) is the
// production Memo: an fsync'd append-only log that makes remote plans
// resumable across a client or coordinator crash.
type Memo interface {
	// Get returns the recorded body for a key.
	Get(key string) ([]byte, bool)
	// Put records a completed point. Implementations define durability;
	// an error fails the point — a sweep that silently loses its journal
	// is worse than one that stops.
	Put(key string, body []byte) error
}

// WithMemo wraps a Remote so completed points are recorded in, and
// replayed from, the memo: re-executing a plan after a crash skips every
// already-completed point byte-identically and runs only the remainder.
// Hits and Misses on the returned wrapper count the split.
func WithMemo(r Remote, m Memo) *MemoRemote {
	return &MemoRemote{remote: r, memo: m}
}

// MemoRemote is a Remote with memoized (resumable) execution.
type MemoRemote struct {
	remote Remote
	memo   Memo

	hits   atomic.Int64
	misses atomic.Int64
}

// Do answers from the memo when the point has already completed, and
// records the body (durably, per the Memo) before reporting success
// otherwise — so a point acknowledged to the caller is never recomputed
// after a resume.
func (m *MemoRemote) Do(ctx context.Context, p RemotePoint) ([]byte, error) {
	if body, ok := m.memo.Get(p.Key); ok {
		m.hits.Add(1)
		return body, nil
	}
	body, err := m.remote.Do(ctx, p)
	if err != nil {
		return nil, err
	}
	if err := m.memo.Put(p.Key, body); err != nil {
		return nil, err
	}
	m.misses.Add(1)
	return body, nil
}

// Hits reports points answered from the memo; Misses reports points the
// wrapped remote had to execute.
func (m *MemoRemote) Hits() int64   { return m.hits.Load() }
func (m *MemoRemote) Misses() int64 { return m.misses.Load() }

// ExecuteRemoteAll fans the plan out over the remote with bounded client
// concurrency (Options.Workers bounds in-flight requests, not simulations)
// and collects response bodies and errors keyed by point index — the same
// contract as ExecuteAll. Cancellation, panic isolation and ordering all
// come from the local pool the remote calls run on.
func ExecuteRemoteAll(ctx context.Context, r Remote, p *RemotePlan, opts ...Options) ([][]byte, []error) {
	plan := NewPlan[[]byte]("remote/" + p.Name)
	for _, pt := range p.Points {
		pt := pt
		plan.Add(pt.Label, func() ([]byte, error) { return r.Do(ctx, pt) })
	}
	return ExecuteAllCtx(ctx, plan, Pick(opts...))
}

// ExecuteRemote is ExecuteRemoteAll returning the lowest-indexed failure,
// mirroring Execute.
func ExecuteRemote(ctx context.Context, r Remote, p *RemotePlan, opts ...Options) ([][]byte, error) {
	results, errs := ExecuteRemoteAll(ctx, r, p, opts...)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
