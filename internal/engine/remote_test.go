package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeRemote answers each point from a map, with optional per-key errors.
type fakeRemote struct {
	calls atomic.Int64
	fail  map[string]error
}

func (f *fakeRemote) Do(_ context.Context, p RemotePoint) ([]byte, error) {
	f.calls.Add(1)
	if err, ok := f.fail[p.Key]; ok {
		return nil, err
	}
	return []byte("body:" + p.Key), nil
}

func remotePlan(n int) *RemotePlan {
	p := NewRemotePlan("t")
	for i := 0; i < n; i++ {
		p.Add(RemotePoint{Label: fmt.Sprintf("p%d", i), Key: fmt.Sprintf("k%d", i), Path: "/v1/point"})
	}
	return p
}

// TestClusterRemoteOrdering: bodies come back keyed by point index at every
// client concurrency — the byte-identical merge invariant.
func TestClusterRemoteOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		r := &fakeRemote{}
		bodies, errs := ExecuteRemoteAll(context.Background(), r, remotePlan(23), Options{Workers: workers})
		for i, b := range bodies {
			if errs[i] != nil {
				t.Fatalf("workers=%d point %d: %v", workers, i, errs[i])
			}
			if want := fmt.Sprintf("body:k%d", i); string(b) != want {
				t.Fatalf("workers=%d point %d = %q, want %q", workers, i, b, want)
			}
		}
		if got := r.calls.Load(); got != 23 {
			t.Fatalf("workers=%d: %d calls, want 23", workers, got)
		}
	}
}

// TestClusterRemoteErrorIsolation: a failing point fills only its own error
// slot; the other bodies survive.
func TestClusterRemoteErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	r := &fakeRemote{fail: map[string]error{"k3": boom}}
	bodies, errs := ExecuteRemoteAll(context.Background(), r, remotePlan(6), Options{Workers: 3})
	for i := range bodies {
		if i == 3 {
			if !errors.Is(errs[i], boom) {
				t.Fatalf("point 3 err = %v, want boom", errs[i])
			}
			continue
		}
		if errs[i] != nil || string(bodies[i]) != fmt.Sprintf("body:k%d", i) {
			t.Fatalf("point %d = %q, %v", i, bodies[i], errs[i])
		}
	}
	if _, err := ExecuteRemote(context.Background(), r, remotePlan(6), Options{Workers: 3}); !errors.Is(err, boom) {
		t.Fatalf("ExecuteRemote err = %v, want boom", err)
	}
}

// TestClusterRemoteCancellation: a cancelled context stamps undispatched
// points with ctx.Err without calling the remote for them.
func TestClusterRemoteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &fakeRemote{}
	_, errs := ExecuteRemoteAll(ctx, r, remotePlan(5), Options{Workers: 1})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("point %d err = %v, want canceled", i, err)
		}
	}
	if got := r.calls.Load(); got != 0 {
		t.Fatalf("remote called %d times after cancel, want 0", got)
	}
}

// memoMap is an in-memory Memo for tests; failPut simulates a journal
// whose disk died mid-sweep.
type memoMap struct {
	mu      sync.Mutex
	m       map[string][]byte
	failPut error
	puts    int
}

func (mm *memoMap) Get(key string) ([]byte, bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	b, ok := mm.m[key]
	return b, ok
}

func (mm *memoMap) Put(key string, body []byte) error {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if mm.failPut != nil {
		return mm.failPut
	}
	if mm.m == nil {
		mm.m = make(map[string][]byte)
	}
	mm.m[key] = body
	mm.puts++
	return nil
}

// TestClusterRemoteMemoResume: a memoized plan executed twice calls the
// remote only for points absent from the memo, and replays recorded bodies
// byte-identically.
func TestClusterRemoteMemoResume(t *testing.T) {
	mm := &memoMap{}
	r := &fakeRemote{}
	wrapped := WithMemo(r, mm)

	first, errs := ExecuteRemoteAll(context.Background(), wrapped, remotePlan(9), Options{Workers: 3})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
	if r.calls.Load() != 9 || wrapped.Misses() != 9 || wrapped.Hits() != 0 {
		t.Fatalf("first run: calls=%d misses=%d hits=%d", r.calls.Load(), wrapped.Misses(), wrapped.Hits())
	}

	// "Crash" and resume: a fresh wrapper over the same memo, the remote
	// untouched for replayed points.
	resumed := WithMemo(r, mm)
	second, errs := ExecuteRemoteAll(context.Background(), resumed, remotePlan(9), Options{Workers: 3})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("resume point %d: %v", i, err)
		}
		if string(second[i]) != string(first[i]) {
			t.Fatalf("resume point %d = %q, want %q", i, second[i], first[i])
		}
	}
	if r.calls.Load() != 9 {
		t.Errorf("resume touched the remote: %d calls, want 9", r.calls.Load())
	}
	if resumed.Hits() != 9 || resumed.Misses() != 0 {
		t.Errorf("resume: hits=%d misses=%d, want 9/0", resumed.Hits(), resumed.Misses())
	}
}

// TestClusterRemoteMemoPutFailureFailsPoint: losing the journal fails the
// point — a sweep that silently stops being resumable is worse than one
// that stops.
func TestClusterRemoteMemoPutFailureFailsPoint(t *testing.T) {
	sick := errors.New("disk gone")
	wrapped := WithMemo(&fakeRemote{}, &memoMap{failPut: sick})
	_, err := wrapped.Do(context.Background(), RemotePoint{Key: "k"})
	if !errors.Is(err, sick) {
		t.Fatalf("err = %v, want the Put failure", err)
	}
}

// TestClusterRemoteMemoSkipsFailedPoints: only successful bodies are
// recorded; a failing point stays un-memoized and retries on resume.
func TestClusterRemoteMemoSkipsFailedPoints(t *testing.T) {
	boom := errors.New("boom")
	mm := &memoMap{}
	r := &fakeRemote{fail: map[string]error{"k1": boom}}
	wrapped := WithMemo(r, mm)
	if _, err := wrapped.Do(context.Background(), RemotePoint{Key: "k1"}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := mm.Get("k1"); ok {
		t.Fatal("failed point was memoized")
	}
	// The remote recovers; the point completes and is recorded.
	delete(r.fail, "k1")
	if _, err := wrapped.Do(context.Background(), RemotePoint{Key: "k1"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := mm.Get("k1"); !ok {
		t.Fatal("recovered point not memoized")
	}
}
