package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// fakeRemote answers each point from a map, with optional per-key errors.
type fakeRemote struct {
	calls atomic.Int64
	fail  map[string]error
}

func (f *fakeRemote) Do(_ context.Context, p RemotePoint) ([]byte, error) {
	f.calls.Add(1)
	if err, ok := f.fail[p.Key]; ok {
		return nil, err
	}
	return []byte("body:" + p.Key), nil
}

func remotePlan(n int) *RemotePlan {
	p := NewRemotePlan("t")
	for i := 0; i < n; i++ {
		p.Add(RemotePoint{Label: fmt.Sprintf("p%d", i), Key: fmt.Sprintf("k%d", i), Path: "/v1/point"})
	}
	return p
}

// TestClusterRemoteOrdering: bodies come back keyed by point index at every
// client concurrency — the byte-identical merge invariant.
func TestClusterRemoteOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		r := &fakeRemote{}
		bodies, errs := ExecuteRemoteAll(context.Background(), r, remotePlan(23), Options{Workers: workers})
		for i, b := range bodies {
			if errs[i] != nil {
				t.Fatalf("workers=%d point %d: %v", workers, i, errs[i])
			}
			if want := fmt.Sprintf("body:k%d", i); string(b) != want {
				t.Fatalf("workers=%d point %d = %q, want %q", workers, i, b, want)
			}
		}
		if got := r.calls.Load(); got != 23 {
			t.Fatalf("workers=%d: %d calls, want 23", workers, got)
		}
	}
}

// TestClusterRemoteErrorIsolation: a failing point fills only its own error
// slot; the other bodies survive.
func TestClusterRemoteErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	r := &fakeRemote{fail: map[string]error{"k3": boom}}
	bodies, errs := ExecuteRemoteAll(context.Background(), r, remotePlan(6), Options{Workers: 3})
	for i := range bodies {
		if i == 3 {
			if !errors.Is(errs[i], boom) {
				t.Fatalf("point 3 err = %v, want boom", errs[i])
			}
			continue
		}
		if errs[i] != nil || string(bodies[i]) != fmt.Sprintf("body:k%d", i) {
			t.Fatalf("point %d = %q, %v", i, bodies[i], errs[i])
		}
	}
	if _, err := ExecuteRemote(context.Background(), r, remotePlan(6), Options{Workers: 3}); !errors.Is(err, boom) {
		t.Fatalf("ExecuteRemote err = %v, want boom", err)
	}
}

// TestClusterRemoteCancellation: a cancelled context stamps undispatched
// points with ctx.Err without calling the remote for them.
func TestClusterRemoteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &fakeRemote{}
	_, errs := ExecuteRemoteAll(ctx, r, remotePlan(5), Options{Workers: 1})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("point %d err = %v, want canceled", i, err)
		}
	}
	if got := r.calls.Load(); got != 0 {
		t.Fatalf("remote called %d times after cancel, want 0", got)
	}
}
