package engine

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func forkResultJSON(t *testing.T, res *metrics.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// forkBatch builds a two-wave batch with a quiescent gap: wave jobs at t=0,
// late jobs arriving at gapAt, long after the wave drains.
func forkBatch(wave, late int, gapAt sim.Time) workload.Batch {
	batch := make(workload.Batch, 0, wave+late)
	cost := workload.DefaultAppCost()
	for i := 0; i < wave; i++ {
		batch = append(batch, &workload.Job{
			ID: i, Class: "small", Arch: workload.Adaptive,
			App: workload.NewSynthetic(20*sim.Millisecond, 256, 1024, cost),
		})
	}
	for i := 0; i < late; i++ {
		batch = append(batch, &workload.Job{
			ID: wave + i, Class: "small", Arch: workload.Adaptive, Arrival: gapAt,
			App: workload.NewSynthetic(10*sim.Millisecond, 256, 1024, cost),
		})
	}
	return batch
}

// groupRuns maps each enumeration point to its group and asserts every
// group's members form one contiguous run, returning the group count.
func groupRuns(t *testing.T, fs *ForkSweep) int {
	t.Helper()
	seen := make(map[*ForkGroup]bool)
	var last *ForkGroup
	for i := 0; i < fs.Len(); i++ {
		g := fs.Group(i)
		if g != last && seen[g] {
			t.Errorf("point %d returns to group %q after the run ended — fork groups not contiguous", i, g.Base().Label())
		}
		seen[g] = true
		last = g
	}
	return len(seen)
}

// TestGridForkAdjacency asserts the Grid nesting invariant: the
// fork-divergible dimensions (quanta, seeds, quantum policies, queue
// orders) nest innermost, so the points of one shared prefix form one
// contiguous run of the enumeration. The partition-policy dimension is the
// regression case — it is prefix-defining and used to nest inside seeds,
// interleaving fork groups.
func TestGridForkAdjacency(t *testing.T) {
	plain := Grid{
		Base:       core.Config{Topology: topology.Mesh},
		Policies:   []sched.Policy{sched.Static, sched.TimeShared},
		Partitions: []int{2, 4},
		Quanta:     []sim.Time{0, 20 * sim.Millisecond},
		Seeds:      []int64{0, 1},
	}
	fs := NewForkSweep(plain, core.ForkPoint{})
	if fs.Len() != 16 {
		t.Fatalf("plain grid has %d points, want 16", fs.Len())
	}
	if got := groupRuns(t, fs); got != 4 {
		t.Errorf("plain grid grouped into %d fork groups, want 4 (policies x partitions)", got)
	}

	// Multiple partition policies: prefix-defining, so they must separate
	// groups without interleaving them between divergible points.
	partpols := Grid{
		Base:              core.Config{Topology: topology.Mesh, PartitionSize: 8},
		Policies:          []sched.Policy{sched.DynamicSpace},
		PartitionPolicies: []sched.PartitionKind{sched.PartBuddy, sched.PartEqui},
		Quanta:            []sim.Time{0, 20 * sim.Millisecond},
		Seeds:             []int64{0, 1},
	}
	fs = NewForkSweep(partpols, core.ForkPoint{})
	if fs.Len() != 8 {
		t.Fatalf("partpol grid has %d points, want 8", fs.Len())
	}
	if got := groupRuns(t, fs); got != 2 {
		t.Errorf("partpol grid grouped into %d fork groups, want 2 (one per partition policy)", got)
	}
	// The first member of each group is its base and carries an empty
	// divergence.
	first := make(map[*ForkGroup]bool)
	for i := 0; i < fs.Len(); i++ {
		if g := fs.Group(i); !first[g] {
			first[g] = true
			if !fs.Divergence(i).Empty() {
				t.Errorf("point %d is its group's base but has divergence %+v", i, fs.Divergence(i))
			}
		}
	}
}

// TestForkSweepWarmEqualsCold is the engine-level half of the fork gate:
// every point of a warm sweep is byte-identical to its cold reference
// (core.RunForked of the group base at the same fork point and
// divergence), and the warm plan is byte-identical at 1 and 8 workers.
func TestForkSweepWarmEqualsCold(t *testing.T) {
	g := Grid{
		Base: core.Config{Topology: topology.Mesh, Policy: sched.TimeShared,
			Batch: forkBatch(6, 4, 5*sim.Second)},
		Partitions: []int{4},
		Quanta:     []sim.Time{0, 20 * sim.Millisecond},
		Seeds:      []int64{0, 1},
		Orders:     []sched.OrderKind{sched.OrderFCFS, sched.OrderSRPT},
	}
	fp := core.ForkPoint{WarmTime: sim.Second, WarmJobs: 6}

	fs := NewForkSweep(g, fp)
	if fs.NumGroups() != 1 {
		t.Fatalf("shared-prefix grid grouped into %d groups, want 1", fs.NumGroups())
	}
	label := func(i int) string { return fs.Group(i).Base().Label() }
	seq, err := Execute(fs.Plan("fork-sweep", label), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < fs.Len(); i++ {
		cold, err := core.RunForked(fs.Group(i).Base(), fp, fs.Divergence(i))
		if err != nil {
			t.Fatalf("cold reference for point %d: %v", i, err)
		}
		if c, w := forkResultJSON(t, cold), forkResultJSON(t, seq[i]); c != w {
			t.Errorf("point %d: warm sweep diverged from cold reference\ncold: %.300s\nwarm: %.300s", i, c, w)
		}
	}

	// A fresh sweep at 8 workers prepares the donor under contention and
	// must still merge byte-identically.
	fs8 := NewForkSweep(g, fp)
	label8 := func(i int) string { return fs8.Group(i).Base().Label() }
	par, err := Execute(fs8.Plan("fork-sweep-8", label8), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if forkResultJSON(t, seq[i]) != forkResultJSON(t, par[i]) {
			t.Errorf("point %d differs between 1 and 8 workers", i)
		}
	}
}

// TestForkSweepT0EqualsPlainRun: with a zero fork point every warm point
// must equal a plain cold run of that point's own configuration — the
// other half of the determinism contract, at the sweep level.
func TestForkSweepT0EqualsPlainRun(t *testing.T) {
	g := Grid{
		Base:       core.Config{Topology: topology.Mesh, Policy: sched.Gang},
		Partitions: []int{4},
		Seeds:      []int64{0, 7},
	}
	fs := NewForkSweep(g, core.ForkPoint{})
	cfgs := g.Configs()
	for i := 0; i < fs.Len(); i++ {
		warm, err := fs.Run(i)
		if err != nil {
			t.Fatalf("warm point %d: %v", i, err)
		}
		cold, err := core.Run(cfgs[i])
		if err != nil {
			t.Fatalf("cold point %d: %v", i, err)
		}
		if c, w := forkResultJSON(t, cold), forkResultJSON(t, warm); c != w {
			t.Errorf("t=0 fork point %d diverged from plain run", i)
		}
	}
}
