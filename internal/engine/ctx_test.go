package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestExecuteAllCtxCancelStopsDispatch: after cancel, no further points are
// dispatched, every undispatched point's error is context.Canceled, the
// points already in flight finish normally, and the call returns promptly.
func TestExecuteAllCtxCancelStopsDispatch(t *testing.T) {
	const n, workers = 64, 4
	ctx, cancel := context.WithCancel(context.Background())

	started := make(chan int, n)
	release := make(chan struct{})
	var ran atomic.Int64
	p := NewPlan[int]("cancel")
	for i := 0; i < n; i++ {
		i := i
		p.Add(fmt.Sprintf("p%d", i), func() (int, error) {
			ran.Add(1)
			started <- i
			<-release // hold the worker until the test has cancelled
			return i, nil
		})
	}

	done := make(chan struct{})
	var results []int
	var errs []error
	go func() {
		results, errs = ExecuteAllCtx(ctx, p, Options{Workers: workers})
		close(done)
	}()

	// Wait for every worker to be mid-point, then cancel and release.
	for i := 0; i < workers; i++ {
		<-started
	}
	cancel()
	close(release)

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ExecuteAllCtx did not return after cancel")
	}

	if got := ran.Load(); got != workers {
		t.Fatalf("ran %d points, want exactly the %d in flight at cancel", got, workers)
	}
	var completed, cancelled int
	for i := range errs {
		switch {
		case errs[i] == nil:
			completed++
			if results[i] != i {
				t.Errorf("point %d: result %d, want %d", i, results[i], i)
			}
		case errors.Is(errs[i], context.Canceled):
			cancelled++
			if results[i] != 0 {
				t.Errorf("cancelled point %d has a result %d", i, results[i])
			}
		default:
			t.Errorf("point %d: unexpected error %v", i, errs[i])
		}
	}
	if completed != workers || cancelled != n-workers {
		t.Errorf("completed=%d cancelled=%d, want %d and %d", completed, cancelled, workers, n-workers)
	}
}

// TestExecuteAllCtxSequentialCancel covers the workers<=1 path: a context
// cancelled mid-plan stamps every remaining point with the context error.
func TestExecuteAllCtxSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := NewPlan[int]("seq-cancel")
	for i := 0; i < 8; i++ {
		i := i
		p.Add(fmt.Sprintf("p%d", i), func() (int, error) {
			if i == 2 {
				cancel() // points 3..7 must not run
			}
			return i, nil
		})
	}
	results, errs := ExecuteAllCtx(ctx, p, Options{Workers: 1})
	for i := 0; i <= 2; i++ {
		if errs[i] != nil || results[i] != i {
			t.Errorf("point %d: got (%d, %v), want (%d, nil)", i, results[i], errs[i], i)
		}
	}
	for i := 3; i < 8; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("point %d: err %v, want context.Canceled", i, errs[i])
		}
	}
}

// TestExecuteAllCtxNoGoroutineLeak: a cancelled plan leaves no workers
// behind.
func TestExecuteAllCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already-cancelled context: nothing should run
		p := buildPlan(32)
		_, errs := ExecuteAllCtx(ctx, p, Options{Workers: 8})
		for i, err := range errs {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d point %d: err %v, want context.Canceled", round, i, err)
			}
		}
	}
	// Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after cancelled plans", before, runtime.NumGoroutine())
}

// TestOptionsCtxPlumbing: drivers that only pass Options inherit
// cancellation through Options.Ctx, and ExecuteCtx surfaces the first
// undispatched point's context error.
func TestOptionsCtxPlumbing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := ExecuteAll(buildPlan(4), Options{Workers: 2, Ctx: ctx})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("point %d: err %v, want context.Canceled", i, err)
		}
	}
	if _, err := ExecuteCtx(ctx, buildPlan(4), Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteCtx err %v, want context.Canceled", err)
	}
}
