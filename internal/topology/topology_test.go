package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
		got, err = ParseKind(k.Letter())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.Letter(), got, err)
		}
	}
	if k, err := ParseKind("torus"); err != nil || k != Torus {
		t.Errorf("ParseKind(torus) = %v, %v", k, err)
	}
	if _, err := ParseKind("butterfly"); err == nil {
		t.Error("ParseKind(butterfly) should fail")
	}
	if Kind(99).String() == "" || Kind(99).Letter() != "?" {
		t.Error("out-of-range Kind rendering")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Linear, 0); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := Build(Hypercube, 6); err == nil {
		t.Error("non-power-of-two hypercube should fail")
	}
	if _, err := Build(Kind(42), 4); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestLinearStructure(t *testing.T) {
	g := MustBuild(Linear, 8)
	if g.Degree(0) != 1 || g.Degree(7) != 1 {
		t.Error("linear endpoints should have degree 1")
	}
	for i := 1; i < 7; i++ {
		if g.Degree(i) != 2 {
			t.Errorf("interior node %d degree = %d", i, g.Degree(i))
		}
	}
	if g.Diameter() != 7 {
		t.Errorf("diameter = %d, want 7", g.Diameter())
	}
}

func TestRingStructure(t *testing.T) {
	g := MustBuild(Ring, 8)
	for i := 0; i < 8; i++ {
		if g.Degree(i) != 2 {
			t.Errorf("ring node %d degree = %d", i, g.Degree(i))
		}
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter = %d, want 4", g.Diameter())
	}
	// Shortest-way routing: 0 -> 3 goes clockwise, 0 -> 6 counterclockwise.
	if g.NextHop(0, 3) != 1 {
		t.Errorf("NextHop(0,3) = %d, want 1", g.NextHop(0, 3))
	}
	if g.NextHop(0, 6) != 7 {
		t.Errorf("NextHop(0,6) = %d, want 7", g.NextHop(0, 6))
	}
	// Tie (distance 4 both ways) goes clockwise.
	if g.NextHop(0, 4) != 1 {
		t.Errorf("NextHop(0,4) = %d, want 1 (clockwise tie-break)", g.NextHop(0, 4))
	}
}

func TestRingOfTwoHasSingleLink(t *testing.T) {
	g := MustBuild(Ring, 2)
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("2-ring degrees = %d,%d, want 1,1", g.Degree(0), g.Degree(1))
	}
	if g.Dist(0, 1) != 1 {
		t.Errorf("2-ring dist = %d", g.Dist(0, 1))
	}
}

func TestMeshShapes(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {32, 4, 8}, {12, 3, 4},
	}
	for _, c := range cases {
		g := MustBuild(Mesh, c.n)
		if g.Rows != c.rows || g.Cols != c.cols {
			t.Errorf("mesh %d shape = %dx%d, want %dx%d", c.n, g.Rows, g.Cols, c.rows, c.cols)
		}
	}
}

func TestMesh4x4(t *testing.T) {
	g := MustBuild(Mesh, 16)
	if g.Diameter() != 6 {
		t.Errorf("4x4 mesh diameter = %d, want 6", g.Diameter())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("4x4 mesh max degree = %d, want 4", g.MaxDegree())
	}
	// Dimension order: from 0 (r0,c0) to 15 (r3,c3) first move along the row.
	want := []int{0, 1, 2, 3, 7, 11, 15}
	path := g.Path(0, 15)
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestHypercube(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		g := MustBuild(Hypercube, n)
		wantDeg := 0
		for x := n; x > 1; x >>= 1 {
			wantDeg++
		}
		for i := 0; i < n; i++ {
			if g.Degree(i) != wantDeg {
				t.Errorf("hypercube %d node %d degree = %d, want %d", n, i, g.Degree(i), wantDeg)
			}
		}
		if g.Diameter() != wantDeg {
			t.Errorf("hypercube %d diameter = %d, want %d", n, g.Diameter(), wantDeg)
		}
	}
	// e-cube: 0 -> 7 flips bits low to high: 0,1,3,7.
	g := MustBuild(Hypercube, 8)
	path := g.Path(0, 7)
	want := []int{0, 1, 3, 7}
	for i := range want {
		if i >= len(path) || path[i] != want[i] {
			t.Fatalf("e-cube path = %v, want %v", path, want)
		}
	}
}

func TestHypercube16ExceedsTransputerDegree(t *testing.T) {
	// The paper can't build a 16-node hypercube (one transputer is the host
	// link); the pure graph has degree 4, which would exactly exhaust the
	// links. Record the structural fact the constraint derives from.
	g := MustBuild(Hypercube, 16)
	if g.MaxDegree() != 4 {
		t.Errorf("16-hypercube max degree = %d, want 4", g.MaxDegree())
	}
}

func TestSingleNodeGraphs(t *testing.T) {
	for _, k := range Kinds() {
		g := MustBuild(k, 1)
		if g.Degree(0) != 0 || g.Diameter() != 0 || g.AvgDist() != 0 {
			t.Errorf("%v size-1 graph not trivial", k)
		}
		if g.NextHop(0, 0) != 0 {
			t.Errorf("%v NextHop(0,0) = %d", k, g.NextHop(0, 0))
		}
		if g.Label() != "1" {
			t.Errorf("size-1 label = %q", g.Label())
		}
	}
}

func TestLabels(t *testing.T) {
	if l := MustBuild(Linear, 8).Label(); l != "8L" {
		t.Errorf("label = %q, want 8L", l)
	}
	if l := MustBuild(Hypercube, 4).Label(); l != "4H" {
		t.Errorf("label = %q, want 4H", l)
	}
}

func TestPorts(t *testing.T) {
	g := MustBuild(Mesh, 4) // 2x2: 0-1, 0-2, 1-3, 2-3
	if p := g.Port(0, 1); p != 0 {
		t.Errorf("Port(0,1) = %d, want 0", p)
	}
	if p := g.Port(0, 2); p != 1 {
		t.Errorf("Port(0,2) = %d, want 1", p)
	}
	if p := g.Port(0, 3); p != -1 {
		t.Errorf("Port(0,3) = %d, want -1 (not adjacent)", p)
	}
}

// bfsDist computes reference shortest-path distances for validation.
func bfsDist(g *Graph, src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// TestRoutingIsMinimal checks, for every topology and size used in the
// paper, that the deterministic routing tables realise true shortest paths
// (validated against BFS) and that routes only use real edges.
func TestRoutingIsMinimal(t *testing.T) {
	for _, k := range Kinds() {
		for _, n := range []int{1, 2, 4, 8, 16} {
			g := MustBuild(k, n)
			for s := 0; s < n; s++ {
				ref := bfsDist(g, s)
				for d := 0; d < n; d++ {
					if g.Dist(s, d) != ref[d] {
						t.Errorf("%v n=%d dist(%d,%d) = %d, want %d", k, n, s, d, g.Dist(s, d), ref[d])
					}
					if s != d {
						nh := g.NextHop(s, d)
						if g.Port(s, nh) < 0 {
							t.Errorf("%v n=%d NextHop(%d,%d)=%d is not a neighbor", k, n, s, d, nh)
						}
					}
				}
			}
		}
	}
}

// TestRoutingMinimalProperty extends the BFS cross-check to arbitrary sizes
// via property-based testing.
func TestRoutingMinimalProperty(t *testing.T) {
	f := func(kindSeed, sizeSeed uint8) bool {
		kind := Kind(int(kindSeed) % 4)
		n := int(sizeSeed)%31 + 1
		if kind == Hypercube {
			// Round down to a power of two.
			p := 1
			for p*2 <= n {
				p *= 2
			}
			n = p
		}
		g, err := Build(kind, n)
		if err != nil {
			return false
		}
		for s := 0; s < n; s++ {
			ref := bfsDist(g, s)
			for d := 0; d < n; d++ {
				if g.Dist(s, d) != ref[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// TestMeshRoutingDeadlockFree: dimension-ordered routing never routes Y
// before X, the classic sufficient condition for deadlock freedom on meshes.
func TestMeshRoutingDeadlockFree(t *testing.T) {
	g := MustBuild(Mesh, 16)
	for s := 0; s < g.N; s++ {
		for d := 0; d < g.N; d++ {
			if s == d {
				continue
			}
			path := g.Path(s, d)
			turnedY := false
			for i := 1; i < len(path); i++ {
				sameRow := path[i]/g.Cols == path[i-1]/g.Cols
				if sameRow && turnedY {
					t.Fatalf("path %v moves X after Y", path)
				}
				if !sameRow {
					turnedY = true
				}
			}
		}
	}
}

func TestAvgDistOrdering(t *testing.T) {
	// For 16 nodes: hypercube beats mesh beats ring beats linear, the
	// diameter ordering the paper's topology-sensitivity discussion rests on.
	l := MustBuild(Linear, 16).AvgDist()
	r := MustBuild(Ring, 16).AvgDist()
	m := MustBuild(Mesh, 16).AvgDist()
	h := MustBuild(Hypercube, 16).AvgDist()
	if !(h < m && m < r && r < l) {
		t.Errorf("avg dists H=%.2f M=%.2f R=%.2f L=%.2f not strictly improving", h, m, r, l)
	}
}

func TestTorusStructure(t *testing.T) {
	g := MustBuild(Torus, 16) // 4x4 wraparound
	for i := 0; i < 16; i++ {
		if g.Degree(i) != 4 {
			t.Errorf("torus node %d degree = %d, want 4", i, g.Degree(i))
		}
	}
	if g.Diameter() != 4 { // 2+2 with wraparound vs mesh's 6
		t.Errorf("4x4 torus diameter = %d, want 4", g.Diameter())
	}
	if g.MaxDegree() > 4 {
		t.Error("torus exceeds the transputer's four links")
	}
	// Wraparound route: 0 -> 3 is one hop left around the ring.
	if g.Dist(0, 3) != 1 {
		t.Errorf("dist(0,3) = %d, want 1 (wraparound)", g.Dist(0, 3))
	}
}

func TestTorusSmallSizes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		g := MustBuild(Torus, n)
		// Cross-check minimality against BFS.
		for s := 0; s < n; s++ {
			ref := bfsDist(g, s)
			for d := 0; d < n; d++ {
				if g.Dist(s, d) != ref[d] {
					t.Errorf("torus %d dist(%d,%d) = %d, want %d", n, s, d, g.Dist(s, d), ref[d])
				}
			}
		}
	}
}

func TestTorusBeatsMeshOnAvgDist(t *testing.T) {
	if MustBuild(Torus, 16).AvgDist() >= MustBuild(Mesh, 16).AvgDist() {
		t.Error("torus should beat mesh on average distance")
	}
}

func TestAllKindsIncludesTorus(t *testing.T) {
	if len(AllKinds()) != 5 {
		t.Errorf("AllKinds = %v", AllKinds())
	}
	if len(Kinds()) != 4 {
		t.Error("Kinds must stay the paper's four")
	}
	if Torus.Letter() != "T" || Torus.String() != "torus" {
		t.Error("torus naming")
	}
}
