// Package topology builds the interconnection networks used in the paper —
// linear array, ring, mesh, and hypercube — and computes deterministic
// shortest-path routing tables for them.
//
// Each scheduling partition of the simulated Transputer machine is configured
// as one of these topologies over its local node indices (0..N-1), exactly as
// the INMOS C004 link switches let the paper's authors rewire each partition.
// Routing is deterministic and minimal: ring routes the short way around
// (ties clockwise), mesh uses dimension-ordered X-then-Y routing, hypercube
// uses e-cube (lowest differing bit first). Deterministic routes make whole
// simulations bit-reproducible.
package topology

import (
	"fmt"
	"math"
	"strings"
)

// Kind identifies one of the four interconnection topologies.
type Kind int

const (
	// Linear is a linear array: node i connects to i-1 and i+1.
	Linear Kind = iota
	// Ring closes the linear array into a cycle.
	Ring
	// Mesh is a 2-D mesh (no wraparound), rows x cols as square as possible.
	Mesh
	// Hypercube connects nodes whose indices differ in exactly one bit.
	Hypercube
	// Torus is a 2-D mesh with wraparound in both dimensions — the classic
	// degree-4 network a C004 switch fabric can also wire, provided here
	// beyond the paper's four for custom studies.
	Torus
)

var kindNames = [...]string{"linear", "ring", "mesh", "hypercube", "torus"}
var kindLetters = [...]string{"L", "R", "M", "H", "T"}

// String returns the lowercase topology name.
func (k Kind) String() string {
	if k < Linear || k > Torus {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Letter returns the single-letter code the paper uses in figure labels
// (L, R, M, H — e.g. "8L" is a partition of 8 processors in a linear array).
func (k Kind) Letter() string {
	if k < Linear || k > Torus {
		return "?"
	}
	return kindLetters[k]
}

// Kinds lists the paper's four topologies in its order (Torus, an
// extension, is excluded so figure sweeps match the paper).
func Kinds() []Kind { return []Kind{Linear, Ring, Mesh, Hypercube} }

// AllKinds lists every supported topology including extensions.
func AllKinds() []Kind { return []Kind{Linear, Ring, Mesh, Hypercube, Torus} }

// ParseKind parses a topology from its name or single-letter code
// (case-insensitive).
func ParseKind(s string) (Kind, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	for i, n := range kindNames {
		if ls == n || strings.EqualFold(s, kindLetters[i]) {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("topology: unknown kind %q (want linear/ring/mesh/hypercube or L/R/M/H)", s)
}

// Graph is a built topology with adjacency and routing information. Nodes are
// numbered 0..N-1. Ports number a node's links 0..Degree-1 in ascending
// neighbor order, matching the four hardwired links of a T805.
type Graph struct {
	Kind Kind
	N    int

	// Mesh shape (rows*cols == N); zero for other kinds.
	Rows, Cols int

	adj  [][]int // neighbors of each node, ascending
	next [][]int // next[src][dst] = next-hop node; src itself when src == dst
	dist [][]int // hop counts
}

// Build constructs the topology of the given kind over n nodes.
// n must be >= 1; mesh requires n expressible as rows*cols with
// |rows-cols| minimal (any n works: rows = largest divisor <= sqrt(n));
// hypercube requires n to be a power of two.
func Build(kind Kind, n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: size %d < 1", n)
	}
	g := &Graph{Kind: kind, N: n}
	switch kind {
	case Linear:
		g.buildLinear()
	case Ring:
		g.buildRing()
	case Mesh:
		g.buildMesh()
	case Hypercube:
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("topology: hypercube size %d is not a power of two", n)
		}
		g.buildHypercube()
	case Torus:
		g.buildTorus()
	default:
		return nil, fmt.Errorf("topology: unknown kind %d", int(kind))
	}
	g.computeRouting()
	return g, nil
}

// MustBuild is Build but panics on error; for use with sizes already
// validated by configuration code.
func MustBuild(kind Kind, n int) *Graph {
	g, err := Build(kind, n)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) addEdge(a, b int) {
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

func (g *Graph) buildLinear() {
	g.adj = make([][]int, g.N)
	for i := 0; i+1 < g.N; i++ {
		g.addEdge(i, i+1)
	}
	g.sortAdj()
}

func (g *Graph) buildRing() {
	g.adj = make([][]int, g.N)
	if g.N == 1 {
		return
	}
	if g.N == 2 {
		// A 2-ring degenerates to a single link (no parallel edges on a
		// transputer switch fabric).
		g.addEdge(0, 1)
		g.sortAdj()
		return
	}
	for i := 0; i < g.N; i++ {
		g.addEdge(i, (i+1)%g.N)
	}
	g.sortAdj()
	// Deduplicate in case of tiny rings (defensive; N>2 has no dups).
	for i := range g.adj {
		g.adj[i] = dedupe(g.adj[i])
	}
}

// meshShape picks the most square rows x cols factorisation with rows <= cols.
func meshShape(n int) (rows, cols int) {
	rows = 1
	for r := 1; r <= int(math.Sqrt(float64(n))); r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return rows, n / rows
}

func (g *Graph) buildMesh() {
	g.Rows, g.Cols = meshShape(g.N)
	g.adj = make([][]int, g.N)
	id := func(r, c int) int { return r*g.Cols + c }
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if c+1 < g.Cols {
				g.addEdge(id(r, c), id(r, c+1))
			}
			if r+1 < g.Rows {
				g.addEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g.sortAdj()
}

func (g *Graph) buildTorus() {
	g.Rows, g.Cols = meshShape(g.N)
	g.adj = make([][]int, g.N)
	id := func(r, c int) int { return r*g.Cols + c }
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if g.Cols > 1 {
				g.addEdge(id(r, c), id(r, (c+1)%g.Cols))
			}
			if g.Rows > 1 {
				g.addEdge(id(r, c), id((r+1)%g.Rows, c))
			}
		}
	}
	g.sortAdj()
	for i := range g.adj {
		g.adj[i] = dedupe(g.adj[i])
	}
}

func (g *Graph) buildHypercube() {
	g.adj = make([][]int, g.N)
	for i := 0; i < g.N; i++ {
		for bit := 1; bit < g.N; bit <<= 1 {
			j := i ^ bit
			if j > i {
				g.addEdge(i, j)
			}
		}
	}
	g.sortAdj()
}

func (g *Graph) sortAdj() {
	for i := range g.adj {
		ins := g.adj[i]
		for a := 1; a < len(ins); a++ {
			for b := a; b > 0 && ins[b] < ins[b-1]; b-- {
				ins[b], ins[b-1] = ins[b-1], ins[b]
			}
		}
	}
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// computeRouting fills next and dist using kind-specific deterministic
// minimal routing.
func (g *Graph) computeRouting() {
	g.next = make([][]int, g.N)
	g.dist = make([][]int, g.N)
	for s := 0; s < g.N; s++ {
		g.next[s] = make([]int, g.N)
		g.dist[s] = make([]int, g.N)
		for d := 0; d < g.N; d++ {
			g.next[s][d] = g.hop(s, d)
		}
	}
	// Hop-by-hop walk gives distances and validates the next-hop functions
	// terminate (a routing loop would walk forever; cap at N hops).
	for s := 0; s < g.N; s++ {
		for d := 0; d < g.N; d++ {
			cur, hops := s, 0
			for cur != d {
				cur = g.next[cur][d]
				hops++
				if hops > g.N {
					panic(fmt.Sprintf("topology: routing loop %s n=%d src=%d dst=%d", g.Kind, g.N, s, d))
				}
			}
			g.dist[s][d] = hops
		}
	}
}

// hop computes the deterministic next hop from s toward d.
func (g *Graph) hop(s, d int) int {
	if s == d {
		return s
	}
	switch g.Kind {
	case Linear:
		if d > s {
			return s + 1
		}
		return s - 1
	case Ring:
		if g.N == 2 {
			return d
		}
		fwd := (d - s + g.N) % g.N // clockwise hops
		bwd := (s - d + g.N) % g.N // counterclockwise hops
		if fwd <= bwd {            // tie goes clockwise
			return (s + 1) % g.N
		}
		return (s - 1 + g.N) % g.N
	case Mesh:
		sr, sc := s/g.Cols, s%g.Cols
		dr, dc := d/g.Cols, d%g.Cols
		// Dimension-ordered: correct the column (X) first, then the row (Y).
		switch {
		case sc < dc:
			return sr*g.Cols + sc + 1
		case sc > dc:
			return sr*g.Cols + sc - 1
		case sr < dr:
			return (sr+1)*g.Cols + sc
		default:
			return (sr-1)*g.Cols + sc
		}
	case Hypercube:
		// e-cube: flip the lowest-order differing bit.
		diff := s ^ d
		low := diff & -diff
		return s ^ low
	case Torus:
		sr, sc := s/g.Cols, s%g.Cols
		dr, dc := d/g.Cols, d%g.Cols
		// Dimension-ordered with shortest wrap direction, column first.
		if sc != dc {
			return sr*g.Cols + torusStep(sc, dc, g.Cols)
		}
		return torusStep(sr, dr, g.Rows)*g.Cols + sc
	}
	panic("topology: hop on unknown kind")
}

// torusStep moves coordinate from toward to around a ring of size n the
// short way (ties go up, matching the ring's clockwise tie-break).
func torusStep(from, to, n int) int {
	fwd := (to - from + n) % n
	bwd := (from - to + n) % n
	if fwd <= bwd {
		return (from + 1) % n
	}
	return (from - 1 + n) % n
}

// Neighbors returns the neighbors of node i in ascending order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// Degree reports the number of links at node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// MaxDegree reports the largest node degree in the graph. A physical
// transputer has four links, so a partition topology is realisable only when
// MaxDegree <= 4.
func (g *Graph) MaxDegree() int {
	m := 0
	for i := range g.adj {
		if len(g.adj[i]) > m {
			m = len(g.adj[i])
		}
	}
	return m
}

// Port returns the port index (0-based, in ascending-neighbor order) that
// node i uses to reach its neighbor nb, or -1 if nb is not adjacent.
func (g *Graph) Port(i, nb int) int {
	for p, v := range g.adj[i] {
		if v == nb {
			return p
		}
	}
	return -1
}

// NextHop returns the next node on the deterministic shortest path from src
// to dst. It returns src when src == dst.
func (g *Graph) NextHop(src, dst int) int { return g.next[src][dst] }

// Dist returns the hop count of the route from src to dst.
func (g *Graph) Dist(src, dst int) int { return g.dist[src][dst] }

// Path returns the full node sequence of the route from src to dst,
// inclusive of both endpoints.
func (g *Graph) Path(src, dst int) []int {
	path := []int{src}
	for cur := src; cur != dst; {
		cur = g.next[cur][dst]
		path = append(path, cur)
	}
	return path
}

// Diameter is the maximum over all pairs of the routed hop count. Because
// routing is minimal this equals the graph diameter.
func (g *Graph) Diameter() int {
	m := 0
	for s := 0; s < g.N; s++ {
		for d := 0; d < g.N; d++ {
			if g.dist[s][d] > m {
				m = g.dist[s][d]
			}
		}
	}
	return m
}

// AvgDist is the mean routed hop count over all ordered pairs of distinct
// nodes; zero for a single-node graph.
func (g *Graph) AvgDist() float64 {
	if g.N < 2 {
		return 0
	}
	sum := 0
	for s := 0; s < g.N; s++ {
		for d := 0; d < g.N; d++ {
			if s != d {
				sum += g.dist[s][d]
			}
		}
	}
	return float64(sum) / float64(g.N*(g.N-1))
}

// Label renders the paper's figure label for a partition of this topology,
// e.g. "8L" for 8 processors in a linear array. Size-1 partitions are
// labelled plainly "1" since topology is meaningless there.
func (g *Graph) Label() string {
	if g.N == 1 {
		return "1"
	}
	return fmt.Sprintf("%d%s", g.N, g.Kind.Letter())
}
