package topology_test

import (
	"fmt"

	"repro/internal/topology"
)

// Example builds the 8-node hypercube and walks the deterministic e-cube
// route across its diameter.
func Example() {
	g := topology.MustBuild(topology.Hypercube, 8)
	fmt.Println("label:", g.Label())
	fmt.Println("diameter:", g.Diameter())
	fmt.Println("route 0->7:", g.Path(0, 7))
	// Output:
	// label: 8H
	// diameter: 3
	// route 0->7: [0 1 3 7]
}

// ExampleGraph_AvgDist compares the average routed distance of the paper's
// four topologies at 16 nodes — the ordering behind the topology
// sensitivity results.
func ExampleGraph_AvgDist() {
	for _, kind := range topology.Kinds() {
		g := topology.MustBuild(kind, 16)
		fmt.Printf("%-10s %.2f\n", kind, g.AvgDist())
	}
	// Output:
	// linear     5.67
	// ring       4.27
	// mesh       2.67
	// hypercube  2.13
}
