package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// diskStore is the tier-2 result store behind the in-memory LRU: one file
// per content address, so a worker restart re-serves its accumulated
// results instead of cold-starting (the RAM cache dies with the process;
// the directory does not). Files are written to a temp name and renamed
// into place — readers never observe a partial body — and each carries a
// CRC32 so a corrupt file is deleted on read rather than served.
//
// The store is size-bounded: when resident bytes exceed the bound, the
// oldest files (by modification time — write time, i.e. roughly LRU at
// tier-2 granularity) are removed until it fits. One result larger than
// the whole bound is never stored.
//
// File layout: a single JSON header line {"key","content_type","crc"}
// followed by the raw body bytes. The filename is the content address
// (already a hex hash for every serve key); the header repeats the key so
// warming never has to trust filenames.
type diskStore struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	bytes int64
	files map[string]storeFileInfo // filename -> size/mtime
}

type storeFileInfo struct {
	size  int64
	mtime time.Time
}

// storeHeader is the first line of every store file.
type storeHeader struct {
	Key         string `json:"key"`
	ContentType string `json:"content_type"`
	CRC         uint32 `json:"crc"` // crc32(IEEE) of the body bytes
}

// storeExt marks finished result files; temp files use storeTmpPattern and
// are swept on open (leftovers from a crash mid-write).
const storeExt = ".res"

// openDiskStore opens (creating if needed) the store rooted at dir and
// indexes the resident files.
func openDiskStore(dir string, maxBytes int64) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store dir: %w", err)
	}
	s := &diskStore{dir: dir, maxBytes: maxBytes, files: make(map[string]storeFileInfo)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scan store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if filepath.Ext(e.Name()) != storeExt {
			// A temp file from a crash mid-write: unreachable, reclaim it.
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.files[e.Name()] = storeFileInfo{size: info.Size(), mtime: info.ModTime()}
		s.bytes += info.Size()
	}
	return s, nil
}

// safeKey matches keys usable directly as filenames. Every serve cache key
// is a hex sha256, so this always matches in practice; anything else is
// refused rather than hashed again (the store is internal to serve).
var safeKey = regexp.MustCompile(`^[0-9a-f]{8,128}$`)

func (s *diskStore) filename(key string) (string, bool) {
	if !safeKey.MatchString(key) {
		return "", false
	}
	return key + storeExt, true
}

// get reads one stored result, verifying its checksum. A file that fails
// to parse or checksum is deleted and reported as a miss.
func (s *diskStore) get(key string) (body []byte, contentType string, ok bool) {
	name, ok := s.filename(key)
	if !ok {
		return nil, "", false
	}
	path := filepath.Join(s.dir, name)
	hdr, body, err := readStoreFile(path)
	if err != nil || hdr.Key != key {
		if !os.IsNotExist(err) {
			s.remove(name)
		}
		return nil, "", false
	}
	return body, hdr.ContentType, true
}

// readStoreFile parses one store file: header line, then body, checked
// against the header CRC.
func readStoreFile(path string) (storeHeader, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return storeHeader{}, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return storeHeader{}, nil, fmt.Errorf("serve: store header: %w", err)
	}
	var hdr storeHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return storeHeader{}, nil, fmt.Errorf("serve: store header: %w", err)
	}
	body, err := io.ReadAll(r)
	if err != nil {
		return storeHeader{}, nil, err
	}
	if crc32.ChecksumIEEE(body) != hdr.CRC {
		return storeHeader{}, nil, fmt.Errorf("serve: store body checksum mismatch")
	}
	return hdr, body, nil
}

// put writes one result atomically (temp file + rename) and garbage
// collects past the byte bound. Re-putting a resident key refreshes its
// mtime slot with identical bytes — harmless by determinism.
func (s *diskStore) put(key string, body []byte, contentType string) error {
	name, ok := s.filename(key)
	if !ok {
		return fmt.Errorf("serve: store key %q is not a content hash", key)
	}
	hdr, err := json.Marshal(storeHeader{Key: key, ContentType: contentType, CRC: crc32.ChecksumIEEE(body)})
	if err != nil {
		return err
	}
	record := append(append(hdr, '\n'), body...)
	if int64(len(record)) > s.maxBytes {
		return nil // larger than the whole store: serve it, never keep it
	}

	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(record); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return err
	}

	s.mu.Lock()
	if old, ok := s.files[name]; ok {
		s.bytes -= old.size
	}
	s.files[name] = storeFileInfo{size: int64(len(record)), mtime: time.Now()}
	s.bytes += int64(len(record))
	s.gcLocked()
	s.mu.Unlock()
	return nil
}

// gcLocked removes the oldest files until resident bytes fit the bound.
func (s *diskStore) gcLocked() {
	if s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		name string
		info storeFileInfo
	}
	victims := make([]aged, 0, len(s.files))
	for name, info := range s.files {
		victims = append(victims, aged{name, info})
	}
	sort.Slice(victims, func(i, j int) bool {
		if !victims[i].info.mtime.Equal(victims[j].info.mtime) {
			return victims[i].info.mtime.Before(victims[j].info.mtime)
		}
		return victims[i].name < victims[j].name
	})
	for _, v := range victims {
		if s.bytes <= s.maxBytes {
			return
		}
		os.Remove(filepath.Join(s.dir, v.name))
		s.bytes -= v.info.size
		delete(s.files, v.name)
	}
}

// remove deletes one file (corrupt, or mismatched key) and fixes the index.
func (s *diskStore) remove(name string) {
	s.mu.Lock()
	if info, ok := s.files[name]; ok {
		s.bytes -= info.size
		delete(s.files, name)
	}
	s.mu.Unlock()
	os.Remove(filepath.Join(s.dir, name))
}

// stats reports resident entries and bytes.
func (s *diskStore) stats() (entries int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files), s.bytes
}

// warm loads resident results into the memory cache, oldest first so the
// newest end up most-recently-used, bounded by the cache's own limits.
// This is the cache warming on worker join: a bounced worker starts
// serving hits immediately instead of re-simulating its whole history.
func (s *diskStore) warm(cache *resultCache) (loaded int) {
	s.mu.Lock()
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	infos := s.files
	sort.Slice(names, func(i, j int) bool {
		a, b := infos[names[i]], infos[names[j]]
		if !a.mtime.Equal(b.mtime) {
			return a.mtime.Before(b.mtime)
		}
		return names[i] < names[j]
	})
	s.mu.Unlock()
	for _, name := range names {
		hdr, body, err := readStoreFile(filepath.Join(s.dir, name))
		if err != nil {
			s.remove(name)
			continue
		}
		cache.put(hdr.Key, body, hdr.ContentType)
		loaded++
	}
	return loaded
}
