package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/sim"
)

// TestScheddOpenPoint wires an open-system arrival run through /v1/point:
// the response must carry the streaming summary, losslessly equal to what a
// local run computes.
func TestScheddOpenPoint(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()

	const body = `{"config":{"partition":4,"topology":"mesh","policy":"ts","arrival":{"process":"poisson","jobs":80,"load":0.6}}}`
	rr := postPoint(t, h, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /v1/point: status %d, body %s", rr.Code, rr.Body)
	}
	got, err := DecodePointSummary(rr.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Open == nil {
		t.Fatalf("open run summary missing open section: %+v", got)
	}
	if got.Open.Jobs != 80 || got.Jobs != 80 {
		t.Errorf("jobs = %d/%d, want 80", got.Jobs, got.Open.Jobs)
	}

	spec := ConfigSpec{Partition: 4, Topology: "mesh", Policy: "ts",
		Arrival: &ArrivalSpec{Process: "poisson", Jobs: 80, Load: 0.6}}
	cfg, err := spec.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := PointSummaryFrom(res); !reflect.DeepEqual(got, want) {
		t.Errorf("wire summary differs from local run:\n got: %+v %+v\nwant: %+v %+v",
			got, got.Open, want, want.Open)
	}
}

// TestScheddConfigErrors400 is the field-addressed validation contract:
// every config-spec failure — whether caught at parse time or inside
// core.Run — answers 400 with a body naming the offending field, never a
// 500.
func TestScheddConfigErrors400(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()

	cases := []struct {
		name, body, field string
	}{
		{"bad arrival load", `{"config":{"arrival":{"process":"poisson","load":1.5}}}`, "arrival.load"},
		{"trace on the wire", `{"config":{"arrival":{"process":"trace"}}}`, "arrival.process"},
		{"unknown arrival process", `{"config":{"arrival":{"process":"bursty"}}}`, "arrival.process"},
		{"arrival with fault", `{"config":{"arrival":{"process":"poisson"},"fault":{"node_mtbf_us":1000000,"node_mttr_us":1000}}}`, "fault"},
		{"partition does not divide", `{"config":{"partition":3}}`, "partition"},
		{"bad quantum", `{"config":{"quantum_us":-5}}`, "quantum_us"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := postPoint(t, h, tc.body)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status %d, body %s (want 400)", rr.Code, rr.Body)
			}
			var eb struct {
				Error string `json:"error"`
				Field string `json:"field"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
				t.Fatalf("error body not JSON: %s", rr.Body)
			}
			if eb.Error == "" {
				t.Errorf("empty error message: %s", rr.Body)
			}
			if eb.Field != "" && eb.Field != tc.field {
				t.Errorf("field = %q, want %q (body %s)", eb.Field, tc.field, rr.Body)
			}
		})
	}
}

// TestOpenSpecRoundTrip: SpecFromConfig and ToConfig invert each other for
// arrival configs, preserving the canonical hash the cluster routes on.
func TestOpenSpecRoundTrip(t *testing.T) {
	cfg := core.Config{
		PartitionSize: 4,
		Arrival: arrival.Spec{
			Kind:        arrival.Pareto,
			Jobs:        5000,
			Load:        0.7,
			ParetoAlpha: 1.8,
			ParetoCap:   sim.Time(2 * sim.Second),
			WidthSmall:  2,
			WidthLarge:  8,
		},
	}
	spec, err := SpecFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := cfg.MustHash(), back.MustHash()
	if h1 != h2 {
		t.Errorf("round trip moved the hash: %s vs %s", h1, h2)
	}
	// Trace configs have no wire form.
	cfg.Arrival = arrival.Spec{Kind: arrival.Trace, TracePath: "x.jsonl"}
	if _, err := SpecFromConfig(cfg); err == nil {
		t.Error("trace config should not be wire-representable")
	}
}
