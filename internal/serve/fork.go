package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

// POST /v1/fork is the warm-resume wire format of the distributed sweep
// fabric: a base configuration, the serialized whole-simulation snapshot
// taken at its fork point, and one divergence. The worker reconstructs the
// base system, installs the snapshot, applies the divergence and runs the
// continuation — answering with the exact PointSummary bytes /v1/point
// would produce for the same forked run, so sweep clients merge warm and
// cold points interchangeably.
//
// Responses are content-addressed like every other endpoint: the key binds
// the base config hash, the snapshot bytes and the divergence, so a
// repeated forked sweep routed back to the same worker (rendezvous hashing
// on the key does that) is a cache hit without resuming anything.

// ForkRequest is the POST /v1/fork body.
type ForkRequest struct {
	// Config is the base configuration the snapshot was taken from.
	Config ConfigSpec `json:"config"`
	// Snapshot is the core.Snapshot produced by Snapshot.Encode, embedded
	// verbatim. The worker verifies its config hash against Config.
	Snapshot json.RawMessage `json:"snapshot"`
	// Divergence is the per-point delta applied at the fork instant.
	Divergence DivergenceSpec `json:"divergence,omitempty"`
	// TimeoutMS bounds processing time, queueing included; 0 uses the
	// server default. Excluded from the cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DivergenceSpec is the wire form of core.Divergence (kinds as their flag
// spellings, times in µs — the ConfigSpec conventions).
type DivergenceSpec struct {
	SeedSet       bool   `json:"seed_set,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	QuantumUS     int64  `json:"quantum_us,omitempty"`
	QuantumPolicy string `json:"quantum_policy,omitempty"`
	QueueOrder    string `json:"queue_order,omitempty"`
}

// ToDivergence validates the spec into the core type.
func (d DivergenceSpec) ToDivergence() (core.Divergence, error) {
	div := core.Divergence{
		SeedSet:      d.SeedSet,
		Seed:         d.Seed,
		BasicQuantum: sim.Time(d.QuantumUS),
	}
	var err error
	if d.QuantumPolicy != "" {
		if div.QuantumPolicy, err = sched.ParseQuantumKind(d.QuantumPolicy); err != nil {
			return div, err
		}
	}
	if d.QueueOrder != "" {
		if div.QueueOrder, err = sched.ParseOrderKind(d.QueueOrder); err != nil {
			return div, err
		}
	}
	return div, nil
}

// DivergenceSpecFrom converts a core.Divergence to its wire form — the
// inverse of ToDivergence. Divergences derived by core.DivergenceBetween
// carry only resolved kinds, all of which have canonical spellings.
func DivergenceSpecFrom(div core.Divergence) DivergenceSpec {
	spec := DivergenceSpec{
		SeedSet:   div.SeedSet,
		Seed:      div.Seed,
		QuantumUS: int64(div.BasicQuantum),
	}
	if div.QuantumPolicy != sched.QuantumDefault {
		spec.QuantumPolicy = div.QuantumPolicy.String()
	}
	if div.QueueOrder != sched.OrderDefault {
		spec.QueueOrder = div.QueueOrder.String()
	}
	return spec
}

// parseForkRequest decodes and validates a fork request body.
func parseForkRequest(r io.Reader) (*ForkRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ForkRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after JSON body")
	}
	if len(req.Snapshot) == 0 {
		return nil, fmt.Errorf("fork request without a snapshot")
	}
	return &req, nil
}

// ParseForkRequestBytes parses a fork request body from bytes. Exported so
// the cluster coordinator's proxy can compute routing keys with exactly
// the validation the worker will apply.
func ParseForkRequestBytes(b []byte) (*ForkRequest, error) {
	return parseForkRequest(bytes.NewReader(b))
}

// EncodeForkRequest renders a fork request body deterministically
// (encoding/json keeps struct field order), so equal requests produce
// equal bytes and equal routing keys on any client.
func EncodeForkRequest(req ForkRequest) ([]byte, error) {
	return json.Marshal(req)
}

// ForkKey is the content address of a fork response: it binds the base
// config hash, the snapshot bytes (hashed — snapshots run to kilobytes)
// and the divergence spec, under the fork namespace. Exported so the
// cluster coordinator can compute the same key it routes on.
func ForkKey(cfgHash string, snapshot []byte, div DivergenceSpec) string {
	snapSum := sha256.Sum256(snapshot)
	divJSON, err := json.Marshal(div)
	if err != nil {
		// DivergenceSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: encode divergence spec: %v", err))
	}
	h := sha256.New()
	io.WriteString(h, "repro-fork-v1;config=")
	io.WriteString(h, cfgHash)
	io.WriteString(h, ";snapshot=")
	io.WriteString(h, hex.EncodeToString(snapSum[:]))
	io.WriteString(h, ";div=")
	h.Write(divJSON)
	return hex.EncodeToString(h.Sum(nil))
}
