// Package serve turns the simulator into a long-running service: an HTTP
// API that accepts experiment requests as JSON, executes them on the
// internal/engine worker pool, and answers repeated queries from a
// content-addressed result cache instead of re-simulating.
//
// Three properties make it production-shaped rather than a CGI wrapper:
//
//   - Content-addressed results. Simulations are deterministic, so the
//     canonical hash of (config, experiment, format) — core.Config.Hash
//     plus the request envelope — names the response bytes forever. A
//     repeated POST /v1/run is a cache hit returning the byte-identical
//     body, marked X-Cache: hit.
//
//   - Bounded admission. At most MaxInflight simulations run at once and
//     at most QueueDepth requests wait; everyone else gets 429 +
//     Retry-After immediately, with the hint derived from the observed
//     queue drain rate. Each admitted request carries a deadline, and a
//     client that disconnects cancels its engine work via context
//     propagation into ExecuteAllCtx.
//
//   - Observability. /metrics exposes Prometheus-format counters, gauges
//     and a request-latency histogram (requests, cache hits/misses, queue
//     depth, in-flight, simulated-seconds vs wall-seconds), /healthz
//     reports liveness and drain state, and every request emits one
//     structured log line.
//
// As a cluster worker (cmd/schedd -worker), the server additionally exposes
// POST /v1/point — the lossless single-run wire format the coordinator
// shards sweeps over (see point.go and internal/cluster) — and POST
// /v1/fork, the warm-resume form: a serialized core.Snapshot plus a
// divergence, so shared-prefix sweep points resume from the donor's state
// instead of cold-starting (see fork.go).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Options tunes a Server. Zero values take the listed defaults.
type Options struct {
	// Workers is the engine worker-pool size per request (0 = all CPUs).
	// Total simulation parallelism is bounded by Workers × MaxInflight.
	Workers int
	// MaxInflight bounds concurrently executing requests (default 2).
	MaxInflight int
	// QueueDepth bounds requests waiting for an execution slot; beyond it
	// requests are shed with 429 (default 8).
	QueueDepth int
	// CacheEntries / CacheBytes bound the result cache (defaults 1024
	// entries, 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// DefaultTimeout bounds a request's total processing time, queueing
	// included, when the request does not set its own (default 60s).
	// MaxTimeout caps client-requested timeouts (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// StoreDir, when non-empty, enables the tier-2 disk-backed result
	// store behind the in-memory cache (see store.go): results are
	// written behind the response path, the cache is warmed from the
	// store at startup, and a restarted worker serves hits for everything
	// it had computed before dying. StoreBytes bounds the resident store
	// size (default 256 MiB); the oldest results are collected past it.
	StoreDir   string
	StoreBytes int64
	// Logger receives one structured line per request; nil uses
	// slog.Default().
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.StoreBytes <= 0 {
		o.StoreBytes = 256 << 20
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Server is the simulation service. Create with New (memory-only cache)
// or Open (with the tier-2 disk store), mount via Handler.
type Server struct {
	opts     Options
	cache    *resultCache
	store    *diskStore // nil without Options.StoreDir
	adm      *admission
	metrics  serverMetrics
	log      *slog.Logger
	draining atomic.Bool

	flushMu     sync.Mutex
	flushq      chan flushItem
	flushClosed bool
	flushDone   chan struct{}
}

// flushItem is one write-behind unit; a fence item (fence non-nil) marks a
// FlushStore barrier instead of carrying a result.
type flushItem struct {
	key         string
	contentType string
	body        []byte
	fence       chan struct{}
}

// New builds a Server with the given options. Options.StoreDir is ignored
// here — use Open for a server with the tier-2 store.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		opts:  opts,
		cache: newResultCache(opts.CacheEntries, opts.CacheBytes),
		adm:   newAdmission(opts.MaxInflight, opts.QueueDepth),
		log:   opts.Logger,
	}
}

// Open builds a Server and, when Options.StoreDir is set, attaches the
// tier-2 disk store: resident results warm the memory cache immediately
// (cache warming on worker join), and new results are flushed behind the
// response path by a write-behind goroutine. Call Close to stop it.
func Open(opts Options) (*Server, error) {
	s := New(opts)
	if s.opts.StoreDir == "" {
		return s, nil
	}
	st, err := openDiskStore(s.opts.StoreDir, s.opts.StoreBytes)
	if err != nil {
		return nil, err
	}
	s.store = st
	warmed := st.warm(s.cache)
	s.metrics.storeWarmed.Store(int64(warmed))
	if warmed > 0 {
		s.log.Info("store", slog.String("dir", s.opts.StoreDir), slog.Int("warmed", warmed))
	}
	s.flushq = make(chan flushItem, 256)
	s.flushDone = make(chan struct{})
	go s.flushLoop()
	return s, nil
}

// flushLoop is the write-behind flusher: it drains queued results into the
// disk store off the response path, and acknowledges FlushStore fences.
func (s *Server) flushLoop() {
	defer close(s.flushDone)
	for item := range s.flushq {
		if item.fence != nil {
			close(item.fence)
			continue
		}
		s.storeWrite(item.key, item.body, item.contentType)
	}
}

// storeWrite persists one result and counts the flush. Store errors are
// logged, not propagated: tier-2 is an accelerator, and a worker that can
// still simulate should keep serving even with a broken disk.
func (s *Server) storeWrite(key string, body []byte, contentType string) {
	if err := s.store.put(key, body, contentType); err != nil {
		s.log.Warn("store", slog.String("key", key[:16]), slog.String("err", err.Error()))
		return
	}
	s.metrics.storeFlush.Add(1)
}

// flushAsync queues one result for write-behind persistence. A full queue
// degrades to a synchronous write rather than dropping the entry — a
// result that reached the memory cache must also reach the store, or a
// restart silently forgets it.
func (s *Server) flushAsync(key string, body []byte, contentType string) {
	if s.store == nil {
		return
	}
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if s.flushClosed {
		s.storeWrite(key, body, contentType)
		return
	}
	select {
	case s.flushq <- flushItem{key: key, body: body, contentType: contentType}:
	default:
		s.storeWrite(key, body, contentType)
	}
}

// FlushStore blocks until every result queued before the call has been
// written to the tier-2 store. The binary calls it during SIGTERM drain,
// after Shutdown returns: dirty cache entries survive the restart.
func (s *Server) FlushStore() {
	if s.store == nil {
		return
	}
	s.flushMu.Lock()
	if s.flushClosed {
		s.flushMu.Unlock()
		return
	}
	fence := make(chan struct{})
	s.flushq <- flushItem{fence: fence}
	s.flushMu.Unlock()
	<-fence
}

// Close flushes and stops the write-behind goroutine. Safe to call more
// than once; a no-op for servers without a store.
func (s *Server) Close() {
	if s.store == nil {
		return
	}
	s.flushMu.Lock()
	if s.flushClosed {
		s.flushMu.Unlock()
		return
	}
	s.flushClosed = true
	close(s.flushq)
	s.flushMu.Unlock()
	<-s.flushDone
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/point", s.handlePoint)
	mux.HandleFunc("/v1/fork", s.handleFork)
	mux.HandleFunc("/v1/experiments", s.handleExperiments)
	mux.HandleFunc("/v1/policies", s.handlePolicies)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// SetDraining flips the drain flag reported by /healthz and /metrics; the
// binary sets it on SIGTERM before http.Server.Shutdown so load balancers
// stop routing while in-flight requests finish. Starting a drain also sheds
// every queued request deterministically (503): shutdown time is bounded by
// the in-flight set, never the queue.
func (s *Server) SetDraining(v bool) {
	s.draining.Store(v)
	s.adm.setDraining(v)
}

// httpError is the uniform JSON error body.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", fmt.Sprintf(format, args...))
}

// checkPost guards the two simulation endpoints: POST only, and a draining
// server sheds new arrivals immediately (in-flight requests on kept-alive
// connections would otherwise sneak in behind the closed listener).
func (s *Server) checkPost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "draining")
		return false
	}
	return true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if !s.checkPost(w, r) {
		return
	}
	start := time.Now()
	defer func() { s.metrics.latency.observe(time.Since(start)) }()
	req, err := parseRunRequest(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, entry, format, key, err := req.Resolve()
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	exp := ""
	if entry != nil {
		exp = entry.ID
	}
	s.serveKeyed(w, r, keyedRequest{
		start: start, key: key, experiment: exp, format: format.String(),
		timeoutMS: req.TimeoutMS,
		compute: func(ctx context.Context) ([]byte, string, error) {
			return s.execute(ctx, cfg, entry, format)
		},
	})
}

// handlePoint serves the cluster wire format: one config in, the lossless
// run summary out, cached under the canonical config hash.
func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	if !s.checkPost(w, r) {
		return
	}
	start := time.Now()
	defer func() { s.metrics.latency.observe(time.Since(start)) }()
	req, err := parsePointRequest(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, err := req.Config.ToConfig()
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfgHash, err := cfg.Hash()
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.serveKeyed(w, r, keyedRequest{
		start: start, key: PointKey(cfgHash), format: "point",
		timeoutMS: req.TimeoutMS,
		compute: func(ctx context.Context) ([]byte, string, error) {
			plan := engine.NewPlan[*metrics.Result]("serve/point")
			plan.Add(cfg.Label(), func() (*metrics.Result, error) { return core.Run(cfg) })
			results, err := engine.ExecuteCtx(ctx, plan, engine.Options{Workers: s.opts.Workers, Ctx: ctx})
			if err != nil {
				return nil, "", err
			}
			s.metrics.simMicros.Add(int64(results[0].Makespan))
			return encodePointSummary(PointSummaryFrom(results[0])), pointContentType, nil
		},
	})
}

// handleFork serves the warm-resume wire format: a base config, its
// serialized fork snapshot and one divergence in, the forked run's lossless
// summary out — byte-identical to what /v1/point would return for the same
// continuation, cached under the (config, snapshot, divergence) address.
// The snapshot body is larger than a config, so the size cap is 8 MiB.
func (s *Server) handleFork(w http.ResponseWriter, r *http.Request) {
	if !s.checkPost(w, r) {
		return
	}
	start := time.Now()
	defer func() { s.metrics.latency.observe(time.Since(start)) }()
	req, err := parseForkRequest(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, err := req.Config.ToConfig()
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfgHash, err := cfg.Hash()
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, err := core.DecodeSnapshot(req.Snapshot)
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	div, err := req.Divergence.ToDivergence()
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.serveKeyed(w, r, keyedRequest{
		start: start, key: ForkKey(cfgHash, req.Snapshot, req.Divergence), format: "fork",
		timeoutMS: req.TimeoutMS,
		compute: func(ctx context.Context) ([]byte, string, error) {
			plan := engine.NewPlan[*metrics.Result]("serve/fork")
			plan.Add(cfg.Label(), func() (*metrics.Result, error) {
				return core.ResumeFromSnapshot(cfg, snap, div)
			})
			results, err := engine.ExecuteCtx(ctx, plan, engine.Options{Workers: s.opts.Workers, Ctx: ctx})
			if err != nil {
				return nil, "", err
			}
			s.metrics.simMicros.Add(int64(results[0].Makespan - snap.T))
			return encodePointSummary(PointSummaryFrom(results[0])), pointContentType, nil
		},
	})
}

// keyedRequest is the shared shape of the two simulation endpoints: a
// content address, a compute function for misses, and log fields.
type keyedRequest struct {
	start      time.Time
	key        string
	experiment string
	format     string
	timeoutMS  int64
	compute    func(ctx context.Context) ([]byte, string, error)
}

// serveKeyed answers from the cache or admits, computes and stores — the
// whole miss path shared by /v1/run and /v1/point.
func (s *Server) serveKeyed(w http.ResponseWriter, r *http.Request, kr keyedRequest) {
	s.metrics.requests.Add(1)
	logAttrs := func(status int, cache string) []any {
		return []any{
			slog.String("method", r.Method), slog.String("path", r.URL.Path),
			slog.Int("status", status), slog.String("cache", cache),
			slog.String("key", kr.key[:16]), slog.String("experiment", kr.experiment),
			slog.String("format", kr.format),
			slog.Int64("dur_ms", time.Since(kr.start).Milliseconds()),
		}
	}

	if e, ok := s.cache.get(kr.key); ok {
		s.metrics.cacheHits.Add(1)
		s.writeResult(w, kr.key, "hit", e.contentType, e.body)
		s.log.Info("run", logAttrs(http.StatusOK, "hit")...)
		return
	}
	// Tier-2 read-through: a result evicted from (or never resident in)
	// the memory cache but persisted on disk is still a hit — promote it
	// back into the LRU and serve it without simulating.
	if s.store != nil {
		if body, contentType, ok := s.store.get(kr.key); ok {
			s.metrics.cacheHits.Add(1)
			s.metrics.storeHits.Add(1)
			s.cache.put(kr.key, body, contentType)
			s.writeResult(w, kr.key, "hit", contentType, body)
			s.log.Info("run", logAttrs(http.StatusOK, "hit")...)
			return
		}
	}
	s.metrics.cacheMisses.Add(1)

	timeout := s.opts.DefaultTimeout
	if kr.timeoutMS > 0 {
		timeout = time.Duration(kr.timeoutMS) * time.Millisecond
		if timeout > s.opts.MaxTimeout {
			timeout = s.opts.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	release, err := s.adm.acquire(ctx)
	if err != nil {
		status := s.admissionFailure(w, err)
		s.log.Warn("run", logAttrs(status, "miss")...)
		return
	}
	simStart := time.Now()
	body, contentType, err := kr.compute(ctx)
	release()
	s.metrics.simWallNanos.Add(time.Since(simStart).Nanoseconds())
	if err != nil {
		status := s.executeFailure(w, ctx, err)
		s.log.Warn("run", append(logAttrs(status, "miss"), slog.String("err", err.Error()))...)
		return
	}
	s.cache.put(kr.key, body, contentType)
	s.flushAsync(kr.key, body, contentType)
	s.writeResult(w, kr.key, "miss", contentType, body)
	s.log.Info("run", logAttrs(http.StatusOK, "miss")...)
}

// admissionFailure maps an acquire error onto a response and returns the
// status used.
func (s *Server) admissionFailure(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, errQueueFull):
		s.metrics.rejected.Add(1)
		// The hint tracks reality: queue length over observed drain rate,
		// not a hardcoded constant. The cluster coordinator reads it to
		// pace its backoff before rehashing the point elsewhere.
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, "admission queue full, retry later")
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		s.metrics.shedOnDrain.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "draining, queued request shed")
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.cancelled.Add(1)
		httpError(w, http.StatusGatewayTimeout, "deadline expired while queued")
		return http.StatusGatewayTimeout
	default: // client went away while queued
		s.metrics.cancelled.Add(1)
		httpError(w, statusClientClosedRequest, "client closed request")
		return statusClientClosedRequest
	}
}

// executeFailure maps a simulation error onto a response. Configuration
// problems — the request was wrong, not the system — answer 400 with a
// field-addressed body so clients can point at the offending knob; only
// genuine execution failures answer 500.
func (s *Server) executeFailure(w http.ResponseWriter, ctx context.Context, err error) int {
	var ce *core.ConfigError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.cancelled.Add(1)
		httpError(w, http.StatusGatewayTimeout, "deadline expired mid-run")
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		s.metrics.cancelled.Add(1)
		httpError(w, statusClientClosedRequest, "client closed request")
		return statusClientClosedRequest
	case errors.As(err, &ce):
		s.metrics.badRequests.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintf(w, "{\"error\":%q,\"field\":%q}\n", ce.Error(), ce.Field)
		return http.StatusBadRequest
	default:
		s.metrics.failed.Add(1)
		httpError(w, http.StatusInternalServerError, "simulation failed: %v", err)
		return http.StatusInternalServerError
	}
}

// statusClientClosedRequest is nginx's 499: the client abandoned the
// request, nobody will read the response, but logs and metrics want a
// distinct code.
const statusClientClosedRequest = 499

// execute runs the request on the engine. Named experiments execute their
// plan with the request context in engine.Options; single runs wrap
// core.Run in a one-point plan so cancellation and panic isolation apply
// uniformly.
func (s *Server) execute(ctx context.Context, cfg core.Config, entry *experiments.CatalogEntry, format experiments.Format) (body []byte, contentType string, err error) {
	opts := engine.Options{Workers: s.opts.Workers, Ctx: ctx}
	if entry != nil {
		out, err := entry.Run(cfg, format, opts)
		if err != nil {
			return nil, "", err
		}
		return []byte(out), format.ContentType(), nil
	}
	plan := engine.NewPlan[*metrics.Result]("serve/run")
	plan.Add(cfg.Label(), func() (*metrics.Result, error) { return core.Run(cfg) })
	results, err := engine.ExecuteCtx(ctx, plan, opts)
	if err != nil {
		return nil, "", err
	}
	res := results[0]
	s.metrics.simMicros.Add(int64(res.Makespan))
	switch format {
	case experiments.CSV:
		return []byte(experiments.SummaryCSV(res)), format.ContentType(), nil
	case experiments.Table:
		return []byte(experiments.SummaryTable(res)), format.ContentType(), nil
	default:
		return []byte(experiments.SummaryJSON(res)), format.ContentType(), nil
	}
}

// writeResult sends a (possibly cached) response body. Cache state rides in
// headers so hit and miss bodies stay byte-identical.
func (s *Server) writeResult(w http.ResponseWriter, key, cache, contentType string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("X-Cache", cache)
	h.Set("X-Key", key)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var items []item
	for _, e := range experiments.Catalog() {
		items = append(items, item{e.ID, e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(items)
}

// handlePolicies lists the scheduling-policy vocabulary: the built-in
// composite disciplines and the three component tables a ConfigSpec can
// compose freely (partition_policy, quantum_policy, queue_order).
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type catalog struct {
		Policies   []sched.PolicyInfo `json:"policies"`
		Partitions []sched.PolicyInfo `json:"partition_policies"`
		Quanta     []sched.PolicyInfo `json:"quantum_policies"`
		Orders     []sched.PolicyInfo `json:"queue_orders"`
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(catalog{
		Policies:   sched.Policies(),
		Partitions: sched.PartitionPolicies(),
		Quanta:     sched.QuantumPolicies(),
		Orders:     sched.QueueOrders(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.render(&b, s.adm, s.cache, s.store, s.draining.Load())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
