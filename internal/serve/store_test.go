package serve

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestScheddStoreSurvivesRestart is the tier-2 headline: results computed
// in one server lifetime are warm cache hits in the next — the restarted
// worker serves byte-identical bodies without simulating.
func TestScheddStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	first := openTestServer(t, Options{StoreDir: dir})
	h := first.Handler()
	miss := postRun(t, h, smallRun)
	if miss.Code != http.StatusOK || miss.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first POST: status %d cache %q", miss.Code, miss.Header().Get("X-Cache"))
	}
	// The drain sequence the binary runs on SIGTERM: flush, then stop.
	first.FlushStore()
	first.Close()
	if entries, _ := first.store.stats(); entries != 1 {
		t.Fatalf("store entries after flush = %d, want 1", entries)
	}

	// "Restart": a fresh server over the same directory. The warm-on-open
	// path must make the very first request a memory-cache hit.
	second := openTestServer(t, Options{StoreDir: dir})
	hit := postRun(t, second.Handler(), smallRun)
	if hit.Code != http.StatusOK {
		t.Fatalf("post-restart POST: status %d", hit.Code)
	}
	if got := hit.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("post-restart X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(hit.Body.Bytes(), miss.Body.Bytes()) {
		t.Errorf("post-restart body differs:\n got: %s\nwant: %s", hit.Body, miss.Body)
	}
	if warmed := second.metrics.storeWarmed.Load(); warmed != 1 {
		t.Errorf("storeWarmed = %d, want 1", warmed)
	}
}

// TestScheddStoreReadThrough: a result on disk but not in memory is still
// a hit — promoted into the LRU, not recomputed.
func TestScheddStoreReadThrough(t *testing.T) {
	dir := t.TempDir()
	s := openTestServer(t, Options{StoreDir: dir})
	h := s.Handler()
	first := postRun(t, h, smallRun)
	if first.Code != http.StatusOK {
		t.Fatal(first.Body)
	}
	s.FlushStore()
	// Evict from memory by replacing the cache wholesale — simulating LRU
	// pressure without needing to size a second giant entry.
	s.cache = newResultCache(s.opts.CacheEntries, s.opts.CacheBytes)

	second := postRun(t, h, smallRun)
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("read-through X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(second.Body.Bytes(), first.Body.Bytes()) {
		t.Error("read-through body differs")
	}
	if s.metrics.storeHits.Load() != 1 {
		t.Errorf("storeHits = %d, want 1", s.metrics.storeHits.Load())
	}
	// Promoted: the third request is a pure memory hit, no new store read.
	postRun(t, h, smallRun)
	if s.metrics.storeHits.Load() != 1 {
		t.Errorf("promotion did not stick: storeHits = %d", s.metrics.storeHits.Load())
	}
}

// TestScheddStoreCorruptionQuarantined: a flipped bit in a stored body is
// detected by the CRC, served as a miss, and the bad file deleted.
func TestScheddStoreCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, err := openDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if err := st.put(key, []byte("precious result bytes"), "application/json"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+storeExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.get(key); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt file not deleted")
	}
	if entries, _ := st.stats(); entries != 0 {
		t.Errorf("stats still count the corrupt entry: %d", entries)
	}
}

// TestScheddStoreGCOldestFirst: past the byte bound the oldest entries go
// first, newest survive, and accounting matches the directory.
func TestScheddStoreGCOldestFirst(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("x"), 100)
	// Header ~90 bytes + 100 body; bound fits roughly 4 entries.
	st, err := openDiskStore(dir, 800)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("%064d", i)
		keys = append(keys, key)
		if err := st.put(key, body, "t"); err != nil {
			t.Fatal(err)
		}
		// mtime granularity on some filesystems is coarse; force ordering.
		past := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(filepath.Join(dir, key+storeExt), past, past)
		st.mu.Lock()
		info := st.files[key+storeExt]
		info.mtime = past
		st.files[key+storeExt] = info
		st.mu.Unlock()
	}
	_, bytesResident := st.stats()
	if bytesResident > 800 {
		t.Errorf("resident bytes %d exceed bound", bytesResident)
	}
	if _, _, ok := st.get(keys[0]); ok {
		t.Error("oldest entry survived GC")
	}
	if _, _, ok := st.get(keys[len(keys)-1]); !ok {
		t.Error("newest entry evicted")
	}
	// An entry bigger than the whole store is served but never kept.
	if err := st.put(strings.Repeat("cd", 32), bytes.Repeat([]byte("y"), 2000), "t"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.get(strings.Repeat("cd", 32)); ok {
		t.Error("oversized entry stored")
	}
}

// TestScheddStoreCrashLeftovers: temp files from a crash mid-put are swept
// on open and never surface as results; unsafe keys are refused.
func TestScheddStoreCrashLeftovers(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "put-12345"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := openDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if entries, b := st.stats(); entries != 0 || b != 0 {
		t.Errorf("leftover temp counted: %d entries %d bytes", entries, b)
	}
	if _, err := os.Stat(filepath.Join(dir, "put-12345")); !os.IsNotExist(err) {
		t.Error("leftover temp file not swept")
	}
	if err := st.put("../escape", []byte("x"), "t"); err == nil {
		t.Error("non-hash key accepted")
	}
}

// TestScheddStoreMetricsExposed: the store surface shows up in /metrics —
// flush and byte gauges included, which the drain walkthrough reads.
func TestScheddStoreMetricsExposed(t *testing.T) {
	s := openTestServer(t, Options{StoreDir: t.TempDir()})
	h := s.Handler()
	postRun(t, h, smallRun)
	s.FlushStore()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"schedd_store_flush_total 1",
		"schedd_store_entries 1",
		"schedd_store_hits_total 0",
		"schedd_store_warmed_total 0",
		"schedd_store_bytes ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A store-less server must not advertise store metrics at all.
	plain := testServer(t, Options{})
	rr = httptest.NewRecorder()
	plain.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rr.Body.String(), "schedd_store_") {
		t.Error("store metrics exposed without a store")
	}
}
