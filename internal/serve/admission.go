package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// errQueueFull is returned when the admission queue is at capacity; the
// handler maps it to 429 + Retry-After. Bounding the queue is what keeps
// the server stable under overload: beyond MaxInflight running simulations
// and QueueDepth waiters, requests are shed immediately instead of piling
// onto an unbounded queue until memory or every client's patience runs out.
var errQueueFull = errors.New("serve: admission queue full")

// errDraining is returned to queued waiters when the server starts
// draining: in-flight simulations finish, but work that has not started is
// shed deterministically (503) so shutdown is bounded by the in-flight set,
// not the whole queue. The cluster coordinator treats the 503 as "worker
// leaving" and rehashes the point to another worker.
var errDraining = errors.New("serve: draining, queued request shed")

// completionWindow bounds how many recent completions feed the drain-rate
// estimate behind Retry-After.
const completionWindow = 32

// admission is the two-stage gate in front of the engine: at most inflight
// simulations run concurrently, at most depth requests wait for a slot, and
// everyone else is rejected on arrival.
type admission struct {
	slots   chan struct{} // capacity = max inflight
	depth   int64         // max waiters
	waiting atomic.Int64
	running atomic.Int64

	// drainCh is closed to shed every queued waiter at once; guarded by
	// drainMu so SetDraining(false) can re-arm with a fresh channel.
	drainMu sync.Mutex
	drainCh chan struct{}

	// completions is a ring of recent release times; together with its
	// count it yields the observed drain rate that sizes Retry-After.
	compMu      sync.Mutex
	completions [completionWindow]time.Time
	compCount   int64
	now         func() time.Time // test hook
}

func newAdmission(inflight, depth int) *admission {
	if inflight < 1 {
		inflight = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &admission{
		slots:   make(chan struct{}, inflight),
		depth:   int64(depth),
		drainCh: make(chan struct{}),
		now:     time.Now,
	}
}

// acquire admits the caller or fails fast: errQueueFull when depth waiters
// are already queued, errDraining when the server starts draining while the
// caller waits, or the context error if the caller's deadline expires or it
// disconnects while waiting. On success the caller owns a slot and must
// call release exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	// waiting counts callers inside acquire; running counts admitted slot
	// holders. Together they bound total occupancy at inflight+depth, so
	// once every slot is held and depth callers wait, the next arrival
	// sheds. (The two loads are not one atomic — a release racing an
	// arrival can let the queue run one short or one over for an instant,
	// which backpressure semantics tolerate.)
	if a.waiting.Add(1)+a.running.Load() > a.depth+int64(cap(a.slots)) {
		a.waiting.Add(-1)
		return nil, errQueueFull
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.running.Add(1)
		return func() {
			a.recordCompletion()
			a.running.Add(-1)
			<-a.slots
		}, nil
	case <-a.draining():
		return nil, errDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// draining returns the channel closed when a drain begins.
func (a *admission) draining() <-chan struct{} {
	a.drainMu.Lock()
	defer a.drainMu.Unlock()
	return a.drainCh
}

// setDraining starts (true) or re-arms after (false) a drain. Starting a
// drain wakes every queued waiter with errDraining; requests already
// holding slots are unaffected.
func (a *admission) setDraining(v bool) {
	a.drainMu.Lock()
	defer a.drainMu.Unlock()
	if v {
		select {
		case <-a.drainCh: // already draining
		default:
			close(a.drainCh)
		}
		return
	}
	select {
	case <-a.drainCh:
		a.drainCh = make(chan struct{})
	default: // not draining; nothing to re-arm
	}
}

// recordCompletion stamps one finished simulation into the rate ring.
func (a *admission) recordCompletion() {
	a.compMu.Lock()
	a.completions[a.compCount%completionWindow] = a.now()
	a.compCount++
	a.compMu.Unlock()
}

// retryAfterSeconds derives the Retry-After hint for a shed request from
// the observed queue drain rate: with q requests ahead of the caller and
// completions finishing at r per second, the queue frees a spot in about
// (q+1)/r seconds. Before any completions have been observed the historical
// default of 1s applies; the result is clamped to [1, 30] so a stalled
// server never tells clients to go away for minutes.
func (a *admission) retryAfterSeconds() int {
	const maxRetryAfter = 30
	a.compMu.Lock()
	n := a.compCount
	if n > completionWindow {
		n = completionWindow
	}
	var oldest, newest time.Time
	if n > 0 {
		newest = a.completions[(a.compCount-1)%completionWindow]
		oldest = a.completions[(a.compCount-n)%completionWindow]
	}
	a.compMu.Unlock()
	if n < 2 {
		return 1
	}
	span := newest.Sub(oldest)
	if span <= 0 {
		return 1
	}
	rate := float64(n-1) / span.Seconds() // completions per second
	queued := float64(a.queued() + 1)
	secs := int(math.Ceil(queued / rate))
	if secs < 1 {
		return 1
	}
	if secs > maxRetryAfter {
		return maxRetryAfter
	}
	return secs
}

// queued reports requests waiting for a slot.
func (a *admission) queued() int64 {
	q := a.waiting.Load()
	if q < 0 {
		q = 0
	}
	return q
}

// inflight reports admitted requests currently simulating.
func (a *admission) inflight() int64 { return a.running.Load() }
