package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull is returned when the admission queue is at capacity; the
// handler maps it to 429 + Retry-After. Bounding the queue is what keeps
// the server stable under overload: beyond MaxInflight running simulations
// and QueueDepth waiters, requests are shed immediately instead of piling
// onto an unbounded queue until memory or every client's patience runs out.
var errQueueFull = errors.New("serve: admission queue full")

// admission is the two-stage gate in front of the engine: at most inflight
// simulations run concurrently, at most depth requests wait for a slot, and
// everyone else is rejected on arrival.
type admission struct {
	slots   chan struct{} // capacity = max inflight
	depth   int64         // max waiters
	waiting atomic.Int64
	running atomic.Int64
}

func newAdmission(inflight, depth int) *admission {
	if inflight < 1 {
		inflight = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &admission{slots: make(chan struct{}, inflight), depth: int64(depth)}
}

// acquire admits the caller or fails fast: errQueueFull when depth waiters
// are already queued, or the context error if the caller's deadline expires
// or it disconnects while waiting. On success the caller owns a slot and
// must call release exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	// waiting counts callers inside acquire; running counts admitted slot
	// holders. Together they bound total occupancy at inflight+depth, so
	// once every slot is held and depth callers wait, the next arrival
	// sheds. (The two loads are not one atomic — a release racing an
	// arrival can let the queue run one short or one over for an instant,
	// which backpressure semantics tolerate.)
	if a.waiting.Add(1)+a.running.Load() > a.depth+int64(cap(a.slots)) {
		a.waiting.Add(-1)
		return nil, errQueueFull
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.running.Add(1)
		return func() {
			a.running.Add(-1)
			<-a.slots
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// queued reports requests waiting for a slot.
func (a *admission) queued() int64 {
	q := a.waiting.Load()
	if q < 0 {
		q = 0
	}
	return q
}

// inflight reports admitted requests currently simulating.
func (a *admission) inflight() int64 { return a.running.Load() }
