package serve

import (
	"context"
	"sync"
	"testing"
)

func TestScheddCacheLRUEntryBound(t *testing.T) {
	c := newResultCache(2, 1<<20)
	c.put("a", []byte("aaa"), "t")
	c.put("b", []byte("bbb"), "t")
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("ccc"), "t")
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a (recently used) was evicted")
	}
	if entries, bytes, _ := c.stats(); entries != 2 || bytes != 6 {
		t.Errorf("stats = (%d, %d), want (2, 6)", entries, bytes)
	}
}

func TestScheddCacheByteBound(t *testing.T) {
	c := newResultCache(100, 10)
	c.put("a", []byte("12345"), "t")
	c.put("b", []byte("67890"), "t")
	c.put("c", []byte("xyz"), "t") // 13 bytes resident -> evict LRU (a)
	if _, ok := c.get("a"); ok {
		t.Error("a survived the byte bound")
	}
	if _, bytes, _ := c.stats(); bytes > 10 {
		t.Errorf("resident bytes %d exceed bound 10", bytes)
	}
	// An oversized body is never stored but breaks nothing.
	c.put("huge", make([]byte, 64), "t")
	if _, ok := c.get("huge"); ok {
		t.Error("oversized body was stored")
	}
}

func TestScheddCacheReplaceSameKey(t *testing.T) {
	c := newResultCache(4, 1<<20)
	c.put("k", []byte("one"), "t")
	c.put("k", []byte("one"), "t") // concurrent-miss double store
	if entries, bytes, _ := c.stats(); entries != 1 || bytes != 3 {
		t.Errorf("stats = (%d, %d), want (1, 3)", entries, bytes)
	}
}

// TestScheddAdmissionConcurrency hammers the gate under -race: occupancy
// never exceeds inflight, and every admitted caller releases.
func TestScheddAdmissionConcurrency(t *testing.T) {
	const inflight, depth, callers = 3, 5, 64
	a := newAdmission(inflight, depth)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var maxRunning int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.acquire(context.Background())
			if err != nil {
				return // shed: fine under this load
			}
			mu.Lock()
			if r := a.inflight(); r > maxRunning {
				maxRunning = r
			}
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if maxRunning > inflight {
		t.Errorf("observed %d in flight, bound is %d", maxRunning, inflight)
	}
	if a.inflight() != 0 || a.queued() != 0 {
		t.Errorf("gate not drained: inflight=%d queued=%d", a.inflight(), a.queued())
	}
}

func TestScheddAdmissionShedsBeyondDepth(t *testing.T) {
	a := newAdmission(1, 2)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue with two waiters.
	type res struct {
		rel func()
		err error
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := a.acquire(context.Background())
			results <- res{r, err}
		}()
	}
	waitFor(t, func() bool { return a.queued() >= 2 }, "waiters never queued")
	if _, err := a.acquire(context.Background()); err == nil {
		t.Fatal("third acquire admitted past the queue bound")
	} else if err != errQueueFull {
		t.Fatalf("err = %v, want errQueueFull", err)
	}
	rel()
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("queued waiter %d failed: %v", i, r.err)
		}
		r.rel()
	}
}
