package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// serverMetrics is the observability surface behind /metrics, rendered in
// Prometheus text exposition format. Counters are plain atomics — the whole
// point of the simulator being deterministic is that the interesting
// numbers live in responses; these count the serving machinery itself.
type serverMetrics struct {
	requests     atomic.Int64 // POST /v1/run + /v1/point requests accepted for processing
	badRequests  atomic.Int64 // malformed / unparseable requests
	rejected     atomic.Int64 // shed with 429 (queue full)
	shedOnDrain  atomic.Int64 // queued requests shed with 503 when a drain began
	cancelled    atomic.Int64 // abandoned: client gone or deadline exceeded
	failed       atomic.Int64 // simulation errors (500)
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	storeHits    atomic.Int64 // tier-2 read-through hits (promoted into memory)
	storeFlush   atomic.Int64 // results flushed to the tier-2 store
	storeWarmed  atomic.Int64 // entries warmed from the store at startup
	simMicros    atomic.Int64 // simulated time produced, µs (single runs)
	simWallNanos atomic.Int64 // wall time spent inside the engine, ns
	latency      latencyHistogram
}

// latencyBounds are the request-duration histogram bucket upper bounds in
// seconds: sub-millisecond cache hits through ten-second experiment sweeps,
// roughly ×2.5 apart. The +Inf bucket is implicit (the count).
var latencyBounds = [...]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// latencyHistogram is a fixed-bucket Prometheus histogram over request
// durations, lock-free: one atomic per bucket plus sum and count. It covers
// every terminal outcome of the two simulation endpoints — hits, misses,
// sheds and failures alike — because a client backing off cares about how
// long the answer took, whatever the answer was.
type latencyHistogram struct {
	buckets [len(latencyBounds)]atomic.Int64 // non-cumulative; summed at render
	count   atomic.Int64
	sumNS   atomic.Int64
}

// observe records one request duration.
func (h *latencyHistogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range latencyBounds {
		if s <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// render writes the histogram in exposition format (cumulative buckets).
func (h *latencyHistogram) render(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, ub := range latencyBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(ub, 'g', -1, 64), cum)
	}
	count := h.count.Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	fmt.Fprintf(b, "%s_sum %.9f\n", name, float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(b, "%s_count %d\n", name, count)
}

// render writes the exposition text. Gauges (queue depth, in-flight, cache
// occupancy) are sampled at scrape time from their owning structures.
func (m *serverMetrics) render(b *strings.Builder, adm *admission, cache *resultCache, store *diskStore, draining bool) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("schedd_requests_total", "Run requests accepted for processing.", m.requests.Load())
	counter("schedd_bad_requests_total", "Run requests rejected as malformed.", m.badRequests.Load())
	counter("schedd_rejected_total", "Run requests shed with 429 because the admission queue was full.", m.rejected.Load())
	counter("schedd_drain_shed_total", "Queued run requests shed with 503 when a drain began.", m.shedOnDrain.Load())
	counter("schedd_cancelled_total", "Run requests abandoned by deadline or client disconnect.", m.cancelled.Load())
	counter("schedd_failed_total", "Run requests that failed in the simulator.", m.failed.Load())
	counter("schedd_cache_hits_total", "Run requests answered from the result cache.", m.cacheHits.Load())
	counter("schedd_cache_misses_total", "Run requests that had to simulate.", m.cacheMisses.Load())

	entries, bytes, peak := cache.stats()
	gauge("schedd_cache_entries", "Resident result cache entries.", int64(entries))
	gauge("schedd_cache_bytes", "Resident result cache body bytes.", bytes)
	gauge("schedd_cache_peak_bytes", "High-watermark of resident result cache body bytes.", peak)
	if store != nil {
		counter("schedd_store_hits_total", "Requests answered from the tier-2 disk store.", m.storeHits.Load())
		counter("schedd_store_flush_total", "Results flushed to the tier-2 disk store.", m.storeFlush.Load())
		counter("schedd_store_warmed_total", "Cache entries warmed from the tier-2 store at startup.", m.storeWarmed.Load())
		sEntries, sBytes := store.stats()
		gauge("schedd_store_entries", "Results resident in the tier-2 disk store.", int64(sEntries))
		gauge("schedd_store_bytes", "Bytes resident in the tier-2 disk store.", sBytes)
	}
	gauge("schedd_queue_depth", "Requests waiting for an engine slot.", adm.queued())
	gauge("schedd_inflight", "Requests currently simulating.", adm.inflight())
	gauge("schedd_retry_after_seconds", "Current Retry-After hint derived from the observed queue drain rate.", int64(adm.retryAfterSeconds()))
	var d int64
	if draining {
		d = 1
	}
	gauge("schedd_draining", "1 while the server is draining for shutdown.", d)

	m.latency.render(b, "schedd_request_duration_seconds",
		"Wall-clock duration of simulation requests (hits, misses, sheds and failures).")

	// Simulation throughput: simulated seconds produced per wall second is
	// simply the ratio of these two counters over any scrape interval.
	fmt.Fprintf(b, "# HELP schedd_sim_seconds_total Simulated seconds produced by single-config runs.\n# TYPE schedd_sim_seconds_total counter\nschedd_sim_seconds_total %.6f\n",
		float64(m.simMicros.Load())/1e6)
	fmt.Fprintf(b, "# HELP schedd_sim_wall_seconds_total Wall-clock seconds spent executing simulations.\n# TYPE schedd_sim_wall_seconds_total counter\nschedd_sim_wall_seconds_total %.6f\n",
		float64(m.simWallNanos.Load())/1e9)
}
