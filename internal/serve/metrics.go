package serve

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// serverMetrics is the observability surface behind /metrics, rendered in
// Prometheus text exposition format. Counters are plain atomics — the whole
// point of the simulator being deterministic is that the interesting
// numbers live in responses; these count the serving machinery itself.
type serverMetrics struct {
	requests     atomic.Int64 // POST /v1/run requests accepted for processing
	badRequests  atomic.Int64 // malformed / unparseable requests
	rejected     atomic.Int64 // shed with 429 (queue full)
	cancelled    atomic.Int64 // abandoned: client gone or deadline exceeded
	failed       atomic.Int64 // simulation errors (500)
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	simMicros    atomic.Int64 // simulated time produced, µs (single runs)
	simWallNanos atomic.Int64 // wall time spent inside the engine, ns
}

// render writes the exposition text. Gauges (queue depth, in-flight, cache
// occupancy) are sampled at scrape time from their owning structures.
func (m *serverMetrics) render(b *strings.Builder, adm *admission, cache *resultCache, draining bool) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("schedd_requests_total", "Run requests accepted for processing.", m.requests.Load())
	counter("schedd_bad_requests_total", "Run requests rejected as malformed.", m.badRequests.Load())
	counter("schedd_rejected_total", "Run requests shed with 429 because the admission queue was full.", m.rejected.Load())
	counter("schedd_cancelled_total", "Run requests abandoned by deadline or client disconnect.", m.cancelled.Load())
	counter("schedd_failed_total", "Run requests that failed in the simulator.", m.failed.Load())
	counter("schedd_cache_hits_total", "Run requests answered from the result cache.", m.cacheHits.Load())
	counter("schedd_cache_misses_total", "Run requests that had to simulate.", m.cacheMisses.Load())

	entries, bytes := cache.stats()
	gauge("schedd_cache_entries", "Resident result cache entries.", int64(entries))
	gauge("schedd_cache_bytes", "Resident result cache body bytes.", bytes)
	gauge("schedd_queue_depth", "Requests waiting for an engine slot.", adm.queued())
	gauge("schedd_inflight", "Requests currently simulating.", adm.inflight())
	var d int64
	if draining {
		d = 1
	}
	gauge("schedd_draining", "1 while the server is draining for shutdown.", d)

	// Simulation throughput: simulated seconds produced per wall second is
	// simply the ratio of these two counters over any scrape interval.
	fmt.Fprintf(b, "# HELP schedd_sim_seconds_total Simulated seconds produced by single-config runs.\n# TYPE schedd_sim_seconds_total counter\nschedd_sim_seconds_total %.6f\n",
		float64(m.simMicros.Load())/1e6)
	fmt.Fprintf(b, "# HELP schedd_sim_wall_seconds_total Wall-clock seconds spent executing simulations.\n# TYPE schedd_sim_wall_seconds_total counter\nschedd_sim_wall_seconds_total %.6f\n",
		float64(m.simWallNanos.Load())/1e9)
}
