package serve

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed store behind /v1/run: the canonical
// hash of a request (config hash + experiment id + format, see request.go)
// keys the exact response bytes served for it. Simulations are
// deterministic, so a cached body is not an approximation — it is the
// byte-identical answer, and repeat queries skip the engine entirely.
//
// Eviction is LRU, bounded both by entry count and by total body bytes so
// one giant sweep result cannot squeeze out the working set silently and
// the resident set stays predictable under memory pressure. A body larger
// than the byte bound is served but never stored.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	bytes     int64
	peakBytes int64      // high-watermark of bytes, for capacity planning
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
}

// cacheEntry is one stored response.
type cacheEntry struct {
	key         string
	body        []byte
	contentType string
}

func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// get returns the stored entry and marks it most recently used.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores a response body. Concurrent misses on the same key may both
// put; the bodies are byte-identical by determinism, so last-writer-wins is
// harmless. Bodies larger than the byte bound are not stored.
func (c *resultCache) put(key string, body []byte, contentType string) {
	if c.maxEntries <= 0 || int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Replace in place (refresh recency; body is identical).
		c.bytes += int64(len(body)) - int64(len(el.Value.(*cacheEntry).body))
		el.Value = &cacheEntry{key: key, body: body, contentType: contentType}
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, contentType: contentType})
		c.bytes += int64(len(body))
	}
	if c.bytes > c.peakBytes {
		c.peakBytes = c.bytes
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.body))
	}
}

// stats reports the resident entry count, byte total and byte high-water.
func (c *resultCache) stats() (entries int, bytes, peak int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.peakBytes
}
