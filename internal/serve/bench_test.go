// Serving-tier benchmarks. The bodies live in internal/perfgate/workloads
// (this file is package serve_test because workloads imports serve) so
// `go test -bench` here and the perfgate serve-group cases measure the
// exact same code: cached is the pure serving overhead of a content-cache
// hit, cold the full cost of a never-seen config, load the p95 tail under
// concurrent clients.
package serve_test

import (
	"testing"

	"repro/internal/perfgate/workloads"
)

// BenchmarkScheddRunCached measures POST /v1/run on the hit path: parse,
// canonical hash, LRU get, response write — zero simulation.
func BenchmarkScheddRunCached(b *testing.B) { workloads.ScheddRunCached(workloads.TB(b)) }

// BenchmarkScheddRunCold measures POST /v1/run with a fresh seed per
// request: LRU and tier-2 store miss, engine execution, summary render,
// write-behind store flush.
func BenchmarkScheddRunCold(b *testing.B) { workloads.ScheddRunCold(workloads.TB(b)) }

// BenchmarkScheddServeLoad hammers the server with 8 concurrent clients
// over 16 pre-warmed configs and reports p95_ms and req_per_sec.
func BenchmarkScheddServeLoad(b *testing.B) { workloads.ScheddServeLoad(workloads.TB(b)) }
