package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/topology"
)

func postPoint(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/point", strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestScheddPointLossless is the cluster wire-format contract: the summary
// served over /v1/point carries exactly the values a local run computes, so
// a client formatting rows from it reproduces local output byte for byte.
func TestScheddPointLossless(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()

	const body = `{"config":{"partition":4,"topology":"mesh","policy":"ts"}}`
	rr := postPoint(t, h, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /v1/point: status %d, body %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first point X-Cache = %q, want miss", got)
	}
	got, err := DecodePointSummary(rr.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := ConfigSpec{Partition: 4, Topology: "mesh", Policy: "ts"}.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := PointSummaryFrom(res); got != want {
		t.Errorf("wire summary differs from local run:\n got: %+v\nwant: %+v", got, want)
	}

	// Repeat is a cache hit with identical bytes — the property rendezvous
	// routing exists to exploit.
	again := postPoint(t, h, body)
	if cache := again.Header().Get("X-Cache"); cache != "hit" {
		t.Errorf("repeated point X-Cache = %q, want hit", cache)
	}
	if !bytes.Equal(rr.Body.Bytes(), again.Body.Bytes()) {
		t.Errorf("cache hit body differs")
	}
}

// TestScheddPointConfigRoundTrip: SpecFromConfig inverts ToConfig and
// preserves the canonical hash — the address the cluster routes on.
func TestScheddPointConfigRoundTrip(t *testing.T) {
	spec := ConfigSpec{Partition: 8, Topology: "ring", Policy: "static", App: "sort",
		Arch: "adaptive", QuantumUS: 2000, Seed: 7, Order: "smallest-first"}
	cfg, err := spec.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	back, err := SpecFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := back.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := cfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := cfg2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("round trip changed the canonical hash: %s vs %s", h1, h2)
	}

	// Non-wire-representable configs are rejected before they can be
	// silently mis-executed remotely.
	bad := cfg
	bad.Verify = true
	if _, err := SpecFromConfig(bad); err == nil {
		t.Error("SpecFromConfig accepted a Verify config")
	}
}

// TestScheddPointPolicySpecWire: policy-component overrides round-trip
// through the wire form with their hash intact, and a legacy config emits
// the exact pre-framework JSON bytes — the stability cluster routing keys
// depend on.
func TestScheddPointPolicySpecWire(t *testing.T) {
	spec := ConfigSpec{Topology: "mesh", Policy: "ts",
		PartitionPolicy: "equi", QuantumPolicy: "dynamic", QueueOrder: "srpt"}
	cfg, err := spec.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PartitionPolicy != sched.PartEqui || cfg.QuantumPolicy != sched.QuantumDynamic ||
		cfg.QueueOrder != sched.OrderSRPT {
		t.Fatalf("ToConfig dropped overrides: %+v", cfg)
	}
	back, err := SpecFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back.PartitionPolicy != "equi" || back.QuantumPolicy != "dynamic" || back.QueueOrder != "srpt" {
		t.Errorf("SpecFromConfig overrides = %q/%q/%q", back.PartitionPolicy, back.QuantumPolicy, back.QueueOrder)
	}
	cfg2, err := back.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MustHash() != cfg2.MustHash() {
		t.Errorf("wire round trip changed the canonical hash")
	}

	// A legacy config's encoded point request must not mention the new
	// fields at all: byte-stable wire form, byte-stable routing keys.
	legacy, err := SpecFromConfig(core.Config{Policy: sched.Gang, Topology: topology.Mesh})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodePointRequest(PointRequest{Config: legacy})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"partition_policy", "quantum_policy", "queue_order"} {
		if bytes.Contains(b, []byte(field)) {
			t.Errorf("legacy wire form leaked %s: %s", field, b)
		}
	}
}

// TestScheddDrainShedsQueued: starting a drain sheds every queued waiter
// with errDraining while in-flight work finishes normally — shutdown time
// is bounded by the in-flight set, never the queue.
func TestScheddDrainShedsQueued(t *testing.T) {
	a := newAdmission(1, 4)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	shed := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := a.acquire(context.Background())
			shed <- err
		}()
	}
	waitFor(t, func() bool { return a.queued() >= 2 }, "waiters never queued")

	a.setDraining(true)
	for i := 0; i < 2; i++ {
		select {
		case err := <-shed:
			if !errors.Is(err, errDraining) {
				t.Errorf("queued waiter got %v, want errDraining", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued waiter not shed by drain")
		}
	}
	rel() // in-flight work finishes uninterrupted
	if a.inflight() != 0 {
		t.Errorf("inflight = %d after release", a.inflight())
	}

	// Re-arming ends the drain: new work admits again.
	a.setDraining(false)
	rel2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after drain re-arm: %v", err)
	}
	rel2()
}

// TestScheddRetryAfterDerived: the Retry-After hint tracks the observed
// completion rate and queue depth instead of a hardcoded constant.
func TestScheddRetryAfterDerived(t *testing.T) {
	a := newAdmission(1, 8)

	// No samples yet: the historical default.
	if got := a.retryAfterSeconds(); got != 1 {
		t.Errorf("no samples: Retry-After = %d, want 1", got)
	}

	// Five completions one second apart: rate 1/s.
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }
	for i := 0; i < 5; i++ {
		a.recordCompletion()
		clock = clock.Add(time.Second)
	}
	if got := a.retryAfterSeconds(); got != 1 {
		t.Errorf("empty queue at 1/s: Retry-After = %d, want 1", got)
	}

	// Three queued requests at 1/s: about four seconds until a slot frees.
	a.waiting.Add(3)
	if got := a.retryAfterSeconds(); got != 4 {
		t.Errorf("3 queued at 1/s: Retry-After = %d, want 4", got)
	}
	a.waiting.Add(-3)

	// A glacial drain rate clamps at 30s rather than telling clients to
	// come back tomorrow.
	b := newAdmission(1, 8)
	clock2 := time.Unix(2000, 0)
	b.now = func() time.Time { return clock2 }
	b.recordCompletion()
	clock2 = clock2.Add(2 * time.Minute)
	b.recordCompletion()
	if got := b.retryAfterSeconds(); got != 30 {
		t.Errorf("slow drain: Retry-After = %d, want clamp 30", got)
	}
}

// TestScheddDrainShedsOverHTTP: a draining server sheds queued requests
// with 503 and counts them; the latency histogram sees every outcome.
func TestScheddDrainShedsOverHTTP(t *testing.T) {
	s := testServer(t, Options{MaxInflight: 1, QueueDepth: 4})
	h := s.Handler()

	// Prime one cached result, then drain: new arrivals are shed at the
	// door with 503 + Retry-After.
	if rr := postPoint(t, h, `{"config":{"partition":4}}`); rr.Code != http.StatusOK {
		t.Fatalf("prime: status %d body %s", rr.Code, rr.Body)
	}
	s.SetDraining(true)
	rr := postPoint(t, h, `{"config":{"partition":4}}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("draining POST: status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Errorf("draining POST missing Retry-After")
	}
	s.SetDraining(false)

	// The histogram counted the completed request (sheds at the door are
	// turned away before the timed section).
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrr := httptest.NewRecorder()
	h.ServeHTTP(mrr, req)
	body := mrr.Body.String()
	for _, want := range []string{
		"schedd_request_duration_seconds_bucket{le=\"+Inf\"} 1",
		"schedd_request_duration_seconds_count 1",
		"schedd_cache_peak_bytes",
		"schedd_retry_after_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
