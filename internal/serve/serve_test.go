package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
)

func testServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	return New(opts)
}

func postRun(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

const smallRun = `{"config":{"partition":4,"topology":"mesh","policy":"ts"}}`

// TestScheddRunCacheHitByteIdentical is the headline serving invariant: a
// repeated POST /v1/run is a cache hit whose body is byte-identical to the
// first response.
func TestScheddRunCacheHitByteIdentical(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()

	first := postRun(t, h, smallRun)
	if first.Code != http.StatusOK {
		t.Fatalf("first POST: status %d, body %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first POST X-Cache = %q, want miss", got)
	}
	key := first.Header().Get("X-Key")
	if len(key) != 64 {
		t.Errorf("X-Key = %q, want 64 hex chars", key)
	}

	second := postRun(t, h, smallRun)
	if second.Code != http.StatusOK {
		t.Fatalf("second POST: status %d", second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second POST X-Cache = %q, want hit", got)
	}
	if second.Header().Get("X-Key") != key {
		t.Errorf("key changed between identical requests")
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("cached body differs from original:\n first: %s\nsecond: %s", first.Body, second.Body)
	}

	// Equivalent spelling of the same config (explicit defaults) also hits.
	third := postRun(t, h, `{"config":{"processors":16,"partition":4,"topology":"M","policy":"time-shared","app":"matmul"}}`)
	if got := third.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("canonicalized config X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Errorf("canonicalized config body differs")
	}

	// A different format is different content: miss, different key.
	csv := postRun(t, h, `{"format":"csv","config":{"partition":4,"topology":"mesh","policy":"ts"}}`)
	if got := csv.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("csv format X-Cache = %q, want miss", got)
	}
	if csv.Header().Get("X-Key") == key {
		t.Errorf("csv format reused the json key")
	}
	if ct := csv.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("csv Content-Type = %q", ct)
	}
}

// TestScheddNamedExperiment: a catalog experiment is addressable over HTTP
// and the body matches running the catalog entry directly.
func TestScheddNamedExperiment(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()

	rr := postRun(t, h, `{"experiment":"e4","format":"csv"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("e4 POST: status %d, body %s", rr.Code, rr.Body)
	}
	want, err := experiments.Lookup("e4").Run(core.Config{}, experiments.CSV, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Body.String() != want {
		t.Errorf("HTTP e4 body differs from direct run:\n http: %q\ndirect: %q", rr.Body, want)
	}
	if again := postRun(t, h, `{"experiment":"e4","format":"csv"}`); again.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeated e4 was not a cache hit")
	}
	// The "fig" long form aliases onto the same id space.
	if alias := postRun(t, h, `{"experiment":"fig3","format":"csv"}`); alias.Code != http.StatusOK {
		t.Errorf("fig3 alias: status %d, body %s", alias.Code, alias.Body)
	}
}

// TestScheddBackpressure: with every slot held and the queue full, POSTs
// shed with 429 + Retry-After instead of queueing unboundedly; a freed slot
// restores service.
func TestScheddBackpressure(t *testing.T) {
	s := testServer(t, Options{MaxInflight: 1, QueueDepth: 1})
	h := s.Handler()

	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter is allowed (depth 1)...
	waiterDone := make(chan *httptest.ResponseRecorder, 1)
	waiterIn := make(chan struct{})
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(smallRun))
		rr := httptest.NewRecorder()
		close(waiterIn)
		h.ServeHTTP(rr, req)
		waiterDone <- rr
	}()
	<-waiterIn
	waitFor(t, func() bool { return s.adm.queued() > 0 }, "waiter never queued")

	// ...the next arrival is shed immediately.
	shed := postRun(t, h, smallRun)
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, want 429", shed.Code)
	}
	if shed.Header().Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}

	release()
	rr := <-waiterDone
	if rr.Code != http.StatusOK {
		t.Errorf("queued request after release: status %d, body %s", rr.Code, rr.Body)
	}
	if got := counterValue(t, h, "schedd_rejected_total"); got != 1 {
		t.Errorf("schedd_rejected_total = %d, want 1", got)
	}
}

// TestScheddQueuedDeadline: a request whose deadline expires while queued
// gets 504 and leaves the queue.
func TestScheddQueuedDeadline(t *testing.T) {
	s := testServer(t, Options{MaxInflight: 1, QueueDepth: 4})
	h := s.Handler()
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rr := postRun(t, h, `{"timeout_ms":30,"config":{"partition":4}}`)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", rr.Code, rr.Body)
	}
	if q := s.adm.queued(); q != 0 {
		t.Errorf("queue depth %d after deadline, want 0", q)
	}
}

// TestScheddClientDisconnectFreesQueue: a client that goes away while
// queued releases its queue position (its engine work is never started; an
// in-flight engine plan stops dispatching via engine.ExecuteAllCtx, which
// has its own tests).
func TestScheddClientDisconnectFreesQueue(t *testing.T) {
	s := testServer(t, Options{MaxInflight: 1, QueueDepth: 4})
	h := s.Handler()
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(smallRun)).WithContext(ctx)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		done <- rr
	}()
	waitFor(t, func() bool { return s.adm.queued() > 0 }, "request never queued")
	cancel()
	rr := <-done
	if rr.Code != statusClientClosedRequest {
		t.Errorf("status %d, want %d", rr.Code, statusClientClosedRequest)
	}
	if q := s.adm.queued(); q != 0 {
		t.Errorf("queue depth %d after disconnect, want 0", q)
	}
	if got := counterValue(t, h, "schedd_cancelled_total"); got != 1 {
		t.Errorf("schedd_cancelled_total = %d, want 1", got)
	}
}

// TestScheddMetricsAgree: the /metrics counters reproduce the test's
// request sequence exactly: 2 identical POSTs = 1 miss + 1 hit, a third
// distinct POST = another miss, one malformed POST.
func TestScheddMetricsAgree(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()

	postRun(t, h, smallRun)                                  // miss
	postRun(t, h, smallRun)                                  // hit
	postRun(t, h, `{"config":{"partition":4,"seed":99}}`)    // miss
	postRun(t, h, `{"config":{"policy":"no-such-policy"}}`)  // 400
	postRun(t, h, `{"config":{"partitoin":4}}`)              // 400: unknown field
	postRun(t, h, `{"experiment":"e99"}`)                    // 400: unknown id
	postRun(t, h, `{"config":{"partition":4},"batch":true}`) // 400: unknown field

	want := map[string]int64{
		"schedd_requests_total":     3,
		"schedd_cache_hits_total":   1,
		"schedd_cache_misses_total": 2,
		"schedd_bad_requests_total": 4,
		"schedd_rejected_total":     0,
		"schedd_failed_total":       0,
		"schedd_queue_depth":        0,
		"schedd_inflight":           0,
		"schedd_cache_entries":      2,
	}
	for name, wantV := range want {
		if got := counterValue(t, h, name); got != wantV {
			t.Errorf("%s = %d, want %d", name, got, wantV)
		}
	}
	// Simulating took some wall time; the throughput counters move.
	if v := counterValue(t, h, "schedd_sim_seconds_total"); v <= 0 {
		t.Errorf("schedd_sim_seconds_total = %d, want > 0", v)
	}
}

// TestScheddHealthzDrain: /healthz reports ok, then 503 once draining.
func TestScheddHealthzDrain(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "ok") {
		t.Errorf("healthz: %d %s", rr.Code, rr.Body)
	}
	s.SetDraining(true)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "draining") {
		t.Errorf("draining healthz: %d %s", rr.Code, rr.Body)
	}
	if counterValue(t, h, "schedd_draining") != 1 {
		t.Errorf("schedd_draining gauge not set")
	}
}

// TestScheddExperimentsListing: the catalog is discoverable.
func TestScheddExperimentsListing(t *testing.T) {
	s := testServer(t, Options{})
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/experiments", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	for _, id := range []string{"f3", "f6", "e1", "e12"} {
		if !strings.Contains(rr.Body.String(), fmt.Sprintf("%q", id)) {
			t.Errorf("listing missing %s", id)
		}
	}
}

// TestScheddPoliciesListing: GET /v1/policies exposes the composite
// disciplines and all three component vocabularies with their aliases.
func TestScheddPoliciesListing(t *testing.T) {
	s := testServer(t, Options{})
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/policies", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	body := rr.Body.String()
	for _, key := range []string{"policies", "partition_policies", "quantum_policies", "queue_orders"} {
		if !strings.Contains(body, fmt.Sprintf("%q", key)) {
			t.Errorf("listing missing section %s", key)
		}
	}
	for _, name := range []string{"static", "time-shared", "gang", "equi", "dynamic", "srpt", "priority", "rrjob"} {
		if !strings.Contains(body, fmt.Sprintf("%q", name)) {
			t.Errorf("listing missing policy %s", name)
		}
	}
	if post := httptest.NewRecorder(); true {
		s.Handler().ServeHTTP(post, httptest.NewRequest(http.MethodPost, "/v1/policies", nil))
		if post.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST /v1/policies: status %d, want 405", post.Code)
		}
	}
}

// TestScheddComposedPolicyRun: a config composing zoo components runs over
// /v1/run, caches under its own key, and is distinct from the legacy
// discipline it extends.
func TestScheddComposedPolicyRun(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()

	legacy := postRun(t, h, `{"config":{"partition":4,"topology":"mesh","policy":"ts"}}`)
	if legacy.Code != http.StatusOK {
		t.Fatalf("legacy run: status %d, body %s", legacy.Code, legacy.Body)
	}
	composed := postRun(t, h, `{"config":{"partition":4,"topology":"mesh","policy":"ts","quantum_policy":"dynamic","queue_order":"srpt"}}`)
	if composed.Code != http.StatusOK {
		t.Fatalf("composed run: status %d, body %s", composed.Code, composed.Body)
	}
	if composed.Header().Get("X-Key") == legacy.Header().Get("X-Key") {
		t.Errorf("composed config reused the legacy cache key")
	}
	if !strings.Contains(composed.Body.String(), "shared/dynamic/srpt") {
		t.Errorf("composed label missing from body: %s", composed.Body)
	}
	// Overrides that spell out the legacy composite are the same content.
	spelled := postRun(t, h, `{"config":{"partition":4,"topology":"mesh","policy":"ts","partition_policy":"shared","quantum_policy":"rrjob","queue_order":"fcfs"}}`)
	if spelled.Header().Get("X-Key") != legacy.Header().Get("X-Key") {
		t.Errorf("spelled-out composite did not canonicalize onto the legacy key")
	}
	if bad := postRun(t, h, `{"config":{"quantum_policy":"warp"}}`); bad.Code != http.StatusBadRequest {
		t.Errorf("unknown quantum policy: status %d, want 400", bad.Code)
	}
}

// TestScheddConcurrentIdenticalRequests: a thundering herd of identical
// configs produces one body; concurrent misses may each simulate, but
// every response is byte-identical and later requests hit the cache.
func TestScheddConcurrentIdenticalRequests(t *testing.T) {
	s := testServer(t, Options{MaxInflight: 4, QueueDepth: 64})
	h := s.Handler()
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := postRun(t, h, smallRun)
			if rr.Code == http.StatusOK {
				bodies[i] = rr.Body.Bytes()
			}
		}(i)
	}
	wg.Wait()
	var ref []byte
	for _, b := range bodies {
		if b != nil {
			ref = b
			break
		}
	}
	if ref == nil {
		t.Fatal("no request succeeded")
	}
	for i, b := range bodies {
		if b != nil && !bytes.Equal(b, ref) {
			t.Errorf("response %d differs", i)
		}
	}
	if again := postRun(t, h, smallRun); again.Header().Get("X-Cache") != "hit" {
		t.Errorf("request after herd was not a hit")
	}
}

var metricLine = regexp.MustCompile(`(?m)^(schedd_[a-z_]+) ([0-9.]+)$`)

// counterValue scrapes /metrics and returns the named series as an int64
// (fractional series are truncated — tests only compare whole counts or
// positivity).
func counterValue(t *testing.T, h http.Handler, name string) int64 {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	for _, m := range metricLine.FindAllStringSubmatch(rr.Body.String(), -1) {
		if m[1] == name {
			f, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				t.Fatalf("parse %s value %q: %v", name, m[2], err)
			}
			if f > 0 && f < 1 {
				return 1 // positive fractional counts as moved
			}
			return int64(f)
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, rr.Body)
	return 0
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}
