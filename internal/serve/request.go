package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"

	"repro/internal/comm"
	"repro/internal/sched"
)

// RunRequest is the POST /v1/run body: either a named experiment from the
// catalog ("f3".."f6", "e1".."e15") or a single config-shaped run. Every
// field is optional; zero values are the paper's defaults, exactly as in
// core.Config.
type RunRequest struct {
	// Experiment names a catalog entry; empty means a single run of Config.
	Experiment string `json:"experiment,omitempty"`
	// Format selects the rendering: "json" (default), "csv" or "table".
	Format string `json:"format,omitempty"`
	// Config shapes the simulation (single run) or the base config every
	// point of a named experiment inherits (seed, mode, costs...).
	Config ConfigSpec `json:"config"`
	// TimeoutMS bounds this request's processing time, queueing included;
	// 0 uses the server default. Excluded from the cache key: it changes
	// when an answer arrives, never what the answer is.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ConfigSpec is the wire form of core.Config: the same fields in the same
// units the CLI tools accept (enums as their flag spellings, times in µs).
// It exists so the HTTP API is stable JSON with validation, not a raw dump
// of internal types.
type ConfigSpec struct {
	Processors  int    `json:"processors,omitempty"`
	MemoryBytes int64  `json:"memory_bytes,omitempty"`
	Partition   int    `json:"partition,omitempty"`
	Topology    string `json:"topology,omitempty"`
	Policy      string `json:"policy,omitempty"`
	// PartitionPolicy, QuantumPolicy and QueueOrder override individual
	// policy components by name ("equi", "dynamic", "srpt", ...); empty
	// inherits the component from Policy, exactly as in core.Config.
	PartitionPolicy string `json:"partition_policy,omitempty"`
	QuantumPolicy   string `json:"quantum_policy,omitempty"`
	QueueOrder      string `json:"queue_order,omitempty"`
	App             string `json:"app,omitempty"`
	Arch            string `json:"arch,omitempty"`
	Mode            string `json:"mode,omitempty"`
	Order           string `json:"order,omitempty"`
	QuantumUS       int64  `json:"quantum_us,omitempty"`
	MPL             int    `json:"mpl,omitempty"`
	Seed            int64  `json:"seed,omitempty"`
	SampleEveryUS   int64  `json:"sample_every_us,omitempty"`

	Fault *FaultSpec `json:"fault,omitempty"`

	// Arrival switches the run to open-system streaming arrivals; absent
	// means the paper's closed batch, exactly as in core.Config.
	Arrival *ArrivalSpec `json:"arrival,omitempty"`
}

// ArrivalSpec is the wire form of arrival.Spec (times in µs). Trace replay
// has no wire form: the trace file is not part of the config, so a trace
// run is not content-addressable and cannot be cached or routed remotely.
type ArrivalSpec struct {
	// Process names the interarrival process: "poisson", "pareto",
	// "periodic".
	Process            string  `json:"process"`
	Jobs               int64   `json:"jobs,omitempty"`
	Load               float64 `json:"load,omitempty"`
	MeanInterarrivalUS int64   `json:"mean_interarrival_us,omitempty"`
	ParetoAlpha        float64 `json:"pareto_alpha,omitempty"`
	ParetoCapUS        int64   `json:"pareto_cap_us,omitempty"`
	SmallWorkUS        int64   `json:"small_work_us,omitempty"`
	LargeWorkUS        int64   `json:"large_work_us,omitempty"`
	LargeEvery         int64   `json:"large_every,omitempty"`
	WidthSmall         int     `json:"width_small,omitempty"`
	WidthLarge         int     `json:"width_large,omitempty"`
}

// FaultSpec is the wire form of fault.Config (times in µs).
type FaultSpec struct {
	Seed                 int64   `json:"seed,omitempty"`
	NodeMTBFUS           int64   `json:"node_mtbf_us,omitempty"`
	NodeMTTRUS           int64   `json:"node_mttr_us,omitempty"`
	LinkMTBFUS           int64   `json:"link_mtbf_us,omitempty"`
	LinkMTTRUS           int64   `json:"link_mttr_us,omitempty"`
	DropProb             float64 `json:"drop_prob,omitempty"`
	HorizonUS            int64   `json:"horizon_us,omitempty"`
	RetryTimeoutUS       int64   `json:"retry_timeout_us,omitempty"`
	RetryBudget          int     `json:"retry_budget,omitempty"`
	CheckpointIntervalUS int64   `json:"checkpoint_interval_us,omitempty"`
	CheckpointCostUS     int64   `json:"checkpoint_cost_us,omitempty"`
	RestartBudget        int     `json:"restart_budget,omitempty"`
}

// parseRunRequest decodes and validates a request body. Unknown fields are
// errors — a typoed "polcy" must not silently run the default policy.
func parseRunRequest(r io.Reader) (*RunRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after JSON body")
	}
	return &req, nil
}

// ParseRunRequestBytes parses a run request body from bytes. Exported so
// the cluster coordinator's proxy can compute routing keys with exactly the
// validation the worker will apply.
func ParseRunRequestBytes(b []byte) (*RunRequest, error) {
	return parseRunRequest(bytes.NewReader(b))
}

// Resolve validates the request into the pieces the server executes: the
// core config, the optional catalog entry, the rendering format, and the
// content-address under which the response is cached.
func (req *RunRequest) Resolve() (cfg core.Config, entry *experiments.CatalogEntry, format experiments.Format, key string, err error) {
	// Over HTTP the natural default is structured output; the CLI keeps
	// its human-readable table default.
	spec := req.Format
	if spec == "" {
		spec = "json"
	}
	format, err = experiments.ParseFormat(spec)
	if err != nil {
		return cfg, nil, 0, "", err
	}
	if req.Experiment != "" {
		entry = experiments.Lookup(req.Experiment)
		if entry == nil {
			return cfg, nil, 0, "", fmt.Errorf("unknown experiment %q", req.Experiment)
		}
	}
	cfg, err = req.Config.ToConfig()
	if err != nil {
		return cfg, nil, 0, "", err
	}
	cfgHash, err := cfg.Hash()
	if err != nil {
		return cfg, nil, 0, "", err
	}
	// The content address binds everything that determines the response
	// bytes: what to run (config hash; experiment id) and how to render
	// it. Workers, timeouts and transport details are excluded — they
	// never change the bytes.
	h := sha256.New()
	io.WriteString(h, "repro-run-v1;config=")
	io.WriteString(h, cfgHash)
	io.WriteString(h, ";experiment=")
	if entry != nil {
		io.WriteString(h, entry.ID)
	}
	io.WriteString(h, ";format=")
	io.WriteString(h, format.String())
	return cfg, entry, format, hex.EncodeToString(h.Sum(nil)), nil
}

// ToConfig validates the spec into a core.Config using the same parsers as
// the CLI flags.
func (s ConfigSpec) ToConfig() (core.Config, error) {
	var cfg core.Config
	cfg.Processors = s.Processors
	cfg.MemoryBytes = s.MemoryBytes
	cfg.PartitionSize = s.Partition
	cfg.BasicQuantum = sim.Time(s.QuantumUS)
	cfg.MaxResident = s.MPL
	cfg.Seed = s.Seed
	cfg.SampleEvery = sim.Time(s.SampleEveryUS)
	var err error
	if s.Topology != "" {
		if cfg.Topology, err = topology.ParseKind(s.Topology); err != nil {
			return cfg, err
		}
	}
	if s.Policy != "" {
		if cfg.Policy, err = sched.ParsePolicy(s.Policy); err != nil {
			return cfg, err
		}
	}
	if s.PartitionPolicy != "" {
		if cfg.PartitionPolicy, err = sched.ParsePartitionKind(s.PartitionPolicy); err != nil {
			return cfg, err
		}
	}
	if s.QuantumPolicy != "" {
		if cfg.QuantumPolicy, err = sched.ParseQuantumKind(s.QuantumPolicy); err != nil {
			return cfg, err
		}
	}
	if s.QueueOrder != "" {
		if cfg.QueueOrder, err = sched.ParseOrderKind(s.QueueOrder); err != nil {
			return cfg, err
		}
	}
	if s.App != "" {
		if cfg.App, err = core.ParseApp(s.App); err != nil {
			return cfg, err
		}
	}
	if s.Arch != "" {
		if cfg.Arch, err = workload.ParseArch(s.Arch); err != nil {
			return cfg, err
		}
	}
	if s.Mode != "" {
		if cfg.Mode, err = comm.ParseMode(s.Mode); err != nil {
			return cfg, err
		}
	}
	switch s.Order {
	case "", "submission":
		cfg.Order = core.Submission
	case "smallest-first", "sf":
		cfg.Order = core.SmallestFirst
	case "largest-first", "lf":
		cfg.Order = core.LargestFirst
	default:
		return cfg, fmt.Errorf("unknown order %q", s.Order)
	}
	if s.Arrival != nil {
		kind, err := arrival.ParseKind(s.Arrival.Process)
		if err != nil {
			return cfg, &core.ConfigError{Field: "arrival.process", Err: err}
		}
		if kind == arrival.Trace {
			return cfg, &core.ConfigError{Field: "arrival.process",
				Err: fmt.Errorf("trace replay is not wire-representable (the trace file is not part of the config)")}
		}
		cfg.Arrival = arrival.Spec{
			Kind:             kind,
			Jobs:             s.Arrival.Jobs,
			Load:             s.Arrival.Load,
			MeanInterarrival: sim.Time(s.Arrival.MeanInterarrivalUS),
			ParetoAlpha:      s.Arrival.ParetoAlpha,
			ParetoCap:        sim.Time(s.Arrival.ParetoCapUS),
			SmallWork:        sim.Time(s.Arrival.SmallWorkUS),
			LargeWork:        sim.Time(s.Arrival.LargeWorkUS),
			LargeEvery:       s.Arrival.LargeEvery,
			WidthSmall:       s.Arrival.WidthSmall,
			WidthLarge:       s.Arrival.WidthLarge,
		}
	}
	if s.Fault != nil {
		cfg.Fault = &fault.Config{
			Seed:               s.Fault.Seed,
			NodeMTBF:           sim.Time(s.Fault.NodeMTBFUS),
			NodeMTTR:           sim.Time(s.Fault.NodeMTTRUS),
			LinkMTBF:           sim.Time(s.Fault.LinkMTBFUS),
			LinkMTTR:           sim.Time(s.Fault.LinkMTTRUS),
			DropProb:           s.Fault.DropProb,
			Horizon:            sim.Time(s.Fault.HorizonUS),
			RetryTimeout:       sim.Time(s.Fault.RetryTimeoutUS),
			RetryBudget:        s.Fault.RetryBudget,
			CheckpointInterval: sim.Time(s.Fault.CheckpointIntervalUS),
			CheckpointCost:     sim.Time(s.Fault.CheckpointCostUS),
			RestartBudget:      s.Fault.RestartBudget,
		}
	}
	return cfg, nil
}
