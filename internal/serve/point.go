package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/arrival"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
)

// POST /v1/point is the cluster wire format: one config in, the lossless
// summary of one core.Run out. Unlike /v1/run — whose bodies are rendered
// documents for humans and plotting pipelines — a point response carries
// raw values (times as integer microseconds, derived ratios as float64s
// that survive a JSON round trip bit-for-bit), so a remote client can
// re-render any local output byte-identically. That is the invariant the
// distributed sweep fabric rests on: route the simulation anywhere, format
// at home, diff nothing.
//
// Point responses live in the same content-addressed cache as /v1/run
// bodies, keyed by the canonical config hash, so a repeated or overlapping
// sweep routed back to the same worker (rendezvous hashing does exactly
// that) is answered without simulating.

// PointRequest is the POST /v1/point body.
type PointRequest struct {
	// Config shapes the single run; zero values are the paper's defaults.
	Config ConfigSpec `json:"config"`
	// TimeoutMS bounds processing time, queueing included; 0 uses the
	// server default. Excluded from the cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PointSummary is the lossless wire form of one run's headline metrics.
// Integer fields are exact; float64 fields are computed server-side by the
// same code the local tools use and round-trip exactly through JSON, so a
// value formatted client-side equals the locally-computed formatting.
type PointSummary struct {
	Label        string  `json:"label"`
	Jobs         int     `json:"jobs"`
	MeanUS       int64   `json:"mean_us"`
	P50US        int64   `json:"p50_us"`
	P95US        int64   `json:"p95_us"`
	MaxUS        int64   `json:"max_us"`
	MakespanUS   int64   `json:"makespan_us"`
	Util         float64 `json:"util"`
	Overhead     float64 `json:"overhead"`
	MemBlockedUS int64   `json:"mem_blocked_us"`
	PeakMemBytes int64   `json:"peak_mem_bytes"`
	Messages     int64   `json:"messages"`
	AvgHops      float64 `json:"avg_hops"`
	AvgLatencyUS int64   `json:"avg_latency_us"`
	Retries      int64   `json:"retries"`
	// Fault carries the fault/repair counters when the run had an injector
	// attached; nil otherwise.
	Fault *FaultCounters `json:"fault,omitempty"`
	// Open carries the streaming summary of an open-system arrival run;
	// nil on closed-batch runs, so legacy responses keep their exact bytes.
	Open *OpenWire `json:"open,omitempty"`
}

// OpenWire is the wire form of metrics.OpenSummary (times in µs). The p50,
// p95 and p99 values are ε-quantile sketch estimates (see stream.QuantileSketch);
// mean and max are exact.
type OpenWire struct {
	Jobs             int64   `json:"jobs"`
	MeanUS           int64   `json:"mean_us"`
	P50US            int64   `json:"p50_us"`
	P95US            int64   `json:"p95_us"`
	P99US            int64   `json:"p99_us"`
	MaxUS            int64   `json:"max_us"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	MeanQueue        float64 `json:"mean_queue"`
	PeakQueue        int     `json:"peak_queue"`
}

// FaultCounters is the wire form of metrics.FaultStats (times in µs).
type FaultCounters struct {
	NodesFailed      int64 `json:"nodes_failed"`
	NodesRepaired    int64 `json:"nodes_repaired"`
	LinksFailed      int64 `json:"links_failed"`
	LinksRepaired    int64 `json:"links_repaired"`
	JobKills         int64 `json:"job_kills"`
	Requeues         int64 `json:"requeues"`
	Restarts         int64 `json:"restarts"`
	Checkpoints      int64 `json:"checkpoints"`
	CheckpointWorkUS int64 `json:"checkpoint_work_us"`
	WorkLostUS       int64 `json:"work_lost_us"`
}

// FaultStats converts the wire counters back to the metrics type.
func (f *FaultCounters) FaultStats() *metrics.FaultStats {
	if f == nil {
		return nil
	}
	return &metrics.FaultStats{
		NodesFailed:    f.NodesFailed,
		NodesRepaired:  f.NodesRepaired,
		LinksFailed:    f.LinksFailed,
		LinksRepaired:  f.LinksRepaired,
		JobKills:       f.JobKills,
		Requeues:       f.Requeues,
		Restarts:       f.Restarts,
		Checkpoints:    f.Checkpoints,
		CheckpointWork: sim.Time(f.CheckpointWorkUS),
		WorkLost:       sim.Time(f.WorkLostUS),
	}
}

// PointSummaryFrom extracts the wire summary from a run result. The local
// tools use it too, so the remote path and the in-process path feed the
// same values into the same row formatters.
func PointSummaryFrom(res *metrics.Result) PointSummary {
	ps := PointSummary{
		Label:        res.Label,
		Jobs:         len(res.Jobs),
		MeanUS:       int64(res.MeanResponse()),
		P50US:        int64(res.ResponsePercentile(50)),
		P95US:        int64(res.ResponsePercentile(95)),
		MaxUS:        int64(res.MaxResponse()),
		MakespanUS:   int64(res.Makespan),
		Util:         res.CPUUtilization(),
		Overhead:     res.SystemOverheadFraction(),
		MemBlockedUS: int64(res.TotalMemBlockedTime()),
		PeakMemBytes: res.PeakMemory(),
		Messages:     res.Net.Messages,
		AvgHops:      res.Net.AvgHops(),
		AvgLatencyUS: int64(res.Net.AvgLatency()),
		Retries:      res.Net.Retries,
	}
	if res.Open != nil {
		o := res.Open
		// Open runs retain no per-job records; the headline job count comes
		// from the stream.
		ps.Jobs = int(o.Jobs)
		ps.Open = &OpenWire{
			Jobs:             o.Jobs,
			MeanUS:           int64(o.MeanResponse),
			P50US:            int64(o.P50),
			P95US:            int64(o.P95),
			P99US:            int64(o.P99),
			MaxUS:            int64(o.MaxResponse),
			ThroughputPerSec: o.ThroughputPerSec,
			MeanQueue:        o.MeanQueue,
			PeakQueue:        o.PeakQueue,
		}
	}
	if res.Faults != nil {
		f := res.Faults
		ps.Fault = &FaultCounters{
			NodesFailed:      f.NodesFailed,
			NodesRepaired:    f.NodesRepaired,
			LinksFailed:      f.LinksFailed,
			LinksRepaired:    f.LinksRepaired,
			JobKills:         f.JobKills,
			Requeues:         f.Requeues,
			Restarts:         f.Restarts,
			Checkpoints:      f.Checkpoints,
			CheckpointWorkUS: int64(f.CheckpointWork),
			WorkLostUS:       int64(f.WorkLost),
		}
	}
	return ps
}

// SpecFromConfig converts a core.Config into its wire form — the inverse of
// ConfigSpec.ToConfig. Only wire-representable configs convert: custom cost
// models, batches, tracers and verification have no JSON spelling, so a
// config carrying one cannot be executed remotely and returns an error. The
// round trip preserves the canonical hash, which is what lets the client
// route on cfg.Hash and the worker cache under the same address.
func SpecFromConfig(cfg core.Config) (ConfigSpec, error) {
	switch {
	case cfg.Batch != nil:
		return ConfigSpec{}, fmt.Errorf("serve: config with a custom Batch is not wire-representable")
	case cfg.Tracer != nil:
		return ConfigSpec{}, fmt.Errorf("serve: config with a Tracer is not wire-representable")
	case cfg.Cost != nil:
		return ConfigSpec{}, fmt.Errorf("serve: config with a custom CostModel is not wire-representable")
	case cfg.AppCost != nil:
		return ConfigSpec{}, fmt.Errorf("serve: config with a custom AppCost is not wire-representable")
	case cfg.Verify:
		return ConfigSpec{}, fmt.Errorf("serve: config with Verify set is not wire-representable")
	}
	spec := ConfigSpec{
		Processors:    cfg.Processors,
		MemoryBytes:   cfg.MemoryBytes,
		Partition:     cfg.PartitionSize,
		QuantumUS:     int64(cfg.BasicQuantum),
		MPL:           cfg.MaxResident,
		Seed:          cfg.Seed,
		SampleEveryUS: int64(cfg.SampleEvery),
	}
	// Enum String() spellings are accepted by the corresponding parsers, so
	// the zero value round-trips through its canonical name.
	spec.Topology = cfg.Topology.String()
	spec.Policy = cfg.Policy.String()
	// Policy-component overrides are emitted only when set: a legacy config
	// produces the exact pre-framework wire bytes, keeping cluster routing
	// keys (and every warm cache) stable.
	if cfg.PartitionPolicy != sched.PartDefault {
		spec.PartitionPolicy = cfg.PartitionPolicy.String()
	}
	if cfg.QuantumPolicy != sched.QuantumDefault {
		spec.QuantumPolicy = cfg.QuantumPolicy.String()
	}
	if cfg.QueueOrder != sched.OrderDefault {
		spec.QueueOrder = cfg.QueueOrder.String()
	}
	spec.App = cfg.App.String()
	spec.Arch = cfg.Arch.String()
	spec.Mode = cfg.Mode.String()
	switch cfg.Order {
	case core.Submission:
		spec.Order = "submission"
	case core.SmallestFirst:
		spec.Order = "smallest-first"
	case core.LargestFirst:
		spec.Order = "largest-first"
	default:
		return ConfigSpec{}, fmt.Errorf("serve: order %v is not wire-representable", cfg.Order)
	}
	if !cfg.Arrival.IsZero() {
		a := cfg.Arrival
		if a.Kind == arrival.Trace {
			return ConfigSpec{}, fmt.Errorf("serve: config with an arrival trace is not wire-representable")
		}
		spec.Arrival = &ArrivalSpec{
			Process:            a.Kind.String(),
			Jobs:               a.Jobs,
			Load:               a.Load,
			MeanInterarrivalUS: int64(a.MeanInterarrival),
			ParetoAlpha:        a.ParetoAlpha,
			ParetoCapUS:        int64(a.ParetoCap),
			SmallWorkUS:        int64(a.SmallWork),
			LargeWorkUS:        int64(a.LargeWork),
			LargeEvery:         a.LargeEvery,
			WidthSmall:         a.WidthSmall,
			WidthLarge:         a.WidthLarge,
		}
	}
	if cfg.Fault != nil {
		f := cfg.Fault
		spec.Fault = &FaultSpec{
			Seed:                 f.Seed,
			NodeMTBFUS:           int64(f.NodeMTBF),
			NodeMTTRUS:           int64(f.NodeMTTR),
			LinkMTBFUS:           int64(f.LinkMTBF),
			LinkMTTRUS:           int64(f.LinkMTTR),
			DropProb:             f.DropProb,
			HorizonUS:            int64(f.Horizon),
			RetryTimeoutUS:       int64(f.RetryTimeout),
			RetryBudget:          f.RetryBudget,
			CheckpointIntervalUS: int64(f.CheckpointInterval),
			CheckpointCostUS:     int64(f.CheckpointCost),
			RestartBudget:        f.RestartBudget,
		}
	}
	return spec, nil
}

// parsePointRequest decodes and validates a point request body.
func parsePointRequest(r io.Reader) (*PointRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req PointRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after JSON body")
	}
	return &req, nil
}

// EncodePointRequest renders a point request body deterministically:
// encoding/json keeps struct field order, so equal requests produce equal
// bytes (and equal routing keys on any client).
func EncodePointRequest(req PointRequest) ([]byte, error) {
	return json.Marshal(req)
}

// ParsePointRequestBytes parses a point request body from bytes. Exported
// so the cluster coordinator's proxy can compute routing keys with exactly
// the validation the worker will apply.
func ParsePointRequestBytes(b []byte) (*PointRequest, error) {
	return parsePointRequest(bytes.NewReader(b))
}

// PointKey is the content address of a point response: the canonical config
// hash under the point namespace. Exported so the cluster coordinator can
// compute the same key it routes on.
func PointKey(cfgHash string) string {
	h := sha256.New()
	io.WriteString(h, "repro-point-v1;config=")
	io.WriteString(h, cfgHash)
	return hex.EncodeToString(h.Sum(nil))
}

// pointContentType is the media type of /v1/point responses.
const pointContentType = "application/json"

// encodePointSummary renders the summary deterministically: encoding/json
// keeps struct field order and emits shortest-round-trip floats, so equal
// summaries produce equal bytes.
func encodePointSummary(ps PointSummary) []byte {
	b, err := json.Marshal(ps)
	if err != nil {
		// A PointSummary is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: encode point summary: %v", err))
	}
	return append(b, '\n')
}

// DecodePointSummary parses a /v1/point response body.
func DecodePointSummary(body []byte) (PointSummary, error) {
	var ps PointSummary
	if err := json.Unmarshal(body, &ps); err != nil {
		return ps, fmt.Errorf("serve: decode point summary: %w", err)
	}
	return ps, nil
}
