package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

func postFork(t *testing.T, h http.Handler, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/fork", strings.NewReader(string(body)))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestScheddForkEndpoint: POST /v1/fork resumes a shipped snapshot and
// answers with exactly the summary a local warm run produces; the repeat
// POST is a byte-identical cache hit, and a divergent request misses with
// a different key.
func TestScheddForkEndpoint(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()

	cfg, err := ConfigSpec{Partition: 4, Topology: "mesh", Policy: "ts"}.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.Prepare(cfg, core.ForkPoint{WarmJobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	snapEnc, err := w.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}

	div := core.Divergence{SeedSet: true, Seed: 99, QueueOrder: sched.OrderSRPT}
	body, err := EncodeForkRequest(ForkRequest{
		Config:     ConfigSpec{Partition: 4, Topology: "mesh", Policy: "ts"},
		Snapshot:   snapEnc,
		Divergence: DivergenceSpecFrom(div),
	})
	if err != nil {
		t.Fatal(err)
	}

	first := postFork(t, h, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first POST: status %d, body %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first POST X-Cache = %q, want miss", got)
	}

	want, err := w.Run(div)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePointSummary(first.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if local := PointSummaryFrom(want); got != local {
		t.Errorf("fork wire summary != local warm run:\n got: %+v\nwant: %+v", got, local)
	}

	second := postFork(t, h, body)
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("repeat POST X-Cache = %q, want hit", got)
	}
	if first.Body.String() != second.Body.String() {
		t.Errorf("cache hit body differs from miss body")
	}

	// A different divergence is a different address — and a different run.
	other, err := EncodeForkRequest(ForkRequest{
		Config:     ConfigSpec{Partition: 4, Topology: "mesh", Policy: "ts"},
		Snapshot:   snapEnc,
		Divergence: DivergenceSpec{SeedSet: true, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	third := postFork(t, h, other)
	if third.Code != http.StatusOK {
		t.Fatalf("divergent POST: status %d, body %s", third.Code, third.Body)
	}
	if got := third.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("divergent POST X-Cache = %q, want miss", got)
	}
	if third.Header().Get("X-Key") == first.Header().Get("X-Key") {
		t.Errorf("different divergences share a content address")
	}

	// A snapshot taken from a different config must be rejected by the
	// worker's hash check, not silently resumed.
	mismatched, err := EncodeForkRequest(ForkRequest{
		Config:   ConfigSpec{Partition: 4, Topology: "ring", Policy: "ts"},
		Snapshot: snapEnc,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := postFork(t, h, mismatched)
	if bad.Code != http.StatusInternalServerError {
		t.Errorf("mismatched config: status %d, want 500 (hash check)", bad.Code)
	}
}

// TestScheddForkBadRequests: malformed fork bodies are 400s, not panics.
func TestScheddForkBadRequests(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()
	for name, body := range map[string]string{
		"empty":        `{}`,
		"no snapshot":  `{"config":{"policy":"ts"}}`,
		"bad snapshot": `{"config":{"policy":"ts"},"snapshot":{"version":99}}`,
		"bad kind":     `{"config":{"policy":"ts"},"snapshot":{"version":1},"divergence":{"quantum_policy":"warp"}}`,
		"unknown":      `{"confg":{}}`,
	} {
		rr := postFork(t, h, []byte(body))
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, rr.Code, rr.Body)
		}
	}
}

// TestScheddForkDivergenceSpecRoundTrip: every resolved divergence kind
// survives the wire spelling round trip.
func TestScheddForkDivergenceSpecRoundTrip(t *testing.T) {
	divs := []core.Divergence{
		{},
		{SeedSet: true, Seed: 0},
		{SeedSet: true, Seed: -3, BasicQuantum: 1234},
		{QuantumPolicy: sched.QuantumDynamic, QueueOrder: sched.OrderPriority},
		{QueueOrder: sched.OrderSRPT},
	}
	for _, div := range divs {
		spec := DivergenceSpecFrom(div)
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back DivergenceSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.ToDivergence()
		if err != nil {
			t.Fatalf("%+v: %v", div, err)
		}
		if got != div {
			t.Errorf("round trip changed divergence: %+v -> %+v", div, got)
		}
	}
}
