package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestLogCollectsInOrder(t *testing.T) {
	l := &Log{}
	for i := 0; i < 5; i++ {
		Emit(l, sim.Time(100*i), "job", "job 1", "tick")
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
	evs := l.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestEmitNilTracerIsNoop(t *testing.T) {
	Emit(nil, 1, "job", "x", "y") // must not panic
}

func TestBoundedLogDropsOldest(t *testing.T) {
	l := &Log{Max: 10}
	for i := 0; i < 25; i++ {
		l.Emit(Event{At: sim.Time(i), Cat: "msg"})
	}
	if l.Len() > 10 {
		t.Errorf("len = %d, want <= 10", l.Len())
	}
	if l.Dropped == 0 {
		t.Error("expected drops")
	}
	evs := l.Events()
	if evs[len(evs)-1].At != 24 {
		t.Errorf("last retained at = %v, want 24", evs[len(evs)-1].At)
	}
}

func TestFilter(t *testing.T) {
	l := &Log{}
	l.Emit(Event{Cat: "job", Subject: "a"})
	l.Emit(Event{Cat: "msg", Subject: "b"})
	l.Emit(Event{Cat: "job", Subject: "c"})
	jobs := l.Filter("job")
	if len(jobs) != 2 || jobs[0].Subject != "a" || jobs[1].Subject != "c" {
		t.Errorf("filter = %v", jobs)
	}
	if len(l.Filter("nope")) != 0 {
		t.Error("unknown category should be empty")
	}
}

func TestWriteTo(t *testing.T) {
	l := &Log{}
	l.Emit(Event{At: 1500, Cat: "job", Subject: "job 7", Detail: "completed"})
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"1.500ms", "job 7", "completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
}
