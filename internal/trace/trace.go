// Package trace provides optional structured event tracing for simulation
// runs: job lifecycle, message movement, and any other component that wants
// to narrate what it does. Tracing is off unless a Tracer is installed, and
// costs a single nil check per event when off.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Event is one traced occurrence.
type Event struct {
	At sim.Time
	// Cat is the event category: "job", "msg", "load", ...
	Cat string
	// Subject identifies the actor ("job 3", "msg B n0.b2->n5.b2").
	Subject string
	// Detail is free-form context.
	Detail string
}

// String renders one line.
func (e Event) String() string {
	return fmt.Sprintf("%12s [%-4s] %s %s", e.At, e.Cat, e.Subject, e.Detail)
}

// Tracer receives events. Implementations must be cheap; they run inline in
// the simulation.
type Tracer interface {
	Emit(Event)
}

// Log is a bounded in-memory tracer. The zero value is unbounded; set Max
// to cap retention (oldest events are dropped first).
type Log struct {
	Max    int
	events []Event
	// Dropped counts events discarded due to Max.
	Dropped int64
}

// Emit implements Tracer.
func (l *Log) Emit(e Event) {
	if l.Max > 0 && len(l.events) >= l.Max {
		// Drop the oldest half in one slide to amortize.
		keep := l.Max / 2
		l.Dropped += int64(len(l.events) - keep)
		copy(l.events, l.events[len(l.events)-keep:])
		l.events = l.events[:keep]
	}
	l.events = append(l.events, e)
}

// Events returns the retained events in emission order. The slice is owned
// by the log.
func (l *Log) Events() []Event { return l.events }

// Len reports the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Filter returns the retained events of one category.
func (l *Log) Filter(cat string) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Cat == cat {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo dumps the retained events one per line.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range l.events {
		n, err := fmt.Fprintln(w, e.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Emit is a convenience helper: a no-op when tr is nil.
func Emit(tr Tracer, at sim.Time, cat, subject, detail string) {
	if tr == nil {
		return
	}
	tr.Emit(Event{At: at, Cat: cat, Subject: subject, Detail: detail})
}
