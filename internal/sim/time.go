// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by executing events in (time, sequence)
// order. Simulated processes are ordinary Go functions run on goroutines, but
// the kernel enforces a strict hand-off discipline: at any instant at most one
// process goroutine executes, and every context switch goes through the
// kernel. Together with FIFO tie-breaking in the event queue this makes every
// simulation bit-reproducible for a given configuration and seed.
//
// The package is the foundation for the Transputer multicomputer model: nodes,
// links, memory managers, routers and schedulers are all built from kernel
// events and parked/woken processes.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in microseconds since the start
// of the simulation. Durations are also expressed as Time values (a length in
// microseconds); the context makes clear which is meant.
type Time int64

// Common durations in simulated microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = 1<<63 - 1

// String renders the time in a human-friendly unit.
func (t Time) String() string {
	switch {
	case t < Millisecond:
		return fmt.Sprintf("%dµs", int64(t))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Duration converts a simulated duration to a time.Duration for interop with
// formatting helpers. Simulated microseconds map to real microseconds.
func (t Time) Duration() time.Duration {
	return time.Duration(t) * time.Microsecond
}

// Seconds reports the time as a floating-point number of simulated seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports the time as a floating-point number of simulated
// milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromDuration converts a wall-clock style duration to simulated Time.
func FromDuration(d time.Duration) Time { return Time(d / time.Microsecond) }
