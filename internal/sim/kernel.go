package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// killSentinel is panicked inside a parked process goroutine during Shutdown
// so that deferred cleanup runs and the goroutine exits.
type killSentinel struct{}

// nowQShedCap bounds the same-timestamp FIFO's retained capacity: a burst
// can grow it arbitrarily, but once drained anything bigger than this is
// released back to the garbage collector.
const nowQShedCap = 4096

// Kernel is a deterministic discrete-event simulation engine.
//
// All simulation state must only be touched from "kernel context": inside
// event callbacks scheduled with At/After, or inside process bodies spawned
// with Spawn. The kernel guarantees that exactly one of these runs at a time.
type Kernel struct {
	now   Time
	seq   uint64
	queue eventQueue
	// nowQ is the same-timestamp fast path: events scheduled for the
	// current time (the After(0) hand-off bursts that dominate equal-time
	// runs) go to this FIFO instead of the heap. Because seq is globally
	// monotonic, FIFO order here *is* (at, seq) order, and any heap event
	// at the same timestamp predates (so precedes) every FIFO entry —
	// pop order is exactly the heap-only order at a fraction of the
	// comparisons.
	nowQ    []*event
	nowHead int
	// free is the event pool: fired and collected-cancelled events are
	// recycled (with a bumped generation) instead of handed to the GC.
	free    []*event
	live    int // non-cancelled queued events, kept in sync by push/pop/Stop
	rng     *rand.Rand
	procs   map[*Proc]struct{}
	nextPID int

	yield   chan struct{} // process -> kernel hand-off
	running bool
	stopped bool

	// procPanic carries a panic raised inside a process body back to the
	// kernel loop, where it is re-raised so tests fail loudly.
	procPanic any
	panicking bool

	// eventsRun counts executed (non-cancelled) events — the simulator's
	// work metric, useful for performance comparisons of model changes.
	eventsRun int64
}

// NewKernel returns a kernel with its clock at zero and a deterministic
// random source seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
		yield: make(chan struct{}),
	}
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be used
// from kernel context so that draws happen in a reproducible order.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Reseed replaces the kernel's random source with a fresh generator seeded
// with seed. Warm-state forking uses it so that a cold run that diverges
// mid-flight and a restored snapshot continue from the same RNG state: both
// sides hold a fresh stream at the fork instant.
func (k *Kernel) Reseed(seed int64) {
	k.rng = rand.New(rand.NewSource(seed))
}

// NextEventAt reports the activation time of the next live pending event.
// ok is false when the queue holds no live events. Cancelled-but-unswept
// events at the front are collected on the way (they would never fire).
func (k *Kernel) NextEventAt() (t Time, ok bool) {
	for {
		ev := k.peekNext()
		if ev == nil {
			return 0, false
		}
		if ev.cancelled {
			k.popNext()
			k.recycle(ev)
			continue
		}
		return ev.at, true
	}
}

// RestoreClock advances the clock to t and sets the executed-event counter,
// without running anything. It is the warm-start resume primitive: after a
// restored simulation has re-armed its pending events (all at times > t),
// RestoreClock positions the kernel exactly where the donor run stood. It
// panics if a live pending event would then be in the past — that would let
// the clock move backwards, which no deterministic schedule survives.
func (k *Kernel) RestoreClock(t Time, eventsRun int64) {
	if t < k.now {
		panic(fmt.Sprintf("sim: RestoreClock to %v behind current time %v", t, k.now))
	}
	if at, ok := k.NextEventAt(); ok && at < t {
		panic(fmt.Sprintf("sim: RestoreClock to %v past pending event at %v", t, at))
	}
	k.now = t
	k.eventsRun = eventsRun
}

// After schedules fn to run d microseconds from now and returns a cancellable
// timer. A non-positive delay schedules the event at the current time; it
// still runs through the event queue, after events already scheduled for now.
func (k *Kernel) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// At schedules fn to run at absolute simulated time t.
func (k *Kernel) At(t Time, fn func()) Timer {
	ev := k.schedule(t, fn)
	return Timer{ev: ev, gen: ev.gen}
}

// AfterFunc schedules fn to run d microseconds from now without returning a
// handle — the zero-cost path for the many timers that are never cancelled
// (router hop hand-offs, sleeps, retry timeouts, process wake-ups).
func (k *Kernel) AfterFunc(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, fn)
}

// AtFunc schedules fn at absolute time t without returning a handle.
func (k *Kernel) AtFunc(t Time, fn func()) {
	k.schedule(t, fn)
}

// schedule allocates (or recycles) the event and queues it.
func (k *Kernel) schedule(t Time, fn func()) *event {
	if t < k.now {
		t = k.now
	}
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{k: k}
	}
	k.seq++
	ev.at = t
	ev.seq = k.seq
	ev.fn = fn
	ev.cancelled = false
	if t == k.now {
		ev.index = indexNowQ
		k.nowQ = append(k.nowQ, ev)
	} else {
		k.queue.push(ev)
	}
	k.live++
	return ev
}

// recycle returns a dequeued event to the pool. Bumping the generation makes
// every outstanding Timer handle for it inert.
func (k *Kernel) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	k.free = append(k.free, ev)
}

// peekNext returns the next event in (at, seq) order without dequeuing it.
// Heap events at the FIFO's timestamp carry older sequence numbers than any
// FIFO entry (they were pushed before the clock reached now), so the heap
// wins ties.
func (k *Kernel) peekNext() *event {
	h := k.queue.peek()
	if k.nowHead < len(k.nowQ) {
		nq := k.nowQ[k.nowHead]
		if h == nil || h.at > nq.at {
			return nq
		}
	}
	return h
}

// popNext dequeues the event peekNext would return; call only when peekNext
// reported one.
func (k *Kernel) popNext() *event {
	h := k.queue.peek()
	if k.nowHead < len(k.nowQ) {
		nq := k.nowQ[k.nowHead]
		if h == nil || h.at > nq.at {
			k.nowHead++
			if k.nowHead == len(k.nowQ) {
				if cap(k.nowQ) > nowQShedCap {
					k.nowQ = nil
				} else {
					k.nowQ = k.nowQ[:0]
				}
				k.nowHead = 0
			}
			nq.index = indexFree
			return nq
		}
	}
	return k.queue.pop()
}

// Run executes events until the queue is empty. Processes that are still
// parked when the queue drains are left parked (daemons waiting for work are
// normal); call Shutdown to unwind them. Run panics if a process body panics.
func (k *Kernel) Run() {
	k.RunUntil(MaxTime)
}

// RunUntil executes events with activation time <= limit. The clock is left at
// the last executed event (it does not jump to limit if the queue drains
// early).
func (k *Kernel) RunUntil(limit Time) {
	if k.running {
		panic("sim: RunUntil called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for {
		ev := k.peekNext()
		if ev == nil || ev.at > limit {
			return
		}
		k.popNext()
		if ev.cancelled {
			k.recycle(ev)
			continue
		}
		k.live--
		k.now = ev.at
		k.eventsRun++
		fn := ev.fn
		// Recycle before firing: the slot is free for whatever fn
		// schedules, and the bumped generation makes the fired event's
		// own Timer handles report not-pending, as they should.
		k.recycle(ev)
		fn()
		if k.panicking {
			p := k.procPanic
			k.panicking = false
			k.procPanic = nil
			panic(p)
		}
	}
}

// EventsRun reports the number of events executed so far.
func (k *Kernel) EventsRun() int64 { return k.eventsRun }

// Step executes exactly one pending event and reports whether one was run.
func (k *Kernel) Step() bool {
	for {
		ev := k.peekNext()
		if ev == nil {
			return false
		}
		k.popNext()
		if ev.cancelled {
			k.recycle(ev)
			continue
		}
		k.live--
		k.now = ev.at
		k.eventsRun++
		fn := ev.fn
		k.recycle(ev)
		fn()
		if k.panicking {
			p := k.procPanic
			k.panicking = false
			k.procPanic = nil
			panic(p)
		}
		return true
	}
}

// PendingEvents reports the number of live events in the queue. The count is
// maintained incrementally on schedule/fire/Stop, so this is O(1).
func (k *Kernel) PendingEvents() int { return k.live }

// Shutdown unwinds every parked process goroutine so no goroutines leak when
// the simulation is discarded. It must be called from outside Run. After
// Shutdown the kernel must not be reused.
func (k *Kernel) Shutdown() {
	if k.stopped {
		return
	}
	k.stopped = true
	// Parked processes are blocked on their resume channel; send each a kill
	// token and wait for the goroutine to acknowledge through yield.
	parked := make([]*Proc, 0, len(k.procs))
	for p := range k.procs {
		if p.parked {
			parked = append(parked, p)
		}
	}
	sort.Slice(parked, func(i, j int) bool { return parked[i].id < parked[j].id })
	for _, p := range parked {
		p.kill = true
		p.resume <- struct{}{}
		<-k.yield
	}
}

// ParkedProcs returns the names of processes currently parked, sorted by
// process id. Useful for diagnosing stalls (e.g. memory deadlock).
func (k *Kernel) ParkedProcs() []string {
	var out []*Proc
	for p := range k.procs {
		if p.parked {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	names := make([]string, len(out))
	for i, p := range out {
		names[i] = fmt.Sprintf("%s (parked: %s)", p.name, p.parkReason)
	}
	return names
}

// LiveProcs reports the number of process goroutines that have not finished.
func (k *Kernel) LiveProcs() int { return len(k.procs) }
