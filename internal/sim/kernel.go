package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// killSentinel is panicked inside a parked process goroutine during Shutdown
// so that deferred cleanup runs and the goroutine exits.
type killSentinel struct{}

// Kernel is a deterministic discrete-event simulation engine.
//
// All simulation state must only be touched from "kernel context": inside
// event callbacks scheduled with At/After, or inside process bodies spawned
// with Spawn. The kernel guarantees that exactly one of these runs at a time.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	procs   map[*Proc]struct{}
	nextPID int

	yield   chan struct{} // process -> kernel hand-off
	running bool
	stopped bool

	// procPanic carries a panic raised inside a process body back to the
	// kernel loop, where it is re-raised so tests fail loudly.
	procPanic any
	panicking bool

	// eventsRun counts executed (non-cancelled) events — the simulator's
	// work metric, useful for performance comparisons of model changes.
	eventsRun int64
}

// NewKernel returns a kernel with its clock at zero and a deterministic
// random source seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
		yield: make(chan struct{}),
	}
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be used
// from kernel context so that draws happen in a reproducible order.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// After schedules fn to run d microseconds from now and returns a cancellable
// timer. A non-positive delay schedules the event at the current time; it
// still runs through the event queue, after events already scheduled for now.
func (k *Kernel) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// At schedules fn to run at absolute simulated time t.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		t = k.now
	}
	k.seq++
	ev := &event{at: t, seq: k.seq, fn: fn, index: -1}
	k.queue.push(ev)
	return &Timer{ev: ev}
}

// Run executes events until the queue is empty. Processes that are still
// parked when the queue drains are left parked (daemons waiting for work are
// normal); call Shutdown to unwind them. Run panics if a process body panics.
func (k *Kernel) Run() {
	k.RunUntil(MaxTime)
}

// RunUntil executes events with activation time <= limit. The clock is left at
// the last executed event (it does not jump to limit if the queue drains
// early).
func (k *Kernel) RunUntil(limit Time) {
	if k.running {
		panic("sim: RunUntil called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for {
		ev := k.queue.peek()
		if ev == nil || ev.at > limit {
			return
		}
		k.queue.pop()
		if ev.cancelled {
			continue
		}
		k.now = ev.at
		k.eventsRun++
		ev.fn()
		if k.panicking {
			p := k.procPanic
			k.panicking = false
			k.procPanic = nil
			panic(p)
		}
	}
}

// EventsRun reports the number of events executed so far.
func (k *Kernel) EventsRun() int64 { return k.eventsRun }

// Step executes exactly one pending event and reports whether one was run.
func (k *Kernel) Step() bool {
	for {
		ev := k.queue.peek()
		if ev == nil {
			return false
		}
		k.queue.pop()
		if ev.cancelled {
			continue
		}
		k.now = ev.at
		k.eventsRun++
		ev.fn()
		if k.panicking {
			p := k.procPanic
			k.panicking = false
			k.procPanic = nil
			panic(p)
		}
		return true
	}
}

// PendingEvents reports the number of live events in the queue.
func (k *Kernel) PendingEvents() int {
	n := 0
	for _, ev := range k.queue.items {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Shutdown unwinds every parked process goroutine so no goroutines leak when
// the simulation is discarded. It must be called from outside Run. After
// Shutdown the kernel must not be reused.
func (k *Kernel) Shutdown() {
	if k.stopped {
		return
	}
	k.stopped = true
	// Parked processes are blocked on their resume channel; send each a kill
	// token and wait for the goroutine to acknowledge through yield.
	parked := make([]*Proc, 0, len(k.procs))
	for p := range k.procs {
		if p.parked {
			parked = append(parked, p)
		}
	}
	sort.Slice(parked, func(i, j int) bool { return parked[i].id < parked[j].id })
	for _, p := range parked {
		p.kill = true
		p.resume <- struct{}{}
		<-k.yield
	}
}

// ParkedProcs returns the names of processes currently parked, sorted by
// process id. Useful for diagnosing stalls (e.g. memory deadlock).
func (k *Kernel) ParkedProcs() []string {
	var out []*Proc
	for p := range k.procs {
		if p.parked {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	names := make([]string, len(out))
	for i, p := range out {
		names[i] = fmt.Sprintf("%s (parked: %s)", p.name, p.parkReason)
	}
	return names
}

// LiveProcs reports the number of process goroutines that have not finished.
func (k *Kernel) LiveProcs() int { return len(k.procs) }
