package sim

// event is a scheduled callback. Events with equal activation time fire in
// insertion (sequence) order, which is what makes the kernel deterministic.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 when not in the queue
}

// Timer is a handle to a scheduled event that can be cancelled or queried.
type Timer struct {
	ev *event
}

// At reports the simulated time the timer is set to fire.
func (t *Timer) At() Time { return t.ev.at }

// Stop cancels the timer. It reports whether the timer was still pending
// (true) or had already fired or been stopped (false). Stopping a fired timer
// is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.index < 0 {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer is still waiting to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && t.ev.index >= 0
}

// eventQueue is a binary min-heap ordered by (at, seq).
type eventQueue struct {
	items []*event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) push(ev *event) {
	ev.index = len(q.items)
	q.items = append(q.items, ev)
	q.up(ev.index)
}

func (q *eventQueue) pop() *event {
	n := len(q.items)
	q.swap(0, n-1)
	ev := q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	ev.index = -1
	return ev
}

func (q *eventQueue) peek() *event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
}
