package sim

// event is a scheduled callback. Events with equal activation time fire in
// insertion (sequence) order, which is what makes the kernel deterministic.
//
// Events are pooled: when one fires or its cancellation is collected, the
// kernel bumps its generation and puts it on a free list for the next
// At/After to reuse, so steady-state scheduling does not allocate. Timer
// handles snapshot the generation they were issued for, which makes a stale
// handle (whose event has since been recycled) inert rather than dangerous.
type event struct {
	k         *Kernel
	at        Time
	seq       uint64
	gen       uint64
	fn        func()
	cancelled bool
	index     int // heap index; indexFree when not queued, indexNowQ in the FIFO
}

const (
	// indexFree marks an event that is not queued anywhere (fired, being
	// recycled, or sitting on the free list).
	indexFree = -1
	// indexNowQ marks an event queued on the same-timestamp FIFO rather
	// than the heap.
	indexNowQ = -2
)

// Timer is a handle to a scheduled event that can be cancelled or queried.
// It is a plain value (scheduling allocates nothing for it); the zero Timer
// behaves like one that already fired: Stop and Pending report false.
type Timer struct {
	ev  *event
	gen uint64
}

// valid reports whether the handle still refers to the event it was issued
// for (the event has not fired and been recycled for another caller).
func (t Timer) valid() bool { return t.ev != nil && t.ev.gen == t.gen }

// At reports the simulated time the timer is set to fire, or 0 if the timer
// already fired or was stopped and collected.
func (t Timer) At() Time {
	if !t.valid() {
		return 0
	}
	return t.ev.at
}

// Stop cancels the timer. It reports whether the timer was still pending
// (true) or had already fired or been stopped (false). Stopping a fired,
// stopped, or zero timer is a no-op. Stop drops the event's callback
// immediately, so anything the closure captures becomes collectable before
// the dead event surfaces in the queue.
func (t Timer) Stop() bool {
	if !t.valid() || t.ev.cancelled || t.ev.index == indexFree {
		return false
	}
	t.ev.cancelled = true
	t.ev.fn = nil
	t.ev.k.live--
	return true
}

// Pending reports whether the timer is still waiting to fire.
func (t Timer) Pending() bool {
	return t.valid() && !t.ev.cancelled && t.ev.index != indexFree
}

// eventQueue is a 4-ary min-heap ordered by (at, seq). The wider node cuts
// the tree depth in half versus a binary heap, which matters because pops
// (sift-down over the whole depth) dominate the kernel's comparison count.
type eventQueue struct {
	items []*event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) push(ev *event) {
	ev.index = len(q.items)
	q.items = append(q.items, ev)
	q.up(ev.index)
}

func (q *eventQueue) pop() *event {
	n := len(q.items)
	q.swap(0, n-1)
	ev := q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	ev.index = indexFree
	return ev
}

func (q *eventQueue) peek() *event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		smallest := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, smallest) {
				smallest = c
			}
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
}
