package sim

import "testing"

// TestAbortParked verifies a parked process unwinds with Aborted and its
// body can recover for cleanup.
func TestAbortParked(t *testing.T) {
	k := NewKernel(1)
	defer k.Shutdown()
	cleaned := false
	var aborted bool
	p := k.Spawn("victim", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Aborted); !ok {
					panic(r)
				}
				aborted = true
				cleaned = true
			}
		}()
		p.Park("waiting forever")
		t.Error("park returned after abort")
	})
	k.At(10, func() { p.Abort() })
	k.Run()
	if !aborted || !cleaned {
		t.Fatalf("aborted=%v cleaned=%v, want both true", aborted, cleaned)
	}
	if !p.Finished() {
		t.Error("aborted process not finished")
	}
	if k.LiveProcs() != 0 {
		t.Errorf("%d live procs after abort", k.LiveProcs())
	}
}

// TestAbortRunning verifies an abort delivered while the process is running
// (here: self-delivered between parks) takes effect at its next park point,
// not before.
func TestAbortRunning(t *testing.T) {
	k := NewKernel(1)
	defer k.Shutdown()
	var reached, after bool
	k.Spawn("victim", func(p *Proc) {
		defer func() {
			if _, ok := recover().(Aborted); !ok {
				t.Error("expected Aborted")
			}
		}()
		p.Sleep(5)
		p.Abort() // while runnable: takes effect at the next park
		reached = true
		p.Sleep(1) // parks; abort fires here
		after = true
	})
	k.Run()
	if !reached || after {
		t.Fatalf("reached=%v after=%v, want true/false", reached, after)
	}
}

// TestAbortFinishedNoop checks aborting a completed process does nothing.
func TestAbortFinishedNoop(t *testing.T) {
	k := NewKernel(1)
	defer k.Shutdown()
	p := k.Spawn("quick", func(p *Proc) {})
	k.Run()
	p.Abort() // must not panic or schedule anything
	if k.PendingEvents() != 0 {
		t.Error("abort of finished proc scheduled events")
	}
}
