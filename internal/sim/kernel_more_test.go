package sim

import "testing"

func TestRunReentrancyPanics(t *testing.T) {
	k := NewKernel(1)
	k.After(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run should panic")
			}
		}()
		k.Run()
	})
	k.Run()
}

func TestTimerAt(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(25, func() {})
	if tm.At() != 25 {
		t.Errorf("At = %v", tm.At())
	}
	k.Run()
}

func TestSpawnFromInsideProc(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("parent", func(p *Proc) {
		order = append(order, "parent-start")
		k.Spawn("child", func(c *Proc) {
			order = append(order, "child")
		})
		p.Sleep(10)
		order = append(order, "parent-end")
	})
	k.Run()
	want := []string{"parent-start", "child", "parent-end"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnFromEventCallback(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.After(5, func() {
		k.Spawn("late", func(p *Proc) {
			p.Sleep(5)
			ran = true
		})
	})
	k.Run()
	if !ran || k.Now() != 10 {
		t.Errorf("ran=%v now=%v", ran, k.Now())
	}
}

func TestMultipleWakersFIFO(t *testing.T) {
	// Several procs parked on the same condition wake in wake-call order.
	k := NewKernel(1)
	var procs []*Proc
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		p := k.Spawn("w", func(p *Proc) {
			p.Park("wait")
			order = append(order, i)
		})
		procs = append(procs, p)
	}
	k.After(10, func() {
		// Wake in reverse creation order; resumption must follow wake order.
		for i := len(procs) - 1; i >= 0; i-- {
			procs[i].Wake()
		}
	})
	k.Run()
	want := []int{3, 2, 1, 0}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestShutdownWithNothingParked(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("quick", func(p *Proc) {})
	k.Run()
	k.Shutdown() // must not hang
	if k.LiveProcs() != 0 {
		t.Errorf("live = %d", k.LiveProcs())
	}
}

func TestPendingEventsAfterRun(t *testing.T) {
	k := NewKernel(1)
	k.After(1, func() {})
	k.Run()
	if k.PendingEvents() != 0 {
		t.Errorf("pending = %d after drain", k.PendingEvents())
	}
}

func TestRunUntilThenResume(t *testing.T) {
	k := NewKernel(1)
	var hits []Time
	p := k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			hits = append(hits, p.Now())
		}
	})
	k.RunUntil(25)
	if len(hits) != 2 {
		t.Fatalf("hits = %v after RunUntil(25)", hits)
	}
	k.Run() // resume to completion
	if len(hits) != 5 || hits[4] != 50 {
		t.Fatalf("hits = %v after full Run", hits)
	}
	if !p.Finished() {
		t.Error("proc should be finished")
	}
}

func TestStepDrivesProcs(t *testing.T) {
	k := NewKernel(1)
	stage := 0
	k.Spawn("p", func(p *Proc) {
		stage = 1
		p.Sleep(5)
		stage = 2
	})
	// Step 1: spawn event starts the proc (runs to the Sleep park).
	if !k.Step() || stage != 1 {
		t.Fatalf("after first step stage = %d", stage)
	}
	// Step 2: sleep timer fires, schedules resume. Step 3: resume runs.
	for k.Step() {
	}
	if stage != 2 {
		t.Fatalf("stage = %d at end", stage)
	}
}

func TestEventsRunCounter(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 5; i++ {
		k.After(Time(i), func() {})
	}
	tm := k.After(100, func() {})
	tm.Stop()
	k.Run()
	if got := k.EventsRun(); got != 5 {
		t.Errorf("EventsRun = %d, want 5 (cancelled events don't count)", got)
	}
}
