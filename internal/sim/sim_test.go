package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0µs"},
		{999, "999µs"},
		{1000, "1.000ms"},
		{2500, "2.500ms"},
		{Second, "1.000000s"},
		{3*Second + 500*Millisecond, "3.500000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
	if got := FromDuration((3 * Second).Duration()); got != 3*Second {
		t.Errorf("round trip via Duration = %v, want %v", got, 3*Second)
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.After(10, func() { order = append(order, 2) })
	k.After(5, func() { order = append(order, 1) })
	k.After(10, func() { order = append(order, 3) }) // same time: insertion order
	k.After(20, func() { order = append(order, 4) })
	k.Run()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 20 {
		t.Errorf("clock = %v, want 20", k.Now())
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	k := NewKernel(1)
	fired := Time(-1)
	k.After(10, func() {
		k.After(-5, func() { fired = k.Now() })
	})
	k.Run()
	if fired != 10 {
		t.Errorf("negative-delay event fired at %v, want 10", fired)
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	k := NewKernel(1)
	fired := Time(-1)
	k.After(10, func() {
		k.At(3, func() { fired = k.Now() })
	})
	k.Run()
	if fired != 10 {
		t.Errorf("past At event fired at %v, want 10", fired)
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	ran := false
	tm := k.After(10, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if tm.Pending() {
		t.Fatal("stopped timer should not be pending")
	}
	k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(1, func() {})
	k.Run()
	if tm.Pending() {
		t.Error("fired timer still pending")
	}
	if tm.Stop() {
		t.Error("Stop after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		k.After(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(12)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("fired = %v, want [5 10]", fired)
	}
	if k.Now() != 10 {
		t.Errorf("clock = %v, want 10 (last executed event)", k.Now())
	}
	k.RunUntil(MaxTime)
	if len(fired) != 4 {
		t.Fatalf("after full run fired = %v", fired)
	}
}

func TestStep(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.After(1, func() { count++ })
	k.After(2, func() { count++ })
	if !k.Step() {
		t.Fatal("Step should run first event")
	}
	if count != 1 {
		t.Fatalf("count = %d after one step", count)
	}
	if !k.Step() {
		t.Fatal("Step should run second event")
	}
	if k.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestPendingEventsSkipsCancelled(t *testing.T) {
	k := NewKernel(1)
	k.After(1, func() {})
	tm := k.After(2, func() {})
	tm.Stop()
	if got := k.PendingEvents(); got != 1 {
		t.Errorf("PendingEvents = %d, want 1", got)
	}
}

func TestSpawnRunsBody(t *testing.T) {
	k := NewKernel(1)
	var trace []string
	k.Spawn("worker", func(p *Proc) {
		trace = append(trace, "start")
		p.Sleep(100)
		trace = append(trace, "after-sleep")
	})
	k.Run()
	if len(trace) != 2 || trace[0] != "start" || trace[1] != "after-sleep" {
		t.Fatalf("trace = %v", trace)
	}
	if k.Now() != 100 {
		t.Errorf("clock = %v, want 100", k.Now())
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d, want 0", k.LiveProcs())
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	// a runs first (spawn order), parks at Sleep(0); b runs; then a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParkWake(t *testing.T) {
	k := NewKernel(1)
	var got Time
	var waiter *Proc
	waiter = k.Spawn("waiter", func(p *Proc) {
		p.Park("test wait")
		got = p.Now()
	})
	k.After(50, func() { waiter.Wake() })
	k.Run()
	if got != 50 {
		t.Errorf("waiter resumed at %v, want 50", got)
	}
}

func TestWakePermit(t *testing.T) {
	// A Wake delivered while the process is running makes the next Park
	// return immediately.
	k := NewKernel(1)
	var resumedAt Time = -1
	k.Spawn("self", func(p *Proc) {
		p.Wake() // permit to self
		p.Park("should not block")
		resumedAt = p.Now()
	})
	k.Run()
	if resumedAt != 0 {
		t.Errorf("park with permit resumed at %v, want 0 (immediately)", resumedAt)
	}
}

func TestWakeFinishedProcIsNoop(t *testing.T) {
	k := NewKernel(1)
	p := k.Spawn("quick", func(p *Proc) {})
	k.After(10, func() { p.Wake() })
	k.Run() // must not hang or panic
	if !p.Finished() {
		t.Error("proc should be finished")
	}
}

func TestParkedProcsReporting(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("stuck", func(p *Proc) {
		p.Park("waiting for godot")
	})
	k.Run()
	parked := k.ParkedProcs()
	if len(parked) != 1 {
		t.Fatalf("parked = %v, want 1 entry", parked)
	}
	if parked[0] != `stuck (parked: waiting for godot)` {
		t.Errorf("parked[0] = %q", parked[0])
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs after Shutdown = %d", k.LiveProcs())
	}
}

func TestShutdownUnwindsManyProcs(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 50; i++ {
		k.Spawn("daemon", func(p *Proc) {
			for {
				p.Park("forever")
			}
		})
	}
	k.Run()
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs after Shutdown = %d, want 0", k.LiveProcs())
	}
	// Shutdown is idempotent.
	k.Shutdown()
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("bomb", func(p *Proc) {
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from kernel Run")
		}
	}()
	k.Run()
}

func TestProcIDsAndNames(t *testing.T) {
	k := NewKernel(1)
	a := k.Spawn("alpha", func(p *Proc) {})
	b := k.Spawn("beta", func(p *Proc) {})
	if a.Name() != "alpha" || b.Name() != "beta" {
		t.Errorf("names = %q, %q", a.Name(), b.Name())
	}
	if a.ID() >= b.ID() {
		t.Errorf("IDs not increasing: %d, %d", a.ID(), b.ID())
	}
	if a.Kernel() != k {
		t.Error("Kernel() accessor wrong")
	}
	k.Run()
}

func TestInterleavedProcsDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		k := NewKernel(seed)
		var trace []string
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			k.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					d := Time(k.Rand().Intn(100) + 1)
					p.Sleep(d)
					trace = append(trace, name)
				}
			})
		}
		k.Run()
		k.Shutdown()
		return trace
	}
	t1 := run(42)
	t2 := run(42)
	if len(t1) != 15 || len(t2) != 15 {
		t.Fatalf("trace lengths %d, %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, t1, t2)
		}
	}
}

// TestEventQueueHeapProperty is a property-based check that the event queue
// dequeues in (time, seq) order for arbitrary insert sequences.
func TestEventQueueHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		k := NewKernel(1)
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			k.At(at, func() { fired = append(fired, at) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestStableOrderAmongEqualTimes verifies FIFO order among events scheduled
// for the same activation time regardless of heap internals.
func TestStableOrderAmongEqualTimes(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%64) + 2
		k := NewKernel(1)
		var fired []int
		// Interleave with some earlier events to exercise heap reshuffling.
		k.After(1, func() {})
		for i := 0; i < count; i++ {
			i := i
			k.At(10, func() { fired = append(fired, i) })
			if i%3 == 0 {
				k.At(Time(2+i%5), func() {})
			}
		}
		k.Run()
		for i := range fired {
			if fired[i] != i {
				return false
			}
		}
		return len(fired) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

func TestSpawnAfterShutdownPanics(t *testing.T) {
	k := NewKernel(1)
	k.Run()
	k.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Spawn("late", func(p *Proc) {})
}
