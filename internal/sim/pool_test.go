package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestStaleTimerHandleAfterRecycle: once an event fires and its slot is
// recycled for a new caller, the old Timer handle must be inert — Stop and
// Pending report false and the recycled event is untouched.
func TestStaleTimerHandleAfterRecycle(t *testing.T) {
	k := NewKernel(1)
	stale := k.After(5, func() {})
	k.Run() // fires; the event goes to the free list
	ran := false
	fresh := k.After(7, func() { ran = true }) // reuses the recycled slot
	if stale.Pending() {
		t.Error("stale handle reports pending")
	}
	if stale.Stop() {
		t.Error("stale Stop reports true")
	}
	if stale.At() != 0 {
		t.Errorf("stale At = %v, want 0", stale.At())
	}
	if !fresh.Pending() {
		t.Error("fresh timer should be pending")
	}
	k.Run()
	if !ran {
		t.Fatal("stale handle operations affected the recycled event")
	}
}

// TestZeroTimer: the zero Timer behaves like one that already fired.
func TestZeroTimer(t *testing.T) {
	var tm Timer
	if tm.Pending() || tm.Stop() || tm.At() != 0 {
		t.Error("zero Timer should be inert")
	}
}

// TestStopSameTimeEvent cancels an event sitting on the same-timestamp FIFO
// (not the heap) and checks its neighbours are unaffected.
func TestStopSameTimeEvent(t *testing.T) {
	k := NewKernel(1)
	ran, cancelledRan := false, false
	k.After(5, func() {
		tm := k.After(0, func() { cancelledRan = true })
		k.After(0, func() { ran = true })
		if !tm.Stop() {
			t.Error("Stop on a same-time event should report true")
		}
		if tm.Pending() {
			t.Error("stopped same-time event still pending")
		}
	})
	k.Run()
	if cancelledRan {
		t.Error("cancelled same-time event ran")
	}
	if !ran {
		t.Error("sibling same-time event did not run")
	}
}

// TestSameTimeBurstOrder: a burst of zero-delay events fires in schedule
// order, after every event already queued for the same instant.
func TestSameTimeBurstOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.After(10, func() {
		for i := 0; i < 100; i++ {
			i := i
			k.After(0, func() { order = append(order, i) })
		}
	})
	k.After(10, func() { order = append(order, -1) }) // older seq: runs before the burst
	k.Run()
	want := make([]int, 0, 101)
	want = append(want, -1)
	for i := 0; i < 100; i++ {
		want = append(want, i)
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want -1 then 0..99", order)
	}
}

// TestPendingEventsCounter: the O(1) live-event counter agrees with
// schedule/Stop/fire activity, including double Stops.
func TestPendingEventsCounter(t *testing.T) {
	k := NewKernel(1)
	tms := make([]Timer, 0, 10)
	for i := 0; i < 10; i++ {
		tms = append(tms, k.After(Time(i), func() {})) // i==0 exercises the FIFO
	}
	if got := k.PendingEvents(); got != 10 {
		t.Fatalf("PendingEvents = %d, want 10", got)
	}
	for i := 0; i < 3; i++ {
		if !tms[i].Stop() {
			t.Fatalf("Stop %d failed", i)
		}
	}
	if got := k.PendingEvents(); got != 7 {
		t.Fatalf("PendingEvents = %d after 3 stops, want 7", got)
	}
	tms[0].Stop() // double Stop must not double-decrement
	if got := k.PendingEvents(); got != 7 {
		t.Fatalf("PendingEvents = %d after double stop, want 7", got)
	}
	k.Run()
	if got := k.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents = %d after drain, want 0", got)
	}
}

// TestScheduleCancelFuzz drives randomized schedule/cancel interleavings —
// including scheduling and cancelling from inside callbacks, which is where
// pooled events get recycled mid-run — against a simple model: every
// non-cancelled event fires exactly once, in (time, schedule-order) order.
func TestScheduleCancelFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		k := NewKernel(1)
		type rec struct {
			id        int
			at        Time
			cancelled bool
		}
		var model []*rec
		var timers []Timer
		var fired []int
		nextID := 0

		cancelRandom := func() {
			if len(timers) == 0 {
				return
			}
			j := rng.Intn(len(timers))
			if timers[j].Stop() {
				model[j].cancelled = true
			}
		}
		var schedule func(depth int)
		schedule = func(depth int) {
			id := nextID
			nextID++
			at := k.Now() + Time(rng.Intn(50))
			model = append(model, &rec{id: id, at: at})
			timers = append(timers, k.At(at, func() {
				fired = append(fired, id)
				if depth < 3 && rng.Intn(3) == 0 {
					schedule(depth + 1)
				}
				if rng.Intn(3) == 0 {
					cancelRandom()
				}
			}))
		}
		for i := 0; i < 40; i++ {
			schedule(0)
			if rng.Intn(4) == 0 {
				cancelRandom()
			}
		}
		k.Run()

		type pair struct {
			at Time
			id int
		}
		var pairs []pair
		for _, r := range model {
			if !r.cancelled {
				pairs = append(pairs, pair{r.at, r.id})
			}
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].at != pairs[j].at {
				return pairs[i].at < pairs[j].at
			}
			return pairs[i].id < pairs[j].id
		})
		want := make([]int, len(pairs))
		for i, p := range pairs {
			want[i] = p.id
		}
		if !reflect.DeepEqual(fired, want) {
			t.Fatalf("trial %d: fired = %v, want %v", trial, fired, want)
		}
		if k.PendingEvents() != 0 {
			t.Fatalf("trial %d: %d events pending after drain", trial, k.PendingEvents())
		}
	}
}
