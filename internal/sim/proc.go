package sim

import "fmt"

// Aborted is the panic value a process unwinds with after Abort. Spawned
// bodies that support cancellation recover it, run their cleanup, and return;
// an unrecovered Aborted propagates out of the kernel loop like any other
// process panic, so aborting a process that does not expect it fails loudly.
type Aborted struct{}

func (Aborted) Error() string { return "sim: process aborted" }

// Proc is a simulated process: a Go function running on its own goroutine
// under the kernel's strict hand-off discipline. A Proc may park itself
// (Park, Sleep) and be woken by kernel-context code (Wake). Blocking
// primitives built on Park/Wake — CPU bursts, message receives, memory
// allocation — live in higher-level packages.
type Proc struct {
	k    *Kernel
	id   int
	name string

	resume chan struct{}

	parked     bool
	parkReason string
	permit     bool // a Wake arrived while the process was running
	kill       bool
	aborted    bool
	finished   bool
}

// Spawn creates a simulated process and schedules its body to start at the
// current simulated time. The body runs in kernel context under the hand-off
// discipline: it may call any kernel API, park itself, and wake other procs.
// Spawn may be called from kernel context or before Run.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	if k.stopped {
		panic("sim: Spawn after Shutdown")
	}
	k.nextPID++
	p := &Proc{
		k:      k,
		id:     k.nextPID,
		name:   name,
		resume: make(chan struct{}),
	}
	k.procs[p] = struct{}{}
	k.AfterFunc(0, func() {
		go p.run(body)
		// Hand control to the new goroutine and wait for it to park, finish,
		// or panic.
		p.resume <- struct{}{}
		<-k.yield
	})
	return p
}

func (p *Proc) run(body func(*Proc)) {
	<-p.resume
	defer func() {
		r := recover()
		p.finished = true
		p.parked = false
		delete(p.k.procs, p)
		if r != nil {
			if _, isKill := r.(killSentinel); !isKill {
				// Propagate real panics to the kernel loop.
				p.k.procPanic = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
				p.k.panicking = true
			}
		}
		p.k.yield <- struct{}{}
	}()
	if p.kill {
		panic(killSentinel{})
	}
	body(p)
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the kernel-unique process id (assigned in spawn order).
func (p *Proc) ID() int { return p.id }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Park blocks the process until another piece of kernel-context code calls
// Wake on it. If a Wake was delivered while the process was running (a
// "permit"), Park consumes it and returns immediately. The reason string is
// reported by Kernel.ParkedProcs for stall diagnosis.
//
// Park must only be called by the process itself.
func (p *Proc) Park(reason string) {
	if p.aborted {
		panic(Aborted{})
	}
	if p.permit {
		p.permit = false
		return
	}
	p.parked = true
	p.parkReason = reason
	p.k.yield <- struct{}{}
	<-p.resume
	if p.kill {
		panic(killSentinel{})
	}
	if p.aborted {
		panic(Aborted{})
	}
}

// Abort requests the process to unwind with an Aborted panic at its next
// park point (or immediately on resume if it is parked now). Blocking
// primitives deregister their wait state during the unwind, so an aborted
// process leaves no dangling waiters. Abort must be called from kernel
// context; aborting a finished process is a no-op.
func (p *Proc) Abort() {
	if p.finished || p.aborted {
		return
	}
	p.aborted = true
	if p.parked {
		p.Wake()
	}
}

// Aborting reports whether an abort has been requested for the process.
func (p *Proc) Aborting() bool { return p.aborted }

// Wake makes a parked process runnable again. The process resumes via a
// kernel event at the current simulated time (after already-queued events).
// If the process is not parked, the wake is remembered as a permit so the
// next Park returns immediately. A Wake arriving between a previous Wake and
// the resume event also becomes a permit, so Park can return spuriously;
// callers must re-check their wait condition in a loop around Park.
//
// Wake must be called from kernel context (an event callback or another
// process body), never from outside the simulation.
func (p *Proc) Wake() {
	if p.finished {
		return
	}
	if !p.parked {
		p.permit = true
		return
	}
	p.parked = false
	p.parkReason = ""
	p.k.AfterFunc(0, func() {
		if p.finished {
			return
		}
		p.resume <- struct{}{}
		<-p.k.yield
	})
}

// Sleep suspends the process for d microseconds of simulated time. Even a
// zero-length sleep yields through the event queue so other events scheduled
// for the current time get to run. Sleep is robust against spurious wakes
// (Wakes aimed at a different wait of the same process): it re-parks until
// its own timer has fired.
func (p *Proc) Sleep(d Time) {
	done := false
	p.k.AfterFunc(d, func() {
		done = true
		p.Wake()
	})
	for !done {
		p.Park(fmt.Sprintf("sleep %s", d))
	}
}

// Finished reports whether the process body has returned.
func (p *Proc) Finished() bool { return p.finished }
