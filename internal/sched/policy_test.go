package sched

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestPolicySpecLegacyRoundTrip: every legacy policy factors into a unique
// component triple that resolves, canonicalizes and renders back to itself.
func TestPolicySpecLegacyRoundTrip(t *testing.T) {
	seen := map[PolicySpec]Policy{}
	for p := Static; p <= DynamicSpace; p++ {
		spec := p.Spec()
		if prev, dup := seen[spec]; dup {
			t.Fatalf("%v and %v share the spec %+v — Legacy() would be ambiguous", prev, p, spec)
		}
		seen[spec] = p
		if canon, ok := spec.Legacy(); !ok || canon != p {
			t.Errorf("%v.Spec().Legacy() = %v, %v", p, canon, ok)
		}
		if spec.String() != p.String() {
			t.Errorf("%v.Spec().String() = %q, want the legacy name", p, spec.String())
		}
		resolved, err := ResolveSpec(p, PartDefault, QuantumDefault, OrderDefault)
		if err != nil || resolved != spec {
			t.Errorf("ResolveSpec(%v, defaults) = %+v, %v", p, resolved, err)
		}
		// Spelling the composite out explicitly resolves to the same spec.
		explicit, err := ResolveSpec(p, spec.Partition, spec.Quantum, spec.Order)
		if err != nil || explicit != spec {
			t.Errorf("explicit ResolveSpec(%v) = %+v, %v", p, explicit, err)
		}
	}
}

// TestPolicySpecComposedString: genuinely new compositions render as the
// partition/quantum/order triple and report no legacy equivalent.
func TestPolicySpecComposedString(t *testing.T) {
	spec, err := ResolveSpec(TimeShared, PartDefault, QuantumDynamic, OrderSRPT)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := spec.Legacy(); ok {
		t.Errorf("composed spec %+v claims a legacy equivalent", spec)
	}
	if got := spec.String(); got != "shared/dynamic/srpt" {
		t.Errorf("composed String() = %q", got)
	}
	equi, err := ResolveSpec(DynamicSpace, PartEqui, QuantumDefault, OrderDefault)
	if err != nil {
		t.Fatal(err)
	}
	if got := equi.String(); got != "equi/none/fcfs" {
		t.Errorf("equi String() = %q", got)
	}
}

// TestPolicyKindParseRoundTrip: every registered name and alias parses, the
// canonical name round-trips through String, and the discovery listings
// agree with the parsers.
func TestPolicyKindParseRoundTrip(t *testing.T) {
	for _, info := range PartitionPolicies() {
		k, err := ParsePartitionKind(info.Name)
		if err != nil || k.String() != info.Name {
			t.Errorf("partition %q: parse = %v, %v", info.Name, k, err)
		}
		for _, a := range info.Aliases {
			if ak, err := ParsePartitionKind(a); err != nil || ak != k {
				t.Errorf("partition alias %q: parse = %v, %v", a, ak, err)
			}
		}
	}
	for _, info := range QuantumPolicies() {
		k, err := ParseQuantumKind(info.Name)
		if err != nil || k.String() != info.Name {
			t.Errorf("quantum %q: parse = %v, %v", info.Name, k, err)
		}
		for _, a := range info.Aliases {
			if ak, err := ParseQuantumKind(a); err != nil || ak != k {
				t.Errorf("quantum alias %q: parse = %v, %v", a, ak, err)
			}
		}
	}
	for _, info := range QueueOrders() {
		k, err := ParseOrderKind(info.Name)
		if err != nil || k.String() != info.Name {
			t.Errorf("order %q: parse = %v, %v", info.Name, k, err)
		}
		for _, a := range info.Aliases {
			if ak, err := ParseOrderKind(a); err != nil || ak != k {
				t.Errorf("order alias %q: parse = %v, %v", a, ak, err)
			}
		}
	}
	for _, info := range Policies() {
		p, err := ParsePolicy(info.Name)
		if err != nil || p.String() != info.Name {
			t.Errorf("policy %q: parse = %v, %v", info.Name, p, err)
		}
		if info.Spec != p.Spec().Partition.String()+"/"+p.Spec().Quantum.String()+"/"+p.Spec().Order.String() {
			t.Errorf("policy %q listing spec %q disagrees with Spec()", info.Name, info.Spec)
		}
	}
}

// TestUnknownPolicyErrorTyped: rejected names produce an UnknownPolicyError
// carrying the full valid vocabulary.
func TestUnknownPolicyErrorTyped(t *testing.T) {
	_, err := ParseQuantumKind("warp")
	var upe *UnknownPolicyError
	if !errors.As(err, &upe) {
		t.Fatalf("ParseQuantumKind error %T is not *UnknownPolicyError", err)
	}
	if upe.Kind != "quantum policy" || upe.Name != "warp" {
		t.Errorf("error fields: %+v", upe)
	}
	for _, want := range []string{"none", "rrjob", "fixed", "gang", "dynamic"} {
		found := false
		for _, v := range upe.Valid {
			if v == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Valid %v missing %q", upe.Valid, want)
		}
	}
	if !strings.Contains(err.Error(), "rrjob") {
		t.Errorf("message does not list valid names: %v", err)
	}
	// Component overrides on an unknown base policy fail the same way.
	if _, err := ResolveSpec(Policy(99), PartEqui, QuantumDefault, OrderDefault); err == nil {
		t.Error("ResolveSpec accepted an unknown base policy")
	}
}

// FuzzParsePolicyComponents: for arbitrary input, each component parser
// either round-trips through the canonical String spelling or fails with
// the typed error and a non-empty vocabulary — never panics, never returns
// an untyped failure.
func FuzzParsePolicyComponents(f *testing.F) {
	for _, s := range []string{"", "static", "srpt", "rr-job", "equi", "warp", ":", "default", "shared/dynamic/srpt"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if k, err := ParsePartitionKind(s); err == nil {
			if rt, err2 := ParsePartitionKind(k.String()); err2 != nil || rt != k {
				t.Errorf("partition %q: canonical %q does not round-trip", s, k.String())
			}
		} else {
			var upe *UnknownPolicyError
			if !errors.As(err, &upe) || len(upe.Valid) == 0 {
				t.Errorf("partition %q: untyped error %v", s, err)
			}
		}
		if k, err := ParseQuantumKind(s); err == nil {
			if rt, err2 := ParseQuantumKind(k.String()); err2 != nil || rt != k {
				t.Errorf("quantum %q: canonical %q does not round-trip", s, k.String())
			}
		} else {
			var upe *UnknownPolicyError
			if !errors.As(err, &upe) || len(upe.Valid) == 0 {
				t.Errorf("quantum %q: untyped error %v", s, err)
			}
		}
		if k, err := ParseOrderKind(s); err == nil {
			if rt, err2 := ParseOrderKind(k.String()); err2 != nil || rt != k {
				t.Errorf("order %q: canonical %q does not round-trip", s, k.String())
			}
		} else {
			var upe *UnknownPolicyError
			if !errors.As(err, &upe) || len(upe.Valid) == 0 {
				t.Errorf("order %q: untyped error %v", s, err)
			}
		}
	})
}

// TestEnqueueOrderProperty: the stable ready-queue insert keeps the queue
// sorted under each QueueOrder and preserves arrival order among peers the
// order considers equal.
func TestEnqueueOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orders := []QueueOrder{fcfsOrder{}, priorityOrder{}, srptOrder{}}
	for _, ord := range orders {
		s := &System{order: ord}
		var q []*jobState
		for i := 0; i < 200; i++ {
			js := &jobState{job: &workload.Job{
				ID:       i,
				Priority: rng.Intn(3),
				App:      workload.NewSynthetic(sim.Time(1+rng.Intn(50))*sim.Millisecond, 64, 256, workload.DefaultAppCost()),
			}}
			q = s.enqueue(q, js)
		}
		for i := 0; i+1 < len(q); i++ {
			if ord.Before(q[i+1], q[i]) {
				t.Fatalf("%T: queue out of order at %d", ord, i)
			}
		}
		// Equal elements keep arrival order: a stable re-insert of the same
		// queue must reproduce it exactly.
		s2 := &System{order: ord}
		var q2 []*jobState
		for _, js := range q {
			q2 = s2.enqueue(q2, js)
		}
		for i := range q {
			if eq := !ord.Before(q[i], q2[i]) && !ord.Before(q2[i], q[i]); !eq {
				t.Fatalf("%T: re-insert changed relative order at %d", ord, i)
			}
		}
	}
}

// TestDynQuantumFormula: Q = (P/(T·R))·q with clamps and the microsecond
// floor.
func TestDynQuantumFormula(t *testing.T) {
	s := &System{cfg: Config{BasicQuantum: 8 * sim.Millisecond}}
	part := &Partition{size: 8}
	cases := []struct {
		t, r int
		want sim.Time
	}{
		{8, 1, 8 * sim.Millisecond},       // degenerates to RR-job
		{8, 2, 4 * sim.Millisecond},       // second resident halves the slice
		{4, 4, 4 * sim.Millisecond},       // 8*8ms/16
		{0, 0, 64 * sim.Millisecond},      // clamps t and r to 1
		{100000, 100000, sim.Microsecond}, // floored at 1µs
	}
	for _, c := range cases {
		if got := dynQuantum(s, part, c.t, c.r); got != c.want {
			t.Errorf("dynQuantum(t=%d, r=%d) = %v, want %v", c.t, c.r, got, c.want)
		}
	}
}

// TestDynamicQuantumCompletesAndIsDeterministic: the dynamic-quantum zoo
// policy runs a batch to completion, twice, identically.
func TestDynamicQuantumCompletesAndIsDeterministic(t *testing.T) {
	once := func() (sim.Time, sim.Time) {
		mach := testMachine(4)
		res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Ring, Policy: TimeShared,
			QuantumPolicy: QuantumDynamic, BasicQuantum: 2 * sim.Millisecond},
			syntheticBatch(6, 30*sim.Millisecond, workload.Adaptive))
		if len(res.Jobs) != 6 {
			t.Fatalf("jobs = %d", len(res.Jobs))
		}
		for _, n := range mach.Nodes {
			if n.Mem.Used() != 0 {
				t.Errorf("node %d memory leaked", n.ID)
			}
		}
		return res.MeanResponse(), res.Makespan
	}
	m1, mk1 := once()
	m2, mk2 := once()
	if m1 != m2 || mk1 != mk2 {
		t.Errorf("dynamic quantum nondeterministic: %v/%v vs %v/%v", m1, mk1, m2, mk2)
	}
}

// TestSRPTDrainsShortestFirst: with one static partition, the SRPT queue
// completes the short jobs before the long ones regardless of submission
// order.
func TestSRPTDrainsShortestFirst(t *testing.T) {
	batch := make(workload.Batch, 6)
	for i := range batch {
		w := 20 * sim.Millisecond
		class := "small"
		if i%2 == 0 { // long jobs submitted first and interleaved
			w = 200 * sim.Millisecond
			class = "large"
		}
		batch[i] = &workload.Job{ID: i, Class: class, Arch: workload.Adaptive,
			App: workload.NewSynthetic(w, 256, 1024, workload.DefaultAppCost())}
	}
	mach := testMachine(4)
	res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Ring, Policy: Static,
		QueueOrder: OrderSRPT}, batch)
	if len(res.Jobs) != 6 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	// Completion order: after the head-of-line job, every small job beats
	// every large job.
	var classes []string
	for _, j := range res.Jobs {
		classes = append(classes, j.Class)
	}
	for i := 1; i < len(classes)-1; i++ {
		if classes[i] == "large" {
			for _, later := range classes[i+1:] {
				if later == "small" {
					t.Fatalf("SRPT completed a large job before a small one: %v", classes)
				}
			}
		}
	}
}

// TestPriorityOrderBreaksTiesByWork: within one priority band the priority
// queue prefers shorter estimated work; across bands priority still wins.
func TestPriorityOrderBreaksTiesByWork(t *testing.T) {
	mk := func(pri int, w sim.Time) *jobState {
		return &jobState{job: &workload.Job{Priority: pri,
			App: workload.NewSynthetic(w, 64, 256, workload.DefaultAppCost())}}
	}
	ord := priorityOrder{}
	long, short := mk(0, 100*sim.Millisecond), mk(0, 10*sim.Millisecond)
	if !ord.Before(short, long) || ord.Before(long, short) {
		t.Error("same band: shorter work should come first")
	}
	lowShort, highLong := mk(0, 10*sim.Millisecond), mk(1, 100*sim.Millisecond)
	if !ord.Before(highLong, lowShort) {
		t.Error("higher priority must beat shorter work")
	}
	// SRPT ignores bands entirely.
	if (srptOrder{}).Before(highLong, lowShort) {
		t.Error("srpt should ignore priority bands")
	}
}
