package sched

// QueueOrder implementations. The order applies wherever jobs wait: the
// global ready queue of the space-sharing policies and the per-partition
// admission queues of the time-sharing policies (when MaxResident caps the
// set size). Insertion is stable — see System.enqueue — so ties always
// break by arrival.

import "repro/internal/sim"

// estRemaining estimates a job's remaining sequential work: the app's total
// demand minus checkpointed credit (a restarted job replays its snapshot,
// so only the work past it remains).
func estRemaining(js *jobState) sim.Time {
	w := js.job.App.SequentialWork()
	for _, c := range js.ckpt {
		w -= c
	}
	if w < 0 {
		w = 0
	}
	return w
}

// fcfsOrder is the paper's ready queue: explicit priority bands (higher
// first), arrival order within a band. This is exactly the pre-framework
// insert, so it is the bit-identical default.
type fcfsOrder struct{}

func (fcfsOrder) Kind() OrderKind { return OrderFCFS }

func (fcfsOrder) Before(a, b *jobState) bool {
	return a.job.Priority > b.job.Priority
}

// priorityOrder refines the bands: within a priority band, the job with the
// least estimated work runs first.
type priorityOrder struct{}

func (priorityOrder) Kind() OrderKind { return OrderPriority }

func (priorityOrder) Before(a, b *jobState) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	return estRemaining(a) < estRemaining(b)
}

// srptOrder runs the job with the shortest remaining estimated work first,
// ignoring explicit priorities — SRPT-like (selection is preemptive only
// across dispatch decisions; running jobs are not displaced).
type srptOrder struct{}

func (srptOrder) Kind() OrderKind { return OrderSRPT }

func (srptOrder) Before(a, b *jobState) bool {
	return estRemaining(a) < estRemaining(b)
}
