package sched

import (
	"repro/internal/comm"
	"repro/internal/topology"
)

// Dynamic space-sharing (extension policy): instead of fixed equal
// partitions, processors are allocated per job from a buddy pool of
// contiguous power-of-two blocks, sized by an equipartition heuristic —
// roughly the machine divided by the number of jobs in the system, so the
// system adapts partition size to load. This is the policy family the
// paper's §2.1 points to (and its reference [5], "Dynamic Partitioning in
// a Transputer Environment") but does not implement. Jobs run to
// completion on their block, like static space-sharing.
//
// Under the adaptive software architecture this gives each job exactly the
// parallelism the load allows; under the fixed architecture the 16
// processes fold onto whatever block is granted.

// dynArrive queues a job and schedules placement. Dispatch is deferred by
// one event so that all jobs arriving at the same instant are visible to
// the equipartition heuristic before any block is granted.
func (s *System) dynArrive(js *jobState) {
	s.pending = s.enqueue(s.pending, js)
	s.k.AfterFunc(0, s.dynDispatch)
}

// dynTargetSize picks the block size for the next job: the machine
// equipartitioned over jobs currently in the system (running + queued),
// rounded down to a power of two, clamped to [1, MaxPartition] and to what
// the pool can actually provide.
func (s *System) dynTargetSize() int {
	inSystem := s.dynRunning + len(s.pending)
	if inSystem < 1 {
		inSystem = 1
	}
	size := s.cfg.Machine.Size() / inSystem
	if size < 1 {
		size = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= size {
		p *= 2
	}
	if max := s.dynMaxBlock(); p > max {
		p = max
	}
	if largest := s.pool.largest(); p > largest {
		p = largest
	}
	return p
}

// dynMaxBlock is the configured cap on a single job's block
// (Config.PartitionSize doubles as the cap for this policy).
func (s *System) dynMaxBlock() int {
	if s.cfg.PartitionSize > 0 {
		return s.cfg.PartitionSize
	}
	return s.cfg.Machine.Size()
}

// dynDispatch places queued jobs while blocks are available.
func (s *System) dynDispatch() {
	for len(s.pending) > 0 {
		size := s.dynTargetSize()
		if size < 1 {
			return // pool exhausted
		}
		start, ok := s.pool.alloc(size)
		if !ok {
			return
		}
		js := s.pending[0]
		s.pending = s.pending[1:]
		nodes := make([]int, size)
		for i := range nodes {
			nodes[i] = start + i
		}
		// Block sizes were all validated buildable in New, so failure here is
		// an internal invariant violation.
		part := &Partition{
			idx:  start,
			size: size,
			net:  comm.MustNewNetwork(s.cfg.Machine, nodes, topology.MustBuild(s.cfg.Topology, size), s.cfg.Mode),
			busy: true,
		}
		part.net.SetTracer(s.cfg.Tracer)
		s.dynParts = append(s.dynParts, part)
		s.dynRunning++
		s.launch(part, js)
	}
}

// dynComplete returns a job's block to the pool and re-dispatches.
func (s *System) dynComplete(js *jobState) {
	s.pool.release(js.part.idx)
	s.dynRunning--
	s.dynDispatch()
}
