package sched

// The pluggable policy framework. The paper's disciplines — and the zoo of
// extensions — decompose into three orthogonal components:
//
//   - PartitionPolicy: how the machine is carved into partitions and how
//     jobs map onto them (fixed one-job partitions, fixed shared
//     partitions, per-job buddy blocks, malleable equipartition).
//   - QuantumPolicy: how a job's preemption quantum is derived (none,
//     the paper's Q=(P/T)·q rule, fixed per process, gang rotation,
//     dynamic per-group).
//   - QueueOrder: how waiting jobs are ordered (FCFS within priority
//     bands, priority + shortest-work, SRPT-like).
//
// The legacy Policy enum names five composites of these components and
// remains the configuration surface for the paper's experiments. The
// default contract is bit-identity: resolving a legacy Policy with
// zero-valued component overrides yields policy objects whose composed
// behaviour — event order, quanta, queue positions, stats labels — is
// exactly the pre-framework code path, so every golden output and every
// canonical config hash is unchanged.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// PartitionKind selects a PartitionPolicy implementation.
type PartitionKind int

const (
	// PartDefault derives the partition policy from the legacy Policy.
	PartDefault PartitionKind = iota
	// PartFixed is equal fixed partitions, one job each, run to completion
	// (the static policy's allocation).
	PartFixed
	// PartShared is equal fixed partitions with jobs distributed equitably
	// and time-shared (the RR-job/hybrid allocation).
	PartShared
	// PartBuddy carves per-job contiguous power-of-two blocks from a buddy
	// pool, equipartition-sized at arrival, run to completion.
	PartBuddy
	// PartEqui is malleable equipartitioning: per-job buddy blocks re-sized
	// at every arrival and departure; running jobs migrate to their new
	// block carrying their compute credit.
	PartEqui
)

// QuantumKind selects a QuantumPolicy implementation.
type QuantumKind int

const (
	// QuantumDefault derives the quantum policy from the legacy Policy.
	QuantumDefault QuantumKind = iota
	// QuantumNone leaves the hardware default quantum in place.
	QuantumNone
	// QuantumRRJob is the paper's rule Q = (P/T)·q: equal processing power
	// per job rather than per process.
	QuantumRRJob
	// QuantumFixed gives every process the same basic quantum q.
	QuantumFixed
	// QuantumGang coschedules: whole jobs rotate every basic quantum.
	QuantumGang
	// QuantumDynamic re-derives per-group quanta as the partition's
	// resident set changes: Q = (P/(T·R))·q for R resident jobs, so the
	// slice adapts to load instead of being fixed at launch.
	QuantumDynamic
)

// OrderKind selects a QueueOrder implementation.
type OrderKind int

const (
	// OrderDefault derives the queue order from the legacy Policy.
	OrderDefault OrderKind = iota
	// OrderFCFS is arrival order within explicit priority bands — the
	// paper's ready queue.
	OrderFCFS
	// OrderPriority orders by explicit priority bands, then shortest
	// estimated work within a band.
	OrderPriority
	// OrderSRPT orders by shortest remaining estimated work, ignoring
	// explicit priorities.
	OrderSRPT
)

// PolicySpec is a fully-resolved policy triple: no component is a Default.
type PolicySpec struct {
	Partition PartitionKind
	Quantum   QuantumKind
	Order     OrderKind
}

// Spec returns the component triple a legacy policy is composed of.
func (p Policy) Spec() PolicySpec {
	switch p {
	case Static:
		return PolicySpec{PartFixed, QuantumNone, OrderFCFS}
	case TimeShared:
		return PolicySpec{PartShared, QuantumRRJob, OrderFCFS}
	case RRProcess:
		return PolicySpec{PartShared, QuantumFixed, OrderFCFS}
	case Gang:
		return PolicySpec{PartShared, QuantumGang, OrderFCFS}
	case DynamicSpace:
		return PolicySpec{PartBuddy, QuantumNone, OrderFCFS}
	default:
		return PolicySpec{}
	}
}

// ResolveSpec composes the effective policy triple from a legacy policy and
// per-component overrides; zero-valued overrides inherit from the policy.
// This is the single resolution point the scheduler, the config hash and
// the labels all share, so a config written either way means — and hashes —
// the same thing.
func ResolveSpec(p Policy, pk PartitionKind, qk QuantumKind, ok OrderKind) (PolicySpec, error) {
	base := p.Spec()
	if base == (PolicySpec{}) {
		return PolicySpec{}, &UnknownPolicyError{Kind: "policy", Name: p.String(), Valid: policyNames()}
	}
	spec := base
	if pk != PartDefault {
		if partitionKinds.name(int(pk)) == "" {
			return PolicySpec{}, &UnknownPolicyError{Kind: "partition policy", Name: fmt.Sprintf("%d", int(pk)), Valid: partitionKinds.names()}
		}
		spec.Partition = pk
	}
	if qk != QuantumDefault {
		if quantumKinds.name(int(qk)) == "" {
			return PolicySpec{}, &UnknownPolicyError{Kind: "quantum policy", Name: fmt.Sprintf("%d", int(qk)), Valid: quantumKinds.names()}
		}
		spec.Quantum = qk
	}
	if ok != OrderDefault {
		if orderKinds.name(int(ok)) == "" {
			return PolicySpec{}, &UnknownPolicyError{Kind: "queue order", Name: fmt.Sprintf("%d", int(ok)), Valid: orderKinds.names()}
		}
		spec.Order = ok
	}
	return spec, nil
}

// Legacy returns the built-in Policy whose component triple equals the
// spec, if there is one. The five built-in triples are pairwise distinct,
// so the mapping is unambiguous.
func (spec PolicySpec) Legacy() (Policy, bool) {
	for p := Static; p <= DynamicSpace; p++ {
		if p.Spec() == spec {
			return p, true
		}
	}
	return 0, false
}

// String renders the spec canonically: the legacy policy name when the
// triple is one of the five composites (which keeps result labels and CSV
// rows byte-identical to the pre-framework code), the slash-joined
// component names otherwise.
func (spec PolicySpec) String() string {
	if p, ok := spec.Legacy(); ok {
		return p.String()
	}
	return spec.Partition.String() + "/" + spec.Quantum.String() + "/" + spec.Order.String()
}

// policies builds the three policy objects of the spec. Resolution already
// validated every component.
func (spec PolicySpec) policies() (PartitionPolicy, QuantumPolicy, QueueOrder) {
	var pp PartitionPolicy
	switch spec.Partition {
	case PartFixed:
		pp = fixedPartition{}
	case PartShared:
		pp = sharedPartition{}
	case PartBuddy:
		pp = buddyPartition{}
	case PartEqui:
		pp = equiPartition{}
	}
	var qp QuantumPolicy
	switch spec.Quantum {
	case QuantumNone:
		qp = noQuantum{}
	case QuantumRRJob:
		qp = rrJobQuantum{}
	case QuantumFixed:
		qp = fixedQuantum{}
	case QuantumGang:
		qp = gangQuantum{}
	case QuantumDynamic:
		qp = dynamicQuantum{}
	}
	var qo QueueOrder
	switch spec.Order {
	case OrderFCFS:
		qo = fcfsOrder{}
	case OrderPriority:
		qo = priorityOrder{}
	case OrderSRPT:
		qo = srptOrder{}
	}
	return pp, qp, qo
}

// PartitionPolicy decides how the machine is carved into partitions and how
// jobs enter, leave and (after a fault) re-enter them. Implementations are
// stateless values; all mutable state lives on the System so the policy
// objects compose freely.
type PartitionPolicy interface {
	// Kind identifies the policy.
	Kind() PartitionKind
	// Setup builds the partition state at System construction.
	Setup(s *System) error
	// Arrive schedules a job's entry into the system; idx is the job's
	// batch position (the shared policies deal jobs round-robin by it).
	Arrive(s *System, js *jobState, idx int)
	// Complete releases a finished job's processors and dispatches
	// successors.
	Complete(s *System, js *jobState)
	// Killed reclaims a partition's slot after a fault kill tore its
	// resident job down.
	Killed(s *System, part *Partition)
	// Requeue returns a fault-killed job to a ready queue.
	Requeue(s *System, js *jobState)
	// Healthy dispatches waiting work when part returns to full health.
	Healthy(s *System, part *Partition)
}

// QuantumPolicy derives per-process time slices and reacts to residency
// changes on a partition.
type QuantumPolicy interface {
	// Kind identifies the policy.
	Kind() QuantumKind
	// QuantumFor is the per-process timeslice for a job of t processes on
	// part; 0 leaves the hardware default in place.
	QuantumFor(s *System, part *Partition, t int) sim.Time
	// Started runs after a loaded job's tasks are bound and quanta applied,
	// before its processes spawn.
	Started(s *System, part *Partition, js *jobState)
	// Departed runs when a launched job leaves its partition — completion,
	// fault kill or migration — after it is removed from the resident list.
	Departed(s *System, part *Partition, js *jobState)
}

// QueueOrder ranks waiting jobs. Insertion is stable: a job is placed after
// every queued job it does not strictly precede, so equal jobs keep FCFS
// order.
type QueueOrder interface {
	// Kind identifies the order.
	Kind() OrderKind
	// Before reports whether a must run strictly before b.
	Before(a, b *jobState) bool
}

// enqueue inserts js into q under the system's queue order, stable within
// ties.
func (s *System) enqueue(q []*jobState, js *jobState) []*jobState {
	at := len(q)
	for at > 0 && s.order.Before(js, q[at-1]) {
		at--
	}
	q = append(q, nil)
	copy(q[at+1:], q[at:])
	q[at] = js
	return q
}

// UnknownPolicyError reports an unrecognised policy, component or spec
// name, carrying the valid choices so callers (CLI, HTTP API) can surface
// them. Matched with errors.As.
type UnknownPolicyError struct {
	// Kind is what was being parsed: "policy", "partition policy",
	// "quantum policy", "queue order" or "policy spec".
	Kind string
	// Name is the rejected input.
	Name string
	// Valid lists the accepted names, aliases included.
	Valid []string
}

func (e *UnknownPolicyError) Error() string {
	return fmt.Sprintf("sched: unknown %s %q (valid: %s)", e.Kind, e.Name, strings.Join(e.Valid, ", "))
}

// kindTable is a registry of component names: canonical spelling first,
// aliases after, one entry per kind value starting at 1 (0 is the Default
// sentinel, which has no name — it means "inherit from Policy").
type kindTable struct {
	what    string
	entries []kindEntry
}

type kindEntry struct {
	names []string // canonical first
	desc  string
}

// name returns the canonical name of kind v, or "" when out of range.
func (t *kindTable) name(v int) string {
	if v < 1 || v > len(t.entries) {
		return ""
	}
	return t.entries[v-1].names[0]
}

// names lists every accepted spelling, canonical names first.
func (t *kindTable) names() []string {
	var canon, aliases []string
	for _, e := range t.entries {
		canon = append(canon, e.names[0])
		aliases = append(aliases, e.names[1:]...)
	}
	sort.Strings(aliases)
	return append(canon, aliases...)
}

// parse resolves a name to its kind value (1-based), or a typed error.
func (t *kindTable) parse(s string) (int, error) {
	for i, e := range t.entries {
		for _, n := range e.names {
			if s == n {
				return i + 1, nil
			}
		}
	}
	return 0, &UnknownPolicyError{Kind: t.what, Name: s, Valid: t.names()}
}

var partitionKinds = kindTable{what: "partition policy", entries: []kindEntry{
	{[]string{"static", "fixed"}, "equal fixed partitions, one job each, run to completion"},
	{[]string{"shared", "time-shared"}, "equal fixed partitions, jobs distributed equitably and time-shared"},
	{[]string{"buddy", "dynamic"}, "per-job power-of-two blocks from a buddy pool, equipartition-sized at arrival, run to completion"},
	{[]string{"equi", "malleable"}, "malleable equipartition: blocks re-sized on every arrival and departure, running jobs migrate with their compute credit"},
}}

var quantumKinds = kindTable{what: "quantum policy", entries: []kindEntry{
	{[]string{"none", "off"}, "no preemption quantum beyond the hardware default"},
	{[]string{"rrjob", "rr-job"}, "Q=(P/T)·q — equal processing power per job (the paper's RR-job rule)"},
	{[]string{"fixed", "rr-process"}, "every process gets the basic quantum q"},
	{[]string{"gang", "cosched"}, "coscheduled rotation: whole jobs alternate every basic quantum"},
	{[]string{"dynamic", "dyn"}, "per-group dynamic quanta: Q=(P/(T·R))·q re-derived as the resident set R changes"},
}}

var orderKinds = kindTable{what: "queue order", entries: []kindEntry{
	{[]string{"fcfs"}, "arrival order within explicit priority bands (the paper's queue)"},
	{[]string{"priority", "prio"}, "explicit priority bands, shortest estimated work within a band"},
	{[]string{"srpt", "sjf"}, "shortest remaining estimated work first"},
}}

func (k PartitionKind) String() string {
	if k == PartDefault {
		return "default"
	}
	if n := partitionKinds.name(int(k)); n != "" {
		return n
	}
	return fmt.Sprintf("PartitionKind(%d)", int(k))
}

func (k QuantumKind) String() string {
	if k == QuantumDefault {
		return "default"
	}
	if n := quantumKinds.name(int(k)); n != "" {
		return n
	}
	return fmt.Sprintf("QuantumKind(%d)", int(k))
}

func (k OrderKind) String() string {
	if k == OrderDefault {
		return "default"
	}
	if n := orderKinds.name(int(k)); n != "" {
		return n
	}
	return fmt.Sprintf("OrderKind(%d)", int(k))
}

// ParsePartitionKind parses a partition-policy name.
func ParsePartitionKind(s string) (PartitionKind, error) {
	v, err := partitionKinds.parse(s)
	return PartitionKind(v), err
}

// ParseQuantumKind parses a quantum-policy name.
func ParseQuantumKind(s string) (QuantumKind, error) {
	v, err := quantumKinds.parse(s)
	return QuantumKind(v), err
}

// ParseOrderKind parses a queue-order name.
func ParseOrderKind(s string) (OrderKind, error) {
	v, err := orderKinds.parse(s)
	return OrderKind(v), err
}

// policyNames lists every accepted legacy policy spelling.
func policyNames() []string {
	return []string{
		"static", "time-shared", "rr-process", "gang", "dynamic",
		"cosched", "dyn", "dynamic-space", "hybrid", "rr-job", "rrp", "space", "space-sharing", "ts",
	}
}

// PolicyInfo describes one registered policy or policy component, for
// discovery surfaces like schedd's GET /v1/policies.
type PolicyInfo struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Description string   `json:"description"`
	// Spec is the composed component triple ("partition/quantum/order");
	// only set for the legacy composite policies.
	Spec string `json:"spec,omitempty"`
}

// info renders a kind table as PolicyInfo entries.
func (t *kindTable) info() []PolicyInfo {
	out := make([]PolicyInfo, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, PolicyInfo{Name: e.names[0], Aliases: e.names[1:], Description: e.desc})
	}
	return out
}

// Policies lists the legacy composite policies with their component specs.
func Policies() []PolicyInfo {
	descs := map[Policy]struct {
		aliases []string
		desc    string
	}{
		Static:       {[]string{"space", "space-sharing"}, "run-to-completion space sharing (§2.1)"},
		TimeShared:   {[]string{"ts", "hybrid", "rr-job"}, "the paper's RR-job time-sharing / hybrid policy (§2.2–2.3)"},
		RRProcess:    {[]string{"rrp"}, "fixed per-process quantum — the unfair round-robin baseline"},
		Gang:         {[]string{"cosched"}, "explicit coscheduling: whole jobs rotate every basic quantum"},
		DynamicSpace: {[]string{"dynamic-space", "dyn"}, "per-job buddy blocks sized by equipartition, run to completion"},
	}
	var out []PolicyInfo
	for p := Static; p <= DynamicSpace; p++ {
		d := descs[p]
		spec := p.Spec()
		out = append(out, PolicyInfo{
			Name:        p.String(),
			Aliases:     d.aliases,
			Description: d.desc,
			Spec:        spec.Partition.String() + "/" + spec.Quantum.String() + "/" + spec.Order.String(),
		})
	}
	return out
}

// PartitionPolicies lists the registered partition policies.
func PartitionPolicies() []PolicyInfo { return partitionKinds.info() }

// QuantumPolicies lists the registered quantum policies.
func QuantumPolicies() []PolicyInfo { return quantumKinds.info() }

// QueueOrders lists the registered queue orders.
func QueueOrders() []PolicyInfo { return orderKinds.info() }
