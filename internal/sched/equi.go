package sched

// Malleable equipartitioning (EQUI, extension policy): like dynamic
// space-sharing, processors are granted per job as contiguous power-of-two
// buddy blocks — but the allocation is malleable. On every arrival and
// departure the system recomputes the equipartition target (machine size
// over jobs in the system, rounded down to a power of two, capped by
// Config.PartitionSize) and *re-sizes running jobs* to it: a job whose
// block differs from the target is torn down, its completed compute
// snapshotted as checkpoint credit, and relaunched on a target-sized block
// where the credit replays instantly. Migration is honest about its cost —
// the image reloads over the shared host link and the processes respawn —
// but no computed work is lost, which is what distinguishes a malleable
// policy from naive kill-and-restart.
//
// This is the EQUI discipline of the parallel-scheduling literature
// (Berg–Dorsman–Harchol-Balter's optimality results build on it), the
// modern baseline the paper's §2.1 partitioning discussion predates.
//
// Determinism: jobs migrate in admission order, waiting jobs start in
// queue order, and the buddy allocator is deterministic, so the event
// sequence is a pure function of the batch. Fault injection is rejected at
// New, exactly as for dynamic space-sharing.

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

type equiPartition struct{}

func (equiPartition) Kind() PartitionKind { return PartEqui }

func (equiPartition) Setup(s *System) error { return setupPool(s, "malleable equipartitioning") }

func (equiPartition) Arrive(s *System, js *jobState, idx int) {
	s.atArrival(js, func() { s.equiArrive(js) })
}

func (equiPartition) Complete(s *System, js *jobState) {
	s.equiComplete(js)
}

// Fault injection is rejected at New for pool-based policies, so the repair
// hooks are unreachable.
func (equiPartition) Killed(s *System, part *Partition)  {}
func (equiPartition) Requeue(s *System, js *jobState)    {}
func (equiPartition) Healthy(s *System, part *Partition) {}

// equiArrive queues a job and schedules a rebalance. Like dynArrive, the
// rebalance is deferred by one event so all jobs arriving at the same
// instant are counted before any block is granted or resized.
func (s *System) equiArrive(js *jobState) {
	s.pending = s.enqueue(s.pending, js)
	s.k.AfterFunc(0, s.equiRebalance)
}

// equiComplete returns a finished job's block and rebalances immediately:
// the freed processors are redistributed to the survivors.
func (s *System) equiComplete(js *jobState) {
	for i, j := range s.equiJobs {
		if j == js {
			s.equiJobs = append(s.equiJobs[:i], s.equiJobs[i+1:]...)
			break
		}
	}
	s.pool.release(js.part.idx)
	s.equiRebalance()
}

// equiTarget is the malleable block size for the current load: the machine
// equipartitioned over jobs in the system, rounded down to a power of two,
// clamped to [1, cap].
func (s *System) equiTarget(inSystem int) int {
	size := s.cfg.Machine.Size() / inSystem
	if size < 1 {
		size = 1
	}
	p := 1
	for p*2 <= size {
		p *= 2
	}
	if max := s.dynMaxBlock(); p > max {
		p = max
	}
	return p
}

// equiRebalance brings the allocation to the equipartition target: running
// jobs on off-target blocks migrate (in admission order), then waiting jobs
// start on target blocks while the pool provides them. Because every kept
// or granted block has the target size and inSystem·target ≤ machine size,
// the allocations always succeed once the migrations have run — except
// when the target clamps to one and there are more jobs than processors,
// in which case the excess simply stays queued.
func (s *System) equiRebalance() {
	inSystem := len(s.equiJobs) + len(s.pending)
	if inSystem == 0 {
		return
	}
	target := s.equiTarget(inSystem)
	for _, js := range append([]*jobState(nil), s.equiJobs...) {
		if js.part == nil || js.part.size == target {
			continue
		}
		s.equiMigrate(js, target)
	}
	for len(s.pending) > 0 {
		start, ok := s.pool.alloc(target)
		if !ok {
			return
		}
		js := s.pending[0]
		s.pending = s.pending[1:]
		s.equiJobs = append(s.equiJobs, js)
		s.equiPlace(js, start, target)
	}
}

// equiMigrate re-sizes one running job: snapshot its compute as checkpoint
// credit, tear it down, and relaunch it on a target-sized block.
func (s *System) equiMigrate(js *jobState, target int) {
	old := js.part
	s.equiRecredit(js, js.job.Procs(target))
	s.equiTeardown(js)
	s.pool.release(old.idx)
	start, ok := s.pool.alloc(target)
	if !ok {
		// Transient fragmentation (possible only while other blocks are
		// still off-target): put the job back at the head of the queue; a
		// later pass of this rebalance or the next one re-places it.
		for i, j := range s.equiJobs {
			if j == js {
				s.equiJobs = append(s.equiJobs[:i], s.equiJobs[i+1:]...)
				break
			}
		}
		s.pending = append([]*jobState{js}, s.pending...)
		return
	}
	s.equiPlace(js, start, target)
}

// equiPlace builds a block partition and launches the job on it. Block
// sizes were all validated buildable in New, so failure here is an internal
// invariant violation.
func (s *System) equiPlace(js *jobState, start, size int) {
	nodes := make([]int, size)
	for i := range nodes {
		nodes[i] = start + i
	}
	part := &Partition{
		idx:  start,
		size: size,
		net:  comm.MustNewNetwork(s.cfg.Machine, nodes, topology.MustBuild(s.cfg.Topology, size), s.cfg.Mode),
		busy: true,
	}
	part.net.SetTracer(s.cfg.Tracer)
	s.dynParts = append(s.dynParts, part)
	s.launch(part, js)
}

// equiRecredit snapshots the job's completed compute into js.ckpt, shaped
// for t processes. When the process count is unchanged the per-rank values
// carry over exactly; when the new block changes it (the adaptive
// architecture), the total credit is redistributed evenly — the malleable
// workloads divide their work evenly across ranks, so this is the honest
// reshape.
func (s *System) equiRecredit(js *jobState, t int) {
	done := make([]sim.Time, len(js.ckpt))
	var total sim.Time
	for r := range js.ckpt {
		c := js.ckpt[r]
		if r < len(js.runtimes) && js.runtimes[r] != nil {
			if d := js.runtimes[r].ComputeDone(); d > c {
				c = d
			}
		}
		done[r] = c
		total += c
	}
	if t == len(done) {
		js.ckpt = done
		return
	}
	js.ckpt = make([]sim.Time, t)
	if t < 1 {
		return
	}
	per := total / sim.Time(t)
	rem := total % sim.Time(t)
	for r := 0; r < t; r++ {
		js.ckpt[r] = per
		if sim.Time(r) < rem {
			js.ckpt[r]++
		}
	}
}

// equiTeardown vacates a job's block for migration: the same mechanics as a
// fault kill — epoch bump orphans the loader, checkpoint timer and rank
// procs; tasks are pulled off the CPUs; mailboxes retire; code pages free —
// but with no fault accounting: nothing failed, and the compute survives as
// credit.
func (s *System) equiTeardown(js *jobState) {
	part := js.part
	js.epoch++
	s.runningNow--
	removeJob(part, js)
	if js.env != nil {
		s.quant.Departed(s, part, js)
		for _, b := range js.env.Ranks {
			if !b.Task.Suspended() {
				b.Task.Suspend()
			}
		}
		for _, p := range js.procs {
			if p != nil {
				p.Abort()
			}
		}
		for _, b := range js.env.Ranks {
			part.net.RetireMailbox(b.Box)
		}
	}
	if js.loaded {
		for i := 0; i < part.size; i++ {
			part.net.NodeOf(i).Mem.FreeBytes(workload.CodeBytes)
		}
	}
	js.env = nil
	js.procs = nil
	js.runtimes = nil
	js.loaded = false
	trace.Emit(s.cfg.Tracer, s.k.Now(), "migrate", js.job.String(),
		fmt.Sprintf("vacating %d-node block at %d", part.size, part.idx))
}
