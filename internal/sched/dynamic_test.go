package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// --- buddy allocator ---------------------------------------------------

func TestBuddyBasics(t *testing.T) {
	b := newBuddy(16)
	if b.largest() != 16 || b.freeNodes() != 16 {
		t.Fatalf("fresh pool: largest=%d free=%d", b.largest(), b.freeNodes())
	}
	start, ok := b.alloc(4)
	if !ok || start != 0 {
		t.Fatalf("alloc(4) = %d, %v", start, ok)
	}
	if b.freeNodes() != 12 {
		t.Errorf("free = %d", b.freeNodes())
	}
	// The remaining space is a 4-block and an 8-block.
	if b.largest() != 8 {
		t.Errorf("largest = %d", b.largest())
	}
	s2, ok := b.alloc(8)
	if !ok || s2 != 8 {
		t.Fatalf("alloc(8) = %d, %v", s2, ok)
	}
	s3, ok := b.alloc(4)
	if !ok || s3 != 4 {
		t.Fatalf("alloc(4) = %d, %v", s3, ok)
	}
	if _, ok := b.alloc(1); ok {
		t.Fatal("pool should be exhausted")
	}
	// Free everything; merging must restore the full block.
	b.release(start)
	b.release(s3)
	b.release(s2)
	if b.largest() != 16 || b.freeNodes() != 16 {
		t.Errorf("after merge: largest=%d free=%d", b.largest(), b.freeNodes())
	}
}

func TestBuddyLowestAddressFirst(t *testing.T) {
	b := newBuddy(16)
	a1, _ := b.alloc(2)
	a2, _ := b.alloc(2)
	if a1 != 0 || a2 != 2 {
		t.Errorf("allocs at %d, %d; want 0, 2", a1, a2)
	}
}

func TestBuddyBadOpsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"size":        func() { newBuddy(6) },
		"alloc3":      func() { newBuddy(8).alloc(3) },
		"alloc-big":   func() { newBuddy(8).alloc(16) },
		"double-free": func() { b := newBuddy(8); s, _ := b.alloc(2); b.release(s); b.release(s) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestBuddyProperty: arbitrary alloc/free interleavings conserve capacity
// and never hand out overlapping blocks.
func TestBuddyProperty(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		b := newBuddy(16)
		rng := rand.New(rand.NewSource(seed))
		type block struct{ start, size int }
		var held []block
		occupied := func() int {
			n := 0
			for _, blk := range held {
				n += blk.size
			}
			return n
		}
		for _, op := range ops {
			if op%2 == 0 || len(held) == 0 {
				size := 1 << (int(op/2) % 5) // 1..16
				start, ok := b.alloc(size)
				if !ok {
					continue
				}
				// No overlap with held blocks.
				for _, blk := range held {
					if start < blk.start+blk.size && blk.start < start+size {
						return false
					}
				}
				if start%size != 0 { // buddy blocks are size-aligned
					return false
				}
				held = append(held, block{start, size})
			} else {
				i := rng.Intn(len(held))
				b.release(held[i].start)
				held = append(held[:i], held[i+1:]...)
			}
			if b.freeNodes()+occupied() != 16 {
				return false
			}
		}
		for _, blk := range held {
			b.release(blk.start)
		}
		return b.largest() == 16 && b.freeNodes() == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

// --- dynamic space-sharing policy ---------------------------------------

func TestDynamicPolicyParsing(t *testing.T) {
	got, err := ParsePolicy("dynamic")
	if err != nil || got != DynamicSpace {
		t.Fatalf("ParsePolicy(dynamic) = %v, %v", got, err)
	}
	if DynamicSpace.String() != "dynamic" {
		t.Error("dynamic string")
	}
}

func TestDynamicValidation(t *testing.T) {
	mach := testMachine(8)
	defer mach.K.Shutdown()
	if _, err := New(Config{Machine: mach, Policy: DynamicSpace, PartitionSize: 3, Topology: topology.Linear}); err == nil {
		t.Error("non-power-of-two cap should fail")
	}
	if _, err := New(Config{Machine: mach, Policy: DynamicSpace, PartitionSize: 16, Topology: topology.Linear}); err == nil {
		t.Error("cap above machine size should fail")
	}
	if _, err := New(Config{Machine: mach, Policy: DynamicSpace, Topology: topology.Linear}); err != nil {
		t.Errorf("default cap rejected: %v", err)
	}
}

func TestDynamicBatchRunsAndEquipartitions(t *testing.T) {
	mach := testMachine(16)
	// 4 simultaneous jobs on 16 nodes: the equipartition heuristic should
	// grant 4-node blocks.
	res := run(t, mach, Config{Policy: DynamicSpace, Topology: topology.Mesh},
		syntheticBatch(4, 50*sim.Millisecond, workload.Adaptive))
	if len(res.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Processes != 4 {
			t.Errorf("job %d got %d processors, want 4 (equipartition)", j.JobID, j.Processes)
		}
	}
	// Distinct blocks.
	seen := map[int]bool{}
	for _, j := range res.Jobs {
		if seen[j.Partition] {
			t.Errorf("block %d reused concurrently", j.Partition)
		}
		seen[j.Partition] = true
	}
}

func TestDynamicSingleJobGetsWholeMachine(t *testing.T) {
	mach := testMachine(16)
	res := run(t, mach, Config{Policy: DynamicSpace, Topology: topology.Mesh},
		syntheticBatch(1, 50*sim.Millisecond, workload.Adaptive))
	if res.Jobs[0].Processes != 16 {
		t.Errorf("lone job got %d processors, want 16", res.Jobs[0].Processes)
	}
}

func TestDynamicRespectsBlockCap(t *testing.T) {
	mach := testMachine(16)
	res := run(t, mach, Config{Policy: DynamicSpace, PartitionSize: 4, Topology: topology.Ring},
		syntheticBatch(1, 50*sim.Millisecond, workload.Adaptive))
	if res.Jobs[0].Processes != 4 {
		t.Errorf("capped job got %d processors, want 4", res.Jobs[0].Processes)
	}
}

func TestDynamicAdaptsToLoad(t *testing.T) {
	mach := testMachine(16)
	// First job arrives alone (gets a big block); twelve more arrive later
	// while it runs, so they get small blocks.
	batch := syntheticBatch(13, 200*sim.Millisecond, workload.Adaptive)
	for i := 1; i < 13; i++ {
		batch[i].Arrival = 50 * sim.Millisecond
	}
	res := run(t, mach, Config{Policy: DynamicSpace, Topology: topology.Linear}, batch)
	byID := map[int]int{}
	for _, j := range res.Jobs {
		byID[j.JobID] = j.Processes
	}
	if byID[0] != 16 {
		t.Errorf("first job got %d, want 16 (idle system)", byID[0])
	}
	small := 0
	for id, procs := range byID {
		if id != 0 && procs <= 2 {
			small++
		}
	}
	if small < 6 {
		t.Errorf("later jobs not squeezed by load: %v", byID)
	}
}

func TestDynamicMemoryReturned(t *testing.T) {
	mach := testMachine(16)
	run(t, mach, Config{Policy: DynamicSpace, Topology: topology.Hypercube},
		syntheticBatch(10, 20*sim.Millisecond, workload.Fixed))
	for _, n := range mach.Nodes {
		if n.Mem.Used() != 0 {
			t.Errorf("node %d leaked %d bytes", n.ID, n.Mem.Used())
		}
	}
}

func TestDynamicWithVerifiedApps(t *testing.T) {
	mach := testMachine(8)
	batch := workload.BatchSpec{
		Small: 3, Large: 1, Arch: workload.Adaptive,
		NewApp: func(class string) workload.App {
			n := 60
			if class == "large" {
				n = 150
			}
			return workload.NewSort(n, workload.DefaultAppCost(), true)
		},
	}.Build()
	run(t, mach, Config{Policy: DynamicSpace, Topology: topology.Mesh}, batch)
	for _, job := range batch {
		if !job.App.(*workload.Sort).Checked {
			t.Errorf("job %d not verified under dynamic policy", job.ID)
		}
	}
}
