package sched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestGangPolicyParsing(t *testing.T) {
	got, err := ParsePolicy("gang")
	if err != nil || got != Gang {
		t.Fatalf("ParsePolicy(gang) = %v, %v", got, err)
	}
	if Gang.String() != "gang" {
		t.Error("gang string")
	}
}

func TestGangRunsBatchToCompletion(t *testing.T) {
	mach := testMachine(4)
	res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Ring, Policy: Gang},
		syntheticBatch(6, 50*sim.Millisecond, workload.Adaptive))
	if len(res.Jobs) != 6 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for _, n := range mach.Nodes {
		if n.Mem.Used() != 0 {
			t.Errorf("node %d memory leaked", n.ID)
		}
	}
}

// TestGangCoschedules: while one job is active, the other's processes make
// no progress — responses serialize per rotation rather than interleaving
// at quantum granularity. Job completion times under gang must be spread
// out compared with RR-job's near-simultaneous finishes.
func TestGangCoschedules(t *testing.T) {
	w := 100 * sim.Millisecond
	spread := func(policy Policy) sim.Time {
		mach := testMachine(2)
		res := run(t, mach, Config{PartitionSize: 2, Topology: topology.Linear, Policy: policy,
			BasicQuantum: 2 * sim.Millisecond}, syntheticBatch(2, w, workload.Adaptive))
		a, b := res.Jobs[0].Completed, res.Jobs[1].Completed
		if a > b {
			a, b = b, a
		}
		return b - a
	}
	gangSpread := spread(Gang)
	rrSpread := spread(TimeShared)
	// Both policies share power equally at job granularity, so completions
	// stay close under both; the point here is that gang completes the
	// batch (work conservation) with comparable fairness.
	if gangSpread > 20*sim.Millisecond {
		t.Errorf("gang completion spread %v too large", gangSpread)
	}
	_ = rrSpread
}

// TestGangWorkConservation: total low-priority busy time matches the other
// policies for the same workload.
func TestGangWorkConservation(t *testing.T) {
	busyLow := func(policy Policy) sim.Time {
		mach := testMachine(4)
		res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Ring, Policy: policy},
			syntheticBatch(6, 30*sim.Millisecond, workload.Adaptive))
		var sum sim.Time
		for _, n := range res.Nodes {
			sum += n.BusyLow
		}
		return sum
	}
	if g, ts := busyLow(Gang), busyLow(TimeShared); g != ts {
		t.Errorf("gang busy %v != time-shared busy %v", g, ts)
	}
}

// TestGangActiveJobExclusive: sample the CPUs mid-run; runnable bursts
// should only belong to one job group per partition (plus system tasks).
func TestGangActiveJobExclusive(t *testing.T) {
	k := sim.NewKernel(1)
	mach := machine.NewMachine(k, 2, 64<<20, machine.DefaultCostModel())
	sys, err := New(Config{Machine: mach, PartitionSize: 2, Topology: topology.Linear,
		Policy: Gang, BasicQuantum: 2 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	batch := syntheticBatch(3, 80*sim.Millisecond, workload.Adaptive)
	// Sample after everything is loaded and rotating.
	k.After(60*sim.Millisecond, func() {
		suspendedJobs := 0
		for _, js := range sys.parts[0].gangJobs {
			allSuspended := true
			for _, b := range js.env.Ranks {
				if !b.Task.Suspended() {
					allSuspended = false
				}
			}
			if allSuspended {
				suspendedJobs++
			}
		}
		if got := len(sys.parts[0].gangJobs) - suspendedJobs; got > 1 {
			t.Errorf("%d jobs active simultaneously under gang", got)
		}
	})
	if _, err := sys.RunBatch(batch); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
}

// TestGangWithMatMulVerified: the full application stack works under gang
// scheduling with real-data verification.
func TestGangWithMatMulVerified(t *testing.T) {
	mach := testMachine(4)
	batch := workload.BatchSpec{
		Small: 3, Large: 1, Arch: workload.Adaptive,
		NewApp: func(class string) workload.App {
			n := 8
			if class == "large" {
				n = 16
			}
			return workload.NewMatMul(n, workload.DefaultAppCost(), true)
		},
	}.Build()
	run(t, mach, Config{PartitionSize: 2, Topology: topology.Linear, Policy: Gang}, batch)
	for _, job := range batch {
		if !job.App.(*workload.MatMul).Checked {
			t.Errorf("job %d not verified under gang", job.ID)
		}
	}
}

// TestOpenArrivalsStatic: jobs with future arrival times wait for their
// arrival, and the FCFS queue respects arrival order.
func TestOpenArrivalsStatic(t *testing.T) {
	mach := testMachine(2)
	batch := syntheticBatch(3, 20*sim.Millisecond, workload.Adaptive)
	batch[0].Arrival = 0
	batch[1].Arrival = 500 * sim.Millisecond
	batch[2].Arrival = 600 * sim.Millisecond
	res := run(t, mach, Config{PartitionSize: 2, Topology: topology.Linear, Policy: Static}, batch)
	byID := map[int]sim.Time{}
	for _, j := range res.Jobs {
		byID[j.JobID] = j.Started
	}
	if byID[1] < 500*sim.Millisecond || byID[2] < 600*sim.Millisecond {
		t.Errorf("jobs started before arrival: %v", byID)
	}
	// An idle system dispatches immediately on arrival.
	if byID[1] != 500*sim.Millisecond {
		t.Errorf("job 1 started %v, want exactly at arrival", byID[1])
	}
}

// TestOpenArrivalsRecordArrival: response times are measured from arrival,
// not from time zero.
func TestOpenArrivalsRecordArrival(t *testing.T) {
	mach := testMachine(2)
	batch := syntheticBatch(1, 20*sim.Millisecond, workload.Adaptive)
	batch[0].Arrival = sim.Second
	res := run(t, mach, Config{PartitionSize: 2, Topology: topology.Linear, Policy: TimeShared}, batch)
	j := res.Jobs[0]
	if j.Arrival != sim.Second {
		t.Errorf("recorded arrival %v", j.Arrival)
	}
	if j.Response() > 200*sim.Millisecond {
		t.Errorf("response %v includes pre-arrival time", j.Response())
	}
}

// TestPoissonArrivals: deterministic, increasing, plausible mean.
func TestPoissonArrivals(t *testing.T) {
	batch := syntheticBatch(200, sim.Millisecond, workload.Adaptive)
	mean := 100 * sim.Millisecond
	a := batch.WithPoissonArrivals(mean, 42)
	b := batch.WithPoissonArrivals(mean, 42)
	c := batch.WithPoissonArrivals(mean, 43)
	var last sim.Time = -1
	var sum float64
	differs := false
	for i := range a {
		if a[i].Arrival != b[i].Arrival {
			t.Fatal("not deterministic")
		}
		if a[i].Arrival != c[i].Arrival {
			differs = true
		}
		if a[i].Arrival <= last {
			t.Fatalf("arrivals not increasing at %d", i)
		}
		last = a[i].Arrival
		if i == 0 {
			sum += float64(a[i].Arrival)
		} else {
			sum += float64(a[i].Arrival - a[i-1].Arrival)
		}
	}
	if !differs {
		t.Error("different seeds gave identical arrivals")
	}
	got := sum / float64(len(a))
	if got < 0.7*float64(mean) || got > 1.3*float64(mean) {
		t.Errorf("mean interarrival %.0f, want ~%d", got, mean)
	}
	// The original batch must be untouched.
	if batch[0].Arrival != 0 {
		t.Error("WithPoissonArrivals mutated its receiver")
	}
}

func TestPoissonArrivalsBadMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	workload.Batch{}.WithPoissonArrivals(0, 1)
}
