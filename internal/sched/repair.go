package sched

// Fault wiring and scheduler repair. The injector (package fault) decides
// *what* fails and when; this file decides what the scheduler does about it:
//
//   - A node failure kills every job resident on its partition (a job spans
//     all partition nodes, so losing one is fatal to all of them) and marks
//     the partition degraded — it accepts no work until every node is
//     repaired. Killed jobs are re-queued onto surviving partitions, or
//     stall until a repair when none survive. The node's router and links
//     stay in service: the failure model is a crashed application processor
//     whose communication hardware keeps forwarding, the common transputer
//     failure mode (and the paper's networks route through every node, so a
//     dead router would partition the interconnect).
//   - A link failure is handled below the scheduler: the network detours
//     around it while the graph stays connected, and reliable delivery
//     (retry with exponential backoff) covers messages lost in transit.
//     Only when the retry budget is exhausted — the destination is truly
//     unreachable — does the delivery-failure signal reach this layer, and
//     the affected job is killed and re-queued like a node-failure victim.
//   - Checkpoint/restart: every interval each running job snapshots its
//     per-rank completed compute (charging CheckpointCost to every
//     partition node at high priority); a restarted job replays the
//     snapshot instantly and loses only the work past it. The snapshot
//     itself is taken atomically at the firing instant — the cost models
//     the coordination work, not a staged protocol.
//
// Everything here runs in kernel context and is deterministic: the kill
// order follows the partition's admission-order job list, and re-queue
// targets are chosen by (resident count, partition index).

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// wireFaults attaches the fault machinery configured in cfg.Fault to the
// fixed partitions: reliable delivery and failure handlers on every
// partition network, and the injector's schedule on the kernel. Called once
// from New; a nil or inert config wires nothing.
func (s *System) wireFaults() error {
	f := s.cfg.Fault
	if f == nil {
		return nil
	}
	if f.Reliable() {
		for _, part := range s.parts {
			part := part
			part.net.EnableReliability(f.RetryTimeout, f.RetryCap())
			part.net.SetFailureHandler(func(m *comm.Message) { s.onDeliveryFailure(part, m) })
		}
	}
	if !f.Active() {
		return nil
	}
	// The injector's link universe is every partition's physical links,
	// in global sorted order (partitions tile the machine, so the
	// concatenation is already sorted).
	var links [][2]int
	for _, part := range s.parts {
		links = append(links, part.net.Links()...)
	}
	inj, err := fault.NewInjector(*f, s.cfg.Machine.Size(), links)
	if err != nil {
		return err
	}
	s.inj = inj
	if f.DropProb > 0 {
		for _, part := range s.parts {
			part.net.SetDropFn(inj.DropMessage)
		}
	}
	// On a warm-start restore (ResumeFrom > 0) only the plan events the
	// donor run had not yet fired are armed; the donor's applied-fault state
	// arrives via RestoreState instead.
	inj.ScheduleFrom(s.k, fault.Handlers{
		NodeDown: func(node int, permanent bool) { s.onNodeDown(node, permanent) },
		NodeUp:   func(node int) { s.onNodeUp(node) },
		LinkDown: func(a, b int, _ bool) { s.setLinkState(a, b, false) },
		LinkUp:   func(a, b int) { s.setLinkState(a, b, true) },
	}, s.cfg.ResumeFrom)
	return nil
}

// setLinkState broadcasts a link event to every partition network; each
// ignores pairs outside its node set.
func (s *System) setLinkState(a, b int, up bool) {
	state := "down"
	if up {
		state = "up"
	}
	trace.Emit(s.cfg.Tracer, s.k.Now(), "fault", fmt.Sprintf("link %d-%d", a, b), state)
	for _, part := range s.parts {
		part.net.SetLinkState(a, b, up)
	}
}

// partOfNode maps a global node id to its fixed partition.
func (s *System) partOfNode(g int) *Partition {
	p := s.cfg.PartitionSize
	if p < 1 || g < 0 || g/p >= len(s.parts) {
		return nil
	}
	return s.parts[g/p]
}

// survivingPartition picks the healthy partition with the fewest resident
// jobs (ties to the lowest index), or nil when every partition is degraded.
func (s *System) survivingPartition() *Partition {
	var best *Partition
	for _, part := range s.parts {
		if part.degraded() {
			continue
		}
		if best == nil || part.resident < best.resident {
			best = part
		}
	}
	return best
}

// removeJob drops a job from its partition's resident list.
func removeJob(part *Partition, js *jobState) {
	if part == nil {
		return
	}
	for i, j := range part.jobs {
		if j == js {
			part.jobs = append(part.jobs[:i], part.jobs[i+1:]...)
			return
		}
	}
}

// onNodeDown applies a node failure: mark the partition degraded and tear
// down every job resident on it.
func (s *System) onNodeDown(g int, permanent bool) {
	part := s.partOfNode(g)
	if part == nil {
		return
	}
	local := g - part.idx*part.size
	if part.nodeDown[local] {
		return
	}
	part.nodeDown[local] = true
	part.downCount++
	kind := "transient"
	if permanent {
		kind = "permanent"
	}
	trace.Emit(s.cfg.Tracer, s.k.Now(), "fault", fmt.Sprintf("node %d", g),
		fmt.Sprintf("%s failure, partition %d degraded", kind, part.idx))
	// Kill in admission order over a snapshot: killJob mutates part.jobs.
	for _, js := range append([]*jobState(nil), part.jobs...) {
		s.killJob(js)
		s.requeueAfterKill(js)
	}
}

// onNodeUp applies a node repair; when the partition becomes fully healthy
// again it resumes taking work, starting with jobs stalled by the failure.
func (s *System) onNodeUp(g int) {
	part := s.partOfNode(g)
	if part == nil {
		return
	}
	local := g - part.idx*part.size
	if !part.nodeDown[local] {
		return
	}
	part.nodeDown[local] = false
	part.downCount--
	trace.Emit(s.cfg.Tracer, s.k.Now(), "fault", fmt.Sprintf("node %d", g),
		fmt.Sprintf("repaired, partition %d %s", part.idx,
			map[bool]string{true: "still degraded", false: "healthy"}[part.degraded()]))
	if part.degraded() {
		return
	}
	s.partpol.Healthy(s, part)
}

// drainQueue launches queued jobs while the partition has admission slots.
func (s *System) drainQueue(part *Partition) {
	for len(part.queue) > 0 && (s.cfg.MaxResident <= 0 || part.resident < s.cfg.MaxResident) {
		next := part.queue[0]
		part.queue = part.queue[1:]
		part.resident++
		s.launch(part, next)
	}
}

// killJob tears a dispatched job down: abort its processes, reclaim its
// memory and mailboxes, and account the lost work. The job keeps its ckpt
// snapshots so a restart can replay checkpointed compute. Safe at any point
// of the job's life cycle — including mid-load, where the epoch bump makes
// the loader back out on its own.
func (s *System) killJob(js *jobState) {
	part := js.part
	s.faultStats.JobKills++
	js.epoch++ // invalidates the loader, checkpoint timer, and rank procs
	js.restarts++
	s.runningNow--
	removeJob(part, js)
	if js.env != nil {
		s.quant.Departed(s, part, js)
		// Pull the tasks off the CPUs first so no aborted process gets
		// another slice (and so in-flight burst accounting is settled for
		// the WorkLost measurement), then abort: each process unwinds at
		// its next park point and releases what it holds.
		for _, b := range js.env.Ranks {
			if !b.Task.Suspended() {
				b.Task.Suspend()
			}
		}
		for r, rt := range js.runtimes {
			if rt == nil {
				continue
			}
			if lost := rt.ComputeDone() - js.ckpt[r]; lost > 0 {
				s.faultStats.WorkLost = metrics.SatAddTime(s.faultStats.WorkLost, lost)
			}
		}
		for _, p := range js.procs {
			if p != nil {
				p.Abort()
			}
		}
		// Messages still in flight to the dead job dead-letter here instead
		// of leaking buffer memory (and their retry timers are cancelled).
		for _, b := range js.env.Ranks {
			part.net.RetireMailbox(b.Box)
		}
	}
	if js.loaded {
		for i := 0; i < part.size; i++ {
			part.net.NodeOf(i).Mem.FreeBytes(workload.CodeBytes)
		}
	}
	js.env = nil
	js.procs = nil
	js.runtimes = nil
	js.loaded = false
	trace.Emit(s.cfg.Tracer, s.k.Now(), "fault", js.job.String(),
		fmt.Sprintf("killed on partition %d (restart %d)", part.idx, js.restarts))
	s.partpol.Killed(s, part)
}

// requeueAfterKill returns a killed job to a ready queue, charging its
// restart budget. Exceeding the budget abandons the run with an error — a
// configuration that can never finish (say, a permanently cut partition
// the job keeps being re-dealt to) must not retry forever.
func (s *System) requeueAfterKill(js *jobState) {
	if js.restarts > s.cfg.Fault.RestartCap() {
		if s.fatalErr == nil {
			s.fatalErr = fmt.Errorf("sched: job %d killed %d times, exceeding the restart budget of %d",
				js.job.ID, js.restarts, s.cfg.Fault.RestartCap())
		}
		return
	}
	s.faultStats.Requeues++
	s.partpol.Requeue(s, js)
}

// onDeliveryFailure handles a message abandoned by the retry machinery: the
// destination is unreachable, so the owning job cannot make progress and is
// killed and re-queued.
func (s *System) onDeliveryFailure(part *Partition, m *comm.Message) {
	js := jobForAddr(part, m.Dst)
	if js == nil || js.finished {
		return // owner already completed or was torn down by a node fault
	}
	trace.Emit(s.cfg.Tracer, s.k.Now(), "fault", js.job.String(),
		fmt.Sprintf("message %v->%v undeliverable", m.Src, m.Dst))
	s.killJob(js)
	s.requeueAfterKill(js)
}

// jobForAddr finds the resident job owning a mailbox address.
func jobForAddr(part *Partition, a comm.Addr) *jobState {
	for _, js := range part.jobs {
		if js.env == nil {
			continue
		}
		for _, b := range js.env.Ranks {
			if b.Box.Addr() == a {
				return js
			}
		}
	}
	return nil
}

// armCheckpoint starts the job's periodic checkpoint timer. The timer is
// epoch-guarded: a kill silently orphans it and the restart arms a new one.
func (s *System) armCheckpoint(js *jobState) {
	f := s.cfg.Fault
	if f == nil || !f.Checkpointing() {
		return
	}
	epoch := js.epoch
	s.k.AfterFunc(f.CheckpointInterval, func() { s.checkpointFire(js, epoch) })
}

// checkpointFire takes one coordinated checkpoint and re-arms the timer.
func (s *System) checkpointFire(js *jobState, epoch int) {
	if js.epoch != epoch || js.finished {
		return
	}
	f := s.cfg.Fault
	s.faultStats.Checkpoints++
	part := js.part
	if f.CheckpointCost > 0 {
		for i := 0; i < part.size; i++ {
			part.net.NodeOf(i).CPU.ChargeAsync(machine.PriHigh, f.CheckpointCost, nil)
		}
		s.faultStats.CheckpointWork = metrics.SatAddTime(s.faultStats.CheckpointWork,
			f.CheckpointCost*sim.Time(part.size))
	}
	for r, rt := range js.runtimes {
		if rt != nil {
			js.ckpt[r] = rt.ComputeDone()
		}
	}
	trace.Emit(s.cfg.Tracer, s.k.Now(), "ckpt", js.job.String(),
		fmt.Sprintf("checkpoint %d taken", s.faultStats.Checkpoints))
	s.k.AfterFunc(f.CheckpointInterval, func() { s.checkpointFire(js, epoch) })
}
