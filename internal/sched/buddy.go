package sched

import "fmt"

// buddy is a classic buddy allocator over a power-of-two array of nodes,
// used by the dynamic space-sharing policy to hand out contiguous
// power-of-two processor blocks (the allocation discipline of the iPSC/860
// class of machines the paper's introduction cites). Deterministic: the
// lowest-addressed suitable block is always chosen.
type buddy struct {
	size  int           // total nodes, power of two
	free  map[int][]int // order -> ascending block starts
	order map[int]int   // allocated block start -> order
}

// orderOf returns log2(size) for power-of-two sizes.
func orderOf(size int) int {
	o := 0
	for v := size; v > 1; v >>= 1 {
		o++
	}
	return o
}

func newBuddy(size int) *buddy {
	if size < 1 || size&(size-1) != 0 {
		panic(fmt.Sprintf("sched: buddy size %d not a power of two", size))
	}
	b := &buddy{size: size, free: make(map[int][]int), order: make(map[int]int)}
	b.free[orderOf(size)] = []int{0}
	return b
}

// largest reports the size of the biggest free block (0 when full).
func (b *buddy) largest() int {
	for o := orderOf(b.size); o >= 0; o-- {
		if len(b.free[o]) > 0 {
			return 1 << o
		}
	}
	return 0
}

// freeNodes reports the total free capacity.
func (b *buddy) freeNodes() int {
	total := 0
	for o, blocks := range b.free {
		total += len(blocks) << o
	}
	return total
}

// alloc takes a block of the given power-of-two size, splitting larger
// blocks as needed; it returns the block's first node and whether the
// allocation succeeded.
func (b *buddy) alloc(size int) (int, bool) {
	if size < 1 || size&(size-1) != 0 || size > b.size {
		panic(fmt.Sprintf("sched: buddy alloc %d", size))
	}
	want := orderOf(size)
	// Find the smallest order >= want with a free block.
	from := -1
	for o := want; o <= orderOf(b.size); o++ {
		if len(b.free[o]) > 0 {
			from = o
			break
		}
	}
	if from < 0 {
		return 0, false
	}
	start := b.free[from][0]
	b.free[from] = b.free[from][1:]
	// Split down to the wanted order, keeping the low half each time.
	for o := from; o > want; o-- {
		half := 1 << (o - 1)
		b.insertFree(o-1, start+half)
	}
	b.order[start] = want
	return start, true
}

// release returns a previously allocated block and merges buddies.
func (b *buddy) release(start int) {
	o, ok := b.order[start]
	if !ok {
		panic(fmt.Sprintf("sched: buddy release of unallocated block %d", start))
	}
	delete(b.order, start)
	for o < orderOf(b.size) {
		buddyStart := start ^ (1 << o)
		if !b.removeFree(o, buddyStart) {
			break
		}
		if buddyStart < start {
			start = buddyStart
		}
		o++
	}
	b.insertFree(o, start)
}

func (b *buddy) insertFree(o, start int) {
	blocks := b.free[o]
	i := 0
	for i < len(blocks) && blocks[i] < start {
		i++
	}
	blocks = append(blocks, 0)
	copy(blocks[i+1:], blocks[i:])
	blocks[i] = start
	b.free[o] = blocks
}

func (b *buddy) removeFree(o, start int) bool {
	blocks := b.free[o]
	for i, s := range blocks {
		if s == start {
			b.free[o] = append(blocks[:i], blocks[i+1:]...)
			return true
		}
	}
	return false
}
