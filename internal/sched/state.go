package sched

// Warm-state forking support. A scheduling System can snapshot its
// cross-job state at a *quiescent instant* — no job resident anywhere, no
// message in flight, every CPU idle, all memory returned — and a freshly
// constructed, identically configured System can restore that state and
// resume with the remaining jobs of the batch. Sweeps over configurations
// that share a prefix (same workload, same machine, divergence only in
// quantum/order knobs) run the prefix once and fork.
//
// Quiescence is what makes this tractable: the simulator's transient state
// lives in goroutine stacks (blocked processes, in-flight transfers) that
// cannot be serialized, but at a quiescent instant all of it is gone by
// definition. What remains is plain data — counters, job records, fault
// flags, allocator cursors — plus pending kernel events that are all
// declaratively reconstructible (future arrivals from the batch, future
// fault-plan events from the regenerated plan, the sampler's next tick).

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// NodeState is one node's accumulated statistics.
type NodeState struct {
	CPU machine.CPUState `json:"cpu"`
	Mem mem.Stats        `json:"mem"`
}

// PartState is one fixed partition's cross-job state.
type PartState struct {
	// NodeDown flags locally failed nodes (index = local node id).
	NodeDown []bool `json:"node_down"`
	// Net is the partition network's state (stats, allocators, down links).
	Net comm.State `json:"net"`
}

// CarriedNet is the aggregate network contribution of per-job partitions a
// donor run retired before the snapshot (dynamic/equi buddy allocations are
// torn down with their job, so their networks no longer exist to restore).
type CarriedNet struct {
	Stats     comm.Stats        `json:"stats"`
	LinkTotal machine.LinkStats `json:"link_total"`
	LinkMax   machine.LinkStats `json:"link_max"`
}

// State is the serializable cross-job state of a System at quiescence.
type State struct {
	Records    []metrics.JobRecord `json:"records"`
	Started    int                 `json:"started"`
	FaultStats metrics.FaultStats  `json:"fault_stats"`
	Nodes      []NodeState         `json:"nodes"`
	Host       machine.LinkStats   `json:"host"`
	Parts      []PartState         `json:"parts"`
	Carried    []CarriedNet        `json:"carried,omitempty"`
	Injector   *fault.State        `json:"injector,omitempty"`
}

// Quiescent reports whether the system holds no transient state: nothing
// running or queued at any level, every network silent, every CPU idle, all
// memory freed, the host link released, and (for pool policies) the buddy
// pool fully coalesced. Only a Quiescent system can be snapshotted.
func (s *System) Quiescent() bool {
	if s.runningNow != 0 || s.dynRunning != 0 || s.fatalErr != nil {
		return false
	}
	if len(s.pending) != 0 || len(s.stalled) != 0 || len(s.equiJobs) != 0 {
		return false
	}
	for _, part := range s.parts {
		if part.busy || part.resident != 0 {
			return false
		}
		if len(part.queue) != 0 || len(part.gangJobs) != 0 || len(part.jobs) != 0 {
			return false
		}
		if !part.net.Quiet() {
			return false
		}
	}
	// Retired per-job partitions keep busy=true as a tombstone; only their
	// networks need to be silent (they always are once the job is gone).
	for _, part := range s.dynParts {
		if !part.net.Quiet() {
			return false
		}
	}
	if s.pool != nil && len(s.pool.order) != 0 {
		return false
	}
	for _, n := range s.cfg.Machine.Nodes {
		if n.Mem.Used() != 0 || n.CPU.Running() {
			return false
		}
	}
	if s.cfg.Machine.Host.Busy() {
		return false
	}
	return true
}

// SnapshotState captures the system's cross-job state. It fails unless the
// system is Quiescent.
func (s *System) SnapshotState() (*State, error) {
	if s.streaming {
		return nil, fmt.Errorf("sched: open-system streams have no snapshot representation")
	}
	if !s.Quiescent() {
		return nil, fmt.Errorf("sched: snapshot of a non-quiescent system")
	}
	st := &State{
		Records:    append([]metrics.JobRecord(nil), s.records...),
		Started:    s.started,
		FaultStats: s.faultStats,
		Host:       s.cfg.Machine.Host.Stats(),
		Carried:    append([]CarriedNet(nil), s.carried...),
	}
	for _, n := range s.cfg.Machine.Nodes {
		st.Nodes = append(st.Nodes, NodeState{CPU: n.CPU.SnapshotState(), Mem: n.Mem.Stats()})
	}
	for _, part := range s.parts {
		st.Parts = append(st.Parts, PartState{
			NodeDown: append([]bool(nil), part.nodeDown...),
			Net:      part.net.SnapshotState(),
		})
	}
	// Retired per-job partitions fold into carried aggregates: their node
	// blocks will be re-allocated from scratch by the restored run, so only
	// their accumulated traffic must survive.
	for _, part := range s.dynParts {
		total, max := part.net.LinkStats()
		st.Carried = append(st.Carried, CarriedNet{
			Stats:     part.net.Stats(),
			LinkTotal: total,
			LinkMax:   max,
		})
	}
	if s.inj != nil {
		ist := s.inj.SnapshotState()
		st.Injector = &ist
	}
	return st, nil
}

// RestoreState installs a donor system's snapshot into this freshly built,
// identically structured System. Call after New and before SubmitResume.
func (s *System) RestoreState(st *State) error {
	if s.used || len(s.records) != 0 {
		return fmt.Errorf("sched: restore into a used system")
	}
	if len(st.Nodes) != len(s.cfg.Machine.Nodes) {
		return fmt.Errorf("sched: restore %d node states into %d-node machine",
			len(st.Nodes), len(s.cfg.Machine.Nodes))
	}
	if len(st.Parts) != len(s.parts) {
		return fmt.Errorf("sched: restore %d partition states into %d partitions",
			len(st.Parts), len(s.parts))
	}
	if (st.Injector != nil) != (s.inj != nil) {
		return fmt.Errorf("sched: injector state mismatch (snapshot %v, system %v)",
			st.Injector != nil, s.inj != nil)
	}
	s.records = append([]metrics.JobRecord(nil), st.Records...)
	s.started = st.Started
	s.faultStats = st.FaultStats
	s.carried = append([]CarriedNet(nil), st.Carried...)
	for i, n := range s.cfg.Machine.Nodes {
		n.CPU.RestoreState(st.Nodes[i].CPU)
		n.Mem.RestoreStats(st.Nodes[i].Mem)
	}
	s.cfg.Machine.Host.RestoreStats(st.Host)
	for i, part := range s.parts {
		ps := st.Parts[i]
		if len(ps.NodeDown) != part.size {
			return fmt.Errorf("sched: restore %d node-down flags into partition of %d nodes",
				len(ps.NodeDown), part.size)
		}
		if err := part.net.RestoreState(ps.Net); err != nil {
			return err
		}
		part.downCount = 0
		for j, down := range ps.NodeDown {
			part.nodeDown[j] = down
			if down {
				part.downCount++
			}
		}
	}
	if st.Injector != nil {
		s.inj.RestoreState(*st.Injector)
	}
	return nil
}

// SubmitResume enters the jobs of the batch that arrive strictly after the
// fork time (the donor run completed the rest; RestoreState installed their
// records). Jobs keep their original batch indices so partition routing is
// unchanged. The caller then restores the kernel clock and calls Finish.
func (s *System) SubmitResume(batch workload.Batch, after sim.Time) error {
	return s.submitAfter(batch, after)
}

// Diverge re-resolves the policy components after mutating the divergable
// configuration knobs in place: the basic quantum, the quantum policy and
// the queue order (zero values keep the current setting). Only these three
// may differ between forked points — they shape future dispatch decisions
// without invalidating any state accumulated before the fork. The system
// must be Quiescent (the cold reference path diverges mid-run).
func (s *System) Diverge(basicQuantum sim.Time, quantum QuantumKind, order OrderKind) error {
	if !s.Quiescent() {
		return fmt.Errorf("sched: divergence at a non-quiescent instant")
	}
	if basicQuantum < 0 {
		return fmt.Errorf("sched: negative basic quantum %v", basicQuantum)
	}
	if basicQuantum > 0 {
		s.cfg.BasicQuantum = basicQuantum
	}
	if quantum != QuantumDefault {
		s.cfg.QuantumPolicy = quantum
	}
	if order != OrderDefault {
		s.cfg.QueueOrder = order
	}
	spec, err := ResolveSpec(s.cfg.Policy, s.cfg.PartitionPolicy, s.cfg.QuantumPolicy, s.cfg.QueueOrder)
	if err != nil {
		return err
	}
	if spec.Partition != s.spec.Partition {
		return fmt.Errorf("sched: divergence may not change the partition policy (%v -> %v)",
			s.spec.Partition, spec.Partition)
	}
	s.spec = spec
	s.partpol, s.quant, s.order = spec.policies()
	return nil
}

// Label returns the result label this system will report, so forked runs
// can be keyed without building the full result.
func (s *System) Label() string {
	return fmt.Sprintf("%d%s %s", s.cfg.PartitionSize, s.cfg.Topology.Letter(), s.spec)
}
