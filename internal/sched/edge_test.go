package sched

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Edge-path coverage for the pool-based disciplines (dynamic, equi) and
// gang rotation: migration under load change, overload with more jobs than
// processors, fault gating, and early departure mid-rotation.

// TestEquiMigratesAsLoadGrows: a lone job takes the whole machine; when a
// second arrives, the rebalance resizes the first down to the new
// equipartition target via an honest migration (traced as "migrate"), and
// both jobs still finish with all memory returned.
func TestEquiMigratesAsLoadGrows(t *testing.T) {
	mach := testMachine(8)
	batch := syntheticBatch(2, 100*sim.Millisecond, workload.Adaptive)
	batch[1].Arrival = 20 * sim.Millisecond
	var log trace.Log
	res := run(t, mach, Config{Policy: DynamicSpace, PartitionPolicy: PartEqui,
		Topology: topology.Linear, Tracer: &log}, batch)
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	migrations := 0
	for _, e := range log.Events() {
		if e.Cat == "migrate" {
			migrations++
		}
	}
	if migrations == 0 {
		t.Error("no migrate events: the running job was never resized to the new target")
	}
	// The first job was resized down to the 4-node equipartition target and
	// finished there; the survivor regrew onto the freed half afterwards.
	for _, j := range res.Jobs {
		if j.JobID == 0 && j.Processes != 4 {
			t.Errorf("job 0 finished with %d processes, want the 4-node target", j.Processes)
		}
	}
	for _, n := range mach.Nodes {
		if n.Mem.Used() != 0 {
			t.Errorf("node %d leaked %d bytes after migration", n.ID, n.Mem.Used())
		}
	}
}

// TestEquiShrinksAndRegrows: departures rebalance too — when the load drops
// back to one job, the survivor is migrated up to a bigger block.
func TestEquiShrinksAndRegrows(t *testing.T) {
	mach := testMachine(8)
	batch := syntheticBatch(2, 40*sim.Millisecond, workload.Adaptive)
	// Job 1 carries far more work, so job 0 departs first and job 1 should
	// be regrown onto the freed processors.
	batch[1].App = workload.NewSynthetic(400*sim.Millisecond, 256, 1024, workload.DefaultAppCost())
	var log trace.Log
	res := run(t, mach, Config{Policy: DynamicSpace, PartitionPolicy: PartEqui,
		Topology: topology.Linear, Tracer: &log}, batch)
	var survivor *int
	for i := range res.Jobs {
		if res.Jobs[i].JobID == 1 {
			survivor = &res.Jobs[i].Processes
		}
	}
	if survivor == nil {
		t.Fatal("job 1 never completed")
	}
	if *survivor != 8 {
		t.Errorf("survivor finished with %d processes, want the whole machine after regrow", *survivor)
	}
}

// TestEquiOverloadKeepsExcessQueued: more jobs than processors clamps the
// target to single-node blocks and leaves the excess queued; everything
// still completes, nothing leaks.
func TestEquiOverloadKeepsExcessQueued(t *testing.T) {
	mach := testMachine(4)
	res := run(t, mach, Config{Policy: DynamicSpace, PartitionPolicy: PartEqui,
		Topology: topology.Linear},
		syntheticBatch(6, 20*sim.Millisecond, workload.Adaptive))
	if len(res.Jobs) != 6 {
		t.Fatalf("jobs = %d, want all 6 despite the overload", len(res.Jobs))
	}
	// While all six are in the system the target clamps to one node, so the
	// earliest completions ran on single-node blocks (late survivors regrow
	// as departures free processors).
	if first := res.Jobs[0]; first.Processes != 1 {
		t.Errorf("first completion got %d processes, want a single-node block under overload", first.Processes)
	}
	for _, n := range mach.Nodes {
		if n.Mem.Used() != 0 {
			t.Errorf("node %d leaked %d bytes", n.ID, n.Mem.Used())
		}
	}
}

// TestEquiRejectsActiveFaults: fault injection is rejected at New for the
// malleable policy (its migrations and the repair machinery would fight
// over teardown), while an inert fault config stays accepted.
func TestEquiRejectsActiveFaults(t *testing.T) {
	mach := testMachine(8)
	defer mach.K.Shutdown()
	_, err := New(Config{Machine: mach, Policy: DynamicSpace, PartitionPolicy: PartEqui,
		Topology: topology.Linear,
		Fault: &fault.Config{NodeMTBF: 500 * sim.Millisecond, NodeMTTR: 50 * sim.Millisecond,
			Horizon: sim.Second}})
	if err == nil || !strings.Contains(err.Error(), "malleable equipartitioning") {
		t.Errorf("active faults with equi: err = %v", err)
	}
	if _, err := New(Config{Machine: mach, Policy: DynamicSpace, PartitionPolicy: PartEqui,
		Topology: topology.Linear, Fault: &fault.Config{}}); err != nil {
		t.Errorf("inert fault config rejected: %v", err)
	}
}

// TestDynamicOverloadSingleNodeBlocks: the non-malleable pool policy under
// the same overload — granted blocks clamp to one node and queued jobs wait
// for releases; run-to-completion still holds for every job.
func TestDynamicOverloadSingleNodeBlocks(t *testing.T) {
	mach := testMachine(4)
	res := run(t, mach, Config{Policy: DynamicSpace, Topology: topology.Linear},
		syntheticBatch(8, 10*sim.Millisecond, workload.Adaptive))
	if len(res.Jobs) != 8 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	// At most 4 can run at once; the rest queue. Every job must wait no
	// job starts before the batch is submitted, and the last completion
	// defines a makespan at least two "waves" long.
	if res.Makespan <= res.Jobs[0].Response() {
		t.Errorf("makespan %v not beyond the first wave", res.Makespan)
	}
	for _, n := range mach.Nodes {
		if n.Mem.Used() != 0 {
			t.Errorf("node %d leaked %d bytes", n.ID, n.Mem.Used())
		}
	}
}

// TestGangEarlyDepartureContinuesRotation: two gang jobs share a partition;
// the short one departs mid-rotation and the survivor must keep running to
// completion (the rotation collapses to a single resident).
func TestGangEarlyDepartureContinuesRotation(t *testing.T) {
	mach := testMachine(4)
	batch := syntheticBatch(2, 30*sim.Millisecond, workload.Adaptive)
	batch[1].App = workload.NewSynthetic(300*sim.Millisecond, 256, 1024, workload.DefaultAppCost())
	res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Linear, Policy: Gang,
		BasicQuantum: 5 * sim.Millisecond}, batch)
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	if res.Jobs[0].JobID != 0 {
		t.Errorf("short job did not depart first: completion order %d, %d",
			res.Jobs[0].JobID, res.Jobs[1].JobID)
	}
	for _, n := range mach.Nodes {
		if n.Mem.Used() != 0 {
			t.Errorf("node %d leaked %d bytes", n.ID, n.Mem.Used())
		}
	}
}
