package sched

import "repro/internal/sim"

// Gang scheduling (extension policy): instead of letting every resident
// job's processes time-share node-by-node with job-fair quanta (the paper's
// RR-job), the partition scheduler coschedules — exactly one job's
// processes are runnable at a time across the whole partition, and the
// active job rotates every basic quantum. Processes of inactive jobs are
// suspended through the local schedulers' preemption control
// (machine.Task.Suspend), which preserves their remaining CPU demand.
//
// The job-switch overhead is charged by the CPUs' group-switch accounting
// when the newly active job's processes are dispatched, the same mechanism
// the RR-job policy pays.

// gangJoin registers a loaded job in its partition's rotation. The first
// resident job becomes active; later arrivals start suspended and wait for
// their slot.
func (s *System) gangJoin(part *Partition, js *jobState) {
	part.gangJobs = append(part.gangJobs, js)
	if len(part.gangJobs) == 1 {
		part.gangIdx = 0
		return // sole job: runs unsuspended, no rotation needed
	}
	s.gangSetSuspended(js, true)
	s.gangArm(part)
}

// gangLeave removes a completed job from the rotation and advances the
// active slot if necessary.
func (s *System) gangLeave(part *Partition, js *jobState) {
	idx := -1
	for i, g := range part.gangJobs {
		if g == js {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	wasActive := idx == part.gangIdx
	part.gangJobs = append(part.gangJobs[:idx], part.gangJobs[idx+1:]...)
	if len(part.gangJobs) == 0 {
		part.gangIdx = 0
		s.gangDisarm(part)
		return
	}
	if idx < part.gangIdx {
		part.gangIdx--
	}
	if part.gangIdx >= len(part.gangJobs) {
		part.gangIdx = 0
	}
	if wasActive {
		// Hand the partition to the next job immediately.
		s.gangSetSuspended(part.gangJobs[part.gangIdx], false)
	}
	if len(part.gangJobs) < 2 {
		s.gangDisarm(part)
	}
}

// gangRotate suspends the active job and resumes the next one.
func (s *System) gangRotate(part *Partition) {
	part.gangTimer = sim.Timer{}
	if len(part.gangJobs) < 2 {
		return
	}
	s.gangSetSuspended(part.gangJobs[part.gangIdx], true)
	part.gangIdx = (part.gangIdx + 1) % len(part.gangJobs)
	s.gangSetSuspended(part.gangJobs[part.gangIdx], false)
	s.gangArm(part)
}

// gangArm schedules the next rotation if one is due and not already armed.
func (s *System) gangArm(part *Partition) {
	if part.gangTimer.Pending() {
		return
	}
	if len(part.gangJobs) < 2 {
		return
	}
	part.gangTimer = s.k.After(s.cfg.BasicQuantum, func() { s.gangRotate(part) })
}

// gangDisarm cancels any pending rotation.
func (s *System) gangDisarm(part *Partition) {
	part.gangTimer.Stop()
	part.gangTimer = sim.Timer{}
}

// gangSetSuspended flips every task of the job.
func (s *System) gangSetSuspended(js *jobState, suspended bool) {
	for _, b := range js.env.Ranks {
		if suspended {
			b.Task.Suspend()
		} else {
			b.Task.Resume()
		}
	}
}
