package sched

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// testMachine builds a small multicomputer with generous memory so tests
// focus on scheduling, not contention.
func testMachine(size int) *machine.Machine {
	k := sim.NewKernel(1)
	return machine.NewMachine(k, size, 64<<20, machine.DefaultCostModel())
}

// syntheticBatch builds n jobs of equal work w (fork-join synthetic app).
func syntheticBatch(n int, w sim.Time, arch workload.Arch) workload.Batch {
	batch := make(workload.Batch, n)
	for i := 0; i < n; i++ {
		batch[i] = &workload.Job{
			ID: i, Class: "small", Arch: arch,
			App: workload.NewSynthetic(w, 256, 1024, workload.DefaultAppCost()),
		}
	}
	return batch
}

// run builds a system and runs the batch, failing the test on error.
func run(t *testing.T, mach *machine.Machine, cfg Config, batch workload.Batch) *metrics.Result {
	t.Helper()
	cfg.Machine = mach
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	mach.K.Shutdown()
	return res
}

func TestPolicyParsing(t *testing.T) {
	for s, want := range map[string]Policy{
		"static": Static, "space-sharing": Static,
		"ts": TimeShared, "hybrid": TimeShared, "rr-job": TimeShared,
		"rr-process": RRProcess,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("lottery"); err == nil {
		t.Error("bad policy should fail")
	}
	if Static.String() != "static" || TimeShared.String() != "time-shared" || RRProcess.String() != "rr-process" {
		t.Error("policy strings")
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Error("unknown policy rendering")
	}
}

func TestConfigValidation(t *testing.T) {
	mach := testMachine(8)
	defer mach.K.Shutdown()
	if _, err := New(Config{Machine: nil}); err == nil {
		t.Error("nil machine should fail")
	}
	if _, err := New(Config{Machine: mach, PartitionSize: 3, Topology: topology.Linear}); err == nil {
		t.Error("non-dividing partition should fail")
	}
	if _, err := New(Config{Machine: mach, PartitionSize: 0, Topology: topology.Linear}); err == nil {
		t.Error("zero partition should fail")
	}
	if _, err := New(Config{Machine: mach, PartitionSize: 8, Topology: topology.Hypercube}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := New(Config{Machine: mach, PartitionSize: 2, Topology: topology.Linear, BasicQuantum: -1}); err == nil {
		t.Error("negative quantum should fail")
	}
	sys, err := New(Config{Machine: mach, PartitionSize: 2, Topology: topology.Linear})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Partitions() != 4 {
		t.Errorf("partitions = %d, want 4", sys.Partitions())
	}
}

func TestSystemSingleUse(t *testing.T) {
	mach := testMachine(4)
	defer mach.K.Shutdown()
	sys, err := New(Config{Machine: mach, PartitionSize: 4, Topology: topology.Linear, Policy: Static})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunBatch(syntheticBatch(2, 10*sim.Millisecond, workload.Adaptive)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunBatch(syntheticBatch(1, sim.Millisecond, workload.Adaptive)); err == nil {
		t.Error("second RunBatch should fail")
	}
}

func TestStaticRunsOneJobPerPartition(t *testing.T) {
	mach := testMachine(8)
	// 4 equal jobs, 2 partitions of 4: jobs 0,1 start at t=0 on partitions
	// 0,1; jobs 2,3 wait in the FCFS queue.
	res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Linear, Policy: Static},
		syntheticBatch(4, 50*sim.Millisecond, workload.Adaptive))
	if len(res.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	byID := map[int]metrics.JobRecord{}
	for _, j := range res.Jobs {
		byID[j.JobID] = j
	}
	if byID[0].Started != 0 || byID[1].Started != 0 {
		t.Errorf("first two jobs should start immediately: %v %v", byID[0].Started, byID[1].Started)
	}
	if byID[2].Started == 0 || byID[3].Started == 0 {
		t.Error("queued jobs should wait for a partition")
	}
	if byID[2].Started != byID[0].Completed && byID[2].Started != byID[1].Completed {
		t.Errorf("job 2 started at %v, not at a completion (%v, %v)",
			byID[2].Started, byID[0].Completed, byID[1].Completed)
	}
	// Equal jobs: FCFS keeps order.
	if byID[2].Completed > byID[3].Completed {
		t.Error("FCFS order violated")
	}
}

func TestTimeSharedStartsAllJobsImmediately(t *testing.T) {
	mach := testMachine(8)
	res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Linear, Policy: TimeShared},
		syntheticBatch(8, 20*sim.Millisecond, workload.Adaptive))
	for _, j := range res.Jobs {
		if j.Started != 0 {
			t.Errorf("job %d started at %v, want 0 (all loaded at once)", j.JobID, j.Started)
		}
	}
	// Jobs distributed equitably: 4 per partition of the 2 partitions.
	perPart := map[int]int{}
	for _, j := range res.Jobs {
		perPart[j.Partition]++
	}
	if perPart[0] != 4 || perPart[1] != 4 {
		t.Errorf("distribution = %v, want 4 per partition", perPart)
	}
}

func TestStaticJobsDoNotOverlapInPartition(t *testing.T) {
	mach := testMachine(4)
	res := run(t, mach, Config{PartitionSize: 2, Topology: topology.Linear, Policy: Static},
		syntheticBatch(6, 30*sim.Millisecond, workload.Adaptive))
	// Per partition, sort by start; each next start must be >= previous
	// completion (exclusive use).
	byPart := map[int][]metrics.JobRecord{}
	for _, j := range res.Jobs {
		byPart[j.Partition] = append(byPart[j.Partition], j)
	}
	for part, recs := range byPart {
		for i := range recs {
			for j := range recs {
				if i == j {
					continue
				}
				a, b := recs[i], recs[j]
				if a.Started < b.Started && a.Completed > b.Started {
					t.Errorf("partition %d: jobs %d and %d overlap", part, a.JobID, b.JobID)
				}
			}
		}
	}
}

func TestAdaptiveVsFixedProcessCounts(t *testing.T) {
	mach := testMachine(4)
	batch := syntheticBatch(2, 10*sim.Millisecond, workload.Adaptive)
	batch[1].Arch = workload.Fixed
	res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Ring, Policy: TimeShared}, batch)
	byID := map[int]metrics.JobRecord{}
	for _, j := range res.Jobs {
		byID[j.JobID] = j
	}
	if byID[0].Processes != 4 {
		t.Errorf("adaptive job processes = %d, want 4", byID[0].Processes)
	}
	if byID[1].Processes != workload.FixedProcs {
		t.Errorf("fixed job processes = %d, want %d", byID[1].Processes, workload.FixedProcs)
	}
}

// TestEqualPowerSharing: under TimeShared, 2 equal jobs on one partition
// finish at nearly the same time (they share power equally), and both take
// about twice as long as a lone job.
func TestEqualPowerSharing(t *testing.T) {
	w := 200 * sim.Millisecond
	lone := run(t, testMachine(2), Config{PartitionSize: 2, Topology: topology.Linear, Policy: TimeShared},
		syntheticBatch(1, w, workload.Adaptive))
	shared := run(t, testMachine(2), Config{PartitionSize: 2, Topology: topology.Linear, Policy: TimeShared},
		syntheticBatch(2, w, workload.Adaptive))
	loneResp := lone.MeanResponse()
	a, b := shared.Jobs[0].Response(), shared.Jobs[1].Response()
	skew := a - b
	if skew < 0 {
		skew = -skew
	}
	// The second job's image loads after the first's on the serial host
	// link, so allow that stagger on top of scheduler-level fairness.
	if skew > loneResp/3 {
		t.Errorf("shared jobs skewed: %v vs %v", a, b)
	}
	if a < loneResp*3/2 {
		t.Errorf("shared job response %v, want >= 1.5x lone %v", a, loneResp)
	}
}

// TestRRJobFairerThanRRProcess reproduces the §2.2 argument: mix a
// 16-process job with 4-process jobs of equal total demand on one
// partition. Under RRProcess power is proportional to process count, so
// the wide job races ahead of the narrow ones; under the RR-job rule
// (Q = P·q/T) all jobs get equal power and finish together.
func TestRRJobFairerThanRRProcess(t *testing.T) {
	mkBatch := func() workload.Batch {
		batch := syntheticBatch(4, 400*sim.Millisecond, workload.Adaptive)
		batch[0].Arch = workload.Fixed // 16 processes; the rest run with 4
		return batch
	}
	spread := func(res *metrics.Result) (wide, narrow sim.Time) {
		var sum sim.Time
		var n sim.Time
		for _, j := range res.Jobs {
			if j.JobID == 0 {
				wide = j.Response()
			} else {
				sum += j.Response()
				n++
			}
		}
		return wide, sum / n
	}
	rrJobWide, rrJobNarrow := spread(run(t, testMachine(4),
		Config{PartitionSize: 4, Topology: topology.Ring, Policy: TimeShared, BasicQuantum: 2 * sim.Millisecond}, mkBatch()))
	rrProcWide, rrProcNarrow := spread(run(t, testMachine(4),
		Config{PartitionSize: 4, Topology: topology.Ring, Policy: RRProcess, BasicQuantum: 2 * sim.Millisecond}, mkBatch()))
	// RRProcess: the wide job gets ~4x the CPU share of each narrow job
	// (its extra messaging overhead claws some back) and finishes ahead
	// despite equal demand — the unfairness.
	if !(rrProcWide < rrProcNarrow*9/10) {
		t.Errorf("RRProcess wide %v not ahead of narrow %v", rrProcWide, rrProcNarrow)
	}
	// RR-job restores per-job fairness: the wide job's advantage must be
	// clearly smaller than under RRProcess.
	procAdvantage := float64(rrProcWide) / float64(rrProcNarrow)
	jobAdvantage := float64(rrJobWide) / float64(rrJobNarrow)
	if !(jobAdvantage > procAdvantage*1.1) {
		t.Errorf("RR-job advantage %.2f not fairer than RR-process %.2f", jobAdvantage, procAdvantage)
	}
}

// TestWorkConservationAcrossPolicies: total low-priority busy time must not
// depend on the policy for a fixed workload shape (same arch, same partition
// size), since policies only reorder work.
func TestWorkConservationAcrossPolicies(t *testing.T) {
	busyLow := func(policy Policy) sim.Time {
		mach := testMachine(4)
		res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Ring, Policy: policy},
			syntheticBatch(6, 30*sim.Millisecond, workload.Adaptive))
		var sum sim.Time
		for _, n := range res.Nodes {
			sum += n.BusyLow
		}
		return sum
	}
	s, ts := busyLow(Static), busyLow(TimeShared)
	if s != ts {
		t.Errorf("low-priority work differs: static %v vs time-shared %v", s, ts)
	}
}

// TestDeterministicResults: identical configurations give identical
// responses.
func TestDeterministicResults(t *testing.T) {
	runOnce := func() []sim.Time {
		mach := testMachine(8)
		res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Mesh, Policy: TimeShared},
			syntheticBatch(8, 25*sim.Millisecond, workload.Fixed))
		out := make([]sim.Time, len(res.Jobs))
		for i, j := range res.Jobs {
			out[i] = j.Response()
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a, b)
		}
	}
}

// TestMemoryReturnedAfterBatch: every node's memory is zero after all jobs
// complete, under every policy.
func TestMemoryReturnedAfterBatch(t *testing.T) {
	for _, policy := range []Policy{Static, TimeShared, RRProcess} {
		mach := testMachine(4)
		run(t, mach, Config{PartitionSize: 2, Topology: topology.Linear, Policy: policy},
			syntheticBatch(6, 15*sim.Millisecond, workload.Fixed))
		for _, n := range mach.Nodes {
			if n.Mem.Used() != 0 {
				t.Errorf("%v: node %d holds %d bytes after batch", policy, n.ID, n.Mem.Used())
			}
		}
	}
}

// TestMatMulBatchUnderAllPolicies runs the real application end to end at a
// small size under each policy and verifies results and accounting.
func TestMatMulBatchUnderAllPolicies(t *testing.T) {
	for _, policy := range []Policy{Static, TimeShared, RRProcess} {
		mach := testMachine(4)
		batch := workload.BatchSpec{
			Small: 3, Large: 1, Arch: workload.Adaptive,
			NewApp: func(class string) workload.App {
				n := 8
				if class == "large" {
					n = 16
				}
				return workload.NewMatMul(n, workload.DefaultAppCost(), true)
			},
		}.Build()
		res := run(t, mach, Config{PartitionSize: 2, Topology: topology.Linear, Policy: policy}, batch)
		if len(res.Jobs) != 4 {
			t.Fatalf("%v: jobs = %d", policy, len(res.Jobs))
		}
		for _, job := range batch {
			if !job.App.(*workload.MatMul).Checked {
				t.Errorf("%v: job %d result not verified", policy, job.ID)
			}
		}
		if res.Makespan <= 0 || res.MeanResponse() <= 0 {
			t.Errorf("%v: degenerate result %v", policy, res)
		}
	}
}

// TestSortBatchUnderTimeSharing runs the sort application through the
// scheduler and checks results.
func TestSortBatchUnderTimeSharing(t *testing.T) {
	mach := testMachine(4)
	batch := workload.BatchSpec{
		Small: 3, Large: 1, Arch: workload.Fixed,
		NewApp: func(class string) workload.App {
			n := 64
			if class == "large" {
				n = 200
			}
			return workload.NewSort(n, workload.DefaultAppCost(), true)
		},
	}.Build()
	run(t, mach, Config{PartitionSize: 4, Topology: topology.Hypercube, Policy: TimeShared}, batch)
	for _, job := range batch {
		if !job.App.(*workload.Sort).Checked {
			t.Errorf("job %d sort not verified", job.ID)
		}
	}
}

// TestPureTimeSharingIsOnePartition: with PartitionSize == machine size the
// TimeShared policy is the paper's pure time-sharing (multiprogramming
// level = batch size).
func TestPureTimeSharingIsOnePartition(t *testing.T) {
	mach := testMachine(4)
	cfg := Config{Machine: mach, PartitionSize: 4, Topology: topology.Ring, Policy: TimeShared}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Partitions() != 1 {
		t.Fatalf("partitions = %d", sys.Partitions())
	}
	res, err := sys.RunBatch(syntheticBatch(5, 10*sim.Millisecond, workload.Adaptive))
	if err != nil {
		t.Fatal(err)
	}
	mach.K.Shutdown()
	for _, j := range res.Jobs {
		if j.Partition != 0 {
			t.Errorf("job %d on partition %d", j.JobID, j.Partition)
		}
	}
}

// TestStallDetection: an impossible memory demand is reported as an error,
// not a hang.
func TestStallDetection(t *testing.T) {
	k := sim.NewKernel(1)
	// Nodes just big enough for one job's code and workspaces, then hog
	// most of node 0 so the load can never complete.
	memBytes := 2 * (workload.CodeBytes + 2*workload.WorkspaceBytes)
	mach := machine.NewMachine(k, 2, memBytes, machine.DefaultCostModel())
	defer k.Shutdown()
	if !mach.Node(0).Mem.TryAlloc(memBytes-workload.CodeBytes/2, mem.ClassData) {
		t.Fatal("setup")
	}
	sys, err := New(Config{Machine: mach, PartitionSize: 2, Topology: topology.Linear, Policy: Static, Mode: comm.StoreForward})
	if err != nil {
		t.Fatal(err)
	}
	batch := workload.Batch{{ID: 0, Class: "small", Arch: workload.Adaptive,
		App: workload.NewSynthetic(sim.Millisecond, 64, 5_000, workload.DefaultAppCost())}}
	if _, err := sys.RunBatch(batch); err == nil {
		t.Fatal("expected stall error")
	} else {
		msg := err.Error()
		for _, want := range []string{"did not complete", "memory pressure", "node 0", "parked processes"} {
			if !strings.Contains(msg, want) {
				t.Errorf("diagnosis missing %q in:\n%s", want, msg)
			}
		}
	}
}

// TestLabel: the result label encodes the paper's figure labels.
func TestLabel(t *testing.T) {
	mach := testMachine(8)
	res := run(t, mach, Config{PartitionSize: 8, Topology: topology.Mesh, Policy: Static},
		syntheticBatch(1, sim.Millisecond, workload.Adaptive))
	if !strings.HasPrefix(res.Label, "8M") {
		t.Errorf("label = %q", res.Label)
	}
}

// TestLinkAndHostStatsCollected: the result exposes physical-link and
// host-link occupancy, and they are consistent (hottest direction cannot
// exceed the total).
func TestLinkAndHostStatsCollected(t *testing.T) {
	mach := testMachine(4)
	batch := workload.BatchSpec{
		Small: 3, Large: 1, Arch: workload.Adaptive,
		NewApp: func(class string) workload.App {
			return workload.NewMatMul(24, workload.DefaultAppCost(), false)
		},
	}.Build()
	res := run(t, mach, Config{PartitionSize: 4, Topology: topology.Ring, Policy: TimeShared}, batch)
	if res.Net.LinkBusy <= 0 {
		t.Error("no link busy time recorded")
	}
	if res.Net.MaxLinkBusy <= 0 || res.Net.MaxLinkBusy > res.Net.LinkBusy {
		t.Errorf("max link busy %v inconsistent with total %v", res.Net.MaxLinkBusy, res.Net.LinkBusy)
	}
	if res.Net.HostBusy <= 0 {
		t.Error("no host-link busy time recorded (loads must serialize there)")
	}
}

// TestStaticPriorityQueue: higher-priority jobs jump the static ready
// queue; equal priorities keep FCFS order.
func TestStaticPriorityQueue(t *testing.T) {
	mach := testMachine(2)
	batch := syntheticBatch(5, 40*sim.Millisecond, workload.Adaptive)
	batch[3].Priority = 2 // should run right after the first job finishes
	batch[4].Priority = 1
	res := run(t, mach, Config{PartitionSize: 2, Topology: topology.Linear, Policy: Static}, batch)
	started := map[int]sim.Time{}
	for _, j := range res.Jobs {
		started[j.JobID] = j.Started
	}
	// Job 0 dispatches immediately (queue empty on arrival). Among the
	// queued rest, order must be 3 (prio 2), 4 (prio 1), 1, 2.
	if !(started[3] < started[4] && started[4] < started[1] && started[1] < started[2]) {
		t.Errorf("priority order violated: %v", started)
	}
}
