package sched

// PartitionPolicy implementations for the fixed-layout disciplines: static
// one-job partitions (fixedPartition) and equitably-shared partitions
// (sharedPartition), plus the buddy-pool allocator behind the legacy
// DynamicSpace policy (buddyPartition). The malleable equipartition policy
// lives in equi.go.
//
// These are direct factorings of the pre-framework switch arms: each method
// body is the code that used to sit behind `switch s.cfg.Policy` at the
// corresponding call site, so composing the defaults reproduces the old
// event order exactly.

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/topology"
)

// setupFixedPartitions carves the machine into equal PartitionSize-node
// partitions, each with its own interconnect instance over the shared
// read-only graph. Used by both fixed-layout policies.
func setupFixedPartitions(s *System) error {
	cfg := s.cfg
	size := cfg.Machine.Size()
	p := cfg.PartitionSize
	if p < 1 || size%p != 0 {
		return fmt.Errorf("sched: partition size %d must divide machine size %d", p, size)
	}
	graph, err := topology.Build(cfg.Topology, p)
	if err != nil {
		return err
	}
	for i := 0; i < size/p; i++ {
		nodes := make([]int, p)
		for j := range nodes {
			nodes[j] = i*p + j
		}
		// The graph is read-only after construction, so all partitions share
		// it; links are created per network.
		net, err := comm.NewNetwork(cfg.Machine, nodes, graph, cfg.Mode)
		if err != nil {
			return err
		}
		part := &Partition{
			idx:      i,
			size:     p,
			net:      net,
			nodeDown: make([]bool, p),
		}
		part.net.SetTracer(cfg.Tracer)
		s.parts = append(s.parts, part)
	}
	return nil
}

// setupPool validates the machine and topology for per-job buddy blocks and
// builds the pool. Used by the buddy and equi policies; name labels the
// policy in errors.
func setupPool(s *System, name string) error {
	size := s.cfg.Machine.Size()
	if size&(size-1) != 0 {
		return fmt.Errorf("sched: %s needs a power-of-two machine, got %d", name, size)
	}
	if cap := s.cfg.PartitionSize; cap != 0 && (cap < 1 || cap&(cap-1) != 0 || cap > size) {
		return fmt.Errorf("sched: dynamic block cap %d must be a power of two <= %d", cap, size)
	}
	// Every possible block size must be wireable in the configured
	// topology (hypercube needs powers of two, which blocks are).
	for bs := 1; bs <= size; bs <<= 1 {
		if _, err := topology.Build(s.cfg.Topology, bs); err != nil {
			return err
		}
	}
	s.pool = newBuddy(size)
	return nil
}

// fixedPartition: each equal partition runs exactly one job to completion;
// other jobs wait in the globally ordered ready queue.
type fixedPartition struct{}

func (fixedPartition) Kind() PartitionKind { return PartFixed }

func (fixedPartition) Setup(s *System) error { return setupFixedPartitions(s) }

func (fixedPartition) Arrive(s *System, js *jobState, idx int) {
	s.atArrival(js, func() { s.arriveReady(js) })
}

func (fixedPartition) Complete(s *System, js *jobState) {
	js.part.busy = false
	s.dispatchNext(js.part)
}

func (fixedPartition) Killed(s *System, part *Partition) {
	part.busy = false
}

func (fixedPartition) Requeue(s *System, js *jobState) {
	s.arriveReady(js)
}

func (fixedPartition) Healthy(s *System, part *Partition) {
	s.dispatchNext(part)
}

// sharedPartition: jobs are distributed equitably over the equal partitions
// — job i to partition i mod #partitions, giving the multiprogramming level
// 16/(16/p) of §5.1 — and started on arrival unless MaxResident caps the
// set size.
type sharedPartition struct{}

func (sharedPartition) Kind() PartitionKind { return PartShared }

func (sharedPartition) Setup(s *System) error { return setupFixedPartitions(s) }

func (sharedPartition) Arrive(s *System, js *jobState, idx int) {
	s.atArrival(js, func() { s.admit(s.parts[idx%len(s.parts)], js) })
}

func (sharedPartition) Complete(s *System, js *jobState) {
	part := js.part
	part.resident--
	s.drainQueue(part)
}

func (sharedPartition) Killed(s *System, part *Partition) {
	part.resident--
	if !part.degraded() {
		s.drainQueue(part)
	}
}

func (sharedPartition) Requeue(s *System, js *jobState) {
	alt := s.survivingPartition()
	if alt == nil {
		s.stalled = append(s.stalled, js)
		return
	}
	s.place(alt, js)
}

func (sharedPartition) Healthy(s *System, part *Partition) {
	// First the jobs stalled with nowhere to run, then this partition's
	// own admission queue.
	for len(s.stalled) > 0 {
		alt := s.survivingPartition()
		if alt == nil {
			return
		}
		js := s.stalled[0]
		s.stalled = s.stalled[1:]
		s.place(alt, js)
	}
	s.drainQueue(part)
}

// buddyPartition: per-job contiguous power-of-two blocks from a buddy pool,
// equipartition-sized at arrival, run to completion (see dynamic.go).
type buddyPartition struct{}

func (buddyPartition) Kind() PartitionKind { return PartBuddy }

func (buddyPartition) Setup(s *System) error { return setupPool(s, "dynamic space-sharing") }

func (buddyPartition) Arrive(s *System, js *jobState, idx int) {
	s.atArrival(js, func() { s.dynArrive(js) })
}

func (buddyPartition) Complete(s *System, js *jobState) {
	s.dynComplete(js)
}

// Fault injection is rejected at New for pool-based policies, so the repair
// hooks are unreachable.
func (buddyPartition) Killed(s *System, part *Partition)  {}
func (buddyPartition) Requeue(s *System, js *jobState)    {}
func (buddyPartition) Healthy(s *System, part *Partition) {}
