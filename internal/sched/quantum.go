package sched

// QuantumPolicy implementations. QuantumFor is consulted once per launch in
// startProcs; Started/Departed bracket a job's residency on its partition
// so stateful policies (gang rotation, dynamic per-group quanta) can react.

import "repro/internal/sim"

// noQuantum leaves the hardware default quantum in place — the static and
// dynamic space-sharing disciplines, whose partitions hold one job.
type noQuantum struct{}

func (noQuantum) Kind() QuantumKind                                     { return QuantumNone }
func (noQuantum) QuantumFor(s *System, part *Partition, t int) sim.Time { return 0 }
func (noQuantum) Started(s *System, part *Partition, js *jobState)      {}
func (noQuantum) Departed(s *System, part *Partition, js *jobState)     {}

// rrJobQuantum is the paper's RR-job rule: Q = (P/T)·q shares processing
// power equally per job rather than per process.
type rrJobQuantum struct{}

func (rrJobQuantum) Kind() QuantumKind { return QuantumRRJob }

func (rrJobQuantum) QuantumFor(s *System, part *Partition, t int) sim.Time {
	q := sim.Time(int64(part.size) * int64(s.cfg.BasicQuantum) / int64(t))
	if q < sim.Microsecond {
		q = sim.Microsecond
	}
	return q
}

func (rrJobQuantum) Started(s *System, part *Partition, js *jobState)  {}
func (rrJobQuantum) Departed(s *System, part *Partition, js *jobState) {}

// fixedQuantum gives every process the same basic quantum — the naive
// round-robin baseline §2.2 argues against.
type fixedQuantum struct{}

func (fixedQuantum) Kind() QuantumKind                                     { return QuantumFixed }
func (fixedQuantum) QuantumFor(s *System, part *Partition, t int) sim.Time { return s.cfg.BasicQuantum }
func (fixedQuantum) Started(s *System, part *Partition, js *jobState)      {}
func (fixedQuantum) Departed(s *System, part *Partition, js *jobState)     {}

// gangQuantum coschedules: exactly one job's processes run at a time per
// partition and whole jobs rotate every basic quantum (see gang.go). The
// per-process quantum stays at the hardware default, as before the
// framework.
type gangQuantum struct{}

func (gangQuantum) Kind() QuantumKind                                     { return QuantumGang }
func (gangQuantum) QuantumFor(s *System, part *Partition, t int) sim.Time { return 0 }

func (gangQuantum) Started(s *System, part *Partition, js *jobState) {
	s.gangJoin(part, js)
}

func (gangQuantum) Departed(s *System, part *Partition, js *jobState) {
	s.gangLeave(part, js)
}

// dynamicQuantum generalises RR-job to react to load: every launched job on
// the partition runs with Q = (P/(T·R))·q for R resident jobs, re-derived
// whenever a job starts or departs. With one resident job it degenerates to
// RR-job; as the set grows, slices shrink so a job's wait for its next
// slice stays near the basic quantum — the dynamic-time-quantum family of
// the RR-scheduling literature, which the Transputer's fixed hardware
// quantum could not express.
type dynamicQuantum struct{}

func (dynamicQuantum) Kind() QuantumKind { return QuantumDynamic }

func (dynamicQuantum) QuantumFor(s *System, part *Partition, t int) sim.Time {
	return dynQuantum(s, part, t, len(part.jobs))
}

func (d dynamicQuantum) Started(s *System, part *Partition, js *jobState) {
	d.retune(s, part)
}

func (d dynamicQuantum) Departed(s *System, part *Partition, js *jobState) {
	d.retune(s, part)
}

// retune re-derives the quantum of every launched job on the partition for
// the current resident count. Jobs still loading have no tasks yet; they
// pick up the then-current quantum in startProcs.
func (dynamicQuantum) retune(s *System, part *Partition) {
	r := len(part.jobs)
	if r < 1 {
		return
	}
	for _, js := range part.jobs {
		if js.env == nil {
			continue
		}
		q := dynQuantum(s, part, len(js.env.Ranks), r)
		for _, b := range js.env.Ranks {
			b.Task.SetQuantum(q)
		}
	}
}

// dynQuantum computes Q = (P/(T·R))·q, floored at one microsecond.
func dynQuantum(s *System, part *Partition, t, r int) sim.Time {
	if t < 1 {
		t = 1
	}
	if r < 1 {
		r = 1
	}
	q := sim.Time(int64(part.size) * int64(s.cfg.BasicQuantum) / int64(t*r))
	if q < sim.Microsecond {
		q = sim.Microsecond
	}
	return q
}
