package sched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// BenchmarkPolicyDispatch measures the scheduling hot path end to end: a
// small closed batch run under each discipline, dominated by dispatch,
// quantum and queue decisions rather than application compute. The
// benchmark deliberately uses only the legacy Config surface, so the
// identical source measures the pre-framework switch dispatch and the
// pluggable interface dispatch head to head.
func BenchmarkPolicyDispatch(b *testing.B) {
	bench := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k := sim.NewKernel(1)
			mach := machine.NewMachine(k, 8, 64<<20, machine.DefaultCostModel())
			cfg := cfg
			cfg.Machine = mach
			batch := make(workload.Batch, 12)
			for j := range batch {
				batch[j] = &workload.Job{
					ID: j, Class: "small", Arch: workload.Adaptive,
					App: workload.NewSynthetic(2*sim.Millisecond, 256, 1024, workload.DefaultAppCost()),
				}
			}
			sys, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.RunBatch(batch); err != nil {
				b.Fatal(err)
			}
			k.Shutdown()
		}
	}
	b.Run("static", func(b *testing.B) {
		bench(b, Config{PartitionSize: 4, Topology: topology.Linear, Policy: Static})
	})
	b.Run("time-shared", func(b *testing.B) {
		bench(b, Config{PartitionSize: 4, Topology: topology.Linear, Policy: TimeShared,
			BasicQuantum: sim.Millisecond})
	})
	b.Run("gang", func(b *testing.B) {
		bench(b, Config{PartitionSize: 4, Topology: topology.Linear, Policy: Gang,
			BasicQuantum: sim.Millisecond})
	})
}
